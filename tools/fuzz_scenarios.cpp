// Deterministic scenario fuzzer (see src/check/fuzz.hpp).
//
// Sweeps seeds through randomized full-stack scenarios, running each under
// both allocators with the InvariantOracle attached and replaying each run
// to prove byte-identical traces. On failure the scenario is shrunk to a
// minimal reproducer and the exact `--replay-seed` command line is printed
// (and optionally written to a file for CI artifact upload).
//
//   fuzz_scenarios --seeds 500            # sweep seeds 0..499
//   fuzz_scenarios --replay-seed 123      # re-run one reproducer
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>

#include "check/fuzz.hpp"
#include "common/cli.hpp"
#include "common/parallel.hpp"

namespace {

rtdrm::check::ShrinkSpec shrinkFromFlags(std::int64_t max_subtasks,
                                         std::int64_t max_periods, bool flat,
                                         bool drop_faults,
                                         bool drop_manager_faults,
                                         bool drop_sched,
                                         bool drop_period_adjust,
                                         bool drop_net_topology,
                                         bool drop_workload_mix) {
  rtdrm::check::ShrinkSpec shrink;
  if (max_subtasks > 0) {
    shrink.max_subtasks = static_cast<std::size_t>(max_subtasks);
  }
  if (max_periods > 0) {
    shrink.max_periods = static_cast<std::uint64_t>(max_periods);
  }
  shrink.flatten_workload = flat;
  shrink.drop_faults = drop_faults;
  shrink.drop_manager_faults = drop_manager_faults;
  shrink.drop_sched = drop_sched;
  shrink.drop_period_adjust = drop_period_adjust;
  shrink.drop_net_topology = drop_net_topology;
  shrink.drop_workload_mix = drop_workload_mix;
  return shrink;
}

std::string reproLine(std::uint64_t seed,
                      const rtdrm::check::ShrinkSpec& shrink, bool faults,
                      bool manager_faults, bool sched, bool period_adjust,
                      bool net_topology, bool workload_mix) {
  return "fuzz_scenarios --replay-seed=" + std::to_string(seed) +
         (faults ? " --faults" : "") +
         (manager_faults ? " --manager-faults" : "") +
         (sched ? " --sched" : "") +
         (period_adjust ? " --period-adjust" : "") +
         (net_topology ? " --net-topology" : "") +
         (workload_mix ? " --workload-mix" : "") + shrink.cliFlags();
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t seeds = 200;
  std::int64_t start_seed = 0;
  std::int64_t replay_seed = -1;
  std::int64_t max_subtasks = 0;
  std::int64_t max_periods = 0;
  bool flat = false;
  bool faults = false;
  bool manager_faults = false;
  bool sched = false;
  bool period_adjust = false;
  bool net_topology = false;
  bool workload_mix = false;
  bool drop_faults = false;
  bool drop_manager_faults = false;
  bool drop_sched = false;
  bool drop_period_adjust = false;
  bool drop_net_topology = false;
  bool drop_workload_mix = false;
  bool no_shrink = false;
  bool verbose = false;
  std::string repro_out;
  std::int64_t threads = 0;
  std::int64_t shards = 1;
  std::string sim_mode = "det";
  std::string lookahead = "adaptive";

  rtdrm::ArgParser parser(
      "fuzz_scenarios",
      "Randomized full-stack scenarios under an invariant oracle, with "
      "seed replay and failure minimization.");
  parser.addInt("seeds", "number of seeds to sweep", &seeds)
      .addInt("start-seed", "first seed of the sweep", &start_seed)
      .addInt("replay-seed", "run exactly this seed and exit (-1 = sweep)",
              &replay_seed)
      .addInt("max-subtasks", "cap the pipeline length (0 = uncapped)",
              &max_subtasks)
      .addInt("max-periods", "cap the horizon in periods (0 = uncapped)",
              &max_periods)
      .addFlag("flat", "flatten the workload table to its mean", &flat)
      .addFlag("faults",
               "grow a fault schedule (crashes, throttles, frame loss, "
               "clock outages) per seed",
               &faults)
      .addFlag("manager-faults",
               "grow a decentralized-plane dimension per seed (2-3 manager "
               "endpoints plus a manager crash/restart schedule)",
               &manager_faults)
      .addFlag("sched",
               "grow a scheduler dimension per seed (the cluster draws one "
               "of rr/fifo/priority/edf/rms/llf)",
               &sched)
      .addFlag("period-adjust",
               "grow an elastic-period dimension per seed (max_period bound "
               "plus the manager's dilation lever)",
               &period_adjust)
      .addFlag("net-topology",
               "grow a network-topology dimension per seed (bus or a 2-4 "
               "segment switched fabric, line or star)",
               &net_topology)
      .addFlag("workload-mix",
               "grow a workload-mix dimension per seed (pareto / surge / "
               "multi contender flows)",
               &workload_mix)
      .addFlag("drop-faults", "strip the fault schedule (shrink cap)",
               &drop_faults)
      .addFlag("drop-manager-faults",
               "strip the decentralized-plane dimension (shrink cap)",
               &drop_manager_faults)
      .addFlag("drop-sched",
               "back to the Round-Robin baseline scheduler (shrink cap)",
               &drop_sched)
      .addFlag("drop-period-adjust",
               "strip the elastic-period dimension (shrink cap)",
               &drop_period_adjust)
      .addFlag("drop-net-topology",
               "back to the shared bus (shrink cap)",
               &drop_net_topology)
      .addFlag("drop-workload-mix",
               "back to the paper workload family (shrink cap)",
               &drop_workload_mix)
      .addFlag("no-shrink", "report failures without minimizing", &no_shrink)
      .addFlag("verbose", "print every scenario as it runs", &verbose)
      .addString("repro-out",
                 "write the minimized reproducer command to this file",
                 &repro_out)
      .addInt("threads", "worker threads (0 = RTDRM_THREADS or cores)",
              &threads)
      .addInt("shards", "event-kernel shards per scenario (1 = single queue)",
              &shards)
      .addString("sim-mode", "det | fast (sharded window execution)",
                 &sim_mode)
      .addString("lookahead",
                 "static | adaptive (sharded barrier-window sizing)",
                 &lookahead);
  if (!parser.parse(argc, argv)) {
    return parser.helpRequested() ? 0 : 2;
  }

  rtdrm::parallel::setThreads(
      threads < 0 ? 0u : static_cast<unsigned>(threads));
  rtdrm::check::FuzzExecConfig exec;
  exec.sim_shards =
      shards < 1 ? std::size_t{1} : static_cast<std::size_t>(shards);
  if (!rtdrm::parallel::parseSimMode(sim_mode, &exec.sim_mode)) {
    std::cerr << "unknown sim mode '" << sim_mode << "' (det | fast)\n";
    return 2;
  }
  rtdrm::parallel::setSimMode(exec.sim_mode);
  if (!rtdrm::parallel::parseLookaheadPolicy(lookahead, &exec.lookahead)) {
    std::cerr << "unknown lookahead policy '" << lookahead
              << "' (static | adaptive)\n";
    return 2;
  }
  rtdrm::parallel::setLookaheadPolicy(exec.lookahead);

  const rtdrm::check::ShrinkSpec shrink =
      shrinkFromFlags(max_subtasks, max_periods, flat, drop_faults,
                      drop_manager_faults, drop_sched, drop_period_adjust,
                      drop_net_topology, drop_workload_mix);

  if (replay_seed >= 0) {
    const auto seed = static_cast<std::uint64_t>(replay_seed);
    const rtdrm::check::FuzzScenario scenario =
        rtdrm::check::makeFuzzScenario(seed, shrink, faults, manager_faults,
                                       sched, period_adjust, net_topology,
                                       workload_mix);
    std::cout << "replaying " << scenario.summary() << "\n";
    const rtdrm::check::FuzzOutcome outcome = rtdrm::check::runFuzzSeed(
        seed, shrink, faults, exec, manager_faults, sched, period_adjust,
        net_topology, workload_mix);
    if (outcome.failed()) {
      std::cout << "FAIL: " << outcome.detail << "\n";
      return 1;
    }
    std::cout << "OK (" << outcome.checks << " oracle checks, replay "
              << "byte-identical)\n";
    return 0;
  }

  std::uint64_t total_checks = 0;
  const auto first = static_cast<std::uint64_t>(start_seed);
  const auto count = static_cast<std::uint64_t>(seeds);
  for (std::uint64_t seed = first; seed < first + count; ++seed) {
    if (verbose) {
      std::cout
          << rtdrm::check::makeFuzzScenario(seed, shrink, faults,
                                            manager_faults, sched,
                                            period_adjust, net_topology,
                                            workload_mix)
                 .summary()
          << std::endl;
    }
    const rtdrm::check::FuzzOutcome outcome = rtdrm::check::runFuzzSeed(
        seed, shrink, faults, exec, manager_faults, sched, period_adjust,
        net_topology, workload_mix);
    total_checks += outcome.checks;
    if (!outcome.failed()) {
      if (!verbose && (seed - first + 1) % 50 == 0) {
        std::cout << (seed - first + 1) << "/" << count << " seeds clean\n";
      }
      continue;
    }

    std::cout << "seed " << seed << " FAILED ("
              << (outcome.invariants_ok ? "nondeterministic replay"
                                        : "invariant violation")
              << ")\n"
              << outcome.detail << "\n";

    rtdrm::check::ShrinkSpec minimal = shrink;
    if (!no_shrink) {
      std::cout << "shrinking...\n";
      minimal = rtdrm::check::minimize(
          seed, shrink,
          [faults, manager_faults, sched, period_adjust, net_topology,
           workload_mix,
           &exec](std::uint64_t s, const rtdrm::check::ShrinkSpec& c) {
            return rtdrm::check::runFuzzSeed(s, c, faults, exec,
                                             manager_faults, sched,
                                             period_adjust, net_topology,
                                             workload_mix)
                .failed();
          },
          faults, manager_faults, sched, period_adjust, net_topology,
          workload_mix);
      std::cout << "minimal scenario: "
                << rtdrm::check::makeFuzzScenario(seed, minimal, faults,
                                                  manager_faults, sched,
                                                  period_adjust, net_topology,
                                                  workload_mix)
                       .summary()
                << "\n";
    }
    const std::string repro = reproLine(seed, minimal, faults,
                                        manager_faults, sched,
                                        period_adjust, net_topology,
                                        workload_mix);
    std::cout << "reproduce with:\n  " << repro << "\n";
    if (!repro_out.empty()) {
      std::ofstream out(repro_out);
      out << repro << "\n";
    }
    return 1;
  }

  std::cout << count << " seeds x 2 allocators x 2 runs: all invariants "
            << "held, all replays byte-identical (" << total_checks
            << " oracle checks)\n";
  return 0;
}
