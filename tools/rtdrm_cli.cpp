// rtdrm — command-line front end to the library.
//
//   rtdrm profile  [--subtask NAME] [--out FILE]      profiling campaign
//   rtdrm fit      [--in FILE] [--joint]              fit eq. 3 on a CSV
//   rtdrm episode  [--pattern P] [--max-tracks N] ... run one episode
//   rtdrm sweep    [--pattern P] [--out PREFIX]       Figs. 9/10-style sweep
//
// Every subcommand accepts --help.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "apps/dynbench.hpp"
#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "experiments/episode.hpp"
#include "experiments/model_store.hpp"
#include "node/sched_policy.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "profile/dataset.hpp"
#include "profile/exec_profiler.hpp"
#include "workload/patterns.hpp"

using namespace rtdrm;

namespace {

int findStage(const task::TaskSpec& spec, const std::string& name,
              std::size_t* out) {
  for (std::size_t i = 0; i < spec.stageCount(); ++i) {
    if (spec.subtasks[i].name == name) {
      *out = i;
      return 0;
    }
  }
  std::cerr << "unknown subtask '" << name << "'; available:";
  for (const auto& st : spec.subtasks) {
    std::cerr << ' ' << st.name;
  }
  std::cerr << "\n";
  return 1;
}

int cmdProfile(int argc, const char* const* argv) {
  std::string subtask = "Filter";
  std::string out = "exec_samples.csv";
  std::int64_t samples = 6;
  std::int64_t seed = 7;
  ArgParser args("rtdrm profile",
                 "profile a subtask over the paper's (d, u) grid");
  args.addString("subtask", "subtask name (from the AAW task)", &subtask)
      .addString("out", "output CSV path", &out)
      .addInt("samples", "timed executions per grid point", &samples)
      .addInt("seed", "profiling RNG seed", &seed);
  if (!args.parse(argc, argv)) {
    return args.helpRequested() ? 0 : 1;
  }
  const task::TaskSpec spec = apps::makeAawTaskSpec();
  std::size_t stage = 0;
  if (findStage(spec, subtask, &stage) != 0) {
    return 1;
  }
  profile::ExecProfileConfig cfg;
  cfg.data_sizes = profile::paperDataGrid();
  cfg.samples_per_point = static_cast<int>(samples);
  cfg.seed = static_cast<std::uint64_t>(seed);
  const auto data = profile::profileExecution(spec.subtasks[stage], cfg);
  if (!profile::writeExecSamplesCsv(out, data)) {
    std::cerr << "failed to write " << out << "\n";
    return 1;
  }
  std::cout << data.size() << " samples written to " << out << "\n";
  return 0;
}

int cmdFit(int argc, const char* const* argv) {
  std::string in = "exec_samples.csv";
  bool joint = false;
  ArgParser args("rtdrm fit", "fit eq. 3 on a profiled sample CSV");
  args.addString("in", "input CSV (from `rtdrm profile`)", &in)
      .addFlag("joint", "use the joint 6-term fit instead of two-stage",
               &joint);
  if (!args.parse(argc, argv)) {
    return args.helpRequested() ? 0 : 1;
  }
  std::vector<regress::ExecSample> samples;
  if (!profile::readExecSamplesCsv(in, samples) || samples.empty()) {
    std::cerr << "failed to read samples from " << in << "\n";
    return 1;
  }
  const regress::ExecModelFit fit = joint
                                        ? regress::fitExecModelJoint(samples)
                                        : regress::fitExecModelTwoStage(samples);
  Table t({"a1", "a2", "a3", "b1", "b2", "b3", "R^2", "RMSE (ms)"}, 5);
  t.addRow({fit.model.a1, fit.model.a2, fit.model.a3, fit.model.b1,
            fit.model.b2, fit.model.b3, fit.diagnostics.r_squared,
            fit.diagnostics.rmse});
  t.print(std::cout);
  return 0;
}

int parseAlgorithm(const std::string& s, experiments::AlgorithmKind* out) {
  if (s == "predictive") {
    *out = experiments::AlgorithmKind::kPredictive;
    return 0;
  }
  if (s == "nonpredictive" || s == "non-predictive") {
    *out = experiments::AlgorithmKind::kNonPredictive;
    return 0;
  }
  std::cerr << "unknown algorithm '" << s
            << "' (predictive | nonpredictive)\n";
  return 1;
}

/// Parses --period-adjust ("off" | "on"). Returns 0, or 1 on a bad value.
int parsePeriodAdjust(const std::string& s, bool* out) {
  if (s == "off") {
    *out = false;
    return 0;
  }
  if (s == "on") {
    *out = true;
    return 0;
  }
  std::cerr << "unknown period-adjust mode '" << s << "' (off | on)\n";
  return 1;
}

/// Applies the shared execution flags (--threads, --sim-mode,
/// --lookahead) to the process-wide parallel configuration. Returns 0, or
/// 1 on a bad mode/policy.
int applyExecFlags(std::int64_t threads, const std::string& sim_mode,
                   const std::string& lookahead) {
  parallel::setThreads(
      threads < 0 ? 0u : static_cast<unsigned>(threads));
  parallel::SimMode mode{};
  if (!parallel::parseSimMode(sim_mode, &mode)) {
    std::cerr << "unknown sim mode '" << sim_mode << "' (det | fast)\n";
    return 1;
  }
  parallel::setSimMode(mode);
  parallel::LookaheadPolicy policy{};
  if (!parallel::parseLookaheadPolicy(lookahead, &policy)) {
    std::cerr << "unknown lookahead policy '" << lookahead
              << "' (static | adaptive)\n";
    return 1;
  }
  parallel::setLookaheadPolicy(policy);
  return 0;
}

/// Applies the shared network/workload flags (--net, --segments,
/// --fabric-topology, --port-buffer, --workload, --tail-index,
/// --contenders) to an episode config. Returns 0, or 1 on a bad value.
int applyNetWorkloadFlags(const std::string& net_model,
                          std::int64_t segments,
                          const std::string& fabric_topology,
                          std::int64_t port_buffer,
                          const std::string& workload_mix,
                          double tail_index, std::int64_t contenders,
                          experiments::EpisodeConfig* cfg) {
  if (!net::parseNetKind(net_model, &cfg->scenario.net_kind)) {
    std::cerr << "unknown network model '" << net_model
              << "' (bus | switched)\n";
    return 1;
  }
  cfg->scenario.fabric.segments =
      static_cast<std::size_t>(std::max<std::int64_t>(1, segments));
  if (!net::parseFabricTopology(fabric_topology,
                                &cfg->scenario.fabric.topology)) {
    std::cerr << "unknown fabric topology '" << fabric_topology
              << "' (line | star)\n";
    return 1;
  }
  cfg->scenario.fabric.port_buffer_frames =
      static_cast<std::size_t>(std::max<std::int64_t>(1, port_buffer));
  if (!workload::parseWorkloadMix(workload_mix, &cfg->workload_mix)) {
    std::cerr << "unknown workload mix '" << workload_mix
              << "' (paper | pareto | surge | multi)\n";
    return 1;
  }
  if (tail_index <= 0.0) {
    std::cerr << "--tail-index must be positive\n";
    return 1;
  }
  cfg->pareto.tail_index = tail_index;
  cfg->contenders.flows =
      static_cast<std::size_t>(std::max<std::int64_t>(0, contenders));
  return 0;
}

int cmdEpisode(int argc, const char* const* argv) {
  std::string pattern = "triangular";
  std::string algorithm = "predictive";
  double max_tracks = 10000.0;
  std::int64_t periods = 72;
  std::int64_t seed = 42;
  std::int64_t threads = 0;
  std::int64_t shards = 1;
  std::string sim_mode = "det";
  std::string lookahead = "adaptive";
  bool refit = false;
  bool histogram = false;
  std::string trace_out;
  std::string sched = "rr";
  std::string period_adjust = "off";
  std::int64_t managers = 1;
  std::int64_t manager_fault = 0;
  std::int64_t manager_fault_target = 0;
  double manager_restart = 0.0;
  std::string net_model = "bus";
  std::int64_t segments = 2;
  std::string fabric_topology = "line";
  std::int64_t port_buffer = 32;
  std::string workload_mix = "paper";
  double tail_index = 1.5;
  std::int64_t contenders = 2;
  ArgParser args("rtdrm episode", "run one evaluation episode");
  args.addString("pattern", "increasing | decreasing | triangular", &pattern)
      .addString("algorithm", "predictive | nonpredictive", &algorithm)
      .addDouble("max-tracks", "pattern peak workload", &max_tracks)
      .addInt("periods", "episode length", &periods)
      .addInt("seed", "master seed", &seed)
      .addInt("threads", "worker threads (0 = RTDRM_THREADS or cores)",
              &threads)
      .addInt("shards", "event-kernel shards (1 = single queue)", &shards)
      .addString("sim-mode", "det | fast (sharded window execution)",
                 &sim_mode)
      .addString("lookahead",
                 "static | adaptive (sharded barrier-window sizing; "
                 "digest-identical, adaptive runs far fewer barriers)",
                 &lookahead)
      .addInt("managers",
              "manager endpoints (1 = legacy centralized plane, > 1 shards "
              "the management plane with gossip + failover)",
              &managers)
      .addInt("manager-fault",
              "crash a manager endpoint at this period (0 = none; needs "
              "--managers > 1)",
              &manager_fault)
      .addInt("manager-fault-target",
              "which manager endpoint --manager-fault crashes",
              &manager_fault_target)
      .addDouble("manager-restart",
                 "restart the crashed endpoint this many periods after the "
                 "crash (0 = never)",
                 &manager_restart)
      .addString("sched",
                 "node scheduling policy: rr | fifo | priority | edf | rms "
                 "| llf",
                 &sched)
      .addString("period-adjust",
                 "off | on (elastic period dilation when the forecast "
                 "rejects replication)",
                 &period_adjust)
      .addString("net",
                 "network substrate: bus (shared 100 Mbps segment, the "
                 "paper's Table 1) | switched (multi-segment store-and-"
                 "forward fabric)",
                 &net_model)
      .addInt("segments", "switch segments (--net switched)", &segments)
      .addString("fabric-topology", "line | star (--net switched)",
                 &fabric_topology)
      .addInt("port-buffer",
              "per-egress-port buffer in frames (--net switched)",
              &port_buffer)
      .addString("workload",
                 "workload mix: paper | pareto (heavy-tailed arrivals) | "
                 "surge (correlated multi-sensor) | multi (paper + "
                 "co-hosted contender flows)",
                 &workload_mix)
      .addDouble("tail-index",
                 "Pareto tail index alpha (--workload pareto)", &tail_index)
      .addInt("contenders",
              "co-hosted contender flows (--workload multi)", &contenders)
      .addFlag("refit", "enable online model refinement", &refit)
      .addFlag("histogram", "print the end-to-end latency histogram",
               &histogram)
      .addString("trace-out",
                 "record observability and write PREFIX.rtt, "
                 "PREFIX.perfetto.json, PREFIX.audit.txt, "
                 "PREFIX.metrics.{json,csv}",
                 &trace_out);
  if (!args.parse(argc, argv)) {
    return args.helpRequested() ? 0 : 1;
  }
  if (applyExecFlags(threads, sim_mode, lookahead) != 0) {
    return 1;
  }
  experiments::AlgorithmKind kind{};
  if (parseAlgorithm(algorithm, &kind) != 0) {
    return 1;
  }
  const task::TaskSpec spec = apps::makeAawTaskSpec();
  std::cout << "[fitting models...]\n";
  const auto fitted =
      experiments::fitAllModels(spec, experiments::defaultModelFitConfig());
  workload::RampParams ramp;
  ramp.max_workload = DataSize::tracks(max_tracks);
  const auto pat = workload::makeFig8Pattern(pattern, ramp);
  experiments::EpisodeConfig cfg;
  cfg.periods = static_cast<std::uint64_t>(periods);
  cfg.scenario.seed = static_cast<std::uint64_t>(seed);
  cfg.scenario.sim_shards =
      static_cast<std::size_t>(std::max<std::int64_t>(1, shards));
  cfg.scenario.sim_mode = parallel::config().sim_mode;
  cfg.scenario.sim_lookahead = parallel::config().lookahead;
  if (!node::parseSchedPolicy(sched, &cfg.scenario.cpu.policy)) {
    std::cerr << "unknown scheduling policy '" << sched
              << "' (rr | fifo | priority | edf | rms | llf)\n";
    return 1;
  }
  cfg.scenario.cpu.validate();
  if (applyNetWorkloadFlags(net_model, segments, fabric_topology,
                            port_buffer, workload_mix, tail_index,
                            contenders, &cfg) != 0) {
    return 1;
  }
  if (parsePeriodAdjust(period_adjust, &cfg.manager.allow_period_adjust) !=
      0) {
    return 1;
  }
  cfg.manager.online_refit = refit;
  if (pattern == "decreasing") {
    cfg.manager.d_init = ramp.max_workload;
  }
  if (managers > 1) {
    cfg.plane.managers = static_cast<std::size_t>(managers);
    // Gossip at a fifth of the task period; staleness bound = 4 intervals.
    cfg.plane.gossip_interval = spec.period * 0.2;
    cfg.plane.staleness_bound = spec.period * 0.8;
    cfg.manager_crash_at_period = static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, manager_fault));
    cfg.manager_fault_target =
        static_cast<std::uint32_t>(manager_fault_target);
    cfg.manager_restart_after_periods = manager_restart;
  } else if (manager_fault > 0) {
    std::cerr << "--manager-fault needs --managers > 1\n";
    return 1;
  }
  obs::Observability bundle;
  if (!trace_out.empty()) {
    cfg.obs = &bundle;
  }
  const auto r = runEpisode(spec, *pat, fitted.models, kind, cfg);
  Table t({"missed %", "cpu %", "net %", "avg replicas", "combined C"}, 2);
  t.addRow({r.missed_pct, r.cpu_pct, r.net_pct, r.avg_replicas, r.combined});
  t.print(std::cout);
  if (managers > 1) {
    std::cout << "plane: managers=" << managers
              << " elections=" << r.elections
              << " gossip-rounds=" << r.gossip_rounds
              << " decision-gap-ms=" << r.decision_gap_ms
              << " suppressed-periods=" << r.suppressed_periods << "\n";
  }
  if (histogram) {
    std::cout << "end-to-end latency (ms):\n"
              << r.metrics.end_to_end_hist.render();
  }
  if (!trace_out.empty()) {
    const std::vector<obs::TraceRecord> records = bundle.trace.snapshot();
    bool ok = bundle.trace.writeBinary(trace_out + ".rtt");
    ok = obs::writePerfettoJson(trace_out + ".perfetto.json", records) && ok;
    ok = obs::writeDecisionAudit(trace_out + ".audit.txt", records) && ok;
    ok = bundle.metrics.writeJson(trace_out + ".metrics.json") && ok;
    ok = bundle.metrics.writeCsv(trace_out + ".metrics.csv") && ok;
    if (!ok) {
      std::cerr << "failed to write one or more '" << trace_out
                << ".*' observability files\n";
      return 1;
    }
    std::cout << records.size() << " trace records ("
              << bundle.trace.recorded() << " recorded, "
              << bundle.trace.overwritten() << " overwritten) and "
              << bundle.metrics.size() << " metrics written to " << trace_out
              << ".{rtt,perfetto.json,audit.txt,metrics.json,metrics.csv}\n";
  }
  return 0;
}

int cmdSweep(int argc, const char* const* argv) {
  std::string pattern = "triangular";
  std::string out = "sweep";
  std::int64_t periods = 72;
  std::int64_t replications = 1;
  std::int64_t threads = 0;
  std::int64_t shards = 1;
  std::string sim_mode = "det";
  std::string lookahead = "adaptive";
  std::string sched = "rr";
  std::string period_adjust = "off";
  std::string net_model = "bus";
  std::int64_t segments = 2;
  std::string fabric_topology = "line";
  std::int64_t port_buffer = 32;
  std::string workload_mix = "paper";
  double tail_index = 1.5;
  std::int64_t contenders = 2;
  bool serial = false;
  ArgParser args("rtdrm sweep",
                 "both algorithms across max workloads (Figs. 9/10 style)");
  args.addString("pattern", "increasing | decreasing | triangular", &pattern)
      .addString("out", "output CSV prefix", &out)
      .addInt("periods", "episode length per point", &periods)
      .addInt("replications", "seeds averaged per point", &replications)
      .addInt("threads",
              "worker threads for the point fan-out "
              "(0 = RTDRM_THREADS or cores)",
              &threads)
      .addInt("shards",
              "event-kernel shards per episode (1 = single queue)", &shards)
      .addString("sim-mode", "det | fast (sharded window execution)",
                 &sim_mode)
      .addString("lookahead",
                 "static | adaptive (sharded barrier-window sizing)",
                 &lookahead)
      .addString("sched",
                 "node scheduling policy: rr | fifo | priority | edf | rms "
                 "| llf",
                 &sched)
      .addString("period-adjust",
                 "off | on (elastic period dilation when the forecast "
                 "rejects replication)",
                 &period_adjust)
      .addString("net", "bus | switched (network substrate)", &net_model)
      .addInt("segments", "switch segments (--net switched)", &segments)
      .addString("fabric-topology", "line | star (--net switched)",
                 &fabric_topology)
      .addInt("port-buffer",
              "per-egress-port buffer in frames (--net switched)",
              &port_buffer)
      .addString("workload", "paper | pareto | surge | multi",
                 &workload_mix)
      .addDouble("tail-index",
                 "Pareto tail index alpha (--workload pareto)", &tail_index)
      .addInt("contenders",
              "co-hosted contender flows (--workload multi)", &contenders)
      .addFlag("serial", "run sweep points one at a time", &serial);
  if (!args.parse(argc, argv)) {
    return args.helpRequested() ? 0 : 1;
  }
  if (applyExecFlags(threads, sim_mode, lookahead) != 0) {
    return 1;
  }
  const task::TaskSpec spec = apps::makeAawTaskSpec();
  std::cout << "[fitting models...]\n";
  const auto fitted =
      experiments::fitAllModels(spec, experiments::defaultModelFitConfig());
  experiments::SweepConfig cfg;
  cfg.episode.periods = static_cast<std::uint64_t>(periods);
  cfg.episode.scenario.sim_shards =
      static_cast<std::size_t>(std::max<std::int64_t>(1, shards));
  cfg.episode.scenario.sim_mode = parallel::config().sim_mode;
  cfg.episode.scenario.sim_lookahead = parallel::config().lookahead;
  if (!node::parseSchedPolicy(sched, &cfg.episode.scenario.cpu.policy)) {
    std::cerr << "unknown scheduling policy '" << sched
              << "' (rr | fifo | priority | edf | rms | llf)\n";
    return 1;
  }
  cfg.episode.scenario.cpu.validate();
  if (applyNetWorkloadFlags(net_model, segments, fabric_topology,
                            port_buffer, workload_mix, tail_index,
                            contenders, &cfg.episode) != 0) {
    return 1;
  }
  if (parsePeriodAdjust(period_adjust,
                        &cfg.episode.manager.allow_period_adjust) != 0) {
    return 1;
  }
  cfg.replications = static_cast<std::size_t>(std::max<std::int64_t>(
      1, replications));
  cfg.parallel = !serial;
  const auto points =
      experiments::runWorkloadSweep(spec, fitted.models, pattern, cfg);
  Table t({"max workload (x500)", "pred combined", "nonpred combined",
           "pred missed %", "nonpred missed %"},
          3);
  for (const auto& p : points) {
    t.addRow({p.max_workload_units, p.predictive.combined,
              p.non_predictive.combined, p.predictive.missed_pct,
              p.non_predictive.missed_pct});
  }
  t.print(std::cout);
  const std::string csv = out + "_" + pattern + ".csv";
  if (t.writeCsv(csv)) {
    std::cout << "(written to " << csv << ")\n";
  }
  return 0;
}

void usage() {
  std::cout << "usage: rtdrm <profile|fit|episode|sweep> [options]\n"
               "       rtdrm <subcommand> --help for details\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  // Shift so each subcommand parses its own options.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  if (cmd == "profile") {
    return cmdProfile(sub_argc, sub_argv);
  }
  if (cmd == "fit") {
    return cmdFit(sub_argc, sub_argv);
  }
  if (cmd == "episode") {
    return cmdEpisode(sub_argc, sub_argv);
  }
  if (cmd == "sweep") {
    return cmdSweep(sub_argc, sub_argv);
  }
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    usage();
    return 0;
  }
  std::cerr << "unknown subcommand '" << cmd << "'\n";
  usage();
  return 1;
}
