// trace_inspect — reads a binary trace dump (.rtt, written by
// `rtdrm episode --trace-out` or obs::TraceBuffer::writeBinary) and
// summarizes, filters, or re-exports it.
//
//   trace_inspect DUMP.rtt                     per-kind summary
//   trace_inspect DUMP.rtt --audit             decision-audit projection
//   trace_inspect DUMP.rtt --records           one line per raw record
//   trace_inspect DUMP.rtt --kind growth-check --stage 2 --records
//   trace_inspect DUMP.rtt --perfetto out.json re-export for ui.perfetto.dev
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "obs/export.hpp"
#include "obs/trace_buffer.hpp"

using namespace rtdrm;

namespace {

bool matches(const obs::TraceRecord& r, const std::string& kind_filter,
             std::int64_t stage_filter, std::int64_t node_filter) {
  if (!kind_filter.empty() && kind_filter != obs::recordKindName(r.kind)) {
    return false;
  }
  if (stage_filter >= 0 && r.stage != stage_filter) {
    return false;
  }
  if (node_filter >= 0 &&
      r.node != static_cast<std::uint32_t>(node_filter)) {
    return false;
  }
  return true;
}

void printRecord(const obs::TraceRecord& r) {
  char buf[192];
  int n = std::snprintf(buf, sizeof(buf), "%12.3f #%-8llu %-18s stage=%u",
                        r.t_ms, static_cast<unsigned long long>(r.seq),
                        obs::recordKindName(r.kind),
                        static_cast<unsigned>(r.stage));
  std::string line(buf, static_cast<std::size_t>(n));
  if (r.node != obs::kRecordNoNode) {
    line += " node=" + std::to_string(r.node);
  }
  if ((r.flags & obs::kFlagAccept) != 0) {
    line += " [accept]";
  }
  std::snprintf(buf, sizeof(buf), " a=%g b=%g c=%g", r.a, r.b, r.c);
  line += buf;
  std::cout << line << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool audit = false;
  bool records = false;
  std::string kind_filter;
  std::int64_t stage_filter = -1;
  std::int64_t node_filter = -1;
  std::int64_t limit = 0;
  std::string perfetto_out;
  ArgParser args("trace_inspect DUMP.rtt",
                 "summarize / filter / re-export a binary trace dump");
  args.addFlag("audit", "print the decision-audit projection", &audit)
      .addFlag("records", "print every (matching) record", &records)
      .addString("kind", "only records of this kind (e.g. growth-check)",
                 &kind_filter)
      .addInt("stage", "only records of this stage (-1 = all)", &stage_filter)
      .addInt("node", "only records naming this node (-1 = all)",
              &node_filter)
      .addInt("limit", "print at most N records/lines (0 = all)", &limit)
      .addString("perfetto", "write Chrome/Perfetto trace-event JSON here",
                 &perfetto_out);
  if (!args.parse(argc, argv)) {
    return args.helpRequested() ? 0 : 1;
  }
  if (args.positional().size() != 1) {
    std::cerr << "exactly one DUMP.rtt argument required\n"
              << args.usage();
    return 1;
  }
  const std::string path = args.positional().front();

  std::vector<obs::TraceRecord> all;
  if (!obs::TraceBuffer::readBinary(path, all)) {
    std::cerr << "failed to read trace dump " << path << "\n";
    return 1;
  }

  std::vector<obs::TraceRecord> kept;
  kept.reserve(all.size());
  for (const obs::TraceRecord& r : all) {
    if (matches(r, kind_filter, stage_filter, node_filter)) {
      kept.push_back(r);
    }
  }

  if (!perfetto_out.empty()) {
    if (!obs::writePerfettoJson(perfetto_out, kept)) {
      std::cerr << "failed to write " << perfetto_out << "\n";
      return 1;
    }
    std::cout << kept.size() << " records exported to " << perfetto_out
              << "\n";
  }

  const auto cap = limit > 0 ? static_cast<std::size_t>(limit) : kept.size();
  if (audit) {
    const std::vector<std::string> lines = obs::decisionAuditLines(kept);
    for (std::size_t i = 0; i < lines.size() && i < cap; ++i) {
      std::cout << lines[i] << "\n";
    }
    return 0;
  }
  if (records) {
    for (std::size_t i = 0; i < kept.size() && i < cap; ++i) {
      printRecord(kept[i]);
    }
    return 0;
  }

  // Default: per-kind summary over the (filtered) dump.
  std::vector<std::uint64_t> counts(obs::kRecordKindCount, 0);
  double t_min = 0.0;
  double t_max = 0.0;
  for (std::size_t i = 0; i < kept.size(); ++i) {
    ++counts[static_cast<std::size_t>(kept[i].kind) % obs::kRecordKindCount];
    if (i == 0) {
      t_min = t_max = kept[i].t_ms;
    } else {
      t_min = kept[i].t_ms < t_min ? kept[i].t_ms : t_min;
      t_max = kept[i].t_ms > t_max ? kept[i].t_ms : t_max;
    }
  }
  std::cout << path << ": " << kept.size() << " records";
  if (kept.size() != all.size()) {
    std::cout << " (of " << all.size() << " after filters)";
  }
  if (!kept.empty()) {
    std::cout << ", t=[" << t_min << ".." << t_max << "] ms";
  }
  std::cout << "\n";
  for (std::size_t k = 0; k < obs::kRecordKindCount; ++k) {
    if (counts[k] == 0) {
      continue;
    }
    std::printf("  %-18s %llu\n",
                obs::recordKindName(static_cast<obs::RecordKind>(k)),
                static_cast<unsigned long long>(counts[k]));
  }
  return 0;
}
