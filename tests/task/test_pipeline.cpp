#include "task/pipeline.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "common/rng.hpp"
#include "net/ethernet.hpp"

namespace rtdrm::task {
namespace {

// A deterministic mini-testbed: ideal clocks, no execution noise, and (by
// default) a free network so CPU timing is exact.
struct Bed {
  explicit Bed(std::size_t nodes = 3, double host_ns_per_byte = 0.0)
      : cluster(sim, nodes),
        ethernet(sim, nodes, makeNetConfig(host_ns_per_byte)),
        clocks(sim, nodes, Xoshiro256(1), idealClocks()),
        rng(99) {}

  static net::EthernetConfig makeNetConfig(double host_ns) {
    net::EthernetConfig cfg;
    cfg.host_ns_per_byte = host_ns;
    cfg.propagation = SimDuration::zero();
    return cfg;
  }
  static net::ClockSyncConfig idealClocks() {
    net::ClockSyncConfig cfg;
    cfg.initial_offset_max = SimDuration::zero();
    cfg.drift_ppm_max = 0.0;
    return cfg;
  }

  Runtime runtime() { return Runtime{sim, cluster, ethernet, clocks}; }

  sim::Simulator sim;
  node::Cluster cluster;
  net::Ethernet ethernet;
  net::ClockFabric clocks;
  Xoshiro256 rng;
};

TaskSpec linearSpec(int stages, double beta = 1.0) {
  TaskSpec spec;
  for (int i = 0; i < stages; ++i) {
    spec.subtasks.push_back(SubtaskSpec{
        "st" + std::to_string(i + 1), SubtaskCost{0.0, beta}, true, 0.0});
  }
  spec.messages.assign(static_cast<std::size_t>(stages - 1),
                       MessageSpec{80.0});
  spec.validate();
  return spec;
}

TEST(PipelineRun, SingleStageLatencyEqualsDemand) {
  Bed bed(1);
  const TaskSpec spec = linearSpec(1);
  std::optional<PeriodRecord> rec;
  PipelineRun run(
      bed.runtime(), spec, Placement({ProcessorId{0}}),
      DataSize::tracks(500.0), 0, bed.rng, PipelineConfig{},
      [&](const PeriodRecord& r) { rec = r; });
  bed.sim.runAll();
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->completed);
  // demand = 1.0 ms per hundred tracks * 5 hundreds.
  EXPECT_NEAR(rec->endToEnd().ms(), 5.0, 1e-9);
  EXPECT_EQ(rec->stages.size(), 1u);
  EXPECT_TRUE(rec->stages[0].completed);
  EXPECT_NEAR(rec->stages[0].trueLatency().ms(), 5.0, 1e-9);
  EXPECT_EQ(rec->stages[0].replicas, 1u);
  EXPECT_TRUE(run.finished());
  EXPECT_TRUE(run.safeToDestroy());
}

TEST(PipelineRun, ChainAccumulatesExecAndMessageDelays) {
  Bed bed(3);
  const TaskSpec spec = linearSpec(3);
  std::optional<PeriodRecord> rec;
  PipelineRun run(
      bed.runtime(), spec,
      Placement({ProcessorId{0}, ProcessorId{1}, ProcessorId{2}}),
      DataSize::tracks(1000.0), 0, bed.rng, PipelineConfig{},
      [&](const PeriodRecord& r) { rec = r; });
  bed.sim.runAll();
  ASSERT_TRUE(rec.has_value());
  double expected = 0.0;
  for (const auto& st : rec->stages) {
    EXPECT_TRUE(st.completed);
    expected += st.trueLatency().ms();
  }
  EXPECT_NEAR(rec->endToEnd().ms(), expected, 1e-9);
  // Stage latency = message delay + exec for stages > 0.
  EXPECT_GT(rec->stages[1].worst_msg.ms(), 0.0);
  EXPECT_NEAR(rec->stages[1].trueLatency().ms(),
              rec->stages[1].worst_msg.ms() + rec->stages[1].worst_exec.ms(),
              1e-9);
  // Stage 0 receives data locally.
  EXPECT_DOUBLE_EQ(rec->stages[0].worst_msg.ms(), 0.0);
}

TEST(PipelineRun, ReplicasSplitTheDataStream) {
  // One stage on one node vs two replicas on two nodes: exec halves.
  const TaskSpec spec = linearSpec(1, 2.0);
  double solo_ms = 0.0;
  {
    Bed bed(2);
    std::optional<PeriodRecord> rec;
    PipelineRun run(bed.runtime(), spec, Placement({ProcessorId{0}}),
                    DataSize::tracks(1000.0), 0, bed.rng, PipelineConfig{},
                    [&](const PeriodRecord& r) { rec = r; });
    bed.sim.runAll();
    solo_ms = rec->endToEnd().ms();
  }
  {
    Bed bed(2);
    Placement p({ProcessorId{0}});
    p.stage(0).add(ProcessorId{1});
    std::optional<PeriodRecord> rec;
    PipelineRun run(bed.runtime(), spec, p, DataSize::tracks(1000.0), 0,
                    bed.rng, PipelineConfig{},
                    [&](const PeriodRecord& r) { rec = r; });
    bed.sim.runAll();
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->stages[0].replicas, 2u);
    EXPECT_NEAR(rec->endToEnd().ms(), solo_ms / 2.0, 1e-9);
  }
}

TEST(PipelineRun, ReplicatedStageWaitsForAllReplicas) {
  // Two replicas, one on a busy processor: stage ends when the slow one does.
  Bed bed(2);
  const TaskSpec spec = linearSpec(1, 2.0);
  // Preload node 1 with competing work.
  bed.cluster.processor(ProcessorId{1})
      .submit(node::Job{SimDuration::millis(50.0), nullptr, "hog"});
  Placement p({ProcessorId{0}});
  p.stage(0).add(ProcessorId{1});
  std::optional<PeriodRecord> rec;
  PipelineRun run(bed.runtime(), spec, p, DataSize::tracks(1000.0), 0,
                  bed.rng, PipelineConfig{},
                  [&](const PeriodRecord& r) { rec = r; });
  bed.sim.runAll();
  ASSERT_TRUE(rec.has_value());
  // Replica share = 10 ms demand; on the busy node it round-robins with a
  // 50 ms hog, so the stage takes far longer than the idle-node replica.
  EXPECT_GT(rec->endToEnd().ms(), 15.0);
}

TEST(PipelineRun, MissedFlagAgainstDeadline) {
  Bed bed(1);
  TaskSpec spec = linearSpec(1);
  std::optional<PeriodRecord> rec;
  PipelineRun run(bed.runtime(), spec, Placement({ProcessorId{0}}),
                  DataSize::tracks(1000.0), 0, bed.rng, PipelineConfig{},
                  [&](const PeriodRecord& r) { rec = r; });
  bed.sim.runAll();
  ASSERT_TRUE(rec.has_value());  // 10 ms latency
  EXPECT_FALSE(rec->missed(SimDuration::millis(20.0)));
  EXPECT_TRUE(rec->missed(SimDuration::millis(5.0)));
}

TEST(PipelineRun, CutoffAbortsRunawayInstance) {
  Bed bed(1);
  TaskSpec spec = linearSpec(1);
  spec.period = SimDuration::millis(10.0);
  std::optional<PeriodRecord> rec;
  PipelineConfig cfg;
  cfg.cutoff_periods = 2.0;
  // 100 hundreds * 1 ms = 100 ms demand vs 20 ms cutoff.
  PipelineRun run(bed.runtime(), spec, Placement({ProcessorId{0}}),
                  DataSize::tracks(10000.0), 0, bed.rng, cfg,
                  [&](const PeriodRecord& r) { rec = r; });
  bed.sim.runAll();
  ASSERT_TRUE(rec.has_value());
  EXPECT_FALSE(rec->completed);
  EXPECT_NEAR(rec->endToEnd().ms(), 20.0, 1e-9);
  EXPECT_TRUE(rec->missed(spec.deadline));
  EXPECT_FALSE(rec->stages[0].completed);
  // The aborted job must have released the processor.
  EXPECT_EQ(bed.cluster.processor(ProcessorId{0}).residentJobs(), 0u);
}

TEST(PipelineRun, MeasuredLatencyMatchesTrueWithIdealClocks) {
  Bed bed(3);
  const TaskSpec spec = linearSpec(3);
  std::optional<PeriodRecord> rec;
  PipelineRun run(
      bed.runtime(), spec,
      Placement({ProcessorId{0}, ProcessorId{1}, ProcessorId{2}}),
      DataSize::tracks(800.0), 0, bed.rng, PipelineConfig{},
      [&](const PeriodRecord& r) { rec = r; });
  bed.sim.runAll();
  ASSERT_TRUE(rec.has_value());
  for (const auto& st : rec->stages) {
    EXPECT_NEAR(st.measured_latency.ms(), st.trueLatency().ms(), 1e-9);
  }
}

TEST(PipelineRun, BufferDelayRecordedWithHostMarshalling) {
  Bed bed(2, /*host_ns_per_byte=*/87.5);
  const TaskSpec spec = linearSpec(2);
  std::optional<PeriodRecord> rec;
  PipelineRun run(bed.runtime(), spec,
                  Placement({ProcessorId{0}, ProcessorId{1}}),
                  DataSize::tracks(1000.0), 0, bed.rng, PipelineConfig{},
                  [&](const PeriodRecord& r) { rec = r; });
  bed.sim.runAll();
  ASSERT_TRUE(rec.has_value());
  // 1000 tracks * 80 B * 87.5 ns = 7 ms of marshalling.
  EXPECT_NEAR(rec->stages[1].worst_msg_buffer.ms(), 7.0, 1e-6);
}

TEST(PipelineRun, ZeroWorkloadFlowsThrough) {
  Bed bed(2);
  const TaskSpec spec = linearSpec(2);
  std::optional<PeriodRecord> rec;
  PipelineRun run(bed.runtime(), spec,
                  Placement({ProcessorId{0}, ProcessorId{1}}),
                  DataSize::zero(), 0, bed.rng, PipelineConfig{},
                  [&](const PeriodRecord& r) { rec = r; });
  bed.sim.runAll();
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->completed);
  EXPECT_GE(rec->endToEnd().ms(), 0.0);
}

TEST(PipelineRun, RecordCarriesPeriodIndexAndWorkload) {
  Bed bed(1);
  const TaskSpec spec = linearSpec(1);
  std::optional<PeriodRecord> rec;
  PipelineRun run(bed.runtime(), spec, Placement({ProcessorId{0}}),
                  DataSize::tracks(300.0), 17, bed.rng, PipelineConfig{},
                  [&](const PeriodRecord& r) { rec = r; });
  bed.sim.runAll();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->period_index, 17u);
  EXPECT_DOUBLE_EQ(rec->workload.count(), 300.0);
}

// Property: with k replicas on k idle nodes and a free network, a linear-
// cost stage speeds up by exactly k.
class ReplicaSpeedup : public ::testing::TestWithParam<int> {};

TEST_P(ReplicaSpeedup, LinearStageScalesWithReplicaCount) {
  const int k = GetParam();
  Bed bed(static_cast<std::size_t>(k));
  const TaskSpec spec = linearSpec(1, 3.0);
  Placement p({ProcessorId{0}});
  for (int r = 1; r < k; ++r) {
    p.stage(0).add(ProcessorId{static_cast<std::uint32_t>(r)});
  }
  std::optional<PeriodRecord> rec;
  PipelineRun run(bed.runtime(), spec, p, DataSize::tracks(1200.0), 0,
                  bed.rng, PipelineConfig{},
                  [&](const PeriodRecord& r) { rec = r; });
  bed.sim.runAll();
  ASSERT_TRUE(rec.has_value());
  EXPECT_NEAR(rec->endToEnd().ms(), 3.0 * 12.0 / k, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ReplicaCounts, ReplicaSpeedup,
                         ::testing::Values(1, 2, 3, 4, 6));

}  // namespace
}  // namespace rtdrm::task
