// Randomized pipeline properties: arbitrary chain shapes, placements, and
// workloads must preserve the structural invariants the monitor and
// metrics rely on.
#include <gtest/gtest.h>

#include <optional>

#include "common/rng.hpp"
#include "net/ethernet.hpp"
#include "task/pipeline.hpp"

namespace rtdrm::task {
namespace {

struct Bed {
  explicit Bed(std::size_t nodes)
      : cluster(sim, nodes),
        ethernet(sim, nodes, netConfig()),
        clocks(sim, nodes, Xoshiro256(1), idealClocks()) {}

  static net::EthernetConfig netConfig() {
    net::EthernetConfig cfg;
    cfg.propagation = SimDuration::zero();
    return cfg;
  }
  static net::ClockSyncConfig idealClocks() {
    net::ClockSyncConfig cfg;
    cfg.initial_offset_max = SimDuration::zero();
    cfg.drift_ppm_max = 0.0;
    return cfg;
  }
  Runtime runtime() { return Runtime{sim, cluster, ethernet, clocks}; }

  sim::Simulator sim;
  node::Cluster cluster;
  net::Ethernet ethernet;
  net::ClockFabric clocks;
};

class PipelineRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineRandom, StageLatenciesTileEndToEnd) {
  Xoshiro256 rng(GetParam());
  const std::size_t nodes = 4 + static_cast<std::size_t>(rng.uniformInt(0, 4));
  Bed bed(nodes);

  // Random chain: 1-6 stages, random costs, random replicability.
  TaskSpec spec;
  const int stages = static_cast<int>(rng.uniformInt(1, 6));
  for (int s = 0; s < stages; ++s) {
    spec.subtasks.push_back(SubtaskSpec{
        "st" + std::to_string(s),
        SubtaskCost{rng.uniform(0.0, 0.05), rng.uniform(0.1, 3.0)},
        rng.uniform01() < 0.5, /*noise=*/0.0});
  }
  spec.messages.assign(static_cast<std::size_t>(stages - 1),
                       MessageSpec{rng.uniform(0.0, 120.0)});
  spec.validate();

  // Random placement: each stage gets 1..min(3, nodes) distinct nodes.
  Placement placement(
      std::vector<ProcessorId>(spec.stageCount(), ProcessorId{0}));
  for (std::size_t s = 0; s < spec.stageCount(); ++s) {
    ReplicaSet& rs = placement.stage(s);
    // Re-seat the primary randomly by building a fresh set.
    const auto extra = static_cast<int>(
        rng.uniformInt(0, std::min<std::int64_t>(2, static_cast<std::int64_t>(nodes) - 1)));
    std::vector<std::uint32_t> pool;
    for (std::uint32_t n = 0; n < nodes; ++n) {
      pool.push_back(n);
    }
    // Partial shuffle.
    for (std::size_t i = 0; i + 1 < pool.size(); ++i) {
      const auto j = static_cast<std::size_t>(
          rng.uniformInt(static_cast<std::int64_t>(i),
                         static_cast<std::int64_t>(pool.size()) - 1));
      std::swap(pool[i], pool[j]);
    }
    placement.stage(s) = ReplicaSet(ProcessorId{pool[0]});
    for (int e = 0; e < extra; ++e) {
      placement.stage(s).add(ProcessorId{pool[static_cast<std::size_t>(e) + 1]});
    }
    (void)rs;
  }

  const DataSize workload = DataSize::tracks(rng.uniform(0.0, 5000.0));
  Xoshiro256 noise(99);
  std::optional<PeriodRecord> rec;
  PipelineRun run(bed.runtime(), spec, placement, workload, 0, noise,
                  PipelineConfig{}, [&](const PeriodRecord& r) { rec = r; });
  bed.sim.runUntil(SimTime::seconds(120.0));

  ASSERT_TRUE(rec.has_value());
  ASSERT_TRUE(rec->completed);
  // Stage records tile [release, finish] exactly.
  double cursor = rec->release.ms();
  for (std::size_t s = 0; s < rec->stages.size(); ++s) {
    const StageRecord& st = rec->stages[s];
    EXPECT_TRUE(st.completed);
    EXPECT_NEAR(st.start.ms(), cursor, 1e-9) << "stage " << s;
    EXPECT_GE(st.end.ms(), st.start.ms());
    EXPECT_EQ(st.replicas, placement.stage(s).size());
    cursor = st.end.ms();
  }
  EXPECT_NEAR(cursor, rec->finish.ms(), 1e-9);
  // With ideal clocks the measured latency equals the true one.
  for (const auto& st : rec->stages) {
    EXPECT_NEAR(st.measured_latency.ms(), st.trueLatency().ms(), 1e-9);
  }
  // All processors drained.
  for (std::uint32_t n = 0; n < nodes; ++n) {
    EXPECT_EQ(bed.cluster.processor(ProcessorId{n}).residentJobs(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineRandom,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

TEST(PipelineBytes, WirePayloadMatchesShares) {
  // 2 stages, k replicas on stage 1: total wire payload must be exactly
  // workload * bytes_per_track (k messages of 1/k each).
  Bed bed(4);
  TaskSpec spec;
  spec.subtasks = {SubtaskSpec{"a", SubtaskCost{0.0, 0.5}, false, 0.0},
                   SubtaskSpec{"b", SubtaskCost{0.0, 0.5}, true, 0.0}};
  spec.messages = {MessageSpec{80.0}};
  Placement p({ProcessorId{0}, ProcessorId{1}});
  p.stage(1).add(ProcessorId{2});
  p.stage(1).add(ProcessorId{3});
  Xoshiro256 noise(5);
  std::optional<PeriodRecord> rec;
  PipelineRun run(bed.runtime(), spec, p, DataSize::tracks(900.0), 0, noise,
                  PipelineConfig{}, [&](const PeriodRecord& r) { rec = r; });
  bed.sim.runAll();
  ASSERT_TRUE(rec.has_value());
  EXPECT_NEAR(bed.ethernet.payloadBytesCarried(), 900.0 * 80.0, 1e-6);
  EXPECT_EQ(bed.ethernet.messagesDelivered(), 3u);
}

}  // namespace
}  // namespace rtdrm::task
