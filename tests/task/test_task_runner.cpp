#include "task/task_runner.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "net/ethernet.hpp"

namespace rtdrm::task {
namespace {

struct Bed {
  explicit Bed(std::size_t nodes = 2)
      : cluster(sim, nodes),
        ethernet(sim, nodes, netConfig()),
        clocks(sim, nodes, Xoshiro256(1), idealClocks()) {}

  static net::EthernetConfig netConfig() {
    net::EthernetConfig cfg;
    cfg.host_ns_per_byte = 0.0;
    cfg.propagation = SimDuration::zero();
    return cfg;
  }
  static net::ClockSyncConfig idealClocks() {
    net::ClockSyncConfig cfg;
    cfg.initial_offset_max = SimDuration::zero();
    cfg.drift_ppm_max = 0.0;
    return cfg;
  }

  Runtime runtime() { return Runtime{sim, cluster, ethernet, clocks}; }

  sim::Simulator sim;
  node::Cluster cluster;
  net::Ethernet ethernet;
  net::ClockFabric clocks;
};

TaskSpec quickSpec() {
  TaskSpec spec;
  spec.period = SimDuration::millis(100.0);
  spec.deadline = SimDuration::millis(90.0);
  spec.subtasks = {SubtaskSpec{"A", SubtaskCost{0.0, 1.0}, true, 0.0}};
  spec.validate();
  return spec;
}

TEST(TaskRunner, ReleasesOncePerPeriod) {
  Bed bed;
  const TaskSpec spec = quickSpec();
  std::vector<std::uint64_t> indices;
  TaskRunner runner(
      bed.runtime(), spec, Placement({ProcessorId{0}}),
      [](std::uint64_t) { return DataSize::tracks(100.0); }, Xoshiro256(5),
      PipelineConfig{},
      [&](const PeriodRecord& r) { indices.push_back(r.period_index); });
  runner.start(bed.sim.now());
  bed.sim.runUntil(SimTime::millis(450.0));
  runner.stop();
  EXPECT_EQ(indices, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(runner.periodsReleased(), 5u);
}

TEST(TaskRunner, WorkloadFunctionDrivesEachPeriod) {
  Bed bed;
  const TaskSpec spec = quickSpec();
  std::vector<double> workloads;
  TaskRunner runner(
      bed.runtime(), spec, Placement({ProcessorId{0}}),
      [](std::uint64_t c) { return DataSize::tracks(100.0 * (c + 1)); },
      Xoshiro256(5), PipelineConfig{},
      [&](const PeriodRecord& r) { workloads.push_back(r.workload.count()); });
  runner.start(bed.sim.now());
  bed.sim.runUntil(SimTime::millis(250.0));
  runner.stop();
  bed.sim.runUntil(SimTime::millis(400.0));
  EXPECT_EQ(workloads, (std::vector<double>{100.0, 200.0, 300.0}));
  EXPECT_DOUBLE_EQ(runner.currentWorkload().count(), 300.0);
}

TEST(TaskRunner, PlacementChangeAppliesFromNextPeriod) {
  Bed bed;
  const TaskSpec spec = quickSpec();
  std::vector<std::size_t> replica_counts;
  TaskRunner runner(
      bed.runtime(), spec, Placement({ProcessorId{0}}),
      [](std::uint64_t) { return DataSize::tracks(100.0); }, Xoshiro256(5),
      PipelineConfig{},
      [&](const PeriodRecord& r) {
        replica_counts.push_back(r.stages[0].replicas);
      });
  runner.start(bed.sim.now());
  bed.sim.runUntil(SimTime::millis(150.0));  // periods 0 and 1 released
  Placement p = runner.placement();
  p.stage(0).add(ProcessorId{1});
  runner.setPlacement(p);
  bed.sim.runUntil(SimTime::millis(350.0));
  runner.stop();
  ASSERT_GE(replica_counts.size(), 4u);
  EXPECT_EQ(replica_counts[0], 1u);
  EXPECT_EQ(replica_counts[1], 1u);
  EXPECT_EQ(replica_counts[2], 2u);  // first period after the change
  EXPECT_EQ(replica_counts[3], 2u);
}

TEST(TaskRunner, StopHaltsReleases) {
  Bed bed;
  const TaskSpec spec = quickSpec();
  int records = 0;
  TaskRunner runner(
      bed.runtime(), spec, Placement({ProcessorId{0}}),
      [](std::uint64_t) { return DataSize::tracks(100.0); }, Xoshiro256(5),
      PipelineConfig{}, [&](const PeriodRecord&) { ++records; });
  runner.start(bed.sim.now());
  bed.sim.runUntil(SimTime::millis(250.0));
  runner.stop();
  bed.sim.runUntil(SimTime::millis(1000.0));
  EXPECT_EQ(records, 3);  // t = 0, 100, 200
}

TEST(TaskRunner, FinishedRunsAreSwept) {
  Bed bed;
  const TaskSpec spec = quickSpec();
  TaskRunner runner(
      bed.runtime(), spec, Placement({ProcessorId{0}}),
      [](std::uint64_t) { return DataSize::tracks(100.0); }, Xoshiro256(5),
      PipelineConfig{}, nullptr);
  runner.start(bed.sim.now());
  bed.sim.runUntil(SimTime::millis(950.0));
  // Instances take ~1 ms each; at most the latest one can be alive.
  EXPECT_LE(runner.activeRuns(), 1u);
  runner.stop();
}

TEST(TaskRunner, OverlappingInstancesBothComplete) {
  Bed bed;
  TaskSpec spec = quickSpec();
  spec.period = SimDuration::millis(10.0);
  int completed = 0;
  // 1200 tracks * 1 ms/hundred = 12 ms demand > 10 ms period: instances
  // overlap and RR-share the processor; all must still finish (cutoff 3x).
  TaskRunner runner(
      bed.runtime(), spec, Placement({ProcessorId{0}}),
      [](std::uint64_t) { return DataSize::tracks(1200.0); }, Xoshiro256(5),
      PipelineConfig{},
      [&](const PeriodRecord& r) { completed += r.completed ? 1 : 0; });
  runner.start(bed.sim.now());
  bed.sim.runUntil(SimTime::millis(25.0));
  runner.stop();
  bed.sim.runUntil(SimTime::millis(200.0));
  EXPECT_EQ(completed, 3);
}

}  // namespace
}  // namespace rtdrm::task
