#include "task/spec.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace rtdrm::task {
namespace {

TaskSpec twoStageSpec() {
  TaskSpec spec;
  spec.subtasks = {SubtaskSpec{"A", SubtaskCost{0.0, 1.0}, false, 0.0},
                   SubtaskSpec{"B", SubtaskCost{0.1, 2.0}, true, 0.0}};
  spec.messages = {MessageSpec{80.0}};
  return spec;
}

TEST(SubtaskCost, QuadraticDemandInHundreds) {
  const SubtaskCost c{0.118, 0.98};
  // 1000 tracks = 10 hundreds: 0.118*100 + 0.98*10 = 21.6 ms.
  EXPECT_NEAR(c.demand(DataSize::tracks(1000.0)).ms(), 21.6, 1e-9);
  EXPECT_DOUBLE_EQ(c.demand(DataSize::zero()).ms(), 0.0);
}

TEST(SubtaskCost, LinearOnlyCost) {
  const SubtaskCost c{0.0, 2.0};
  EXPECT_DOUBLE_EQ(c.demand(DataSize::tracks(250.0)).ms(), 5.0);
}

TEST(TaskSpec, ValidateAcceptsWellFormed) {
  twoStageSpec().validate();  // must not abort
  SUCCEED();
}

TEST(TaskSpecDeathTest, ValidateRejectsMessageCountMismatch) {
  TaskSpec spec = twoStageSpec();
  spec.messages.clear();
  EXPECT_DEATH(spec.validate(), "n-1");
}

TEST(TaskSpecDeathTest, ValidateRejectsEmptyChain) {
  TaskSpec spec;
  EXPECT_DEATH(spec.validate(), "at least one subtask");
}

TEST(TaskSpecDeathTest, ValidateRejectsNegativeCost) {
  TaskSpec spec = twoStageSpec();
  spec.subtasks[0].cost.beta_ms = -1.0;
  EXPECT_DEATH(spec.validate(), "negative cost");
}

TEST(ReplicaSet, StartsWithPrimaryOnly) {
  const ReplicaSet rs(ProcessorId{2});
  EXPECT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.primary(), (ProcessorId{2}));
  EXPECT_TRUE(rs.contains(ProcessorId{2}));
  EXPECT_FALSE(rs.contains(ProcessorId{0}));
}

TEST(ReplicaSet, AddPreservesOrder) {
  ReplicaSet rs(ProcessorId{0});
  rs.add(ProcessorId{3});
  rs.add(ProcessorId{1});
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(rs.nodes()[0], (ProcessorId{0}));
  EXPECT_EQ(rs.nodes()[1], (ProcessorId{3}));
  EXPECT_EQ(rs.nodes()[2], (ProcessorId{1}));
}

TEST(ReplicaSet, RemoveLastPopsMostRecent) {
  ReplicaSet rs(ProcessorId{0});
  rs.add(ProcessorId{3});
  rs.add(ProcessorId{1});
  rs.removeLast();
  EXPECT_EQ(rs.size(), 2u);
  EXPECT_FALSE(rs.contains(ProcessorId{1}));
  EXPECT_TRUE(rs.contains(ProcessorId{3}));
}

TEST(ReplicaSet, RemoveSpecificReplica) {
  ReplicaSet rs(ProcessorId{0});
  rs.add(ProcessorId{3});
  rs.add(ProcessorId{1});
  rs.add(ProcessorId{4});
  rs.remove(ProcessorId{1});
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_FALSE(rs.contains(ProcessorId{1}));
  // Order of the remaining replicas is preserved.
  EXPECT_EQ(rs.nodes()[1], (ProcessorId{3}));
  EXPECT_EQ(rs.nodes()[2], (ProcessorId{4}));
}

TEST(ReplicaSet, RemovingPrimaryPromotesNextOldest) {
  // Failover: when the primary's node dies, the next-oldest replica takes
  // over as primary.
  ReplicaSet rs(ProcessorId{0});
  rs.add(ProcessorId{3});
  rs.add(ProcessorId{1});
  rs.remove(ProcessorId{0});
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs.primary(), (ProcessorId{3}));
  EXPECT_FALSE(rs.contains(ProcessorId{0}));
}

TEST(ReplicaSetDeathTest, RemoveRejectsEmptying) {
  ReplicaSet rs(ProcessorId{0});
  EXPECT_DEATH(rs.remove(ProcessorId{0}), "empty");
}

TEST(ReplicaSetDeathTest, RemoveRejectsUnknownNode) {
  ReplicaSet rs(ProcessorId{0});
  rs.add(ProcessorId{1});
  EXPECT_DEATH(rs.remove(ProcessorId{5}), "no replica");
}

TEST(ReplicaSetDeathTest, CannotRemovePrimary) {
  ReplicaSet rs(ProcessorId{0});
  EXPECT_DEATH(rs.removeLast(), "primary");
}

TEST(ReplicaSetDeathTest, CannotAddDuplicate) {
  ReplicaSet rs(ProcessorId{0});
  rs.add(ProcessorId{1});
  EXPECT_DEATH(rs.add(ProcessorId{1}), "already hosts");
}

TEST(Placement, HomesBecomePrimaries) {
  const Placement p({ProcessorId{4}, ProcessorId{2}, ProcessorId{0}});
  EXPECT_EQ(p.stageCount(), 3u);
  EXPECT_EQ(p.stage(0).primary(), (ProcessorId{4}));
  EXPECT_EQ(p.stage(2).primary(), (ProcessorId{0}));
  EXPECT_EQ(p.totalNodes(), 3u);
}

TEST(Placement, TotalNodesCountsReplicas) {
  Placement p({ProcessorId{0}, ProcessorId{1}});
  p.stage(1).add(ProcessorId{2});
  p.stage(1).add(ProcessorId{3});
  EXPECT_EQ(p.totalNodes(), 4u);
}

TEST(Placement, CopyIsIndependentSnapshot) {
  Placement a({ProcessorId{0}});
  const Placement b = a;  // snapshot
  a.stage(0).add(ProcessorId{1});
  EXPECT_EQ(a.stage(0).size(), 2u);
  EXPECT_EQ(b.stage(0).size(), 1u);
}

TEST(ReplicaSet, ContainsSpansMultipleBitsetWords) {
  ReplicaSet rs(ProcessorId{130});  // third 64-bit word
  rs.add(ProcessorId{0});
  rs.add(ProcessorId{63});
  rs.add(ProcessorId{64});
  EXPECT_TRUE(rs.contains(ProcessorId{130}));
  EXPECT_TRUE(rs.contains(ProcessorId{0}));
  EXPECT_TRUE(rs.contains(ProcessorId{63}));
  EXPECT_TRUE(rs.contains(ProcessorId{64}));
  EXPECT_FALSE(rs.contains(ProcessorId{129}));
  EXPECT_FALSE(rs.contains(ProcessorId{131}));
  EXPECT_FALSE(rs.contains(ProcessorId{1000}));
  rs.remove(ProcessorId{64});
  EXPECT_FALSE(rs.contains(ProcessorId{64}));
  EXPECT_TRUE(rs.contains(ProcessorId{63}));
}

TEST(ReplicaSet, BitsetAgreesWithVectorUnderChurn) {
  Xoshiro256 rng(20260806);
  ReplicaSet rs(ProcessorId{7});
  constexpr std::uint32_t kIdRange = 200;
  for (int step = 0; step < 400; ++step) {
    const std::int64_t op = rng.uniformInt(0, 2);
    if (op == 0) {  // add a node not yet hosting
      const auto p = ProcessorId{
          static_cast<std::uint32_t>(rng.uniformInt(0, kIdRange - 1))};
      if (!rs.contains(p)) {
        rs.add(p);
      }
    } else if (op == 1 && rs.size() > 1) {  // Fig. 6: pop the last added
      rs.removeLast();
    } else if (rs.size() > 1) {  // selective eviction
      const std::size_t i = static_cast<std::size_t>(
          rng.uniformInt(1, static_cast<std::int64_t>(rs.size()) - 1));
      rs.remove(rs.nodes()[i]);
    }
    // The bitset and the ordered vector must describe the same set.
    for (std::uint32_t id = 0; id < kIdRange; ++id) {
      const bool listed = std::find(rs.nodes().begin(), rs.nodes().end(),
                                    ProcessorId{id}) != rs.nodes().end();
      ASSERT_EQ(rs.contains(ProcessorId{id}), listed)
          << "step " << step << " id " << id;
    }
  }
}

}  // namespace
}  // namespace rtdrm::task
