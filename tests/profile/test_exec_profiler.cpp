#include "profile/exec_profiler.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace rtdrm::profile {
namespace {

task::SubtaskSpec filterLike() {
  return task::SubtaskSpec{"Filter", task::SubtaskCost{0.118, 0.98}, true,
                           0.0};
}

ExecProfileConfig smallGrid() {
  ExecProfileConfig cfg;
  cfg.utilization_levels = {0.0, 0.3, 0.6};
  cfg.data_sizes = {DataSize::tracks(500.0), DataSize::tracks(1500.0),
                    DataSize::tracks(3000.0), DataSize::tracks(4500.0)};
  cfg.samples_per_point = 3;
  return cfg;
}

TEST(PaperDataGrid, MatchesFigureAxis) {
  const auto grid = paperDataGrid();
  ASSERT_EQ(grid.size(), 25u);
  EXPECT_DOUBLE_EQ(grid.front().count(), 300.0);
  EXPECT_DOUBLE_EQ(grid.back().count(), 7500.0);
}

TEST(ProfileExecution, ProducesFullGridOfSamples) {
  const auto samples = profileExecution(filterLike(), smallGrid());
  EXPECT_EQ(samples.size(), 3u * 4u * 3u);
}

TEST(ProfileExecution, IdleLatencyMatchesGroundTruthDemand) {
  ExecProfileConfig cfg = smallGrid();
  cfg.utilization_levels = {0.0};  // measured node otherwise idle
  const auto samples = profileExecution(filterLike(), cfg);
  for (const auto& s : samples) {
    const double truth = 0.118 * s.d_hundreds * s.d_hundreds +
                         0.98 * s.d_hundreds;
    EXPECT_NEAR(s.latency_ms, truth, 1e-6) << "d = " << s.d_hundreds;
  }
}

TEST(ProfileExecution, ContentionInflatesLatency) {
  // At utilization u, processor sharing inflates response by ~1/(1-u).
  const task::SubtaskSpec st = filterLike();
  ExecProfileConfig cfg = smallGrid();
  cfg.data_sizes = {DataSize::tracks(4500.0)};  // 45 hundreds, ~283 ms
  cfg.samples_per_point = 8;
  cfg.utilization_levels = {0.0, 0.6};
  const auto samples = profileExecution(st, cfg);
  double idle_mean = 0.0;
  double busy_mean = 0.0;
  int idle_n = 0;
  int busy_n = 0;
  for (const auto& s : samples) {
    if (s.u == 0.0) {
      idle_mean += s.latency_ms;
      ++idle_n;
    } else {
      busy_mean += s.latency_ms;
      ++busy_n;
    }
  }
  idle_mean /= idle_n;
  busy_mean /= busy_n;
  // Expect inflation somewhere around 1/(1-0.6) = 2.5x; accept a broad
  // band since the background stream is stochastic.
  EXPECT_GT(busy_mean, idle_mean * 1.7);
  EXPECT_LT(busy_mean, idle_mean * 3.5);
}

TEST(ProfileExecution, DeterministicForSameSeed) {
  const auto a = profileExecution(filterLike(), smallGrid());
  const auto b = profileExecution(filterLike(), smallGrid());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].latency_ms, b[i].latency_ms);
  }
}

TEST(ProfileExecution, SeedChangesContendedSamples) {
  ExecProfileConfig cfg = smallGrid();
  cfg.utilization_levels = {0.5};
  const auto a = profileExecution(filterLike(), cfg);
  cfg.seed += 1;
  const auto b = profileExecution(filterLike(), cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff = any_diff || a[i].latency_ms != b[i].latency_ms;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ProfileExecution, NoiseSigmaSpreadsIdleSamples) {
  task::SubtaskSpec st = filterLike();
  st.noise_sigma = 0.1;
  ExecProfileConfig cfg = smallGrid();
  cfg.utilization_levels = {0.0};
  cfg.data_sizes = {DataSize::tracks(3000.0)};
  cfg.samples_per_point = 10;
  const auto samples = profileExecution(st, cfg);
  double lo = samples[0].latency_ms;
  double hi = samples[0].latency_ms;
  for (const auto& s : samples) {
    lo = std::min(lo, s.latency_ms);
    hi = std::max(hi, s.latency_ms);
  }
  EXPECT_GT(hi / lo, 1.02);  // visible scatter
}

TEST(ProfileAndFit, RecoversGroundTruthAtLowUtilization) {
  ExecProfileConfig cfg;
  cfg.utilization_levels = {0.0, 0.2, 0.4, 0.6};
  cfg.data_sizes = paperDataGrid();
  cfg.samples_per_point = 4;
  const auto fit = profileAndFit(filterLike(), cfg);
  // At u -> 0 the fitted a3/b3 approximate the ground-truth alpha/beta.
  EXPECT_NEAR(fit.model.a3, 0.118, 0.05);
  EXPECT_NEAR(fit.model.b3, 0.98, 0.6);
  EXPECT_GT(fit.diagnostics.r_squared, 0.9);
  EXPECT_EQ(fit.levels.size(), 4u);
}

TEST(ProfileExecutionDeathTest, SaturatedUtilizationRejected) {
  ExecProfileConfig cfg = smallGrid();
  cfg.utilization_levels = {0.99};
  EXPECT_DEATH(profileExecution(filterLike(), cfg), "saturates");
}

}  // namespace
}  // namespace rtdrm::profile
