#include "profile/comm_profiler.hpp"

#include <gtest/gtest.h>

#include "apps/dynbench.hpp"

namespace rtdrm::profile {
namespace {

CommProfileConfig smallConfig() {
  CommProfileConfig cfg;
  cfg.workload_levels = {DataSize::tracks(1000.0), DataSize::tracks(4000.0),
                         DataSize::tracks(8000.0)};
  cfg.periods_per_level = 8;
  cfg.warmup_periods = 2;
  return cfg;
}

TEST(DefaultCommGrid, SpansWorkloadRange) {
  const auto grid = defaultCommGrid();
  ASSERT_FALSE(grid.empty());
  EXPECT_DOUBLE_EQ(grid.front().count(), 500.0);
  EXPECT_DOUBLE_EQ(grid.back().count(), 12000.0);
}

TEST(ProfileBufferDelay, ProducesSamplesAtEveryLevel) {
  const auto spec = apps::makeAawTaskSpec();
  const auto samples = profileBufferDelay(spec, smallConfig());
  ASSERT_FALSE(samples.empty());
  bool seen_low = false;
  bool seen_high = false;
  for (const auto& s : samples) {
    EXPECT_GE(s.buffer_delay_ms, 0.0);
    seen_low = seen_low || s.total_workload_hundreds == 10.0;
    seen_high = seen_high || s.total_workload_hundreds == 80.0;
  }
  EXPECT_TRUE(seen_low);
  EXPECT_TRUE(seen_high);
}

TEST(ProfileBufferDelay, DelayGrowsWithWorkload) {
  const auto spec = apps::makeAawTaskSpec();
  const auto samples = profileBufferDelay(spec, smallConfig());
  double low_mean = 0.0;
  double high_mean = 0.0;
  int low_n = 0;
  int high_n = 0;
  for (const auto& s : samples) {
    if (s.total_workload_hundreds <= 10.0) {
      low_mean += s.buffer_delay_ms;
      ++low_n;
    } else if (s.total_workload_hundreds >= 80.0) {
      high_mean += s.buffer_delay_ms;
      ++high_n;
    }
  }
  ASSERT_GT(low_n, 0);
  ASSERT_GT(high_n, 0);
  EXPECT_GT(high_mean / high_n, 4.0 * (low_mean / low_n));
}

TEST(ProfileAndFitBufferDelay, SlopeNearConfiguredMarshallingCost) {
  // With 87.5 ns/B hosts and 80 B tracks the marshalling stage alone
  // contributes 0.7 ms per hundred tracks (the paper's Table 3 value);
  // queueing can only add to it.
  const auto spec = apps::makeAawTaskSpec();
  const auto fit = profileAndFitBufferDelay(spec, smallConfig());
  EXPECT_GT(fit.model.k_ms_per_hundred, 0.6);
  EXPECT_LT(fit.model.k_ms_per_hundred, 1.1);
  EXPECT_GT(fit.diagnostics.r_squared, 0.9);
}

TEST(ProfileBufferDelay, DeterministicForSameSeed) {
  const auto spec = apps::makeAawTaskSpec();
  const auto a = profileBufferDelay(spec, smallConfig());
  const auto b = profileBufferDelay(spec, smallConfig());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].buffer_delay_ms, b[i].buffer_delay_ms);
  }
}

}  // namespace
}  // namespace rtdrm::profile
