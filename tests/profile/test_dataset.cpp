#include "profile/dataset.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace rtdrm::profile {
namespace {

std::string tmpPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(ExecSamplesCsv, RoundTripPreservesData) {
  const std::vector<regress::ExecSample> in{
      {1.5, 0.2, 3.75}, {10.0, 0.8, 123.456}, {0.0, 0.0, 0.0}};
  const std::string path = tmpPath("exec_samples.csv");
  ASSERT_TRUE(writeExecSamplesCsv(path, in));
  std::vector<regress::ExecSample> out;
  ASSERT_TRUE(readExecSamplesCsv(path, out));
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i].d_hundreds, in[i].d_hundreds);
    EXPECT_DOUBLE_EQ(out[i].u, in[i].u);
    EXPECT_DOUBLE_EQ(out[i].latency_ms, in[i].latency_ms);
  }
  std::remove(path.c_str());
}

TEST(ExecSamplesCsv, EmptyVectorRoundTrips) {
  const std::string path = tmpPath("exec_empty.csv");
  ASSERT_TRUE(writeExecSamplesCsv(path, {}));
  std::vector<regress::ExecSample> out{{1.0, 1.0, 1.0}};
  ASSERT_TRUE(readExecSamplesCsv(path, out));
  EXPECT_TRUE(out.empty());
  std::remove(path.c_str());
}

TEST(ExecSamplesCsv, ReadFailsOnMissingFile) {
  std::vector<regress::ExecSample> out;
  EXPECT_FALSE(readExecSamplesCsv("/nonexistent/nope.csv", out));
}

TEST(ExecSamplesCsv, ReadFailsOnMalformedRow) {
  const std::string path = tmpPath("exec_bad.csv");
  {
    std::ofstream f(path);
    f << "d_hundreds,u,latency_ms\n1.0,not_a_number,2.0\n";
  }
  std::vector<regress::ExecSample> out;
  EXPECT_FALSE(readExecSamplesCsv(path, out));
  std::remove(path.c_str());
}

TEST(ExecSamplesCsv, SkipsBlankLines) {
  const std::string path = tmpPath("exec_blank.csv");
  {
    std::ofstream f(path);
    f << "d_hundreds,u,latency_ms\n1.0,0.5,2.0\n\n3.0,0.1,4.0\n";
  }
  std::vector<regress::ExecSample> out;
  ASSERT_TRUE(readExecSamplesCsv(path, out));
  EXPECT_EQ(out.size(), 2u);
  std::remove(path.c_str());
}

TEST(CommSamplesCsv, RoundTripPreservesData) {
  const std::vector<regress::CommSample> in{{10.0, 7.1}, {170.0, 119.3}};
  const std::string path = tmpPath("comm_samples.csv");
  ASSERT_TRUE(writeCommSamplesCsv(path, in));
  std::vector<regress::CommSample> out;
  ASSERT_TRUE(readCommSamplesCsv(path, out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[1].total_workload_hundreds, 170.0);
  EXPECT_DOUBLE_EQ(out[1].buffer_delay_ms, 119.3);
  std::remove(path.c_str());
}

TEST(CommSamplesCsv, WriteFailsOnBadPath) {
  EXPECT_FALSE(writeCommSamplesCsv("/nonexistent/x/y.csv", {}));
}

TEST(CommSamplesCsv, ReadFailsOnTruncatedRow) {
  const std::string path = tmpPath("comm_bad.csv");
  {
    std::ofstream f(path);
    f << "total_workload_hundreds,buffer_delay_ms\n42.0\n";
  }
  std::vector<regress::CommSample> out;
  EXPECT_FALSE(readCommSamplesCsv(path, out));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtdrm::profile
