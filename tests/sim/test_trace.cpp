#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>

namespace rtdrm::sim {
namespace {

TEST(TraceRecorder, RecordsEventsInOrder) {
  TraceRecorder trace;
  trace.record(SimTime::millis(1.0), TraceCategory::kRelease, "T1", 0.0);
  trace.record(SimTime::millis(2.0), TraceCategory::kReplicate, "Filter",
               2.0);
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_DOUBLE_EQ(trace.events()[0].at.ms(), 1.0);
  EXPECT_EQ(trace.events()[1].category, TraceCategory::kReplicate);
  EXPECT_EQ(trace.events()[1].label, "Filter");
  EXPECT_DOUBLE_EQ(trace.events()[1].value, 2.0);
}

TEST(TraceRecorder, CountsByCategory) {
  TraceRecorder trace;
  trace.record(SimTime::zero(), TraceCategory::kMiss, "a");
  trace.record(SimTime::zero(), TraceCategory::kMiss, "b");
  trace.record(SimTime::zero(), TraceCategory::kShutdown, "c");
  EXPECT_EQ(trace.count(TraceCategory::kMiss), 2u);
  EXPECT_EQ(trace.count(TraceCategory::kShutdown), 1u);
  EXPECT_EQ(trace.count(TraceCategory::kRelease), 0u);
}

TEST(TraceRecorder, CapacityBoundsMemory) {
  TraceRecorder trace(3);
  for (int i = 0; i < 10; ++i) {
    trace.record(SimTime::zero(), TraceCategory::kCustom, "x");
  }
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.dropped(), 7u);
}

TEST(TraceRecorder, ClearResets) {
  TraceRecorder trace(2);
  trace.record(SimTime::zero(), TraceCategory::kCustom, "x");
  trace.record(SimTime::zero(), TraceCategory::kCustom, "x");
  trace.record(SimTime::zero(), TraceCategory::kCustom, "x");
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceRecorder, CsvRoundTripStructure) {
  TraceRecorder trace;
  trace.record(SimTime::millis(10.5), TraceCategory::kReplicate,
               "label \"quoted\", with comma", 3.0);
  const std::string path = testing::TempDir() + "/rtdrm_trace_test.csv";
  ASSERT_TRUE(trace.writeCsv(path));
  std::ifstream f(path);
  std::string header;
  std::string row;
  std::getline(f, header);
  std::getline(f, row);
  EXPECT_EQ(header, "time_ms,category,label,value");
  EXPECT_NE(row.find("replicate"), std::string::npos);
  EXPECT_NE(row.find("\"\""), std::string::npos);  // escaped quote
  std::remove(path.c_str());
}

TEST(TraceRecorder, WriteCsvFailsOnBadPath) {
  const TraceRecorder trace;
  EXPECT_FALSE(trace.writeCsv("/nonexistent-dir/x/y.csv"));
}

TEST(TraceRecorder, DroppedEventsAreInvisibleToCounts) {
  TraceRecorder trace(2);
  trace.record(SimTime::zero(), TraceCategory::kMiss, "kept");
  trace.record(SimTime::zero(), TraceCategory::kMiss, "kept");
  trace.record(SimTime::zero(), TraceCategory::kMiss, "dropped");
  trace.record(SimTime::zero(), TraceCategory::kReplicate, "dropped");
  // Unlike the obs ring (whose per-kind counts survive overflow), the
  // legacy recorder drops whole events: counts reflect retained only.
  EXPECT_EQ(trace.count(TraceCategory::kMiss), 2u);
  EXPECT_EQ(trace.count(TraceCategory::kReplicate), 0u);
  EXPECT_EQ(trace.dropped(), 2u);
}

TEST(TraceRecorder, DropAccountingResumesAfterClear) {
  TraceRecorder trace(1);
  trace.record(SimTime::zero(), TraceCategory::kCustom, "a");
  trace.record(SimTime::zero(), TraceCategory::kCustom, "b");
  EXPECT_EQ(trace.dropped(), 1u);
  trace.clear();
  trace.record(SimTime::zero(), TraceCategory::kCustom, "c");
  EXPECT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.dropped(), 0u);
  trace.record(SimTime::zero(), TraceCategory::kCustom, "d");
  EXPECT_EQ(trace.dropped(), 1u);
}

TEST(TraceRecorder, WriteCsvEmitsHeaderOnlyWhenEmpty) {
  const TraceRecorder trace;
  const std::string path = testing::TempDir() + "/rtdrm_trace_empty.csv";
  ASSERT_TRUE(trace.writeCsv(path));
  std::ifstream f(path);
  std::string header;
  std::string extra;
  EXPECT_TRUE(static_cast<bool>(std::getline(f, header)));
  EXPECT_EQ(header, "time_ms,category,label,value");
  EXPECT_FALSE(static_cast<bool>(std::getline(f, extra)));
  std::remove(path.c_str());
}

TEST(TraceCategoryName, ExhaustiveOverEveryCategory) {
  // Loop the full enum range: every category must map to a real, unique
  // token — the "?" fallback firing means a new category was added without
  // a name (and would silently corrupt CSV timelines and fuzz digests).
  std::set<std::string> names;
  const auto last = static_cast<std::uint8_t>(TraceCategory::kCustom);
  for (std::uint8_t c = 0; c <= last; ++c) {
    const char* name = traceCategoryName(static_cast<TraceCategory>(c));
    EXPECT_STRNE(name, "?") << "category " << static_cast<int>(c);
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate category name '" << name << "'";
  }
  EXPECT_STREQ(traceCategoryName(static_cast<TraceCategory>(last + 1)), "?");
}

TEST(TraceCategoryName, AllNamesStable) {
  EXPECT_STREQ(traceCategoryName(TraceCategory::kRelease), "release");
  EXPECT_STREQ(traceCategoryName(TraceCategory::kStage), "stage");
  EXPECT_STREQ(traceCategoryName(TraceCategory::kMiss), "miss");
  EXPECT_STREQ(traceCategoryName(TraceCategory::kReplicate), "replicate");
  EXPECT_STREQ(traceCategoryName(TraceCategory::kShutdown), "shutdown");
  EXPECT_STREQ(traceCategoryName(TraceCategory::kCustom), "custom");
}

}  // namespace
}  // namespace rtdrm::sim
