#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace rtdrm::sim {
namespace {

TEST(TraceRecorder, RecordsEventsInOrder) {
  TraceRecorder trace;
  trace.record(SimTime::millis(1.0), TraceCategory::kRelease, "T1", 0.0);
  trace.record(SimTime::millis(2.0), TraceCategory::kReplicate, "Filter",
               2.0);
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_DOUBLE_EQ(trace.events()[0].at.ms(), 1.0);
  EXPECT_EQ(trace.events()[1].category, TraceCategory::kReplicate);
  EXPECT_EQ(trace.events()[1].label, "Filter");
  EXPECT_DOUBLE_EQ(trace.events()[1].value, 2.0);
}

TEST(TraceRecorder, CountsByCategory) {
  TraceRecorder trace;
  trace.record(SimTime::zero(), TraceCategory::kMiss, "a");
  trace.record(SimTime::zero(), TraceCategory::kMiss, "b");
  trace.record(SimTime::zero(), TraceCategory::kShutdown, "c");
  EXPECT_EQ(trace.count(TraceCategory::kMiss), 2u);
  EXPECT_EQ(trace.count(TraceCategory::kShutdown), 1u);
  EXPECT_EQ(trace.count(TraceCategory::kRelease), 0u);
}

TEST(TraceRecorder, CapacityBoundsMemory) {
  TraceRecorder trace(3);
  for (int i = 0; i < 10; ++i) {
    trace.record(SimTime::zero(), TraceCategory::kCustom, "x");
  }
  EXPECT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.dropped(), 7u);
}

TEST(TraceRecorder, ClearResets) {
  TraceRecorder trace(2);
  trace.record(SimTime::zero(), TraceCategory::kCustom, "x");
  trace.record(SimTime::zero(), TraceCategory::kCustom, "x");
  trace.record(SimTime::zero(), TraceCategory::kCustom, "x");
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceRecorder, CsvRoundTripStructure) {
  TraceRecorder trace;
  trace.record(SimTime::millis(10.5), TraceCategory::kReplicate,
               "label \"quoted\", with comma", 3.0);
  const std::string path = testing::TempDir() + "/rtdrm_trace_test.csv";
  ASSERT_TRUE(trace.writeCsv(path));
  std::ifstream f(path);
  std::string header;
  std::string row;
  std::getline(f, header);
  std::getline(f, row);
  EXPECT_EQ(header, "time_ms,category,label,value");
  EXPECT_NE(row.find("replicate"), std::string::npos);
  EXPECT_NE(row.find("\"\""), std::string::npos);  // escaped quote
  std::remove(path.c_str());
}

TEST(TraceRecorder, WriteCsvFailsOnBadPath) {
  const TraceRecorder trace;
  EXPECT_FALSE(trace.writeCsv("/nonexistent-dir/x/y.csv"));
}

TEST(TraceCategoryName, AllNamesStable) {
  EXPECT_STREQ(traceCategoryName(TraceCategory::kRelease), "release");
  EXPECT_STREQ(traceCategoryName(TraceCategory::kStage), "stage");
  EXPECT_STREQ(traceCategoryName(TraceCategory::kMiss), "miss");
  EXPECT_STREQ(traceCategoryName(TraceCategory::kReplicate), "replicate");
  EXPECT_STREQ(traceCategoryName(TraceCategory::kShutdown), "shutdown");
  EXPECT_STREQ(traceCategoryName(TraceCategory::kCustom), "custom");
}

}  // namespace
}  // namespace rtdrm::sim
