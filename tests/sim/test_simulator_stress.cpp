// Stress and ordering properties of the event kernel.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::sim {
namespace {

class SimulatorStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorStress, RandomScheduleExecutesInNonDecreasingTimeOrder) {
  Xoshiro256 rng(GetParam());
  Simulator sim;
  std::vector<double> fire_times;
  const int n = 20000;
  fire_times.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double t = rng.uniform(0.0, 1000.0);
    sim.scheduleAt(SimTime::millis(t),
                   [&fire_times, &sim] { fire_times.push_back(sim.now().ms()); });
  }
  sim.runAll();
  ASSERT_EQ(fire_times.size(), static_cast<std::size_t>(n));
  for (std::size_t i = 1; i < fire_times.size(); ++i) {
    ASSERT_LE(fire_times[i - 1], fire_times[i]);
  }
  EXPECT_EQ(sim.eventsExecuted(), static_cast<std::uint64_t>(n));
}

TEST_P(SimulatorStress, RandomCancellationExactlySkipsCancelled) {
  Xoshiro256 rng(GetParam() + 100);
  Simulator sim;
  int fired = 0;
  std::vector<EventId> ids;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    ids.push_back(sim.scheduleAt(
        SimTime::millis(rng.uniform(0.0, 100.0)), [&fired] { ++fired; }));
  }
  int cancelled = 0;
  for (const EventId id : ids) {
    if (rng.uniform01() < 0.5 && sim.cancel(id)) {
      ++cancelled;
    }
  }
  sim.runAll();
  EXPECT_EQ(fired, n - cancelled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorStress,
                         ::testing::Values(3u, 7u, 31u));

TEST(SimulatorStress, DeepRescheduleChain) {
  // Each event schedules the next: a 100k-deep chain must neither overflow
  // nor drift (iterative dispatch, exact accumulation of integer times).
  Simulator sim;
  const int depth = 100000;
  int count = 0;
  std::function<void()> step = [&] {
    if (++count < depth) {
      sim.scheduleAfter(SimDuration::millis(0.25), step);
    }
  };
  sim.scheduleAfter(SimDuration::millis(0.25), step);
  sim.runAll();
  EXPECT_EQ(count, depth);
  EXPECT_NEAR(sim.now().ms(), 0.25 * depth, 1e-6);
}

TEST(SimulatorStress, ManyPeriodicActivitiesInterleaveFairly) {
  Simulator sim;
  const int k = 20;
  std::vector<std::unique_ptr<PeriodicActivity>> acts;
  std::vector<int> ticks(k, 0);
  for (int i = 0; i < k; ++i) {
    acts.push_back(std::make_unique<PeriodicActivity>(
        sim, SimDuration::millis(1.0 + 0.1 * i),
        [&ticks, i](std::uint64_t) { ++ticks[i]; }));
    acts.back()->start(SimTime::zero());
  }
  sim.runUntil(SimTime::millis(100.0));
  for (int i = 0; i < k; ++i) {
    const double period = 1.0 + 0.1 * i;
    const int expected = static_cast<int>(100.0 / period) + 1;
    EXPECT_NEAR(ticks[i], expected, 1.0) << "activity " << i;
  }
}

TEST(SimulatorStress, CancellationInsideCallbacksIsSafe) {
  Simulator sim;
  // Event A cancels event B scheduled at the same timestamp.
  int fired_b = 0;
  const EventId b = sim.scheduleAt(SimTime::millis(5.0), [&] { ++fired_b; });
  // A was scheduled after B but at an earlier time, so it runs first.
  sim.scheduleAt(SimTime::millis(4.0), [&] { EXPECT_TRUE(sim.cancel(b)); });
  sim.runAll();
  EXPECT_EQ(fired_b, 0);
}

TEST(SimulatorStress, SameTimeCancellationAfterFireFails) {
  Simulator sim;
  EventId b{};
  bool b_fired = false;
  b = sim.scheduleAt(SimTime::millis(5.0), [&] { b_fired = true; });
  // Scheduled at the same instant but *after* B: B fires first (FIFO), so
  // the cancellation must report failure.
  sim.scheduleAt(SimTime::millis(5.0), [&] { EXPECT_FALSE(sim.cancel(b)); });
  sim.runAll();
  EXPECT_TRUE(b_fired);
}

}  // namespace
}  // namespace rtdrm::sim
