// Edge cases for the slab/heap event kernel: cancellation corner cases,
// tombstone handling, requestStop() between-runs semantics, determinism,
// and the EventFn small-callback wrapper.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace rtdrm::sim {
namespace {

// ---------------------------------------------------------------------------
// Cancellation edge cases

TEST(SimulatorEdge, CancelFromInsideFiringCallback) {
  Simulator sim;
  bool second_ran = false;
  EventId second = sim.scheduleAt(SimTime::millis(20.0),
                                  [&] { second_ran = true; });
  bool cancel_ok = false;
  sim.scheduleAt(SimTime::millis(10.0),
                 [&] { cancel_ok = sim.cancel(second); });
  sim.runAll();
  EXPECT_TRUE(cancel_ok);
  EXPECT_FALSE(second_ran);
  EXPECT_EQ(sim.eventsExecuted(), 1u);
  EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(SimulatorEdge, CancelOwnIdFromInsideCallbackReturnsFalse) {
  // By the time a callback runs, its own id is already dead.
  Simulator sim;
  bool self_cancel = true;
  EventId id{};
  id = sim.scheduleAt(SimTime::millis(1.0),
                      [&] { self_cancel = sim.cancel(id); });
  sim.runAll();
  EXPECT_FALSE(self_cancel);
}

TEST(SimulatorEdge, CancelAlreadyFiredIdReturnsFalse) {
  Simulator sim;
  const EventId id = sim.scheduleAt(SimTime::millis(1.0), [] {});
  sim.runAll();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorEdge, CancelIsIdempotent) {
  Simulator sim;
  const EventId id = sim.scheduleAt(SimTime::millis(1.0), [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(SimulatorEdge, StaleIdDoesNotCancelSlotReuser) {
  // After cancel, the slot is recycled. The old id must not be able to
  // cancel the new occupant (generation check).
  Simulator sim;
  const EventId old_id = sim.scheduleAt(SimTime::millis(5.0), [] {});
  ASSERT_TRUE(sim.cancel(old_id));
  bool reuser_ran = false;
  sim.scheduleAt(SimTime::millis(6.0), [&] { reuser_ran = true; });
  EXPECT_FALSE(sim.cancel(old_id));
  sim.runAll();
  EXPECT_TRUE(reuser_ran);
}

TEST(SimulatorEdge, StepSkipsCancelledTombstones) {
  Simulator sim;
  std::vector<int> order;
  std::array<EventId, 4> ids{};
  for (int i = 0; i < 4; ++i) {
    ids[static_cast<std::size_t>(i)] = sim.scheduleAt(
        SimTime::millis(static_cast<double>(i + 1)),
        [&order, i] { order.push_back(i); });
  }
  ASSERT_TRUE(sim.cancel(ids[0]));
  ASSERT_TRUE(sim.cancel(ids[2]));
  EXPECT_TRUE(sim.step());  // skips tombstone at t=1, fires i=1
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(sim.now().ms(), 2.0);
  EXPECT_TRUE(sim.step());  // skips tombstone at t=3, fires i=3
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_FALSE(sim.step());  // queue drained
}

TEST(SimulatorEdge, PendingEventsTracksMixedOperations) {
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(sim.scheduleAt(SimTime::millis(static_cast<double>(i + 1)),
                                 [] {}));
  }
  EXPECT_EQ(sim.pendingEvents(), 100u);
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    ASSERT_TRUE(sim.cancel(ids[i]));
  }
  EXPECT_EQ(sim.pendingEvents(), 50u);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sim.step());
  }
  EXPECT_EQ(sim.pendingEvents(), 40u);
  sim.runAll();
  EXPECT_EQ(sim.pendingEvents(), 0u);
  EXPECT_EQ(sim.eventsExecuted(), 50u);
}

TEST(SimulatorEdge, SameTimestampFifoSurvivesHeavyChurn) {
  // Interleave schedule/cancel at one timestamp; the survivors must still
  // fire in the order they were scheduled.
  Simulator sim;
  std::vector<int> order;
  std::vector<EventId> cancelled;
  for (int i = 0; i < 200; ++i) {
    const EventId id = sim.scheduleAt(SimTime::millis(10.0),
                                      [&order, i] { order.push_back(i); });
    if (i % 3 != 0) {
      cancelled.push_back(id);
    }
  }
  for (const EventId id : cancelled) {
    ASSERT_TRUE(sim.cancel(id));
  }
  sim.runAll();
  std::vector<int> expected;
  for (int i = 0; i < 200; i += 3) {
    expected.push_back(i);
  }
  EXPECT_EQ(order, expected);
}

TEST(SimulatorEdge, IdenticalRunsProduceIdenticalTraces) {
  // Two simulators driven by the same schedule/cancel sequence must fire
  // the same events at the same times in the same order.
  const auto drive = [] {
    Simulator sim;
    std::vector<std::pair<double, int>> trace;
    std::vector<EventId> ids;
    for (int i = 0; i < 500; ++i) {
      const double t = static_cast<double>((i * 7919) % 97);
      ids.push_back(sim.scheduleAt(
          SimTime::millis(t),
          [&trace, &sim, i] { trace.emplace_back(sim.now().ms(), i); }));
    }
    for (std::size_t i = 0; i < ids.size(); i += 5) {
      sim.cancel(ids[i]);
    }
    sim.runAll();
    return trace;
  };
  EXPECT_EQ(drive(), drive());
}

// ---------------------------------------------------------------------------
// requestStop() between-runs semantics

TEST(SimulatorEdge, StopRequestedBetweenRunsHaltsNextRun) {
  Simulator sim;
  int fired = 0;
  sim.scheduleAt(SimTime::millis(10.0), [&] { ++fired; });
  sim.requestStop();
  EXPECT_TRUE(sim.stopPending());
  sim.runAll();  // consumes the stop: fires nothing, clock untouched
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(sim.now().ms(), 0.0);
  EXPECT_FALSE(sim.stopPending());
  sim.runAll();  // flag consumed: this run proceeds normally
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().ms(), 10.0);
}

TEST(SimulatorEdge, StopRequestedBetweenRunsHaltsRunUntilWithoutIdling) {
  Simulator sim;
  sim.requestStop();
  sim.runUntil(SimTime::millis(100.0));
  // A consumed pending stop must not idle the clock to the horizon.
  EXPECT_DOUBLE_EQ(sim.now().ms(), 0.0);
}

TEST(SimulatorEdge, StepIgnoresPendingStop) {
  Simulator sim;
  bool ran = false;
  sim.scheduleAt(SimTime::millis(1.0), [&] { ran = true; });
  sim.requestStop();
  EXPECT_TRUE(sim.step());  // step() is already a single-event run
  EXPECT_TRUE(ran);
  EXPECT_TRUE(sim.stopPending());  // flag untouched, next run consumes it
}

TEST(SimulatorEdge, MidRunStopLeavesClockAtStoppingEvent) {
  Simulator sim;
  int fired = 0;
  sim.scheduleAt(SimTime::millis(10.0), [&] {
    ++fired;
    sim.requestStop();
  });
  sim.scheduleAt(SimTime::millis(20.0), [&] { ++fired; });
  sim.runUntil(SimTime::millis(100.0));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().ms(), 10.0);
  EXPECT_EQ(sim.pendingEvents(), 1u);
  sim.runUntil(SimTime::millis(100.0));  // resumes where it left off
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now().ms(), 100.0);
}

// ---------------------------------------------------------------------------
// EventFn wrapper

TEST(EventFn, EmptyByDefault) {
  EventFn<void()> fn;
  EXPECT_TRUE(fn == nullptr);
  EXPECT_FALSE(fn != nullptr);
}

TEST(EventFn, InvokesSmallCaptureInline) {
  int hits = 0;
  EventFn<void()> fn = [&hits] { ++hits; };
  EXPECT_TRUE(fn != nullptr);
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(EventFn, PassesArgumentsAndReturnsValue) {
  EventFn<int(int, int)> fn = [](int a, int b) { return a * 10 + b; };
  EXPECT_EQ(fn(3, 4), 34);
}

TEST(EventFn, LargeCaptureFallsBackToHeap) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes: exceeds inline storage
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = i + 1;
  }
  EventFn<std::uint64_t()> fn = [big] {
    std::uint64_t sum = 0;
    for (const std::uint64_t v : big) {
      sum += v;
    }
    return sum;
  };
  EXPECT_EQ(fn(), 136u);
}

TEST(EventFn, MoveTransfersOwnership) {
  int hits = 0;
  EventFn<void()> a = [&hits] { ++hits; };
  EventFn<void()> b = std::move(a);
  EXPECT_TRUE(a == nullptr);  // NOLINT(bugprone-use-after-move): documented
  EXPECT_TRUE(b != nullptr);
  b();
  EXPECT_EQ(hits, 1);
}

TEST(EventFn, MoveAssignDestroysPreviousTarget) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> alive = token;
  EventFn<void()> fn = [token] {};
  token.reset();
  EXPECT_FALSE(alive.expired());
  fn = [] {};
  EXPECT_TRUE(alive.expired());  // old capture destroyed on assignment
}

TEST(EventFn, HoldsMoveOnlyCapture) {
  auto p = std::make_unique<int>(42);
  EventFn<int()> fn = [p = std::move(p)] { return *p; };
  EXPECT_EQ(fn(), 42);
}

TEST(EventFn, NullptrAssignmentClears) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> alive = token;
  EventFn<void()> fn = [token] {};
  token.reset();
  fn = nullptr;
  EXPECT_TRUE(fn == nullptr);
  EXPECT_TRUE(alive.expired());
}

}  // namespace
}  // namespace rtdrm::sim
