// ShardedEngine: barrier-window causality, det/fast post semantics,
// thread-count independence, stop handshake.
#include "sim/sharded.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "obs/metrics.hpp"

namespace rtdrm::sim {
namespace {

ShardedConfig shardedConfig(std::size_t shards, parallel::SimMode mode,
                            double lookahead_ms = 1.0) {
  ShardedConfig cfg;
  cfg.shards = shards;
  cfg.mode = mode;
  cfg.lookahead = SimDuration::millis(lookahead_ms);
  return cfg;
}

TEST(ShardedEngine, SingleShardDegeneratesToPlainSimulator) {
  ShardedEngine engine(ShardedConfig{});
  ASSERT_EQ(engine.shardCount(), 1u);
  std::vector<int> order;
  engine.control().scheduleAt(SimTime::millis(30.0),
                              [&] { order.push_back(3); });
  engine.control().scheduleAt(SimTime::millis(10.0),
                              [&] { order.push_back(1); });
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(engine.now().ms(), 20.0);
  EXPECT_DOUBLE_EQ(engine.control().now().ms(), 20.0);
  engine.runFor(SimDuration::millis(80.0));
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  // The degenerate path never opens windows or runs barriers.
  EXPECT_EQ(engine.windowsRun(), 0u);
  EXPECT_EQ(engine.barriersRun(), 0u);
}

TEST(ShardedEngine, ShardsAdvanceInLockstepWindows) {
  ShardedEngine engine(
      shardedConfig(3, parallel::SimMode::kDeterministic));
  int fired = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    engine.shard(s).scheduleAt(SimTime::millis(5.0 + double(s)),
                               [&] { ++fired; });
  }
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(engine.now().ms(), 20.0);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(engine.shard(s).now().ms(), 20.0);
  }
  EXPECT_GT(engine.windowsRun(), 0u);
  EXPECT_EQ(engine.barriersRun(), engine.windowsRun());
}

TEST(ShardedEngine, QuiescentCrossPostSchedulesDirectly) {
  ShardedEngine engine(
      shardedConfig(2, parallel::SimMode::kDeterministic));
  double fired_at = -1.0;
  const auto status =
      engine.post(0, 1, SimTime::millis(4.0),
                  [&] { fired_at = engine.shard(1).now().ms(); });
  EXPECT_EQ(status, ShardedEngine::PostStatus::kScheduled);
  engine.runUntil(SimTime::millis(10.0));
  EXPECT_DOUBLE_EQ(fired_at, 4.0);
  EXPECT_EQ(engine.crossPosts(), 1u);
}

TEST(ShardedEngine, InWindowPostAtCrossHorizonIsQueuedAndFires) {
  ShardedEngine engine(
      shardedConfig(2, parallel::SimMode::kDeterministic));
  double fired_at = -1.0;
  ShardedEngine::PostStatus status{};
  engine.shard(1).scheduleAt(SimTime::millis(5.0), [&] {
    status = engine.post(1, 0, engine.crossHorizon(),
                         [&] { fired_at = engine.shard(0).now().ms(); });
  });
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_EQ(status, ShardedEngine::PostStatus::kQueued);
  // The window opened at the 5 ms event spans at most one lookahead.
  EXPECT_GE(fired_at, 5.0);
  EXPECT_LE(fired_at, 6.0);
}

TEST(ShardedEngine, DeterministicModeRejectsInWindowPost) {
  ShardedEngine engine(
      shardedConfig(2, parallel::SimMode::kDeterministic));
  bool fired = false;
  ShardedEngine::PostStatus status{};
  engine.shard(1).scheduleAt(SimTime::millis(5.0), [&] {
    // Targets the posting shard's *current* time — strictly inside the
    // open window, which deterministic mode must refuse.
    status = engine.post(1, 0, engine.shard(1).now(), [&] { fired = true; });
  });
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_EQ(status, ShardedEngine::PostStatus::kRejected);
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.rejectedPosts(), 1u);
  const std::string& diag = engine.lastRejection();
  EXPECT_NE(diag.find("shard 1"), std::string::npos);
  EXPECT_NE(diag.find("deterministic mode requires"), std::string::npos);
}

TEST(ShardedEngine, FastModeClampsInWindowPostToBarrier) {
  ShardedEngine engine(shardedConfig(2, parallel::SimMode::kFast));
  double fired_at = -1.0;
  double barrier = -1.0;
  ShardedEngine::PostStatus status{};
  engine.shard(1).scheduleAt(SimTime::millis(5.0), [&] {
    barrier = engine.crossHorizon().ms();
    status = engine.post(1, 0, engine.shard(1).now(),
                         [&] { fired_at = engine.shard(0).now().ms(); });
  });
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_EQ(status, ShardedEngine::PostStatus::kClamped);
  EXPECT_DOUBLE_EQ(fired_at, barrier);  // slipped to the barrier, not lost
  EXPECT_EQ(engine.clampedPosts(), 1u);
  EXPECT_EQ(engine.rejectedPosts(), 0u);
}

TEST(ShardedEngine, MailboxMergeOrderIsCanonical) {
  // Two source shards post to shard 0 at the same timestamp within one
  // window; delivery must follow (time, src, seq) regardless of the order
  // the windows happened to execute in.
  for (const auto mode :
       {parallel::SimMode::kDeterministic, parallel::SimMode::kFast}) {
    ShardedEngine engine(shardedConfig(3, mode));
    std::vector<int> order;
    engine.shard(2).scheduleAt(SimTime::millis(5.0), [&] {
      engine.post(2, 0, engine.crossHorizon(), [&] { order.push_back(20); });
      engine.post(2, 0, engine.crossHorizon(), [&] { order.push_back(21); });
    });
    engine.shard(1).scheduleAt(SimTime::millis(5.0), [&] {
      engine.post(1, 0, engine.crossHorizon(), [&] { order.push_back(10); });
    });
    engine.runUntil(SimTime::millis(20.0));
    EXPECT_EQ(order, (std::vector<int>{10, 20, 21}))
        << "mode=" << parallel::simModeName(mode);
  }
}

TEST(ShardedEngine, FastModeResultIndependentOfThreadCount) {
  // A relay chain that bounces a token across shards through the mailbox
  // path; the firing schedule must be identical for any worker count.
  auto run = [](unsigned threads) {
    ShardedConfig cfg = shardedConfig(4, parallel::SimMode::kFast);
    cfg.threads = threads;
    ShardedEngine engine(cfg);
    std::vector<double> log;
    std::function<void(std::size_t, int)> hop = [&](std::size_t at_shard,
                                                    int remaining) {
      log.push_back(engine.shard(at_shard).now().ms());
      if (remaining == 0) {
        return;
      }
      const std::size_t next = (at_shard + 1) % 4;
      engine.post(at_shard, next, engine.crossHorizon(),
                  [&hop, next, remaining] { hop(next, remaining - 1); });
    };
    engine.shard(0).scheduleAt(SimTime::millis(1.0), [&] { hop(0, 12); });
    engine.runUntil(SimTime::millis(60.0));
    return log;
  };
  const std::vector<double> one = run(1);
  const std::vector<double> four = run(4);
  ASSERT_EQ(one.size(), 13u);
  EXPECT_EQ(one, four);
}

TEST(ShardedEngine, BarrierHooksRunOncePerBarrier) {
  ShardedEngine engine(
      shardedConfig(2, parallel::SimMode::kDeterministic));
  std::uint64_t hook_runs = 0;
  engine.addBarrierHook([&] { ++hook_runs; });
  engine.shard(1).scheduleAt(SimTime::millis(1.0), [] {});
  engine.shard(1).scheduleAt(SimTime::millis(7.0), [] {});
  engine.runUntil(SimTime::millis(10.0));
  EXPECT_GT(hook_runs, 0u);
  EXPECT_EQ(hook_runs, engine.barriersRun());
}

TEST(ShardedEngine, RequestStopHaltsAtNextBarrier) {
  ShardedEngine engine(
      shardedConfig(2, parallel::SimMode::kDeterministic));
  bool late_fired = false;
  engine.shard(1).scheduleAt(SimTime::millis(2.0),
                             [&] { engine.requestStop(); });
  engine.shard(1).scheduleAt(SimTime::millis(15.0),
                             [&] { late_fired = true; });
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_FALSE(late_fired);
  EXPECT_LT(engine.now().ms(), 15.0);
  // The stop was consumed; the next run proceeds normally.
  EXPECT_FALSE(engine.stopPending());
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_TRUE(late_fired);
}

TEST(ShardedEngine, ShardLevelStopHaltsTheEngine) {
  ShardedEngine engine(
      shardedConfig(2, parallel::SimMode::kDeterministic));
  bool late_fired = false;
  engine.shard(1).scheduleAt(SimTime::millis(2.0),
                             [&] { engine.shard(1).requestStop(); });
  engine.shard(0).scheduleAt(SimTime::millis(15.0),
                             [&] { late_fired = true; });
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_FALSE(late_fired);
}

TEST(ShardedEngine, ExportsCountersToRegistry) {
  ShardedEngine engine(
      shardedConfig(2, parallel::SimMode::kDeterministic));
  engine.shard(1).scheduleAt(SimTime::millis(1.0), [&] {
    engine.post(1, 0, engine.crossHorizon(), [] {});
  });
  engine.runUntil(SimTime::millis(5.0));
  obs::MetricsRegistry reg;
  engine.exportMetrics(reg);
  const obs::Counter* windows = reg.findCounter("sim.sharded.windows");
  ASSERT_NE(windows, nullptr);
  EXPECT_EQ(windows->value(), engine.windowsRun());
  const obs::Counter* cross = reg.findCounter("sim.sharded.cross_posts");
  ASSERT_NE(cross, nullptr);
  EXPECT_EQ(cross->value(), 1u);
}

TEST(SimulatorStop, RunUntilReportsStopConsumption) {
  Simulator sim;
  sim.scheduleAt(SimTime::millis(1.0), [&] { sim.requestStop(); });
  sim.scheduleAt(SimTime::millis(5.0), [] {});
  EXPECT_FALSE(sim.runUntil(SimTime::millis(10.0)));
  EXPECT_FALSE(sim.stopPending());
  EXPECT_TRUE(sim.runUntil(SimTime::millis(10.0)));
}

TEST(SimulatorPeek, PeekSkipsCancelledHeads) {
  Simulator sim;
  const EventId doomed = sim.scheduleAt(SimTime::millis(1.0), [] {});
  sim.scheduleAt(SimTime::millis(3.0), [] {});
  sim.cancel(doomed);
  SimTime t;
  ASSERT_TRUE(sim.peekNextEvent(&t));
  EXPECT_DOUBLE_EQ(t.ms(), 3.0);
  Simulator empty;
  EXPECT_FALSE(empty.peekNextEvent(&t));
}

}  // namespace
}  // namespace rtdrm::sim
