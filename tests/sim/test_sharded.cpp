// ShardedEngine: barrier-window causality, det/fast post semantics,
// adaptive-window safety, thread-count independence, stop handshake.
#include "sim/sharded.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "obs/metrics.hpp"

namespace rtdrm::sim {
namespace {

ShardedConfig shardedConfig(std::size_t shards, parallel::SimMode mode,
                            double lookahead_ms = 1.0) {
  ShardedConfig cfg;
  cfg.shards = shards;
  cfg.mode = mode;
  cfg.lookahead = SimDuration::millis(lookahead_ms);
  return cfg;
}

TEST(ShardedEngine, SingleShardDegeneratesToPlainSimulator) {
  ShardedEngine engine(ShardedConfig{});
  ASSERT_EQ(engine.shardCount(), 1u);
  std::vector<int> order;
  engine.control().scheduleAt(SimTime::millis(30.0),
                              [&] { order.push_back(3); });
  engine.control().scheduleAt(SimTime::millis(10.0),
                              [&] { order.push_back(1); });
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(engine.now().ms(), 20.0);
  EXPECT_DOUBLE_EQ(engine.control().now().ms(), 20.0);
  engine.runFor(SimDuration::millis(80.0));
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  // The degenerate path never opens windows or runs barriers.
  EXPECT_EQ(engine.windowsRun(), 0u);
  EXPECT_EQ(engine.barriersRun(), 0u);
}

TEST(ShardedEngine, ShardsAdvanceInLockstepWindows) {
  ShardedEngine engine(
      shardedConfig(3, parallel::SimMode::kDeterministic));
  int fired = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    engine.shard(s).scheduleAt(SimTime::millis(5.0 + double(s)),
                               [&] { ++fired; });
  }
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(engine.now().ms(), 20.0);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(engine.shard(s).now().ms(), 20.0);
  }
  EXPECT_GT(engine.windowsRun(), 0u);
  // Barriers count both window rounds and sync points.
  EXPECT_GE(engine.barriersRun(), engine.windowsRun());
}

TEST(ShardedEngine, QuiescentCrossPostSchedulesDirectly) {
  ShardedEngine engine(
      shardedConfig(2, parallel::SimMode::kDeterministic));
  double fired_at = -1.0;
  const auto status =
      engine.post(0, 1, SimTime::millis(4.0),
                  [&] { fired_at = engine.shard(1).now().ms(); });
  EXPECT_EQ(status, ShardedEngine::PostStatus::kScheduled);
  engine.runUntil(SimTime::millis(10.0));
  EXPECT_DOUBLE_EQ(fired_at, 4.0);
  EXPECT_EQ(engine.crossPosts(), 1u);
}

TEST(ShardedEngine, InWindowPostAtPostHorizonIsQueuedAndFires) {
  ShardedEngine engine(
      shardedConfig(2, parallel::SimMode::kDeterministic));
  double fired_at = -1.0;
  ShardedEngine::PostStatus status{};
  engine.shard(1).scheduleAt(SimTime::millis(5.0), [&] {
    status = engine.post(1, 0, engine.postHorizon(1),
                         [&] { fired_at = engine.shard(0).now().ms(); });
  });
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_EQ(status, ShardedEngine::PostStatus::kQueued);
  // The stamp is the emitting event's time plus the lookahead — exactly,
  // independent of how the barrier windows were sized.
  EXPECT_DOUBLE_EQ(fired_at, 6.0);
}

TEST(ShardedEngine, DeterministicModeRejectsInWindowPost) {
  ShardedEngine engine(
      shardedConfig(2, parallel::SimMode::kDeterministic));
  bool fired = false;
  ShardedEngine::PostStatus status{};
  engine.shard(1).scheduleAt(SimTime::millis(5.0), [&] {
    // Targets the posting shard's *current* time — before the emitter's
    // horizon, which deterministic mode must refuse.
    status = engine.post(1, 0, engine.shard(1).now(), [&] { fired = true; });
  });
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_EQ(status, ShardedEngine::PostStatus::kRejected);
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.rejectedPosts(), 1u);
  const std::string& diag = engine.lastRejection();
  EXPECT_NE(diag.find("shard 1"), std::string::npos);
  EXPECT_NE(diag.find("deterministic mode requires"), std::string::npos);
}

TEST(ShardedEngine, FastModeClampsInWindowPostToEmitterHorizon) {
  ShardedEngine engine(shardedConfig(2, parallel::SimMode::kFast));
  double fired_at = -1.0;
  double horizon = -1.0;
  ShardedEngine::PostStatus status{};
  engine.shard(1).scheduleAt(SimTime::millis(5.0), [&] {
    horizon = engine.postHorizon(1).ms();
    status = engine.post(1, 0, engine.shard(1).now(),
                         [&] { fired_at = engine.shard(0).now().ms(); });
  });
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_EQ(status, ShardedEngine::PostStatus::kClamped);
  // Slipped to the emitter's horizon (bounded skew <= lookahead), not lost.
  EXPECT_DOUBLE_EQ(fired_at, horizon);
  EXPECT_DOUBLE_EQ(fired_at, 6.0);
  EXPECT_EQ(engine.clampedPosts(), 1u);
  EXPECT_EQ(engine.rejectedPosts(), 0u);
}

TEST(ShardedEngine, MailboxMergeOrderIsCanonical) {
  // Two source shards post to shard 0 at the same timestamp within one
  // round; delivery must follow (time, src, seq) regardless of the order
  // the windows happened to execute or merge in.
  for (const auto mode :
       {parallel::SimMode::kDeterministic, parallel::SimMode::kFast}) {
    ShardedEngine engine(shardedConfig(3, mode));
    std::vector<int> order;
    engine.shard(2).scheduleAt(SimTime::millis(5.0), [&] {
      engine.post(2, 0, engine.postHorizon(2), [&] { order.push_back(20); });
      engine.post(2, 0, engine.postHorizon(2), [&] { order.push_back(21); });
    });
    engine.shard(1).scheduleAt(SimTime::millis(5.0), [&] {
      engine.post(1, 0, engine.postHorizon(1), [&] { order.push_back(10); });
    });
    engine.runUntil(SimTime::millis(20.0));
    EXPECT_EQ(order, (std::vector<int>{10, 20, 21}))
        << "mode=" << parallel::simModeName(mode);
  }
}

TEST(ShardedEngine, LocalEventsOrderBeforeMergedPostsAtSameTime) {
  // A merged post landing at exactly the timestamp of a destination-local
  // event must fire after it: merged calendar keys sit in a band above
  // every local key (Simulator::scheduleAtMerged).
  ShardedEngine engine(
      shardedConfig(2, parallel::SimMode::kDeterministic));
  std::vector<int> order;
  engine.shard(0).scheduleAt(SimTime::millis(6.0),
                             [&] { order.push_back(1); });
  engine.shard(1).scheduleAt(SimTime::millis(5.0), [&] {
    engine.post(1, 0, engine.postHorizon(1), [&] { order.push_back(2); });
  });
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ShardedEngine, FastModeResultIndependentOfThreadCount) {
  // A relay chain that bounces a token across shards through the mailbox
  // path; the firing schedule must be identical for any worker count.
  auto run = [](unsigned threads) {
    ShardedConfig cfg = shardedConfig(4, parallel::SimMode::kFast);
    cfg.threads = threads;
    ShardedEngine engine(cfg);
    std::vector<double> log;
    std::function<void(std::size_t, int)> hop = [&](std::size_t at_shard,
                                                    int remaining) {
      log.push_back(engine.shard(at_shard).now().ms());
      if (remaining == 0) {
        return;
      }
      const std::size_t next = (at_shard + 1) % 4;
      engine.post(at_shard, next, engine.postHorizon(at_shard),
                  [&hop, next, remaining] { hop(next, remaining - 1); });
    };
    engine.shard(0).scheduleAt(SimTime::millis(1.0), [&] { hop(0, 12); });
    engine.runUntil(SimTime::millis(60.0));
    return log;
  };
  const std::vector<double> one = run(1);
  const std::vector<double> four = run(4);
  ASSERT_EQ(one.size(), 13u);
  EXPECT_EQ(one, four);
}

TEST(ShardedEngine, AdaptiveWindowNeverCrossesPendingEmission) {
  // The adaptive-lookahead safety case: shard 1 holds an event at 1 ms
  // that will post into shard 2 at its horizon (2 ms), and shard 2's next
  // local event sits far beyond it at 5 ms. Shard 2's window this round
  // must stop at shard 1's earliest possible emission (1 ms + lookahead)
  // — widening to its own next event would run 5 ms before the merged
  // 2 ms post exists. The sync interval is pushed out so only the
  // adaptive horizon computation stands between the post and the bug.
  ShardedConfig cfg = shardedConfig(3, parallel::SimMode::kDeterministic);
  cfg.policy = parallel::LookaheadPolicy::kAdaptive;
  cfg.sync_interval = SimDuration::millis(100.0);
  ShardedEngine engine(cfg);
  std::vector<std::pair<int, double>> order;  // (tag, fire time)
  engine.shard(1).scheduleAt(SimTime::millis(1.0), [&] {
    order.emplace_back(1, engine.shard(1).now().ms());
    engine.post(1, 2, engine.postHorizon(1), [&] {
      order.emplace_back(2, engine.shard(2).now().ms());
    });
  });
  engine.shard(2).scheduleAt(SimTime::millis(5.0), [&] {
    order.emplace_back(3, engine.shard(2).now().ms());
  });
  engine.runUntil(SimTime::millis(10.0));
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], (std::pair<int, double>{1, 1.0}));
  EXPECT_EQ(order[1], (std::pair<int, double>{2, 2.0}));
  EXPECT_EQ(order[2], (std::pair<int, double>{3, 5.0}));
  // Shard 2 (and the empty shard 0) skipped the first round entirely.
  EXPECT_GT(engine.windowStats().shard_windows_skipped, 0u);
}

TEST(ShardedEngine, AdaptiveRunsFewerRoundsThanStaticSameSchedule) {
  // Same calendar under both policies: identical per-shard firing
  // schedules (the determinism contract), far fewer barrier rounds.
  struct RunResult {
    std::vector<double> s1;
    std::vector<double> s2;
    std::uint64_t rounds = 0;
    std::uint64_t skipped = 0;
  };
  auto run = [](parallel::LookaheadPolicy policy) {
    ShardedConfig cfg =
        shardedConfig(3, parallel::SimMode::kDeterministic, 0.01);
    cfg.policy = policy;
    cfg.sync_interval = SimDuration::millis(100.0);
    ShardedEngine engine(cfg);
    RunResult r;
    // A calendar denser than the lookahead on shard 1: the adaptive
    // policy's widened window for the round's earliest shard clears up to
    // two lookaheads of it per round, halving the round count.
    for (int k = 0; k < 200; ++k) {
      engine.shard(1).scheduleAt(
          SimTime::millis(0.1 + 0.001 * k),
          [&r, &engine] { r.s1.push_back(engine.shard(1).now().ms()); });
    }
    engine.shard(2).scheduleAt(SimTime::millis(5.0), [&r, &engine] {
      r.s2.push_back(engine.shard(2).now().ms());
    });
    engine.runUntil(SimTime::millis(6.0));
    r.rounds = engine.windowsRun();
    r.skipped = engine.windowStats().shard_windows_skipped;
    return r;
  };
  const RunResult st = run(parallel::LookaheadPolicy::kStatic);
  const RunResult ad = run(parallel::LookaheadPolicy::kAdaptive);
  EXPECT_EQ(st.s1, ad.s1);
  EXPECT_EQ(st.s2, ad.s2);
  ASSERT_EQ(ad.s1.size(), 200u);
  ASSERT_EQ(ad.s2.size(), 1u);
  EXPECT_LT(ad.rounds, st.rounds);
  EXPECT_GT(ad.skipped, 0u);
}

TEST(ShardedEngine, BarrierHooksRunAtSyncPoints) {
  // Hooks run at multiples of sync_interval reached while events are
  // pending — a schedule that depends only on the calendar, so it is
  // identical under both lookahead policies.
  std::uint64_t runs_by_policy[2] = {0, 0};
  for (const auto policy : {parallel::LookaheadPolicy::kStatic,
                            parallel::LookaheadPolicy::kAdaptive}) {
    ShardedConfig cfg = shardedConfig(2, parallel::SimMode::kDeterministic);
    cfg.policy = policy;
    ShardedEngine engine(cfg);
    std::uint64_t hook_runs = 0;
    engine.addBarrierHook([&] { ++hook_runs; });
    engine.shard(1).scheduleAt(SimTime::millis(1.0), [] {});
    engine.shard(1).scheduleAt(SimTime::millis(7.0), [] {});
    engine.runUntil(SimTime::millis(10.0));
    EXPECT_GT(hook_runs, 0u);
    EXPECT_EQ(hook_runs, engine.syncPointsRun());
    runs_by_policy[static_cast<int>(policy)] = hook_runs;
  }
  EXPECT_EQ(runs_by_policy[0], runs_by_policy[1]);
}

TEST(ShardedEngine, RequestStopHaltsAtNextBarrier) {
  ShardedEngine engine(
      shardedConfig(2, parallel::SimMode::kDeterministic));
  bool late_fired = false;
  engine.shard(1).scheduleAt(SimTime::millis(2.0),
                             [&] { engine.requestStop(); });
  engine.shard(1).scheduleAt(SimTime::millis(15.0),
                             [&] { late_fired = true; });
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_FALSE(late_fired);
  EXPECT_LT(engine.now().ms(), 15.0);
  // The stop was consumed; the next run proceeds normally.
  EXPECT_FALSE(engine.stopPending());
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_TRUE(late_fired);
}

TEST(ShardedEngine, ShardLevelStopHaltsTheEngine) {
  ShardedEngine engine(
      shardedConfig(2, parallel::SimMode::kDeterministic));
  bool late_fired = false;
  engine.shard(1).scheduleAt(SimTime::millis(2.0),
                             [&] { engine.shard(1).requestStop(); });
  engine.shard(0).scheduleAt(SimTime::millis(15.0),
                             [&] { late_fired = true; });
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_FALSE(late_fired);
}

TEST(ShardedEngine, StopOnSkippedShardStillHaltsTheEngine) {
  // Regression (PR-6 stop handshake): a shard whose window is skipped —
  // here shard 1, which never has an event — still gets its stop request
  // honored at the next barrier instead of being silently ignored until
  // some round happens to run it.
  ShardedEngine engine(
      shardedConfig(3, parallel::SimMode::kDeterministic));
  bool late_fired = false;
  engine.shard(0).scheduleAt(SimTime::millis(2.0),
                             [&] { engine.shard(1).requestStop(); });
  engine.shard(2).scheduleAt(SimTime::millis(15.0),
                             [&] { late_fired = true; });
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_FALSE(late_fired);
  EXPECT_LT(engine.now().ms(), 15.0);
  // Consumed, not stale: the next run proceeds and fires the late event.
  EXPECT_FALSE(engine.shard(1).stopPending());
  engine.runUntil(SimTime::millis(20.0));
  EXPECT_TRUE(late_fired);
}

TEST(ShardedEngine, IdleForwardHonorsPendingShardStop) {
  // Regression (PR-6 stop handshake): with no events anywhere, the old
  // idle-forwarding path consumed a pending shard stop *and* advanced all
  // clocks to `until` as if nothing happened. The stop must halt the run
  // before any clock moves, and must not remain pending afterwards.
  ShardedEngine engine(
      shardedConfig(2, parallel::SimMode::kDeterministic));
  engine.shard(1).requestStop();
  engine.runUntil(SimTime::millis(10.0));
  EXPECT_DOUBLE_EQ(engine.now().ms(), 0.0);
  EXPECT_FALSE(engine.shard(1).stopPending());
  engine.runUntil(SimTime::millis(10.0));
  EXPECT_DOUBLE_EQ(engine.now().ms(), 10.0);
  EXPECT_DOUBLE_EQ(engine.shard(1).now().ms(), 10.0);
}

TEST(ShardedEngine, ExportsCountersToRegistry) {
  ShardedEngine engine(
      shardedConfig(2, parallel::SimMode::kDeterministic));
  engine.shard(1).scheduleAt(SimTime::millis(1.0), [&] {
    engine.post(1, 0, engine.postHorizon(1), [] {});
  });
  engine.runUntil(SimTime::millis(5.0));
  obs::MetricsRegistry reg;
  engine.exportMetrics(reg);
  const obs::Counter* windows = reg.findCounter("sim.sharded.windows");
  ASSERT_NE(windows, nullptr);
  EXPECT_EQ(windows->value(), engine.windowsRun());
  const obs::Counter* cross = reg.findCounter("sim.sharded.cross_posts");
  ASSERT_NE(cross, nullptr);
  EXPECT_EQ(cross->value(), 1u);
  const obs::Counter* merged = reg.findCounter("sim.sharded.posts_merged");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->value(), 1u);
  const obs::Counter* skipped =
      reg.findCounter("sim.sharded.shard_windows_skipped");
  ASSERT_NE(skipped, nullptr);
  EXPECT_EQ(skipped->value(), engine.windowStats().shard_windows_skipped);
}

TEST(SimulatorStop, RunUntilReportsStopConsumption) {
  Simulator sim;
  sim.scheduleAt(SimTime::millis(1.0), [&] { sim.requestStop(); });
  sim.scheduleAt(SimTime::millis(5.0), [] {});
  EXPECT_FALSE(sim.runUntil(SimTime::millis(10.0)));
  EXPECT_FALSE(sim.stopPending());
  EXPECT_TRUE(sim.runUntil(SimTime::millis(10.0)));
}

TEST(SimulatorStop, ConsumeStopRequestIsOneShot) {
  Simulator sim;
  EXPECT_FALSE(sim.consumeStopRequest());
  sim.requestStop();
  EXPECT_TRUE(sim.stopPending());
  EXPECT_TRUE(sim.consumeStopRequest());
  EXPECT_FALSE(sim.stopPending());
  EXPECT_FALSE(sim.consumeStopRequest());
}

TEST(SimulatorPeek, PeekSkipsCancelledHeads) {
  Simulator sim;
  const EventId doomed = sim.scheduleAt(SimTime::millis(1.0), [] {});
  sim.scheduleAt(SimTime::millis(3.0), [] {});
  sim.cancel(doomed);
  SimTime t;
  ASSERT_TRUE(sim.peekNextEvent(&t));
  EXPECT_DOUBLE_EQ(t.ms(), 3.0);
  Simulator empty;
  EXPECT_FALSE(empty.peekNextEvent(&t));
}

TEST(SimulatorWindow, RunUntilBeforeIsHalfOpen) {
  Simulator sim;
  std::vector<int> order;
  sim.scheduleAt(SimTime::millis(1.0), [&] { order.push_back(1); });
  sim.scheduleAt(SimTime::millis(2.0), [&] { order.push_back(2); });
  EXPECT_TRUE(sim.runUntilBefore(SimTime::millis(2.0)));
  // Only the event strictly before the horizon fired; the clock still
  // advanced to the horizon.
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(sim.now().ms(), 2.0);
  // The boundary event is untouched and fires on the next (closed) run.
  EXPECT_TRUE(sim.runUntil(SimTime::millis(2.0)));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorWindow, RunUntilBeforeHonorsStop) {
  Simulator sim;
  bool late = false;
  sim.scheduleAt(SimTime::millis(1.0), [&] { sim.requestStop(); });
  sim.scheduleAt(SimTime::millis(2.0), [&] { late = true; });
  EXPECT_FALSE(sim.runUntilBefore(SimTime::millis(5.0)));
  EXPECT_FALSE(late);
  EXPECT_FALSE(sim.stopPending());
}

TEST(SimulatorWindow, MergedPostsOrderByBandSrcSeq) {
  // At one timestamp: every locally scheduled event first (in schedule
  // order), then merged cross-shard posts by (src, per-source seq) — the
  // canonical order no matter when the merges happened.
  Simulator sim;
  std::vector<int> order;
  const SimTime t = SimTime::millis(5.0);
  sim.scheduleAt(t, [&] { order.push_back(1); });
  sim.scheduleAtMerged(t, /*src_shard=*/2, /*src_seq=*/1,
                       [&] { order.push_back(21); });
  sim.scheduleAtMerged(t, /*src_shard=*/1, /*src_seq=*/2,
                       [&] { order.push_back(12); });
  sim.scheduleAtMerged(t, /*src_shard=*/1, /*src_seq=*/1,
                       [&] { order.push_back(11); });
  // A local event scheduled *after* the merges still precedes them.
  sim.scheduleAt(t, [&] { order.push_back(2); });
  sim.runUntil(SimTime::millis(6.0));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 11, 12, 21}));
}

}  // namespace
}  // namespace rtdrm::sim
