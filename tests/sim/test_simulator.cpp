#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rtdrm::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now().ms(), 0.0);
  EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.scheduleAt(SimTime::millis(30.0), [&] { order.push_back(3); });
  sim.scheduleAt(SimTime::millis(10.0), [&] { order.push_back(1); });
  sim.scheduleAt(SimTime::millis(20.0), [&] { order.push_back(2); });
  sim.runAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now().ms(), 30.0);
}

TEST(Simulator, SameTimestampFifoOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.scheduleAt(SimTime::millis(5.0), [&order, i] { order.push_back(i); });
  }
  sim.runAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  double seen = -1.0;
  sim.scheduleAfter(SimDuration::millis(12.5), [&] { seen = sim.now().ms(); });
  sim.runAll();
  EXPECT_DOUBLE_EQ(seen, 12.5);
}

TEST(Simulator, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.scheduleAt(SimTime::millis(10.0), [&] { ++fired; });
  sim.scheduleAt(SimTime::millis(50.0), [&] { ++fired; });
  sim.runUntil(SimTime::millis(20.0));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now().ms(), 20.0);  // idles forward to the horizon
  sim.runUntil(SimTime::millis(100.0));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsExactlyAtHorizonFire) {
  Simulator sim;
  bool fired = false;
  sim.scheduleAt(SimTime::millis(20.0), [&] { fired = true; });
  sim.runUntil(SimTime::millis(20.0));
  EXPECT_TRUE(fired);
}

TEST(Simulator, NestedSchedulingFromCallbacks) {
  Simulator sim;
  std::vector<double> times;
  sim.scheduleAfter(SimDuration::millis(1.0), [&] {
    times.push_back(sim.now().ms());
    sim.scheduleAfter(SimDuration::millis(1.0), [&] {
      times.push_back(sim.now().ms());
    });
  });
  sim.runAll();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id =
      sim.scheduleAfter(SimDuration::millis(5.0), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.runAll();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceReturnsFalse) {
  Simulator sim;
  const EventId id = sim.scheduleAfter(SimDuration::millis(5.0), [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.scheduleAfter(SimDuration::millis(5.0), [] {});
  sim.runAll();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelUnknownIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventId{999}));
}

TEST(Simulator, StepExecutesExactlyOneLiveEvent) {
  Simulator sim;
  int fired = 0;
  sim.scheduleAfter(SimDuration::millis(1.0), [&] { ++fired; });
  sim.scheduleAfter(SimDuration::millis(2.0), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, StepSkipsCancelledTombstones) {
  Simulator sim;
  const EventId a = sim.scheduleAfter(SimDuration::millis(1.0), [] {});
  int fired = 0;
  sim.scheduleAfter(SimDuration::millis(2.0), [&] { ++fired; });
  sim.cancel(a);
  EXPECT_TRUE(sim.step());  // skips tombstone, runs live event
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RequestStopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.scheduleAfter(SimDuration::millis(1.0), [&] {
    ++fired;
    sim.requestStop();
  });
  sim.scheduleAfter(SimDuration::millis(2.0), [&] { ++fired; });
  sim.runAll();
  EXPECT_EQ(fired, 1);
  sim.runAll();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsExecutedCountsLiveOnly) {
  Simulator sim;
  const EventId a = sim.scheduleAfter(SimDuration::millis(1.0), [] {});
  sim.scheduleAfter(SimDuration::millis(2.0), [] {});
  sim.cancel(a);
  sim.runAll();
  EXPECT_EQ(sim.eventsExecuted(), 1u);
}

TEST(Simulator, PendingEventsExcludesCancelled) {
  Simulator sim;
  const EventId a = sim.scheduleAfter(SimDuration::millis(1.0), [] {});
  sim.scheduleAfter(SimDuration::millis(2.0), [] {});
  EXPECT_EQ(sim.pendingEvents(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pendingEvents(), 1u);
}

TEST(SimulatorDeathTest, SchedulingInPastAsserts) {
  Simulator sim;
  sim.scheduleAfter(SimDuration::millis(10.0), [] {});
  sim.runAll();
  EXPECT_DEATH(sim.scheduleAt(SimTime::millis(5.0), [] {}), "past");
}

TEST(PeriodicActivity, TicksAtFixedIntervals) {
  Simulator sim;
  std::vector<double> times;
  PeriodicActivity act(sim, SimDuration::millis(10.0),
                       [&](std::uint64_t) { times.push_back(sim.now().ms()); });
  act.start(SimTime::millis(5.0));
  sim.runUntil(SimTime::millis(36.0));
  act.stop();
  EXPECT_EQ(times, (std::vector<double>{5.0, 15.0, 25.0, 35.0}));
}

TEST(PeriodicActivity, TickIndicesAreSequential) {
  Simulator sim;
  std::vector<std::uint64_t> ticks;
  PeriodicActivity act(sim, SimDuration::millis(1.0),
                       [&](std::uint64_t t) { ticks.push_back(t); });
  act.start(SimTime::zero());
  sim.runUntil(SimTime::millis(3.5));
  EXPECT_EQ(ticks, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(act.ticks(), 4u);
}

TEST(PeriodicActivity, StopFromWithinCallback) {
  Simulator sim;
  int count = 0;
  PeriodicActivity act(sim, SimDuration::millis(1.0), [&](std::uint64_t) {
    if (++count == 3) {
      act.stop();
    }
  });
  act.start(SimTime::zero());
  sim.runUntil(SimTime::millis(100.0));
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(act.running());
}

TEST(PeriodicActivity, StopPreventsFurtherTicks) {
  Simulator sim;
  int count = 0;
  PeriodicActivity act(sim, SimDuration::millis(1.0),
                       [&](std::uint64_t) { ++count; });
  act.start(SimTime::zero());
  sim.runUntil(SimTime::millis(2.5));
  act.stop();
  sim.runUntil(SimTime::millis(10.0));
  EXPECT_EQ(count, 3);  // t = 0, 1, 2
}

TEST(PeriodicActivity, StopIsIdempotent) {
  Simulator sim;
  PeriodicActivity act(sim, SimDuration::millis(1.0), [](std::uint64_t) {});
  act.start(SimTime::zero());
  act.stop();
  act.stop();
  EXPECT_FALSE(act.running());
}

}  // namespace
}  // namespace rtdrm::sim
