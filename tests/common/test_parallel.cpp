#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace rtdrm {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroIterationsIsNoOp) {
  bool called = false;
  parallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallelFor(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
              /*threads=*/1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ResultsMatchSerialSum) {
  const std::size_t n = 10000;
  std::vector<double> out(n, 0.0);
  parallelFor(n, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 0.5 * static_cast<double>(n) *
                              static_cast<double>(n - 1) / 2.0);
}

TEST(ParallelFor, PropagatesWorkerException) {
  EXPECT_THROW(
      parallelFor(100,
                  [](std::size_t i) {
                    if (i == 37) {
                      throw std::runtime_error("boom");
                    }
                  }),
      std::runtime_error);
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine) {
  std::atomic<int> count{0};
  parallelFor(3, [&](std::size_t) { count.fetch_add(1); }, /*threads=*/64);
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, GrainCoversEveryIndexExactlyOnce) {
  // Grain sizes that divide n unevenly must still visit each index once.
  for (const std::size_t grain : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{1000}}) {
    const std::size_t n = 123;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(n, [&](std::size_t i) { hits[i].fetch_add(1); },
                /*threads=*/4, grain);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "grain " << grain << " index " << i;
    }
  }
}

TEST(ParallelFor, GrainZeroIsTreatedAsOne) {
  std::atomic<int> count{0};
  parallelFor(10, [&](std::size_t) { count.fetch_add(1); }, /*threads=*/2,
              /*grain=*/0);
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelFor, PoolSurvivesRepeatedCalls) {
  // The persistent pool is reused across calls; hammer it to catch any
  // job-handoff race between consecutive submissions.
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::size_t> sum{0};
    parallelFor(64, [&](std::size_t i) { sum.fetch_add(i + 1); },
                /*threads=*/4);
    ASSERT_EQ(sum.load(), 64u * 65u / 2u) << "round " << round;
  }
}

TEST(ParallelFor, PoolUsableAfterWorkerException) {
  EXPECT_THROW(parallelFor(
                   16, [](std::size_t) { throw std::runtime_error("boom"); },
                   /*threads=*/4),
               std::runtime_error);
  std::atomic<int> count{0};
  parallelFor(16, [&](std::size_t) { count.fetch_add(1); }, /*threads=*/4);
  EXPECT_EQ(count.load(), 16);
}

TEST(ParallelFor, NestedCallRunsSerially) {
  // Nested parallelFor from inside a worker must not deadlock the pool.
  std::atomic<int> inner_total{0};
  parallelFor(
      4,
      [&](std::size_t) {
        parallelFor(8, [&](std::size_t) { inner_total.fetch_add(1); },
                    /*threads=*/4);
      },
      /*threads=*/2);
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(ParallelFor, WorkerCountIsPositive) {
  EXPECT_GE(parallelWorkerCount(), 1u);
}

}  // namespace
}  // namespace rtdrm
