#include "common/units.hpp"

#include <gtest/gtest.h>

namespace rtdrm {
namespace {

TEST(SimDuration, ConstructorsAndConversions) {
  EXPECT_DOUBLE_EQ(SimDuration::millis(250.0).ms(), 250.0);
  EXPECT_DOUBLE_EQ(SimDuration::seconds(1.5).ms(), 1500.0);
  EXPECT_DOUBLE_EQ(SimDuration::micros(500.0).ms(), 0.5);
  EXPECT_DOUBLE_EQ(SimDuration::seconds(2.0).sec(), 2.0);
  EXPECT_DOUBLE_EQ(SimDuration::zero().ms(), 0.0);
}

TEST(SimDuration, Arithmetic) {
  const auto a = SimDuration::millis(10.0);
  const auto b = SimDuration::millis(4.0);
  EXPECT_DOUBLE_EQ((a + b).ms(), 14.0);
  EXPECT_DOUBLE_EQ((a - b).ms(), 6.0);
  EXPECT_DOUBLE_EQ((a * 2.5).ms(), 25.0);
  EXPECT_DOUBLE_EQ((2.5 * a).ms(), 25.0);
  EXPECT_DOUBLE_EQ((a / 2.0).ms(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
}

TEST(SimDuration, CompoundAssignmentAndComparison) {
  auto a = SimDuration::millis(1.0);
  a += SimDuration::millis(2.0);
  EXPECT_DOUBLE_EQ(a.ms(), 3.0);
  a -= SimDuration::millis(0.5);
  EXPECT_DOUBLE_EQ(a.ms(), 2.5);
  EXPECT_LT(SimDuration::millis(1.0), SimDuration::millis(2.0));
  EXPECT_EQ(SimDuration::seconds(1.0), SimDuration::millis(1000.0));
}

TEST(SimTime, OffsetArithmetic) {
  const auto t = SimTime::seconds(1.0);
  EXPECT_DOUBLE_EQ((t + SimDuration::millis(5.0)).ms(), 1005.0);
  EXPECT_DOUBLE_EQ((t - SimDuration::millis(5.0)).ms(), 995.0);
  EXPECT_DOUBLE_EQ((SimTime::millis(130.0) - SimTime::millis(100.0)).ms(),
                   30.0);
  auto u = SimTime::zero();
  u += SimDuration::seconds(2.0);
  EXPECT_DOUBLE_EQ(u.sec(), 2.0);
}

TEST(DataSize, TrackAndHundredsConversions) {
  EXPECT_DOUBLE_EQ(DataSize::tracks(750.0).count(), 750.0);
  EXPECT_DOUBLE_EQ(DataSize::tracks(750.0).hundreds(), 7.5);
  EXPECT_DOUBLE_EQ(DataSize::hundredsOf(3.0).count(), 300.0);
}

TEST(DataSize, Arithmetic) {
  const auto d = DataSize::tracks(1000.0);
  EXPECT_DOUBLE_EQ((d / 4.0).count(), 250.0);
  EXPECT_DOUBLE_EQ((d * 2.0).count(), 2000.0);
  EXPECT_DOUBLE_EQ((d + DataSize::tracks(500.0)).count(), 1500.0);
  EXPECT_DOUBLE_EQ((d - DataSize::tracks(400.0)).count(), 600.0);
  EXPECT_LT(DataSize::tracks(1.0), DataSize::tracks(2.0));
}

TEST(DataSizeDeathTest, DivisionByZeroAsserts) {
  EXPECT_DEATH((void)(DataSize::tracks(10.0) / 0.0), "assertion");
}

TEST(Bytes, ConversionsAndArithmetic) {
  EXPECT_DOUBLE_EQ(Bytes::of(80.0).bits(), 640.0);
  EXPECT_DOUBLE_EQ(Bytes::kilo(1.5).count(), 1500.0);
  EXPECT_DOUBLE_EQ((Bytes::of(100.0) * 3.0).count(), 300.0);
  EXPECT_DOUBLE_EQ((Bytes::of(100.0) + Bytes::of(50.0)).count(), 150.0);
}

TEST(BitRate, TransmissionTimeMatchesEq6) {
  // Eq. (6): 100 Mbps moving 12500 bytes = 1 ms.
  const auto rate = BitRate::mbps(100.0);
  EXPECT_NEAR(rate.transmissionTime(Bytes::of(12500.0)).ms(), 1.0, 1e-12);
  // 80-byte track at 100 Mbps = 6.4 us.
  EXPECT_NEAR(rate.transmissionTime(Bytes::of(80.0)).ms(), 0.0064, 1e-12);
}

TEST(Utilization, ClampsToUnitInterval) {
  EXPECT_DOUBLE_EQ(Utilization::fraction(-0.5).value(), 0.0);
  EXPECT_DOUBLE_EQ(Utilization::fraction(1.5).value(), 1.0);
  EXPECT_DOUBLE_EQ(Utilization::fraction(0.37).value(), 0.37);
}

TEST(Utilization, PercentRoundTrip) {
  EXPECT_DOUBLE_EQ(Utilization::percent(20.0).value(), 0.2);
  EXPECT_DOUBLE_EQ(Utilization::percent(20.0).asPercent(), 20.0);
  EXPECT_DOUBLE_EQ(Utilization::percent(150.0).value(), 1.0);
}

TEST(ProcessorId, Ordering) {
  EXPECT_LT(ProcessorId{1}, ProcessorId{2});
  EXPECT_EQ(ProcessorId{3}, ProcessorId{3});
  EXPECT_NE(ProcessorId{3}, ProcessorId{4});
}

}  // namespace
}  // namespace rtdrm
