#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace rtdrm {
namespace {

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, Uniform01Bounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanNearHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform01();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(Xoshiro256, UniformIntInclusiveBoundsAndCoverage) {
  Xoshiro256 rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniformInt(1, 6);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all die faces appear in 1000 rolls
}

TEST(Xoshiro256, NormalMomentsMatch) {
  Xoshiro256 rng(19);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Xoshiro256, NormalScaledMoments) {
  Xoshiro256 rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Xoshiro256, ExponentialMeanMatches) {
  Xoshiro256 rng(29);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponentialMean(4.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Xoshiro256, LognormalUnitMeanIsUnitMean) {
  Xoshiro256 rng(31);
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.lognormalUnitMean(0.3);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Xoshiro256, LognormalZeroSigmaIsOne) {
  Xoshiro256 rng(37);
  EXPECT_DOUBLE_EQ(rng.lognormalUnitMean(0.0), 1.0);
  EXPECT_DOUBLE_EQ(rng.lognormalUnitMean(-1.0), 1.0);
}

TEST(RngStreams, SameKeySameStream) {
  const RngStreams streams(99);
  Xoshiro256 a = streams.get("bg-load", 3);
  Xoshiro256 b = streams.get("bg-load", 3);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngStreams, DifferentNamesIndependent) {
  const RngStreams streams(99);
  Xoshiro256 a = streams.get("bg-load", 0);
  Xoshiro256 b = streams.get("noise", 0);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngStreams, DifferentIndicesIndependent) {
  const RngStreams streams(99);
  Xoshiro256 a = streams.get("bg-load", 0);
  Xoshiro256 b = streams.get("bg-load", 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngStreams, MasterSeedChangesStreams) {
  Xoshiro256 a = RngStreams(1).get("x");
  Xoshiro256 b = RngStreams(2).get("x");
  EXPECT_NE(a.next(), b.next());
}

TEST(Fnv1a64, KnownValuesAndDistinctness) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
}

}  // namespace
}  // namespace rtdrm
