#include "common/log.hpp"

#include <gtest/gtest.h>

namespace rtdrm {
namespace {

// The global threshold is process-wide; restore it after each test.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = logLevel(); }
  void TearDown() override { setLogLevel(saved_); }
  LogLevel saved_{};
};

TEST_F(LogTest, ThresholdRoundTrips) {
  setLogLevel(LogLevel::kDebug);
  EXPECT_EQ(logLevel(), LogLevel::kDebug);
  setLogLevel(LogLevel::kError);
  EXPECT_EQ(logLevel(), LogLevel::kError);
}

TEST_F(LogTest, BelowThresholdShortCircuitsEvaluation) {
  setLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  RTDRM_LOG(kDebug) << "value=" << expensive();
  EXPECT_EQ(evaluations, 0);  // stream expression never ran
  RTDRM_LOG(kError) << "value=" << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, OffSuppressesEverything) {
  setLogLevel(LogLevel::kOff);
  int evaluations = 0;
  RTDRM_LOG(kError) << ++evaluations;
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LogTest, EmitDoesNotCrashAcrossLevels) {
  setLogLevel(LogLevel::kTrace);
  RTDRM_LOG(kTrace) << "trace";
  RTDRM_LOG(kDebug) << "debug " << 1;
  RTDRM_LOG(kInfo) << "info " << 2.5;
  RTDRM_LOG(kWarn) << "warn";
  RTDRM_LOG(kError) << "error";
  SUCCEED();
}

}  // namespace
}  // namespace rtdrm
