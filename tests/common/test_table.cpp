#include "common/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace rtdrm {
namespace {

TEST(Table, AlignedOutputContainsAllCells) {
  Table t({"name", "value"});
  t.addRow({std::string("alpha"), 1.5});
  t.addRow({std::string("b"), static_cast<long long>(42)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.500"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, PrecisionControlsDoubleFormatting) {
  Table t({"x"}, 1);
  t.addRow({3.14159});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.1"), std::string::npos);
  EXPECT_EQ(os.str().find("3.14"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"}, 2);
  t.addRow({std::string("x"), 1.0});
  t.addRow({std::string("y"), 2.5});
  std::ostringstream os;
  t.printCsv(os);
  EXPECT_EQ(os.str(), "a,b\nx,1.00\ny,2.50\n");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"a"});
  t.addRow({std::string("hello, \"world\"")});
  std::ostringstream os;
  t.printCsv(os);
  EXPECT_EQ(os.str(), "a\n\"hello, \"\"world\"\"\"\n");
}

TEST(Table, WriteCsvRoundTrip) {
  Table t({"col"}, 0);
  t.addRow({static_cast<long long>(5)});
  const std::string path = testing::TempDir() + "/rtdrm_table_test.csv";
  ASSERT_TRUE(t.writeCsv(path));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "col");
  std::getline(f, line);
  EXPECT_EQ(line, "5");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvFailsOnBadPath) {
  Table t({"col"});
  EXPECT_FALSE(t.writeCsv("/nonexistent-dir/impossible/file.csv"));
}

TEST(Table, RowCountTracksRows) {
  Table t({"a"});
  EXPECT_EQ(t.rowCount(), 0u);
  t.addRow({1.0}).addRow({2.0});
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TableDeathTest, MismatchedRowWidthAsserts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.addRow({1.0}), "row width");
}

TEST(PrintBanner, ContainsTitle) {
  std::ostringstream os;
  printBanner(os, "Figure 9(a)");
  EXPECT_NE(os.str().find("Figure 9(a)"), std::string::npos);
}

}  // namespace
}  // namespace rtdrm
