#include "common/cli.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rtdrm {
namespace {

bool parseArgs(ArgParser& p, std::initializer_list<const char*> args,
               std::string* err_out = nullptr) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  std::ostringstream out;
  std::ostringstream err;
  const bool ok =
      p.parse(static_cast<int>(argv.size()), argv.data(), out, err);
  if (err_out != nullptr) {
    *err_out = err.str();
  }
  return ok;
}

TEST(ArgParser, ParsesAllTypesSpaceSeparated) {
  std::int64_t n = 1;
  double x = 0.5;
  std::string s = "a";
  bool flag = false;
  ArgParser p("t");
  p.addInt("n", "count", &n)
      .addDouble("x", "ratio", &x)
      .addString("s", "label", &s)
      .addFlag("v", "verbose", &flag);
  EXPECT_TRUE(parseArgs(p, {"--n", "42", "--x", "2.5", "--s", "hi", "--v"}));
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(s, "hi");
  EXPECT_TRUE(flag);
}

TEST(ArgParser, ParsesEqualsSyntax) {
  std::int64_t n = 0;
  double x = 0.0;
  ArgParser p("t");
  p.addInt("n", "", &n).addDouble("x", "", &x);
  EXPECT_TRUE(parseArgs(p, {"--n=7", "--x=1.25"}));
  EXPECT_EQ(n, 7);
  EXPECT_DOUBLE_EQ(x, 1.25);
}

TEST(ArgParser, DefaultsSurviveWhenUnset) {
  std::int64_t n = 99;
  ArgParser p("t");
  p.addInt("n", "", &n);
  EXPECT_TRUE(parseArgs(p, {}));
  EXPECT_EQ(n, 99);
}

TEST(ArgParser, PositionalArgumentsCollected) {
  std::int64_t n = 0;
  ArgParser p("t");
  p.addInt("n", "", &n);
  EXPECT_TRUE(parseArgs(p, {"alpha", "--n", "3", "beta"}));
  EXPECT_EQ(p.positional(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(ArgParser, UnknownOptionFails) {
  ArgParser p("t");
  std::string err;
  EXPECT_FALSE(parseArgs(p, {"--nope"}, &err));
  EXPECT_NE(err.find("unknown option"), std::string::npos);
  EXPECT_FALSE(p.helpRequested());
}

TEST(ArgParser, BadNumericValueFails) {
  std::int64_t n = 0;
  double x = 0.0;
  ArgParser p("t");
  p.addInt("n", "", &n).addDouble("x", "", &x);
  std::string err;
  EXPECT_FALSE(parseArgs(p, {"--n", "12abc"}, &err));
  EXPECT_NE(err.find("bad value"), std::string::npos);
  EXPECT_FALSE(parseArgs(p, {"--x", "zz"}, &err));
}

TEST(ArgParser, MissingValueFails) {
  std::int64_t n = 0;
  ArgParser p("t");
  p.addInt("n", "", &n);
  std::string err;
  EXPECT_FALSE(parseArgs(p, {"--n"}, &err));
  EXPECT_NE(err.find("needs a value"), std::string::npos);
}

TEST(ArgParser, HelpPrintsUsageAndReturnsFalse) {
  std::int64_t n = 5;
  ArgParser p("tool", "does things");
  p.addInt("n", "how many", &n);
  std::vector<const char*> argv{"tool", "--help"};
  std::ostringstream out;
  std::ostringstream err;
  EXPECT_FALSE(p.parse(2, argv.data(), out, err));
  EXPECT_TRUE(p.helpRequested());
  EXPECT_NE(out.str().find("usage: tool"), std::string::npos);
  EXPECT_NE(out.str().find("how many"), std::string::npos);
  EXPECT_NE(out.str().find("default: 5"), std::string::npos);
}

TEST(ArgParser, ExplicitFlagValues) {
  bool flag = true;
  ArgParser p("t");
  p.addFlag("v", "", &flag);
  EXPECT_TRUE(parseArgs(p, {"--v=false"}));
  EXPECT_FALSE(flag);
  EXPECT_TRUE(parseArgs(p, {"--v=1"}));
  EXPECT_TRUE(flag);
}

TEST(ArgParserDeathTest, DuplicateRegistrationAsserts) {
  std::int64_t a = 0;
  std::int64_t b = 0;
  ArgParser p("t");
  p.addInt("n", "", &a);
  EXPECT_DEATH(p.addInt("n", "", &b), "assertion");
}

}  // namespace
}  // namespace rtdrm
