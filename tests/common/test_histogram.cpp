#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace rtdrm {
namespace {

TEST(Histogram, BucketsCoverRangeUniformly) {
  Histogram h(0.0, 100.0, 10);
  EXPECT_EQ(h.bucketCount(), 10u);
  EXPECT_DOUBLE_EQ(h.bucketLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucketHigh(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucketLow(9), 90.0);
  EXPECT_DOUBLE_EQ(h.bucketHigh(9), 100.0);
}

TEST(Histogram, AddRoutesToCorrectBucket) {
  Histogram h(0.0, 100.0, 10);
  h.add(5.0);
  h.add(15.0);
  h.add(15.5);
  h.add(99.999);
  EXPECT_EQ(h.bucketCount(0), 1u);
  EXPECT_EQ(h.bucketCount(1), 2u);
  EXPECT_EQ(h.bucketCount(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BoundaryValuesBelongToUpperBucket) {
  Histogram h(0.0, 10.0, 10);
  h.add(3.0);  // [3, 4)
  EXPECT_EQ(h.bucketCount(3), 1u);
  h.add(0.0);
  EXPECT_EQ(h.bucketCount(0), 1u);
}

TEST(Histogram, UnderflowAndOverflowCounted) {
  Histogram h(10.0, 20.0, 5);
  h.add(5.0);
  h.add(25.0);
  h.add(20.0);  // hi is exclusive
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.add(1.0);
  b.add(1.0);
  b.add(9.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.bucketCount(0), 2u);
  EXPECT_EQ(a.bucketCount(4), 1u);
}

TEST(HistogramDeathTest, MergeRejectsMismatchedShape) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 6);
  EXPECT_DEATH(a.merge(b), "shapes");
}

TEST(Histogram, QuantileOnUniformData) {
  Histogram h(0.0, 100.0, 100);
  Xoshiro256 rng(3);
  for (int i = 0; i < 100000; ++i) {
    h.add(rng.uniform(0.0, 100.0));
  }
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 2.0);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty -> lo
  h.add(5.5);
  EXPECT_GE(h.quantile(1.0), 5.0);
  EXPECT_LE(h.quantile(1.0), 6.0);
}

TEST(Histogram, QuantileZeroReturnsFirstPopulatedBucketEdge) {
  // Regression: with no underflow samples, quantile(0.0) used to return
  // lo_ even when every sample sat in a higher bucket.
  Histogram h(0.0, 10.0, 10);
  h.add(5.5);  // bucket [5, 6)
  h.add(5.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  // A populated underflow bin legitimately claims q=0 at lo_.
  Histogram u(0.0, 10.0, 10);
  u.add(-1.0);
  u.add(5.5);
  EXPECT_DOUBLE_EQ(u.quantile(0.0), 0.0);
}

TEST(Histogram, QuantileWithOverflowClampsToHi) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) {
    h.add(100.0);
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 10.0);
}

TEST(Histogram, RenderShowsBarsAndElidesEmptyEnds) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 8; ++i) {
    h.add(45.0);
  }
  h.add(55.0);
  const std::string s = h.render(20);
  EXPECT_NE(s.find("####"), std::string::npos);
  // Buckets before 40 and after 60 are elided (" 0.00," would only appear
  // as the low edge of the first bucket).
  EXPECT_EQ(s.find(" 0.00,"), std::string::npos);
  EXPECT_NE(s.find("40.00"), std::string::npos);
  EXPECT_EQ(s.find("70.00"), std::string::npos);
}

TEST(Histogram, RenderEmpty) {
  const Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.render(), "(empty histogram)\n");
}

}  // namespace
}  // namespace rtdrm
