#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace rtdrm {
namespace {

TEST(RunningStats, EmptyDefaults) {
  const RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  Xoshiro256 rng(5);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats b;
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(5.0);
  s.reset();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) {
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(HitRatio, Basics) {
  HitRatio h;
  EXPECT_DOUBLE_EQ(h.ratio(), 0.0);
  h.add(true);
  h.add(false);
  h.add(false);
  h.add(true);
  EXPECT_EQ(h.hits(), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.ratio(), 0.5);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
}

TEST(TimeWeightedMean, PiecewiseConstantSignal) {
  TimeWeightedMean m;
  m.update(0.0, 2.0);   // value 2 from t=0
  m.update(10.0, 6.0);  // value 2 held for 10, then 6
  m.update(20.0, 0.0);  // 6 held for 10
  // mean = (2*10 + 6*10) / 20 = 4.
  EXPECT_DOUBLE_EQ(m.mean(), 4.0);
}

TEST(TimeWeightedMean, BeforeFirstIntervalReturnsLastValue) {
  TimeWeightedMean m;
  m.update(5.0, 3.0);
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);  // no elapsed time yet
}

TEST(TimeWeightedMean, ZeroLengthUpdatesIgnored) {
  TimeWeightedMean m;
  m.update(0.0, 1.0);
  m.update(0.0, 100.0);  // instantaneous change
  m.update(10.0, 0.0);
  EXPECT_DOUBLE_EQ(m.mean(), 100.0);
}

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(Percentile, Single) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(PercentileDeathTest, EmptyInputAsserts) {
  EXPECT_DEATH(percentile({}, 50.0), "empty");
}

TEST(TimeWeightedMean, NeverUpdatedMeansZero) {
  const TimeWeightedMean m;
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

}  // namespace
}  // namespace rtdrm
