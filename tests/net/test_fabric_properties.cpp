// Property suite for the switched network fabric: for arbitrary traffic,
// frame conservation holds at every probed instant (originated == arrived
// + live in-fabric recount), per-(src,dst) delivery keeps FIFO order on
// drop-free runs, every cross-node delivery respects the store-and-forward
// latency lower bound (which strictly dominates the shared bus's single
// hop), bounded ports tail-drop-and-NACK without ever destroying a frame,
// and (segment, port) link-fault targeting hits exactly the targeted
// uplink. Bus-vs-fabric digest neutrality is pinned separately in the fuzz
// determinism suite.
#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "node/cluster.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::net {
namespace {

SwitchedFabricConfig fastLinks() {
  SwitchedFabricConfig cfg;
  cfg.link.host_ns_per_byte = 0.0;  // isolate the wire model
  return cfg;
}

class FabricRandomTraffic : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FabricRandomTraffic, ConservationFifoAndLatencyBound) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  sim::Simulator sim;
  SwitchedFabricConfig cfg = fastLinks();
  cfg.segments = 2 + static_cast<std::size_t>(seed % 3);  // 2..4
  cfg.topology =
      seed % 2 == 0 ? FabricTopology::kLine : FabricTopology::kStar;
  // FIFO ordering is only promised drop-free; make the buffers deep enough
  // that this traffic level never drops (checked below).
  cfg.port_buffer_frames = 4096;
  const std::size_t nodes = 8;
  SwitchedFabric net(sim, nodes, cfg);

  // The fabric's shortest cross-node path strictly dominates the bus's
  // single hop (two serializations + two propagations + switch latency vs
  // one serialization + one propagation).
  ASSERT_GT(cfg.minCrossShardLatency().ms(),
            cfg.link.minCrossShardLatency().ms());
  const double min_path_ms = cfg.minCrossShardLatency().ms();

  const int n_messages = 80;
  int delivered = 0;
  double expected_payload = 0.0;
  std::map<std::pair<int, int>, std::vector<int>> send_order;
  std::map<std::pair<int, int>, std::vector<int>> recv_order;

  for (int i = 0; i < n_messages; ++i) {
    const double at = rng.uniform(0.0, 40.0);
    const int src = static_cast<int>(rng.uniformInt(0, nodes - 1));
    int dst = static_cast<int>(rng.uniformInt(0, nodes - 2));
    if (dst >= src) {
      ++dst;  // distinct destination: always through the fabric
    }
    const double payload = rng.uniform(0.0, 6000.0);
    expected_payload += payload;
    sim.scheduleAt(SimTime::millis(at), [&, i, src, dst, payload] {
      send_order[{src, dst}].push_back(i);
      net.send(Message{ProcessorId{static_cast<std::uint32_t>(src)},
                       ProcessorId{static_cast<std::uint32_t>(dst)},
                       Bytes::of(payload), "m",
                       [&, i, src, dst, payload](const MessageReceipt& r) {
                         ++delivered;
                         recv_order[{src, dst}].push_back(i);
                         EXPECT_NEAR(r.payload.count(), payload, 1e-9);
                         EXPECT_GE(r.first_bit.ms(), r.enqueued.ms());
                         // Store-and-forward: no cross-node message beats
                         // the fabric-wide shortest-path bound.
                         EXPECT_GE(r.transferDelay().ms(),
                                   min_path_ms - 1e-9);
                       }});
    });
  }

  // Conservation is an any-instant invariant, not an end-of-run one: probe
  // it while frames are queued, propagating, and switching.
  for (int t = 1; t <= 60; ++t) {
    sim.scheduleAt(SimTime::millis(static_cast<double>(t) * 0.8), [&] {
      EXPECT_EQ(net.framesOriginated(),
                net.framesArrived() + net.framesInFabric());
    });
  }
  sim.runAll();

  EXPECT_EQ(delivered, n_messages);
  EXPECT_EQ(net.backloggedMessages(), 0u);
  EXPECT_EQ(net.framesDropped(), 0u) << "raise port_buffer_frames";
  EXPECT_EQ(net.framesInFabric(), 0u);
  EXPECT_EQ(net.framesOriginated(), net.framesArrived());
  EXPECT_NEAR(net.payloadBytesCarried(), expected_payload, 1e-6);
  for (const auto& [pair, order] : recv_order) {
    EXPECT_EQ(order, send_order[pair])
        << "src " << pair.first << " -> dst " << pair.second;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricRandomTraffic,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

TEST(FabricTailDrop, BoundedPortsDropNackAndStillConserve) {
  // Seven senders converge on one destination downlink with a two-frame
  // port buffer: drops are certain, yet the NACK-return path must keep
  // every frame alive — conservation at every probe, total delivery, and
  // an empty fabric at the end.
  sim::Simulator sim;
  SwitchedFabricConfig cfg = fastLinks();
  cfg.segments = 2;
  cfg.port_buffer_frames = 2;
  const std::size_t nodes = 8;
  SwitchedFabric net(sim, nodes, cfg);

  int delivered = 0;
  const int n_messages = 60;
  for (int i = 0; i < n_messages; ++i) {
    net.send(Message{ProcessorId{static_cast<std::uint32_t>(i % 7)},
                     ProcessorId{7}, Bytes::of(6000.0), "burst",
                     [&](const MessageReceipt&) { ++delivered; }});
  }
  for (int t = 1; t <= 100; ++t) {
    sim.scheduleAt(SimTime::millis(static_cast<double>(t) * 0.5), [&] {
      EXPECT_EQ(net.framesOriginated(),
                net.framesArrived() + net.framesInFabric());
    });
  }
  sim.runAll();

  EXPECT_GT(net.framesDropped(), 0u);
  EXPECT_EQ(delivered, n_messages);
  EXPECT_EQ(net.backloggedMessages(), 0u);
  EXPECT_EQ(net.framesInFabric(), 0u);
  EXPECT_EQ(net.framesOriginated(), net.framesArrived());
}

TEST(FabricRouting, LineAndStarNextHopsAndCeilSegmentBlocks) {
  sim::Simulator sim;
  {
    SwitchedFabricConfig cfg = fastLinks();
    cfg.segments = 4;
    cfg.topology = FabricTopology::kLine;
    SwitchedFabric line(sim, 8, cfg);
    EXPECT_EQ(line.nextHop(0, 3), 1u);
    EXPECT_EQ(line.nextHop(1, 3), 2u);
    EXPECT_EQ(line.nextHop(3, 0), 2u);
  }
  {
    SwitchedFabricConfig cfg = fastLinks();
    cfg.segments = 4;
    cfg.topology = FabricTopology::kStar;
    SwitchedFabric star(sim, 8, cfg);
    EXPECT_EQ(star.nextHop(1, 2), 0u);  // leaf -> hub
    EXPECT_EQ(star.nextHop(0, 2), 2u);  // hub -> leaf, direct
    EXPECT_EQ(star.nextHop(3, 1), 0u);
  }
  {
    // Default host->segment assignment: the same contiguous ceil blocks
    // the management plane partitions nodes into.
    SwitchedFabricConfig cfg = fastLinks();
    cfg.segments = 4;
    const std::size_t nodes = 6;
    SwitchedFabric fab(sim, nodes, cfg);
    for (std::uint32_t node = 0; node < nodes; ++node) {
      std::uint32_t expected = 0;
      for (std::uint32_t s = 0; s < 4; ++s) {
        const std::size_t lo = (s * nodes + 3) / 4;
        const std::size_t hi = ((s + 1) * nodes + 3) / 4;
        if (node >= lo && node < hi) {
          expected = s;
        }
      }
      EXPECT_EQ(fab.segmentOf(ProcessorId{node}), expected)
          << "node " << node;
    }
  }
}

struct LinkFaultRun {
  double seg0_done = -1.0;  ///< node0 -> node1 delivery time, ms
  double seg1_done = -1.0;  ///< node2 -> node3 delivery time, ms
  std::uint64_t lost = 0;
};

/// Two single-segment flows (node0 -> node1 on seg0, node2 -> node3 on
/// seg1) under an optional one-entry link-fault plan.
LinkFaultRun runLinkFaultCase(const std::vector<fault::LinkFault>& links) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 4);
  SwitchedFabricConfig cfg = fastLinks();
  cfg.segments = 2;  // seg0 = {0, 1}, seg1 = {2, 3}
  SwitchedFabric net(sim, 4, cfg);
  std::unique_ptr<fault::FaultInjector> injector;
  if (!links.empty()) {
    fault::FaultPlan plan;
    plan.links = links;
    injector = std::make_unique<fault::FaultInjector>(sim, cluster, &net,
                                                      nullptr,
                                                      std::move(plan));
    injector->arm();
  }
  LinkFaultRun out;
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(8000.0), "s0",
                   [&](const MessageReceipt& r) {
                     out.seg0_done = r.delivered.ms();
                   }});
  net.send(Message{ProcessorId{2}, ProcessorId{3}, Bytes::of(8000.0), "s1",
                   [&](const MessageReceipt& r) {
                     out.seg1_done = r.delivered.ms();
                   }});
  sim.runAll();
  out.lost = net.framesLost();
  return out;
}

TEST(FabricLinkFaults, SegmentPortTargetingHitsOnlyTheTargetedUplink) {
  // Regression for (segment, port) fault targeting under --net switched.
  // Port coordinates from a probe fabric with the identical shape.
  sim::Simulator probe_sim;
  SwitchedFabricConfig cfg = fastLinks();
  cfg.segments = 2;
  SwitchedFabric probe(probe_sim, 4, cfg);
  ASSERT_EQ(probe.segmentOf(ProcessorId{0}), 0u);
  ASSERT_EQ(probe.segmentOf(ProcessorId{2}), 1u);
  // Same within-segment port number for both segments' first uplink: the
  // segment coordinate is what disambiguates them.
  ASSERT_EQ(probe.uplinkPort(ProcessorId{0}),
            probe.uplinkPort(ProcessorId{2}));

  const LinkFaultRun base = runLinkFaultCase({});
  // Loss window pinned to node 0's uplink: only the seg0 flow pays
  // retransmissions; the seg1 flow is byte-identical to the no-fault run.
  const LinkFaultRun hit = runLinkFaultCase({fault::LinkFault{
      fault::kAnyNode, fault::kAnyNode, SimTime::zero(),
      SimTime::millis(40.0), 0.9, 0.0, 0,
      probe.uplinkPort(ProcessorId{0})}});
  EXPECT_GT(hit.lost, 0u);
  EXPECT_GT(hit.seg0_done, base.seg0_done);
  EXPECT_DOUBLE_EQ(hit.seg1_done, base.seg1_done);

  // Same window on a port carrying no traffic (node 1 transmits nothing):
  // nothing is lost and both flows match the no-fault run exactly.
  const LinkFaultRun miss = runLinkFaultCase({fault::LinkFault{
      fault::kAnyNode, fault::kAnyNode, SimTime::zero(),
      SimTime::millis(40.0), 0.9, 0.0, 0,
      probe.uplinkPort(ProcessorId{1})}});
  EXPECT_EQ(miss.lost, 0u);
  EXPECT_DOUBLE_EQ(miss.seg0_done, base.seg0_done);
  EXPECT_DOUBLE_EQ(miss.seg1_done, base.seg1_done);
}

TEST(FabricLinkFaults, SegmentWildcardPortCoversTheWholeSegment) {
  // segment set + port kAnyPort: every hop inside that segment is in
  // scope, other segments untouched.
  const LinkFaultRun base = runLinkFaultCase({});
  const LinkFaultRun wild = runLinkFaultCase({fault::LinkFault{
      fault::kAnyNode, fault::kAnyNode, SimTime::zero(),
      SimTime::millis(40.0), 0.9, 0.0, 1, kAnyPort}});
  EXPECT_GT(wild.lost, 0u);
  EXPECT_GT(wild.seg1_done, base.seg1_done);
  EXPECT_DOUBLE_EQ(wild.seg0_done, base.seg0_done);
}

TEST(FabricFateHook, FiresPerHopWithPortCoordinates) {
  // A two-segment path crosses uplink, trunk, and downlink: the hook must
  // see each hop once with the transmitting port's coordinates.
  sim::Simulator sim;
  SwitchedFabricConfig cfg = fastLinks();
  cfg.segments = 2;
  SwitchedFabric net(sim, 4, cfg);
  std::vector<FrameHop> hops;
  net.setFrameFateHook([&](const FrameHop& hop) {
    hops.push_back(hop);
    return FrameFate::kDeliver;
  });
  int delivered = 0;
  net.send(Message{ProcessorId{0}, ProcessorId{3}, Bytes::of(100.0), "x",
                   [&](const MessageReceipt&) { ++delivered; }});
  sim.runAll();
  net.setFrameFateHook(nullptr);

  EXPECT_EQ(delivered, 1);
  ASSERT_EQ(hops.size(), 3u);  // uplink, trunk, downlink
  EXPECT_EQ(hops[0].segment, 0u);
  EXPECT_EQ(hops[0].port, net.uplinkPort(ProcessorId{0}));
  EXPECT_EQ(hops[1].segment, 0u);
  EXPECT_EQ(hops[1].port, net.trunkPort(0, 1));
  EXPECT_EQ(hops[2].segment, 1u);
  EXPECT_EQ(hops[2].port, net.downlinkPort(ProcessorId{3}));
  for (const FrameHop& h : hops) {
    EXPECT_EQ(h.src, ProcessorId{0});
    EXPECT_EQ(h.dst, ProcessorId{3});
  }
}

}  // namespace
}  // namespace rtdrm::net
