#include "net/ethernet.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace rtdrm::net {
namespace {

EthernetConfig wireOnly() {
  EthernetConfig cfg;
  cfg.host_ns_per_byte = 0.0;  // isolate wire behaviour
  cfg.propagation = SimDuration::zero();
  return cfg;
}

TEST(Ethernet, LocalDeliveryBypassesWire) {
  sim::Simulator sim;
  Ethernet net(sim, 2);
  bool delivered = false;
  net.send(Message{ProcessorId{0}, ProcessorId{0}, Bytes::kilo(100.0), "m",
                   [&](const MessageReceipt& r) {
                     delivered = true;
                     EXPECT_DOUBLE_EQ(r.bufferDelay().ms(), 0.0);
                   }});
  sim.runAll();
  EXPECT_TRUE(delivered);
  EXPECT_DOUBLE_EQ(net.busyTime().ms(), 0.0);
  EXPECT_EQ(net.framesOnWire(), 0u);
  EXPECT_EQ(net.messagesDelivered(), 1u);
}

TEST(Ethernet, SingleFrameTransmissionTime) {
  sim::Simulator sim;
  Ethernet net(sim, 2, wireOnly());
  double delivered_at = -1.0;
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(1500.0), "m",
                   [&](const MessageReceipt& r) {
                     delivered_at = r.delivered.ms();
                     EXPECT_DOUBLE_EQ(r.bufferDelay().ms(), 0.0);
                   }});
  sim.runAll();
  // (1500 + 38 overhead) bytes at 100 Mbps = 123.04 us.
  EXPECT_NEAR(delivered_at, (1500.0 + 38.0) * 8.0 / 100e6 * 1000.0, 1e-9);
  EXPECT_EQ(net.framesOnWire(), 1u);
}

TEST(Ethernet, FragmentsLargeMessages) {
  sim::Simulator sim;
  Ethernet net(sim, 2, wireOnly());
  bool delivered = false;
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(4000.0), "m",
                   [&](const MessageReceipt&) { delivered = true; }});
  sim.runAll();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(net.framesOnWire(), 3u);  // 1500 + 1500 + 1000
  const double expected_ms =
      (1538.0 + 1538.0 + 1038.0) * 8.0 / 100e6 * 1000.0;
  EXPECT_NEAR(net.busyTime().ms(), expected_ms, 1e-9);
  EXPECT_NEAR(net.payloadBytesCarried(), 4000.0, 1e-9);
}

TEST(Ethernet, ShortFramesPaddedToMinimum) {
  sim::Simulator sim;
  Ethernet net(sim, 2, wireOnly());
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(10.0), "m", {}});
  sim.runAll();
  // Padded to 46 B payload + 38 B overhead = 84 B.
  EXPECT_NEAR(net.busyTime().ms(), 84.0 * 8.0 / 100e6 * 1000.0, 1e-12);
}

TEST(Ethernet, ZeroPayloadStillDelivers) {
  sim::Simulator sim;
  Ethernet net(sim, 2, wireOnly());
  bool delivered = false;
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::zero(), "m",
                   [&](const MessageReceipt&) { delivered = true; }});
  sim.runAll();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(net.framesOnWire(), 1u);
}

TEST(Ethernet, PropagationDelayAppliedAfterLastBit) {
  sim::Simulator sim;
  EthernetConfig cfg = wireOnly();
  cfg.propagation = SimDuration::micros(5.0);
  Ethernet net(sim, 2, cfg);
  double delivered_at = -1.0;
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(1500.0), "m",
                   [&](const MessageReceipt& r) {
                     delivered_at = r.delivered.ms();
                   }});
  sim.runAll();
  EXPECT_NEAR(delivered_at, 1538.0 * 8.0 / 100e6 * 1000.0 + 0.005, 1e-9);
}

TEST(Ethernet, SameNicMessagesQueueFifo) {
  sim::Simulator sim;
  Ethernet net(sim, 2, wireOnly());
  std::vector<int> order;
  MessageReceipt second_receipt{};
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(1500.0), "a",
                   [&](const MessageReceipt&) { order.push_back(1); }});
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(1500.0), "b",
                   [&](const MessageReceipt& r) {
                     order.push_back(2);
                     second_receipt = r;
                   }});
  sim.runAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // The second message waited for the first frame: buffer delay > 0.
  EXPECT_GT(second_receipt.bufferDelay().ms(), 0.0);
}

TEST(Ethernet, CrossNicArbitrationInterleavesFairly) {
  sim::Simulator sim;
  Ethernet net(sim, 3, wireOnly());
  double a_done = -1.0;
  double b_done = -1.0;
  // Two equal 2-frame messages from different NICs enqueued together:
  // frames interleave, so both finish at about the same (total) time.
  net.send(Message{ProcessorId{0}, ProcessorId{2}, Bytes::of(3000.0), "a",
                   [&](const MessageReceipt& r) { a_done = r.delivered.ms(); }});
  net.send(Message{ProcessorId{1}, ProcessorId{2}, Bytes::of(3000.0), "b",
                   [&](const MessageReceipt& r) { b_done = r.delivered.ms(); }});
  sim.runAll();
  const double total = net.busyTime().ms();
  EXPECT_NEAR(a_done, total, total * 0.35);
  EXPECT_NEAR(b_done, total, 1e-9);  // last frame ends the busy period
  EXPECT_EQ(net.framesOnWire(), 4u);
}

TEST(Ethernet, BusyTimeConservation) {
  sim::Simulator sim;
  Ethernet net(sim, 4, wireOnly());
  int delivered = 0;
  double expected_busy = 0.0;
  for (int i = 0; i < 10; ++i) {
    const double payload = 500.0 + 250.0 * i;
    // Account for fragmentation: each frame carries <= 1500 B payload
    // (padded up to 46 B) plus 38 B of overhead.
    double wire = 0.0;
    for (double left = payload; left > 0.0; left -= 1500.0) {
      wire += std::max(std::min(left, 1500.0), 46.0) + 38.0;
    }
    expected_busy += wire * 8.0 / 100e6 * 1000.0;
    net.send(Message{ProcessorId{static_cast<std::uint32_t>(i % 4)},
                     ProcessorId{static_cast<std::uint32_t>((i + 1) % 4)},
                     Bytes::of(payload), "m",
                     [&](const MessageReceipt&) { ++delivered; }});
  }
  sim.runAll();
  EXPECT_EQ(delivered, 10);
  EXPECT_NEAR(net.busyTime().ms(), expected_busy, 1e-9);
  EXPECT_EQ(net.backloggedMessages(), 0u);
}

TEST(Ethernet, MarshallingDelaysFirstBit) {
  sim::Simulator sim;
  EthernetConfig cfg;
  cfg.propagation = SimDuration::zero();
  cfg.host_ns_per_byte = 87.5;
  Ethernet net(sim, 2, cfg);
  MessageReceipt receipt{};
  // 8000 B = one hundred 80 B tracks; marshalling = 0.7 ms (Table 3's k).
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(8000.0), "m",
                   [&](const MessageReceipt& r) { receipt = r; }});
  sim.runAll();
  EXPECT_NEAR(receipt.bufferDelay().ms(), 0.7, 1e-9);
}

TEST(Ethernet, MarshallingIsSequentialPerNic) {
  sim::Simulator sim;
  EthernetConfig cfg;
  cfg.propagation = SimDuration::zero();
  cfg.host_ns_per_byte = 100.0;
  Ethernet net(sim, 2, cfg);
  MessageReceipt r1{};
  MessageReceipt r2{};
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(10000.0), "a",
                   [&](const MessageReceipt& r) { r1 = r; }});
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(10000.0), "b",
                   [&](const MessageReceipt& r) { r2 = r; }});
  sim.runAll();
  // Second message marshals only after the first: >= 2 ms buffer delay.
  EXPECT_NEAR(r1.bufferDelay().ms(), 1.0, 1e-6);
  EXPECT_GE(r2.bufferDelay().ms(), 2.0 - 1e-6);
}

TEST(Ethernet, ReceiptDecomposesTotalDelay) {
  sim::Simulator sim;
  Ethernet net(sim, 2);
  MessageReceipt receipt{};
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(5000.0), "m",
                   [&](const MessageReceipt& r) { receipt = r; }});
  sim.runAll();
  EXPECT_NEAR(receipt.totalDelay().ms(),
              receipt.bufferDelay().ms() + receipt.transferDelay().ms(),
              1e-12);
  EXPECT_GT(receipt.bufferDelay().ms(), 0.0);
  EXPECT_GT(receipt.transferDelay().ms(), 0.0);
}

TEST(Ethernet, PerNicPayloadAttribution) {
  sim::Simulator sim;
  Ethernet net(sim, 3, wireOnly());
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(4000.0), "a", {}});
  net.send(Message{ProcessorId{2}, ProcessorId{1}, Bytes::of(1000.0), "b", {}});
  sim.runAll();
  EXPECT_NEAR(net.payloadBytesFrom(ProcessorId{0}), 4000.0, 1e-9);
  EXPECT_NEAR(net.payloadBytesFrom(ProcessorId{1}), 0.0, 1e-9);
  EXPECT_NEAR(net.payloadBytesFrom(ProcessorId{2}), 1000.0, 1e-9);
  EXPECT_NEAR(net.payloadBytesFrom(ProcessorId{0}) +
                  net.payloadBytesFrom(ProcessorId{2}),
              net.payloadBytesCarried(), 1e-9);
}

TEST(NetworkProbe, WindowedUtilization) {
  sim::Simulator sim;
  Ethernet net(sim, 2, wireOnly());
  NetworkProbe probe(sim, net);
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::kilo(125.0), "m", {}});
  sim.runUntil(SimTime::millis(20.0));
  // 125 kB ~ 84 frames; ~10.25 ms of wire time in a 20 ms window.
  const double u = probe.sample().value();
  EXPECT_GT(u, 0.4);
  EXPECT_LT(u, 0.6);
  sim.runUntil(SimTime::millis(40.0));
  EXPECT_NEAR(probe.sample().value(), 0.0, 1e-9);
}

// Property: for any payload, frames = ceil(payload/mtu) (minimum 1) and
// payload bytes are conserved.
class EthernetFragmentation : public ::testing::TestWithParam<double> {};

TEST_P(EthernetFragmentation, FrameCountAndPayloadConservation) {
  const double payload = GetParam();
  sim::Simulator sim;
  Ethernet net(sim, 2, wireOnly());
  bool delivered = false;
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(payload), "m",
                   [&](const MessageReceipt&) { delivered = true; }});
  sim.runAll();
  EXPECT_TRUE(delivered);
  const auto expected_frames =
      payload <= 0.0 ? 1u
                     : static_cast<std::uint64_t>(
                           (payload + 1499.0) / 1500.0);
  EXPECT_EQ(net.framesOnWire(), expected_frames);
  EXPECT_NEAR(net.payloadBytesCarried(), payload, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, EthernetFragmentation,
                         ::testing::Values(0.0, 1.0, 46.0, 1499.0, 1500.0,
                                           1501.0, 3000.0, 80000.0));

// Regression: the delivered counter and the delivery observer fire inside
// the scheduled delivery event — at the receipt's `delivered` time, after
// the propagation delay — not eagerly when the last frame clears the wire.
TEST(Ethernet, WireDeliveryCountedAtDeliveryTime) {
  sim::Simulator sim;
  EthernetConfig cfg = wireOnly();
  cfg.propagation = SimDuration::millis(1.0);
  Ethernet net(sim, 2, cfg);
  double observed_at = -1.0;
  net.setDeliveryObserver(
      [&](const MessageReceipt& r) {
        observed_at = sim.now().ms();
        EXPECT_DOUBLE_EQ(r.delivered.ms(), sim.now().ms());
      });
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(1500.0), "m",
                   {}});
  const double wire_ms = 1538.0 * 8.0 / 100e6 * 1000.0;
  sim.runUntil(SimTime::millis(wire_ms + 0.5));  // wire clear, in flight
  EXPECT_EQ(net.messagesDelivered(), 0u);
  EXPECT_DOUBLE_EQ(observed_at, -1.0);
  sim.runAll();
  EXPECT_EQ(net.messagesDelivered(), 1u);
  EXPECT_NEAR(observed_at, wire_ms + 1.0, 1e-9);
  net.setDeliveryObserver(nullptr);
}

TEST(Ethernet, LocalDeliveryCountedAfterPropagation) {
  sim::Simulator sim;
  EthernetConfig cfg = wireOnly();
  cfg.propagation = SimDuration::millis(1.0);
  Ethernet net(sim, 2, cfg);
  net.send(Message{ProcessorId{0}, ProcessorId{0}, Bytes::of(100.0), "m",
                   {}});
  sim.runUntil(SimTime::millis(0.5));
  EXPECT_EQ(net.messagesDelivered(), 0u);
  sim.runAll();
  EXPECT_EQ(net.messagesDelivered(), 1u);
}

// Pin of intended behaviour: a same-node hand-off bypasses the wire AND
// the per-NIC marshalling stage — it models an in-memory pointer pass, so
// it neither pays host_ns_per_byte nor occupies the NIC for later
// cross-node messages from the same source.
TEST(Ethernet, LocalDeliveryBypassesMarshallingStage) {
  sim::Simulator sim;
  EthernetConfig cfg;  // defaults: host_ns_per_byte = 87.5
  cfg.propagation = SimDuration::zero();
  Ethernet net(sim, 2, cfg);
  double local_at = -1.0;
  double remote_at = -1.0;
  // 100 kB locally would cost 8.75 ms of marshalling if it were charged.
  net.send(Message{ProcessorId{0}, ProcessorId{0}, Bytes::kilo(100.0), "l",
                   [&](const MessageReceipt& r) {
                     local_at = r.delivered.ms();
                     EXPECT_DOUBLE_EQ(r.bufferDelay().ms(), 0.0);
                   }});
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(100.0), "r",
                   [&](const MessageReceipt& r) {
                     remote_at = r.delivered.ms();
                   }});
  sim.runAll();
  EXPECT_DOUBLE_EQ(local_at, 0.0);
  // The cross-node message marshals only its own 100 B (8.75 us) and then
  // pays one padded frame (138 B): it is NOT queued behind the local
  // message's hypothetical marshalling.
  EXPECT_NEAR(remote_at,
              100.0 * 87.5 * 1e-6 + 138.0 * 8.0 / 100e6 * 1000.0, 1e-9);
}

TEST(Ethernet, LostFrameIsRetransmittedNotSuppressed) {
  sim::Simulator sim;
  Ethernet net(sim, 2, wireOnly());
  int calls = 0;
  net.setFrameFateHook([&](const FrameHop&) {
    return ++calls == 1 ? Ethernet::FrameFate::kLose
                        : Ethernet::FrameFate::kDeliver;
  });
  double delivered_at = -1.0;
  net.send(Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(1500.0), "m",
                   [&](const MessageReceipt& r) {
                     delivered_at = r.delivered.ms();
                   }});
  sim.runAll();
  EXPECT_EQ(net.framesLost(), 1u);
  EXPECT_EQ(net.messagesDelivered(), 1u);
  const double frame_ms = 1538.0 * 8.0 / 100e6 * 1000.0;
  // The lost attempt burned a full wire slot before the retransmit.
  EXPECT_NEAR(delivered_at, 2.0 * frame_ms, 1e-9);
  EXPECT_NEAR(net.busyTime().ms(), 2.0 * frame_ms, 1e-9);
  net.setFrameFateHook(nullptr);
}

TEST(Ethernet, SameNodeHandoffExemptFromFrameFateHook) {
  sim::Simulator sim;
  Ethernet net(sim, 2, wireOnly());
  int hook_calls = 0;
  net.setFrameFateHook([&](const FrameHop&) {
    ++hook_calls;
    return Ethernet::FrameFate::kLose;
  });
  bool delivered = false;
  net.send(Message{ProcessorId{1}, ProcessorId{1}, Bytes::of(1500.0), "m",
                   [&](const MessageReceipt&) { delivered = true; }});
  sim.runAll();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(hook_calls, 0);
  EXPECT_EQ(net.framesLost(), 0u);
  net.setFrameFateHook(nullptr);
}

}  // namespace
}  // namespace rtdrm::net
