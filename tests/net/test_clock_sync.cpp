#include "net/clock_sync.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/simulator.hpp"

namespace rtdrm::net {
namespace {

TEST(DriftingClock, LocalReadingIncludesOffsetAndDrift) {
  const DriftingClock c(SimDuration::millis(2.0), 100.0);  // +100 ppm
  const SimTime t = SimTime::seconds(10.0);
  // local = t + 2 ms + 1e-4 * 10000 ms = t + 3 ms.
  EXPECT_NEAR(c.local(t).ms(), 10003.0, 1e-9);
  EXPECT_NEAR(c.offsetAt(t).ms(), 3.0, 1e-9);
}

TEST(DriftingClock, CorrectStepsOffset) {
  DriftingClock c(SimDuration::millis(5.0), 0.0);
  c.correct(SimDuration::millis(5.0));
  EXPECT_NEAR(c.offsetAt(SimTime::zero()).ms(), 0.0, 1e-12);
}

TEST(DriftingClock, ZeroDriftZeroOffsetIsIdentity) {
  const DriftingClock c(SimDuration::zero(), 0.0);
  EXPECT_DOUBLE_EQ(c.local(SimTime::millis(123.0)).ms(), 123.0);
}

TEST(ClockFabric, InitialOffsetsWithinConfiguredBound) {
  sim::Simulator sim;
  ClockSyncConfig cfg;
  cfg.initial_offset_max = SimDuration::millis(5.0);
  cfg.drift_ppm_max = 50.0;
  ClockFabric fabric(sim, 6, Xoshiro256(3), cfg);
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_LE(std::abs(fabric.clock(ProcessorId{i}).offsetAt(sim.now()).ms()),
              5.0 + 1e-9);
    EXPECT_LE(std::abs(fabric.clock(ProcessorId{i}).driftPpm()), 50.0);
  }
}

TEST(ClockFabric, SyncShrinksWorstOffset) {
  sim::Simulator sim;
  ClockSyncConfig cfg;
  cfg.initial_offset_max = SimDuration::millis(5.0);
  cfg.sync_period = SimDuration::seconds(1.0);
  cfg.estimate_noise = SimDuration::micros(50.0);
  ClockFabric fabric(sim, 6, Xoshiro256(5), cfg);
  const double before = fabric.worstOffsetNow().ms();
  fabric.startSync();
  sim.runUntil(SimTime::millis(100.0));  // one sync round has fired
  const double after = fabric.worstOffsetNow().ms();
  EXPECT_GT(before, 0.5);  // started badly skewed
  // Residual = estimation noise (sigma 0.05 ms, worst of 6 nodes) plus a
  // hair of drift over the elapsed 100 ms.
  EXPECT_LT(after, 0.25);
  EXPECT_LT(after, before / 4.0);
}

TEST(ClockFabric, SteadyStateOffsetBoundedByNoiseAndDrift) {
  sim::Simulator sim;
  ClockSyncConfig cfg;
  cfg.sync_period = SimDuration::seconds(10.0);
  cfg.estimate_noise = SimDuration::micros(50.0);
  cfg.drift_ppm_max = 50.0;
  ClockFabric fabric(sim, 6, Xoshiro256(7), cfg);
  fabric.startSync();
  sim.runUntil(SimTime::seconds(100.0));
  // Worst drift accumulates 50 ppm * 10 s = 0.5 ms between rounds, plus the
  // estimation noise.
  EXPECT_LT(fabric.worstOffsetNow().ms(), 0.8);
}

TEST(ClockFabric, MeasureAcrossNodesIncludesSkew) {
  sim::Simulator sim;
  ClockSyncConfig cfg;
  cfg.initial_offset_max = SimDuration::millis(2.0);
  cfg.drift_ppm_max = 0.0;
  ClockFabric fabric(sim, 2, Xoshiro256(11), cfg);
  const SimTime t0 = sim.now();
  const SimTime t1 = t0 + SimDuration::millis(100.0);
  const double measured =
      fabric.measure(ProcessorId{0}, t0, ProcessorId{1}, t1).ms();
  const double skew = fabric.clock(ProcessorId{1}).offsetAt(t1).ms() -
                      fabric.clock(ProcessorId{0}).offsetAt(t0).ms();
  EXPECT_NEAR(measured, 100.0 + skew, 1e-9);
  EXPECT_NE(measured, 100.0);  // offsets are nonzero w.h.p. for this seed
}

TEST(ClockFabric, MeasureSameNodeIsDriftOnlyAccurate) {
  sim::Simulator sim;
  ClockSyncConfig cfg;
  cfg.initial_offset_max = SimDuration::millis(2.0);
  cfg.drift_ppm_max = 0.0;  // offset cancels within one clock
  ClockFabric fabric(sim, 2, Xoshiro256(13), cfg);
  const SimTime t0 = sim.now();
  const SimTime t1 = t0 + SimDuration::millis(50.0);
  EXPECT_NEAR(fabric.measure(ProcessorId{0}, t0, ProcessorId{0}, t1).ms(),
              50.0, 1e-9);
}

TEST(ClockFabric, PreSyncStatsAccumulate) {
  sim::Simulator sim;
  ClockSyncConfig cfg;
  cfg.sync_period = SimDuration::seconds(1.0);
  ClockFabric fabric(sim, 4, Xoshiro256(17), cfg);
  fabric.startSync();
  sim.runUntil(SimTime::seconds(5.5));
  EXPECT_EQ(fabric.preSyncOffsetStats().count(), 6u);  // t = 0..5 s
  EXPECT_GT(fabric.preSyncOffsetStats().max(), 0.0);
}

TEST(ClockFabric, StopSyncHaltsRounds) {
  sim::Simulator sim;
  ClockSyncConfig cfg;
  cfg.sync_period = SimDuration::seconds(1.0);
  ClockFabric fabric(sim, 2, Xoshiro256(19), cfg);
  fabric.startSync();
  sim.runUntil(SimTime::millis(1500.0));
  fabric.stopSync();
  const auto rounds = fabric.preSyncOffsetStats().count();
  sim.runUntil(SimTime::seconds(10.0));
  EXPECT_EQ(fabric.preSyncOffsetStats().count(), rounds);
}

}  // namespace
}  // namespace rtdrm::net
