// Randomized property suite for the Ethernet substrate: for arbitrary
// traffic, delivery is total, payload is conserved, wire time is exactly
// the serialization of what was sent, and per-NIC order is FIFO.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "net/ethernet.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::net {
namespace {

struct Sent {
  double payload;
  double enqueue_ms;
  int nic;
};

double wireBytes(double payload) {
  double total = 0.0;
  double left = payload;
  do {
    const double chunk = std::min(left, 1500.0);
    total += std::max(chunk, 46.0) + 38.0;
    left -= chunk;
  } while (left > 0.0);
  return total;
}

class EthernetRandomTraffic : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EthernetRandomTraffic, ConservationAndOrder) {
  Xoshiro256 rng(GetParam());
  sim::Simulator sim;
  EthernetConfig cfg;
  cfg.host_ns_per_byte = rng.uniform(0.0, 100.0);
  cfg.propagation = SimDuration::micros(rng.uniform(0.0, 10.0));
  const std::size_t nodes = 4;
  Ethernet net(sim, nodes, cfg);

  const int n_messages = 60;
  std::vector<Sent> sent;
  sent.reserve(n_messages);
  int delivered = 0;
  double expected_payload = 0.0;
  double expected_wire = 0.0;
  std::uint64_t expected_frames = 0;
  // Per-NIC delivery order must match enqueue order (FIFO through both the
  // marshalling stage and the wire queue).
  std::map<int, std::vector<int>> delivery_order;
  std::map<int, std::vector<int>> enqueue_order;

  for (int i = 0; i < n_messages; ++i) {
    const double at = rng.uniform(0.0, 50.0);
    const int src = static_cast<int>(rng.uniformInt(0, nodes - 1));
    int dst = static_cast<int>(rng.uniformInt(0, nodes - 2));
    if (dst >= src) {
      ++dst;  // distinct destination: always on the wire
    }
    const double payload = rng.uniform(0.0, 6000.0);
    expected_payload += payload;
    expected_wire += wireBytes(payload);
    expected_frames += static_cast<std::uint64_t>(
        payload <= 0.0 ? 1 : (payload + 1499.0) / 1500.0);
    sim.scheduleAt(SimTime::millis(at), [&, i, src, dst, payload] {
      enqueue_order[src].push_back(i);
      net.send(Message{ProcessorId{static_cast<std::uint32_t>(src)},
                       ProcessorId{static_cast<std::uint32_t>(dst)},
                       Bytes::of(payload), "m",
                       [&, i, src, payload](const MessageReceipt& r) {
                         ++delivered;
                         delivery_order[src].push_back(i);
                         EXPECT_NEAR(r.payload.count(), payload, 1e-9);
                         EXPECT_GE(r.first_bit.ms(), r.enqueued.ms());
                         EXPECT_GE(r.delivered.ms(), r.first_bit.ms());
                       }});
    });
  }
  sim.runAll();

  EXPECT_EQ(delivered, n_messages);
  EXPECT_EQ(net.backloggedMessages(), 0u);
  EXPECT_NEAR(net.payloadBytesCarried(), expected_payload, 1e-6);
  EXPECT_EQ(net.framesOnWire(), expected_frames);
  EXPECT_NEAR(net.busyTime().ms(), expected_wire * 8.0 / 100e6 * 1000.0,
              1e-6);
  for (const auto& [nic, order] : delivery_order) {
    EXPECT_EQ(order, enqueue_order[nic]) << "NIC " << nic;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EthernetRandomTraffic,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

TEST(EthernetSaturation, BacklogDrainsAfterBurst) {
  // Offer far more than the wire can carry in the burst window; everything
  // must still drain eventually, in bounded time.
  sim::Simulator sim;
  Ethernet net(sim, 3);
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    net.send(Message{ProcessorId{static_cast<std::uint32_t>(i % 3)},
                     ProcessorId{static_cast<std::uint32_t>((i + 1) % 3)},
                     Bytes::kilo(60.0), "burst",
                     [&](const MessageReceipt&) { ++delivered; }});
  }
  // 12 MB at 100 Mbps ~ 1 s of wire time + marshalling.
  sim.runUntil(SimTime::seconds(10.0));
  EXPECT_EQ(delivered, 200);
  EXPECT_EQ(net.backloggedMessages(), 0u);
  // The bus must have been busy a substantial, plausible fraction.
  EXPECT_GT(net.busyTime().ms(), 900.0);
  EXPECT_LT(net.busyTime().ms(), 1100.0);
}

TEST(EthernetFairness, ManyNicsShareTheBusEvenly) {
  // Equal simultaneous load from every NIC: per-NIC completion of its last
  // message should cluster near the end (round-robin, not starvation).
  sim::Simulator sim;
  EthernetConfig cfg;
  cfg.host_ns_per_byte = 0.0;
  cfg.propagation = SimDuration::zero();
  const std::size_t nodes = 6;
  Ethernet net(sim, nodes, cfg);
  std::vector<double> last_done(nodes, 0.0);
  for (std::uint32_t nic = 0; nic < nodes; ++nic) {
    for (int m = 0; m < 5; ++m) {
      net.send(Message{ProcessorId{nic},
                       ProcessorId{static_cast<std::uint32_t>((nic + 1) %
                                                              nodes)},
                       Bytes::of(3000.0), "f",
                       [&, nic](const MessageReceipt& r) {
                         last_done[nic] =
                             std::max(last_done[nic], r.delivered.ms());
                       }});
    }
  }
  sim.runAll();
  const double total = net.busyTime().ms();
  for (std::uint32_t nic = 0; nic < nodes; ++nic) {
    // Every NIC finishes in the last ~20% of the busy period.
    EXPECT_GT(last_done[nic], 0.8 * total) << "NIC " << nic;
  }
}

}  // namespace
}  // namespace rtdrm::net
