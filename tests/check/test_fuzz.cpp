#include "check/fuzz.hpp"

#include <gtest/gtest.h>

namespace rtdrm::check {
namespace {

TEST(MakeFuzzScenario, IsDeterministicPerSeed) {
  const FuzzScenario a = makeFuzzScenario(7);
  const FuzzScenario b = makeFuzzScenario(7);
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(a.workload_tracks, b.workload_tracks);
  EXPECT_EQ(a.background_targets, b.background_targets);
  EXPECT_EQ(a.coresident_tracks, b.coresident_tracks);
}

TEST(MakeFuzzScenario, DifferentSeedsDiffer) {
  const FuzzScenario a = makeFuzzScenario(1);
  const FuzzScenario b = makeFuzzScenario(2);
  EXPECT_NE(a.summary(), b.summary());
}

TEST(MakeFuzzScenario, GeneratesValidBoundedScenarios) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const FuzzScenario s = makeFuzzScenario(seed);
    EXPECT_GE(s.node_count, 2u);
    EXPECT_LE(s.node_count, 8u);
    EXPECT_GE(s.spec.stageCount(), 2u);
    EXPECT_LE(s.spec.stageCount(), 6u);
    EXPECT_GE(s.periods, 8u);
    EXPECT_LE(s.periods, 40u);
    EXPECT_LE(s.spec.deadline.ms(), s.spec.period.ms());
    bool any_replicable = false;
    for (const auto& st : s.spec.subtasks) {
      any_replicable = any_replicable || st.replicable;
    }
    EXPECT_TRUE(any_replicable) << "seed " << seed;
    for (const double w : s.workload_tracks) {
      EXPECT_GT(w, 0.0) << "zero workload would break EQF's contract";
    }
    EXPECT_EQ(s.models.exec.size(), s.spec.stageCount());
  }
}

TEST(MakeFuzzScenario, SubtaskCapTruncatesWithoutChangingOtherDraws) {
  const FuzzScenario full = makeFuzzScenario(11);
  ShrinkSpec shrink;
  shrink.max_subtasks = 2;
  const FuzzScenario capped = makeFuzzScenario(11, shrink);
  EXPECT_EQ(capped.spec.stageCount(), 2u);
  // Caps truncate after the draws: everything not capped is identical.
  EXPECT_EQ(capped.spec.period.ms(), full.spec.period.ms());
  EXPECT_EQ(capped.spec.deadline.ms(), full.spec.deadline.ms());
  EXPECT_EQ(capped.node_count, full.node_count);
  EXPECT_EQ(capped.periods, full.periods);
  EXPECT_EQ(capped.workload_tracks, full.workload_tracks);
  EXPECT_EQ(capped.spec.subtasks[0].cost.beta_ms,
            full.spec.subtasks[0].cost.beta_ms);
}

TEST(MakeFuzzScenario, PeriodCapShortensHorizon) {
  ShrinkSpec shrink;
  shrink.max_periods = 5;
  const FuzzScenario s = makeFuzzScenario(11, shrink);
  EXPECT_EQ(s.periods, 5u);
}

TEST(MakeFuzzScenario, FlattenYieldsConstantWorkload) {
  ShrinkSpec shrink;
  shrink.flatten_workload = true;
  const FuzzScenario s = makeFuzzScenario(11, shrink);
  for (const double w : s.workload_tracks) {
    EXPECT_DOUBLE_EQ(w, s.workload_tracks.front());
  }
}

TEST(MakeFuzzScenario, CapKeepsAReplicableStage) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    ShrinkSpec shrink;
    shrink.max_subtasks = 2;
    const FuzzScenario s = makeFuzzScenario(seed, shrink);
    bool any_replicable = false;
    for (const auto& st : s.spec.subtasks) {
      any_replicable = any_replicable || st.replicable;
    }
    EXPECT_TRUE(any_replicable) << "seed " << seed;
  }
}

TEST(MakeFuzzScenario, SchedDimensionIsAppendOnly) {
  // The scheduler draw is appended after every other draw: the base
  // scenario of a seed is byte-identical with and without the dimension.
  bool any_non_rr = false;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const FuzzScenario base = makeFuzzScenario(seed);
    const FuzzScenario sched =
        makeFuzzScenario(seed, {}, false, false, /*with_sched=*/true);
    any_non_rr = any_non_rr || sched.sched != node::SchedPolicy::kRoundRobin;
    EXPECT_EQ(base.workload_tracks, sched.workload_tracks);
    EXPECT_EQ(base.node_count, sched.node_count);
    EXPECT_EQ(base.spec.period.ms(), sched.spec.period.ms());
    EXPECT_EQ(base.sched, node::SchedPolicy::kRoundRobin);
    // The shrink cap restores the Round-Robin baseline exactly.
    ShrinkSpec drop;
    drop.drop_sched = true;
    const FuzzScenario dropped =
        makeFuzzScenario(seed, drop, false, false, /*with_sched=*/true);
    EXPECT_EQ(dropped.sched, node::SchedPolicy::kRoundRobin);
    EXPECT_EQ(dropped.summary(), base.summary());
  }
  EXPECT_TRUE(any_non_rr) << "25 seeds never drew a non-RR policy";
}

TEST(MakeFuzzScenario, PeriodAdjustDimensionIsAppendOnly) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const FuzzScenario base = makeFuzzScenario(seed);
    const FuzzScenario elastic = makeFuzzScenario(seed, {}, false, false,
                                                  false,
                                                  /*with_period_adjust=*/true);
    EXPECT_TRUE(elastic.manager.allow_period_adjust);
    EXPECT_GT(elastic.spec.max_period, elastic.spec.period);
    EXPECT_LE(elastic.spec.max_period.ms(), elastic.spec.period.ms() * 2.5);
    EXPECT_EQ(base.workload_tracks, elastic.workload_tracks);
    EXPECT_EQ(base.spec.period.ms(), elastic.spec.period.ms());
    EXPECT_FALSE(base.manager.allow_period_adjust);
    ShrinkSpec drop;
    drop.drop_period_adjust = true;
    const FuzzScenario dropped = makeFuzzScenario(seed, drop, false, false,
                                                  false,
                                                  /*with_period_adjust=*/true);
    EXPECT_FALSE(dropped.manager.allow_period_adjust);
    EXPECT_EQ(dropped.spec.max_period, SimDuration::zero());
    EXPECT_EQ(dropped.summary(), base.summary());
  }
}

TEST(RunFuzzSeed, SchedAndPeriodAdjustSeedsRunClean) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const FuzzOutcome out = runFuzzSeed(seed, {}, false, {}, false,
                                        /*with_sched=*/true,
                                        /*with_period_adjust=*/true);
    EXPECT_FALSE(out.failed()) << "seed " << seed << ": " << out.detail;
    EXPECT_GT(out.checks, 0u);
  }
}

TEST(RunFuzzCase, DroppedDimensionsReproduceBaselineDigest) {
  // The in-binary neutrality gate: generating with both new dimensions
  // enabled but shrink-capped away must replay the exact baseline digest —
  // the dispatch seam and the dormant lever leave no trace.
  ShrinkSpec drop;
  drop.drop_sched = true;
  drop.drop_period_adjust = true;
  for (std::uint64_t seed = 4; seed < 6; ++seed) {
    const FuzzCaseResult base =
        runFuzzCase(makeFuzzScenario(seed), AllocatorKind::kPredictive);
    const FuzzCaseResult gated = runFuzzCase(
        makeFuzzScenario(seed, drop, false, false, true, true),
        AllocatorKind::kPredictive);
    EXPECT_EQ(base.digest, gated.digest) << "seed " << seed;
  }
}

TEST(TablePattern, HoldsLastLevelBeyondTable) {
  const TablePattern p({10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(p.at(0).count(), 10.0);
  EXPECT_DOUBLE_EQ(p.at(2).count(), 30.0);
  EXPECT_DOUBLE_EQ(p.at(100).count(), 30.0);
}

TEST(ShrinkSpec, CliFlagsRoundTripTheCaps) {
  ShrinkSpec s;
  EXPECT_EQ(s.cliFlags(), "");
  s.max_subtasks = 3;
  s.max_periods = 8;
  s.flatten_workload = true;
  EXPECT_EQ(s.cliFlags(), " --max-subtasks=3 --max-periods=8 --flat");
  s.drop_sched = true;
  s.drop_period_adjust = true;
  EXPECT_EQ(s.cliFlags(),
            " --max-subtasks=3 --max-periods=8 --flat --drop-sched"
            " --drop-period-adjust");
}

TEST(RunFuzzSeed, CleanSeedsPassBothAllocatorsAndReplay) {
  // A handful of full-stack runs: oracle holds and replays are
  // byte-identical under both allocators.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const FuzzOutcome out = runFuzzSeed(seed);
    EXPECT_FALSE(out.failed()) << "seed " << seed << ": " << out.detail;
    EXPECT_GT(out.checks, 0u);
  }
}

TEST(RunFuzzCase, SameScenarioProducesByteIdenticalDigests) {
  const FuzzScenario s = makeFuzzScenario(5);
  const FuzzCaseResult a = runFuzzCase(s, AllocatorKind::kPredictive);
  const FuzzCaseResult b = runFuzzCase(s, AllocatorKind::kPredictive);
  EXPECT_EQ(a.violations, 0u) << a.report;
  EXPECT_FALSE(a.digest.empty());
  EXPECT_EQ(a.digest, b.digest);
}

TEST(RunFuzzCase, AllocatorsProduceDistinctRuns) {
  // Sanity that the knob matters: the two allocators should not trace
  // identically on a scenario that triggers adaptation.
  const FuzzScenario s = makeFuzzScenario(6);
  const FuzzCaseResult pred = runFuzzCase(s, AllocatorKind::kPredictive);
  const FuzzCaseResult nonp = runFuzzCase(s, AllocatorKind::kNonPredictive);
  EXPECT_NE(pred.digest, nonp.digest);
}

TEST(Minimize, ShrinksToTheFloorWhenEverythingFails) {
  const ShrinkSpec minimal =
      minimize(11, {}, [](std::uint64_t, const ShrinkSpec&) { return true; });
  const FuzzScenario s = makeFuzzScenario(11, minimal);
  EXPECT_EQ(s.spec.stageCount(), 2u);
  EXPECT_EQ(s.periods, 3u);
  EXPECT_TRUE(minimal.flatten_workload);
}

TEST(Minimize, FindsTheBoundaryOfAHorizonPredicate) {
  // Artificial failure: "fails iff the scenario runs more than 12 periods".
  const std::uint64_t seed = 0;
  ASSERT_GT(makeFuzzScenario(seed).periods, 13u);
  const auto fails = [](std::uint64_t s, const ShrinkSpec& c) {
    return makeFuzzScenario(s, c).periods > 12;
  };
  ASSERT_TRUE(fails(seed, {}));
  const ShrinkSpec minimal = minimize(seed, {}, fails);
  // Greedy halving + decrement lands exactly on the smallest failing
  // horizon; subtask and flatten caps don't affect this predicate so they
  // shrink to their floors too.
  EXPECT_EQ(makeFuzzScenario(seed, minimal).periods, 13u);
  EXPECT_TRUE(fails(seed, minimal));
}

TEST(Minimize, KeepsTheInitialSpecWhenNothingHarsherFails) {
  // Fails only in the *unshrunk* configuration: no cap can be applied.
  const auto fails = [](std::uint64_t, const ShrinkSpec& c) {
    return c.unshrunk();
  };
  const ShrinkSpec minimal = minimize(3, {}, fails);
  EXPECT_TRUE(minimal.unshrunk());
}

}  // namespace
}  // namespace rtdrm::check
