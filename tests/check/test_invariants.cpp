#include "check/invariants.hpp"

#include <gtest/gtest.h>

#include "core/allocators.hpp"
#include "core/eqf.hpp"
#include "core/ledger.hpp"

namespace rtdrm::check {
namespace {

task::TaskSpec twoStageSpec() {
  task::TaskSpec spec;
  spec.name = "T";
  spec.period = SimDuration::millis(200.0);
  spec.deadline = SimDuration::millis(150.0);
  spec.subtasks.resize(2);
  spec.subtasks[0].name = "a";
  spec.subtasks[0].cost.beta_ms = 1.0;
  spec.subtasks[0].replicable = false;
  spec.subtasks[1].name = "b";
  spec.subtasks[1].cost.beta_ms = 1.0;
  spec.subtasks[1].replicable = true;
  spec.messages.resize(1);
  return spec;
}

TEST(InvariantOracle, CleanEqfBudgetsPass) {
  InvariantOracle oracle;
  const core::EqfBudgets b = core::assignEqf({{10.0, 40.0}, {5.0}, 990.0});
  oracle.checkBudgets(b, 990.0);
  EXPECT_TRUE(oracle.ok());
  EXPECT_EQ(oracle.checksRun(), 1u);
}

TEST(InvariantOracle, DetectsBudgetSumDrift) {
  InvariantOracle oracle;
  core::EqfBudgets b = core::assignEqf({{10.0, 40.0}, {5.0}, 990.0});
  b.subtask_ms[0] += 5.0;  // budgets no longer tile the deadline
  oracle.checkBudgets(b, 990.0);
  EXPECT_FALSE(oracle.ok());
  ASSERT_EQ(oracle.recorded().size(), 1u);
  EXPECT_EQ(oracle.recorded()[0].invariant, "eqf-budget-sum");
}

TEST(InvariantOracle, DetectsNegativeBudget) {
  InvariantOracle oracle;
  core::EqfBudgets b = core::assignEqf({{10.0, 40.0}, {5.0}, 990.0});
  b.subtask_ms[1] = -1.0;
  oracle.checkBudgets(b, 990.0);
  EXPECT_GE(oracle.violationCount(), 1u);
  EXPECT_EQ(oracle.recorded()[0].invariant, "eqf-budget-nonneg");
}

TEST(InvariantOracle, DetectsNonMonotoneAbsoluteDeadlines) {
  InvariantOracle oracle;
  core::EqfBudgets b = core::assignEqf({{10.0, 40.0}, {5.0}, 990.0});
  std::swap(b.subtask_abs_ms[0], b.subtask_abs_ms[1]);
  oracle.checkBudgets(b, 990.0);
  EXPECT_FALSE(oracle.ok());
}

TEST(InvariantOracle, CleanPlacementPasses) {
  InvariantOracle oracle;
  const task::TaskSpec spec = twoStageSpec();
  const task::Placement placement({ProcessorId{0}, ProcessorId{1}});
  oracle.checkPlacement(placement, spec, 2);
  EXPECT_TRUE(oracle.ok());
}

TEST(InvariantOracle, DetectsReplicaOnMissingHost) {
  InvariantOracle oracle;
  const task::TaskSpec spec = twoStageSpec();
  const task::Placement placement({ProcessorId{0}, ProcessorId{5}});
  oracle.checkPlacement(placement, spec, 2);
  EXPECT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.recorded()[0].invariant, "replica-host-exists");
}

TEST(InvariantOracle, DetectsReplicasOnNonReplicableStage) {
  InvariantOracle oracle;
  const task::TaskSpec spec = twoStageSpec();
  task::Placement placement({ProcessorId{0}, ProcessorId{1}});
  placement.stage(0).add(ProcessorId{1});  // stage 0 is not replicable
  oracle.checkPlacement(placement, spec, 2);
  EXPECT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.recorded()[0].invariant, "replica-nonreplicable");
}

TEST(InvariantOracle, DetectsPlacementShapeMismatch) {
  InvariantOracle oracle;
  const task::TaskSpec spec = twoStageSpec();
  const task::Placement placement({ProcessorId{0}});  // one stage, spec has 2
  oracle.checkPlacement(placement, spec, 2);
  EXPECT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.recorded()[0].invariant, "placement-shape");
}

TEST(InvariantOracle, CleanReceiptPasses) {
  InvariantOracle oracle;
  const net::MessageReceipt receipt{SimTime::millis(1.0), SimTime::millis(2.0),
                                    SimTime::millis(3.0), Bytes::of(100.0)};
  oracle.checkReceipt(receipt);
  EXPECT_TRUE(oracle.ok());
}

TEST(InvariantOracle, DetectsDeliveryBeforeSend) {
  InvariantOracle oracle;
  // First bit "on the wire" before the message was enqueued.
  const net::MessageReceipt receipt{SimTime::millis(10.0),
                                    SimTime::millis(5.0),
                                    SimTime::millis(20.0), Bytes::of(100.0)};
  oracle.checkReceipt(receipt);
  EXPECT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.recorded()[0].invariant, "receipt-buffer-causality");
}

TEST(InvariantOracle, DetectsDeliveryBeforeFirstBit) {
  InvariantOracle oracle;
  const net::MessageReceipt receipt{SimTime::millis(1.0), SimTime::millis(9.0),
                                    SimTime::millis(5.0), Bytes::of(100.0)};
  oracle.checkReceipt(receipt);
  EXPECT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.recorded()[0].invariant, "receipt-transfer-causality");
}

TEST(InvariantOracle, LedgerTotalsMatchPosts) {
  InvariantOracle oracle;
  core::WorkloadLedger ledger;
  const auto a = ledger.registerTask("A");
  const auto b = ledger.registerTask("B");
  ledger.post(a, DataSize::tracks(100.0));
  ledger.post(b, DataSize::tracks(250.0));
  oracle.checkLedger(ledger);
  EXPECT_TRUE(oracle.ok());
}

TEST(InvariantOracle, DetectsNegativeLedgerPost) {
  InvariantOracle oracle;
  core::WorkloadLedger ledger;
  const auto a = ledger.registerTask("A");
  ledger.post(a, DataSize::tracks(-5.0));
  oracle.checkLedger(ledger);
  EXPECT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.recorded()[0].invariant, "ledger-post-nonneg");
}

TEST(InvariantOracle, ClusterUtilizationStaysInRange) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 3);
  InvariantOracle oracle;
  oracle.watch(cluster);
  cluster.sampleUtilization();
  oracle.sweep();
  EXPECT_TRUE(oracle.ok());
  EXPECT_GE(oracle.checksRun(), 1u);
}

TEST(InvariantOracle, BusyConservationHoldsMidAndPostStretch) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 2);
  InvariantOracle oracle;
  oracle.watch(cluster);
  node::Processor& cpu = cluster.processor(ProcessorId{0});
  cpu.submit(node::Job{SimDuration::millis(3.0), nullptr, "a"});
  cpu.submit(node::Job{SimDuration::millis(2.0), nullptr, "b"});
  // Mid-stretch: busyTime may exceed served+overhead by the in-flight span
  // only.
  sim.runUntil(SimTime::millis(1.5));
  oracle.checkBusyConservation(cluster);
  // Idle: the law must hold exactly on every node (including the one that
  // never ran anything).
  sim.runAll();
  oracle.checkBusyConservation(cluster);
  EXPECT_TRUE(oracle.ok()) << oracle.report();
  EXPECT_GE(oracle.checksRun(), 2u);
}

TEST(InvariantOracle, DetectsPeriodFinishBeforeRelease) {
  InvariantOracle oracle;
  task::PeriodRecord record;
  record.release = SimTime::millis(100.0);
  record.finish = SimTime::millis(50.0);
  record.completed = true;
  oracle.checkRecord(record);
  EXPECT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.recorded()[0].invariant, "record-causality");
}

TEST(InvariantOracle, DetectsActionOnNonReplicableStage) {
  InvariantOracle oracle;
  const task::TaskSpec spec = twoStageSpec();
  oracle.checkActions({{0, core::ActionKind::kReplicate}}, spec);
  EXPECT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.recorded()[0].invariant, "action-replicable-only");
}

TEST(InvariantOracle, AcceptsActionOnReplicableStage) {
  InvariantOracle oracle;
  const task::TaskSpec spec = twoStageSpec();
  oracle.checkActions({{1, core::ActionKind::kReplicate}}, spec);
  EXPECT_TRUE(oracle.ok());
}

TEST(InvariantOracle, DetectsPredictiveAcceptanceBeyondForecastLimit) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 3);
  const task::TaskSpec spec = twoStageSpec();
  const core::EqfBudgets budgets =
      core::assignEqf({{10.0, 10.0}, {1.0}, 100.0});

  core::PredictiveModels models;
  models.exec.resize(2);
  models.exec[0].b3 = 100.0;  // 100 ms per hundred tracks: cannot fit
  models.exec[1].b3 = 100.0;
  const core::PredictiveAllocator allocator(models);

  const core::AllocationContext ctx{spec,    cluster,
                                    DataSize::tracks(1000.0), budgets,
                                    0.2,     DataSize::zero()};
  const task::ReplicaSet rs(ProcessorId{0});

  InvariantOracle oracle;
  // A "successful" allocation whose own forecast busts the limit must be
  // flagged — this is the Fig.-5 acceptance condition.
  oracle.checkAllocation(allocator, ctx, 0, core::AllocStatus::kSuccess, rs);
  EXPECT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.recorded()[0].invariant, "predictive-acceptance");

  // The same report with kFailure is consistent: nothing was accepted.
  InvariantOracle oracle2;
  oracle2.checkAllocation(allocator, ctx, 0, core::AllocStatus::kFailure, rs);
  EXPECT_TRUE(oracle2.ok());
}

TEST(InvariantOracle, RealPredictiveDecisionsSatisfyTheirOwnForecast) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 4);
  cluster.sampleUtilization();
  const task::TaskSpec spec = twoStageSpec();
  const core::EqfBudgets budgets =
      core::assignEqf({{10.0, 10.0}, {1.0}, 100.0});

  core::PredictiveModels models;
  models.exec.resize(2);
  models.exec[0].b3 = 1.0;
  models.exec[1].b3 = 1.0;
  core::PredictiveAllocator allocator(models);

  const core::AllocationContext ctx{spec,    cluster,
                                    DataSize::tracks(1000.0), budgets,
                                    0.2,     DataSize::zero()};
  task::ReplicaSet rs(ProcessorId{0});
  const core::AllocStatus status = allocator.replicate(ctx, 1, rs);

  InvariantOracle oracle;
  oracle.checkAllocation(allocator, ctx, 1, status, rs);
  EXPECT_TRUE(oracle.ok()) << oracle.report();
}

TEST(InvariantOracle, NonPredictiveAllocationsAreNotForecastChecked) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 3);
  const task::TaskSpec spec = twoStageSpec();
  const core::EqfBudgets budgets = core::assignEqf({{10.0, 10.0}, {1.0}, 30.0});
  const core::NonPredictiveAllocator allocator;
  const core::AllocationContext ctx{spec,    cluster,
                                    DataSize::tracks(5000.0), budgets,
                                    0.2,     DataSize::zero()};
  const task::ReplicaSet rs(ProcessorId{0});
  InvariantOracle oracle;
  oracle.checkAllocation(allocator, ctx, 0, core::AllocStatus::kSuccess, rs);
  EXPECT_TRUE(oracle.ok());
}

TEST(InvariantOracle, RecordingIsBoundedButCountingIsNot) {
  OracleConfig config;
  config.max_recorded = 2;
  InvariantOracle oracle(config);
  const net::MessageReceipt bad{SimTime::millis(10.0), SimTime::millis(5.0),
                                SimTime::millis(20.0), Bytes::of(1.0)};
  for (int i = 0; i < 5; ++i) {
    oracle.checkReceipt(bad);
  }
  EXPECT_EQ(oracle.violationCount(), 5u);
  EXPECT_EQ(oracle.recorded().size(), 2u);
  EXPECT_NE(oracle.report().find("3 more"), std::string::npos);
}

TEST(InvariantOracle, ReportNamesTheInvariant) {
  InvariantOracle oracle;
  core::EqfBudgets b = core::assignEqf({{10.0}, {}, 100.0});
  b.subtask_ms[0] = 42.0;
  oracle.checkBudgets(b, 100.0);
  EXPECT_NE(oracle.report().find("eqf-budget-sum"), std::string::npos);
}

TEST(InvariantOracleDeathTest, AbortModeDiesOnFirstViolation) {
  OracleConfig config;
  config.abort_on_violation = true;
  const net::MessageReceipt bad{SimTime::millis(10.0), SimTime::millis(5.0),
                                SimTime::millis(20.0), Bytes::of(1.0)};
  EXPECT_DEATH(
      {
        InvariantOracle oracle(config);
        oracle.checkReceipt(bad);
      },
      "invariant violated");
}

}  // namespace
}  // namespace rtdrm::check
