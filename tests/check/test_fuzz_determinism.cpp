// Sharded-engine determinism suite: the engine's core contract is that a
// deterministic-mode run is a pure function of (scenario, shard count) —
// the worker-thread count must never leak into results. Each seed runs the
// full fuzz stack on a sharded engine and the byte-exact digest (trace
// events + metrics + substrate counters) is compared across thread counts
// {1, 2, 4, 8}. Fast mode must satisfy the same thread-count independence
// via the canonical (time, src, seq) mailbox merge, so a smaller seed
// sweep covers it too.
//
// Scenarios are shrink-capped (short horizon, short pipeline) to keep the
// 50-seed sweep inside a unit-test budget; the caps truncate the generated
// scenario without changing its draws, so every seed still exercises a
// distinct cluster/workload/schedule shape.
#include "check/fuzz.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/parallel.hpp"

namespace rtdrm::check {
namespace {

/// Restores the process-wide worker budget after each test so thread
/// overrides never leak into other suites.
class FuzzDeterminism : public ::testing::Test {
 protected:
  void TearDown() override { parallel::setThreads(0); }

  static ShrinkSpec cappedScenario() {
    ShrinkSpec shrink;
    shrink.max_subtasks = 3;
    shrink.max_periods = 6;
    return shrink;
  }

  static FuzzCaseResult runSharded(
      std::uint64_t seed, AllocatorKind kind, parallel::SimMode mode,
      parallel::LookaheadPolicy policy = parallel::LookaheadPolicy::kAdaptive) {
    FuzzExecConfig exec;
    exec.sim_shards = 3;  // control shard + 2 node shards
    exec.sim_mode = mode;
    exec.lookahead = policy;
    return runFuzzCase(makeFuzzScenario(seed, cappedScenario()), kind,
                       nullptr, exec);
  }
};

TEST_F(FuzzDeterminism, DetDigestsByteIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    // Alternate allocators so both decision paths get swept.
    const AllocatorKind kind = (seed % 2 == 0) ? AllocatorKind::kPredictive
                                               : AllocatorKind::kNonPredictive;
    parallel::setThreads(1);
    const FuzzCaseResult base =
        runSharded(seed, kind, parallel::SimMode::kDeterministic);
    EXPECT_EQ(base.violations, 0u) << "seed " << seed << ": " << base.report;
    ASSERT_FALSE(base.digest.empty());
    for (const unsigned threads : {2u, 4u, 8u}) {
      parallel::setThreads(threads);
      const FuzzCaseResult run =
          runSharded(seed, kind, parallel::SimMode::kDeterministic);
      EXPECT_EQ(base.digest, run.digest)
          << "seed " << seed << ": deterministic digest diverged at "
          << threads << " threads (" << base.digest.size() << " vs "
          << run.digest.size() << " bytes)";
    }
  }
}

TEST_F(FuzzDeterminism, AdaptiveVsStaticDigestParityAcrossThreadCounts) {
  // The adaptive-window determinism invariant, end to end: window sizing
  // is pure execution strategy, so a static-lookahead single-threaded run
  // and adaptive runs at any worker count must produce byte-identical
  // digests for every seed.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const AllocatorKind kind = (seed % 2 == 0) ? AllocatorKind::kPredictive
                                               : AllocatorKind::kNonPredictive;
    parallel::setThreads(1);
    const FuzzCaseResult base =
        runSharded(seed, kind, parallel::SimMode::kDeterministic,
                   parallel::LookaheadPolicy::kStatic);
    EXPECT_EQ(base.violations, 0u) << "seed " << seed << ": " << base.report;
    ASSERT_FALSE(base.digest.empty());
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      parallel::setThreads(threads);
      const FuzzCaseResult run =
          runSharded(seed, kind, parallel::SimMode::kDeterministic,
                     parallel::LookaheadPolicy::kAdaptive);
      EXPECT_EQ(base.digest, run.digest)
          << "seed " << seed << ": adaptive digest diverged from the "
          << "static baseline at " << threads << " threads ("
          << base.digest.size() << " vs " << run.digest.size() << " bytes)";
    }
  }
}

TEST_F(FuzzDeterminism, ManagerCrashDigestsByteIdenticalAcrossThreadCounts) {
  // Fixed-seed manager-crash scenarios: the sharded management plane
  // (gossip wire traffic, election, decision-gap accounting, the target
  // detector's heartbeats) must be exactly as thread-count independent as
  // the base stack. One seed runs the plane faults alone, one stacks them
  // on top of the node/link fault schedule.
  struct Case {
    std::uint64_t seed;
    bool with_node_faults;
  };
  for (const Case c : {Case{11, false}, Case{23, true}}) {
    const AllocatorKind kind = c.with_node_faults
                                   ? AllocatorKind::kNonPredictive
                                   : AllocatorKind::kPredictive;
    FuzzExecConfig exec;
    exec.sim_shards = 3;
    exec.sim_mode = parallel::SimMode::kDeterministic;
    const FuzzScenario scenario = makeFuzzScenario(
        c.seed, cappedScenario(), c.with_node_faults, true);
    ASSERT_GT(scenario.managers, 1u) << "seed " << c.seed;
    ASSERT_FALSE(scenario.faults.manager_crashes.empty())
        << "seed " << c.seed;
    parallel::setThreads(1);
    const FuzzCaseResult base = runFuzzCase(scenario, kind, nullptr, exec);
    EXPECT_EQ(base.violations, 0u) << "seed " << c.seed << ": "
                                   << base.report;
    ASSERT_FALSE(base.digest.empty());
    for (const unsigned threads : {2u, 4u, 8u}) {
      parallel::setThreads(threads);
      const FuzzCaseResult run = runFuzzCase(scenario, kind, nullptr, exec);
      EXPECT_EQ(base.digest, run.digest)
          << "seed " << c.seed << ": manager-crash digest diverged at "
          << threads << " threads";
    }
  }
}

TEST_F(FuzzDeterminism, SchedDimensionDigestsByteIdenticalAcrossThreadCounts) {
  // The new dimensions ride the same contract: EDF/RMS/LLF dispatch
  // decisions and the manager's period-adjust lever must be pure functions
  // of the scenario, independent of the worker-thread count.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const AllocatorKind kind = (seed % 2 == 0) ? AllocatorKind::kPredictive
                                               : AllocatorKind::kNonPredictive;
    FuzzExecConfig exec;
    exec.sim_shards = 3;
    exec.sim_mode = parallel::SimMode::kDeterministic;
    const FuzzScenario scenario =
        makeFuzzScenario(seed, cappedScenario(), false, false,
                         /*with_sched=*/true, /*with_period_adjust=*/true);
    parallel::setThreads(1);
    const FuzzCaseResult base = runFuzzCase(scenario, kind, nullptr, exec);
    EXPECT_EQ(base.violations, 0u) << "seed " << seed << ": " << base.report;
    ASSERT_FALSE(base.digest.empty());
    for (const unsigned threads : {2u, 4u, 8u}) {
      parallel::setThreads(threads);
      const FuzzCaseResult run = runFuzzCase(scenario, kind, nullptr, exec);
      EXPECT_EQ(base.digest, run.digest)
          << "seed " << seed << " (" << scenario.summary()
          << "): sched-dimension digest diverged at " << threads
          << " threads";
    }
  }
}

TEST_F(FuzzDeterminism, SwitchedFabricDigestsByteIdenticalAcrossThreadCounts) {
  // Switched-fabric episodes on the sharded engine: per-port FIFO service,
  // store-and-forward hops, tail-drop NACK returns, and the generator
  // workload mixes must all be pure functions of the scenario — the
  // worker-thread count can never leak into a deterministic-mode digest.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const AllocatorKind kind = (seed % 2 == 0) ? AllocatorKind::kPredictive
                                               : AllocatorKind::kNonPredictive;
    FuzzExecConfig exec;
    exec.sim_shards = 3;
    exec.sim_mode = parallel::SimMode::kDeterministic;
    const FuzzScenario scenario = makeFuzzScenario(
        seed, cappedScenario(), false, false, false, false,
        /*with_net_topology=*/true, /*with_workload_mix=*/true);
    parallel::setThreads(1);
    const FuzzCaseResult base = runFuzzCase(scenario, kind, nullptr, exec);
    EXPECT_EQ(base.violations, 0u) << "seed " << seed << ": " << base.report;
    ASSERT_FALSE(base.digest.empty());
    for (const unsigned threads : {2u, 4u, 8u}) {
      parallel::setThreads(threads);
      const FuzzCaseResult run = runFuzzCase(scenario, kind, nullptr, exec);
      EXPECT_EQ(base.digest, run.digest)
          << "seed " << seed << " (" << scenario.summary()
          << "): switched-fabric digest diverged at " << threads
          << " threads";
    }
  }
}

TEST_F(FuzzDeterminism, DroppedFabricDimensionsReproduceBaseDigests) {
  // Bus neutrality at the digest level: a build that enables the
  // network-topology and workload-mix dimensions but shrinks them away
  // must reproduce the historical baseline digests byte for byte — the
  // same property `--net bus` pins for the CLIs.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const AllocatorKind kind = (seed % 2 == 0) ? AllocatorKind::kPredictive
                                               : AllocatorKind::kNonPredictive;
    ShrinkSpec dropped = cappedScenario();
    dropped.drop_net_topology = true;
    dropped.drop_workload_mix = true;
    const FuzzCaseResult base =
        runFuzzCase(makeFuzzScenario(seed, cappedScenario()), kind);
    const FuzzCaseResult capped = runFuzzCase(
        makeFuzzScenario(seed, dropped, false, false, false, false,
                         /*with_net_topology=*/true,
                         /*with_workload_mix=*/true),
        kind);
    ASSERT_FALSE(base.digest.empty());
    EXPECT_EQ(base.digest, capped.digest) << "seed " << seed;
  }
}

TEST_F(FuzzDeterminism, FastDigestsByteIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const AllocatorKind kind = (seed % 2 == 0) ? AllocatorKind::kPredictive
                                               : AllocatorKind::kNonPredictive;
    parallel::setThreads(1);
    const FuzzCaseResult base =
        runSharded(seed, kind, parallel::SimMode::kFast);
    ASSERT_FALSE(base.digest.empty());
    for (const unsigned threads : {2u, 4u, 8u}) {
      parallel::setThreads(threads);
      const FuzzCaseResult run =
          runSharded(seed, kind, parallel::SimMode::kFast);
      EXPECT_EQ(base.digest, run.digest)
          << "seed " << seed << ": fast digest diverged at " << threads
          << " threads";
    }
  }
}

TEST_F(FuzzDeterminism, ShardedReplayIsByteIdentical) {
  // Same (seed, shards, mode, threads) twice: hidden nondeterminism in the
  // sharded path (iteration order, uninitialized state) would diverge here
  // even with one worker.
  parallel::setThreads(4);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const FuzzCaseResult a = runSharded(seed, AllocatorKind::kPredictive,
                                        parallel::SimMode::kDeterministic);
    const FuzzCaseResult b = runSharded(seed, AllocatorKind::kPredictive,
                                        parallel::SimMode::kDeterministic);
    EXPECT_EQ(a.digest, b.digest) << "seed " << seed;
  }
}

TEST_F(FuzzDeterminism, LegacySingleQueueDigestUnchangedByExecConfig) {
  // The default FuzzExecConfig must be the exact legacy path: a run with
  // an explicit 1-shard exec config matches the implicit default byte for
  // byte, at any thread setting.
  const FuzzScenario s = makeFuzzScenario(7, cappedScenario());
  const FuzzCaseResult implicit_default =
      runFuzzCase(s, AllocatorKind::kPredictive);
  parallel::setThreads(8);
  FuzzExecConfig exec;
  exec.sim_shards = 1;
  exec.sim_mode = parallel::SimMode::kFast;  // ignored at one shard
  const FuzzCaseResult explicit_single =
      runFuzzCase(s, AllocatorKind::kPredictive, nullptr, exec);
  EXPECT_EQ(implicit_default.digest, explicit_single.digest);
}

}  // namespace
}  // namespace rtdrm::check
