#include "core/ledger.hpp"

#include <gtest/gtest.h>

namespace rtdrm::core {
namespace {

TEST(WorkloadLedger, RegistersTasksWithNames) {
  WorkloadLedger ledger;
  const auto a = ledger.registerTask("AAW#1");
  const auto b = ledger.registerTask("AAW#2");
  EXPECT_EQ(ledger.taskCount(), 2u);
  EXPECT_EQ(ledger.taskName(a), "AAW#1");
  EXPECT_EQ(ledger.taskName(b), "AAW#2");
  EXPECT_NE(a.value, b.value);
}

TEST(WorkloadLedger, TotalIsEq5Sum) {
  WorkloadLedger ledger;
  const auto a = ledger.registerTask("A");
  const auto b = ledger.registerTask("B");
  const auto c = ledger.registerTask("C");
  ledger.post(a, DataSize::tracks(1000.0));
  ledger.post(b, DataSize::tracks(2500.0));
  ledger.post(c, DataSize::tracks(500.0));
  EXPECT_DOUBLE_EQ(ledger.total().count(), 4000.0);
  EXPECT_DOUBLE_EQ(ledger.posted(b).count(), 2500.0);
}

TEST(WorkloadLedger, PostOverwritesPreviousPeriod) {
  WorkloadLedger ledger;
  const auto a = ledger.registerTask("A");
  ledger.post(a, DataSize::tracks(100.0));
  ledger.post(a, DataSize::tracks(900.0));
  EXPECT_DOUBLE_EQ(ledger.total().count(), 900.0);
}

TEST(WorkloadLedger, UnpostedTasksContributeZero) {
  WorkloadLedger ledger;
  ledger.registerTask("A");
  const auto b = ledger.registerTask("B");
  ledger.post(b, DataSize::tracks(700.0));
  EXPECT_DOUBLE_EQ(ledger.total().count(), 700.0);
}

TEST(WorkloadLedgerDeathTest, PostOutOfRangeAsserts) {
  WorkloadLedger ledger;
  EXPECT_DEATH(ledger.post(WorkloadLedger::TaskId{3}, DataSize::zero()),
               "assertion");
}

}  // namespace
}  // namespace rtdrm::core
