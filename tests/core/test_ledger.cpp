#include "core/ledger.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace rtdrm::core {
namespace {

TEST(WorkloadLedger, RegistersTasksWithNames) {
  WorkloadLedger ledger;
  const auto a = ledger.registerTask("AAW#1");
  const auto b = ledger.registerTask("AAW#2");
  EXPECT_EQ(ledger.taskCount(), 2u);
  EXPECT_EQ(ledger.taskName(a), "AAW#1");
  EXPECT_EQ(ledger.taskName(b), "AAW#2");
  EXPECT_NE(a.value, b.value);
}

TEST(WorkloadLedger, TotalIsEq5Sum) {
  WorkloadLedger ledger;
  const auto a = ledger.registerTask("A");
  const auto b = ledger.registerTask("B");
  const auto c = ledger.registerTask("C");
  ledger.post(a, DataSize::tracks(1000.0));
  ledger.post(b, DataSize::tracks(2500.0));
  ledger.post(c, DataSize::tracks(500.0));
  EXPECT_DOUBLE_EQ(ledger.total().count(), 4000.0);
  EXPECT_DOUBLE_EQ(ledger.posted(b).count(), 2500.0);
}

TEST(WorkloadLedger, PostOverwritesPreviousPeriod) {
  WorkloadLedger ledger;
  const auto a = ledger.registerTask("A");
  ledger.post(a, DataSize::tracks(100.0));
  ledger.post(a, DataSize::tracks(900.0));
  EXPECT_DOUBLE_EQ(ledger.total().count(), 900.0);
}

TEST(WorkloadLedger, UnpostedTasksContributeZero) {
  WorkloadLedger ledger;
  ledger.registerTask("A");
  const auto b = ledger.registerTask("B");
  ledger.post(b, DataSize::tracks(700.0));
  EXPECT_DOUBLE_EQ(ledger.total().count(), 700.0);
}

TEST(WorkloadLedgerDeathTest, PostOutOfRangeAsserts) {
  WorkloadLedger ledger;
  EXPECT_DEATH(ledger.post(WorkloadLedger::TaskId{3}, DataSize::zero()),
               "assertion");
}

// The cached total must be *bit-exact* with a fresh registration-order
// re-sum after any interleaving of posts, reads, and registrations —
// floating-point sums are order-sensitive, so the cache recomputes in the
// same fixed order a fresh sum uses.
TEST(WorkloadLedger, CachedTotalBitExactAcrossInterleavings) {
  Xoshiro256 rng(97);
  WorkloadLedger ledger;
  std::vector<WorkloadLedger::TaskId> tasks;
  for (int t = 0; t < 5; ++t) {
    tasks.push_back(ledger.registerTask("T" + std::to_string(t)));
  }
  for (int step = 0; step < 300; ++step) {
    const auto id = tasks[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(tasks.size()) - 1))];
    // Awkward, non-representable values so any re-ordering of the sum
    // would actually show up in the low bits.
    ledger.post(id, DataSize::tracks(rng.uniform01() * 0.1 + 1.0 / 3.0));
    if (step % 7 == 0) {
      tasks.push_back(
          ledger.registerTask("L" + std::to_string(tasks.size())));
    }
    double fresh = 0.0;
    for (std::size_t t = 0; t < ledger.taskCount(); ++t) {
      fresh += ledger.posted(WorkloadLedger::TaskId{t}).count();
    }
    // Bit-exact, not NEAR: the cache recomputes in registration order.
    ASSERT_EQ(ledger.total().count(), fresh) << "step " << step;
    // A second read serves the cache; it must not drift.
    ASSERT_EQ(ledger.total().count(), fresh) << "step " << step;
  }
}

TEST(WorkloadLedger, CacheInvalidatedByPostAndRegister) {
  WorkloadLedger ledger;
  const auto a = ledger.registerTask("A");
  ledger.post(a, DataSize::tracks(100.0));
  EXPECT_DOUBLE_EQ(ledger.total().count(), 100.0);  // prime the cache
  ledger.post(a, DataSize::tracks(250.0));
  EXPECT_DOUBLE_EQ(ledger.total().count(), 250.0);  // post dirties it
  const auto b = ledger.registerTask("B");
  EXPECT_DOUBLE_EQ(ledger.total().count(), 250.0);  // new task adds zero
  ledger.post(b, DataSize::tracks(50.0));
  EXPECT_DOUBLE_EQ(ledger.total().count(), 300.0);
}

}  // namespace
}  // namespace rtdrm::core
