#include "core/monitor.hpp"

#include <gtest/gtest.h>

namespace rtdrm::core {
namespace {

task::TaskSpec twoReplicableSpec() {
  task::TaskSpec spec;
  spec.subtasks = {
      task::SubtaskSpec{"fixed", task::SubtaskCost{0.0, 1.0}, false, 0.0},
      task::SubtaskSpec{"flexA", task::SubtaskCost{0.0, 1.0}, true, 0.0},
      task::SubtaskSpec{"flexB", task::SubtaskCost{0.0, 1.0}, true, 0.0}};
  spec.messages.assign(2, task::MessageSpec{80.0});
  return spec;
}

// Budgets: stage budgets 100 / 100 / 100 (subtask 80 + message 20).
EqfBudgets budgets() {
  return assignEqf({{100.0, 80.0, 80.0}, {20.0, 20.0}, 300.0});
}

task::PeriodRecord record(double s0_ms, double s1_ms, double s2_ms,
                          bool completed = true) {
  task::PeriodRecord rec;
  rec.completed = completed;
  rec.release = SimTime::zero();
  rec.finish = SimTime::millis(s0_ms + s1_ms + s2_ms);
  rec.stages.resize(3);
  const double lat[3] = {s0_ms, s1_ms, s2_ms};
  double cursor = 0.0;
  for (int i = 0; i < 3; ++i) {
    auto& st = rec.stages[static_cast<std::size_t>(i)];
    st.start = SimTime::millis(cursor);
    cursor += lat[i];
    st.end = SimTime::millis(cursor);
    st.completed = completed;
    st.measured_latency = SimDuration::millis(lat[i]);
    st.replicas = 1;
  }
  return rec;
}

task::Placement onePerStage() {
  return task::Placement({ProcessorId{0}, ProcessorId{1}, ProcessorId{2}});
}

TEST(SlackMonitor, HealthySlackYieldsNoActions) {
  const auto spec = twoReplicableSpec();
  SlackMonitor mon(spec, MonitorConfig{});
  // Latencies at 50% of the 100 ms stage budgets: slack 50% — between the
  // 20% replicate trigger and 60% shutdown trigger.
  const auto actions = mon.evaluate(record(50.0, 50.0, 50.0), budgets(),
                                    onePerStage());
  EXPECT_TRUE(actions.empty());
}

TEST(SlackMonitor, LowSlackTriggersReplication) {
  const auto spec = twoReplicableSpec();
  SlackMonitor mon(spec, MonitorConfig{});
  // Stage 1 at 90 of 100: slack 10% < 20% reserve.
  const auto actions =
      mon.evaluate(record(50.0, 90.0, 50.0), budgets(), onePerStage());
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].stage, 1u);
  EXPECT_EQ(actions[0].kind, ActionKind::kReplicate);
}

TEST(SlackMonitor, OutrightMissTriggersReplication) {
  const auto spec = twoReplicableSpec();
  SlackMonitor mon(spec, MonitorConfig{});
  const auto actions =
      mon.evaluate(record(50.0, 150.0, 50.0), budgets(), onePerStage());
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].kind, ActionKind::kReplicate);
}

TEST(SlackMonitor, NonReplicableStageNeverFlagged) {
  const auto spec = twoReplicableSpec();
  SlackMonitor mon(spec, MonitorConfig{});
  // Stage 0 badly missing but not replicable.
  const auto actions =
      mon.evaluate(record(500.0, 50.0, 50.0), budgets(), onePerStage());
  EXPECT_TRUE(actions.empty());
}

TEST(SlackMonitor, BothReplicableStagesCanBeFlagged) {
  const auto spec = twoReplicableSpec();
  SlackMonitor mon(spec, MonitorConfig{});
  const auto actions =
      mon.evaluate(record(50.0, 95.0, 99.0), budgets(), onePerStage());
  EXPECT_EQ(actions.size(), 2u);
}

TEST(SlackMonitor, AbortedInstanceFlagsIncompleteStages) {
  const auto spec = twoReplicableSpec();
  SlackMonitor mon(spec, MonitorConfig{});
  task::PeriodRecord rec = record(50.0, 50.0, 50.0, /*completed=*/false);
  const auto actions = mon.evaluate(rec, budgets(), onePerStage());
  ASSERT_EQ(actions.size(), 2u);  // both replicable stages incomplete
  EXPECT_EQ(actions[0].kind, ActionKind::kReplicate);
}

TEST(SlackMonitor, ShutdownRequiresSustainedHighSlack) {
  const auto spec = twoReplicableSpec();
  MonitorConfig cfg;
  cfg.shutdown_hysteresis = 3;
  SlackMonitor mon(spec, cfg);
  task::Placement p = onePerStage();
  p.stage(1).add(ProcessorId{3});  // stage 1 has 2 replicas
  // Slack 90% (> 60% threshold) on stage 1.
  const auto rec = record(50.0, 10.0, 50.0);
  EXPECT_TRUE(mon.evaluate(rec, budgets(), p).empty());
  EXPECT_TRUE(mon.evaluate(rec, budgets(), p).empty());
  const auto actions = mon.evaluate(rec, budgets(), p);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].stage, 1u);
  EXPECT_EQ(actions[0].kind, ActionKind::kShutdown);
}

TEST(SlackMonitor, HysteresisResetsOnNormalPeriod) {
  const auto spec = twoReplicableSpec();
  MonitorConfig cfg;
  cfg.shutdown_hysteresis = 2;
  SlackMonitor mon(spec, cfg);
  task::Placement p = onePerStage();
  p.stage(1).add(ProcessorId{3});
  const auto high_slack = record(50.0, 10.0, 50.0);
  const auto normal = record(50.0, 50.0, 50.0);
  EXPECT_TRUE(mon.evaluate(high_slack, budgets(), p).empty());
  EXPECT_TRUE(mon.evaluate(normal, budgets(), p).empty());  // streak resets
  EXPECT_TRUE(mon.evaluate(high_slack, budgets(), p).empty());
  EXPECT_EQ(mon.evaluate(high_slack, budgets(), p).size(), 1u);
}

TEST(SlackMonitor, NoShutdownWithSingleReplica) {
  const auto spec = twoReplicableSpec();
  MonitorConfig cfg;
  cfg.shutdown_hysteresis = 1;
  SlackMonitor mon(spec, cfg);
  // Very high slack but only one replica: nothing to shut down.
  const auto actions =
      mon.evaluate(record(50.0, 10.0, 10.0), budgets(), onePerStage());
  EXPECT_TRUE(actions.empty());
}

TEST(SlackMonitor, ResetStreaksClearsHysteresis) {
  const auto spec = twoReplicableSpec();
  MonitorConfig cfg;
  cfg.shutdown_hysteresis = 2;
  SlackMonitor mon(spec, cfg);
  task::Placement p = onePerStage();
  p.stage(1).add(ProcessorId{3});
  const auto high_slack = record(50.0, 10.0, 50.0);
  EXPECT_TRUE(mon.evaluate(high_slack, budgets(), p).empty());
  mon.resetStreaks();
  EXPECT_TRUE(mon.evaluate(high_slack, budgets(), p).empty());
  EXPECT_EQ(mon.evaluate(high_slack, budgets(), p).size(), 1u);
}

// Fault-recovery path: an aborted period both demands replication and
// clears any accumulated shutdown streak — a crash must not let a
// pre-crash run of lazy periods shut a replica down right after recovery.
TEST(SlackMonitor, AbortResetsShutdownStreak) {
  const auto spec = twoReplicableSpec();
  MonitorConfig cfg;
  cfg.shutdown_hysteresis = 2;
  SlackMonitor mon(spec, cfg);
  task::Placement p = onePerStage();
  p.stage(1).add(ProcessorId{3});
  const auto high_slack = record(50.0, 10.0, 50.0);
  EXPECT_TRUE(mon.evaluate(high_slack, budgets(), p).empty());  // streak 1
  const auto aborted = record(50.0, 10.0, 50.0, /*completed=*/false);
  const auto crash_actions = mon.evaluate(aborted, budgets(), p);
  ASSERT_EQ(crash_actions.size(), 2u);
  EXPECT_EQ(crash_actions[0].kind, ActionKind::kReplicate);
  // The pre-abort streak is gone: two more high-slack periods are needed.
  EXPECT_TRUE(mon.evaluate(high_slack, budgets(), p).empty());
  EXPECT_EQ(mon.evaluate(high_slack, budgets(), p).size(), 1u);
}

TEST(SlackMonitor, TrueLatencyModeIgnoresClockError) {
  const auto spec = twoReplicableSpec();
  MonitorConfig cfg;
  cfg.use_measured_latency = false;
  SlackMonitor mon(spec, cfg);
  task::PeriodRecord rec = record(50.0, 50.0, 50.0);
  // Corrupt the measured value; true latency (end - start) stays healthy.
  rec.stages[1].measured_latency = SimDuration::millis(99.0);
  EXPECT_TRUE(mon.evaluate(rec, budgets(), onePerStage()).empty());
}

TEST(SlackMonitor, MeasuredLatencyModeUsesClockMeasurement) {
  const auto spec = twoReplicableSpec();
  SlackMonitor mon(spec, MonitorConfig{});  // measured mode default
  task::PeriodRecord rec = record(50.0, 50.0, 50.0);
  rec.stages[1].measured_latency = SimDuration::millis(99.0);
  const auto actions = mon.evaluate(rec, budgets(), onePerStage());
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].stage, 1u);
}

TEST(SlackMonitor, CountsEvaluations) {
  const auto spec = twoReplicableSpec();
  SlackMonitor mon(spec, MonitorConfig{});
  mon.evaluate(record(1.0, 1.0, 1.0), budgets(), onePerStage());
  mon.evaluate(record(1.0, 1.0, 1.0), budgets(), onePerStage());
  EXPECT_EQ(mon.periodsEvaluated(), 2u);
}

TEST(SlackMonitorDeathTest, InvalidConfigRejected) {
  const auto spec = twoReplicableSpec();
  MonitorConfig bad;
  bad.slack_fraction = 0.7;
  bad.shutdown_slack_fraction = 0.6;  // must exceed slack_fraction
  EXPECT_DEATH(SlackMonitor(spec, bad), "assertion");
}

}  // namespace
}  // namespace rtdrm::core
