#include "core/allocators.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace rtdrm::core {
namespace {

// Testbed with controllable per-node utilization: submit `frac * window`
// of work to each node, advance one window, sample.
struct Bed {
  explicit Bed(std::size_t nodes) : cluster(sim, nodes) {}

  void setUtilizations(const std::vector<double>& fracs) {
    for (std::size_t i = 0; i < fracs.size(); ++i) {
      if (fracs[i] > 0.0) {
        cluster.processor(ProcessorId{static_cast<std::uint32_t>(i)})
            .submit(node::Job{SimDuration::millis(100.0 * fracs[i]), nullptr,
                              "load"});
      }
    }
    const SimTime horizon = sim.now() + SimDuration::millis(100.0);
    sim.runUntil(horizon);
    cluster.sampleUtilization();
  }

  sim::Simulator sim;
  node::Cluster cluster;
};

task::TaskSpec twoStageSpec() {
  task::TaskSpec spec;
  spec.subtasks = {
      task::SubtaskSpec{"fixed", task::SubtaskCost{0.0, 1.0}, false, 0.0},
      task::SubtaskSpec{"flex", task::SubtaskCost{0.0, 10.0}, true, 0.0}};
  spec.messages = {task::MessageSpec{0.0}};  // free messages
  return spec;
}

// Stage budgets: stage 0 -> 40, stage 1 -> 60 (message estimate zero).
EqfBudgets budgets() { return assignEqf({{40.0, 60.0}, {0.0}, 100.0}); }

// eex = 10 ms per hundred tracks, independent of utilization; ecd = 0.
PredictiveModels flatModels() {
  PredictiveModels m;
  regress::ExecLatencyModel fixed;
  fixed.b3 = 1.0;
  regress::ExecLatencyModel flex;
  flex.b3 = 10.0;
  m.exec = {fixed, flex};
  m.comm.buffer.k_ms_per_hundred = 0.0;
  m.comm.link_rate = BitRate::mbps(100.0);
  return m;
}

TEST(PredictiveAllocator, ForecastMatchesEq3AndEq4) {
  Bed bed(2);
  bed.setUtilizations({0.0, 0.0});
  PredictiveAllocator alloc(flatModels());
  const auto spec = twoStageSpec();
  const auto b = budgets();
  const AllocationContext ctx{spec, bed.cluster, DataSize::tracks(1000.0), b,
                              0.2};
  // k=1: 10 hundreds * 10 ms = 100 ms. k=2: 50 ms.
  EXPECT_NEAR(alloc.forecastReplicaLatency(ctx, 1, 1, Utilization::zero()).ms(),
              100.0, 1e-9);
  EXPECT_NEAR(alloc.forecastReplicaLatency(ctx, 1, 2, Utilization::zero()).ms(),
              50.0, 1e-9);
  // Stage 0 has no incoming message: pure eex.
  EXPECT_NEAR(alloc.forecastReplicaLatency(ctx, 0, 1, Utilization::zero()).ms(),
              10.0, 1e-9);
}

TEST(PredictiveAllocator, AddsExactlyEnoughReplicas) {
  Bed bed(6);
  bed.setUtilizations({0.0, 0.0, 0.0, 0.0, 0.0, 0.0});
  PredictiveAllocator alloc(flatModels());
  const auto spec = twoStageSpec();
  const auto b = budgets();
  const AllocationContext ctx{spec, bed.cluster, DataSize::tracks(1000.0), b,
                              0.2};
  task::ReplicaSet rs(ProcessorId{0});
  // Limit = 60 - 0.2*60 = 48 ms. Forecast(k) = 100/k: k=3 -> 33.3 <= 48.
  EXPECT_EQ(alloc.replicate(ctx, 1, rs), AllocStatus::kSuccess);
  EXPECT_EQ(rs.size(), 3u);
}

TEST(PredictiveAllocator, PicksLeastUtilizedProcessorsInOrder) {
  Bed bed(4);
  bed.setUtilizations({0.1, 0.5, 0.05, 0.3});
  PredictiveAllocator alloc(flatModels());
  const auto spec = twoStageSpec();
  const auto b = budgets();
  const AllocationContext ctx{spec, bed.cluster, DataSize::tracks(1000.0), b,
                              0.2};
  task::ReplicaSet rs(ProcessorId{0});
  EXPECT_EQ(alloc.replicate(ctx, 1, rs), AllocStatus::kSuccess);
  ASSERT_EQ(rs.size(), 3u);
  // Fig. 5 step 3: pmin first — node 2 (0.05), then node 3 (0.3).
  EXPECT_EQ(rs.nodes()[1], (ProcessorId{2}));
  EXPECT_EQ(rs.nodes()[2], (ProcessorId{3}));
}

TEST(PredictiveAllocator, FailsWhenProcessorsExhausted) {
  Bed bed(2);
  bed.setUtilizations({0.0, 0.0});
  PredictiveAllocator alloc(flatModels());
  const auto spec = twoStageSpec();
  // Tiny budget that even full replication cannot satisfy:
  const EqfBudgets b = assignEqf({{40.0, 10.0}, {0.0}, 50.0});
  const AllocationContext ctx{spec, bed.cluster, DataSize::tracks(1000.0), b,
                              0.2};
  task::ReplicaSet rs(ProcessorId{0});
  // Forecast(k=2) = 50 > limit 8: exhausts the 2-node cluster.
  EXPECT_EQ(alloc.replicate(ctx, 1, rs), AllocStatus::kFailure);
  EXPECT_EQ(rs.size(), 2u);  // grabbed everything it could
}

TEST(PredictiveAllocator, AlwaysAddsAtLeastOneReplica) {
  // Called on low observed slack even if the forecast at current size fits:
  // Fig. 5 unconditionally picks a pmin first.
  Bed bed(6);
  bed.setUtilizations({0.0, 0.0, 0.0, 0.0, 0.0, 0.0});
  PredictiveAllocator alloc(flatModels());
  const auto spec = twoStageSpec();
  const auto b = budgets();  // limit 48
  const AllocationContext ctx{spec, bed.cluster, DataSize::tracks(400.0), b,
                              0.2};
  task::ReplicaSet rs(ProcessorId{0});
  // Forecast(k=1) = 40 <= 48 already, but one replica is still added.
  EXPECT_EQ(alloc.replicate(ctx, 1, rs), AllocStatus::kSuccess);
  EXPECT_EQ(rs.size(), 2u);
}

TEST(PredictiveAllocator, UtilizationDependenceForcesMoreReplicas) {
  // eex = (1 + u) * 10 ms per hundred: busier nodes forecast slower.
  PredictiveModels m = flatModels();
  m.exec[1].b2 = 10.0;  // linear-in-u term on top of b3 = 10
  Bed busy(6);
  busy.setUtilizations({0.8, 0.8, 0.8, 0.8, 0.8, 0.8});
  PredictiveAllocator alloc(m);
  const auto spec = twoStageSpec();
  const auto b = budgets();
  const AllocationContext ctx{spec, busy.cluster, DataSize::tracks(1000.0),
                              b, 0.2};
  task::ReplicaSet rs(ProcessorId{0});
  // Forecast(k) = 1.8 * 100 / k <= 48 -> k = 4 (45 <= 48).
  EXPECT_EQ(alloc.replicate(ctx, 1, rs), AllocStatus::kSuccess);
  EXPECT_EQ(rs.size(), 4u);
}

TEST(PredictiveAllocator, CommDelayCountsAgainstBudget) {
  PredictiveModels m = flatModels();
  m.comm.buffer.k_ms_per_hundred = 2.0;  // Dbuf = 2 ms * total hundreds
  PredictiveAllocator alloc(m);
  task::TaskSpec spec = twoStageSpec();
  spec.messages = {task::MessageSpec{80.0}};
  Bed bed(6);
  bed.setUtilizations({0.0, 0.0, 0.0, 0.0, 0.0, 0.0});
  const auto b = budgets();  // stage 1 limit 48
  const AllocationContext ctx{spec, bed.cluster, DataSize::tracks(1000.0), b,
                              0.2};
  task::ReplicaSet rs(ProcessorId{0});
  // Dbuf = 20 ms regardless of k (total workload!); eex = 100/k; Dtrans
  // tiny. Need 100/k <= ~28 -> k = 4.
  EXPECT_EQ(alloc.replicate(ctx, 1, rs), AllocStatus::kSuccess);
  EXPECT_EQ(rs.size(), 4u);
}

TEST(NonPredictiveAllocator, AddsAllProcessorsBelowThreshold) {
  Bed bed(5);
  bed.setUtilizations({0.5, 0.1, 0.25, 0.15, 0.05});
  NonPredictiveAllocator alloc(Utilization::percent(20.0));
  const auto spec = twoStageSpec();
  const auto b = budgets();
  const AllocationContext ctx{spec, bed.cluster, DataSize::tracks(1000.0), b,
                              0.2};
  task::ReplicaSet rs(ProcessorId{0});
  EXPECT_EQ(alloc.replicate(ctx, 1, rs), AllocStatus::kSuccess);
  // Nodes 1 (0.1), 3 (0.15), 4 (0.05) are below UT; node 2 (0.25) is not;
  // node 0 already hosts the subtask.
  EXPECT_EQ(rs.size(), 4u);
  EXPECT_TRUE(rs.contains(ProcessorId{1}));
  EXPECT_TRUE(rs.contains(ProcessorId{3}));
  EXPECT_TRUE(rs.contains(ProcessorId{4}));
  EXPECT_FALSE(rs.contains(ProcessorId{2}));
}

TEST(NonPredictiveAllocator, NoChangeWhenAllNodesBusy) {
  Bed bed(3);
  bed.setUtilizations({0.5, 0.4, 0.3});
  NonPredictiveAllocator alloc(Utilization::percent(20.0));
  const auto spec = twoStageSpec();
  const auto b = budgets();
  const AllocationContext ctx{spec, bed.cluster, DataSize::tracks(1000.0), b,
                              0.2};
  task::ReplicaSet rs(ProcessorId{0});
  EXPECT_EQ(alloc.replicate(ctx, 1, rs), AllocStatus::kNoChange);
  EXPECT_EQ(rs.size(), 1u);
}

TEST(NonPredictiveAllocator, ThresholdIsConfigurable) {
  Bed bed(3);
  bed.setUtilizations({0.5, 0.45, 0.3});
  NonPredictiveAllocator alloc(Utilization::percent(40.0));
  const auto spec = twoStageSpec();
  const auto b = budgets();
  const AllocationContext ctx{spec, bed.cluster, DataSize::tracks(1000.0), b,
                              0.2};
  task::ReplicaSet rs(ProcessorId{0});
  EXPECT_EQ(alloc.replicate(ctx, 1, rs), AllocStatus::kSuccess);
  EXPECT_EQ(rs.size(), 2u);
  EXPECT_TRUE(rs.contains(ProcessorId{2}));
}

TEST(NonPredictiveAllocator, IgnoresForecastEntirely) {
  // Even with an absurdly tight budget it just takes the idle nodes —
  // that's exactly the heuristic the paper contrasts against.
  Bed bed(3);
  bed.setUtilizations({0.0, 0.0, 0.0});
  NonPredictiveAllocator alloc(Utilization::percent(20.0));
  const auto spec = twoStageSpec();
  const EqfBudgets tight = assignEqf({{40.0, 0.001}, {0.0}, 41.0});
  const AllocationContext ctx{spec, bed.cluster, DataSize::tracks(99000.0),
                              tight, 0.2};
  task::ReplicaSet rs(ProcessorId{0});
  EXPECT_EQ(alloc.replicate(ctx, 1, rs), AllocStatus::kSuccess);
  EXPECT_EQ(rs.size(), 3u);
}

TEST(PredictiveAllocator, HeadroomProvisionsForLargerWorkload) {
  Bed bed(6);
  bed.setUtilizations({0.0, 0.0, 0.0, 0.0, 0.0, 0.0});
  const auto spec = twoStageSpec();
  const auto b = budgets();  // limit 48 ms
  const AllocationContext ctx{spec, bed.cluster, DataSize::tracks(1000.0), b,
                              0.2};
  // Without headroom: forecast 100/k -> k = 3.
  PredictiveAllocator plain(flatModels());
  task::ReplicaSet rs1(ProcessorId{0});
  EXPECT_EQ(plain.replicate(ctx, 1, rs1), AllocStatus::kSuccess);
  EXPECT_EQ(rs1.size(), 3u);
  // With 50% headroom: forecast 150/k -> k = 4 (37.5 <= 48).
  PredictiveAllocator padded(flatModels(), PredictiveConfig{0.5});
  task::ReplicaSet rs2(ProcessorId{0});
  EXPECT_EQ(padded.replicate(ctx, 1, rs2), AllocStatus::kSuccess);
  EXPECT_EQ(rs2.size(), 4u);
}

TEST(PredictiveAllocator, TotalWorkloadDrivesBufferDelay) {
  // Same task share, but a heavy co-resident task inflates eq. 5's sum and
  // therefore the forecast communication delay.
  PredictiveModels m = flatModels();
  m.comm.buffer.k_ms_per_hundred = 2.0;
  PredictiveAllocator alloc(m);
  task::TaskSpec spec = twoStageSpec();
  spec.messages = {task::MessageSpec{80.0}};
  Bed bed(6);
  bed.setUtilizations({0.0, 0.0, 0.0, 0.0, 0.0, 0.0});
  const auto b = budgets();  // stage-1 limit 48 ms
  AllocationContext alone{spec, bed.cluster, DataSize::tracks(1000.0), b,
                          0.2};
  AllocationContext crowded = alone;
  crowded.total_workload = DataSize::tracks(2400.0);  // +1400 from others
  // alone: Dbuf 20 ms; crowded: Dbuf 48 ms > limit at every k -> failure.
  const SimDuration f_alone =
      alloc.forecastReplicaLatency(alone, 1, 2, Utilization::zero());
  const SimDuration f_crowded =
      alloc.forecastReplicaLatency(crowded, 1, 2, Utilization::zero());
  EXPECT_NEAR(f_crowded.ms() - f_alone.ms(), 2.0 * 14.0, 1e-6);
  task::ReplicaSet rs(ProcessorId{0});
  EXPECT_EQ(alloc.replicate(crowded, 1, rs), AllocStatus::kFailure);
}

TEST(SelectShutdownVictim, LastAddedMatchesFig6) {
  Bed bed(4);
  bed.setUtilizations({0.1, 0.9, 0.2, 0.3});
  task::ReplicaSet rs(ProcessorId{0});
  rs.add(ProcessorId{1});
  rs.add(ProcessorId{2});
  EXPECT_EQ(selectShutdownVictim(rs, bed.cluster,
                                 ShutdownSelection::kLastAdded),
            (ProcessorId{2}));
}

TEST(SelectShutdownVictim, MostUtilizedEvictsBusiestNonPrimary) {
  Bed bed(4);
  bed.setUtilizations({0.95, 0.9, 0.2, 0.3});
  task::ReplicaSet rs(ProcessorId{0});  // primary is busiest but immune
  rs.add(ProcessorId{1});
  rs.add(ProcessorId{2});
  rs.add(ProcessorId{3});
  EXPECT_EQ(selectShutdownVictim(rs, bed.cluster,
                                 ShutdownSelection::kMostUtilized),
            (ProcessorId{1}));
}

TEST(SelectShutdownVictim, MostUtilizedTieBreaksToEarliestAdded) {
  Bed bed(3);
  bed.setUtilizations({0.0, 0.0, 0.0});
  task::ReplicaSet rs(ProcessorId{0});
  rs.add(ProcessorId{2});
  rs.add(ProcessorId{1});
  EXPECT_EQ(selectShutdownVictim(rs, bed.cluster,
                                 ShutdownSelection::kMostUtilized),
            (ProcessorId{2}));
}

TEST(AllocatorNames, AreStable) {
  EXPECT_EQ(PredictiveAllocator(flatModels()).name(), "predictive");
  EXPECT_EQ(NonPredictiveAllocator().name(), "non-predictive");
}

}  // namespace
}  // namespace rtdrm::core
