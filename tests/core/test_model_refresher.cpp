#include "core/model_refresher.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace rtdrm::core {
namespace {

task::TaskSpec twoStageSpec() {
  task::TaskSpec spec;
  spec.subtasks = {
      task::SubtaskSpec{"a", task::SubtaskCost{0.0, 1.0}, false, 0.0},
      task::SubtaskSpec{"b", task::SubtaskCost{0.1, 10.0}, true, 0.0}};
  spec.messages = {task::MessageSpec{80.0}};
  return spec;
}

PredictiveModels seedModels() {
  PredictiveModels m;
  regress::ExecLatencyModel a;
  a.b3 = 1.0;
  regress::ExecLatencyModel b;
  b.a3 = 0.1;
  b.b3 = 10.0;
  m.exec = {a, b};
  return m;
}

TEST(ModelRefresher, SeedServedUntilEnoughObservations) {
  const auto spec = twoStageSpec();
  ModelRefresherConfig cfg;
  cfg.min_observations = 5;
  ModelRefresher refresher(spec, seedModels(), cfg);
  EXPECT_FALSE(refresher.active(1));
  EXPECT_DOUBLE_EQ(refresher.current(1).evalMs(10.0, 0.0),
                   0.1 * 100.0 + 10.0 * 10.0);
  for (int i = 0; i < 4; ++i) {
    refresher.observe(1, ProcessorId{0}, 5.0 + i, 0.1, 60.0 + 10.0 * i);
  }
  EXPECT_FALSE(refresher.active(1));
  refresher.observe(1, ProcessorId{0}, 9.0, 0.1, 110.0);
  EXPECT_TRUE(refresher.active(1));
}

TEST(ModelRefresher, LearnsADriftedCostSurface) {
  // Ground truth drifted to 2x the seed: exec = 0.2 d^2 + 20 d at u = 0.
  const auto spec = twoStageSpec();
  ModelRefresherConfig cfg;
  cfg.min_observations = 10;
  cfg.forgetting = 0.98;
  ModelRefresher refresher(spec, seedModels(), cfg);
  Xoshiro256 rng(4);
  for (int i = 0; i < 300; ++i) {
    const double d = rng.uniform(2.0, 30.0);
    const double u = rng.uniform(0.0, 0.5);
    const double truth = (0.2 * d * d + 20.0 * d) / (1.0 - u);
    refresher.observe(1, ProcessorId{0}, d, u, truth * rng.lognormalUnitMean(0.03));
  }
  const auto m = refresher.current(1);
  // Within 15% over the observed region.
  for (double d : {5.0, 15.0, 25.0}) {
    const double truth = 0.2 * d * d + 20.0 * d;
    EXPECT_NEAR(m.evalMs(d, 0.0), truth, 0.15 * truth) << "d=" << d;
  }
}

TEST(ModelRefresher, ZeroDataObservationsIgnored) {
  const auto spec = twoStageSpec();
  ModelRefresherConfig cfg;
  cfg.min_observations = 1;
  ModelRefresher refresher(spec, seedModels(), cfg);
  EXPECT_FALSE(refresher.observe(1, ProcessorId{0}, 0.0, 0.1, 5.0));
  EXPECT_EQ(refresher.observations(1), 0u);
}

TEST(ModelRefresher, StagesAreIndependent) {
  const auto spec = twoStageSpec();
  ModelRefresherConfig cfg;
  cfg.min_observations = 2;
  ModelRefresher refresher(spec, seedModels(), cfg);
  refresher.observe(0, ProcessorId{0}, 5.0, 0.0, 5.0);
  refresher.observe(0, ProcessorId{0}, 10.0, 0.0, 10.0);
  EXPECT_TRUE(refresher.active(0));
  EXPECT_FALSE(refresher.active(1));
}

TEST(ModelRefresher, PerNodeModelsSeparateFastAndSlowNodes) {
  const auto spec = twoStageSpec();
  ModelRefresherConfig cfg;
  cfg.min_observations = 8;
  cfg.per_node = true;
  cfg.node_count = 2;
  ModelRefresher refresher(spec, seedModels(), cfg);
  Xoshiro256 rng(6);
  // Node 0 runs 2x faster than the seed surface; node 1 runs 2x slower.
  for (int i = 0; i < 120; ++i) {
    const double d = rng.uniform(2.0, 25.0);
    const double seed_ms = 0.1 * d * d + 10.0 * d;
    refresher.observe(1, ProcessorId{0}, d, 0.0, seed_ms * 0.5);
    refresher.observe(1, ProcessorId{1}, d, 0.0, seed_ms * 2.0);
  }
  const auto fast = refresher.currentForNode(1, ProcessorId{0});
  const auto slow = refresher.currentForNode(1, ProcessorId{1});
  ASSERT_TRUE(fast.has_value());
  ASSERT_TRUE(slow.has_value());
  const double seed_at_10 = 0.1 * 100.0 + 10.0 * 10.0;
  EXPECT_NEAR(fast->evalMs(10.0, 0.0), seed_at_10 * 0.5, 8.0);
  EXPECT_NEAR(slow->evalMs(10.0, 0.0), seed_at_10 * 2.0, 25.0);
  // The aggregate sits between the two.
  const double agg = refresher.current(1).evalMs(10.0, 0.0);
  EXPECT_GT(agg, fast->evalMs(10.0, 0.0));
  EXPECT_LT(agg, slow->evalMs(10.0, 0.0));
}

TEST(ModelRefresher, PerNodeDisabledReturnsNullopt) {
  const auto spec = twoStageSpec();
  ModelRefresherConfig cfg;
  cfg.min_observations = 1;
  ModelRefresher refresher(spec, seedModels(), cfg);
  refresher.observe(1, ProcessorId{0}, 5.0, 0.0, 55.0);
  EXPECT_FALSE(refresher.currentForNode(1, ProcessorId{0}).has_value());
}

TEST(ModelRefresher, PerNodeNeedsEnoughObservationsPerNode) {
  const auto spec = twoStageSpec();
  ModelRefresherConfig cfg;
  cfg.min_observations = 4;
  cfg.per_node = true;
  cfg.node_count = 3;
  ModelRefresher refresher(spec, seedModels(), cfg);
  for (int i = 0; i < 4; ++i) {
    refresher.observe(1, ProcessorId{0}, 5.0 + i, 0.0, 60.0);
  }
  EXPECT_TRUE(refresher.currentForNode(1, ProcessorId{0}).has_value());
  EXPECT_FALSE(refresher.currentForNode(1, ProcessorId{1}).has_value());
}

TEST(PredictiveModelsOverrides, ExecLatencyOnUsesNodeModelWhenPresent) {
  PredictiveModels m = seedModels();
  m.exec_overrides.assign(
      2, std::vector<std::optional<regress::ExecLatencyModel>>(2));
  regress::ExecLatencyModel node_model;
  node_model.b3 = 99.0;
  m.exec_overrides[1][1] = node_model;
  const DataSize d = DataSize::tracks(1000.0);
  const Utilization u = Utilization::zero();
  // Node 1 uses its override; node 0 and unknown nodes use the stage model.
  EXPECT_DOUBLE_EQ(m.execLatencyOn(1, ProcessorId{1}, d, u).ms(),
                   99.0 * 10.0);
  EXPECT_DOUBLE_EQ(m.execLatencyOn(1, ProcessorId{0}, d, u).ms(),
                   m.execLatency(1, d, u).ms());
  EXPECT_DOUBLE_EQ(m.execLatencyOn(1, ProcessorId{77}, d, u).ms(),
                   m.execLatency(1, d, u).ms());
}

TEST(ModelRefresherDeathTest, SeedSizeMustMatchSpec) {
  const auto spec = twoStageSpec();
  PredictiveModels wrong;
  wrong.exec.resize(1);
  EXPECT_DEATH(ModelRefresher(spec, wrong), "assertion");
}

}  // namespace
}  // namespace rtdrm::core
