#include "core/manager.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "net/ethernet.hpp"

namespace rtdrm::core {
namespace {

// Deterministic testbed: ideal clocks, free-ish network, no noise.
struct Bed {
  explicit Bed(std::size_t nodes = 4)
      : cluster(sim, nodes),
        ethernet(sim, nodes, netConfig()),
        clocks(sim, nodes, Xoshiro256(1), idealClocks()) {}

  static net::EthernetConfig netConfig() {
    net::EthernetConfig cfg;
    cfg.host_ns_per_byte = 0.0;
    cfg.propagation = SimDuration::zero();
    return cfg;
  }
  static net::ClockSyncConfig idealClocks() {
    net::ClockSyncConfig cfg;
    cfg.initial_offset_max = SimDuration::zero();
    cfg.drift_ppm_max = 0.0;
    return cfg;
  }
  task::Runtime runtime() { return task::Runtime{sim, cluster, ethernet, clocks}; }

  sim::Simulator sim;
  node::Cluster cluster;
  net::Ethernet ethernet;
  net::ClockFabric clocks;
};

// Ground truth: stage 0 costs 1 ms/hundred, stage 1 costs 10 ms/hundred.
task::TaskSpec spec() {
  task::TaskSpec s;
  s.period = SimDuration::millis(100.0);
  s.deadline = SimDuration::millis(90.0);
  s.subtasks = {
      task::SubtaskSpec{"fixed", task::SubtaskCost{0.0, 1.0}, false, 0.0},
      task::SubtaskSpec{"flex", task::SubtaskCost{0.0, 10.0}, true, 0.0}};
  s.messages = {task::MessageSpec{8.0}};
  s.validate();
  return s;
}

// Models matching the ground truth exactly (idle-node profile).
PredictiveModels models() {
  PredictiveModels m;
  regress::ExecLatencyModel fixed;
  fixed.b3 = 1.0;
  regress::ExecLatencyModel flex;
  flex.b3 = 10.0;
  m.exec = {fixed, flex};
  m.comm.buffer.k_ms_per_hundred = 0.05;
  m.comm.link_rate = BitRate::mbps(100.0);
  return m;
}

ManagerConfig config() {
  ManagerConfig cfg;
  cfg.d_init = DataSize::tracks(100.0);
  return cfg;
}

std::unique_ptr<ResourceManager> makeManager(
    Bed& bed, const task::TaskSpec& s, task::TaskRunner::WorkloadFn workload,
    bool predictive = true) {
  std::unique_ptr<Allocator> alloc;
  if (predictive) {
    alloc = std::make_unique<PredictiveAllocator>(models());
  } else {
    alloc = std::make_unique<NonPredictiveAllocator>();
  }
  return std::make_unique<ResourceManager>(
      bed.runtime(), s, task::Placement({ProcessorId{0}, ProcessorId{1}}),
      std::move(workload), std::move(alloc), models(), config(),
      Xoshiro256(7));
}

TEST(ResourceManager, InitialBudgetsSumToDeadline) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(bed, s,
                         [](std::uint64_t) { return DataSize::tracks(100.0); });
  const EqfBudgets& b = mgr->budgets();
  double total = 0.0;
  for (double v : b.subtask_ms) {
    total += v;
  }
  for (double v : b.message_ms) {
    total += v;
  }
  EXPECT_NEAR(total, 90.0, 1e-9);
}

TEST(ResourceManager, SteadyLightLoadNeedsNoActions) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(bed, s,
                         [](std::uint64_t) { return DataSize::tracks(100.0); });
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(2.0));
  mgr->stop();
  EXPECT_EQ(mgr->metrics().replicate_actions, 0u);
  EXPECT_EQ(mgr->metrics().shutdown_actions, 0u);
  EXPECT_DOUBLE_EQ(mgr->metrics().missedRatio(), 0.0);
  EXPECT_EQ(mgr->runner().placement().stage(1).size(), 1u);
}

TEST(ResourceManager, OverloadTriggersReplication) {
  Bed bed;
  const auto s = spec();
  // 800 tracks: stage-1 demand 80 ms on one node, near the 90 ms deadline
  // and far past its EQF share — must replicate.
  auto mgr = makeManager(bed, s,
                         [](std::uint64_t) { return DataSize::tracks(800.0); });
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(2.0));
  mgr->stop();
  EXPECT_GT(mgr->metrics().replicate_actions, 0u);
  EXPECT_GT(mgr->runner().placement().stage(1).size(), 1u);
}

TEST(ResourceManager, ReplicationRestoresDeadlines) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(bed, s,
                         [](std::uint64_t) { return DataSize::tracks(800.0); });
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(5.0));
  mgr->stop();
  bed.sim.runFor(SimDuration::millis(400.0));
  // Early periods may miss while adapting; the tail must be clean. A strict
  // bound: fewer than a third of 50 periods missed overall.
  EXPECT_LT(mgr->metrics().missedRatio(), 0.34);
}

TEST(ResourceManager, WorkloadDropTriggersShutdown) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(bed, s, [](std::uint64_t c) {
    return c < 20 ? DataSize::tracks(800.0) : DataSize::tracks(50.0);
  });
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(6.0));
  mgr->stop();
  EXPECT_GT(mgr->metrics().shutdown_actions, 0u);
  EXPECT_EQ(mgr->runner().placement().stage(1).size(), 1u);
}

TEST(ResourceManager, BudgetsReassignedAfterActions) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(bed, s,
                         [](std::uint64_t) { return DataSize::tracks(800.0); });
  const double initial_stage1 = mgr->budgets().stageBudgetMs(1);
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(3.0));
  mgr->stop();
  ASSERT_GT(mgr->metrics().replicate_actions, 0u);
  // After replication at d = 800 the estimates changed, so budgets did too.
  EXPECT_NE(mgr->budgets().stageBudgetMs(1), initial_stage1);
}

TEST(ResourceManager, MetricsSampledEveryPeriod) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(bed, s,
                         [](std::uint64_t) { return DataSize::tracks(100.0); });
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(3.0));
  mgr->stop();
  EXPECT_GE(mgr->metrics().cpu_utilization.count(), 29u);
  EXPECT_GE(mgr->metrics().net_utilization.count(), 29u);
  EXPECT_GE(mgr->metrics().replicas_per_subtask.count(), 29u);
  EXPECT_GE(mgr->metrics().end_to_end_ms.count(), 25u);
  EXPECT_GT(mgr->metrics().cpu_utilization.mean(), 0.0);
}

TEST(ResourceManager, NonPredictiveGrabsAllIdleNodes) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(
      bed, s, [](std::uint64_t) { return DataSize::tracks(800.0); },
      /*predictive=*/false);
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(2.0));
  mgr->stop();
  // Fig. 7 adds every node under the 20% threshold at once, so the replica
  // count peaks at full replication; the shutdown policy (Fig. 6) then
  // trims the over-provisioning once slack turns very high.
  EXPECT_DOUBLE_EQ(mgr->metrics().replicas_per_subtask.max(), 4.0);
  EXPECT_GT(mgr->metrics().shutdown_actions, 0u);
}

TEST(ResourceManager, ReplicaCapRespectsClusterSize) {
  Bed bed(2);
  const auto s = spec();
  auto mgr = makeManager(bed, s, [](std::uint64_t) {
    return DataSize::tracks(5000.0);  // hopeless overload
  });
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(4.0));
  mgr->stop();
  EXPECT_LE(mgr->runner().placement().stage(1).size(), 2u);
  EXPECT_GT(mgr->metrics().allocation_failures, 0u);
}

TEST(ResourceManager, TraceRecordsActionsAndMisses) {
  Bed bed;
  const auto s = spec();
  sim::TraceRecorder trace;
  auto mgr = makeManager(bed, s,
                         [](std::uint64_t) { return DataSize::tracks(800.0); });
  mgr->attachTrace(trace);
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(3.0));
  mgr->stop();
  EXPECT_EQ(trace.count(sim::TraceCategory::kReplicate),
            mgr->metrics().replicate_actions);
  EXPECT_EQ(trace.count(sim::TraceCategory::kShutdown),
            mgr->metrics().shutdown_actions);
  EXPECT_EQ(trace.count(sim::TraceCategory::kMiss),
            mgr->metrics().missed_deadlines.hits());
  if (!trace.events().empty()) {
    // Labels carry the task and subtask names.
    EXPECT_NE(trace.events()[0].label.find(s.name), std::string::npos);
  }
}

TEST(ResourceManager, LatencyHistogramMatchesRecordedPeriods) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(bed, s,
                         [](std::uint64_t) { return DataSize::tracks(200.0); });
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(2.0));
  mgr->stop();
  bed.sim.runFor(SimDuration::millis(500.0));
  const auto& m = mgr->metrics();
  EXPECT_EQ(m.end_to_end_hist.total(), m.end_to_end_ms.count());
  // Median of the histogram sits near the running mean for this steady load.
  EXPECT_NEAR(m.end_to_end_hist.quantile(0.5), m.end_to_end_ms.mean(),
              0.5 * m.end_to_end_ms.mean() + 50.0);
}

TEST(ResourceManager, LedgerTotalFeedsCommEstimates) {
  // Two managers on one cluster; a heavy co-resident task must tighten the
  // EQF message budgets of the light one (its eq.-5 total grows).
  Bed bed;
  const auto s = spec();
  core::WorkloadLedger ledger;

  auto light = makeManager(
      bed, s, [](std::uint64_t) { return DataSize::tracks(100.0); });
  light->attachLedger(ledger);
  const double before = light->budgets().message_ms[0];

  // Simulate the heavy neighbour posting a large workload, then force a
  // budget reassignment by running the light manager through a few periods
  // with load high enough to trigger an action.
  const auto heavy_id = ledger.registerTask("heavy");
  ledger.post(heavy_id, DataSize::tracks(50000.0));

  light->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(1.0));
  light->stop();
  // Whether or not an action fired, the allocator context reads the total:
  // verify through the public ledger arithmetic the manager uses.
  EXPECT_DOUBLE_EQ(ledger.total().count(), 50000.0 + 100.0);
  EXPECT_GE(before, 0.0);
}

TEST(ResourceManager, ActionLatencyDelaysPlacementChange) {
  Bed bed;
  const auto s = spec();
  ManagerConfig cfg = config();
  cfg.action_latency = SimDuration::millis(250.0);  // 2.5 periods
  auto alloc = std::make_unique<PredictiveAllocator>(models());
  ResourceManager mgr(
      bed.runtime(), s, task::Placement({ProcessorId{0}, ProcessorId{1}}),
      [](std::uint64_t) { return DataSize::tracks(800.0); },
      std::move(alloc), models(), cfg, Xoshiro256(7));
  mgr.start(bed.sim.now());
  // Period 0 completes around t = 80+ ms and triggers replication, but
  // with 250 ms of control latency the placement at t = 200 ms is still
  // the original one.
  bed.sim.runUntil(SimTime::millis(200.0));
  ASSERT_GT(mgr.metrics().replicate_actions, 0u);
  EXPECT_EQ(mgr.runner().placement().stage(1).size(), 1u);
  bed.sim.runUntil(SimTime::millis(600.0));
  EXPECT_GT(mgr.runner().placement().stage(1).size(), 1u);
  mgr.stop();
}

TEST(ResourceManager, PriorityIsolationShieldsTaskFromAmbientLoad) {
  // On preemptive-priority nodes with low-priority background jobs, the
  // task's stage latency stays near its pure demand despite heavy ambient
  // load.
  Bed bed;
  const auto s = spec();
  // Re-configure processors: rebuild a bed-like fixture inline.
  sim::Simulator sim;
  node::ProcessorConfig pcfg;
  pcfg.policy = node::SchedPolicy::kPriority;
  node::Cluster cluster(sim, 4, pcfg);
  net::Ethernet ether(sim, 4, Bed::netConfig());
  net::ClockFabric clocks(sim, 4, Xoshiro256(1), Bed::idealClocks());
  RngStreams streams(3);
  node::BackgroundLoadConfig bg_cfg;
  bg_cfg.priority = 5;  // below the task's priority 0
  cluster.attachBackgroundLoad(streams, bg_cfg);
  for (ProcessorId id : cluster.ids()) {
    cluster.backgroundLoad(id).setTarget(Utilization::fraction(0.5));
  }
  ManagerConfig cfg = config();
  task::Runtime rt{sim, cluster, ether, clocks};
  ResourceManager mgr(
      rt, s, task::Placement({ProcessorId{0}, ProcessorId{1}}),
      [](std::uint64_t) { return DataSize::tracks(400.0); },
      std::make_unique<PredictiveAllocator>(models()), models(), cfg,
      Xoshiro256(7));
  mgr.start(sim.now());
  sim.runFor(SimDuration::seconds(3.0));
  mgr.stop();
  sim.runFor(SimDuration::millis(300.0));
  // Stage 1 demand is 40 ms at 400 tracks; under RR at 50% ambient it
  // would inflate toward 80 ms. Isolated, it stays within a whisker.
  EXPECT_LT(mgr.metrics().stages[1].latency_ms.mean(), 48.0);
  EXPECT_DOUBLE_EQ(mgr.metrics().missedRatio(), 0.0);
}

TEST(ResourceManager, PerStageMetricsAttributeActions) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(bed, s,
                         [](std::uint64_t) { return DataSize::tracks(800.0); });
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(3.0));
  mgr->stop();
  const auto& m = mgr->metrics();
  ASSERT_EQ(m.stages.size(), 2u);
  // Only the replicable stage 1 can receive actions.
  EXPECT_EQ(m.stages[0].replicate_actions, 0u);
  EXPECT_GT(m.stages[1].replicate_actions, 0u);
  EXPECT_EQ(m.stages[0].replicate_actions + m.stages[1].replicate_actions,
            m.replicate_actions);
  // Stage latencies recorded for completed periods; stage 1 dominates.
  EXPECT_GT(m.stages[1].latency_ms.count(), 0u);
  EXPECT_GT(m.stages[1].latency_ms.mean(), m.stages[0].latency_ms.mean());
}

TEST(ResourceManager, CombinedMetricIsFiniteAndComposed) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(bed, s,
                         [](std::uint64_t) { return DataSize::tracks(400.0); });
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(2.0));
  mgr->stop();
  const EpisodeMetrics& m = mgr->metrics();
  const double c = m.combined(4);
  EXPECT_NEAR(c,
              m.missedRatio() + m.cpu_utilization.mean() +
                  m.net_utilization.mean() +
                  m.replicas_per_subtask.mean() / 4.0,
              1e-12);
}

}  // namespace
}  // namespace rtdrm::core
