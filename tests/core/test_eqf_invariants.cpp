// Invariant-level tests for the EQF/EQS deadline assignment: the properties
// the rest of the system (monitor, allocators, InvariantOracle) relies on,
// probed over randomized chains rather than hand-picked examples.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "core/eqf.hpp"

namespace rtdrm::core {
namespace {

double budgetSum(const EqfBudgets& b) {
  return std::accumulate(b.subtask_ms.begin(), b.subtask_ms.end(), 0.0) +
         std::accumulate(b.message_ms.begin(), b.message_ms.end(), 0.0);
}

EqfInput randomChain(Xoshiro256& rng) {
  EqfInput in;
  const auto n = static_cast<std::size_t>(rng.uniformInt(1, 8));
  for (std::size_t i = 0; i < n; ++i) {
    in.eex_ms.push_back(rng.uniform(0.5, 50.0));
    if (i + 1 < n) {
      in.ecd_ms.push_back(rng.uniform(0.0, 10.0));
    }
  }
  // Deadlines both above and below the total estimate (slack and
  // compression regimes).
  in.deadline_ms = rng.uniform(20.0, 600.0);
  return in;
}

TEST(EqfInvariants, BudgetsSumExactlyToDeadlineOnRandomChains) {
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const EqfInput in = randomChain(rng);
    for (const DeadlineStrategy strategy :
         {DeadlineStrategy::kEqf, DeadlineStrategy::kEqs}) {
      const EqfBudgets b = assignBudgets(in, strategy);
      EXPECT_NEAR(budgetSum(b), in.deadline_ms, 1e-9 * in.deadline_ms)
          << "trial " << trial;
      for (const double v : b.subtask_ms) {
        EXPECT_GE(v, 0.0);
      }
      for (const double v : b.message_ms) {
        EXPECT_GE(v, 0.0);
      }
    }
  }
}

TEST(EqfInvariants, AbsoluteDeadlinesAreNondecreasingAndEndAtD) {
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const EqfInput in = randomChain(rng);
    const EqfBudgets b = assignEqf(in);
    double prev = 0.0;
    for (const double abs_ms : b.subtask_abs_ms) {
      EXPECT_GE(abs_ms, prev - 1e-12);
      prev = abs_ms;
    }
    EXPECT_NEAR(b.subtask_abs_ms.back(), in.deadline_ms,
                1e-9 * in.deadline_ms);
  }
}

TEST(EqfInvariants, BudgetIsMonotoneInOwnEstimate) {
  // Raising one stage's estimate must raise that stage's budget and (with a
  // fixed deadline to share) never raise anyone else's.
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    EqfInput in = randomChain(rng);
    const std::size_t target = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(in.eex_ms.size()) - 1));
    const EqfBudgets before = assignEqf(in);
    in.eex_ms[target] *= 1.5;
    const EqfBudgets after = assignEqf(in);

    if (in.eex_ms.size() > 1) {
      EXPECT_GT(after.subtask_ms[target], before.subtask_ms[target])
          << "trial " << trial;
    } else {
      // A single-element chain always owns the whole deadline.
      EXPECT_NEAR(after.subtask_ms[target], in.deadline_ms,
                  1e-9 * in.deadline_ms);
    }
    for (std::size_t i = 0; i < in.eex_ms.size(); ++i) {
      if (i != target) {
        EXPECT_LE(after.subtask_ms[i], before.subtask_ms[i] + 1e-12);
      }
    }
    for (std::size_t i = 0; i < in.ecd_ms.size(); ++i) {
      EXPECT_LE(after.message_ms[i], before.message_ms[i] + 1e-12);
    }
  }
}

TEST(EqfInvariants, FlexibilityShrinksAsEstimatesGrow) {
  EqfInput in{{10.0, 20.0}, {5.0}, 350.0};
  const double flex_before = assignEqf(in).flexibility;
  in.eex_ms[0] *= 2.0;
  EXPECT_LT(assignEqf(in).flexibility, flex_before);
}

TEST(EqfInvariants, ZeroEstimateStageGetsZeroBudgetOthersTileDeadline) {
  // Mixed zero / nonzero estimates: the zero-cost element takes no share of
  // the deadline and the remaining budgets still sum to D exactly.
  const EqfInput in{{0.0, 30.0, 0.0}, {10.0, 0.0}, 200.0};
  for (const DeadlineStrategy strategy :
       {DeadlineStrategy::kEqf, DeadlineStrategy::kEqs}) {
    const EqfBudgets b = assignBudgets(in, strategy);
    EXPECT_DOUBLE_EQ(b.subtask_ms[0], 0.0);
    EXPECT_DOUBLE_EQ(b.subtask_ms[2], 0.0);
    EXPECT_DOUBLE_EQ(b.message_ms[1], 0.0);
    EXPECT_GT(b.subtask_ms[1], 0.0);
    EXPECT_NEAR(budgetSum(b), 200.0, 1e-9);
  }
}

TEST(EqfInvariants, NearZeroSingleEstimateStillTilesDeadline) {
  const EqfBudgets b = assignEqf({{1e-12}, {}, 100.0});
  EXPECT_NEAR(b.subtask_ms[0], 100.0, 1e-9);
}

TEST(EqfInvariants, CompressionRegimeKeepsSumAndOrder) {
  // Total estimate far beyond the deadline: every budget is compressed but
  // the partition and the relative order of budgets survive.
  const EqfInput in{{100.0, 300.0, 200.0}, {50.0, 50.0}, 70.0};
  const EqfBudgets b = assignEqf(in);
  EXPECT_NEAR(budgetSum(b), 70.0, 1e-9);
  EXPECT_LT(b.flexibility, 1.0);
  EXPECT_LT(b.subtask_ms[0], b.subtask_ms[2]);
  EXPECT_LT(b.subtask_ms[2], b.subtask_ms[1]);
}

}  // namespace
}  // namespace rtdrm::core
