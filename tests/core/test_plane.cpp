#include "core/plane.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/manager.hpp"
#include "net/ethernet.hpp"

namespace rtdrm::core {
namespace {

// Deterministic testbed: ideal clocks, free-ish network, no noise (same
// shape as the ResourceManager suite's bed).
struct Bed {
  explicit Bed(std::size_t nodes = 4)
      : cluster(sim, nodes),
        ethernet(sim, nodes, netConfig()),
        clocks(sim, nodes, Xoshiro256(1), idealClocks()) {}

  static net::EthernetConfig netConfig() {
    net::EthernetConfig cfg;
    cfg.host_ns_per_byte = 0.0;
    cfg.propagation = SimDuration::zero();
    return cfg;
  }
  static net::ClockSyncConfig idealClocks() {
    net::ClockSyncConfig cfg;
    cfg.initial_offset_max = SimDuration::zero();
    cfg.drift_ppm_max = 0.0;
    return cfg;
  }
  task::Runtime runtime() {
    return task::Runtime{sim, cluster, ethernet, clocks};
  }

  sim::Simulator sim;
  node::Cluster cluster;
  net::Ethernet ethernet;
  net::ClockFabric clocks;
};

task::TaskSpec spec() {
  task::TaskSpec s;
  s.period = SimDuration::millis(100.0);
  s.deadline = SimDuration::millis(90.0);
  s.subtasks = {
      task::SubtaskSpec{"fixed", task::SubtaskCost{0.0, 1.0}, false, 0.0},
      task::SubtaskSpec{"flex", task::SubtaskCost{0.0, 10.0}, true, 0.0}};
  s.messages = {task::MessageSpec{8.0}};
  s.validate();
  return s;
}

PredictiveModels models() {
  PredictiveModels m;
  regress::ExecLatencyModel fixed;
  fixed.b3 = 1.0;
  regress::ExecLatencyModel flex;
  flex.b3 = 10.0;
  m.exec = {fixed, flex};
  m.comm.buffer.k_ms_per_hundred = 0.05;
  m.comm.link_rate = BitRate::mbps(100.0);
  return m;
}

std::unique_ptr<ResourceManager> makeManager(Bed& bed,
                                             const task::TaskSpec& s) {
  ManagerConfig cfg;
  cfg.d_init = DataSize::tracks(100.0);
  return std::make_unique<ResourceManager>(
      bed.runtime(), s, task::Placement({ProcessorId{0}, ProcessorId{1}}),
      [](std::uint64_t) { return DataSize::tracks(100.0); },
      std::make_unique<PredictiveAllocator>(models()), models(), cfg,
      Xoshiro256(7));
}

PlaneConfig planeConfig(std::size_t managers) {
  PlaneConfig cfg;
  cfg.managers = managers;
  cfg.gossip_interval = SimDuration::millis(20.0);
  cfg.staleness_bound = SimDuration::millis(80.0);
  return cfg;
}

TEST(ManagementPlane, SingleManagerIsInert) {
  Bed bed;
  ManagementPlane plane(bed.sim, bed.ethernet, bed.cluster, planeConfig(1));
  EXPECT_FALSE(plane.enabled());
  EXPECT_TRUE(plane.decisionsAllowed());
  EXPECT_EQ(plane.activeManager(), 0u);
  // start()/stop() schedule nothing and gossip never happens.
  plane.start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(1.0));
  plane.stop();
  EXPECT_EQ(plane.gossipRounds(), 0u);
  EXPECT_EQ(plane.gossipMessagesSent(), 0u);
  EXPECT_EQ(bed.ethernet.messagesDelivered(), 0u);
  EXPECT_DOUBLE_EQ(plane.worstViewAgeMs(), 0.0);
}

TEST(ManagementPlane, PartitionsCoverEveryNodeOnce) {
  for (std::size_t nodes = 1; nodes <= 8; ++nodes) {
    Bed bed(nodes);
    for (std::size_t managers = 1; managers <= nodes; ++managers) {
      ManagementPlane plane(bed.sim, bed.ethernet, bed.cluster,
                            planeConfig(managers));
      std::vector<int> owner(nodes, -1);
      for (std::uint32_t m = 0; m < managers; ++m) {
        const auto [lo, hi] = plane.partitionOf(m);
        EXPECT_LT(lo, hi) << "empty partition " << m << " of " << managers
                          << " over " << nodes << " nodes";
        EXPECT_EQ(plane.hostOf(m).value, lo);
        for (std::size_t i = lo; i < hi; ++i) {
          ASSERT_LT(i, nodes);
          EXPECT_EQ(owner[i], -1) << "node " << i << " owned twice";
          owner[i] = static_cast<int>(m);
        }
        // Aligned with the shard layout's floor(i*M/N) node -> block map.
        for (std::size_t i = lo; i < hi; ++i) {
          EXPECT_EQ(i * managers / nodes, m);
        }
      }
      for (std::size_t i = 0; i < nodes; ++i) {
        EXPECT_NE(owner[i], -1) << "node " << i << " unowned";
      }
    }
  }
}

TEST(ManagementPlane, GossipKeepsTheActiveViewFresh) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(bed, s);
  ManagementPlane plane(bed.sim, bed.ethernet, bed.cluster, planeConfig(2));
  plane.adopt(*mgr);
  plane.start(bed.sim.now());
  bed.sim.runFor(SimDuration::millis(500.0));
  // First query primes the start-up grace window; once it expires the
  // bound is enforced for real.
  (void)plane.worstViewAgeMs();
  bed.sim.runFor(SimDuration::millis(300.0));

  EXPECT_GT(plane.gossipRounds(), 0u);
  EXPECT_GT(plane.gossipMessagesSent(), 0u);
  EXPECT_GT(plane.summariesApplied(), 0u);
  EXPECT_GT(bed.ethernet.messagesDelivered(), 0u);
  EXPECT_EQ(plane.activeCount(), 1u);
  EXPECT_TRUE(plane.decisionsAllowed());
  // Once past the start-up grace the active's view never outlives the
  // staleness bound.
  EXPECT_LE(plane.worstViewAgeMs(), plane.config().staleness_bound.ms());
  EXPECT_LE(plane.maxStalenessObservedMs(),
            plane.config().staleness_bound.ms());
  plane.stop();
}

TEST(ManagementPlane, ActiveCrashElectsExactlyOneStandby) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(bed, s);
  ManagementPlane plane(bed.sim, bed.ethernet, bed.cluster, planeConfig(2));
  plane.adopt(*mgr);
  // The manager runs so the gossiped summaries carry its live ledger
  // record (100 tracks every period).
  mgr->start(bed.sim.now());
  plane.start(bed.sim.now());

  // Ground truth at 200 ms, detector belief 90 ms later.
  bed.sim.scheduleAt(SimTime::millis(200.0),
                     [&plane] { plane.setManagerUp(0, false); });
  bed.sim.scheduleAt(SimTime::millis(290.0),
                     [&plane] { plane.onManagerSuspected(0); });

  // During the gap: no live active, decisions suppressed.
  bed.sim.runUntil(SimTime::millis(250.0));
  EXPECT_FALSE(plane.decisionsAllowed());
  EXPECT_EQ(plane.activeManager(), 0u);

  bed.sim.runUntil(SimTime::millis(600.0));
  EXPECT_EQ(plane.elections(), 1u);
  EXPECT_EQ(plane.epoch(), 1u);
  EXPECT_EQ(plane.activeManager(), 1u);
  EXPECT_EQ(plane.activeCount(), 1u);
  EXPECT_EQ(plane.roleOf(0), ManagementPlane::Role::kDown);
  EXPECT_EQ(plane.roleOf(1), ManagementPlane::Role::kActive);
  EXPECT_TRUE(plane.decisionsAllowed());
  // Gap accounting: exactly the crash -> election window.
  EXPECT_NEAR(plane.decisionGapMs(), 90.0, 1e-9);
  // The takeover rebuilt its view from gossip, including the ledger record
  // the old active was broadcasting.
  EXPECT_DOUBLE_EQ(plane.rebuiltLedgerTracks(), 100.0);
  mgr->stop();
  plane.stop();
}

TEST(ManagementPlane, StandbyViewConvergesWithinStalenessBound) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(bed, s);
  ManagementPlane plane(bed.sim, bed.ethernet, bed.cluster, planeConfig(2));
  plane.adopt(*mgr);
  mgr->start(bed.sim.now());
  plane.start(bed.sim.now());
  bed.sim.scheduleAt(SimTime::millis(300.0),
                     [&plane] { plane.setManagerUp(0, false); });
  bed.sim.scheduleAt(SimTime::millis(360.0),
                     [&plane] { plane.onManagerSuspected(0); });
  // Run well past the takeover grace: the new active's view (origin 0
  // excused as dead, origin 1 self-refreshing) must satisfy the bound.
  bed.sim.runFor(SimDuration::seconds(1.0));
  EXPECT_EQ(plane.activeManager(), 1u);
  EXPECT_LE(plane.worstViewAgeMs(), plane.config().staleness_bound.ms());
  mgr->stop();
  plane.stop();
}

TEST(ManagementPlane, HeadlessQueuesNodeFailuresUntilReelection) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(bed, s);
  ManagementPlane plane(bed.sim, bed.ethernet, bed.cluster, planeConfig(2));
  plane.adopt(*mgr);
  mgr->start(bed.sim.now());
  plane.start(bed.sim.now());

  bed.sim.scheduleAt(SimTime::millis(100.0), [&plane] {
    plane.setManagerUp(0, false);
    plane.setManagerUp(1, false);
  });
  bed.sim.scheduleAt(SimTime::millis(150.0), [&plane] {
    plane.onManagerSuspected(1);
    plane.onManagerSuspected(0);
  });
  // A node dies while nobody owns decisions: queued, not applied.
  bed.sim.scheduleAt(SimTime::millis(200.0), [&] {
    bed.cluster.setNodeUp(ProcessorId{3}, false);
    plane.handleNodeFailure(ProcessorId{3});
  });
  bed.sim.runUntil(SimTime::millis(250.0));
  EXPECT_EQ(plane.activeManager(), ManagementPlane::kNoManager);
  EXPECT_FALSE(plane.decisionsAllowed());
  EXPECT_EQ(plane.pendingNodeFailures(), 1u);

  // Endpoint 1 restarts and is believed recovered: it takes over and the
  // queued death drains into the manager.
  bed.sim.scheduleAt(SimTime::millis(300.0), [&plane] {
    plane.setManagerUp(1, true);
    plane.onManagerRecovered(1);
  });
  bed.sim.runUntil(SimTime::millis(400.0));
  EXPECT_EQ(plane.activeManager(), 1u);
  EXPECT_EQ(plane.activeCount(), 1u);
  EXPECT_TRUE(plane.decisionsAllowed());
  EXPECT_EQ(plane.pendingNodeFailures(), 0u);
  // Headless gap: crash at 100 ms (ground truth) to takeover at 300 ms.
  EXPECT_NEAR(plane.decisionGapMs(), 200.0, 1e-9);
  EXPECT_EQ(plane.elections(), 1u);
  mgr->stop();
  plane.stop();
}

TEST(ManagementPlane, DecisionGateSuppressesPeriodsDuringGap) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(bed, s);
  ManagementPlane plane(bed.sim, bed.ethernet, bed.cluster, planeConfig(2));
  plane.adopt(*mgr);
  mgr->start(bed.sim.now());
  plane.start(bed.sim.now());
  // Crash at 250 ms, never detected before the end: every later period's
  // monitor/allocator half is gated out.
  bed.sim.scheduleAt(SimTime::millis(250.0),
                     [&plane] { plane.setManagerUp(0, false); });
  bed.sim.runFor(SimDuration::millis(1000.0));
  mgr->stop();
  plane.stop();
  EXPECT_GT(mgr->metrics().suppressed_decision_periods, 0u);
  // The gap closed at stop() and covers the crash -> stop window.
  EXPECT_NEAR(plane.decisionGapMs(), 750.0, 1e-9);
}

TEST(ManagementPlane, RestartedEndpointGossipsButOnlyBeliefElects) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(bed, s);
  ManagementPlane plane(bed.sim, bed.ethernet, bed.cluster, planeConfig(2));
  plane.adopt(*mgr);
  plane.start(bed.sim.now());
  // Standby endpoint 1 crashes and restarts; the belief layer never hears
  // about either. It must keep gossiping after the restart, but roles are
  // untouched and no election happens.
  bed.sim.scheduleAt(SimTime::millis(100.0),
                     [&plane] { plane.setManagerUp(1, false); });
  bed.sim.scheduleAt(SimTime::millis(200.0),
                     [&plane] { plane.setManagerUp(1, true); });
  bed.sim.runFor(SimDuration::millis(600.0));
  EXPECT_EQ(plane.elections(), 0u);
  EXPECT_EQ(plane.activeManager(), 0u);
  EXPECT_EQ(plane.roleOf(1), ManagementPlane::Role::kStandby);
  EXPECT_TRUE(plane.managerUp(1));
  EXPECT_TRUE(plane.decisionsAllowed());
  // No gap: the standby's crash never touched the decision channel.
  EXPECT_DOUBLE_EQ(plane.decisionGapMs(), 0.0);
  plane.stop();
}

}  // namespace
}  // namespace rtdrm::core
