#include "core/eqf.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace rtdrm::core {
namespace {

TEST(AssignEqf, SingleSubtaskGetsWholeDeadline) {
  const EqfBudgets b = assignEqf({{100.0}, {}, 990.0});
  ASSERT_EQ(b.subtask_ms.size(), 1u);
  EXPECT_DOUBLE_EQ(b.subtask_ms[0], 990.0);
  EXPECT_DOUBLE_EQ(b.subtask_abs_ms[0], 990.0);
  EXPECT_DOUBLE_EQ(b.flexibility, 9.9);
}

TEST(AssignEqf, EqualEstimatesSplitEqually) {
  const EqfBudgets b = assignEqf({{100.0, 100.0}, {0.0}, 990.0});
  EXPECT_DOUBLE_EQ(b.subtask_ms[0], 495.0);
  EXPECT_DOUBLE_EQ(b.subtask_ms[1], 495.0);
  EXPECT_DOUBLE_EQ(b.message_ms[0], 0.0);
}

TEST(AssignEqf, BudgetsSumToDeadline) {
  const EqfInput in{{10.0, 40.0, 25.0}, {5.0, 20.0}, 990.0};
  const EqfBudgets b = assignEqf(in);
  const double total =
      std::accumulate(b.subtask_ms.begin(), b.subtask_ms.end(), 0.0) +
      std::accumulate(b.message_ms.begin(), b.message_ms.end(), 0.0);
  EXPECT_NEAR(total, 990.0, 1e-9);
}

TEST(AssignEqf, EqualFlexibilityRatioAcrossElements) {
  const EqfInput in{{10.0, 40.0, 25.0}, {5.0, 20.0}, 990.0};
  const EqfBudgets b = assignEqf(in);
  const double ratio = b.flexibility;
  for (std::size_t i = 0; i < in.eex_ms.size(); ++i) {
    EXPECT_NEAR(b.subtask_ms[i] / in.eex_ms[i], ratio, 1e-12);
  }
  for (std::size_t i = 0; i < in.ecd_ms.size(); ++i) {
    EXPECT_NEAR(b.message_ms[i] / in.ecd_ms[i], ratio, 1e-12);
  }
}

TEST(AssignEqf, AbsoluteDeadlinesArePrefixSums) {
  const EqfInput in{{10.0, 40.0, 25.0}, {5.0, 20.0}, 990.0};
  const EqfBudgets b = assignEqf(in);
  EXPECT_NEAR(b.subtask_abs_ms[0], b.subtask_ms[0], 1e-12);
  EXPECT_NEAR(b.subtask_abs_ms[1],
              b.subtask_ms[0] + b.message_ms[0] + b.subtask_ms[1], 1e-12);
  // Last subtask's absolute deadline is the end-to-end deadline minus the
  // trailing (nonexistent) message: exactly D here.
  EXPECT_NEAR(b.subtask_abs_ms[2], 990.0, 1e-9);
}

TEST(AssignEqf, LastSubtaskAbsoluteEqualsTaskDeadline) {
  // The printed eq. (1) yields dl(T) for i = n; our variant preserves that.
  const EqfBudgets b = assignEqf({{50.0, 75.0}, {25.0}, 300.0});
  EXPECT_NEAR(b.subtask_abs_ms.back(), 300.0, 1e-9);
}

TEST(AssignEqf, OverloadedChainCompressesProportionally) {
  // Total estimate 1200 > deadline 600: flexibility < 1.
  const EqfBudgets b = assignEqf({{800.0, 400.0}, {0.0}, 600.0});
  EXPECT_NEAR(b.flexibility, 0.5, 1e-12);
  EXPECT_NEAR(b.subtask_ms[0], 400.0, 1e-9);
  EXPECT_NEAR(b.subtask_ms[1], 200.0, 1e-9);
}

TEST(AssignEqf, ZeroEstimateElementsGetZeroBudget) {
  const EqfBudgets b = assignEqf({{0.0, 100.0}, {0.0}, 500.0});
  EXPECT_DOUBLE_EQ(b.subtask_ms[0], 0.0);
  EXPECT_DOUBLE_EQ(b.subtask_ms[1], 500.0);
}

TEST(EqfBudgets, StageBudgetCombinesMessageAndSubtask) {
  const EqfBudgets b = assignEqf({{10.0, 40.0}, {5.0}, 110.0});
  // ratio = 2: budgets are 20, 10, 80.
  EXPECT_NEAR(b.stageBudgetMs(0), 20.0, 1e-9);
  EXPECT_NEAR(b.stageBudgetMs(1), 10.0 + 80.0, 1e-9);
}

TEST(AssignEqfDeathTest, RejectsMismatchedMessages) {
  EXPECT_DEATH(assignEqf({{10.0, 20.0}, {}, 100.0}), "n-1");
}

TEST(AssignEqfDeathTest, RejectsAllZeroEstimates) {
  EXPECT_DEATH(assignEqf({{0.0}, {}, 100.0}), "all estimates are zero");
}

TEST(AssignEqfDeathTest, RejectsNegativeEstimate) {
  EXPECT_DEATH(assignEqf({{-1.0, 2.0}, {0.0}, 100.0}), "assertion");
}

TEST(AssignBudgets, EqfStrategyMatchesAssignEqf) {
  const EqfInput in{{10.0, 40.0, 25.0}, {5.0, 20.0}, 990.0};
  const EqfBudgets a = assignEqf(in);
  const EqfBudgets b = assignBudgets(in, DeadlineStrategy::kEqf);
  for (std::size_t i = 0; i < a.subtask_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.subtask_ms[i], b.subtask_ms[i]);
  }
}

TEST(AssignBudgets, EqsGivesEqualAbsoluteSlack) {
  const EqfInput in{{10.0, 40.0}, {5.0}, 100.0};  // slack 45, 3 elements
  const EqfBudgets b = assignBudgets(in, DeadlineStrategy::kEqs);
  EXPECT_NEAR(b.subtask_ms[0] - 10.0, 15.0, 1e-12);
  EXPECT_NEAR(b.subtask_ms[1] - 40.0, 15.0, 1e-12);
  EXPECT_NEAR(b.message_ms[0] - 5.0, 15.0, 1e-12);
  // Budgets still tile the deadline exactly.
  EXPECT_NEAR(b.subtask_ms[0] + b.subtask_ms[1] + b.message_ms[0], 100.0,
              1e-12);
}

TEST(AssignBudgets, EqsSkipsZeroEstimateElements) {
  const EqfInput in{{10.0, 40.0}, {0.0}, 100.0};  // slack 50, 2 real elems
  const EqfBudgets b = assignBudgets(in, DeadlineStrategy::kEqs);
  EXPECT_DOUBLE_EQ(b.message_ms[0], 0.0);
  EXPECT_NEAR(b.subtask_ms[0] - 10.0, 25.0, 1e-12);
  EXPECT_NEAR(b.subtask_ms[1] - 40.0, 25.0, 1e-12);
}

TEST(AssignBudgets, EqsFallsBackToCompressionWhenInfeasible) {
  const EqfInput in{{800.0, 400.0}, {0.0}, 600.0};
  const EqfBudgets eqs = assignBudgets(in, DeadlineStrategy::kEqs);
  const EqfBudgets eqf = assignEqf(in);
  EXPECT_DOUBLE_EQ(eqs.subtask_ms[0], eqf.subtask_ms[0]);
  EXPECT_DOUBLE_EQ(eqs.subtask_ms[1], eqf.subtask_ms[1]);
}

TEST(AssignBudgets, EqfVsEqsFavorDifferentElements) {
  // EQF gives the long element most of the slack; EQS splits it evenly, so
  // the short element gets a relatively fatter budget under EQS.
  const EqfInput in{{10.0, 90.0}, {0.0}, 200.0};
  const EqfBudgets eqf = assignBudgets(in, DeadlineStrategy::kEqf);
  const EqfBudgets eqs = assignBudgets(in, DeadlineStrategy::kEqs);
  EXPECT_GT(eqs.subtask_ms[0], eqf.subtask_ms[0]);
  EXPECT_LT(eqs.subtask_ms[1], eqf.subtask_ms[1]);
}

// Property: for random chains, budgets always sum to D and flexibility is
// common across all elements.
class EqfProperty : public ::testing::TestWithParam<int> {};

TEST_P(EqfProperty, SumAndRatioInvariants) {
  const int n = GetParam();
  EqfInput in;
  in.deadline_ms = 990.0;
  for (int i = 0; i < n; ++i) {
    in.eex_ms.push_back(3.0 + 7.0 * i);
    if (i + 1 < n) {
      in.ecd_ms.push_back(1.0 + 2.0 * i);
    }
  }
  const EqfBudgets b = assignEqf(in);
  double total = 0.0;
  for (double v : b.subtask_ms) {
    total += v;
  }
  for (double v : b.message_ms) {
    total += v;
  }
  EXPECT_NEAR(total, 990.0, 1e-9);
  for (std::size_t i = 0; i < in.eex_ms.size(); ++i) {
    EXPECT_NEAR(b.subtask_ms[i], in.eex_ms[i] * b.flexibility, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(ChainLengths, EqfProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace rtdrm::core
