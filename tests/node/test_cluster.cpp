#include "node/cluster.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::node {
namespace {

TEST(Cluster, ConstructsRequestedNodes) {
  sim::Simulator sim;
  Cluster cluster(sim, 6);
  EXPECT_EQ(cluster.size(), 6u);
  EXPECT_EQ(cluster.ids().size(), 6u);
  EXPECT_EQ(cluster.processor(ProcessorId{3}).id(), (ProcessorId{3}));
}

TEST(Cluster, SampleUtilizationPerNode) {
  sim::Simulator sim;
  Cluster cluster(sim, 3);
  cluster.processor(ProcessorId{1}).submit(
      Job{SimDuration::millis(5.0), nullptr, "x"});
  sim.runUntil(SimTime::millis(10.0));
  const auto& u = cluster.sampleUtilization();
  EXPECT_NEAR(u[0].value(), 0.0, 1e-9);
  EXPECT_NEAR(u[1].value(), 0.5, 1e-9);
  EXPECT_NEAR(u[2].value(), 0.0, 1e-9);
  EXPECT_NEAR(cluster.meanUtilization().value(), 0.5 / 3.0, 1e-9);
  EXPECT_NEAR(cluster.lastUtilization(ProcessorId{1}).value(), 0.5, 1e-9);
}

TEST(Cluster, LeastUtilizedPicksIdleNode) {
  sim::Simulator sim;
  Cluster cluster(sim, 3);
  cluster.processor(ProcessorId{0}).submit(
      Job{SimDuration::millis(8.0), nullptr, "x"});
  cluster.processor(ProcessorId{2}).submit(
      Job{SimDuration::millis(4.0), nullptr, "y"});
  sim.runUntil(SimTime::millis(10.0));
  cluster.sampleUtilization();
  const auto least = cluster.leastUtilized({});
  ASSERT_TRUE(least.has_value());
  EXPECT_EQ(*least, (ProcessorId{1}));
}

TEST(Cluster, LeastUtilizedHonorsExclusions) {
  sim::Simulator sim;
  Cluster cluster(sim, 3);
  cluster.processor(ProcessorId{0}).submit(
      Job{SimDuration::millis(8.0), nullptr, "x"});
  sim.runUntil(SimTime::millis(10.0));
  cluster.sampleUtilization();
  const auto least = cluster.leastUtilized({ProcessorId{1}, ProcessorId{2}});
  ASSERT_TRUE(least.has_value());
  EXPECT_EQ(*least, (ProcessorId{0}));  // only candidate left
}

TEST(Cluster, LeastUtilizedAllExcludedIsEmpty) {
  sim::Simulator sim;
  Cluster cluster(sim, 2);
  EXPECT_FALSE(
      cluster.leastUtilized({ProcessorId{0}, ProcessorId{1}}).has_value());
}

TEST(Cluster, LeastUtilizedTieBreaksToLowerId) {
  sim::Simulator sim;
  Cluster cluster(sim, 4);
  sim.runUntil(SimTime::millis(10.0));
  cluster.sampleUtilization();  // all zero
  const auto least = cluster.leastUtilized({ProcessorId{0}});
  ASSERT_TRUE(least.has_value());
  EXPECT_EQ(*least, (ProcessorId{1}));
}

TEST(Cluster, LeastUtilizedAllZeroStartupPicksLowestId) {
  // The Fig.-5 determinism contract: at startup every sampled utilization
  // is zero, so pmin must be the lowest id — through the index and through
  // the reference scan alike.
  sim::Simulator sim;
  Cluster cluster(sim, 64);
  cluster.sampleUtilization();
  ASSERT_TRUE(cluster.leastUtilized({}).has_value());
  EXPECT_EQ(*cluster.leastUtilized({}), (ProcessorId{0}));
  cluster.setUtilizationIndexEnabled(false);
  EXPECT_EQ(*cluster.leastUtilized({}), (ProcessorId{0}));
}

TEST(Cluster, IdsAreCachedAndStable) {
  sim::Simulator sim;
  Cluster cluster(sim, 5);
  const auto& a = cluster.ids();
  const auto& b = cluster.ids();
  EXPECT_EQ(&a, &b);  // same backing storage, no per-call allocation
  ASSERT_EQ(a.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a[i], (ProcessorId{i}));
  }
}

// Load a cluster with a deterministic spread of utilizations (node i busy
// for i ms of a 100 ms window, with deliberate duplicates) and compare the
// indexed queries against the seed's linear scans across many exclusion
// sets and fresh samples.
TEST(Cluster, IndexMatchesReferenceScanUnderChurn) {
  sim::Simulator sim;
  constexpr std::uint32_t kNodes = 37;
  Cluster cluster(sim, kNodes);
  Xoshiro256 rng(4242);
  for (int round = 0; round < 5; ++round) {
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      // Duplicate utilization classes (i % 9) force tie-breaks.
      const double busy_ms = static_cast<double>(i % 9) * 7.0;
      if (busy_ms > 0.0) {
        cluster.processor(ProcessorId{i}).submit(
            Job{SimDuration::millis(busy_ms), nullptr, "load"});
      }
    }
    sim.runFor(SimDuration::millis(100.0));
    cluster.sampleUtilization();

    for (int trial = 0; trial < 50; ++trial) {
      std::vector<ProcessorId> exclude;
      const auto count = rng.uniformInt(0, kNodes);
      for (std::int64_t k = 0; k < count; ++k) {
        exclude.push_back(ProcessorId{
            static_cast<std::uint32_t>(rng.uniformInt(0, kNodes - 1))});
      }
      cluster.setUtilizationIndexEnabled(true);
      const auto indexed = cluster.leastUtilized(exclude);
      cluster.setUtilizationIndexEnabled(false);
      const auto scanned = cluster.leastUtilized(exclude);
      cluster.setUtilizationIndexEnabled(true);
      ASSERT_EQ(indexed, scanned)
          << "round " << round << " trial " << trial;
    }
  }
}

TEST(Cluster, BelowUtilizationMatchesScanAndIsAscending) {
  sim::Simulator sim;
  constexpr std::uint32_t kNodes = 23;
  Cluster cluster(sim, kNodes);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    const double busy_ms = static_cast<double>((i * 13) % 50);
    if (busy_ms > 0.0) {
      cluster.processor(ProcessorId{i}).submit(
          Job{SimDuration::millis(busy_ms), nullptr, "load"});
    }
  }
  sim.runFor(SimDuration::millis(100.0));
  cluster.sampleUtilization();

  for (const double pct : {0.0, 10.0, 20.0, 35.0, 100.0}) {
    const Utilization limit = Utilization::percent(pct);
    cluster.setUtilizationIndexEnabled(false);
    const std::vector<ProcessorId> scanned = cluster.belowUtilization(limit);
    cluster.setUtilizationIndexEnabled(true);
    const std::vector<ProcessorId>& indexed = cluster.belowUtilization(limit);
    ASSERT_EQ(indexed, scanned) << "limit " << pct << "%";
    for (std::size_t i = 1; i < indexed.size(); ++i) {
      EXPECT_LT(indexed[i - 1].value, indexed[i].value);
    }
  }
}

// The cursor must yield exactly the sequence that the Fig.-5 growth loop
// historically produced with one leastUtilized(exclude) query per added
// replica — in both index and reference-scan modes.
TEST(Cluster, CursorMatchesRepeatedLeastUtilizedQueries) {
  sim::Simulator sim;
  constexpr std::uint32_t kNodes = 29;
  Cluster cluster(sim, kNodes);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    // Duplicate utilization classes force tie-breaks mid-sequence.
    const double busy_ms = static_cast<double>((i * 5) % 11) * 6.0;
    if (busy_ms > 0.0) {
      cluster.processor(ProcessorId{i}).submit(
          Job{SimDuration::millis(busy_ms), nullptr, "load"});
    }
  }
  sim.runFor(SimDuration::millis(100.0));
  cluster.sampleUtilization();

  for (const bool use_index : {true, false}) {
    cluster.setUtilizationIndexEnabled(use_index);
    const std::vector<ProcessorId> initial{ProcessorId{3}, ProcessorId{17}};
    auto cursor = cluster.utilizationCursor(initial);
    std::vector<ProcessorId> exclude = initial;
    std::size_t yields = 0;
    while (const auto got = cursor.next()) {
      cluster.setUtilizationIndexEnabled(true);
      const auto ref_indexed = cluster.leastUtilized(exclude);
      cluster.setUtilizationIndexEnabled(false);
      const auto ref_scan = cluster.leastUtilized(exclude);
      cluster.setUtilizationIndexEnabled(use_index);
      ASSERT_TRUE(ref_indexed.has_value());
      ASSERT_EQ(*got, *ref_indexed) << "yield " << yields;
      ASSERT_EQ(*got, *ref_scan) << "yield " << yields;
      exclude.push_back(*got);
      ++yields;
    }
    EXPECT_EQ(yields, kNodes - initial.size()) << "use_index " << use_index;
  }
  cluster.setUtilizationIndexEnabled(true);
}

TEST(Cluster, IndexRefreshesAfterEachSample) {
  sim::Simulator sim;
  Cluster cluster(sim, 3);
  cluster.processor(ProcessorId{0}).submit(
      Job{SimDuration::millis(8.0), nullptr, "x"});
  sim.runFor(SimDuration::millis(10.0));
  cluster.sampleUtilization();
  EXPECT_EQ(*cluster.leastUtilized({ProcessorId{1}}), (ProcessorId{2}));
  // New window: now node 2 is the busy one; the next query must see the
  // fresh sample, not the stale heap.
  cluster.processor(ProcessorId{2}).submit(
      Job{SimDuration::millis(8.0), nullptr, "y"});
  sim.runFor(SimDuration::millis(10.0));
  cluster.sampleUtilization();
  EXPECT_EQ(*cluster.leastUtilized({ProcessorId{1}}), (ProcessorId{0}));
}

TEST(Cluster, BackgroundLoadAttachesPerNode) {
  sim::Simulator sim;
  Cluster cluster(sim, 3);
  EXPECT_FALSE(cluster.hasBackgroundLoad());
  const RngStreams streams(9);
  cluster.attachBackgroundLoad(streams);
  EXPECT_TRUE(cluster.hasBackgroundLoad());
  cluster.backgroundLoad(ProcessorId{0}).setTarget(Utilization::fraction(0.6));
  cluster.backgroundLoad(ProcessorId{2}).setTarget(Utilization::fraction(0.2));
  sim.runUntil(SimTime::millis(60000.0));
  const auto& u = cluster.sampleUtilization();
  EXPECT_NEAR(u[0].value(), 0.6, 0.06);
  EXPECT_NEAR(u[1].value(), 0.0, 1e-9);
  EXPECT_NEAR(u[2].value(), 0.2, 0.05);
}

TEST(Cluster, PerNodeSpeedsApplied) {
  sim::Simulator sim;
  Cluster cluster(sim, 2, {}, {2.0, 0.5});
  double fast_done = -1.0;
  double slow_done = -1.0;
  cluster.processor(ProcessorId{0})
      .submit(Job{SimDuration::millis(10.0),
                  [&fast_done, &sim] { fast_done = sim.now().ms(); }, "f"});
  cluster.processor(ProcessorId{1})
      .submit(Job{SimDuration::millis(10.0),
                  [&slow_done, &sim] { slow_done = sim.now().ms(); }, "s"});
  sim.runAll();
  EXPECT_DOUBLE_EQ(fast_done, 5.0);
  EXPECT_DOUBLE_EQ(slow_done, 20.0);
}

TEST(Cluster, DownNodeInvisibleToSelection) {
  sim::Simulator sim;
  Cluster cluster(sim, 3);
  cluster.processor(ProcessorId{0}).submit(
      Job{SimDuration::millis(5.0), nullptr, "x"});
  sim.runUntil(SimTime::millis(10.0));
  cluster.setNodeUp(ProcessorId{1}, false);  // the idle node goes dark
  cluster.sampleUtilization();
  EXPECT_EQ(cluster.upCount(), 2u);

  const auto least = cluster.leastUtilized({});
  ASSERT_TRUE(least.has_value());
  EXPECT_EQ(*least, (ProcessorId{2}));  // idle AND up
  // Mean is over surviving nodes: (0.5 + 0.0) / 2.
  EXPECT_NEAR(cluster.meanUtilization().value(), 0.25, 1e-9);
  const auto& below = cluster.belowUtilization(Utilization::fraction(0.4));
  ASSERT_EQ(below.size(), 1u);
  EXPECT_EQ(below[0], (ProcessorId{2}));

  auto cursor = cluster.utilizationCursor({});
  std::size_t yielded = 0;
  while (cursor.next().has_value()) {
    ++yielded;
  }
  EXPECT_EQ(yielded, 2u);
}

TEST(Cluster, MaskingAgreesWithReferenceScan) {
  sim::Simulator sim;
  Cluster cluster(sim, 4);
  cluster.processor(ProcessorId{0}).submit(
      Job{SimDuration::millis(8.0), nullptr, "a"});
  cluster.processor(ProcessorId{2}).submit(
      Job{SimDuration::millis(4.0), nullptr, "b"});
  sim.runUntil(SimTime::millis(10.0));
  cluster.setNodeUp(ProcessorId{1}, false);
  cluster.setNodeUp(ProcessorId{3}, false);
  cluster.sampleUtilization();
  const auto indexed = cluster.leastUtilized({});
  cluster.setUtilizationIndexEnabled(false);
  const auto scanned = cluster.leastUtilized({});
  ASSERT_TRUE(indexed.has_value());
  ASSERT_TRUE(scanned.has_value());
  EXPECT_EQ(*indexed, *scanned);
  EXPECT_EQ(*indexed, (ProcessorId{2}));  // busiest survivors: 0.8 vs 0.4
}

TEST(Cluster, RestartUnmasksNode) {
  sim::Simulator sim;
  Cluster cluster(sim, 3);
  cluster.processor(ProcessorId{2}).submit(
      Job{SimDuration::millis(5.0), nullptr, "x"});
  cluster.setNodeUp(ProcessorId{0}, false);
  cluster.setNodeUp(ProcessorId{1}, false);
  sim.runUntil(SimTime::millis(10.0));
  cluster.sampleUtilization();
  EXPECT_EQ(cluster.upCount(), 1u);
  ASSERT_TRUE(cluster.leastUtilized({}).has_value());
  EXPECT_EQ(*cluster.leastUtilized({}), (ProcessorId{2}));
  cluster.setNodeUp(ProcessorId{0}, true);
  cluster.sampleUtilization();
  EXPECT_EQ(cluster.upCount(), 2u);
  EXPECT_EQ(*cluster.leastUtilized({}), (ProcessorId{0}));
}

TEST(Cluster, AllNodesDownYieldsNoCandidate) {
  sim::Simulator sim;
  Cluster cluster(sim, 2);
  cluster.setNodeUp(ProcessorId{0}, false);
  cluster.setNodeUp(ProcessorId{1}, false);
  cluster.sampleUtilization();
  EXPECT_EQ(cluster.upCount(), 0u);
  EXPECT_FALSE(cluster.leastUtilized({}).has_value());
}

TEST(ClusterDeathTest, SpeedsSizeMismatchAsserts) {
  sim::Simulator sim;
  EXPECT_DEATH(Cluster(sim, 3, {}, {1.0, 2.0}), "one per node");
}

TEST(ClusterDeathTest, OutOfRangeProcessorAsserts) {
  sim::Simulator sim;
  Cluster cluster(sim, 2);
  EXPECT_DEATH(cluster.processor(ProcessorId{5}), "assertion");
}

}  // namespace
}  // namespace rtdrm::node
