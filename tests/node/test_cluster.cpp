#include "node/cluster.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::node {
namespace {

TEST(Cluster, ConstructsRequestedNodes) {
  sim::Simulator sim;
  Cluster cluster(sim, 6);
  EXPECT_EQ(cluster.size(), 6u);
  EXPECT_EQ(cluster.ids().size(), 6u);
  EXPECT_EQ(cluster.processor(ProcessorId{3}).id(), (ProcessorId{3}));
}

TEST(Cluster, SampleUtilizationPerNode) {
  sim::Simulator sim;
  Cluster cluster(sim, 3);
  cluster.processor(ProcessorId{1}).submit(
      Job{SimDuration::millis(5.0), nullptr, "x"});
  sim.runUntil(SimTime::millis(10.0));
  const auto& u = cluster.sampleUtilization();
  EXPECT_NEAR(u[0].value(), 0.0, 1e-9);
  EXPECT_NEAR(u[1].value(), 0.5, 1e-9);
  EXPECT_NEAR(u[2].value(), 0.0, 1e-9);
  EXPECT_NEAR(cluster.meanUtilization().value(), 0.5 / 3.0, 1e-9);
  EXPECT_NEAR(cluster.lastUtilization(ProcessorId{1}).value(), 0.5, 1e-9);
}

TEST(Cluster, LeastUtilizedPicksIdleNode) {
  sim::Simulator sim;
  Cluster cluster(sim, 3);
  cluster.processor(ProcessorId{0}).submit(
      Job{SimDuration::millis(8.0), nullptr, "x"});
  cluster.processor(ProcessorId{2}).submit(
      Job{SimDuration::millis(4.0), nullptr, "y"});
  sim.runUntil(SimTime::millis(10.0));
  cluster.sampleUtilization();
  const auto least = cluster.leastUtilized({});
  ASSERT_TRUE(least.has_value());
  EXPECT_EQ(*least, (ProcessorId{1}));
}

TEST(Cluster, LeastUtilizedHonorsExclusions) {
  sim::Simulator sim;
  Cluster cluster(sim, 3);
  cluster.processor(ProcessorId{0}).submit(
      Job{SimDuration::millis(8.0), nullptr, "x"});
  sim.runUntil(SimTime::millis(10.0));
  cluster.sampleUtilization();
  const auto least = cluster.leastUtilized({ProcessorId{1}, ProcessorId{2}});
  ASSERT_TRUE(least.has_value());
  EXPECT_EQ(*least, (ProcessorId{0}));  // only candidate left
}

TEST(Cluster, LeastUtilizedAllExcludedIsEmpty) {
  sim::Simulator sim;
  Cluster cluster(sim, 2);
  EXPECT_FALSE(
      cluster.leastUtilized({ProcessorId{0}, ProcessorId{1}}).has_value());
}

TEST(Cluster, LeastUtilizedTieBreaksToLowerId) {
  sim::Simulator sim;
  Cluster cluster(sim, 4);
  sim.runUntil(SimTime::millis(10.0));
  cluster.sampleUtilization();  // all zero
  const auto least = cluster.leastUtilized({ProcessorId{0}});
  ASSERT_TRUE(least.has_value());
  EXPECT_EQ(*least, (ProcessorId{1}));
}

TEST(Cluster, BackgroundLoadAttachesPerNode) {
  sim::Simulator sim;
  Cluster cluster(sim, 3);
  EXPECT_FALSE(cluster.hasBackgroundLoad());
  const RngStreams streams(9);
  cluster.attachBackgroundLoad(streams);
  EXPECT_TRUE(cluster.hasBackgroundLoad());
  cluster.backgroundLoad(ProcessorId{0}).setTarget(Utilization::fraction(0.6));
  cluster.backgroundLoad(ProcessorId{2}).setTarget(Utilization::fraction(0.2));
  sim.runUntil(SimTime::millis(60000.0));
  const auto& u = cluster.sampleUtilization();
  EXPECT_NEAR(u[0].value(), 0.6, 0.06);
  EXPECT_NEAR(u[1].value(), 0.0, 1e-9);
  EXPECT_NEAR(u[2].value(), 0.2, 0.05);
}

TEST(Cluster, PerNodeSpeedsApplied) {
  sim::Simulator sim;
  Cluster cluster(sim, 2, {}, {2.0, 0.5});
  double fast_done = -1.0;
  double slow_done = -1.0;
  cluster.processor(ProcessorId{0})
      .submit(Job{SimDuration::millis(10.0),
                  [&fast_done, &sim] { fast_done = sim.now().ms(); }, "f"});
  cluster.processor(ProcessorId{1})
      .submit(Job{SimDuration::millis(10.0),
                  [&slow_done, &sim] { slow_done = sim.now().ms(); }, "s"});
  sim.runAll();
  EXPECT_DOUBLE_EQ(fast_done, 5.0);
  EXPECT_DOUBLE_EQ(slow_done, 20.0);
}

TEST(ClusterDeathTest, SpeedsSizeMismatchAsserts) {
  sim::Simulator sim;
  EXPECT_DEATH(Cluster(sim, 3, {}, {1.0, 2.0}), "one per node");
}

TEST(ClusterDeathTest, OutOfRangeProcessorAsserts) {
  sim::Simulator sim;
  Cluster cluster(sim, 2);
  EXPECT_DEATH(cluster.processor(ProcessorId{5}), "assertion");
}

}  // namespace
}  // namespace rtdrm::node
