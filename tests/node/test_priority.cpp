#include <gtest/gtest.h>

#include "node/processor.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::node {
namespace {

ProcessorConfig prioConfig() {
  ProcessorConfig cfg;
  cfg.policy = SchedPolicy::kPriority;
  return cfg;
}

Job job(double demand_ms, int priority, double* done_at,
        sim::Simulator& sim) {
  return Job{SimDuration::millis(demand_ms),
             [done_at, &sim] { *done_at = sim.now().ms(); }, "p", priority};
}

TEST(PriorityScheduler, HigherPriorityPreemptsRunning) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0}, prioConfig());
  double low_done = -1.0;
  double high_done = -1.0;
  cpu.submit(job(10.0, /*priority=*/5, &low_done, sim));
  sim.scheduleAt(SimTime::millis(2.0), [&] {
    cpu.submit(job(3.0, /*priority=*/1, &high_done, sim));
  });
  sim.runAll();
  // Low runs [0,2), preempted; high runs [2,5); low resumes [5,13).
  EXPECT_DOUBLE_EQ(high_done, 5.0);
  EXPECT_DOUBLE_EQ(low_done, 13.0);
}

TEST(PriorityScheduler, LowerPriorityWaitsForRunning) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0}, prioConfig());
  double first_done = -1.0;
  double second_done = -1.0;
  cpu.submit(job(5.0, 2, &first_done, sim));
  cpu.submit(job(1.0, 7, &second_done, sim));  // lower priority: no preempt
  sim.runAll();
  EXPECT_DOUBLE_EQ(first_done, 5.0);
  EXPECT_DOUBLE_EQ(second_done, 6.0);
}

TEST(PriorityScheduler, EqualPriorityIsFifoNonPreemptive) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0}, prioConfig());
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    cpu.submit(Job{SimDuration::millis(1.0),
                   [&order, i] { order.push_back(i); }, "e", 3});
  }
  sim.runAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(PriorityScheduler, QueuedJobsServedByRank) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0}, prioConfig());
  std::vector<int> order;
  auto tag = [&](int id) {
    return [&order, id] { order.push_back(id); };
  };
  // All queued behind a running job; service order must follow priority.
  cpu.submit(Job{SimDuration::millis(1.0), tag(0), "run", 0});
  cpu.submit(Job{SimDuration::millis(1.0), tag(1), "q", 9});
  cpu.submit(Job{SimDuration::millis(1.0), tag(2), "q", 4});
  cpu.submit(Job{SimDuration::millis(1.0), tag(3), "q", 6});
  sim.runAll();
  EXPECT_EQ(order, (std::vector<int>{0, 2, 3, 1}));
}

TEST(PriorityScheduler, PreemptionConservesWork) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0}, prioConfig());
  int completed = 0;
  double total = 0.0;
  for (int i = 0; i < 12; ++i) {
    const double demand = 0.5 + 0.25 * i;
    total += demand;
    cpu.submit(Job{SimDuration::millis(demand), [&] { ++completed; }, "w",
                   11 - i});  // later arrivals rank higher -> preempt chain
    sim.runFor(SimDuration::millis(0.2));
  }
  sim.runAll();
  EXPECT_EQ(completed, 12);
  EXPECT_NEAR(cpu.busyTime().ms(), total, 1e-6);
}

TEST(PriorityScheduler, AbortPreemptedJob) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0}, prioConfig());
  bool low_ran = false;
  double high_done = -1.0;
  const JobId low = cpu.submit(
      Job{SimDuration::millis(50.0), [&] { low_ran = true; }, "low", 5});
  sim.scheduleAt(SimTime::millis(1.0), [&] {
    cpu.submit(job(2.0, 0, &high_done, sim));
    EXPECT_TRUE(cpu.abort(low));
  });
  sim.runAll();
  EXPECT_FALSE(low_ran);
  EXPECT_DOUBLE_EQ(high_done, 3.0);
}

}  // namespace
}  // namespace rtdrm::node
