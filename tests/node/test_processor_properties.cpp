// Randomized processor properties across all scheduling policies: random
// submit/abort interleavings must conserve work, complete or abort every
// job exactly once, and leave the processor idle.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "node/processor.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::node {
namespace {

using Param = std::tuple<int /*policy*/, std::uint64_t /*seed*/>;

class ProcessorRandomOps : public ::testing::TestWithParam<Param> {};

TEST_P(ProcessorRandomOps, ConservationUnderRandomSubmitAbort) {
  const int policy_idx = std::get<0>(GetParam());
  Xoshiro256 rng(std::get<1>(GetParam()));

  ProcessorConfig cfg;
  cfg.policy = static_cast<SchedPolicy>(policy_idx);
  cfg.quantum = SimDuration::millis(rng.uniform(0.25, 2.0));
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0}, cfg);

  const int n = 80;
  int completed = 0;
  std::vector<JobId> ids;
  std::map<std::uint64_t, double> demand_of;
  // Random arrivals over [0, 100) ms.
  std::vector<std::pair<double, double>> arrivals;  // (time, demand)
  for (int i = 0; i < n; ++i) {
    arrivals.push_back(
        {rng.uniform(0.0, 100.0), rng.uniform(0.1, 6.0)});
  }
  for (const auto& [at, demand] : arrivals) {
    const int prio = static_cast<int>(rng.uniformInt(0, 4));
    // Rank metadata for the real-time policies: some jobs carry a
    // deadline/period, some are best-effort (rank-last under EDF/RMS/LLF).
    const double deadline =
        rng.uniform(0.0, 1.0) < 0.7 ? at + rng.uniform(5.0, 60.0) : 0.0;
    const double period =
        rng.uniform(0.0, 1.0) < 0.7 ? rng.uniform(5.0, 50.0) : 0.0;
    sim.scheduleAt(SimTime::millis(at), [&, demand, prio, deadline, period] {
      const JobId id = cpu.submit(
          Job{SimDuration::millis(demand), [&completed] { ++completed; },
              "r", prio, SimTime::millis(deadline),
              SimDuration::millis(period)});
      ids.push_back(id);
      demand_of[id.value] = demand;
    });
  }
  // Random aborts sprinkled over the same window.
  for (int i = 0; i < 15; ++i) {
    sim.scheduleAt(SimTime::millis(rng.uniform(10.0, 110.0)), [&] {
      if (!ids.empty()) {
        const std::size_t k = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(ids.size()) - 1));
        cpu.abort(ids[k]);  // may fail if already done: fine
      }
    });
  }
  sim.runAll();

  EXPECT_EQ(cpu.residentJobs(), 0u);
  EXPECT_FALSE(cpu.busy());
  EXPECT_EQ(cpu.jobsCompleted() + cpu.jobsAborted(),
            static_cast<std::uint64_t>(n));
  EXPECT_EQ(static_cast<std::uint64_t>(completed), cpu.jobsCompleted());
  // Busy time is bounded by total demand (aborted jobs consume at most
  // their demand) and is at least the demand of the completed jobs.
  double total_demand = 0.0;
  for (const auto& [at, demand] : arrivals) {
    total_demand += demand;
  }
  EXPECT_LE(cpu.busyTime().ms(), total_demand + 1e-6);
  EXPECT_GT(cpu.busyTime().ms(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, ProcessorRandomOps,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4,
                                         5),  // RR..priority, EDF, RMS, LLF
                       ::testing::Values(101u, 202u, 303u)));

// Residual-dust property: with no aborts, every policy must serve exactly
// what was submitted — demandServed() ends within the documented residual
// budget (kResidualEpsMs per completed job) of the submitted total, and the
// conservation law busyTime() == demandServed() + schedOverhead() holds
// exactly once the processor drains, for any quantum / context-switch mix.
using ServeParam =
    std::tuple<int /*policy*/, double /*quantum*/, double /*cs*/>;

class ServedEqualsSubmitted : public ::testing::TestWithParam<ServeParam> {};

TEST_P(ServedEqualsSubmitted, NoDemandCreatedOrLost) {
  ProcessorConfig cfg;
  cfg.policy = static_cast<SchedPolicy>(std::get<0>(GetParam()));
  cfg.quantum = SimDuration::millis(std::get<1>(GetParam()));
  cfg.context_switch = SimDuration::millis(std::get<2>(GetParam()));
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0}, cfg);

  Xoshiro256 rng(4242);
  const int n = 60;
  int completed = 0;
  double submitted = 0.0;
  for (int i = 0; i < n; ++i) {
    const double at = rng.uniform(0.0, 50.0);
    // Awkward fractions on purpose: repeated quantum subtraction must not
    // leak more than the residual tolerance per job.
    const double demand = rng.uniform(0.05, 4.0) / 3.0;
    submitted += demand;
    const double deadline = at + rng.uniform(5.0, 40.0);
    const double period = rng.uniform(5.0, 30.0);
    sim.scheduleAt(SimTime::millis(at), [&, demand, deadline, period] {
      cpu.submit(Job{SimDuration::millis(demand),
                     [&completed] { ++completed; }, "p",
                     static_cast<int>(rng.uniformInt(0, 3)),
                     SimTime::millis(deadline),
                     SimDuration::millis(period)});
    });
  }
  sim.runAll();

  EXPECT_EQ(completed, n);
  EXPECT_FALSE(cpu.busy());
  EXPECT_NEAR(cpu.demandServed().ms(), submitted,
              static_cast<double>(n) * Processor::kResidualEpsMs);
  // Idle: the in-flight term is zero, the law must hold exactly.
  EXPECT_NEAR(cpu.busyTime().ms(),
              cpu.demandServed().ms() + cpu.schedOverhead().ms(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesQuantaSwitches, ServedEqualsSubmitted,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),
                       ::testing::Values(0.3, 1.0, 2.7),
                       ::testing::Values(0.0, 0.05)));

TEST(ProcessorEquivalence, SingleJobIdenticalAcrossPolicies) {
  // An uncontended job must take exactly its demand under every policy.
  for (const auto policy :
       {SchedPolicy::kRoundRobin, SchedPolicy::kFifo, SchedPolicy::kPriority,
        SchedPolicy::kEdf, SchedPolicy::kRms, SchedPolicy::kLlf}) {
    sim::Simulator sim;
    ProcessorConfig cfg;
    cfg.policy = policy;
    Processor cpu(sim, ProcessorId{0}, cfg);
    double done = -1.0;
    cpu.submit(Job{SimDuration::millis(7.5),
                   [&] { done = sim.now().ms(); }, "x"});
    sim.runAll();
    EXPECT_DOUBLE_EQ(done, 7.5);
  }
}

TEST(ProcessorEquivalence, MakespanIdenticalAcrossPolicies) {
  // Work conservation: the last completion is the total demand regardless
  // of policy (only per-job response times differ).
  for (const auto policy :
       {SchedPolicy::kRoundRobin, SchedPolicy::kFifo, SchedPolicy::kPriority,
        SchedPolicy::kEdf, SchedPolicy::kRms, SchedPolicy::kLlf}) {
    sim::Simulator sim;
    ProcessorConfig cfg;
    cfg.policy = policy;
    Processor cpu(sim, ProcessorId{0}, cfg);
    double last = 0.0;
    double total = 0.0;
    Xoshiro256 rng(9);
    for (int i = 0; i < 20; ++i) {
      const double d = rng.uniform(0.2, 3.0);
      total += d;
      cpu.submit(Job{SimDuration::millis(d),
                     [&] { last = std::max(last, sim.now().ms()); }, "m",
                     i % 3});
    }
    sim.runAll();
    EXPECT_NEAR(last, total, 1e-6) << "policy "
                                   << static_cast<int>(policy);
  }
}

}  // namespace
}  // namespace rtdrm::node
