// Randomized processor properties across all scheduling policies: random
// submit/abort interleavings must conserve work, complete or abort every
// job exactly once, and leave the processor idle.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "node/processor.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::node {
namespace {

using Param = std::tuple<int /*policy*/, std::uint64_t /*seed*/>;

class ProcessorRandomOps : public ::testing::TestWithParam<Param> {};

TEST_P(ProcessorRandomOps, ConservationUnderRandomSubmitAbort) {
  const int policy_idx = std::get<0>(GetParam());
  Xoshiro256 rng(std::get<1>(GetParam()));

  ProcessorConfig cfg;
  cfg.policy = static_cast<SchedPolicy>(policy_idx);
  cfg.quantum = SimDuration::millis(rng.uniform(0.25, 2.0));
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0}, cfg);

  const int n = 80;
  int completed = 0;
  std::vector<JobId> ids;
  std::map<std::uint64_t, double> demand_of;
  // Random arrivals over [0, 100) ms.
  std::vector<std::pair<double, double>> arrivals;  // (time, demand)
  for (int i = 0; i < n; ++i) {
    arrivals.push_back(
        {rng.uniform(0.0, 100.0), rng.uniform(0.1, 6.0)});
  }
  for (const auto& [at, demand] : arrivals) {
    const int prio = static_cast<int>(rng.uniformInt(0, 4));
    sim.scheduleAt(SimTime::millis(at), [&, demand, prio] {
      const JobId id = cpu.submit(
          Job{SimDuration::millis(demand), [&completed] { ++completed; },
              "r", prio});
      ids.push_back(id);
      demand_of[id.value] = demand;
    });
  }
  // Random aborts sprinkled over the same window.
  for (int i = 0; i < 15; ++i) {
    sim.scheduleAt(SimTime::millis(rng.uniform(10.0, 110.0)), [&] {
      if (!ids.empty()) {
        const std::size_t k = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(ids.size()) - 1));
        cpu.abort(ids[k]);  // may fail if already done: fine
      }
    });
  }
  sim.runAll();

  EXPECT_EQ(cpu.residentJobs(), 0u);
  EXPECT_FALSE(cpu.busy());
  EXPECT_EQ(cpu.jobsCompleted() + cpu.jobsAborted(),
            static_cast<std::uint64_t>(n));
  EXPECT_EQ(static_cast<std::uint64_t>(completed), cpu.jobsCompleted());
  // Busy time is bounded by total demand (aborted jobs consume at most
  // their demand) and is at least the demand of the completed jobs.
  double total_demand = 0.0;
  for (const auto& [at, demand] : arrivals) {
    total_demand += demand;
  }
  EXPECT_LE(cpu.busyTime().ms(), total_demand + 1e-6);
  EXPECT_GT(cpu.busyTime().ms(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, ProcessorRandomOps,
    ::testing::Combine(::testing::Values(0, 1, 2),  // RR, FIFO, priority
                       ::testing::Values(101u, 202u, 303u)));

TEST(ProcessorEquivalence, SingleJobIdenticalAcrossPolicies) {
  // An uncontended job must take exactly its demand under every policy.
  for (const auto policy : {SchedPolicy::kRoundRobin, SchedPolicy::kFifo,
                            SchedPolicy::kPriority}) {
    sim::Simulator sim;
    ProcessorConfig cfg;
    cfg.policy = policy;
    Processor cpu(sim, ProcessorId{0}, cfg);
    double done = -1.0;
    cpu.submit(Job{SimDuration::millis(7.5),
                   [&] { done = sim.now().ms(); }, "x"});
    sim.runAll();
    EXPECT_DOUBLE_EQ(done, 7.5);
  }
}

TEST(ProcessorEquivalence, MakespanIdenticalAcrossPolicies) {
  // Work conservation: the last completion is the total demand regardless
  // of policy (only per-job response times differ).
  for (const auto policy : {SchedPolicy::kRoundRobin, SchedPolicy::kFifo,
                            SchedPolicy::kPriority}) {
    sim::Simulator sim;
    ProcessorConfig cfg;
    cfg.policy = policy;
    Processor cpu(sim, ProcessorId{0}, cfg);
    double last = 0.0;
    double total = 0.0;
    Xoshiro256 rng(9);
    for (int i = 0; i < 20; ++i) {
      const double d = rng.uniform(0.2, 3.0);
      total += d;
      cpu.submit(Job{SimDuration::millis(d),
                     [&] { last = std::max(last, sim.now().ms()); }, "m",
                     i % 3});
    }
    sim.runAll();
    EXPECT_NEAR(last, total, 1e-6) << "policy "
                                   << static_cast<int>(policy);
  }
}

}  // namespace
}  // namespace rtdrm::node
