#include "node/background_load.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::node {
namespace {

double measureUtilization(double target, std::uint64_t seed,
                          double horizon_ms = 60000.0) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  BackgroundLoad bg(sim, cpu, Xoshiro256(seed));
  bg.setTarget(Utilization::fraction(target));
  sim.runUntil(SimTime::millis(horizon_ms));
  return cpu.busyTime().ms() / horizon_ms;
}

TEST(BackgroundLoad, ZeroTargetInjectsNothing) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  BackgroundLoad bg(sim, cpu, Xoshiro256(1));
  bg.setTarget(Utilization::zero());
  sim.runUntil(SimTime::millis(1000.0));
  EXPECT_EQ(bg.jobsInjected(), 0u);
  EXPECT_DOUBLE_EQ(cpu.busyTime().ms(), 0.0);
}

// The offered load should be realized within a few percent over a long run.
class BackgroundLoadTarget : public ::testing::TestWithParam<double> {};

TEST_P(BackgroundLoadTarget, RealizedUtilizationTracksTarget) {
  const double target = GetParam();
  const double realized = measureUtilization(target, 42);
  EXPECT_NEAR(realized, target, 0.05) << "target " << target;
}

INSTANTIATE_TEST_SUITE_P(Levels, BackgroundLoadTarget,
                         ::testing::Values(0.1, 0.2, 0.4, 0.6, 0.8));

TEST(BackgroundLoad, TargetClampedBelowSaturation) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  BackgroundLoad bg(sim, cpu, Xoshiro256(2));
  bg.setTarget(Utilization::fraction(1.0));
  EXPECT_LE(bg.target().value(), 0.95);
}

TEST(BackgroundLoad, SetTargetZeroStopsArrivals) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  BackgroundLoad bg(sim, cpu, Xoshiro256(3));
  bg.setTarget(Utilization::fraction(0.5));
  sim.runUntil(SimTime::millis(1000.0));
  const auto injected = bg.jobsInjected();
  EXPECT_GT(injected, 0u);
  bg.setTarget(Utilization::zero());
  sim.runUntil(SimTime::millis(2000.0));
  EXPECT_EQ(bg.jobsInjected(), injected);
}

TEST(BackgroundLoad, TargetCanBeRaisedMidRun) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  BackgroundLoad bg(sim, cpu, Xoshiro256(4));
  bg.setTarget(Utilization::fraction(0.1));
  sim.runUntil(SimTime::millis(20000.0));
  const double busy_low = cpu.busyTime().ms();
  bg.setTarget(Utilization::fraction(0.7));
  sim.runUntil(SimTime::millis(40000.0));
  const double busy_high = cpu.busyTime().ms() - busy_low;
  EXPECT_GT(busy_high, busy_low * 3.0);  // clearly heavier second half
}

TEST(BackgroundLoad, UniformServiceModeWorks) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  BackgroundLoadConfig cfg;
  cfg.exponential_service = false;
  BackgroundLoad bg(sim, cpu, Xoshiro256(5), cfg);
  bg.setTarget(Utilization::fraction(0.3));
  sim.runUntil(SimTime::millis(60000.0));
  EXPECT_NEAR(cpu.busyTime().ms() / 60000.0, 0.3, 0.05);
}

TEST(BackgroundLoad, DeterministicForSameSeed) {
  const double a = measureUtilization(0.35, 777, 10000.0);
  const double b = measureUtilization(0.35, 777, 10000.0);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace rtdrm::node
