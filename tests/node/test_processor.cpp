#include "node/processor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace rtdrm::node {
namespace {

Job probe(SimDuration demand, double* done_at, sim::Simulator& sim) {
  return Job{demand, [done_at, &sim] { *done_at = sim.now().ms(); }, "t"};
}

TEST(Processor, SingleJobRunsForExactDemand) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  double done = -1.0;
  cpu.submit(probe(SimDuration::millis(7.25), &done, sim));
  sim.runAll();
  EXPECT_DOUBLE_EQ(done, 7.25);
  EXPECT_EQ(cpu.jobsCompleted(), 1u);
}

TEST(Processor, ZeroDemandJobCompletesImmediately) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  double done = -1.0;
  cpu.submit(probe(SimDuration::zero(), &done, sim));
  sim.runAll();
  EXPECT_DOUBLE_EQ(done, 0.0);
}

TEST(Processor, RoundRobinInterleavesTwoJobs) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});  // RR, 1 ms quantum
  double a_done = -1.0;
  double b_done = -1.0;
  cpu.submit(probe(SimDuration::millis(3.0), &a_done, sim));
  cpu.submit(probe(SimDuration::millis(2.0), &b_done, sim));
  sim.runAll();
  // Slices: A[0,1) B[1,2) A[2,3) B[3,4)done A[4,5)done.
  EXPECT_DOUBLE_EQ(b_done, 4.0);
  EXPECT_DOUBLE_EQ(a_done, 5.0);
}

TEST(Processor, RoundRobinFractionalFinalSlice) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  double a_done = -1.0;
  double b_done = -1.0;
  cpu.submit(probe(SimDuration::millis(1.5), &a_done, sim));
  cpu.submit(probe(SimDuration::millis(1.0), &b_done, sim));
  sim.runAll();
  // A[0,1) B[1,2)done A[2,2.5)done.
  EXPECT_DOUBLE_EQ(b_done, 2.0);
  EXPECT_DOUBLE_EQ(a_done, 2.5);
}

TEST(Processor, ArrivalTruncatesUncontendedStretch) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  double a_done = -1.0;
  double b_done = -1.0;
  cpu.submit(probe(SimDuration::millis(10.0), &a_done, sim));
  sim.scheduleAt(SimTime::millis(2.5), [&] {
    cpu.submit(probe(SimDuration::millis(1.0), &b_done, sim));
  });
  sim.runAll();
  // A runs alone [0, 2.5); then RR: A gets the first fresh quantum
  // [2.5, 3.5), B [3.5, 4.5) done, A runs alone to completion at 10 + 1.
  EXPECT_DOUBLE_EQ(b_done, 4.5);
  EXPECT_DOUBLE_EQ(a_done, 11.0);
}

TEST(Processor, FifoRunsToCompletionInArrivalOrder) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.policy = SchedPolicy::kFifo;
  Processor cpu(sim, ProcessorId{0}, cfg);
  double a_done = -1.0;
  double b_done = -1.0;
  cpu.submit(probe(SimDuration::millis(3.0), &a_done, sim));
  cpu.submit(probe(SimDuration::millis(2.0), &b_done, sim));
  sim.runAll();
  EXPECT_DOUBLE_EQ(a_done, 3.0);
  EXPECT_DOUBLE_EQ(b_done, 5.0);
}

TEST(Processor, BusyTimeEqualsTotalDemand) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  double sink = 0.0;
  cpu.submit(probe(SimDuration::millis(3.0), &sink, sim));
  cpu.submit(probe(SimDuration::millis(2.0), &sink, sim));
  cpu.submit(probe(SimDuration::millis(4.5), &sink, sim));
  sim.runAll();
  EXPECT_NEAR(cpu.busyTime().ms(), 9.5, 1e-9);
}

TEST(Processor, BusyTimeAccruesMidStretch) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  double sink = 0.0;
  cpu.submit(probe(SimDuration::millis(10.0), &sink, sim));
  sim.runUntil(SimTime::millis(4.0));
  EXPECT_NEAR(cpu.busyTime().ms(), 4.0, 1e-9);
}

TEST(Processor, ContextSwitchOverheadExtendsCompletion) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.context_switch = SimDuration::millis(0.1);
  Processor cpu(sim, ProcessorId{0}, cfg);
  double a_done = -1.0;
  double b_done = -1.0;
  cpu.submit(probe(SimDuration::millis(2.0), &a_done, sim));
  cpu.submit(probe(SimDuration::millis(2.0), &b_done, sim));
  sim.runAll();
  // 4 ms of work + 4 dispatch boundaries x 0.1 ms.
  EXPECT_NEAR(b_done, 4.4, 1e-9);
  EXPECT_GT(cpu.busyTime().ms(), 4.0);
}

TEST(Processor, AbortQueuedJobNeverRuns) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  double a_done = -1.0;
  bool b_ran = false;
  cpu.submit(probe(SimDuration::millis(5.0), &a_done, sim));
  const JobId b = cpu.submit(
      Job{SimDuration::millis(5.0), [&] { b_ran = true; }, "b"});
  EXPECT_TRUE(cpu.abort(b));
  sim.runAll();
  EXPECT_FALSE(b_ran);
  EXPECT_DOUBLE_EQ(a_done, 5.0);  // A reverts to uncontended after abort
  EXPECT_EQ(cpu.jobsAborted(), 1u);
}

TEST(Processor, AbortRunningJobFreesProcessor) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  bool a_ran = false;
  double b_done = -1.0;
  const JobId a = cpu.submit(
      Job{SimDuration::millis(100.0), [&] { a_ran = true; }, "a"});
  cpu.submit(probe(SimDuration::millis(1.0), &b_done, sim));
  sim.scheduleAt(SimTime::millis(0.5), [&] { EXPECT_TRUE(cpu.abort(a)); });
  sim.runAll();
  EXPECT_FALSE(a_ran);
  EXPECT_GT(b_done, 0.0);
  EXPECT_LE(b_done, 2.0);
}

TEST(Processor, AbortUnknownJobReturnsFalse) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  EXPECT_FALSE(cpu.abort(JobId{12345}));
}

TEST(Processor, AbortedBusyTimeStillCounted) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  const JobId a = cpu.submit(Job{SimDuration::millis(100.0), nullptr, "a"});
  sim.runUntil(SimTime::millis(10.0));
  cpu.abort(a);
  sim.runAll();
  EXPECT_NEAR(cpu.busyTime().ms(), 10.0, 1e-9);
}

TEST(Processor, CompletionCallbackMaySubmitFollowUp) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  double second_done = -1.0;
  cpu.submit(Job{SimDuration::millis(1.0),
                 [&] {
                   cpu.submit(Job{SimDuration::millis(2.0),
                                  [&] { second_done = sim.now().ms(); },
                                  "chained"});
                 },
                 "first"});
  sim.runAll();
  EXPECT_DOUBLE_EQ(second_done, 3.0);
}

TEST(Processor, ResidentJobsTracksQueue) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  EXPECT_EQ(cpu.residentJobs(), 0u);
  EXPECT_FALSE(cpu.busy());
  cpu.submit(Job{SimDuration::millis(5.0), nullptr, "a"});
  cpu.submit(Job{SimDuration::millis(5.0), nullptr, "b"});
  EXPECT_EQ(cpu.residentJobs(), 2u);
  EXPECT_TRUE(cpu.busy());
  sim.runAll();
  EXPECT_EQ(cpu.residentJobs(), 0u);
}

TEST(Processor, ManyJobsAllCompleteAndConserveWork) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  int completed = 0;
  double total = 0.0;
  for (int i = 1; i <= 50; ++i) {
    const double demand = 0.1 * i;
    total += demand;
    cpu.submit(Job{SimDuration::millis(demand), [&] { ++completed; }, "j"});
  }
  sim.runAll();
  EXPECT_EQ(completed, 50);
  EXPECT_NEAR(cpu.busyTime().ms(), total, 1e-6);
  EXPECT_NEAR(sim.now().ms(), total, 1e-6);  // work-conserving: no idle gaps
}

TEST(Processor, SpeedScalesServiceTime) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.speed = 2.0;  // twice the reference speed
  Processor fast(sim, ProcessorId{0}, cfg);
  double done = -1.0;
  fast.submit(probe(SimDuration::millis(10.0), &done, sim));
  sim.runAll();
  EXPECT_DOUBLE_EQ(done, 5.0);
}

TEST(Processor, SlowNodeTakesProportionallyLonger) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.speed = 0.5;
  Processor slow(sim, ProcessorId{0}, cfg);
  double done = -1.0;
  slow.submit(probe(SimDuration::millis(10.0), &done, sim));
  sim.runAll();
  EXPECT_DOUBLE_EQ(done, 20.0);
  // Utilization accounting is wall time: the slow node was busy 20 ms.
  EXPECT_NEAR(slow.busyTime().ms(), 20.0, 1e-9);
}

TEST(Processor, SpeedAppliesUnderContention) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.speed = 2.0;
  Processor cpu(sim, ProcessorId{0}, cfg);
  double a_done = -1.0;
  double b_done = -1.0;
  cpu.submit(probe(SimDuration::millis(6.0), &a_done, sim));  // 3 ms wall
  cpu.submit(probe(SimDuration::millis(4.0), &b_done, sim));  // 2 ms wall
  sim.runAll();
  // Same RR interleaving as the 3/2 ms homogeneous case.
  EXPECT_DOUBLE_EQ(b_done, 4.0);
  EXPECT_DOUBLE_EQ(a_done, 5.0);
}

TEST(UtilizationProbe, MeasuresWindowedBusyFraction) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  UtilizationProbe probe(sim, cpu);
  cpu.submit(Job{SimDuration::millis(5.0), nullptr, "a"});
  sim.runUntil(SimTime::millis(10.0));
  EXPECT_NEAR(probe.sample().value(), 0.5, 1e-9);
  // Second window: idle.
  sim.runUntil(SimTime::millis(20.0));
  EXPECT_NEAR(probe.sample().value(), 0.0, 1e-9);
}

TEST(UtilizationProbe, PeekDoesNotReset) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  UtilizationProbe probe(sim, cpu);
  cpu.submit(Job{SimDuration::millis(10.0), nullptr, "a"});
  sim.runUntil(SimTime::millis(10.0));
  EXPECT_NEAR(probe.peek().value(), 1.0, 1e-9);
  EXPECT_NEAR(probe.peek().value(), 1.0, 1e-9);
  EXPECT_NEAR(probe.sample().value(), 1.0, 1e-9);
}

TEST(UtilizationProbe, EmptyWindowIsZero) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  UtilizationProbe probe(sim, cpu);
  EXPECT_DOUBLE_EQ(probe.sample().value(), 0.0);
}

// Property sweep: for any quantum and job mix, total busy time equals total
// demand and the last completion equals the makespan (work conservation).
class RoundRobinProperty
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(RoundRobinProperty, WorkConservation) {
  const double quantum = std::get<0>(GetParam());
  const int jobs = std::get<1>(GetParam());
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.quantum = SimDuration::millis(quantum);
  Processor cpu(sim, ProcessorId{0}, cfg);
  double total = 0.0;
  int completed = 0;
  double last_done = 0.0;
  for (int i = 0; i < jobs; ++i) {
    const double demand = 0.35 * (i + 1);
    total += demand;
    cpu.submit(Job{SimDuration::millis(demand),
                   [&] {
                     ++completed;
                     last_done = sim.now().ms();
                   },
                   "p"});
  }
  sim.runAll();
  EXPECT_EQ(completed, jobs);
  EXPECT_NEAR(cpu.busyTime().ms(), total, 1e-6);
  EXPECT_NEAR(last_done, total, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    QuantaAndLoads, RoundRobinProperty,
    ::testing::Combine(::testing::Values(0.25, 0.5, 1.0, 2.0, 10.0),
                       ::testing::Values(1, 2, 5, 13)));

TEST(Processor, CrashAbortsResidentJobsSilently) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  double done = -1.0;
  cpu.submit(probe(SimDuration::millis(10.0), &done, sim));
  sim.runUntil(SimTime::millis(4.0));
  cpu.setUp(false);
  sim.runAll();
  EXPECT_DOUBLE_EQ(done, -1.0);  // on_complete never fired
  EXPECT_EQ(cpu.jobsAborted(), 1u);
  EXPECT_EQ(cpu.jobsCompleted(), 0u);
  EXPECT_FALSE(cpu.isUp());
  EXPECT_EQ(cpu.residentJobs(), 0u);
}

TEST(Processor, SubmitWhileDownIsDropped) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  cpu.setUp(false);
  double done = -1.0;
  const JobId id = cpu.submit(probe(SimDuration::millis(1.0), &done, sim));
  sim.runAll();
  EXPECT_EQ(id, kNoJob);
  EXPECT_DOUBLE_EQ(done, -1.0);
  EXPECT_EQ(cpu.jobsRejected(), 1u);
}

TEST(Processor, RestartComesBackEmptyAndServes) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  double lost = -1.0;
  cpu.submit(probe(SimDuration::millis(10.0), &lost, sim));
  sim.runUntil(SimTime::millis(2.0));
  cpu.setUp(false);
  sim.runUntil(SimTime::millis(5.0));
  cpu.setUp(true);
  EXPECT_TRUE(cpu.isUp());
  EXPECT_EQ(cpu.residentJobs(), 0u);
  double done = -1.0;
  cpu.submit(probe(SimDuration::millis(3.0), &done, sim));
  sim.runAll();
  EXPECT_DOUBLE_EQ(lost, -1.0);
  EXPECT_DOUBLE_EQ(done, 8.0);  // 5 ms restart + 3 ms demand
}

TEST(Processor, CrashFreezesBusyTime) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  double done = -1.0;
  cpu.submit(probe(SimDuration::millis(10.0), &done, sim));
  sim.runUntil(SimTime::millis(4.0));
  cpu.setUp(false);
  sim.runUntil(SimTime::millis(20.0));
  EXPECT_NEAR(cpu.busyTime().ms(), 4.0, 1e-9);
}

TEST(Processor, ThrottleRescalesRemainingDemand) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  double done = -1.0;
  cpu.submit(probe(SimDuration::millis(10.0), &done, sim));
  sim.runUntil(SimTime::millis(4.0));
  cpu.setSpeedFactor(0.5);  // 6 ms of demand left, now at half speed
  sim.runAll();
  EXPECT_DOUBLE_EQ(done, 16.0);
  cpu.setSpeedFactor(1.0);
  EXPECT_DOUBLE_EQ(cpu.speedFactor(), 1.0);
}

TEST(ProcessorDeathTest, NonPositiveSpeedFactorAsserts) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});
  EXPECT_DEATH(cpu.setSpeedFactor(0.0), "");
}

}  // namespace
}  // namespace rtdrm::node
