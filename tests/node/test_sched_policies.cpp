// Behavioural tests for the pluggable real-time scheduling policies (EDF /
// RMS / LLF), the preemption edge cases the ISSUE calls out (equal-key
// ties, arrivals at exact stretch boundaries, laxity under throttle), and
// the accounting regressions of the scheduler bugfix satellites
// (context-switch wall-time semantics, mid-stretch busyTime, config
// validation).
#include <gtest/gtest.h>

#include "node/processor.hpp"
#include "node/sched_policy.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::node {
namespace {

Job timed(SimDuration demand, double* done_at, sim::Simulator& sim,
          double deadline_ms = 0.0, double period_ms = 0.0) {
  return Job{demand,
             [done_at, &sim] { *done_at = sim.now().ms(); },
             "t",
             0,
             SimTime::millis(deadline_ms),
             SimDuration::millis(period_ms)};
}

// ---- EDF ----------------------------------------------------------------

TEST(EdfPolicy, EarlierDeadlinePreempts) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.policy = SchedPolicy::kEdf;
  Processor cpu(sim, ProcessorId{0}, cfg);
  double a_done = -1.0;
  double b_done = -1.0;
  cpu.submit(timed(SimDuration::millis(10.0), &a_done, sim, 100.0));
  sim.scheduleAt(SimTime::millis(2.0), [&] {
    cpu.submit(timed(SimDuration::millis(3.0), &b_done, sim, 50.0));
  });
  sim.runAll();
  // B (deadline 50) preempts A (deadline 100) at t=2 and runs to
  // completion; A resumes with its remaining 8 ms.
  EXPECT_DOUBLE_EQ(b_done, 5.0);
  EXPECT_DOUBLE_EQ(a_done, 13.0);
}

TEST(EdfPolicy, EqualDeadlineNeverPreempts) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.policy = SchedPolicy::kEdf;
  Processor cpu(sim, ProcessorId{0}, cfg);
  double a_done = -1.0;
  double b_done = -1.0;
  cpu.submit(timed(SimDuration::millis(5.0), &a_done, sim, 100.0));
  sim.scheduleAt(SimTime::millis(1.0), [&] {
    cpu.submit(timed(SimDuration::millis(1.0), &b_done, sim, 100.0));
  });
  sim.runAll();
  // Tie: the running job keeps its stretch (no churn), B follows.
  EXPECT_DOUBLE_EQ(a_done, 5.0);
  EXPECT_DOUBLE_EQ(b_done, 6.0);
}

TEST(EdfPolicy, EqualDeadlineTieBreaksByJobId) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.policy = SchedPolicy::kEdf;
  Processor cpu(sim, ProcessorId{0}, cfg);
  double a_done = -1.0;
  double b_done = -1.0;
  double c_done = -1.0;
  cpu.submit(timed(SimDuration::millis(2.0), &a_done, sim, 10.0));
  cpu.submit(timed(SimDuration::millis(1.0), &b_done, sim, 100.0));
  cpu.submit(timed(SimDuration::millis(1.0), &c_done, sim, 100.0));
  sim.runAll();
  // B and C share a deadline: the lower JobId (B, submitted first) is
  // served first — deterministic on every replay.
  EXPECT_DOUBLE_EQ(a_done, 2.0);
  EXPECT_DOUBLE_EQ(b_done, 3.0);
  EXPECT_DOUBLE_EQ(c_done, 4.0);
}

TEST(EdfPolicy, DeadlinelessJobsRankLast) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.policy = SchedPolicy::kEdf;
  Processor cpu(sim, ProcessorId{0}, cfg);
  double bg_done = -1.0;
  double rt_done = -1.0;
  cpu.submit(timed(SimDuration::millis(5.0), &bg_done, sim));  // no deadline
  sim.scheduleAt(SimTime::millis(1.0), [&] {
    cpu.submit(timed(SimDuration::millis(2.0), &rt_done, sim, 50.0));
  });
  sim.runAll();
  EXPECT_DOUBLE_EQ(rt_done, 3.0);
  EXPECT_DOUBLE_EQ(bg_done, 7.0);
}

// ---- RMS ----------------------------------------------------------------

TEST(RmsPolicy, ShorterPeriodPreempts) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.policy = SchedPolicy::kRms;
  Processor cpu(sim, ProcessorId{0}, cfg);
  double a_done = -1.0;
  double b_done = -1.0;
  cpu.submit(timed(SimDuration::millis(4.0), &a_done, sim, 0.0, 100.0));
  sim.scheduleAt(SimTime::millis(1.0), [&] {
    cpu.submit(timed(SimDuration::millis(2.0), &b_done, sim, 0.0, 50.0));
  });
  sim.runAll();
  // A serves 1 ms before the higher-rate B preempts at t=1; B runs 1→3
  // and A's remaining 3 ms finish at t=6.
  EXPECT_DOUBLE_EQ(b_done, 3.0);
  EXPECT_DOUBLE_EQ(a_done, 6.0);
}

TEST(RmsPolicy, AperiodicJobsRankLast) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.policy = SchedPolicy::kRms;
  Processor cpu(sim, ProcessorId{0}, cfg);
  double ap_done = -1.0;
  double per_done = -1.0;
  cpu.submit(timed(SimDuration::millis(3.0), &ap_done, sim));  // aperiodic
  sim.scheduleAt(SimTime::millis(1.0), [&] {
    cpu.submit(timed(SimDuration::millis(2.0), &per_done, sim, 0.0, 10.0));
  });
  sim.runAll();
  // The aperiodic job serves 1 ms before the periodic arrival preempts;
  // its remaining 2 ms finish after the periodic's 2 ms slice.
  EXPECT_DOUBLE_EQ(per_done, 3.0);
  EXPECT_DOUBLE_EQ(ap_done, 5.0);
}

// ---- LLF ----------------------------------------------------------------

TEST(LlfPolicy, LaxityReevaluatedPerQuantum) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.policy = SchedPolicy::kLlf;  // quantum 1 ms under contention
  Processor cpu(sim, ProcessorId{0}, cfg);
  double a_done = -1.0;
  double b_done = -1.0;
  cpu.submit(timed(SimDuration::millis(4.0), &a_done, sim, 10.0));
  cpu.submit(timed(SimDuration::millis(2.0), &b_done, sim, 7.0));
  sim.runAll();
  // t=0: laxity B = 7-2 = 5 < A = 10-4 = 6, B preempts and runs [0,1).
  // t=1: tie (both 5) -> lower JobId A runs [1,2).
  // t=2: B (4) < A (5) -> B finishes [2,3); A drains alone to 6.
  EXPECT_DOUBLE_EQ(b_done, 3.0);
  EXPECT_DOUBLE_EQ(a_done, 6.0);
}

TEST(LlfPolicy, AdmitDiscountsInFlightProgress) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.policy = SchedPolicy::kLlf;
  Processor cpu(sim, ProcessorId{0}, cfg);
  double a_done = -1.0;
  double b_done = -1.0;
  cpu.submit(timed(SimDuration::millis(10.0), &a_done, sim, 30.0));
  sim.scheduleAt(SimTime::millis(4.0), [&] {
    cpu.submit(timed(SimDuration::millis(2.0), &b_done, sim, 25.0));
  });
  sim.runAll();
  // At t=4 the running A has already progressed 4 ms of its uncontended
  // stretch: its live laxity is 30-4-6 = 20 (not the stale 30-4-10 = 16),
  // so B (laxity 19) must preempt. B wins the per-quantum races until done.
  EXPECT_DOUBLE_EQ(b_done, 7.0);
  EXPECT_DOUBLE_EQ(a_done, 12.0);
}

TEST(LlfPolicy, ThrottleShrinksLaxityThroughRemainingWallTime) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.policy = SchedPolicy::kLlf;
  Processor cpu(sim, ProcessorId{0}, cfg);
  double a_done = -1.0;
  cpu.submit(timed(SimDuration::millis(4.0), &a_done, sim, 20.0));
  sim.scheduleAt(SimTime::millis(1.0), [&] { cpu.setSpeedFactor(0.5); });
  sim.runAll();
  // 1 ms served at full speed, 3 ms of demand at half speed = 6 ms wall.
  EXPECT_DOUBLE_EQ(a_done, 7.0);
}

// ---- arrivals at exact stretch boundaries -------------------------------

TEST(StretchBoundary, ArrivalAtUncontendedCompletionTime) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});  // RR
  double a_done = -1.0;
  double b_done = -1.0;
  cpu.submit(timed(SimDuration::millis(2.0), &a_done, sim));
  sim.scheduleAt(SimTime::millis(2.0), [&] {
    cpu.submit(timed(SimDuration::millis(2.0), &b_done, sim));
  });
  sim.runAll();
  // The completion event (scheduled first) fires before the boundary
  // arrival: A finishes exactly at 2, B runs alone after it.
  EXPECT_DOUBLE_EQ(a_done, 2.0);
  EXPECT_DOUBLE_EQ(b_done, 4.0);
  EXPECT_NEAR(cpu.busyTime().ms(), 4.0, 1e-9);
}

TEST(StretchBoundary, ArrivalAtQuantumBoundaryUnderContention) {
  sim::Simulator sim;
  Processor cpu(sim, ProcessorId{0});  // RR, 1 ms quantum
  double a_done = -1.0;
  double b_done = -1.0;
  double c_done = -1.0;
  cpu.submit(timed(SimDuration::millis(2.0), &a_done, sim));
  cpu.submit(timed(SimDuration::millis(2.0), &b_done, sim));
  sim.scheduleAt(SimTime::millis(1.0), [&] {
    cpu.submit(timed(SimDuration::millis(1.0), &c_done, sim));
  });
  sim.runAll();
  // The quantum-end event precedes the boundary arrival: A rotates first,
  // then C joins the tail. Order after t=1: B, A(done 3), C(done 4),
  // B(done 5) — no quantum is split or double-charged.
  EXPECT_DOUBLE_EQ(a_done, 3.0);
  EXPECT_DOUBLE_EQ(c_done, 4.0);
  EXPECT_DOUBLE_EQ(b_done, 5.0);
  EXPECT_NEAR(cpu.busyTime().ms(), 5.0, 1e-9);
}

// ---- context-switch wall-time semantics (satellite regression) ----------

TEST(ContextSwitch, ThrottleDoesNotRescaleSwitchCharge) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.context_switch = SimDuration::millis(0.5);
  Processor cpu(sim, ProcessorId{0}, cfg);
  double done = -1.0;
  cpu.submit(timed(SimDuration::millis(2.0), &done, sim));
  // Mid-stretch, past the switch charge: 0.5 ms cs + 0.5 ms work consumed.
  sim.scheduleAt(SimTime::millis(1.0), [&] { cpu.setSpeedFactor(0.5); });
  sim.runAll();
  // Remaining 1.5 ms of demand at half speed = 3 ms wall; the already-paid
  // switch charge is not re-billed on resume. 1 + 3 = 4.
  EXPECT_DOUBLE_EQ(done, 4.0);
}

TEST(ContextSwitch, ResidueCarriesAsFixedWallTimeThroughThrottle) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.context_switch = SimDuration::millis(0.5);
  Processor cpu(sim, ProcessorId{0}, cfg);
  double done = -1.0;
  cpu.submit(timed(SimDuration::millis(2.0), &done, sim));
  // Mid context switch: 0.25 ms of the 0.5 ms charge consumed.
  sim.scheduleAt(SimTime::millis(0.25), [&] { cpu.setSpeedFactor(0.5); });
  sim.runAll();
  // The unconsumed 0.25 ms of the charge is bus/cache wall time — it does
  // NOT stretch to 0.5 ms at half CPU speed. 0.25 + (0.25 + 2/0.5) = 4.5.
  EXPECT_DOUBLE_EQ(done, 4.5);
  // Conservation after drain: wall service at half speed is 4 ms.
  EXPECT_NEAR(cpu.demandServed().ms(), 4.0, 1e-9);
  EXPECT_NEAR(cpu.schedOverhead().ms(), 0.5, 1e-9);
  EXPECT_NEAR(cpu.busyTime().ms(), 4.5, 1e-9);
}

// ---- busyTime mid-stretch audit (satellite regression) ------------------

TEST(BusyAccounting, MidStretchContendedCountsInFlightSpanOnce) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.context_switch = SimDuration::millis(0.2);
  Processor cpu(sim, ProcessorId{0}, cfg);
  cpu.submit(Job{SimDuration::millis(3.0), nullptr, "a"});
  cpu.submit(Job{SimDuration::millis(3.0), nullptr, "b"});
  // Mid second stretch: one settled stretch (1.2) + 0.6 in flight.
  sim.runUntil(SimTime::millis(1.8));
  EXPECT_NEAR(cpu.busyTime().ms(), 1.8, 1e-9);
  EXPECT_NEAR(cpu.demandServed().ms(), 1.0, 1e-9);
  EXPECT_NEAR(cpu.schedOverhead().ms(), 0.2, 1e-9);
  // The in-flight span is bounded by the stretch length — never negative,
  // never counted twice.
  const double in_flight = cpu.busyTime().ms() - cpu.demandServed().ms() -
                           cpu.schedOverhead().ms();
  EXPECT_GE(in_flight, 0.0);
  EXPECT_LE(in_flight, 1.2 + 1e-9);
  sim.runAll();
  // Drained: 6 ms of work across 6 stretches of 0.2 ms overhead each.
  EXPECT_NEAR(cpu.busyTime().ms(), 7.2, 1e-9);
  EXPECT_NEAR(cpu.busyTime().ms(),
              cpu.demandServed().ms() + cpu.schedOverhead().ms(), 1e-9);
}

TEST(BusyAccounting, MidStretchUncontendedWithSwitchCharge) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.context_switch = SimDuration::millis(0.2);
  Processor cpu(sim, ProcessorId{0}, cfg);
  cpu.submit(Job{SimDuration::millis(3.0), nullptr, "a"});
  sim.runUntil(SimTime::millis(0.1));  // inside the switch charge
  EXPECT_NEAR(cpu.busyTime().ms(), 0.1, 1e-9);
  EXPECT_NEAR(cpu.demandServed().ms(), 0.0, 1e-9);
  sim.runUntil(SimTime::millis(1.0));  // inside the service span
  EXPECT_NEAR(cpu.busyTime().ms(), 1.0, 1e-9);
  sim.runAll();
  EXPECT_NEAR(cpu.busyTime().ms(), 3.2, 1e-9);
  EXPECT_NEAR(cpu.demandServed().ms(), 3.0, 1e-9);
  EXPECT_NEAR(cpu.schedOverhead().ms(), 0.2, 1e-9);
}

// ---- config validation (satellite) --------------------------------------

using ProcessorConfigDeathTest = ::testing::Test;

TEST(ProcessorConfigDeathTest, RejectsNonPositiveQuantum) {
  ProcessorConfig cfg;
  cfg.quantum = SimDuration::zero();
  EXPECT_DEATH(cfg.validate(), "quantum must be positive");
}

TEST(ProcessorConfigDeathTest, RejectsNegativeContextSwitch) {
  ProcessorConfig cfg;
  cfg.context_switch = SimDuration::millis(-0.1);
  EXPECT_DEATH(cfg.validate(), "context switch must be non-negative");
}

TEST(ProcessorConfigDeathTest, RejectsNonPositiveSpeed) {
  ProcessorConfig cfg;
  cfg.speed = 0.0;
  EXPECT_DEATH(cfg.validate(), "speed must be positive");
}

TEST(ProcessorConfigDeathTest, ConstructorValidates) {
  sim::Simulator sim;
  ProcessorConfig cfg;
  cfg.quantum = SimDuration::millis(-1.0);
  EXPECT_DEATH(Processor(sim, ProcessorId{0}, cfg), "quantum");
}

// ---- name/parse round-trip ----------------------------------------------

TEST(SchedPolicyNames, RoundTrip) {
  for (const auto p :
       {SchedPolicy::kRoundRobin, SchedPolicy::kFifo, SchedPolicy::kPriority,
        SchedPolicy::kEdf, SchedPolicy::kRms, SchedPolicy::kLlf}) {
    SchedPolicy parsed{};
    ASSERT_TRUE(parseSchedPolicy(schedPolicyName(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  SchedPolicy parsed{};
  EXPECT_TRUE(parseSchedPolicy("round-robin", &parsed));
  EXPECT_EQ(parsed, SchedPolicy::kRoundRobin);
  EXPECT_FALSE(parseSchedPolicy("cfs", &parsed));
}

}  // namespace
}  // namespace rtdrm::node
