#include "workload/patterns.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace rtdrm::workload {
namespace {

RampParams params(double min_t = 500.0, double max_t = 10000.0,
                  std::uint64_t ramp = 30) {
  RampParams p;
  p.min_workload = DataSize::tracks(min_t);
  p.max_workload = DataSize::tracks(max_t);
  p.ramp_periods = ramp;
  return p;
}

TEST(IncreasingRamp, StartsAtMinReachesMaxThenHolds) {
  const IncreasingRamp pat(params());
  EXPECT_DOUBLE_EQ(pat.at(0).count(), 500.0);
  EXPECT_DOUBLE_EQ(pat.at(15).count(), 5250.0);  // halfway
  EXPECT_DOUBLE_EQ(pat.at(30).count(), 10000.0);
  EXPECT_DOUBLE_EQ(pat.at(100).count(), 10000.0);  // holds
}

TEST(IncreasingRamp, MonotoneNonDecreasing) {
  const IncreasingRamp pat(params());
  for (std::uint64_t c = 0; c < 60; ++c) {
    EXPECT_LE(pat.at(c).count(), pat.at(c + 1).count());
  }
}

TEST(DecreasingRamp, StartsAtMaxDescendsToMin) {
  const DecreasingRamp pat(params());
  EXPECT_DOUBLE_EQ(pat.at(0).count(), 10000.0);
  EXPECT_DOUBLE_EQ(pat.at(30).count(), 500.0);
  EXPECT_DOUBLE_EQ(pat.at(99).count(), 500.0);
  for (std::uint64_t c = 0; c < 60; ++c) {
    EXPECT_GE(pat.at(c).count(), pat.at(c + 1).count());
  }
}

TEST(Triangular, AlternatesBetweenMinAndMax) {
  const Triangular pat(params());
  EXPECT_DOUBLE_EQ(pat.at(0).count(), 500.0);
  EXPECT_DOUBLE_EQ(pat.at(30).count(), 10000.0);  // first peak
  EXPECT_DOUBLE_EQ(pat.at(60).count(), 500.0);    // back to valley
  EXPECT_DOUBLE_EQ(pat.at(90).count(), 10000.0);  // second peak
  EXPECT_DOUBLE_EQ(pat.at(15).count(), pat.at(45).count());  // symmetry
}

TEST(Triangular, StaysWithinBounds) {
  const Triangular pat(params());
  for (std::uint64_t c = 0; c < 200; ++c) {
    EXPECT_GE(pat.at(c).count(), 500.0);
    EXPECT_LE(pat.at(c).count(), 10000.0);
  }
}

TEST(Constant, AlwaysSameLevel) {
  const Constant pat(DataSize::tracks(1234.0));
  EXPECT_DOUBLE_EQ(pat.at(0).count(), 1234.0);
  EXPECT_DOUBLE_EQ(pat.at(99999).count(), 1234.0);
}

TEST(Step, JumpsAtConfiguredPeriod) {
  const Step pat(DataSize::tracks(100.0), DataSize::tracks(900.0), 10);
  EXPECT_DOUBLE_EQ(pat.at(9).count(), 100.0);
  EXPECT_DOUBLE_EQ(pat.at(10).count(), 900.0);
  EXPECT_DOUBLE_EQ(pat.at(11).count(), 900.0);
}

TEST(Sine, OscillatesWithinBoundsAndPeriod) {
  const Sine pat(params(), 40);
  EXPECT_NEAR(pat.at(0).count(), 500.0, 1e-9);     // trough at phase 0
  EXPECT_NEAR(pat.at(20).count(), 10000.0, 1e-9);  // crest at half cycle
  EXPECT_NEAR(pat.at(40).count(), 500.0, 1e-9);    // full cycle
  for (std::uint64_t c = 0; c < 100; ++c) {
    EXPECT_GE(pat.at(c).count(), 500.0 - 1e-9);
    EXPECT_LE(pat.at(c).count(), 10000.0 + 1e-9);
  }
}

TEST(RandomWalk, StaysWithinBoundsAndIsDeterministic) {
  const RandomWalk a(params(), DataSize::tracks(400.0), Xoshiro256(3));
  const RandomWalk b(params(), DataSize::tracks(400.0), Xoshiro256(3));
  for (std::uint64_t c = 0; c < 200; ++c) {
    EXPECT_GE(a.at(c).count(), 500.0);
    EXPECT_LE(a.at(c).count(), 10000.0);
    EXPECT_DOUBLE_EQ(a.at(c).count(), b.at(c).count());
  }
}

TEST(RandomWalk, StepsBoundedByMaxStep) {
  const RandomWalk pat(params(), DataSize::tracks(250.0), Xoshiro256(7));
  for (std::uint64_t c = 0; c < 100; ++c) {
    EXPECT_LE(std::abs(pat.at(c + 1).count() - pat.at(c).count()),
              250.0 + 1e-9);
  }
}

TEST(RandomWalk, RandomAccessMatchesSequential) {
  const RandomWalk pat(params(), DataSize::tracks(300.0), Xoshiro256(9));
  const double at50 = pat.at(50).count();  // forces lazy extension
  EXPECT_DOUBLE_EQ(pat.at(50).count(), at50);
  EXPECT_DOUBLE_EQ(pat.at(25).count(), pat.at(25).count());
}

TEST(Burst, BaselineWithPeriodicRaids) {
  const Burst pat(DataSize::tracks(200.0), DataSize::tracks(5000.0), 10, 3);
  EXPECT_DOUBLE_EQ(pat.at(0).count(), 5000.0);  // raid periods 0-2
  EXPECT_DOUBLE_EQ(pat.at(2).count(), 5000.0);
  EXPECT_DOUBLE_EQ(pat.at(3).count(), 200.0);
  EXPECT_DOUBLE_EQ(pat.at(9).count(), 200.0);
  EXPECT_DOUBLE_EQ(pat.at(10).count(), 5000.0);  // next raid
}

TEST(Sequence, PlaysSegmentsInOrderWithLocalIndices) {
  const Constant calm(DataSize::tracks(100.0));
  const IncreasingRamp climb(params(100.0, 1000.0, 10));
  const Constant raid(DataSize::tracks(5000.0));
  const Sequence seq({{&calm, 5}, {&climb, 10}, {&raid, 0}});
  EXPECT_DOUBLE_EQ(seq.at(0).count(), 100.0);
  EXPECT_DOUBLE_EQ(seq.at(4).count(), 100.0);
  // Segment 2 starts with a *local* index of 0.
  EXPECT_DOUBLE_EQ(seq.at(5).count(), 100.0);   // ramp start
  EXPECT_DOUBLE_EQ(seq.at(10).count(), 550.0);  // ramp halfway (local 5)
  // Final segment holds forever.
  EXPECT_DOUBLE_EQ(seq.at(15).count(), 5000.0);
  EXPECT_DOUBLE_EQ(seq.at(1000).count(), 5000.0);
}

TEST(Sequence, SingleSegmentDegeneratesToItsPattern) {
  const Constant only(DataSize::tracks(42.0));
  const Sequence seq({{&only, 0}});
  EXPECT_DOUBLE_EQ(seq.at(0).count(), 42.0);
  EXPECT_DOUBLE_EQ(seq.at(99).count(), 42.0);
}

TEST(SequenceDeathTest, RejectsEmpty) {
  EXPECT_DEATH(Sequence({}), "at least one segment");
}

TEST(Jittered, ZeroSigmaIsIdentity) {
  const Constant base(DataSize::tracks(1000.0));
  const Jittered pat(base, 0.0, 7);
  for (std::uint64_t c = 0; c < 20; ++c) {
    EXPECT_DOUBLE_EQ(pat.at(c).count(), 1000.0);
  }
}

TEST(Jittered, PureFunctionOfPeriodAndSeed) {
  const Constant base(DataSize::tracks(1000.0));
  const Jittered a(base, 0.3, 7);
  const Jittered b(base, 0.3, 7);
  for (std::uint64_t c = 0; c < 50; ++c) {
    EXPECT_DOUBLE_EQ(a.at(c).count(), b.at(c).count());
    EXPECT_DOUBLE_EQ(a.at(c).count(), a.at(c).count());  // random access
  }
}

TEST(Jittered, DifferentSeedsDiffer) {
  const Constant base(DataSize::tracks(1000.0));
  const Jittered a(base, 0.3, 7);
  const Jittered b(base, 0.3, 8);
  int diff = 0;
  for (std::uint64_t c = 0; c < 50; ++c) {
    diff += a.at(c).count() != b.at(c).count() ? 1 : 0;
  }
  EXPECT_GT(diff, 45);
}

TEST(Jittered, UnitMeanMultiplier) {
  const Constant base(DataSize::tracks(1000.0));
  const Jittered pat(base, 0.25, 11);
  double sum = 0.0;
  const int n = 20000;
  for (std::uint64_t c = 0; c < n; ++c) {
    const double v = pat.at(c).count();
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 1000.0, 15.0);
}

TEST(Jittered, NamePropagatesBase) {
  const Constant base(DataSize::tracks(1.0));
  EXPECT_EQ(Jittered(base, 0.1, 1).name(), "constant+jitter");
}

TEST(MakeFig8Pattern, BuildsAllThreeShapes) {
  const RampParams p = params();
  EXPECT_EQ(makeFig8Pattern("increasing", p)->name(), "increasing-ramp");
  EXPECT_EQ(makeFig8Pattern("decreasing", p)->name(), "decreasing-ramp");
  EXPECT_EQ(makeFig8Pattern("triangular", p)->name(), "triangular");
}

TEST(MakeFig8PatternDeathTest, UnknownNameAsserts) {
  EXPECT_DEATH(makeFig8Pattern("sawtooth", params()), "unknown");
}

// Property: every Fig. 8 pattern respects [min, max] for all periods.
class Fig8Bounds : public ::testing::TestWithParam<const char*> {};

TEST_P(Fig8Bounds, AlwaysWithinEnvelope) {
  const auto pat = makeFig8Pattern(GetParam(), params(250.0, 17000.0, 25));
  for (std::uint64_t c = 0; c < 300; ++c) {
    EXPECT_GE(pat->at(c).count(), 250.0);
    EXPECT_LE(pat->at(c).count(), 17000.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, Fig8Bounds,
                         ::testing::Values("increasing", "decreasing",
                                           "triangular"));

}  // namespace
}  // namespace rtdrm::workload
