// Generator property suite: the Pareto arrivals really are heavy-tailed
// with the configured index (Hill estimator over a large fixed-seed
// sample), the surge generator's cross-sensor correlation follows its join
// probability, and — the load-bearing contract — every generator is a pure
// random-access function of (seed, indices): values are identical whatever
// order or worker-thread count evaluates them, and a fixed seed replays
// the exact pinned values forever.
#include "workload/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/parallel.hpp"
#include "net/ethernet.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::workload {
namespace {

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  const auto n = static_cast<double>(a.size());
  double ma = 0.0;
  double mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  return cov / std::sqrt(va * vb);
}

TEST(ParetoArrivals, HillEstimatorRecoversTheTailIndex) {
  // The Lomax excess has survival (1 + x/scale)^-alpha, so the upper order
  // statistics are asymptotically Pareto(alpha): the Hill estimator over
  // the top k of a large sample must land near the configured index.
  ParetoParams p;
  p.tail_index = 1.5;
  const ParetoArrivals gen(p, 7);
  const std::size_t n = 20000;
  std::vector<double> excess(n);
  for (std::size_t i = 0; i < n; ++i) {
    excess[i] = gen.at(i).count() - p.floor.count();
    ASSERT_GT(excess[i], 0.0);
  }
  std::sort(excess.begin(), excess.end(), std::greater<>());
  const std::size_t k = 500;
  double log_sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    log_sum += std::log(excess[i] / excess[k]);
  }
  const double alpha_hat = static_cast<double>(k) / log_sum;
  EXPECT_NEAR(alpha_hat, p.tail_index, 0.25);
}

TEST(ParetoArrivals, FloorAndCapBoundEveryDraw) {
  ParetoParams p;
  p.cap = DataSize::tracks(4000.0);
  const ParetoArrivals gen(p, 99);
  bool cap_hit = false;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const double v = gen.at(i).count();
    EXPECT_GE(v, p.floor.count());
    EXPECT_LE(v, p.cap.count());
    cap_hit = cap_hit || v == p.cap.count();
  }
  // alpha = 1.5, scale = 1500: P(excess > 3500) ~ 9%, so a 5000-draw
  // sample certainly exercises the ceiling.
  EXPECT_TRUE(cap_hit);
}

TEST(CorrelatedSurge, JoinProbabilityControlsCrossSensorCorrelation) {
  const std::size_t periods = 2000;
  auto series = [&](double join, std::size_t sensor) {
    SurgeParams p;
    p.join_probability = join;
    const CorrelatedSurge gen(p, 2, 31);
    std::vector<double> out(periods);
    for (std::size_t c = 0; c < periods; ++c) {
      out[c] = gen.sensorAt(sensor, c).count();
    }
    return out;
  };
  const double high = pearson(series(0.95, 0), series(0.95, 1));
  const double low = pearson(series(0.15, 0), series(0.15, 1));
  EXPECT_GT(high, 0.75);
  EXPECT_LT(low, 0.5);
  EXPECT_GT(high, low + 0.3);
}

TEST(CorrelatedSurge, FullJoinMakesSensorsSpikeInLockstep) {
  SurgeParams p;
  p.join_probability = 1.0;
  const CorrelatedSurge gen(p, 3, 5);
  bool any_surge = false;
  for (std::uint64_t c = 0; c < 500; ++c) {
    const double s0 = gen.sensorAt(0, c).count();
    EXPECT_EQ(s0, gen.sensorAt(1, c).count()) << "period " << c;
    EXPECT_EQ(s0, gen.sensorAt(2, c).count()) << "period " << c;
    any_surge = any_surge || s0 > p.baseline.count();
  }
  EXPECT_TRUE(any_surge);
  // And the fused view is exactly the per-sensor sum.
  const auto fused = gen.fusedPattern();
  EXPECT_DOUBLE_EQ(fused->at(42).count(), 3.0 * gen.sensorAt(0, 42).count());
}

TEST(CorrelatedSurge, ZeroStartProbabilityIsFlatBaseline) {
  SurgeParams p;
  p.start_probability = 0.0;
  const CorrelatedSurge gen(p, 2, 11);
  for (std::uint64_t c = 0; c < 200; ++c) {
    EXPECT_DOUBLE_EQ(gen.sensorAt(0, c).count(), p.baseline.count());
  }
}

class GeneratorDeterminism : public ::testing::Test {
 protected:
  void TearDown() override { parallel::setThreads(0); }
};

TEST_F(GeneratorDeterminism, TablesByteIdenticalAcrossThreadCounts) {
  // Every draw is a pure function of (seed, indices), so filling a table
  // in parallel must be bit-identical at any worker count — the property
  // that lets sharded episodes and sweeps evaluate generators from any
  // shard without coordination.
  const std::size_t n = 4000;
  const ParetoArrivals pareto({}, 1234);
  const CorrelatedSurge surge({}, 4, 1234);
  const auto fused = surge.fusedPattern();

  auto fill = [&](unsigned threads) {
    parallel::setThreads(threads);
    std::vector<double> out(2 * n);
    parallelFor(n, [&](std::size_t i) {
      out[i] = pareto.at(i).count();
      out[n + i] = fused->at(i).count();
    });
    return out;
  };
  const std::vector<double> base = fill(1);
  for (const unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(base, fill(threads)) << threads << " threads";
  }
}

TEST_F(GeneratorDeterminism, EvaluationOrderNeverMatters) {
  const ParetoArrivals gen({}, 77);
  std::vector<double> forward(1000);
  std::vector<double> backward(1000);
  for (std::size_t i = 0; i < 1000; ++i) {
    forward[i] = gen.at(i).count();
  }
  for (std::size_t i = 1000; i-- > 0;) {
    backward[i] = gen.at(i).count();
  }
  EXPECT_EQ(forward, backward);
}

TEST_F(GeneratorDeterminism, SeedReplayPinsExactValues) {
  // Frozen draws for seed 42: any change to the keyed-RNG derivation, the
  // inverse-transform path, or the surge window arithmetic shows up here
  // as a byte-level diff, the same way a golden trace would.
  const ParetoArrivals pareto({}, 42);
  EXPECT_DOUBLE_EQ(pareto.at(0).count(), 1546.3067141080153);
  EXPECT_DOUBLE_EQ(pareto.at(1).count(), 1695.0726540100075);
  EXPECT_DOUBLE_EQ(pareto.at(7).count(), 1749.3327526502496);
  EXPECT_DOUBLE_EQ(pareto.at(123).count(), 2647.6631553149823);

  const CorrelatedSurge surge({}, 4, 42);
  const auto fused = surge.fusedPattern();
  EXPECT_DOUBLE_EQ(fused->at(0).count(), 4000.0);
  EXPECT_DOUBLE_EQ(fused->at(5).count(), 4000.0);
  EXPECT_DOUBLE_EQ(fused->at(17).count(), 4671.8464000000004);
  EXPECT_DOUBLE_EQ(surge.sensorAt(0, 5).count(), 1000.0);
}

TEST_F(GeneratorDeterminism, ContenderTrafficReplaysByteIdentically) {
  // Two fresh simulations, same config: identical post counts and
  // identical payload totals on the wire (endpoints and jitter are pure
  // draws, never consuming shared RNG state).
  auto run = [] {
    sim::Simulator sim;
    net::Ethernet net(sim, 5);
    ContenderConfig cc;
    cc.flows = 3;
    cc.period = SimDuration::millis(5.0);
    cc.seed = 9;
    ContenderTraffic traffic(sim, net, 5, cc);
    traffic.start();
    sim.runUntil(SimTime::millis(120.0));
    return std::pair<std::uint64_t, double>{traffic.messagesPosted(),
                                            net.payloadBytesCarried()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_GT(a.first, 0u);
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

}  // namespace
}  // namespace rtdrm::workload
