#include "fault/plan.hpp"

#include <gtest/gtest.h>

namespace rtdrm::fault {
namespace {

TEST(FaultPlan, DefaultPlanIsEmptyAndValid) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.entryCount(), 0u);
  plan.validate(4);
}

TEST(FaultPlan, EntryCountSumsAllKinds) {
  FaultPlan plan;
  plan.crashes.push_back(
      CrashFault{ProcessorId{1}, SimTime::millis(10.0), std::nullopt});
  plan.throttles.push_back(ThrottleFault{
      ProcessorId{0}, SimTime::millis(5.0), SimTime::millis(20.0), 0.5});
  plan.links.push_back(LinkFault{kAnyNode, kAnyNode, SimTime::millis(0.0),
                                 SimTime::millis(50.0), 0.2, 0.1});
  plan.clock_outages.push_back(
      ClockOutage{SimTime::millis(30.0), SimTime::millis(60.0)});
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.entryCount(), 4u);
  plan.validate(2);
}

TEST(FaultPlan, WildcardLinkEndpointsAreValid) {
  FaultPlan plan;
  plan.links.push_back(LinkFault{kAnyNode, ProcessorId{3},
                                 SimTime::millis(1.0), SimTime::millis(2.0),
                                 kMaxLossProbability, 1.0});
  plan.validate(4);
}

TEST(FaultPlanDeathTest, CrashNodeOutOfRange) {
  FaultPlan plan;
  plan.crashes.push_back(
      CrashFault{ProcessorId{4}, SimTime::millis(10.0), std::nullopt});
  EXPECT_DEATH(plan.validate(4), "crash node out of range");
}

TEST(FaultPlanDeathTest, RestartBeforeCrash) {
  FaultPlan plan;
  plan.crashes.push_back(
      CrashFault{ProcessorId{0}, SimTime::millis(10.0), SimTime::millis(5.0)});
  EXPECT_DEATH(plan.validate(2), "restart must come after the crash");
}

TEST(FaultPlanDeathTest, EmptyThrottleWindow) {
  FaultPlan plan;
  plan.throttles.push_back(ThrottleFault{
      ProcessorId{0}, SimTime::millis(10.0), SimTime::millis(10.0), 0.5});
  EXPECT_DEATH(plan.validate(2), "empty throttle window");
}

TEST(FaultPlanDeathTest, NonPositiveThrottleFactor) {
  FaultPlan plan;
  plan.throttles.push_back(ThrottleFault{
      ProcessorId{0}, SimTime::millis(1.0), SimTime::millis(2.0), 0.0});
  EXPECT_DEATH(plan.validate(2), "throttle factor must be positive");
}

TEST(FaultPlanDeathTest, LossAboveRetransmissionBound) {
  FaultPlan plan;
  plan.links.push_back(LinkFault{kAnyNode, kAnyNode, SimTime::millis(0.0),
                                 SimTime::millis(1.0),
                                 kMaxLossProbability + 0.01, 0.0});
  EXPECT_DEATH(plan.validate(2), "loss probability");
}

TEST(FaultPlanDeathTest, EmptyClockOutageWindow) {
  FaultPlan plan;
  plan.clock_outages.push_back(
      ClockOutage{SimTime::millis(5.0), SimTime::millis(5.0)});
  EXPECT_DEATH(plan.validate(2), "empty clock outage window");
}

}  // namespace
}  // namespace rtdrm::fault
