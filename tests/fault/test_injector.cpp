#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "net/clock_sync.hpp"
#include "net/ethernet.hpp"
#include "node/cluster.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::fault {
namespace {

net::EthernetConfig wireOnly() {
  net::EthernetConfig cfg;
  cfg.host_ns_per_byte = 0.0;
  cfg.propagation = SimDuration::zero();
  return cfg;
}

struct Recorder final : FaultObserver {
  void onCrash(ProcessorId node, SimTime at) override {
    crashes.push_back({node, at});
  }
  void onRestart(ProcessorId node, SimTime at) override {
    restarts.push_back({node, at});
  }
  std::vector<std::pair<ProcessorId, SimTime>> crashes;
  std::vector<std::pair<ProcessorId, SimTime>> restarts;
};

TEST(FaultInjector, CrashAndRestartFlipNodeStateAtScheduledTimes) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 3);
  FaultPlan plan;
  plan.crashes.push_back(
      CrashFault{ProcessorId{1}, SimTime::millis(50.0), SimTime::millis(150.0)});
  FaultInjector injector(sim, cluster, nullptr, nullptr, std::move(plan));
  Recorder rec;
  injector.setObserver(&rec);
  injector.arm();

  sim.runUntil(SimTime::millis(49.0));
  EXPECT_TRUE(cluster.isUp(ProcessorId{1}));
  sim.runUntil(SimTime::millis(60.0));
  EXPECT_FALSE(cluster.isUp(ProcessorId{1}));
  EXPECT_EQ(cluster.upCount(), 2u);
  sim.runUntil(SimTime::millis(200.0));
  EXPECT_TRUE(cluster.isUp(ProcessorId{1}));
  EXPECT_EQ(cluster.upCount(), 3u);

  EXPECT_EQ(injector.crashesInjected(), 1u);
  EXPECT_EQ(injector.restartsInjected(), 1u);
  ASSERT_EQ(rec.crashes.size(), 1u);
  EXPECT_EQ(rec.crashes[0].first, ProcessorId{1});
  EXPECT_DOUBLE_EQ(rec.crashes[0].second.ms(), 50.0);
  ASSERT_EQ(rec.restarts.size(), 1u);
  EXPECT_DOUBLE_EQ(rec.restarts[0].second.ms(), 150.0);
  injector.setObserver(nullptr);
}

TEST(FaultInjector, CrashAbortsResidentJobsSilently) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 2);
  FaultPlan plan;
  plan.crashes.push_back(
      CrashFault{ProcessorId{0}, SimTime::millis(5.0), std::nullopt});
  FaultInjector injector(sim, cluster, nullptr, nullptr, std::move(plan));
  injector.arm();
  bool completed = false;
  cluster.processor(ProcessorId{0})
      .submit(node::Job{SimDuration::millis(20.0),
                        [&] { completed = true; }, "victim"});
  sim.runAll();
  EXPECT_FALSE(completed);
  EXPECT_EQ(cluster.processor(ProcessorId{0}).jobsAborted(), 1u);
}

TEST(FaultInjector, ThrottleWindowChangesSpeedFactor) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 2);
  FaultPlan plan;
  plan.throttles.push_back(ThrottleFault{
      ProcessorId{0}, SimTime::millis(10.0), SimTime::millis(30.0), 0.5});
  FaultInjector injector(sim, cluster, nullptr, nullptr, std::move(plan));
  injector.arm();

  sim.runUntil(SimTime::millis(9.0));
  EXPECT_DOUBLE_EQ(cluster.processor(ProcessorId{0}).speedFactor(), 1.0);
  sim.runUntil(SimTime::millis(20.0));
  EXPECT_DOUBLE_EQ(cluster.processor(ProcessorId{0}).speedFactor(), 0.5);
  sim.runUntil(SimTime::millis(40.0));
  EXPECT_DOUBLE_EQ(cluster.processor(ProcessorId{0}).speedFactor(), 1.0);
  EXPECT_EQ(injector.throttleEdges(), 2u);
}

TEST(FaultInjector, ClockOutageSkipsSyncRounds) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 3);
  net::ClockSyncConfig ccfg;
  ccfg.sync_period = SimDuration::millis(10.0);
  net::ClockFabric clocks(sim, 3, Xoshiro256(11), ccfg);
  FaultPlan plan;
  plan.clock_outages.push_back(
      ClockOutage{SimTime::millis(15.0), SimTime::millis(55.0)});
  FaultInjector injector(sim, cluster, nullptr, &clocks, std::move(plan));
  injector.arm();
  clocks.startSync();
  sim.runUntil(SimTime::millis(100.0));
  // Rounds at 20/30/40/50 ms fall inside the outage window.
  EXPECT_EQ(clocks.syncRoundsSkipped(), 4u);
}

TEST(FaultInjector, LossNeverSuppressesDeliveryAndReplaysIdentically) {
  auto episode = [](std::uint64_t plan_seed, std::uint64_t* lost,
                    std::uint64_t* dup) {
    sim::Simulator sim;
    node::Cluster cluster(sim, 2);
    net::Ethernet net(sim, 2, wireOnly());
    FaultPlan plan;
    plan.seed = plan_seed;
    plan.links.push_back(LinkFault{kAnyNode, kAnyNode, SimTime::zero(),
                                   SimTime::seconds(10.0),
                                   kMaxLossProbability, 0.25});
    FaultInjector injector(sim, cluster, &net, nullptr, std::move(plan));
    injector.arm();
    std::uint64_t delivered = 0;
    for (int i = 0; i < 40; ++i) {
      net.send(net::Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(200.0),
                            "m", [&](const net::MessageReceipt&) {
                              ++delivered;
                            }});
    }
    sim.runAll();
    *lost = net.framesLost();
    *dup = net.framesDuplicated();
    EXPECT_EQ(delivered, 40u);  // loss only delays, never suppresses
    EXPECT_EQ(net.messagesDelivered(), 40u);
    EXPECT_GT(net.framesLost(), 0u);
  };
  std::uint64_t lost_a = 0, dup_a = 0, lost_b = 0, dup_b = 0, lost_c = 0,
                dup_c = 0;
  episode(7, &lost_a, &dup_a);
  episode(7, &lost_b, &dup_b);
  episode(8, &lost_c, &dup_c);
  EXPECT_EQ(lost_a, lost_b);  // same plan seed => byte-identical faults
  EXPECT_EQ(dup_a, dup_b);
  EXPECT_TRUE(lost_a != lost_c || dup_a != dup_c);  // seed actually matters
}

TEST(FaultInjector, CertainDuplicationIsPureAccounting) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 2);
  net::Ethernet net(sim, 2, wireOnly());
  FaultPlan plan;
  plan.links.push_back(LinkFault{ProcessorId{0}, ProcessorId{1},
                                 SimTime::zero(), SimTime::seconds(1.0), 0.0,
                                 1.0});
  FaultInjector injector(sim, cluster, &net, nullptr, std::move(plan));
  injector.arm();
  std::uint64_t delivered = 0;
  net.send(net::Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(1500.0),
                        "m",
                        [&](const net::MessageReceipt&) { ++delivered; }});
  sim.runAll();
  EXPECT_EQ(delivered, 1u);  // the receiver discards the duplicate
  EXPECT_EQ(net.messagesDelivered(), 1u);
  EXPECT_EQ(net.framesDuplicated(), 1u);
  // The duplicate occupies a second wire slot: 2 x (1500 + 38) B.
  EXPECT_NEAR(net.busyTime().ms(), 2.0 * 1538.0 * 8.0 / 100e6 * 1000.0,
              1e-9);
}

TEST(FaultInjector, EmptyPlanHasZeroFootprint) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 2);
  net::Ethernet net(sim, 2, wireOnly());
  FaultInjector injector(sim, cluster, &net, nullptr, FaultPlan{});
  injector.arm();
  double with_injector = -1.0;
  net.send(net::Message{ProcessorId{0}, ProcessorId{1}, Bytes::of(1500.0),
                        "m", [&](const net::MessageReceipt& r) {
                          with_injector = r.delivered.ms();
                        }});
  sim.runAll();
  EXPECT_EQ(injector.crashesInjected(), 0u);
  EXPECT_EQ(injector.throttleEdges(), 0u);
  EXPECT_EQ(net.framesLost(), 0u);
  EXPECT_EQ(net.framesDuplicated(), 0u);
  // Same timing as a run with no injector at all.
  EXPECT_NEAR(with_injector, 1538.0 * 8.0 / 100e6 * 1000.0, 1e-9);
}

}  // namespace
}  // namespace rtdrm::fault
