#include "fault/detector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/ethernet.hpp"
#include "node/cluster.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::fault {
namespace {

net::EthernetConfig fastWire() {
  net::EthernetConfig cfg;
  cfg.host_ns_per_byte = 0.0;
  cfg.propagation = SimDuration::micros(5.0);
  return cfg;
}

DetectorConfig tightConfig() {
  DetectorConfig cfg;
  cfg.interval = SimDuration::millis(20.0);
  cfg.timeout = SimDuration::millis(50.0);
  cfg.max_retries = 2;
  cfg.retry_backoff = SimDuration::millis(5.0);
  return cfg;
}

TEST(FailureDetector, QuietWireNeverDeclaresDead) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 4);
  net::Ethernet net(sim, 4, fastWire());
  std::vector<ProcessorId> deaths;
  FailureDetector detector(sim, cluster, net, tightConfig(),
                           [&](ProcessorId p) { deaths.push_back(p); });
  detector.start(sim.now());
  sim.runUntil(SimTime::seconds(2.0));
  detector.stop();
  EXPECT_TRUE(deaths.empty());
  EXPECT_EQ(detector.declaredDead(), 0u);
  EXPECT_GT(detector.heartbeatsSent(), 0u);
  EXPECT_GT(detector.acksReceived(), 0u);
  for (std::uint32_t i = 1; i < 4; ++i) {
    EXPECT_TRUE(detector.believesUp(ProcessorId{i}));
  }
}

TEST(FailureDetector, DetectsCrashWithinWorstCaseBudget) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 3);
  net::Ethernet net(sim, 3, fastWire());
  const DetectorConfig cfg = tightConfig();
  double declared_at = -1.0;
  ProcessorId declared{0};
  FailureDetector detector(sim, cluster, net, cfg, [&](ProcessorId p) {
    declared = p;
    declared_at = sim.now().ms();
  });
  detector.start(sim.now());
  const double crash_ms = 100.0;
  sim.scheduleAt(SimTime::millis(crash_ms),
                 [&] { cluster.setNodeUp(ProcessorId{1}, false); });
  sim.runUntil(SimTime::seconds(1.0));
  detector.stop();

  ASSERT_EQ(declared, ProcessorId{1});
  EXPECT_EQ(detector.declaredDead(), 1u);
  EXPECT_FALSE(detector.believesUp(ProcessorId{1}));
  EXPECT_TRUE(detector.believesUp(ProcessorId{2}));
  // Worst case on a quiet wire: staleness timeout + retries with backoff
  // + one probe interval of phase.
  const double budget = cfg.timeout.ms() +
                        static_cast<double>(cfg.max_retries + 1) *
                            cfg.interval.ms() +
                        static_cast<double>(cfg.max_retries) *
                            cfg.retry_backoff.ms();
  EXPECT_GT(declared_at, crash_ms);
  EXPECT_LE(declared_at - crash_ms, budget);
  EXPECT_GT(detector.retriesSent(), 0u);
}

TEST(FailureDetector, RestartNoticedByNextAck) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 3);
  net::Ethernet net(sim, 3, fastWire());
  const DetectorConfig cfg = tightConfig();
  std::vector<double> downs, ups;
  FailureDetector detector(
      sim, cluster, net, cfg,
      [&](ProcessorId) { downs.push_back(sim.now().ms()); },
      [&](ProcessorId) { ups.push_back(sim.now().ms()); });
  detector.start(sim.now());
  sim.scheduleAt(SimTime::millis(100.0),
                 [&] { cluster.setNodeUp(ProcessorId{1}, false); });
  sim.scheduleAt(SimTime::millis(500.0),
                 [&] { cluster.setNodeUp(ProcessorId{1}, true); });
  sim.runUntil(SimTime::seconds(1.0));
  detector.stop();

  ASSERT_EQ(downs.size(), 1u);
  ASSERT_EQ(ups.size(), 1u);
  EXPECT_GT(ups[0], 500.0);
  EXPECT_LE(ups[0] - 500.0, 2.0 * cfg.interval.ms());
  EXPECT_TRUE(detector.believesUp(ProcessorId{1}));
  EXPECT_EQ(detector.declaredDead(), 1u);
  EXPECT_EQ(detector.declaredRecovered(), 1u);
}

TEST(FailureDetector, TargetModeMonitorsNonNodeEndpoints) {
  sim::Simulator sim;
  net::Ethernet net(sim, 4, fastWire());
  const DetectorConfig cfg = tightConfig();
  // Two "manager endpoint" targets with caller-chosen ids, hosted on nodes
  // 0 (the detector's own home — loopback heartbeat) and 2, with liveness
  // bits independent of any cluster.
  bool ep_up[2] = {true, true};
  std::vector<std::uint32_t> downs, ups;
  std::vector<DetectorTarget> targets;
  targets.push_back(
      DetectorTarget{7, ProcessorId{0}, [&ep_up] { return ep_up[0]; }});
  targets.push_back(
      DetectorTarget{9, ProcessorId{2}, [&ep_up] { return ep_up[1]; }});
  FailureDetector detector(
      sim, net, cfg, std::move(targets),
      [&](std::uint32_t id) { downs.push_back(id); },
      [&](std::uint32_t id) { ups.push_back(id); });
  EXPECT_EQ(detector.targetCount(), 2u);
  detector.start(sim.now());
  sim.scheduleAt(SimTime::millis(100.0), [&ep_up] { ep_up[1] = false; });
  sim.scheduleAt(SimTime::millis(500.0), [&ep_up] { ep_up[1] = true; });
  sim.runUntil(SimTime::seconds(1.0));
  detector.stop();

  // The same timeout/retry/backoff machinery as node mode: exactly one
  // down declaration (id 9), then recovery at its next ack; the co-hosted
  // target 7 never flaps.
  ASSERT_EQ(downs.size(), 1u);
  EXPECT_EQ(downs[0], 9u);
  ASSERT_EQ(ups.size(), 1u);
  EXPECT_EQ(ups[0], 9u);
  EXPECT_TRUE(detector.believesTargetUp(7));
  EXPECT_TRUE(detector.believesTargetUp(9));
  EXPECT_EQ(detector.declaredDead(), 1u);
  EXPECT_EQ(detector.declaredRecovered(), 1u);
}

TEST(FailureDetector, TargetModeDetectionBudgetMatchesNodeMode) {
  sim::Simulator sim;
  net::Ethernet net(sim, 2, fastWire());
  const DetectorConfig cfg = tightConfig();
  bool up = true;
  double declared_at = -1.0;
  std::vector<DetectorTarget> targets;
  targets.push_back(DetectorTarget{3, ProcessorId{1}, [&up] { return up; }});
  FailureDetector detector(
      sim, net, cfg, std::move(targets),
      [&](std::uint32_t) { declared_at = sim.now().ms(); });
  detector.start(sim.now());
  const double crash_ms = 100.0;
  sim.scheduleAt(SimTime::millis(crash_ms), [&up] { up = false; });
  sim.runUntil(SimTime::seconds(1.0));
  detector.stop();

  ASSERT_GT(declared_at, crash_ms);
  const double budget = cfg.timeout.ms() +
                        static_cast<double>(cfg.max_retries + 1) *
                            cfg.interval.ms() +
                        static_cast<double>(cfg.max_retries) *
                            cfg.retry_backoff.ms();
  EXPECT_LE(declared_at - crash_ms, budget);
}

TEST(FailureDetector, BeliefLagsGroundTruth) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 2);
  net::Ethernet net(sim, 2, fastWire());
  FailureDetector detector(sim, cluster, net, tightConfig(),
                           [](ProcessorId) {});
  detector.start(sim.now());
  sim.scheduleAt(SimTime::millis(100.0),
                 [&] { cluster.setNodeUp(ProcessorId{1}, false); });
  // Just after the crash the detector still believes the node is up: the
  // staleness window has not elapsed.
  sim.runUntil(SimTime::millis(110.0));
  EXPECT_FALSE(cluster.isUp(ProcessorId{1}));
  EXPECT_TRUE(detector.believesUp(ProcessorId{1}));
  sim.runUntil(SimTime::seconds(1.0));
  EXPECT_FALSE(detector.believesUp(ProcessorId{1}));
  detector.stop();
}

}  // namespace
}  // namespace rtdrm::fault
