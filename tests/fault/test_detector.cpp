#include "fault/detector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/ethernet.hpp"
#include "node/cluster.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::fault {
namespace {

net::EthernetConfig fastWire() {
  net::EthernetConfig cfg;
  cfg.host_ns_per_byte = 0.0;
  cfg.propagation = SimDuration::micros(5.0);
  return cfg;
}

DetectorConfig tightConfig() {
  DetectorConfig cfg;
  cfg.interval = SimDuration::millis(20.0);
  cfg.timeout = SimDuration::millis(50.0);
  cfg.max_retries = 2;
  cfg.retry_backoff = SimDuration::millis(5.0);
  return cfg;
}

TEST(FailureDetector, QuietWireNeverDeclaresDead) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 4);
  net::Ethernet net(sim, 4, fastWire());
  std::vector<ProcessorId> deaths;
  FailureDetector detector(sim, cluster, net, tightConfig(),
                           [&](ProcessorId p) { deaths.push_back(p); });
  detector.start(sim.now());
  sim.runUntil(SimTime::seconds(2.0));
  detector.stop();
  EXPECT_TRUE(deaths.empty());
  EXPECT_EQ(detector.declaredDead(), 0u);
  EXPECT_GT(detector.heartbeatsSent(), 0u);
  EXPECT_GT(detector.acksReceived(), 0u);
  for (std::uint32_t i = 1; i < 4; ++i) {
    EXPECT_TRUE(detector.believesUp(ProcessorId{i}));
  }
}

TEST(FailureDetector, DetectsCrashWithinWorstCaseBudget) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 3);
  net::Ethernet net(sim, 3, fastWire());
  const DetectorConfig cfg = tightConfig();
  double declared_at = -1.0;
  ProcessorId declared{0};
  FailureDetector detector(sim, cluster, net, cfg, [&](ProcessorId p) {
    declared = p;
    declared_at = sim.now().ms();
  });
  detector.start(sim.now());
  const double crash_ms = 100.0;
  sim.scheduleAt(SimTime::millis(crash_ms),
                 [&] { cluster.setNodeUp(ProcessorId{1}, false); });
  sim.runUntil(SimTime::seconds(1.0));
  detector.stop();

  ASSERT_EQ(declared, ProcessorId{1});
  EXPECT_EQ(detector.declaredDead(), 1u);
  EXPECT_FALSE(detector.believesUp(ProcessorId{1}));
  EXPECT_TRUE(detector.believesUp(ProcessorId{2}));
  // Worst case on a quiet wire: staleness timeout + retries with backoff
  // + one probe interval of phase.
  const double budget = cfg.timeout.ms() +
                        static_cast<double>(cfg.max_retries + 1) *
                            cfg.interval.ms() +
                        static_cast<double>(cfg.max_retries) *
                            cfg.retry_backoff.ms();
  EXPECT_GT(declared_at, crash_ms);
  EXPECT_LE(declared_at - crash_ms, budget);
  EXPECT_GT(detector.retriesSent(), 0u);
}

TEST(FailureDetector, RestartNoticedByNextAck) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 3);
  net::Ethernet net(sim, 3, fastWire());
  const DetectorConfig cfg = tightConfig();
  std::vector<double> downs, ups;
  FailureDetector detector(
      sim, cluster, net, cfg,
      [&](ProcessorId) { downs.push_back(sim.now().ms()); },
      [&](ProcessorId) { ups.push_back(sim.now().ms()); });
  detector.start(sim.now());
  sim.scheduleAt(SimTime::millis(100.0),
                 [&] { cluster.setNodeUp(ProcessorId{1}, false); });
  sim.scheduleAt(SimTime::millis(500.0),
                 [&] { cluster.setNodeUp(ProcessorId{1}, true); });
  sim.runUntil(SimTime::seconds(1.0));
  detector.stop();

  ASSERT_EQ(downs.size(), 1u);
  ASSERT_EQ(ups.size(), 1u);
  EXPECT_GT(ups[0], 500.0);
  EXPECT_LE(ups[0] - 500.0, 2.0 * cfg.interval.ms());
  EXPECT_TRUE(detector.believesUp(ProcessorId{1}));
  EXPECT_EQ(detector.declaredDead(), 1u);
  EXPECT_EQ(detector.declaredRecovered(), 1u);
}

TEST(FailureDetector, BeliefLagsGroundTruth) {
  sim::Simulator sim;
  node::Cluster cluster(sim, 2);
  net::Ethernet net(sim, 2, fastWire());
  FailureDetector detector(sim, cluster, net, tightConfig(),
                           [](ProcessorId) {});
  detector.start(sim.now());
  sim.scheduleAt(SimTime::millis(100.0),
                 [&] { cluster.setNodeUp(ProcessorId{1}, false); });
  // Just after the crash the detector still believes the node is up: the
  // staleness window has not elapsed.
  sim.runUntil(SimTime::millis(110.0));
  EXPECT_FALSE(cluster.isUp(ProcessorId{1}));
  EXPECT_TRUE(detector.believesUp(ProcessorId{1}));
  sim.runUntil(SimTime::seconds(1.0));
  EXPECT_FALSE(detector.believesUp(ProcessorId{1}));
  detector.stop();
}

}  // namespace
}  // namespace rtdrm::fault
