#include "apps/dynbench.hpp"

#include <gtest/gtest.h>

#include "apps/scenario.hpp"

namespace rtdrm::apps {
namespace {

TEST(AawTaskSpec, MatchesTable1Structure) {
  const task::TaskSpec spec = makeAawTaskSpec();
  EXPECT_EQ(spec.stageCount(), 5u);
  EXPECT_EQ(spec.messages.size(), 4u);
  EXPECT_EQ(spec.period, SimDuration::seconds(1.0));
  EXPECT_EQ(spec.deadline, SimDuration::millis(990.0));
  std::size_t replicable = 0;
  for (const auto& st : spec.subtasks) {
    replicable += st.replicable ? 1 : 0;
  }
  EXPECT_EQ(replicable, 2u);
  EXPECT_TRUE(spec.subtasks[kFilterStage].replicable);
  EXPECT_TRUE(spec.subtasks[kEvalDecideStage].replicable);
  EXPECT_EQ(spec.subtasks[kFilterStage].name, "Filter");
  EXPECT_EQ(spec.subtasks[kEvalDecideStage].name, "EvalDecide");
}

TEST(AawTaskSpec, GroundTruthFromTable2IdleColumns) {
  const task::TaskSpec spec = makeAawTaskSpec();
  EXPECT_DOUBLE_EQ(spec.subtasks[kFilterStage].cost.alpha_ms, kFilterAlpha);
  EXPECT_DOUBLE_EQ(spec.subtasks[kFilterStage].cost.beta_ms, kFilterBeta);
  EXPECT_DOUBLE_EQ(spec.subtasks[kEvalDecideStage].cost.alpha_ms,
                   kEvalDecideAlpha);
  // Filter's demand at 1000 tracks: 0.118*100 + 0.984*10 ~ 21.65 ms.
  EXPECT_NEAR(
      spec.subtasks[kFilterStage].cost.demand(DataSize::tracks(1000.0)).ms(),
      21.65, 0.1);
}

TEST(AawTaskSpec, ParamsArePlumbed) {
  AawTaskParams p;
  p.period = SimDuration::millis(250.0);
  p.deadline = SimDuration::millis(200.0);
  p.bytes_per_track = 40.0;
  p.noise_sigma = 0.0;
  const task::TaskSpec spec = makeAawTaskSpec(p);
  EXPECT_EQ(spec.period, SimDuration::millis(250.0));
  EXPECT_DOUBLE_EQ(spec.messages[0].bytes_per_track, 40.0);
  EXPECT_DOUBLE_EQ(spec.subtasks[0].noise_sigma, 0.0);
}

TEST(EngagePathSpec, StructureAndRates) {
  const task::TaskSpec spec = makeEngagePathSpec();
  EXPECT_EQ(spec.stageCount(), 6u);
  EXPECT_EQ(spec.period, SimDuration::millis(500.0));
  EXPECT_LT(spec.deadline, spec.period);
  std::size_t replicable = 0;
  for (const auto& st : spec.subtasks) {
    replicable += st.replicable ? 1 : 0;
  }
  EXPECT_EQ(replicable, 3u);
}

TEST(SurveillancePathSpec, StructureAndRates) {
  const task::TaskSpec spec = makeSurveillancePathSpec();
  EXPECT_EQ(spec.stageCount(), 3u);
  EXPECT_EQ(spec.period, SimDuration::seconds(2.0));
  std::size_t replicable = 0;
  for (const auto& st : spec.subtasks) {
    replicable += st.replicable ? 1 : 0;
  }
  EXPECT_EQ(replicable, 1u);
}

TEST(AllPathSpecs, ValidateAndAreFeasibleAtLightLoad) {
  // Sum of stage demands at 500 tracks must fit comfortably within each
  // path's deadline — otherwise the initial placement could never work.
  for (const task::TaskSpec& spec :
       {makeAawTaskSpec(), makeEngagePathSpec(),
        makeSurveillancePathSpec()}) {
    double total = 0.0;
    for (const auto& st : spec.subtasks) {
      total += st.cost.demand(DataSize::tracks(500.0)).ms();
    }
    EXPECT_LT(total, 0.5 * spec.deadline.ms()) << spec.name;
  }
}

TEST(Scenario, WiresTable1Defaults) {
  ScenarioConfig cfg;
  Scenario scenario(cfg);
  EXPECT_EQ(scenario.cluster().size(), 6u);
  EXPECT_TRUE(scenario.cluster().hasBackgroundLoad());
  EXPECT_EQ(scenario.ethernet().config().rate, BitRate::mbps(100.0));
  // Ambient load generators are armed.
  EXPECT_GT(scenario.cluster().backgroundLoad(ProcessorId{0}).target().value(),
            0.0);
}

TEST(Scenario, AmbientLoadRealized) {
  ScenarioConfig cfg;
  cfg.ambient_load = Utilization::fraction(0.3);
  Scenario scenario(cfg);
  scenario.runFor(SimDuration::seconds(60.0));
  const auto& u = scenario.cluster().sampleUtilization();
  for (const auto& v : u) {
    EXPECT_NEAR(v.value(), 0.3, 0.06);
  }
}

TEST(Scenario, NodeSpeedsPlumbThroughToProcessors) {
  ScenarioConfig cfg;
  cfg.node_count = 2;
  cfg.ambient_load = Utilization::zero();
  cfg.node_speeds = {2.0, 0.5};
  Scenario scenario(cfg);
  double fast_done = -1.0;
  double slow_done = -1.0;
  auto& sim = scenario.sim();
  scenario.cluster().processor(ProcessorId{0})
      .submit(node::Job{SimDuration::millis(10.0),
                        [&] { fast_done = sim.now().ms(); }, "f"});
  scenario.cluster().processor(ProcessorId{1})
      .submit(node::Job{SimDuration::millis(10.0),
                        [&] { slow_done = sim.now().ms(); }, "s"});
  sim.runUntil(SimTime::millis(50.0));
  EXPECT_DOUBLE_EQ(fast_done, 5.0);
  EXPECT_DOUBLE_EQ(slow_done, 20.0);
}

TEST(Scenario, ClockSyncOptional) {
  ScenarioConfig cfg;
  cfg.start_clock_sync = false;
  Scenario scenario(cfg);
  scenario.runFor(SimDuration::seconds(30.0));
  EXPECT_EQ(scenario.clocks().preSyncOffsetStats().count(), 0u);
}

}  // namespace
}  // namespace rtdrm::apps
