#include "experiments/episode.hpp"

#include <gtest/gtest.h>

#include "apps/dynbench.hpp"
#include "experiments/model_store.hpp"

namespace rtdrm::experiments {
namespace {

// Shared fixture state: fit the models once for the whole file.
class EpisodeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = new task::TaskSpec(apps::makeAawTaskSpec());
    ModelFitConfig cfg = defaultModelFitConfig();
    cfg.exec.samples_per_point = 3;
    fitted_ = new FittedModelSet(fitAllModels(*spec_, cfg));
  }
  static void TearDownTestSuite() {
    delete fitted_;
    delete spec_;
  }

  static EpisodeConfig shortConfig() {
    EpisodeConfig cfg;
    cfg.periods = 40;
    return cfg;
  }

  static workload::RampParams ramp(double max_tracks) {
    workload::RampParams p;
    p.min_workload = DataSize::tracks(500.0);
    p.max_workload = DataSize::tracks(max_tracks);
    p.ramp_periods = 15;
    return p;
  }

  static task::TaskSpec* spec_;
  static FittedModelSet* fitted_;
};

task::TaskSpec* EpisodeTest::spec_ = nullptr;
FittedModelSet* EpisodeTest::fitted_ = nullptr;

TEST_F(EpisodeTest, MetricsAreWellFormed) {
  const workload::Triangular pat(ramp(6000.0));
  const EpisodeResult r = runEpisode(*spec_, pat, fitted_->models,
                                     AlgorithmKind::kPredictive,
                                     shortConfig());
  EXPECT_GE(r.missed_pct, 0.0);
  EXPECT_LE(r.missed_pct, 100.0);
  EXPECT_GT(r.cpu_pct, 0.0);
  EXPECT_LT(r.cpu_pct, 100.0);
  EXPECT_GE(r.net_pct, 0.0);
  EXPECT_GE(r.avg_replicas, 1.0);
  EXPECT_LE(r.avg_replicas, 6.0);
  EXPECT_GT(r.combined, 0.0);
  EXPECT_GE(r.metrics.missed_deadlines.total(), 38u);
}

TEST_F(EpisodeTest, DeterministicForSameSeed) {
  const workload::Triangular pat(ramp(6000.0));
  const EpisodeResult a = runEpisode(*spec_, pat, fitted_->models,
                                     AlgorithmKind::kPredictive,
                                     shortConfig());
  const EpisodeResult b = runEpisode(*spec_, pat, fitted_->models,
                                     AlgorithmKind::kPredictive,
                                     shortConfig());
  EXPECT_DOUBLE_EQ(a.combined, b.combined);
  EXPECT_DOUBLE_EQ(a.missed_pct, b.missed_pct);
  EXPECT_DOUBLE_EQ(a.avg_replicas, b.avg_replicas);
}

TEST_F(EpisodeTest, SeedChangesOutcomeSlightly) {
  const workload::Triangular pat(ramp(6000.0));
  EpisodeConfig cfg = shortConfig();
  const EpisodeResult a = runEpisode(*spec_, pat, fitted_->models,
                                     AlgorithmKind::kPredictive, cfg);
  cfg.scenario.seed += 1;
  const EpisodeResult b = runEpisode(*spec_, pat, fitted_->models,
                                     AlgorithmKind::kPredictive, cfg);
  EXPECT_NE(a.cpu_pct, b.cpu_pct);
}

TEST_F(EpisodeTest, TinyWorkloadNeedsNoReplication) {
  const workload::Constant pat(DataSize::tracks(300.0));
  for (auto kind :
       {AlgorithmKind::kPredictive, AlgorithmKind::kNonPredictive}) {
    const EpisodeResult r =
        runEpisode(*spec_, pat, fitted_->models, kind, shortConfig());
    EXPECT_DOUBLE_EQ(r.avg_replicas, 1.0) << algorithmName(kind);
    EXPECT_DOUBLE_EQ(r.missed_pct, 0.0) << algorithmName(kind);
  }
}

TEST_F(EpisodeTest, HeavyWorkloadForcesReplication) {
  const workload::Triangular pat(ramp(10000.0));
  const EpisodeResult r = runEpisode(*spec_, pat, fitted_->models,
                                     AlgorithmKind::kPredictive,
                                     shortConfig());
  EXPECT_GT(r.avg_replicas, 1.2);
  EXPECT_GT(r.metrics.replicate_actions, 0u);
}

TEST_F(EpisodeTest, NonPredictiveUsesMoreReplicas) {
  // The paper's headline contrast (Fig. 9c/9d): the threshold heuristic
  // over-replicates relative to the forecast-driven allocator.
  const workload::Triangular pat(ramp(10000.0));
  const EpisodeResult pred = runEpisode(*spec_, pat, fitted_->models,
                                        AlgorithmKind::kPredictive,
                                        shortConfig());
  const EpisodeResult nonp = runEpisode(*spec_, pat, fitted_->models,
                                        AlgorithmKind::kNonPredictive,
                                        shortConfig());
  EXPECT_GE(nonp.avg_replicas, pred.avg_replicas);
}

TEST_F(EpisodeTest, SweepCoversRequestedGridInOrder) {
  SweepConfig cfg;
  cfg.episode = shortConfig();
  cfg.episode.periods = 24;
  cfg.ramp = ramp(0.0);  // max overwritten per point
  cfg.max_workload_units = {2.0, 8.0, 14.0};
  const auto points =
      runWorkloadSweep(*spec_, fitted_->models, "triangular", cfg);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].max_workload_units, 2.0);
  EXPECT_DOUBLE_EQ(points[2].max_workload_units, 14.0);
}

TEST_F(EpisodeTest, SweepParallelMatchesSerial) {
  SweepConfig cfg;
  cfg.episode = shortConfig();
  cfg.episode.periods = 16;
  cfg.ramp = ramp(0.0);
  cfg.max_workload_units = {4.0, 12.0};
  cfg.parallel = true;
  const auto par = runWorkloadSweep(*spec_, fitted_->models, "increasing", cfg);
  cfg.parallel = false;
  const auto ser = runWorkloadSweep(*spec_, fitted_->models, "increasing", cfg);
  ASSERT_EQ(par.size(), ser.size());
  for (std::size_t i = 0; i < par.size(); ++i) {
    EXPECT_DOUBLE_EQ(par[i].predictive.combined, ser[i].predictive.combined);
    EXPECT_DOUBLE_EQ(par[i].non_predictive.combined,
                     ser[i].non_predictive.combined);
  }
}

TEST_F(EpisodeTest, SweepReplicationAveragesSeeds) {
  SweepConfig cfg;
  cfg.episode = shortConfig();
  cfg.episode.periods = 16;
  cfg.ramp = ramp(0.0);
  cfg.max_workload_units = {10.0};
  cfg.replications = 3;
  const auto avg = runWorkloadSweep(*spec_, fitted_->models, "triangular",
                                    cfg);
  ASSERT_EQ(avg.size(), 1u);
  // The replicated mean must equal the hand-computed mean of the three
  // single-seed runs.
  double expected = 0.0;
  for (std::size_t r = 0; r < 3; ++r) {
    EpisodeConfig ep = cfg.episode;
    ep.scenario.seed = cfg.episode.scenario.seed + r;
    ep.manager.d_init = cfg.ramp.min_workload;
    workload::RampParams rp = cfg.ramp;
    rp.max_workload = DataSize::tracks(5000.0);
    const workload::Triangular pat(rp);
    expected += runEpisode(*spec_, pat, fitted_->models,
                           AlgorithmKind::kPredictive, ep)
                    .combined;
  }
  EXPECT_NEAR(avg[0].predictive.combined, expected / 3.0, 1e-9);
}

TEST_F(EpisodeTest, DecreasingRampInitializesEqfAtMaxWorkload) {
  SweepConfig cfg;
  cfg.episode = shortConfig();
  cfg.episode.periods = 16;
  cfg.ramp = ramp(0.0);
  cfg.max_workload_units = {10.0};
  const auto points =
      runWorkloadSweep(*spec_, fitted_->models, "decreasing", cfg);
  ASSERT_EQ(points.size(), 1u);
  // Sanity only: the episode ran and produced metrics.
  EXPECT_GT(points[0].predictive.cpu_pct, 0.0);
}

TEST(AlgorithmName, Stable) {
  EXPECT_EQ(algorithmName(AlgorithmKind::kPredictive), "predictive");
  EXPECT_EQ(algorithmName(AlgorithmKind::kNonPredictive), "non-predictive");
}

}  // namespace
}  // namespace rtdrm::experiments
