// Whole-system shape tests: the qualitative findings of the paper's §5.2
// must hold on our reproduction (exact numbers are substrate-dependent and
// recorded in EXPERIMENTS.md, not asserted here).
#include <gtest/gtest.h>

#include "apps/dynbench.hpp"
#include "experiments/episode.hpp"
#include "experiments/model_store.hpp"

namespace rtdrm::experiments {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = new task::TaskSpec(apps::makeAawTaskSpec());
    ModelFitConfig cfg = defaultModelFitConfig();
    cfg.exec.samples_per_point = 4;
    fitted_ = new FittedModelSet(fitAllModels(*spec_, cfg));
  }
  static void TearDownTestSuite() {
    delete fitted_;
    delete spec_;
  }

  static EpisodeConfig cfg() {
    EpisodeConfig c;
    c.periods = 72;
    return c;
  }
  static workload::RampParams ramp(double max_tracks) {
    workload::RampParams p;
    p.min_workload = DataSize::tracks(500.0);
    p.max_workload = DataSize::tracks(max_tracks);
    p.ramp_periods = 30;
    return p;
  }

  static task::TaskSpec* spec_;
  static FittedModelSet* fitted_;
};

task::TaskSpec* EndToEnd::spec_ = nullptr;
FittedModelSet* EndToEnd::fitted_ = nullptr;

TEST_F(EndToEnd, Fig10Shape_PredictiveWinsCombinedOnTriangular) {
  // "For larger workloads, the predictive algorithm shows a better combined
  // performance than the non-predictive algorithm."
  const workload::Triangular pat(ramp(8000.0));
  const auto pred = runEpisode(*spec_, pat, fitted_->models,
                               AlgorithmKind::kPredictive, cfg());
  const auto nonp = runEpisode(*spec_, pat, fitted_->models,
                               AlgorithmKind::kNonPredictive, cfg());
  EXPECT_LT(pred.combined, nonp.combined);
}

TEST_F(EndToEnd, Fig10Shape_SmallWorkloadsPerformEqually) {
  // "For smaller workloads where no replication is needed, the performance
  // of both algorithms is the same."
  const workload::Triangular pat(ramp(1000.0));
  const auto pred = runEpisode(*spec_, pat, fitted_->models,
                               AlgorithmKind::kPredictive, cfg());
  const auto nonp = runEpisode(*spec_, pat, fitted_->models,
                               AlgorithmKind::kNonPredictive, cfg());
  EXPECT_DOUBLE_EQ(pred.avg_replicas, 1.0);
  EXPECT_DOUBLE_EQ(nonp.avg_replicas, 1.0);
  EXPECT_NEAR(pred.combined, nonp.combined, 0.05);
}

TEST_F(EndToEnd, Fig9Shape_NonPredictiveUsesMoreReplicasAndNetwork) {
  const workload::Triangular pat(ramp(12000.0));
  const auto pred = runEpisode(*spec_, pat, fitted_->models,
                               AlgorithmKind::kPredictive, cfg());
  const auto nonp = runEpisode(*spec_, pat, fitted_->models,
                               AlgorithmKind::kNonPredictive, cfg());
  EXPECT_GE(nonp.avg_replicas, pred.avg_replicas);
  // Replicas drive messages: network utilization follows (Fig. 9c).
  EXPECT_GE(nonp.net_pct, pred.net_pct * 0.95);
}

TEST_F(EndToEnd, MissedDeadlinesGrowWithWorkload) {
  const workload::Triangular small(ramp(4000.0));
  const workload::Triangular large(ramp(17000.0));
  const auto lo = runEpisode(*spec_, small, fitted_->models,
                             AlgorithmKind::kPredictive, cfg());
  const auto hi = runEpisode(*spec_, large, fitted_->models,
                             AlgorithmKind::kPredictive, cfg());
  EXPECT_LE(lo.missed_pct, hi.missed_pct);
  EXPECT_GT(hi.avg_replicas, lo.avg_replicas);
}

TEST_F(EndToEnd, CpuUtilizationScalesWithWorkload) {
  const workload::Constant light(DataSize::tracks(1000.0));
  const workload::Constant heavy(DataSize::tracks(9000.0));
  const auto lo = runEpisode(*spec_, light, fitted_->models,
                             AlgorithmKind::kPredictive, cfg());
  const auto hi = runEpisode(*spec_, heavy, fitted_->models,
                             AlgorithmKind::kPredictive, cfg());
  EXPECT_GT(hi.cpu_pct, lo.cpu_pct);
}

TEST_F(EndToEnd, RampsAdaptWithoutCollapse) {
  for (const char* shape : {"increasing", "decreasing"}) {
    const auto pat = workload::makeFig8Pattern(shape, ramp(10000.0));
    EpisodeConfig c = cfg();
    c.manager.d_init = std::string(shape) == "decreasing"
                           ? DataSize::tracks(10000.0)
                           : DataSize::tracks(500.0);
    const auto r = runEpisode(*spec_, *pat, fitted_->models,
                              AlgorithmKind::kPredictive, c);
    EXPECT_LT(r.missed_pct, 50.0) << shape;
    EXPECT_GT(r.avg_replicas, 1.0) << shape;
  }
}

}  // namespace
}  // namespace rtdrm::experiments
