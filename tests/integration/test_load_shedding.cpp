// Load-shedding extension: under hopeless overload the manager degrades
// stream quality instead of missing every deadline, and restores quality
// before releasing resources once the overload passes.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/manager.hpp"
#include "net/ethernet.hpp"

namespace rtdrm::core {
namespace {

struct Bed {
  explicit Bed(std::size_t nodes = 3)
      : cluster(sim, nodes),
        ethernet(sim, nodes, netConfig()),
        clocks(sim, nodes, Xoshiro256(1), idealClocks()) {}

  static net::EthernetConfig netConfig() {
    net::EthernetConfig cfg;
    cfg.host_ns_per_byte = 0.0;
    cfg.propagation = SimDuration::zero();
    return cfg;
  }
  static net::ClockSyncConfig idealClocks() {
    net::ClockSyncConfig cfg;
    cfg.initial_offset_max = SimDuration::zero();
    cfg.drift_ppm_max = 0.0;
    return cfg;
  }
  task::Runtime runtime() {
    return task::Runtime{sim, cluster, ethernet, clocks};
  }

  sim::Simulator sim;
  node::Cluster cluster;
  net::Ethernet ethernet;
  net::ClockFabric clocks;
};

task::TaskSpec spec() {
  task::TaskSpec s;
  s.period = SimDuration::millis(100.0);
  s.deadline = SimDuration::millis(90.0);
  s.subtasks = {
      task::SubtaskSpec{"fixed", task::SubtaskCost{0.0, 1.0}, false, 0.0},
      task::SubtaskSpec{"flex", task::SubtaskCost{0.0, 10.0}, true, 0.0}};
  s.messages = {task::MessageSpec{8.0}};
  return s;
}

PredictiveModels models() {
  PredictiveModels m;
  regress::ExecLatencyModel fixed;
  fixed.b3 = 1.0;
  regress::ExecLatencyModel flex;
  flex.b3 = 10.0;
  m.exec = {fixed, flex};
  m.comm.buffer.k_ms_per_hundred = 0.05;
  return m;
}

std::unique_ptr<ResourceManager> makeManager(
    Bed& bed, const task::TaskSpec& s, task::TaskRunner::WorkloadFn workload,
    bool shedding) {
  ManagerConfig cfg;
  cfg.d_init = DataSize::tracks(300.0);
  cfg.allow_load_shedding = shedding;
  cfg.shed_step = 0.1;
  cfg.max_shed = 0.7;
  return std::make_unique<ResourceManager>(
      bed.runtime(), s, task::Placement({ProcessorId{0}, ProcessorId{1}}),
      std::move(workload),
      std::make_unique<PredictiveAllocator>(models()), models(), cfg,
      Xoshiro256(7));
}

// 3 nodes, flex stage at 3000 tracks = 300 ms demand: even 3-way
// replication leaves 100 ms on a 90 ms deadline — hopeless without
// shedding.
constexpr double kOverloadTracks = 3000.0;

TEST(LoadShedding, DisabledMeansMissedDeadlines) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(
      bed, s, [](std::uint64_t) { return DataSize::tracks(kOverloadTracks); },
      /*shedding=*/false);
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(5.0));
  mgr->stop();
  bed.sim.runFor(SimDuration::millis(500.0));
  EXPECT_GT(mgr->metrics().missedRatio(), 0.9);
  EXPECT_DOUBLE_EQ(mgr->shedFraction(), 0.0);
  EXPECT_DOUBLE_EQ(mgr->metrics().shed_fraction.max(), 0.0);
}

TEST(LoadShedding, EngagesAndRecoversDeadlines) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(
      bed, s, [](std::uint64_t) { return DataSize::tracks(kOverloadTracks); },
      /*shedding=*/true);
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(8.0));
  mgr->stop();
  bed.sim.runFor(SimDuration::millis(500.0));
  const auto& m = mgr->metrics();
  EXPECT_GT(mgr->shedFraction(), 0.0);
  EXPECT_LE(mgr->shedFraction(), 0.7);
  // Far fewer misses than the 90%+ of the non-shedding run; the early
  // periods still miss while shedding ramps up.
  EXPECT_LT(m.missedRatio(), 0.5);
  // The tail must be clean: last periods meet deadlines at reduced quality.
  EXPECT_GT(m.shed_fraction.max(), 0.2);
}

TEST(LoadShedding, QualityRestoredWhenOverloadPasses) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(
      bed, s,
      [](std::uint64_t c) {
        return c < 25 ? DataSize::tracks(kOverloadTracks)
                      : DataSize::tracks(200.0);
      },
      /*shedding=*/true);
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(9.0));
  mgr->stop();
  bed.sim.runFor(SimDuration::millis(500.0));
  // Shedding engaged during the overload...
  EXPECT_GT(mgr->metrics().shed_fraction.max(), 0.2);
  // ...and fully unwound once the load dropped.
  EXPECT_DOUBLE_EQ(mgr->shedFraction(), 0.0);
}

TEST(LoadShedding, NeverExceedsConfiguredMax) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(
      bed, s, [](std::uint64_t) { return DataSize::tracks(50000.0); },
      /*shedding=*/true);
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(10.0));
  mgr->stop();
  bed.sim.runFor(SimDuration::seconds(2.0));
  EXPECT_LE(mgr->shedFraction(), 0.7 + 1e-12);
  EXPECT_LE(mgr->metrics().shed_fraction.max(), 0.7 + 1e-12);
}

}  // namespace
}  // namespace rtdrm::core
