// Failure injection and degenerate-configuration robustness: the manager
// must degrade gracefully — bounded misses, sane metrics, no crashes —
// when the environment misbehaves.
#include <gtest/gtest.h>

#include "apps/dynbench.hpp"
#include "apps/scenario.hpp"
#include "core/manager.hpp"
#include "experiments/episode.hpp"
#include "experiments/model_store.hpp"

namespace rtdrm::experiments {
namespace {

class Robustness : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = new task::TaskSpec(apps::makeAawTaskSpec());
    ModelFitConfig cfg = defaultModelFitConfig();
    cfg.exec.samples_per_point = 3;
    fitted_ = new FittedModelSet(fitAllModels(*spec_, cfg));
  }
  static void TearDownTestSuite() {
    delete fitted_;
    delete spec_;
  }
  static task::TaskSpec* spec_;
  static FittedModelSet* fitted_;
};

task::TaskSpec* Robustness::spec_ = nullptr;
FittedModelSet* Robustness::fitted_ = nullptr;

// Shared driver: constant 8000-track load with one node hogged at ~90%
// ambient utilization from `hog_at` onward. Homes avoid node 5 so the
// question is purely whether the allocator sends replicas there.
struct HogOutcome {
  core::EpisodeMetrics metrics;
  /// Final replica-set node order of the Filter stage (addition order).
  std::vector<ProcessorId> filter_nodes;
};

HogOutcome runWithHog(const task::TaskSpec& spec,
                      const FittedModelSet& fitted, SimDuration hog_at) {
  apps::ScenarioConfig scfg;
  apps::Scenario scenario(scfg);
  std::vector<ProcessorId> homes;
  for (std::size_t s = 0; s < spec.stageCount(); ++s) {
    homes.push_back(ProcessorId{static_cast<std::uint32_t>(s % 5)});
  }
  core::ResourceManager manager(
      scenario.runtime(), spec, task::Placement(homes),
      [](std::uint64_t) { return DataSize::tracks(8000.0); },
      std::make_unique<core::PredictiveAllocator>(fitted.models),
      fitted.models, core::ManagerConfig{},
      scenario.streams().get("exec-noise"));
  manager.start(scenario.sim().now());
  scenario.sim().scheduleAt(SimTime::zero() + hog_at, [&] {
    scenario.cluster().backgroundLoad(ProcessorId{5})
        .setTarget(Utilization::fraction(0.9));
  });
  scenario.runFor(SimDuration::seconds(48.0));
  manager.stop();
  scenario.runFor(SimDuration::seconds(3.0));
  return HogOutcome{manager.metrics(),
                    manager.runner().placement().stage(apps::kFilterStage)
                        .nodes()};
}

TEST_F(Robustness, PreExistingHogIsChosenLast) {
  // The hog is active before any replication decision. Fig. 5's step 3
  // takes the least-utilized processor first, so if the Filter escalates to
  // the hogged node at all, it must be the *last* addition — and the
  // system must degrade gracefully rather than collapse. (Note the
  // published algorithm has no way to refuse the hogged node outright: on
  // forecast failure, Fig. 5 ends with PS = all processors.)
  const auto out = runWithHog(*spec_, *fitted_, SimDuration::zero());
  for (std::size_t i = 0; i + 1 < out.filter_nodes.size(); ++i) {
    EXPECT_NE(out.filter_nodes[i], (ProcessorId{5}))
        << "hogged node taken before an idle one (position " << i << ")";
  }
  EXPECT_GT(out.metrics.replicas_per_subtask.mean(), 1.0);
  EXPECT_LT(out.metrics.missedRatio(), 0.7);
}

TEST_F(Robustness, MidEpisodeHogDegradesButSurvives) {
  // The hog appears after replicas may already sit on node 5. The paper's
  // shutdown policy (Fig. 6) only removes the *last added* replica, so a
  // trapped replica on the hogged node cannot be selectively evicted —
  // misses rise, but the system keeps operating and never exceeds the
  // cluster. (A documented limitation of the published algorithm; see
  // DESIGN.md §6.)
  const auto out = runWithHog(*spec_, *fitted_, SimDuration::seconds(10.0));
  EXPECT_GE(out.metrics.missed_deadlines.total(), 45u);  // kept running
  EXPECT_LE(out.metrics.replicas_per_subtask.max(), 6.0);
  EXPECT_LT(out.metrics.missedRatio(), 0.9);  // degraded, not collapsed
}

TEST_F(Robustness, InfeasibleDeadlineDegradesGracefully) {
  task::TaskSpec tight = *spec_;
  tight.deadline = SimDuration::millis(5.0);  // hopeless
  const workload::Constant pat(DataSize::tracks(8000.0));
  EpisodeConfig cfg;
  cfg.periods = 24;
  const EpisodeResult r = runEpisode(tight, pat, fitted_->models,
                                     AlgorithmKind::kPredictive, cfg);
  EXPECT_GT(r.missed_pct, 99.0);
  EXPECT_GT(r.metrics.allocation_failures, 0u);
  EXPECT_LE(r.avg_replicas, 6.0);  // never exceeds the cluster
  EXPECT_GE(r.metrics.missed_deadlines.total(), 22u);  // kept running
}

TEST_F(Robustness, ExtremeOverloadHitsCutoffNotLivelock) {
  const workload::Constant pat(DataSize::tracks(60000.0));
  EpisodeConfig cfg;
  cfg.periods = 12;
  const EpisodeResult r = runEpisode(*spec_, pat, fitted_->models,
                                     AlgorithmKind::kPredictive, cfg);
  // Instances are aborted at the cutoff instead of piling up forever.
  EXPECT_GT(r.missed_pct, 90.0);
  EXPECT_LE(r.net_pct, 100.0);
  EXPECT_GE(r.metrics.missed_deadlines.total(), 10u);
}

TEST_F(Robustness, UnsynchronizedClocksStillOperate) {
  EpisodeConfig cfg;
  cfg.periods = 36;
  cfg.scenario.start_clock_sync = false;  // offsets drift unboundedly
  cfg.scenario.clock_sync.initial_offset_max = SimDuration::millis(20.0);
  cfg.scenario.clock_sync.drift_ppm_max = 200.0;
  workload::RampParams ramp;
  ramp.max_workload = DataSize::tracks(8000.0);
  const workload::Triangular pat(ramp);
  const EpisodeResult measured = runEpisode(
      *spec_, pat, fitted_->models, AlgorithmKind::kPredictive, cfg);
  // The monitor sees skewed latencies and may over/under-replicate, but
  // the system keeps producing coherent metrics.
  EXPECT_GE(measured.avg_replicas, 1.0);
  EXPECT_LE(measured.avg_replicas, 6.0);
  EXPECT_GE(measured.metrics.missed_deadlines.total(), 34u);

  // With omniscient latency measurement the clock chaos is irrelevant.
  cfg.manager.monitor.use_measured_latency = false;
  const EpisodeResult truth = runEpisode(
      *spec_, pat, fitted_->models, AlgorithmKind::kPredictive, cfg);
  EXPECT_LT(truth.missed_pct, 25.0);
}

TEST_F(Robustness, ZeroWorkloadIsHarmless) {
  const workload::Constant pat(DataSize::zero());
  EpisodeConfig cfg;
  cfg.periods = 16;
  const EpisodeResult r = runEpisode(*spec_, pat, fitted_->models,
                                     AlgorithmKind::kPredictive, cfg);
  EXPECT_DOUBLE_EQ(r.missed_pct, 0.0);
  EXPECT_DOUBLE_EQ(r.avg_replicas, 1.0);
  EXPECT_EQ(r.metrics.replicate_actions, 0u);
}

TEST_F(Robustness, SingleNodeClusterCannotReplicateButRuns) {
  EpisodeConfig cfg;
  cfg.periods = 16;
  cfg.scenario.node_count = 1;
  const workload::Constant pat(DataSize::tracks(6000.0));
  const EpisodeResult r = runEpisode(*spec_, pat, fitted_->models,
                                     AlgorithmKind::kPredictive, cfg);
  EXPECT_DOUBLE_EQ(r.avg_replicas, 1.0);
  EXPECT_GE(r.metrics.missed_deadlines.total(), 14u);
}

TEST_F(Robustness, NonPredictiveSurvivesSameAbuse) {
  task::TaskSpec tight = *spec_;
  tight.deadline = SimDuration::millis(50.0);
  const workload::Constant pat(DataSize::tracks(12000.0));
  EpisodeConfig cfg;
  cfg.periods = 16;
  const EpisodeResult r = runEpisode(tight, pat, fitted_->models,
                                     AlgorithmKind::kNonPredictive, cfg);
  EXPECT_GE(r.metrics.missed_deadlines.total(), 14u);
  EXPECT_LE(r.avg_replicas, 6.0);
}

}  // namespace
}  // namespace rtdrm::experiments
