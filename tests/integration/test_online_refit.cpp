// Online model refinement under environmental drift: the application's
// per-track cost changes mid-mission, invalidating the offline-profiled
// eq.-3 models. The refreshed manager must (a) actually learn the new
// surface and (b) not be worse than the static-model manager.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/manager.hpp"
#include "net/ethernet.hpp"

namespace rtdrm::core {
namespace {

struct Bed {
  explicit Bed(std::size_t nodes = 6)
      : cluster(sim, nodes),
        ethernet(sim, nodes, netConfig()),
        clocks(sim, nodes, Xoshiro256(1), idealClocks()) {}

  static net::EthernetConfig netConfig() {
    net::EthernetConfig cfg;
    cfg.host_ns_per_byte = 0.0;
    cfg.propagation = SimDuration::zero();
    return cfg;
  }
  static net::ClockSyncConfig idealClocks() {
    net::ClockSyncConfig cfg;
    cfg.initial_offset_max = SimDuration::zero();
    cfg.drift_ppm_max = 0.0;
    return cfg;
  }
  task::Runtime runtime() {
    return task::Runtime{sim, cluster, ethernet, clocks};
  }

  sim::Simulator sim;
  node::Cluster cluster;
  net::Ethernet ethernet;
  net::ClockFabric clocks;
};

task::TaskSpec makeSpec() {
  task::TaskSpec s;
  s.period = SimDuration::millis(100.0);
  s.deadline = SimDuration::millis(90.0);
  s.subtasks = {
      task::SubtaskSpec{"fixed", task::SubtaskCost{0.0, 1.0}, false, 0.0},
      task::SubtaskSpec{"flex", task::SubtaskCost{0.0, 10.0}, true, 0.0}};
  s.messages = {task::MessageSpec{8.0}};
  return s;
}

PredictiveModels models() {
  PredictiveModels m;
  regress::ExecLatencyModel fixed;
  fixed.b3 = 1.0;
  regress::ExecLatencyModel flex;
  flex.b3 = 10.0;
  m.exec = {fixed, flex};
  m.comm.buffer.k_ms_per_hundred = 0.05;
  return m;
}

struct DriftOutcome {
  double missed_ratio;
  double post_drift_b3;  // refreshed linear coefficient of the flex stage
  bool refresher_active;
};

DriftOutcome runDriftEpisode(bool online_refit) {
  Bed bed;
  // The spec is mutated mid-run: the flex stage's cost rises 2.5x at t=4s
  // (the pipeline reads the spec at submission time, so new instances see
  // the new ground truth immediately; the offline model does not).
  task::TaskSpec spec = makeSpec();
  ManagerConfig cfg;
  cfg.d_init = DataSize::tracks(300.0);
  cfg.online_refit = online_refit;
  cfg.refit.min_observations = 10;
  cfg.refit.forgetting = 0.95;
  ResourceManager mgr(
      bed.runtime(), spec, task::Placement({ProcessorId{0}, ProcessorId{1}}),
      [](std::uint64_t) { return DataSize::tracks(300.0); },
      std::make_unique<PredictiveAllocator>(models()), models(), cfg,
      Xoshiro256(7));
  mgr.start(bed.sim.now());
  bed.sim.scheduleAt(SimTime::seconds(4.0),
                     [&spec] { spec.subtasks[1].cost.beta_ms = 25.0; });
  bed.sim.runFor(SimDuration::seconds(12.0));
  mgr.stop();
  bed.sim.runFor(SimDuration::millis(400.0));
  return DriftOutcome{mgr.metrics().missedRatio(),
                      mgr.models().exec[1].b3,
                      mgr.refresher() != nullptr && mgr.refresher()->active(1)};
}

TEST(OnlineRefit, RefresherLearnsTheDriftedCost) {
  const DriftOutcome refit = runDriftEpisode(true);
  EXPECT_TRUE(refit.refresher_active);
  // Ground truth moved from 10 to 25 ms per hundred (idle); the learned
  // u->0 linear coefficient must have followed most of the way. (The
  // learned surface also absorbs queueing inflation, so allow slack.)
  EXPECT_GT(refit.post_drift_b3, 15.0);
}

TEST(OnlineRefit, StaticModelsStayAtSeed) {
  const DriftOutcome stat = runDriftEpisode(false);
  EXPECT_FALSE(stat.refresher_active);
  EXPECT_DOUBLE_EQ(stat.post_drift_b3, 10.0);
}

TEST(OnlineRefit, NoWorseThanStaticUnderDrift) {
  const DriftOutcome refit = runDriftEpisode(true);
  const DriftOutcome stat = runDriftEpisode(false);
  EXPECT_LE(refit.missed_ratio, stat.missed_ratio + 0.05);
}

TEST(OnlineRefit, NoDriftNoHarm) {
  // With a correct seed and a stationary environment, refinement must not
  // destabilize the system.
  Bed bed;
  task::TaskSpec spec = makeSpec();
  ManagerConfig cfg;
  cfg.d_init = DataSize::tracks(300.0);
  cfg.online_refit = true;
  cfg.refit.min_observations = 10;
  ResourceManager mgr(
      bed.runtime(), spec, task::Placement({ProcessorId{0}, ProcessorId{1}}),
      [](std::uint64_t) { return DataSize::tracks(300.0); },
      std::make_unique<PredictiveAllocator>(models()), models(), cfg,
      Xoshiro256(7));
  mgr.start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(8.0));
  mgr.stop();
  EXPECT_LT(mgr.metrics().missedRatio(), 0.1);
  // The learned coefficient stays in the seed's neighbourhood.
  EXPECT_NEAR(mgr.models().exec[1].b3, 10.0, 4.0);
}

}  // namespace
}  // namespace rtdrm::core
