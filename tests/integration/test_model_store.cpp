#include "experiments/model_store.hpp"

#include <gtest/gtest.h>

#include "apps/dynbench.hpp"

namespace rtdrm::experiments {
namespace {

ModelFitConfig fastConfig() {
  ModelFitConfig cfg = defaultModelFitConfig();
  cfg.exec.utilization_levels = {0.0, 0.3, 0.6};
  cfg.exec.data_sizes = {DataSize::tracks(600.0), DataSize::tracks(1800.0),
                         DataSize::tracks(3600.0), DataSize::tracks(6000.0)};
  cfg.exec.samples_per_point = 3;
  cfg.comm.workload_levels = {DataSize::tracks(1000.0),
                              DataSize::tracks(5000.0),
                              DataSize::tracks(9000.0)};
  cfg.comm.periods_per_level = 8;
  return cfg;
}

TEST(FitAllModels, OneModelPerSubtask) {
  const auto spec = apps::makeAawTaskSpec();
  const auto fitted = fitAllModels(spec, fastConfig());
  EXPECT_EQ(fitted.models.exec.size(), spec.stageCount());
  EXPECT_EQ(fitted.exec_fits.size(), spec.stageCount());
}

TEST(FitAllModels, HeavySubtasksFitWell) {
  const auto spec = apps::makeAawTaskSpec();
  const auto fitted = fitAllModels(spec, fastConfig());
  // Filter and EvalDecide have large, smooth latencies: good R^2.
  EXPECT_GT(fitted.exec_fits[apps::kFilterStage].diagnostics.r_squared, 0.85);
  EXPECT_GT(fitted.exec_fits[apps::kEvalDecideStage].diagnostics.r_squared,
            0.7);
}

TEST(FitAllModels, FilterIdleCoefficientsNearGroundTruth) {
  const auto spec = apps::makeAawTaskSpec();
  const auto fitted = fitAllModels(spec, fastConfig());
  const auto& m = fitted.models.exec[apps::kFilterStage];
  // a3/b3 are the u->0 coefficients; ground truth alpha = 0.118.
  EXPECT_NEAR(m.a3, apps::kFilterAlpha, 0.06);
}

TEST(FitAllModels, BufferSlopeNearTable3) {
  const auto spec = apps::makeAawTaskSpec();
  const auto fitted = fitAllModels(spec, fastConfig());
  EXPECT_GT(fitted.models.comm.buffer.k_ms_per_hundred, 0.5);
  EXPECT_LT(fitted.models.comm.buffer.k_ms_per_hundred, 1.2);
}

TEST(FitAllModels, SerialAndParallelAgree) {
  const auto spec = apps::makeAawTaskSpec();
  ModelFitConfig cfg = fastConfig();
  cfg.parallel = true;
  const auto par = fitAllModels(spec, cfg);
  cfg.parallel = false;
  const auto ser = fitAllModels(spec, cfg);
  for (std::size_t i = 0; i < spec.stageCount(); ++i) {
    EXPECT_DOUBLE_EQ(par.models.exec[i].a3, ser.models.exec[i].a3);
    EXPECT_DOUBLE_EQ(par.models.exec[i].b3, ser.models.exec[i].b3);
  }
  EXPECT_DOUBLE_EQ(par.models.comm.buffer.k_ms_per_hundred,
                   ser.models.comm.buffer.k_ms_per_hundred);
}

TEST(FitAllModels, JointFitAlternativeWorks) {
  const auto spec = apps::makeAawTaskSpec();
  ModelFitConfig cfg = fastConfig();
  cfg.two_stage = false;
  const auto fitted = fitAllModels(spec, cfg);
  EXPECT_TRUE(fitted.exec_fits[apps::kFilterStage].levels.empty());
  EXPECT_GT(fitted.exec_fits[apps::kFilterStage].diagnostics.r_squared, 0.85);
}

}  // namespace
}  // namespace rtdrm::experiments
