// Cross-product sanity matrix: every Fig.-8 pattern under every allocator
// (with and without online refinement) must produce well-formed, bounded,
// deterministic metrics. Catches regressions any single-scenario test
// would miss.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "apps/dynbench.hpp"
#include "experiments/episode.hpp"
#include "experiments/model_store.hpp"

namespace rtdrm::experiments {
namespace {

using Param = std::tuple<const char* /*pattern*/, int /*algorithm*/,
                         bool /*refit*/>;

class EpisodeMatrix : public ::testing::TestWithParam<Param> {
 protected:
  static void SetUpTestSuite() {
    spec_ = new task::TaskSpec(apps::makeAawTaskSpec());
    ModelFitConfig cfg = defaultModelFitConfig();
    cfg.exec.samples_per_point = 3;
    fitted_ = new FittedModelSet(fitAllModels(*spec_, cfg));
  }
  static void TearDownTestSuite() {
    delete fitted_;
    delete spec_;
  }
  static task::TaskSpec* spec_;
  static FittedModelSet* fitted_;
};

task::TaskSpec* EpisodeMatrix::spec_ = nullptr;
FittedModelSet* EpisodeMatrix::fitted_ = nullptr;

TEST_P(EpisodeMatrix, MetricsWellFormedAndDeterministic) {
  const auto [pattern_name, algo_idx, refit] = GetParam();
  const auto kind = static_cast<AlgorithmKind>(algo_idx);

  workload::RampParams ramp;
  ramp.max_workload = DataSize::tracks(9000.0);
  const auto pattern =
      workload::makeFig8Pattern(pattern_name, ramp);

  EpisodeConfig cfg;
  cfg.periods = 30;
  cfg.manager.online_refit = refit;
  if (std::string(pattern_name) == "decreasing") {
    cfg.manager.d_init = ramp.max_workload;
  }

  const EpisodeResult a = runEpisode(*spec_, *pattern, fitted_->models,
                                     kind, cfg);
  const EpisodeResult b = runEpisode(*spec_, *pattern, fitted_->models,
                                     kind, cfg);

  // Well-formed.
  EXPECT_GE(a.missed_pct, 0.0);
  EXPECT_LE(a.missed_pct, 100.0);
  EXPECT_GT(a.cpu_pct, 0.0);
  EXPECT_LE(a.cpu_pct, 100.0);
  EXPECT_GE(a.net_pct, 0.0);
  EXPECT_LE(a.net_pct, 100.0);
  EXPECT_GE(a.avg_replicas, 1.0);
  EXPECT_LE(a.avg_replicas, 6.0);
  EXPECT_GE(a.metrics.missed_deadlines.total(), 28u);
  EXPECT_EQ(a.metrics.stages.size(), spec_->stageCount());
  // Combined metric composed from its parts.
  EXPECT_NEAR(a.combined,
              a.metrics.missedRatio() + a.metrics.cpu_utilization.mean() +
                  a.metrics.net_utilization.mean() + a.avg_replicas / 6.0,
              1e-9);
  // Deterministic.
  EXPECT_DOUBLE_EQ(a.combined, b.combined);
  EXPECT_DOUBLE_EQ(a.missed_pct, b.missed_pct);
  EXPECT_DOUBLE_EQ(a.avg_replicas, b.avg_replicas);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, EpisodeMatrix,
    ::testing::Combine(::testing::Values("increasing", "decreasing",
                                         "triangular"),
                       ::testing::Values(0, 1),
                       ::testing::Values(false, true)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == 0 ? "_pred" : "_nonpred") +
             (std::get<2>(info.param) ? "_refit" : "_static");
    });

}  // namespace
}  // namespace rtdrm::experiments
