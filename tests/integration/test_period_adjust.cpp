// Elastic-period extension: when the eq.-5/eq.-6 forecast rejects
// replication the manager dilates the release period toward
// TaskSpec::max_period before shedding load, and contracts it back to the
// nominal rate once slack returns — the second Fig.-5 adaptation action.
#include <gtest/gtest.h>

#include <memory>

#include "check/invariants.hpp"
#include "common/rng.hpp"
#include "core/manager.hpp"
#include "net/ethernet.hpp"

namespace rtdrm::core {
namespace {

struct Bed {
  explicit Bed(std::size_t nodes = 3)
      : cluster(sim, nodes),
        ethernet(sim, nodes, netConfig()),
        clocks(sim, nodes, Xoshiro256(1), idealClocks()) {}

  static net::EthernetConfig netConfig() {
    net::EthernetConfig cfg;
    cfg.host_ns_per_byte = 0.0;
    cfg.propagation = SimDuration::zero();
    return cfg;
  }
  static net::ClockSyncConfig idealClocks() {
    net::ClockSyncConfig cfg;
    cfg.initial_offset_max = SimDuration::zero();
    cfg.drift_ppm_max = 0.0;
    return cfg;
  }
  task::Runtime runtime() {
    return task::Runtime{sim, cluster, ethernet, clocks};
  }

  sim::Simulator sim;
  node::Cluster cluster;
  net::Ethernet ethernet;
  net::ClockFabric clocks;
};

task::TaskSpec spec(bool elastic) {
  task::TaskSpec s;
  s.period = SimDuration::millis(100.0);
  s.deadline = SimDuration::millis(90.0);
  if (elastic) {
    s.max_period = SimDuration::millis(200.0);
  }
  s.subtasks = {
      task::SubtaskSpec{"fixed", task::SubtaskCost{0.0, 1.0}, false, 0.0},
      task::SubtaskSpec{"flex", task::SubtaskCost{0.0, 10.0}, true, 0.0}};
  s.messages = {task::MessageSpec{8.0}};
  return s;
}

PredictiveModels models() {
  PredictiveModels m;
  regress::ExecLatencyModel fixed;
  fixed.b3 = 1.0;
  regress::ExecLatencyModel flex;
  flex.b3 = 10.0;
  m.exec = {fixed, flex};
  m.comm.buffer.k_ms_per_hundred = 0.05;
  return m;
}

std::unique_ptr<ResourceManager> makeManager(
    Bed& bed, const task::TaskSpec& s, task::TaskRunner::WorkloadFn workload,
    bool period_adjust, bool shedding = false) {
  ManagerConfig cfg;
  cfg.d_init = DataSize::tracks(300.0);
  cfg.allow_period_adjust = period_adjust;
  cfg.period_adjust_step = 0.25;
  cfg.allow_load_shedding = shedding;
  cfg.shed_step = 0.1;
  cfg.max_shed = 0.7;
  return std::make_unique<ResourceManager>(
      bed.runtime(), s, task::Placement({ProcessorId{0}, ProcessorId{1}}),
      std::move(workload),
      std::make_unique<PredictiveAllocator>(models()), models(), cfg,
      Xoshiro256(7));
}

// 3 nodes, flex stage at 3000 tracks = 300 ms demand: even 3-way
// replication cannot hold the 90 ms deadline, so every monitor round
// rejects the forecast and reaches for the next lever.
constexpr double kOverloadTracks = 3000.0;

TEST(PeriodAdjust, DisabledKeepsNominalPeriod) {
  Bed bed;
  const auto s = spec(/*elastic=*/true);
  auto mgr = makeManager(
      bed, s, [](std::uint64_t) { return DataSize::tracks(kOverloadTracks); },
      /*period_adjust=*/false);
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(5.0));
  mgr->stop();
  bed.sim.runFor(SimDuration::millis(500.0));
  EXPECT_EQ(mgr->currentPeriod(), s.period);
  EXPECT_EQ(mgr->metrics().period_dilations, 0u);
  EXPECT_EQ(mgr->metrics().period_contractions, 0u);
}

TEST(PeriodAdjust, InelasticSpecNeverDilates) {
  Bed bed;
  // Lever on, but max_period unset: effectiveMaxPeriod() == period, there
  // is no headroom to spend.
  const auto s = spec(/*elastic=*/false);
  auto mgr = makeManager(
      bed, s, [](std::uint64_t) { return DataSize::tracks(kOverloadTracks); },
      /*period_adjust=*/true);
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(5.0));
  mgr->stop();
  bed.sim.runFor(SimDuration::millis(500.0));
  EXPECT_EQ(mgr->currentPeriod(), s.period);
  EXPECT_EQ(mgr->metrics().period_dilations, 0u);
}

TEST(PeriodAdjust, DilatesUnderOverloadWithinBounds) {
  Bed bed;
  const auto s = spec(/*elastic=*/true);
  auto mgr = makeManager(
      bed, s, [](std::uint64_t) { return DataSize::tracks(kOverloadTracks); },
      /*period_adjust=*/true);
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(6.0));
  mgr->stop();
  bed.sim.runFor(SimDuration::millis(500.0));
  const auto& m = mgr->metrics();
  EXPECT_GT(m.period_dilations, 0u);
  EXPECT_GT(mgr->currentPeriod(), s.period);
  // Bounded: never beyond max_period; steps of 25 ms reach it in 4.
  EXPECT_LE(mgr->currentPeriod(), s.max_period);
  EXPECT_LE(m.period_dilations, 4u);
  // The sampled scale stays inside [1, max/period].
  EXPECT_GE(m.period_scale.min(), 1.0);
  EXPECT_LE(m.period_scale.max(), 2.0 + 1e-12);
}

TEST(PeriodAdjust, ContractsBackWhenOverloadPasses) {
  Bed bed;
  const auto s = spec(/*elastic=*/true);
  auto mgr = makeManager(
      bed, s,
      [](std::uint64_t c) {
        return c < 20 ? DataSize::tracks(kOverloadTracks)
                      : DataSize::tracks(150.0);
      },
      /*period_adjust=*/true);
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(12.0));
  mgr->stop();
  bed.sim.runFor(SimDuration::millis(500.0));
  const auto& m = mgr->metrics();
  // Dilated during the overload...
  EXPECT_GT(m.period_dilations, 0u);
  // ...and contracted back to the nominal rate once slack returned.
  EXPECT_GT(m.period_contractions, 0u);
  EXPECT_EQ(mgr->currentPeriod(), s.period);
}

TEST(PeriodAdjust, DilationEngagesBeforeShedding) {
  Bed bed;
  const auto s = spec(/*elastic=*/true);
  auto mgr = makeManager(
      bed, s, [](std::uint64_t) { return DataSize::tracks(kOverloadTracks); },
      /*period_adjust=*/true, /*shedding=*/true);
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(8.0));
  mgr->stop();
  bed.sim.runFor(SimDuration::millis(500.0));
  // Rate is spent before quality: shedding only engages once the period
  // sits at its elastic bound.
  EXPECT_GT(mgr->metrics().period_dilations, 0u);
  if (mgr->shedFraction() > 0.0) {
    EXPECT_EQ(mgr->currentPeriod(), s.max_period);
  }
}

TEST(PeriodAdjust, OracleStaysCleanThroughDilationCycle) {
  Bed bed;
  const auto s = spec(/*elastic=*/true);
  auto mgr = makeManager(
      bed, s,
      [](std::uint64_t c) {
        return c < 20 ? DataSize::tracks(kOverloadTracks)
                      : DataSize::tracks(150.0);
      },
      /*period_adjust=*/true);
  check::InvariantOracle oracle;
  oracle.watch(bed.sim);
  oracle.watch(bed.cluster);
  oracle.watch(*mgr);
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(12.0));
  mgr->stop();
  bed.sim.runFor(SimDuration::millis(500.0));
  // The full dilate/contract cycle ran...
  EXPECT_GT(mgr->metrics().period_dilations, 0u);
  EXPECT_GT(mgr->metrics().period_contractions, 0u);
  // ...and every adjustment satisfied the period-bounds, step-direction and
  // slack-discipline invariants (plus busy-conservation on every event).
  EXPECT_TRUE(oracle.ok()) << oracle.report();
}

TEST(PeriodAdjust, OracleFlagsBackwardDilation) {
  Bed bed;
  const auto s = spec(/*elastic=*/true);
  auto mgr = makeManager(
      bed, s, [](std::uint64_t) { return DataSize::tracks(100.0); },
      /*period_adjust=*/true);
  check::InvariantOracle oracle;
  // A "dilation" that shrinks the period lies about its direction.
  oracle.onPeriodAdjust(*mgr, SimDuration::millis(100.0),
                        SimDuration::millis(75.0), /*dilated=*/true);
  EXPECT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.recorded()[0].invariant, "period-step-direction");
}

TEST(PeriodAdjust, OracleFlagsContractionWithoutSlack) {
  Bed bed;
  const auto s = spec(/*elastic=*/true);
  auto mgr = makeManager(
      bed, s, [](std::uint64_t) { return DataSize::tracks(100.0); },
      /*period_adjust=*/true);
  check::InvariantOracle oracle;
  oracle.watch(*mgr);
  // No monitor round flagged slack, yet the period contracts: the unwind
  // discipline is violated.
  oracle.onPeriodAdjust(*mgr, SimDuration::millis(150.0),
                        SimDuration::millis(125.0), /*dilated=*/false);
  EXPECT_FALSE(oracle.ok());
  bool found = false;
  for (const auto& v : oracle.recorded()) {
    found = found || v.invariant == "period-contraction-without-slack";
  }
  EXPECT_TRUE(found) << oracle.report();
}

}  // namespace
}  // namespace rtdrm::core
