// Failover extension: heartbeat-detected crashes are scrubbed from the
// placement by ResourceManager::handleNodeFailure, which re-runs the
// predictive growth loop on the surviving nodes (src/fault + Fig. 5).
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/manager.hpp"
#include "fault/detector.hpp"
#include "fault/injector.hpp"
#include "net/ethernet.hpp"

namespace rtdrm::core {
namespace {

struct Bed {
  explicit Bed(std::size_t nodes = 4)
      : cluster(sim, nodes),
        ethernet(sim, nodes, netConfig()),
        clocks(sim, nodes, Xoshiro256(1), idealClocks()) {}

  static net::EthernetConfig netConfig() {
    net::EthernetConfig cfg;
    cfg.host_ns_per_byte = 0.0;
    cfg.propagation = SimDuration::zero();
    return cfg;
  }
  static net::ClockSyncConfig idealClocks() {
    net::ClockSyncConfig cfg;
    cfg.initial_offset_max = SimDuration::zero();
    cfg.drift_ppm_max = 0.0;
    return cfg;
  }
  task::Runtime runtime() {
    return task::Runtime{sim, cluster, ethernet, clocks};
  }

  sim::Simulator sim;
  node::Cluster cluster;
  net::Ethernet ethernet;
  net::ClockFabric clocks;
};

task::TaskSpec spec() {
  task::TaskSpec s;
  s.period = SimDuration::millis(100.0);
  s.deadline = SimDuration::millis(90.0);
  s.subtasks = {
      task::SubtaskSpec{"fixed", task::SubtaskCost{0.0, 1.0}, false, 0.0},
      task::SubtaskSpec{"flex", task::SubtaskCost{0.0, 10.0}, true, 0.0}};
  s.messages = {task::MessageSpec{8.0}};
  return s;
}

PredictiveModels models() {
  PredictiveModels m;
  regress::ExecLatencyModel fixed;
  fixed.b3 = 1.0;
  regress::ExecLatencyModel flex;
  flex.b3 = 10.0;
  m.exec = {fixed, flex};
  m.comm.buffer.k_ms_per_hundred = 0.05;
  return m;
}

std::unique_ptr<ResourceManager> makeManager(Bed& bed,
                                             const task::TaskSpec& s) {
  ManagerConfig cfg;
  cfg.d_init = DataSize::tracks(300.0);
  return std::make_unique<ResourceManager>(
      bed.runtime(), s, task::Placement({ProcessorId{0}, ProcessorId{1}}),
      [](std::uint64_t) { return DataSize::tracks(300.0); },
      std::make_unique<PredictiveAllocator>(models()), models(), cfg,
      Xoshiro256(7));
}

bool placementUses(const task::Placement& p, ProcessorId node) {
  for (std::size_t s = 0; s < p.stageCount(); ++s) {
    if (p.stage(s).contains(node)) {
      return true;
    }
  }
  return false;
}

TEST(Failover, HandleNodeFailureScrubsDeadNodeAndKeepsRunning) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(bed, s);
  mgr->start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(1.0));
  ASSERT_TRUE(placementUses(mgr->runner().placement(), ProcessorId{1}));

  bed.cluster.setNodeUp(ProcessorId{1}, false);
  mgr->handleNodeFailure(ProcessorId{1});
  EXPECT_FALSE(placementUses(mgr->runner().placement(), ProcessorId{1}));
  // Stage 1's sole replica lived on the dead node: a substitute host must
  // have been found among the survivors.
  EXPECT_GE(mgr->runner().placement().stage(1).size(), 1u);

  bed.sim.runFor(SimDuration::seconds(2.0));
  mgr->stop();
  bed.sim.runFor(SimDuration::millis(500.0));
  const auto& m = mgr->metrics();
  EXPECT_EQ(m.node_failures_handled, 1u);
  EXPECT_GE(m.failover_replacements, 1u);
  EXPECT_EQ(m.recovery_allocation_failures, 0u);
  // A direct (zero-latency) failover drops at most the in-flight period.
  EXPECT_LT(m.missedRatio(), 0.1);
}

TEST(FailoverDeathTest, HandleNodeFailureRequiresMaskedNode) {
  Bed bed;
  auto mgr = makeManager(bed, spec());
  EXPECT_DEATH(mgr->handleNodeFailure(ProcessorId{1}),
               "requires the node already masked");
}

TEST(Failover, EndToEndCrashDetectRecoverRestart) {
  Bed bed;
  const auto s = spec();
  auto mgr = makeManager(bed, s);

  fault::FaultPlan plan;
  plan.crashes.push_back(fault::CrashFault{
      ProcessorId{1}, SimTime::seconds(1.0), SimTime::seconds(3.0)});
  fault::FaultInjector injector(bed.sim, bed.cluster, &bed.ethernet,
                                &bed.clocks, std::move(plan));
  injector.arm();

  fault::DetectorConfig dcfg;
  dcfg.interval = SimDuration::millis(50.0);
  dcfg.timeout = SimDuration::millis(120.0);
  dcfg.retry_backoff = SimDuration::millis(10.0);
  fault::FailureDetector detector(
      bed.sim, bed.cluster, bed.ethernet, dcfg,
      [&](ProcessorId p) {
        if (!bed.cluster.isUp(p)) {  // ground truth gate (frame loss can lie)
          mgr->handleNodeFailure(p);
        }
      },
      [&](ProcessorId p) { mgr->handleNodeRestart(p); });

  mgr->start(bed.sim.now());
  detector.start(bed.sim.now());
  bed.sim.runFor(SimDuration::seconds(6.0));
  detector.stop();
  mgr->stop();
  bed.sim.runFor(SimDuration::millis(500.0));

  EXPECT_EQ(detector.declaredDead(), 1u);
  EXPECT_EQ(detector.declaredRecovered(), 1u);
  const auto& m = mgr->metrics();
  EXPECT_EQ(m.node_failures_handled, 1u);
  EXPECT_GE(m.failover_replacements, 1u);
  // Only the periods between the crash and the detector's declaration can
  // miss: well under the detection budget (~370 ms) of 100 ms periods,
  // out of ~60 periods total.
  EXPECT_LT(m.missedRatio(), 0.15);
  EXPECT_FALSE(placementUses(mgr->runner().placement(), ProcessorId{1}));
}

}  // namespace
}  // namespace rtdrm::core
