#include "experiments/replication.hpp"

#include <gtest/gtest.h>
#include <cmath>

#include "apps/dynbench.hpp"
#include "experiments/model_store.hpp"

namespace rtdrm::experiments {
namespace {

TEST(TCritical95, TableValuesAndTail) {
  EXPECT_NEAR(tCritical95(1), 12.706, 1e-6);
  EXPECT_NEAR(tCritical95(9), 2.262, 1e-6);
  EXPECT_NEAR(tCritical95(30), 2.042, 1e-6);
  EXPECT_NEAR(tCritical95(1000), 1.96, 1e-6);
  EXPECT_DOUBLE_EQ(tCritical95(0), 0.0);
}

TEST(Summarize, ComputesCi95) {
  RunningStats s;
  for (double v : {10.0, 12.0, 11.0, 13.0, 9.0}) {
    s.add(v);
  }
  const ReplicatedMetric m = summarize(s);
  EXPECT_EQ(m.n, 5u);
  EXPECT_DOUBLE_EQ(m.mean, 11.0);
  // ci = t(4) * s/sqrt(5), s = sqrt(2.5).
  EXPECT_NEAR(m.ci95_half, 2.776 * std::sqrt(2.5) / std::sqrt(5.0), 1e-9);
  EXPECT_NEAR(m.lo() + m.hi(), 2.0 * m.mean, 1e-12);
}

TEST(Summarize, SingleSampleHasNoInterval) {
  RunningStats s;
  s.add(5.0);
  const ReplicatedMetric m = summarize(s);
  EXPECT_DOUBLE_EQ(m.ci95_half, 0.0);
}

TEST(SignificantlyDifferent, OverlapLogic) {
  const ReplicatedMetric a{10.0, 1.0, 0.5, 5};
  const ReplicatedMetric b{11.5, 1.0, 0.5, 5};  // [11.0, 12.0] vs [9.5,10.5]
  EXPECT_TRUE(significantlyDifferent(a, b));
  const ReplicatedMetric c{10.8, 1.0, 0.5, 5};  // [10.3, 11.3] overlaps a
  EXPECT_FALSE(significantlyDifferent(a, c));
  EXPECT_FALSE(significantlyDifferent(a, a));
}

class ReplicationIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = new task::TaskSpec(apps::makeAawTaskSpec());
    ModelFitConfig cfg = defaultModelFitConfig();
    cfg.exec.samples_per_point = 3;
    fitted_ = new FittedModelSet(fitAllModels(*spec_, cfg));
  }
  static void TearDownTestSuite() {
    delete fitted_;
    delete spec_;
  }
  static task::TaskSpec* spec_;
  static FittedModelSet* fitted_;
};

task::TaskSpec* ReplicationIntegration::spec_ = nullptr;
FittedModelSet* ReplicationIntegration::fitted_ = nullptr;

TEST_F(ReplicationIntegration, ProducesTightIntervalsOnStableMetric) {
  workload::RampParams ramp;
  ramp.max_workload = DataSize::tracks(6000.0);
  const workload::Triangular pat(ramp);
  EpisodeConfig cfg;
  cfg.periods = 36;
  const ReplicatedResult r = runReplicatedEpisode(
      *spec_, pat, fitted_->models, AlgorithmKind::kPredictive, cfg, 6);
  EXPECT_EQ(r.combined.n, 6u);
  EXPECT_GT(r.combined.mean, 0.0);
  // Seeds differ, so there is *some* spread, but the combined metric is a
  // long average: its CI must be far tighter than its mean.
  EXPECT_GT(r.cpu_pct.stddev, 0.0);
  EXPECT_LT(r.combined.ci95_half, 0.25 * r.combined.mean);
}

TEST_F(ReplicationIntegration, ParallelMatchesSerial) {
  workload::RampParams ramp;
  ramp.max_workload = DataSize::tracks(5000.0);
  const workload::Triangular pat(ramp);
  EpisodeConfig cfg;
  cfg.periods = 20;
  const ReplicatedResult par = runReplicatedEpisode(
      *spec_, pat, fitted_->models, AlgorithmKind::kPredictive, cfg, 4,
      /*parallel=*/true);
  const ReplicatedResult ser = runReplicatedEpisode(
      *spec_, pat, fitted_->models, AlgorithmKind::kPredictive, cfg, 4,
      /*parallel=*/false);
  EXPECT_DOUBLE_EQ(par.combined.mean, ser.combined.mean);
  EXPECT_DOUBLE_EQ(par.missed_pct.stddev, ser.missed_pct.stddev);
}

TEST_F(ReplicationIntegration, DeathOnTooFewReplications) {
  workload::RampParams ramp;
  const workload::Triangular pat(ramp);
  EXPECT_DEATH(runReplicatedEpisode(*spec_, pat, fitted_->models,
                                    AlgorithmKind::kPredictive, {}, 1),
               "replications");
}

}  // namespace
}  // namespace rtdrm::experiments
