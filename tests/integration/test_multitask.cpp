#include "experiments/multitask.hpp"

#include <gtest/gtest.h>

#include "apps/dynbench.hpp"
#include "experiments/model_store.hpp"

namespace rtdrm::experiments {
namespace {

class MultiTaskTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = new task::TaskSpec(apps::makeAawTaskSpec());
    ModelFitConfig cfg = defaultModelFitConfig();
    cfg.exec.samples_per_point = 3;
    fitted_ = new FittedModelSet(fitAllModels(*spec_, cfg));
  }
  static void TearDownTestSuite() {
    delete fitted_;
    delete spec_;
  }

  static MultiTaskConfig config(std::size_t tasks) {
    MultiTaskConfig cfg;
    cfg.episode.periods = 48;
    cfg.task_count = tasks;
    cfg.phase_shift = 15;
    return cfg;
  }

  static task::TaskSpec* spec_;
  static FittedModelSet* fitted_;
};

task::TaskSpec* MultiTaskTest::spec_ = nullptr;
FittedModelSet* MultiTaskTest::fitted_ = nullptr;

TEST_F(MultiTaskTest, SingleTaskMatchesPlainEpisodeShape) {
  workload::RampParams ramp;
  ramp.max_workload = DataSize::tracks(6000.0);
  const workload::Triangular pat(ramp);
  const MultiTaskResult multi = runMultiTaskEpisode(
      *spec_, pat, fitted_->models, AlgorithmKind::kPredictive, config(1));
  ASSERT_EQ(multi.tasks.size(), 1u);
  EpisodeConfig single_cfg;
  single_cfg.periods = 48;
  const EpisodeResult single = runEpisode(
      *spec_, pat, fitted_->models, AlgorithmKind::kPredictive, single_cfg);
  // Same substrate, same episode length; means should be close (the
  // multi-task path differs only in ledger plumbing and placement offsets).
  EXPECT_NEAR(multi.missed_pct, single.missed_pct, 5.0);
  EXPECT_NEAR(multi.avg_replicas, single.avg_replicas, 0.6);
}

TEST_F(MultiTaskTest, TwoTasksProduceTwoMetricSets) {
  workload::RampParams ramp;
  ramp.max_workload = DataSize::tracks(5000.0);
  const workload::Triangular pat(ramp);
  const MultiTaskResult r = runMultiTaskEpisode(
      *spec_, pat, fitted_->models, AlgorithmKind::kPredictive, config(2));
  ASSERT_EQ(r.tasks.size(), 2u);
  for (const auto& t : r.tasks) {
    EXPECT_GE(t.metrics.missed_deadlines.total(), 45u);
    EXPECT_GT(t.cpu_pct, 0.0);
    EXPECT_GE(t.avg_replicas, 1.0);
  }
  // The aggregate is the mean of per-task values.
  EXPECT_NEAR(r.combined,
              (r.tasks[0].combined + r.tasks[1].combined) / 2.0, 1e-9);
}

TEST_F(MultiTaskTest, InterferenceRaisesLoadVsSingleTask) {
  workload::RampParams ramp;
  ramp.max_workload = DataSize::tracks(6000.0);
  const workload::Triangular pat(ramp);
  const MultiTaskResult one = runMultiTaskEpisode(
      *spec_, pat, fitted_->models, AlgorithmKind::kPredictive, config(1));
  const MultiTaskResult two = runMultiTaskEpisode(
      *spec_, pat, fitted_->models, AlgorithmKind::kPredictive, config(2));
  EXPECT_GT(two.cpu_pct, one.cpu_pct * 1.3);
  EXPECT_GT(two.net_pct, one.net_pct * 1.3);
}

TEST_F(MultiTaskTest, DeterministicForSameSeed) {
  workload::RampParams ramp;
  ramp.max_workload = DataSize::tracks(5000.0);
  const workload::Triangular pat(ramp);
  const MultiTaskResult a = runMultiTaskEpisode(
      *spec_, pat, fitted_->models, AlgorithmKind::kNonPredictive, config(2));
  const MultiTaskResult b = runMultiTaskEpisode(
      *spec_, pat, fitted_->models, AlgorithmKind::kNonPredictive, config(2));
  EXPECT_DOUBLE_EQ(a.combined, b.combined);
  EXPECT_DOUBLE_EQ(a.missed_pct, b.missed_pct);
}

TEST_F(MultiTaskTest, HeterogeneousTaskSetRuns) {
  const task::TaskSpec engage = apps::makeEngagePathSpec();
  const task::TaskSpec surveil = apps::makeSurveillancePathSpec();
  ModelFitConfig mc = defaultModelFitConfig();
  mc.exec.data_sizes = {DataSize::tracks(500.0), DataSize::tracks(1500.0),
                        DataSize::tracks(3000.0), DataSize::tracks(4500.0)};
  mc.exec.samples_per_point = 3;
  mc.comm.workload_levels = {DataSize::tracks(1000.0),
                             DataSize::tracks(4000.0),
                             DataSize::tracks(8000.0)};
  mc.comm.periods_per_level = 6;
  const auto f_engage = fitAllModels(engage, mc);
  const auto f_surveil = fitAllModels(surveil, mc);

  const workload::Constant e_load(DataSize::tracks(1500.0));
  const workload::Constant s_load(DataSize::tracks(2000.0));
  const std::vector<TaskSetMember> members{
      {&engage, &e_load, &f_engage.models, 0},
      {&surveil, &s_load, &f_surveil.models, 0}};
  const MultiTaskResult r = runTaskSetEpisode(
      members, AlgorithmKind::kPredictive, {}, SimDuration::seconds(20.0));
  ASSERT_EQ(r.tasks.size(), 2u);
  // Engage releases at 2 Hz, Surveillance at 0.5 Hz: period counts differ
  // accordingly over the shared horizon.
  EXPECT_GT(r.tasks[0].metrics.missed_deadlines.total(),
            3 * r.tasks[1].metrics.missed_deadlines.total());
  for (const auto& t : r.tasks) {
    EXPECT_LT(t.missed_pct, 30.0);
  }
}

TEST_F(MultiTaskTest, ThreeTasksStillSchedulable) {
  workload::RampParams ramp;
  ramp.max_workload = DataSize::tracks(4000.0);
  const workload::Triangular pat(ramp);
  const MultiTaskResult r = runMultiTaskEpisode(
      *spec_, pat, fitted_->models, AlgorithmKind::kPredictive, config(3));
  ASSERT_EQ(r.tasks.size(), 3u);
  EXPECT_LT(r.missed_pct, 40.0);
}

}  // namespace
}  // namespace rtdrm::experiments
