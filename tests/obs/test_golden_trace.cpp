// Golden decision-trace regression test.
//
// Runs one fixed-seed triangular episode with synthetic (cost-derived)
// models and compares the decision-audit projection — kind, stage, node,
// accept/reject verdict, and integer counts only, never raw floats or
// timestamps — against the checked-in golden file. Any change to the
// decision *sequence* of the Fig.-5/Fig.-7 loops fails loudly with a
// line-level diff; FP-formatting or timing-neutral refactors do not.
//
// Regenerate after an intentional behavior change with:
//   scripts/regen_golden_trace.sh
// (equivalently: RTDRM_REGEN_GOLDEN=1 ./test_obs \
//    --gtest_filter='GoldenTrace.*')
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/dynbench.hpp"
#include "experiments/episode.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "workload/patterns.hpp"

#ifndef RTDRM_TEST_DATA_DIR
#error "RTDRM_TEST_DATA_DIR must point at tests/obs (set by CMake)"
#endif

namespace rtdrm {
namespace {

std::string goldenPath() {
  return std::string(RTDRM_TEST_DATA_DIR) + "/golden/decision_trace.txt";
}

std::string shardedGoldenPath() {
  return std::string(RTDRM_TEST_DATA_DIR) +
         "/golden/decision_trace_sharded.txt";
}

/// The pinned episode: AAW task, triangular pattern, fixed seed, models
/// derived from the spec's own costs (no profiling/fitting — the golden
/// sequence must not depend on the stochastic fitting pipeline).
std::vector<std::string> runGoldenEpisode(obs::Observability& bundle) {
  const task::TaskSpec spec = apps::makeAawTaskSpec();
  core::PredictiveModels models;
  models.exec.resize(spec.stageCount());
  for (std::size_t i = 0; i < spec.stageCount(); ++i) {
    regress::ExecLatencyModel& m = models.exec[i];
    m.a3 = spec.subtasks[i].cost.alpha_ms;
    m.a2 = spec.subtasks[i].cost.alpha_ms;
    m.b3 = spec.subtasks[i].cost.beta_ms;
    m.b2 = spec.subtasks[i].cost.beta_ms;
  }

  workload::RampParams ramp;
  ramp.min_workload = DataSize::tracks(500.0);
  ramp.max_workload = DataSize::tracks(16000.0);
  ramp.ramp_periods = 14;
  const auto pattern = workload::makeFig8Pattern("triangular", ramp);

  experiments::EpisodeConfig cfg;
  cfg.periods = 32;
  cfg.scenario.seed = 7;
  cfg.obs = &bundle;
  runEpisode(spec, *pattern, models, experiments::AlgorithmKind::kPredictive,
             cfg);
  return obs::decisionAuditLines(bundle.trace.snapshot());
}

/// The sharded-plane variant of the pinned episode: same task, pattern,
/// models and seed, but run under a 2-manager management plane whose
/// active crashes at period 10 and restarts 8 periods later. The
/// projection therefore pins the failover lifecycle — manager-down,
/// election, suppressed periods, decision provenance — on top of the
/// usual growth/threshold sequence.
std::vector<std::string> runShardedGoldenEpisode(obs::Observability& bundle) {
  const task::TaskSpec spec = apps::makeAawTaskSpec();
  core::PredictiveModels models;
  models.exec.resize(spec.stageCount());
  for (std::size_t i = 0; i < spec.stageCount(); ++i) {
    regress::ExecLatencyModel& m = models.exec[i];
    m.a3 = spec.subtasks[i].cost.alpha_ms;
    m.a2 = spec.subtasks[i].cost.alpha_ms;
    m.b3 = spec.subtasks[i].cost.beta_ms;
    m.b2 = spec.subtasks[i].cost.beta_ms;
  }

  workload::RampParams ramp;
  ramp.min_workload = DataSize::tracks(500.0);
  ramp.max_workload = DataSize::tracks(16000.0);
  ramp.ramp_periods = 14;
  const auto pattern = workload::makeFig8Pattern("triangular", ramp);

  experiments::EpisodeConfig cfg;
  cfg.periods = 32;
  cfg.scenario.seed = 7;
  cfg.obs = &bundle;
  cfg.plane.managers = 2;
  cfg.plane.gossip_interval = spec.period * 0.2;
  cfg.plane.staleness_bound = spec.period * 0.8;
  cfg.manager_crash_at_period = 10;
  cfg.manager_fault_target = 0;
  cfg.manager_restart_after_periods = 8.0;
  runEpisode(spec, *pattern, models, experiments::AlgorithmKind::kPredictive,
             cfg);
  return obs::decisionAuditLines(bundle.trace.snapshot());
}

/// Shared regen-or-diff tail: with RTDRM_REGEN_GOLDEN set rewrites `path`;
/// otherwise compares line by line and fails at the first divergence.
void checkAgainstGolden(const std::string& path,
                        const std::vector<std::string>& actual);

std::vector<std::string> readLines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream f(path);
  if (!f) {
    return lines;
  }
  std::string line;
  while (std::getline(f, line)) {
    lines.push_back(line);
  }
  return lines;
}

TEST(GoldenTrace, DecisionAuditMatchesGoldenFile) {
  obs::Observability bundle(1u << 18);
  const std::vector<std::string> actual = runGoldenEpisode(bundle);
  // The projection must be complete (no ring wrap) and non-trivial, and
  // must exercise the growth loop in both verdict directions — otherwise
  // the golden file pins nothing worth pinning.
  ASSERT_EQ(bundle.trace.overwritten(), 0u);
  ASSERT_GT(actual.size(), 50u);
  bool saw_start = false;
  bool saw_accept = false;
  for (const std::string& line : actual) {
    saw_start = saw_start || line.rfind("growth-start", 0) == 0;
    saw_accept = saw_accept ||
                 (line.rfind("growth-check", 0) == 0 &&
                  line.find(" accept") != std::string::npos);
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_accept);

  checkAgainstGolden(goldenPath(), actual);
}

void checkAgainstGolden(const std::string& path,
                        const std::vector<std::string>& actual) {
  if (std::getenv("RTDRM_REGEN_GOLDEN") != nullptr) {
    std::ofstream f(path);
    ASSERT_TRUE(f) << "cannot write " << path;
    for (const std::string& line : actual) {
      f << line << "\n";
    }
    std::cout << "[regenerated " << path << ": " << actual.size()
              << " lines]\n";
    return;
  }

  const std::vector<std::string> expected = readLines(path);
  ASSERT_FALSE(expected.empty())
      << "golden file missing or empty: " << path
      << "\nregenerate with scripts/regen_golden_trace.sh";

  // Line-level diff: report the first divergence with context instead of
  // dumping two multi-thousand-line vectors at each other.
  const std::size_t n = std::min(expected.size(), actual.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (expected[i] != actual[i]) {
      std::ostringstream diff;
      diff << "decision trace diverged at line " << (i + 1) << ":\n";
      for (std::size_t j = i >= 2 ? i - 2 : 0; j < i; ++j) {
        diff << "    " << expected[j] << "\n";
      }
      diff << "  - " << expected[i] << "   (golden)\n";
      diff << "  + " << actual[i] << "   (this run)\n";
      diff << "if the behavior change is intentional, regenerate with "
              "scripts/regen_golden_trace.sh";
      FAIL() << diff.str();
    }
  }
  EXPECT_EQ(expected.size(), actual.size())
      << "decision trace " << (actual.size() > expected.size() ? "grew"
                                                               : "shrank")
      << " (golden " << expected.size() << " lines, this run "
      << actual.size()
      << "); first extra line:\n  "
      << (actual.size() > expected.size() ? actual[n] : expected[n])
      << "\nif intentional, regenerate with scripts/regen_golden_trace.sh";
}

TEST(GoldenTrace, ShardedPlaneDecisionAuditMatchesGoldenFile) {
  obs::Observability bundle(1u << 18);
  const std::vector<std::string> actual = runShardedGoldenEpisode(bundle);
  ASSERT_EQ(bundle.trace.overwritten(), 0u);
  ASSERT_GT(actual.size(), 50u);
  // The failover lifecycle must actually appear — a fixture without a
  // crash, an election, and provenance stamps pins nothing new.
  bool saw_down = false;
  bool saw_election = false;
  bool saw_owner = false;
  for (const std::string& line : actual) {
    saw_down = saw_down || line.rfind("manager-down", 0) == 0;
    saw_election = saw_election || line.rfind("election", 0) == 0;
    saw_owner = saw_owner || line.rfind("decision-owner", 0) == 0;
  }
  EXPECT_TRUE(saw_down);
  EXPECT_TRUE(saw_election);
  EXPECT_TRUE(saw_owner);
  checkAgainstGolden(shardedGoldenPath(), actual);
}

TEST(GoldenTrace, ShardedProjectionIsDeterministicAcrossRuns) {
  obs::Observability a(1u << 18);
  obs::Observability b(1u << 18);
  EXPECT_EQ(runShardedGoldenEpisode(a), runShardedGoldenEpisode(b));
}

TEST(GoldenTrace, ProjectionIsDeterministicAcrossRuns) {
  obs::Observability a(1u << 18);
  obs::Observability b(1u << 18);
  EXPECT_EQ(runGoldenEpisode(a), runGoldenEpisode(b));
}

}  // namespace
}  // namespace rtdrm
