#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace rtdrm::obs {
namespace {

TEST(Counter, AddAndSet) {
  MetricsRegistry reg;
  Counter& c = reg.counter("a");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  c.set(2);
  EXPECT_EQ(c.value(), 2u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&reg.counter("a"), &c);
}

TEST(Gauge, KeepsLastValue) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("load");
  g.set(0.25);
  g.set(0.75);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
}

TEST(Histogram, TracksMomentsAndBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  h.observe(0.5);   // bucket 0: < 1
  h.observe(1.0);   // [1, 2) -> bucket 1
  h.observe(3.0);   // [2, 4) -> bucket 2
  h.observe(100.0); // [64, 128) -> bucket 7
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 104.5 / 4.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(7), 1u);
}

TEST(Histogram, HugeValuesLandInTheOpenEndedLastBucket) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h");
  h.observe(1e300);
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.findCounter("missing"), nullptr);
  EXPECT_EQ(reg.findGauge("missing"), nullptr);
  EXPECT_EQ(reg.findHistogram("missing"), nullptr);
  EXPECT_EQ(reg.size(), 0u);
  reg.counter("c").add(3);
  ASSERT_NE(reg.findCounter("c"), nullptr);
  EXPECT_EQ(reg.findCounter("c")->value(), 3u);
  // A counter name is not a gauge name.
  EXPECT_EQ(reg.findGauge("c"), nullptr);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, JsonIsDeterministicAcrossInsertionOrder) {
  MetricsRegistry a;
  a.counter("z.count").add(7);
  a.gauge("a.load").set(0.5);
  a.histogram("m.lat").observe(2.0);

  MetricsRegistry b;
  b.histogram("m.lat").observe(2.0);
  b.counter("z.count").add(7);
  b.gauge("a.load").set(0.5);

  EXPECT_EQ(a.toJson(), b.toJson());
}

TEST(MetricsRegistry, JsonShapeHoldsAllSections) {
  MetricsRegistry reg;
  reg.counter("events").add(2);
  reg.gauge("level").set(1.5);
  reg.histogram("lat").observe(3.0);
  const std::string json = reg.toJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"events\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"level\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(MetricsRegistry, EmptyRegistryStillEmitsValidShape) {
  const MetricsRegistry reg;
  EXPECT_EQ(reg.toJson(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {}\n}\n");
}

TEST(MetricsRegistry, CsvHasOneRowPerInstrument) {
  MetricsRegistry reg;
  reg.counter("c").add(4);
  reg.gauge("g").set(2.5);
  reg.histogram("h").observe(1.0);
  const std::string path = testing::TempDir() + "/rtdrm_obs_metrics.csv";
  ASSERT_TRUE(reg.writeCsv(path));
  std::ifstream f(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(f, line)) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 4u);  // header + 3 instruments
  EXPECT_EQ(lines[0], "name,kind,value,count,sum,min,max");
  EXPECT_EQ(lines[1].rfind("c,counter,4", 0), 0u);
  EXPECT_EQ(lines[2].rfind("g,gauge,2.5", 0), 0u);
  EXPECT_EQ(lines[3].rfind("h,histogram,", 0), 0u);
  std::remove(path.c_str());
}

TEST(MetricsRegistry, WritersFailOnBadPath) {
  MetricsRegistry reg;
  reg.counter("c").add(1);
  EXPECT_FALSE(reg.writeJson("/nonexistent-dir/x/y.json"));
  EXPECT_FALSE(reg.writeCsv("/nonexistent-dir/x/y.csv"));
}

TEST(MetricsRegistry, ForEachVisitsOnlyMatchingKindInSortedOrder) {
  MetricsRegistry reg;
  reg.counter("b").add(1);
  reg.counter("a").add(2);
  reg.gauge("g").set(0.0);
  std::vector<std::string> names;
  reg.forEachCounter(
      [&names](const std::string& n, const Counter&) { names.push_back(n); });
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  std::size_t gauges = 0;
  reg.forEachGauge([&gauges](const std::string&, const Gauge&) { ++gauges; });
  EXPECT_EQ(gauges, 1u);
}

}  // namespace
}  // namespace rtdrm::obs
