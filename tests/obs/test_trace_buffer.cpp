#include "obs/trace_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

namespace rtdrm::obs {
namespace {

TEST(TraceBuffer, RecordsStampSequenceAndClock) {
  TraceBuffer buf(8);
  double now = 1.5;
  buf.setClock([&now] { return now; });
  buf.record(RecordKind::kGrowthStart, 0, 2, kRecordNoNode, 10.0, 20.0);
  now = 3.25;
  buf.record(RecordKind::kGrowthTake, kFlagAccept, 2, 4, 0.5);
  const auto records = buf.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].seq, 1u);
  EXPECT_EQ(records[1].seq, 2u);
  EXPECT_DOUBLE_EQ(records[0].t_ms, 1.5);
  EXPECT_DOUBLE_EQ(records[1].t_ms, 3.25);
  EXPECT_EQ(records[0].kind, RecordKind::kGrowthStart);
  EXPECT_EQ(records[0].stage, 2u);
  EXPECT_EQ(records[0].node, kRecordNoNode);
  EXPECT_DOUBLE_EQ(records[0].a, 10.0);
  EXPECT_DOUBLE_EQ(records[0].b, 20.0);
  EXPECT_TRUE(records[1].accepted());
  EXPECT_EQ(records[1].node, 4u);
}

TEST(TraceBuffer, UnsetClockStampsZero) {
  TraceBuffer buf(4);
  buf.record(RecordKind::kMiss);
  EXPECT_DOUBLE_EQ(buf.snapshot().front().t_ms, 0.0);
}

TEST(TraceBuffer, WrapOverwritesOldestAndCountsLoss) {
  TraceBuffer buf(4);
  for (int i = 0; i < 10; ++i) {
    buf.record(RecordKind::kGrowthCheck, 0, static_cast<std::uint16_t>(i));
  }
  EXPECT_EQ(buf.capacity(), 4u);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.recorded(), 10u);
  EXPECT_EQ(buf.overwritten(), 6u);
  // Retained records are the newest four, oldest-first, gap-free seq.
  const auto records = buf.snapshot();
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, 7u + i);
    EXPECT_EQ(records[i].stage, 6u + i);
  }
}

TEST(TraceBuffer, PerKindCountsSurviveWrap) {
  TraceBuffer buf(2);
  for (int i = 0; i < 5; ++i) {
    buf.record(RecordKind::kReplicate);
  }
  for (int i = 0; i < 3; ++i) {
    buf.record(RecordKind::kShutdown);
  }
  EXPECT_EQ(buf.count(RecordKind::kReplicate), 5u);
  EXPECT_EQ(buf.count(RecordKind::kShutdown), 3u);
  EXPECT_EQ(buf.count(RecordKind::kMiss), 0u);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(TraceBuffer, ClearResetsEverything) {
  TraceBuffer buf(2);
  buf.record(RecordKind::kMiss);
  buf.record(RecordKind::kMiss);
  buf.record(RecordKind::kMiss);
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.recorded(), 0u);
  EXPECT_EQ(buf.overwritten(), 0u);
  EXPECT_EQ(buf.count(RecordKind::kMiss), 0u);
  buf.record(RecordKind::kShed);
  EXPECT_EQ(buf.snapshot().front().seq, 1u);
}

TEST(TraceBuffer, ForEachMatchesSnapshotOrder) {
  TraceBuffer buf(3);
  for (int i = 0; i < 7; ++i) {
    buf.record(RecordKind::kGrowthTake, 0, 0,
               static_cast<std::uint32_t>(i));
  }
  std::vector<std::uint64_t> seen;
  buf.forEach([&seen](const TraceRecord& r) { seen.push_back(r.seq); });
  const auto records = buf.snapshot();
  ASSERT_EQ(seen.size(), records.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], records[i].seq);
  }
}

TEST(TraceBuffer, BinaryRoundTripPreservesRecords) {
  TraceBuffer buf(16);
  buf.setClock([] { return 42.0; });
  buf.record(RecordKind::kGrowthCheck, kFlagAccept, 3, 1, 1.25, 2.5, 8.75);
  buf.record(RecordKind::kShed, 0, 0, kRecordNoNode, 0.4);
  const std::string path = testing::TempDir() + "/rtdrm_obs_roundtrip.rtt";
  ASSERT_TRUE(buf.writeBinary(path));
  std::vector<TraceRecord> loaded;
  ASSERT_TRUE(TraceBuffer::readBinary(path, loaded));
  const auto original = buf.snapshot();
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].seq, original[i].seq);
    EXPECT_EQ(loaded[i].kind, original[i].kind);
    EXPECT_EQ(loaded[i].flags, original[i].flags);
    EXPECT_EQ(loaded[i].stage, original[i].stage);
    EXPECT_EQ(loaded[i].node, original[i].node);
    EXPECT_DOUBLE_EQ(loaded[i].t_ms, original[i].t_ms);
    EXPECT_DOUBLE_EQ(loaded[i].a, original[i].a);
    EXPECT_DOUBLE_EQ(loaded[i].b, original[i].b);
    EXPECT_DOUBLE_EQ(loaded[i].c, original[i].c);
  }
  std::remove(path.c_str());
}

TEST(TraceBuffer, WriteBinaryFailsOnBadPath) {
  const TraceBuffer buf(4);
  EXPECT_FALSE(buf.writeBinary("/nonexistent-dir/x/y.rtt"));
}

TEST(TraceBuffer, ReadBinaryRejectsMissingAndMalformedFiles) {
  std::vector<TraceRecord> out;
  EXPECT_FALSE(TraceBuffer::readBinary("/nonexistent-dir/x/y.rtt", out));

  const std::string path = testing::TempDir() + "/rtdrm_obs_garbage.rtt";
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a trace dump";
  }
  EXPECT_FALSE(TraceBuffer::readBinary(path, out));
  std::remove(path.c_str());
}

TEST(RecordKindNames, ExhaustiveAndUnique) {
  std::set<std::string> names;
  for (std::uint8_t k = 0; k < kRecordKindCount; ++k) {
    const char* name = recordKindName(static_cast<RecordKind>(k));
    EXPECT_STRNE(name, "?") << "kind " << static_cast<int>(k)
                            << " has no name";
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate kind name '" << name << "'";
  }
  EXPECT_STREQ(recordKindName(static_cast<RecordKind>(kRecordKindCount)),
               "?");
}

TEST(RecordKindNames, DecisionChannelPartition) {
  // The decision-audit channel is exactly the growth loop, the threshold
  // heuristic, and the manager's actions — never the period lifecycle.
  EXPECT_TRUE(isDecisionKind(RecordKind::kGrowthStart));
  EXPECT_TRUE(isDecisionKind(RecordKind::kGrowthCheck));
  EXPECT_TRUE(isDecisionKind(RecordKind::kThresholdTake));
  EXPECT_TRUE(isDecisionKind(RecordKind::kMonitorAction));
  EXPECT_TRUE(isDecisionKind(RecordKind::kFailoverScrub));
  EXPECT_FALSE(isDecisionKind(RecordKind::kNodeDown));
  EXPECT_FALSE(isDecisionKind(RecordKind::kMiss));
  EXPECT_FALSE(isDecisionKind(RecordKind::kBudgetsAssigned));
  EXPECT_FALSE(isDecisionKind(RecordKind::kPlacementChanged));
}

}  // namespace
}  // namespace rtdrm::obs
