// Three-source accounting cross-check over the scenario fuzzer.
//
// For every seed, the same run is tallied three independent ways — the obs
// trace/registry, the manager's EpisodeMetrics, and the invariant oracle's
// own hook counters — and runFuzzCase reconciles them (misses, effective
// replications, shutdowns, allocation failures, delivery receipts). A
// mismatch means an instrumentation site was dropped, double-counted, or
// drifted from the behavior it claims to describe.
#include <gtest/gtest.h>

#include "check/fuzz.hpp"
#include "obs/obs.hpp"

namespace rtdrm::check {
namespace {

TEST(ObsCrossCheck, FiftySeedsReconcileAcrossThreeSources) {
  ShrinkSpec shrink;
  shrink.max_periods = 8;  // keep 200 full-stack runs affordable
  std::uint64_t growth_checks_seen = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const bool with_faults = seed % 2 == 1;
    const FuzzScenario scenario = makeFuzzScenario(seed, shrink, with_faults);
    for (const AllocatorKind kind :
         {AllocatorKind::kPredictive, AllocatorKind::kNonPredictive}) {
      obs::Observability bundle;
      const FuzzCaseResult r = runFuzzCase(scenario, kind, &bundle);
      EXPECT_TRUE(r.obs_mismatch.empty())
          << "seed " << seed << " " << allocatorKindName(kind)
          << (with_faults ? " +faults" : "") << ":\n"
          << r.obs_mismatch;
      EXPECT_GT(bundle.metrics.size(), 0u);
      if (kind == AllocatorKind::kPredictive) {
        growth_checks_seen += bundle.trace.count(obs::RecordKind::kGrowthCheck);
        // Every growth-loop verdict carries both forecast terms and the
        // limit it was judged against (eq. 3 eex, eqs. 5-6 ecd).
        bundle.trace.forEach([&](const obs::TraceRecord& rec) {
          if (rec.kind != obs::RecordKind::kGrowthCheck) {
            return;
          }
          EXPECT_GE(rec.a, 0.0) << "eex forecast missing";
          EXPECT_GE(rec.b, 0.0) << "ecd forecast missing";
          EXPECT_GT(rec.c, 0.0) << "deadline-slack limit missing";
        });
      }
    }
  }
  // The sweep must actually have exercised the predictive growth loop.
  EXPECT_GT(growth_checks_seen, 100u);
}

}  // namespace
}  // namespace rtdrm::check
