// Observability neutrality: attaching the obs layer must not change a
// single bit of behavior. Proven two ways — byte-identical fuzz digests
// (which fold in every trace event, metric mean, substrate counter, and
// the oracle's check count), and bitwise-equal episode metrics.
#include <gtest/gtest.h>

#include <string>

#include "apps/dynbench.hpp"
#include "check/fuzz.hpp"
#include "experiments/episode.hpp"
#include "obs/obs.hpp"
#include "workload/patterns.hpp"

namespace rtdrm {
namespace {

TEST(ObsNeutrality, FuzzDigestsIdenticalWithObsAttached) {
  check::ShrinkSpec shrink;
  shrink.max_periods = 10;
  const struct {
    std::uint64_t seed;
    bool faults;
  } cases[] = {{1, false}, {2, false}, {11, true}, {12, true}};
  std::uint64_t total_recorded = 0;
  for (const auto& c : cases) {
    const check::FuzzScenario scenario =
        check::makeFuzzScenario(c.seed, shrink, c.faults);
    for (const check::AllocatorKind kind :
         {check::AllocatorKind::kPredictive,
          check::AllocatorKind::kNonPredictive}) {
      const check::FuzzCaseResult plain = check::runFuzzCase(scenario, kind);
      obs::Observability bundle;
      const check::FuzzCaseResult traced =
          check::runFuzzCase(scenario, kind, &bundle);
      EXPECT_EQ(plain.digest, traced.digest)
          << "seed " << c.seed << " " << check::allocatorKindName(kind)
          << (c.faults ? " +faults" : "")
          << ": attaching obs changed the run digest";
      // Oracle-visible behavior unchanged: same checks, same verdicts.
      EXPECT_EQ(plain.checks, traced.checks);
      EXPECT_EQ(plain.violations, traced.violations);
      EXPECT_TRUE(traced.obs_mismatch.empty()) << traced.obs_mismatch;
      EXPECT_GT(bundle.metrics.size(), 0u);
      // A capped scenario can legitimately stay quiet (no monitor action,
      // no miss), so non-vacuity is asserted across the whole sweep.
      total_recorded += bundle.trace.recorded();
    }
  }
  EXPECT_GT(total_recorded, 0u);
}

TEST(ObsNeutrality, EpisodeMetricsBitwiseEqualWithObsAttached) {
  const task::TaskSpec spec = apps::makeAawTaskSpec();
  core::PredictiveModels models;
  models.exec.resize(spec.stageCount());
  for (std::size_t i = 0; i < spec.stageCount(); ++i) {
    models.exec[i].a3 = spec.subtasks[i].cost.alpha_ms;
    models.exec[i].a2 = spec.subtasks[i].cost.alpha_ms;
    models.exec[i].b3 = spec.subtasks[i].cost.beta_ms;
    models.exec[i].b2 = spec.subtasks[i].cost.beta_ms;
  }
  workload::RampParams ramp;
  ramp.max_workload = DataSize::tracks(8000.0);
  const auto pattern = workload::makeFig8Pattern("triangular", ramp);
  experiments::EpisodeConfig cfg;
  cfg.periods = 20;

  for (const auto algorithm : {experiments::AlgorithmKind::kPredictive,
                               experiments::AlgorithmKind::kNonPredictive}) {
    const auto plain = runEpisode(spec, *pattern, models, algorithm, cfg);

    obs::Observability bundle;
    experiments::EpisodeConfig traced_cfg = cfg;
    traced_cfg.obs = &bundle;
    const auto traced =
        runEpisode(spec, *pattern, models, algorithm, traced_cfg);

    // Bitwise equality — identical runs, not merely statistically close.
    EXPECT_EQ(plain.missed_pct, traced.missed_pct);
    EXPECT_EQ(plain.cpu_pct, traced.cpu_pct);
    EXPECT_EQ(plain.net_pct, traced.net_pct);
    EXPECT_EQ(plain.avg_replicas, traced.avg_replicas);
    EXPECT_EQ(plain.combined, traced.combined);
    EXPECT_EQ(plain.metrics.replicate_actions,
              traced.metrics.replicate_actions);
    EXPECT_EQ(plain.metrics.shutdown_actions, traced.metrics.shutdown_actions);
    EXPECT_EQ(plain.metrics.allocation_failures,
              traced.metrics.allocation_failures);
    EXPECT_EQ(plain.metrics.end_to_end_ms.mean(),
              traced.metrics.end_to_end_ms.mean());
    EXPECT_GT(bundle.trace.recorded(), 0u);
  }
}

}  // namespace
}  // namespace rtdrm
