#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace rtdrm::obs {
namespace {

TraceRecord make(RecordKind kind, std::uint8_t flags = 0,
                 std::uint16_t stage = 0, std::uint32_t node = kRecordNoNode,
                 double a = 0.0, double b = 0.0, double c = 0.0) {
  TraceRecord r;
  r.t_ms = 12.5;
  r.seq = 1;
  r.kind = kind;
  r.flags = flags;
  r.stage = stage;
  r.node = node;
  r.a = a;
  r.b = b;
  r.c = c;
  return r;
}

TEST(FormatDecisionLine, GrowthCheckCarriesNodeAndVerdictButNoFloats) {
  const TraceRecord accepted =
      make(RecordKind::kGrowthCheck, kFlagAccept, 2, 5, 1.234, 5.678, 9.0);
  EXPECT_EQ(formatDecisionLine(accepted), "growth-check stage=2 node=5 accept");
  const TraceRecord rejected =
      make(RecordKind::kGrowthCheck, 0, 2, 5, 1.234, 5.678, 9.0);
  EXPECT_EQ(formatDecisionLine(rejected), "growth-check stage=2 node=5 reject");
}

TEST(FormatDecisionLine, CountPayloadsPrintAsIntegers) {
  EXPECT_EQ(formatDecisionLine(
                make(RecordKind::kGrowthAccept, 0, 1, kRecordNoNode, 3.0)),
            "growth-accept stage=1 n=3");
  EXPECT_EQ(formatDecisionLine(
                make(RecordKind::kShutdown, 0, 4, 2, 1.0)),
            "shutdown stage=4 node=2 n=1");
  // Threshold takes print node + no count (utilizations are floats).
  EXPECT_EQ(formatDecisionLine(
                make(RecordKind::kThresholdTake, kFlagAccept, 0, 3, 0.15)),
            "threshold-take stage=0 node=3");
}

TEST(FormatDecisionLine, MonitorActionVerdictDistinguishesReplicateShutdown) {
  EXPECT_EQ(formatDecisionLine(make(RecordKind::kMonitorAction, kFlagAccept,
                                    1)),
            "monitor-action stage=1 accept");
  EXPECT_EQ(formatDecisionLine(make(RecordKind::kMonitorAction, 0, 1)),
            "monitor-action stage=1 reject");
}

TEST(DecisionAuditLines, FiltersToTheDecisionChannelInOrder) {
  std::vector<TraceRecord> records;
  records.push_back(make(RecordKind::kBudgetsAssigned));  // lifecycle: out
  records.push_back(make(RecordKind::kGrowthStart, 0, 1));
  records.push_back(make(RecordKind::kMiss));             // lifecycle: out
  records.push_back(make(RecordKind::kGrowthTake, 0, 1, 0));
  records.push_back(make(RecordKind::kPlacementChanged));  // lifecycle: out
  const auto lines = decisionAuditLines(records);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "growth-start stage=1");
  EXPECT_EQ(lines[1], "growth-take stage=1 node=0");
}

TEST(WriteDecisionAudit, WritesNewlineTerminatedLines) {
  std::vector<TraceRecord> records;
  records.push_back(make(RecordKind::kGrowthStart, 0, 0));
  const std::string path = testing::TempDir() + "/rtdrm_obs_audit.txt";
  ASSERT_TRUE(writeDecisionAudit(path, records));
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), "growth-start stage=0\n");
  std::remove(path.c_str());
  EXPECT_FALSE(writeDecisionAudit("/nonexistent-dir/x/audit.txt", records));
}

TEST(PerfettoJson, EmitsInstantEventsWithMicrosecondTimestamps) {
  std::vector<TraceRecord> records;
  records.push_back(
      make(RecordKind::kGrowthCheck, kFlagAccept, 3, 7, 1.5, 2.5, 3.5));
  const std::string json = toPerfettoJson(records);
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [", 0),
            0u);
  EXPECT_NE(json.find("\"name\": \"growth-check\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 12500.000"), std::string::npos);  // 12.5 ms
  EXPECT_NE(json.find("\"tid\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"node\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"accept\": true"), std::string::npos);
}

TEST(PerfettoJson, ShedRecordsAddACounterTrack) {
  std::vector<TraceRecord> records;
  records.push_back(make(RecordKind::kShed, 0, 0, kRecordNoNode, 0.25));
  const std::string json = toPerfettoJson(records);
  EXPECT_NE(json.find("\"name\": \"shed-fraction\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"fraction\": 0.25"), std::string::npos);
}

TEST(PerfettoJson, EmptyTraceIsStillAValidDocument) {
  const std::string json = toPerfettoJson({});
  EXPECT_EQ(json, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n]}\n");
}

TEST(WritePerfettoJson, FailsOnBadPath) {
  EXPECT_FALSE(writePerfettoJson("/nonexistent-dir/x/trace.json", {}));
}

}  // namespace
}  // namespace rtdrm::obs
