#include "regress/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace rtdrm::regress {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Matrix, IdentityMultiplicationIsNoOp) {
  Matrix a(3, 3);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 2) = -3.0;
  a(2, 0) = 4.0;
  const Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ((a * i).maxAbsDiff(a), 0.0);
  EXPECT_DOUBLE_EQ((i * a).maxAbsDiff(a), 0.0);
}

TEST(Matrix, MultiplicationKnownValues) {
  Matrix a(2, 3);
  a(0, 0) = 1.0; a(0, 1) = 2.0; a(0, 2) = 3.0;
  a(1, 0) = 4.0; a(1, 1) = 5.0; a(1, 2) = 6.0;
  Matrix b(3, 2);
  b(0, 0) = 7.0;  b(0, 1) = 8.0;
  b(1, 0) = 9.0;  b(1, 1) = 10.0;
  b(2, 0) = 11.0; b(2, 1) = 12.0;
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, TransposeInvolution) {
  Matrix a(2, 3);
  a(0, 2) = 5.0;
  a(1, 0) = -2.0;
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(t.transposed().maxAbsDiff(a), 0.0);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 3.0; a(1, 1) = 4.0;
  const Vector y = a * Vector{5.0, 6.0};
  EXPECT_DOUBLE_EQ(y[0], 17.0);
  EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(Matrix, AdditionSubtraction) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 3.0);
  EXPECT_DOUBLE_EQ((a + b)(0, 0), 4.0);
  EXPECT_DOUBLE_EQ((b - a)(1, 1), 2.0);
}

TEST(SolveGaussian, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  const Vector x = solveGaussian(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveGaussian, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  const Vector x = solveGaussian(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SolveGaussian, RandomSystemsRoundTrip) {
  Xoshiro256 rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 5;
    Matrix a(n, n);
    Vector x_true(n);
    for (std::size_t i = 0; i < n; ++i) {
      x_true[i] = rng.uniform(-10.0, 10.0);
      for (std::size_t j = 0; j < n; ++j) {
        a(i, j) = rng.uniform(-5.0, 5.0);
      }
      a(i, i) += 10.0;  // diagonally dominant: well-conditioned
    }
    const Vector b = a * x_true;
    const Vector x = solveGaussian(a, b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-8);
    }
  }
}

TEST(SolveGaussianDeathTest, SingularMatrixAsserts) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;  // rank 1
  EXPECT_DEATH(solveGaussian(a, {1.0, 2.0}), "singular");
}

TEST(Cholesky, FactorReconstructsMatrix) {
  // SPD matrix A = B^T B + I.
  Matrix b(3, 3);
  b(0, 0) = 1.0; b(0, 1) = 2.0; b(0, 2) = 0.5;
  b(1, 0) = 0.0; b(1, 1) = 1.0; b(1, 2) = -1.0;
  b(2, 0) = 2.0; b(2, 1) = 0.0; b(2, 2) = 1.0;
  Matrix a = b.transposed() * b;
  for (std::size_t i = 0; i < 3; ++i) {
    a(i, i) += 1.0;
  }
  const Matrix l = choleskyLower(a);
  EXPECT_LT((l * l.transposed()).maxAbsDiff(a), 1e-10);
}

TEST(Cholesky, SolveMatchesGaussian) {
  Matrix a(3, 3);
  a(0, 0) = 4.0; a(0, 1) = 1.0; a(0, 2) = 0.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0; a(1, 2) = 1.0;
  a(2, 0) = 0.0; a(2, 1) = 1.0; a(2, 2) = 2.0;
  const Vector b{1.0, 2.0, 3.0};
  const Vector xc = solveCholesky(a, b);
  const Vector xg = solveGaussian(a, b);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(xc[i], xg[i], 1e-10);
  }
}

TEST(CholeskyDeathTest, NonSpdAsserts) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 1.0;  // indefinite
  EXPECT_DEATH(choleskyLower(a), "SPD");
}

TEST(LeastSquaresQR, ExactSystemRecovered) {
  Matrix a(3, 2);
  a(0, 0) = 1.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 2.0;
  a(2, 0) = 1.0; a(2, 1) = 3.0;
  // y = 0.5 + 2 x.
  const Vector beta = solveLeastSquaresQR(a, {2.5, 4.5, 6.5});
  EXPECT_NEAR(beta[0], 0.5, 1e-10);
  EXPECT_NEAR(beta[1], 2.0, 1e-10);
}

TEST(LeastSquaresQR, OverdeterminedMinimizesResidual) {
  // Points not on a line: LS line through (0,0),(1,1),(2,0) is y = 1/3 + 0x.
  Matrix a(3, 2);
  for (int i = 0; i < 3; ++i) {
    a(static_cast<std::size_t>(i), 0) = 1.0;
    a(static_cast<std::size_t>(i), 1) = static_cast<double>(i);
  }
  const Vector beta = solveLeastSquaresQR(a, {0.0, 1.0, 0.0});
  EXPECT_NEAR(beta[0], 1.0 / 3.0, 1e-10);
  EXPECT_NEAR(beta[1], 0.0, 1e-10);
}

TEST(LeastSquaresQR, MatchesNormalEquationsOnRandomProblems) {
  Xoshiro256 rng(33);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = 40;
    const std::size_t n = 4;
    Matrix a(m, n);
    Vector beta_true(n);
    for (std::size_t j = 0; j < n; ++j) {
      beta_true[j] = rng.uniform(-3.0, 3.0);
    }
    Vector y(m);
    for (std::size_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        a(i, j) = rng.uniform(-2.0, 2.0);
        acc += a(i, j) * beta_true[j];
      }
      y[i] = acc + rng.normal(0.0, 0.01);
    }
    const Vector qr = solveLeastSquaresQR(a, y);
    // Normal equations via Cholesky.
    const Matrix at = a.transposed();
    const Vector ne = solveCholesky(at * a, at * y);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(qr[j], ne[j], 1e-7);
      EXPECT_NEAR(qr[j], beta_true[j], 0.05);
    }
  }
}

TEST(VectorOps, DotAndNorm) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(norm2({}), 0.0);
}

}  // namespace
}  // namespace rtdrm::regress
