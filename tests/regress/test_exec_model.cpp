#include "regress/exec_model.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace rtdrm::regress {
namespace {

// Synthesizes samples from a known eq.-3 surface, optionally noisy.
std::vector<ExecSample> surfaceSamples(const ExecLatencyModel& truth,
                                       double noise_sigma, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<ExecSample> samples;
  for (double u : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    for (double d = 1.0; d <= 25.0; d += 1.0) {
      const double y =
          truth.evalMs(d, u) * (noise_sigma > 0.0
                                    ? rng.lognormalUnitMean(noise_sigma)
                                    : 1.0);
      samples.push_back(ExecSample{d, u, y});
    }
  }
  return samples;
}

ExecLatencyModel paperFilterModel() {
  // Table 2, subtask 3, with u as a fraction.
  ExecLatencyModel m;
  m.a1 = -0.00155;
  m.a2 = 1.535e-05;
  m.a3 = 0.11816174;
  m.b1 = 0.0298276;
  m.b2 = -0.000285;
  m.b3 = 0.983699;
  return m;
}

TEST(ExecLatencyModel, EvaluatesEq3) {
  ExecLatencyModel m;
  m.a3 = 0.1;
  m.b3 = 2.0;
  EXPECT_DOUBLE_EQ(m.evalMs(10.0, 0.0), 0.1 * 100.0 + 2.0 * 10.0);
  // Quadratic and linear u-coefficients participate.
  m.a1 = 1.0;
  m.a2 = 2.0;
  m.b1 = 3.0;
  m.b2 = 4.0;
  const double u = 0.5;
  const double expected = (1.0 * 0.25 + 2.0 * 0.5 + 0.1) * 100.0 +
                          (3.0 * 0.25 + 4.0 * 0.5 + 2.0) * 10.0;
  EXPECT_DOUBLE_EQ(m.evalMs(10.0, u), expected);
}

TEST(ExecLatencyModel, ClampsNegativeForecastsToZero) {
  ExecLatencyModel m;
  m.a3 = -5.0;  // pathological fit
  m.b3 = 0.1;
  EXPECT_DOUBLE_EQ(m.evalMs(10.0, 0.0), 0.0);
}

TEST(ExecLatencyModel, ZeroDataZeroLatency) {
  const ExecLatencyModel m = paperFilterModel();
  EXPECT_DOUBLE_EQ(m.evalMs(0.0, 0.5), 0.0);
}

TEST(ExecLatencyModel, StrongTypeOverloadMatches) {
  const ExecLatencyModel m = paperFilterModel();
  EXPECT_DOUBLE_EQ(
      m.eval(DataSize::tracks(1000.0), Utilization::fraction(0.4)).ms(),
      m.evalMs(10.0, 0.4));
}

TEST(FitLevel, RecoversPerLevelQuadratic) {
  std::vector<ExecSample> samples;
  for (double d = 1.0; d <= 20.0; d += 1.0) {
    samples.push_back(ExecSample{d, 0.4, 0.25 * d * d + 1.5 * d});
  }
  const LevelFit lf = fitLevel(samples);
  EXPECT_NEAR(lf.c2, 0.25, 1e-9);
  EXPECT_NEAR(lf.c1, 1.5, 1e-9);
  EXPECT_DOUBLE_EQ(lf.u, 0.4);
  EXPECT_NEAR(lf.diagnostics.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(lf.evalMs(10.0), 40.0, 1e-9);
}

TEST(FitExecModelTwoStage, RecoversNoiselessSurfaceExactly) {
  const ExecLatencyModel truth = paperFilterModel();
  const ExecModelFit fit =
      fitExecModelTwoStage(surfaceSamples(truth, 0.0, 1));
  EXPECT_NEAR(fit.model.a1, truth.a1, 1e-6);
  EXPECT_NEAR(fit.model.a2, truth.a2, 1e-6);
  EXPECT_NEAR(fit.model.a3, truth.a3, 1e-6);
  EXPECT_NEAR(fit.model.b1, truth.b1, 1e-6);
  EXPECT_NEAR(fit.model.b2, truth.b2, 1e-6);
  EXPECT_NEAR(fit.model.b3, truth.b3, 1e-6);
  EXPECT_GT(fit.diagnostics.r_squared, 0.999999);
  EXPECT_EQ(fit.levels.size(), 5u);
}

TEST(FitExecModelJoint, RecoversNoiselessSurfaceExactly) {
  const ExecLatencyModel truth = paperFilterModel();
  const ExecModelFit fit = fitExecModelJoint(surfaceSamples(truth, 0.0, 2));
  EXPECT_NEAR(fit.model.a3, truth.a3, 1e-6);
  EXPECT_NEAR(fit.model.b3, truth.b3, 1e-6);
  EXPECT_GT(fit.diagnostics.r_squared, 0.999999);
  EXPECT_TRUE(fit.levels.empty());
}

TEST(FitExecModelTwoStage, ToleratesMeasurementNoise) {
  const ExecLatencyModel truth = paperFilterModel();
  const ExecModelFit fit =
      fitExecModelTwoStage(surfaceSamples(truth, 0.05, 3));
  EXPECT_GT(fit.diagnostics.r_squared, 0.98);
  // Predictions stay within ~15% over the profiled region.
  for (double u : {0.1, 0.5, 0.7}) {
    for (double d : {5.0, 15.0, 25.0}) {
      const double t = truth.evalMs(d, u);
      EXPECT_NEAR(fit.model.evalMs(d, u), t, 0.15 * t + 0.5);
    }
  }
}

TEST(FitExecModelTwoStage, GroupsNearbyUtilizationLevels) {
  std::vector<ExecSample> samples;
  for (double u_base : {0.0, 0.3, 0.6}) {
    for (double d = 1.0; d <= 10.0; d += 1.0) {
      // Jitter below the grouping tolerance.
      samples.push_back(
          ExecSample{d, u_base + 1e-5, 0.1 * d * d + (1.0 + u_base) * d});
    }
  }
  const ExecModelFit fit = fitExecModelTwoStage(samples, 1e-3);
  EXPECT_EQ(fit.levels.size(), 3u);
}

TEST(FitExecModelTwoStageDeathTest, TooFewLevelsAsserts) {
  std::vector<ExecSample> samples;
  for (double d = 1.0; d <= 10.0; d += 1.0) {
    samples.push_back(ExecSample{d, 0.0, d});
    samples.push_back(ExecSample{d, 0.5, 2.0 * d});
  }
  EXPECT_DEATH(fitExecModelTwoStage(samples), "3 utilization levels");
}

TEST(FitExecModelJointDeathTest, TooFewSamplesAsserts) {
  std::vector<ExecSample> samples{{1.0, 0.1, 1.0}, {2.0, 0.2, 2.0}};
  EXPECT_DEATH(fitExecModelJoint(samples), "6 samples");
}

TEST(CrossValidateExecModel, PerfectSurfaceHasNearZeroCvError) {
  const auto samples = surfaceSamples(paperFilterModel(), 0.0, 7);
  const CrossValidation cv = crossValidateExecModel(samples, 5, true);
  EXPECT_EQ(cv.fold_rmse.size(), 5u);
  EXPECT_LT(cv.mean_rmse, 1e-6);
  EXPECT_GT(cv.mean_r_squared, 0.999999);
}

TEST(CrossValidateExecModel, NoisyDataCvTracksNoiseFloor) {
  const ExecLatencyModel truth = paperFilterModel();
  const auto samples = surfaceSamples(truth, 0.05, 8);
  const CrossValidation cv = crossValidateExecModel(samples, 5, true);
  // Held-out error must be of the order of the injected 5% noise — neither
  // vanishing (overfit leak) nor exploding (level starvation).
  EXPECT_GT(cv.mean_rmse, 0.1);
  EXPECT_GT(cv.mean_r_squared, 0.95);
}

TEST(CrossValidateExecModel, JointFitVariantWorks) {
  const auto samples = surfaceSamples(paperFilterModel(), 0.02, 9);
  const CrossValidation two = crossValidateExecModel(samples, 4, true);
  const CrossValidation joint = crossValidateExecModel(samples, 4, false);
  EXPECT_GT(two.mean_r_squared, 0.97);
  EXPECT_GT(joint.mean_r_squared, 0.97);
}

TEST(CrossValidateExecModelDeathTest, RejectsTooFewFolds) {
  const auto samples = surfaceSamples(paperFilterModel(), 0.0, 10);
  EXPECT_DEATH(crossValidateExecModel(samples, 1), "assertion");
}

// Property: both fitters agree closely on noiseless surfaces spanning a
// range of coefficient magnitudes.
class FitterAgreement : public ::testing::TestWithParam<double> {};

TEST_P(FitterAgreement, TwoStageMatchesJointOnCleanData) {
  ExecLatencyModel truth;
  const double scale = GetParam();
  truth.a1 = 0.3 * scale;
  truth.a2 = -0.05 * scale;
  truth.a3 = 0.1 * scale;
  truth.b1 = 1.0 * scale;
  truth.b2 = 0.2 * scale;
  truth.b3 = 1.5 * scale;
  const auto samples = surfaceSamples(truth, 0.0, 4);
  const ExecModelFit two = fitExecModelTwoStage(samples);
  const ExecModelFit joint = fitExecModelJoint(samples);
  for (double u : {0.0, 0.4, 0.8}) {
    for (double d : {2.0, 12.0, 24.0}) {
      EXPECT_NEAR(two.model.evalMs(d, u), joint.model.evalMs(d, u),
                  1e-4 * (1.0 + joint.model.evalMs(d, u)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, FitterAgreement,
                         ::testing::Values(0.01, 0.1, 1.0, 10.0));

}  // namespace
}  // namespace rtdrm::regress
