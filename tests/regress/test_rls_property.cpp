// Property: with forgetting factor 1 and a diffuse prior, the RLS
// incremental fit converges to the batch least-squares solution on the same
// samples — across many seeded random problems.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "regress/least_squares.hpp"
#include "regress/rls.hpp"

namespace rtdrm::regress {
namespace {

struct Problem {
  Matrix design;
  Vector y;
};

Problem makeProblem(std::uint64_t seed) {
  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const auto dim = static_cast<std::size_t>(rng.uniformInt(1, 4));
  const auto n = static_cast<std::size_t>(rng.uniformInt(12, 60));

  Vector truth(dim);
  for (double& t : truth) {
    t = rng.uniform(-5.0, 5.0);
  }

  Problem p{Matrix(n, dim), Vector(n)};
  for (std::size_t r = 0; r < n; ++r) {
    double y = 0.0;
    for (std::size_t c = 0; c < dim; ++c) {
      const double x = rng.uniform(-2.0, 2.0);
      p.design(r, c) = x;
      y += truth[c] * x;
    }
    p.y[r] = y + rng.normal(0.0, 0.05);
  }
  return p;
}

TEST(RlsVsBatchProperty, IncrementalFitMatchesBatchAcross100Seeds) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const Problem p = makeProblem(seed);
    const std::size_t dim = p.design.cols();

    // Diffuse prior + no forgetting: RLS is exact recursive OLS.
    RecursiveLeastSquares rls(dim, 1.0, 1e9);
    Vector x(dim);
    for (std::size_t r = 0; r < p.design.rows(); ++r) {
      for (std::size_t c = 0; c < dim; ++c) {
        x[c] = p.design(r, c);
      }
      rls.update(x, p.y[r]);
    }

    const FitResult batch = fitDesignMatrix(p.design, p.y);
    ASSERT_EQ(batch.coefficients.size(), dim);
    for (std::size_t c = 0; c < dim; ++c) {
      const double scale = std::max(1.0, std::abs(batch.coefficients[c]));
      EXPECT_NEAR(rls.coefficients()[c], batch.coefficients[c],
                  1e-4 * scale)
          << "seed " << seed << " coefficient " << c;
    }
    EXPECT_EQ(rls.covarianceResets(), 0u) << "seed " << seed;
  }
}

TEST(RlsVsBatchProperty, PredictionsAgreeOnHeldOutPoints) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Problem p = makeProblem(seed);
    const std::size_t dim = p.design.cols();
    RecursiveLeastSquares rls(dim, 1.0, 1e9);
    Vector x(dim);
    for (std::size_t r = 0; r < p.design.rows(); ++r) {
      for (std::size_t c = 0; c < dim; ++c) {
        x[c] = p.design(r, c);
      }
      rls.update(x, p.y[r]);
    }
    const FitResult batch = fitDesignMatrix(p.design, p.y);

    Xoshiro256 probe(seed + 12345);
    for (int k = 0; k < 5; ++k) {
      double batch_pred = 0.0;
      for (std::size_t c = 0; c < dim; ++c) {
        x[c] = probe.uniform(-2.0, 2.0);
        batch_pred += batch.coefficients[c] * x[c];
      }
      EXPECT_NEAR(rls.predict(x), batch_pred,
                  1e-4 * std::max(1.0, std::abs(batch_pred)))
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace rtdrm::regress
