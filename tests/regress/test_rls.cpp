#include "regress/rls.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "regress/least_squares.hpp"

namespace rtdrm::regress {
namespace {

TEST(RecursiveLeastSquares, ConvergesToTrueLineNoiseless) {
  RecursiveLeastSquares rls(2);
  // y = 3 + 2x; features [1, x].
  for (double x = 0.0; x <= 10.0; x += 0.5) {
    rls.update({1.0, x}, 3.0 + 2.0 * x);
  }
  EXPECT_NEAR(rls.coefficients()[0], 3.0, 1e-6);
  EXPECT_NEAR(rls.coefficients()[1], 2.0, 1e-6);
  EXPECT_NEAR(rls.predict({1.0, 4.0}), 11.0, 1e-5);
}

TEST(RecursiveLeastSquares, MatchesBatchOlsOnNoisyData) {
  Xoshiro256 rng(12);
  const std::size_t n = 300;
  Matrix design(n, 3);
  Vector y(n);
  RecursiveLeastSquares rls(3, /*lambda=*/1.0, /*initial_p=*/1e9);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 5.0);
    const Vector f{1.0, x, x * x};
    const double yi = 0.5 - 1.5 * x + 0.3 * x * x + rng.normal(0.0, 0.05);
    for (std::size_t j = 0; j < 3; ++j) {
      design(i, j) = f[j];
    }
    y[i] = yi;
    rls.update(f, yi);
  }
  const FitResult ols = fitDesignMatrix(design, y);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(rls.coefficients()[j], ols.coefficients[j], 1e-3);
  }
}

TEST(RecursiveLeastSquares, ForgettingTracksDrift) {
  // Slope changes from 2 to 5 halfway; lambda < 1 must follow, lambda = 1
  // must lag (it averages both regimes).
  RecursiveLeastSquares fast(2, 0.9);
  RecursiveLeastSquares never(2, 1.0);
  Xoshiro256 rng(13);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform(1.0, 4.0);
    const double slope = i < 200 ? 2.0 : 5.0;
    const double y = slope * x;
    fast.update({1.0, x}, y);
    never.update({1.0, x}, y);
  }
  EXPECT_NEAR(fast.coefficients()[1], 5.0, 0.2);
  EXPECT_LT(never.coefficients()[1], 4.5);  // stuck between regimes
}

TEST(RecursiveLeastSquares, SeedBiasesEarlyPredictions) {
  RecursiveLeastSquares rls(2, 1.0, /*initial_p=*/0.01);  // trust the seed
  rls.seed({10.0, 1.0});
  rls.update({1.0, 1.0}, 0.0);  // one contradicting point barely moves it
  EXPECT_GT(rls.predict({1.0, 1.0}), 8.0);
}

TEST(RecursiveLeastSquares, LoosePriorLearnsFast) {
  RecursiveLeastSquares rls(2, 1.0, /*initial_p=*/1e9);
  rls.seed({10.0, 1.0});
  rls.update({1.0, 1.0}, 0.0);
  rls.update({1.0, 2.0}, 0.0);
  EXPECT_NEAR(rls.predict({1.0, 1.5}), 0.0, 0.2);
}

TEST(RecursiveLeastSquares, ObservationCount) {
  RecursiveLeastSquares rls(2);
  EXPECT_EQ(rls.observations(), 0u);
  rls.update({1.0, 1.0}, 1.0);
  rls.update({1.0, 2.0}, 2.0);
  EXPECT_EQ(rls.observations(), 2u);
}

TEST(RecursiveLeastSquares, SurvivesMillionsOfPoorlyExcitedUpdates) {
  // A 1-parameter feature family spans only part of the 6-dim space; with
  // forgetting < 1 the unexcited covariance directions grow geometrically
  // and, without the ceiling, overflow within a few thousand updates.
  RecursiveLeastSquares rls(6, 0.99);
  double d = 1.0;
  for (int i = 0; i < 2'000'000; ++i) {
    const double d2 = d * d;
    rls.update({0.16 * d2, 0.4 * d2, d2, 0.16 * d, 0.4 * d, d}, 10.0 * d);
    d += 0.001;
    if (d > 30.0) {
      d = 1.0;
    }
  }
  // Still finite, still predicting sensibly in the excited subspace.
  const double pred = rls.predict({0.16 * 100.0, 0.4 * 100.0, 100.0,
                                   0.16 * 10.0, 0.4 * 10.0, 10.0});
  EXPECT_TRUE(std::isfinite(pred));
  EXPECT_NEAR(pred, 100.0, 10.0);
}

TEST(RecursiveLeastSquaresDeathTest, DimensionMismatchAsserts) {
  RecursiveLeastSquares rls(3);
  EXPECT_DEATH(rls.update({1.0, 2.0}, 1.0), "assertion");
}

// Property: order of (sufficiently informative) observations does not
// change the lambda = 1 converged estimate.
class RlsPermutation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RlsPermutation, OrderInvariantAtLambdaOne) {
  Xoshiro256 rng(GetParam());
  std::vector<std::pair<Vector, double>> data;
  for (int i = 0; i < 60; ++i) {
    const double x = rng.uniform(0.0, 3.0);
    data.push_back({{1.0, x}, 1.0 + 4.0 * x});
  }
  RecursiveLeastSquares forward(2, 1.0, 1e9);
  RecursiveLeastSquares backward(2, 1.0, 1e9);
  for (const auto& [f, y] : data) {
    forward.update(f, y);
  }
  for (auto it = data.rbegin(); it != data.rend(); ++it) {
    backward.update(it->first, it->second);
  }
  EXPECT_NEAR(forward.coefficients()[0], backward.coefficients()[0], 1e-6);
  EXPECT_NEAR(forward.coefficients()[1], backward.coefficients()[1], 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RlsPermutation,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace rtdrm::regress
