#include "regress/comm_model.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace rtdrm::regress {
namespace {

TEST(BufferDelayModel, LinearInTotalWorkload) {
  BufferDelayModel m;
  m.k_ms_per_hundred = 0.7;  // Table 3
  EXPECT_DOUBLE_EQ(m.evalMs(10.0), 7.0);
  EXPECT_DOUBLE_EQ(m.eval(DataSize::tracks(1000.0)).ms(), 7.0);
  EXPECT_DOUBLE_EQ(m.evalMs(0.0), 0.0);
}

TEST(BufferDelayModel, NegativeWorkloadClampsToZero) {
  BufferDelayModel m;
  EXPECT_DOUBLE_EQ(m.evalMs(-5.0), 0.0);
}

TEST(FitBufferDelay, RecoversExactSlope) {
  std::vector<CommSample> samples;
  for (double w = 1.0; w <= 100.0; w += 1.0) {
    samples.push_back(CommSample{w, 0.7 * w});
  }
  const BufferDelayFit fit = fitBufferDelay(samples);
  EXPECT_NEAR(fit.model.k_ms_per_hundred, 0.7, 1e-12);
  EXPECT_NEAR(fit.diagnostics.r_squared, 1.0, 1e-12);
}

TEST(FitBufferDelay, NoisySlopeWithinTolerance) {
  Xoshiro256 rng(6);
  std::vector<CommSample> samples;
  for (double w = 5.0; w <= 150.0; w += 2.5) {
    samples.push_back(CommSample{w, 0.7 * w + rng.normal(0.0, 2.0)});
  }
  const BufferDelayFit fit = fitBufferDelay(samples);
  EXPECT_NEAR(fit.model.k_ms_per_hundred, 0.7, 0.03);
  EXPECT_GT(fit.diagnostics.r_squared, 0.95);
}

TEST(CommDelayModel, TransmissionMatchesEq6) {
  CommDelayModel m;
  m.link_rate = BitRate::mbps(100.0);
  // 12500 B = 1 ms at 100 Mbps.
  EXPECT_NEAR(m.transmission(Bytes::of(12500.0)).ms(), 1.0, 1e-12);
}

TEST(CommDelayModel, OverheadFactorScalesTransmission) {
  CommDelayModel m;
  m.overhead_factor = 1.1;
  EXPECT_NEAR(m.transmission(Bytes::of(12500.0)).ms(), 1.1, 1e-12);
}

TEST(CommDelayModel, Eq4SumsBufferAndTransmission) {
  CommDelayModel m;
  m.buffer.k_ms_per_hundred = 0.7;
  m.link_rate = BitRate::mbps(100.0);
  // 100 tracks of 80 B = 8000 B payload; total workload 1000 tracks.
  const double expected_buf = 0.7 * 10.0;
  const double expected_trans = 8000.0 * 8.0 / 100e6 * 1000.0;
  EXPECT_NEAR(m.eval(Bytes::of(8000.0), DataSize::tracks(1000.0)).ms(),
              expected_buf + expected_trans, 1e-9);
}

TEST(CommDelayModel, DefaultsMatchTable1AndTable3) {
  const CommDelayModel m;
  EXPECT_DOUBLE_EQ(m.buffer.k_ms_per_hundred, 0.7);
  EXPECT_DOUBLE_EQ(m.link_rate.bitsPerSecond(), 100e6);
  EXPECT_DOUBLE_EQ(m.overhead_factor, 1.0);
}

// Property: fitted slope equals the analytic least-squares slope for any
// proportional data with symmetric noise, across scales.
class BufferSlopeScale : public ::testing::TestWithParam<double> {};

TEST_P(BufferSlopeScale, SlopeScalesLinearly) {
  const double k = GetParam();
  std::vector<CommSample> samples;
  for (double w = 1.0; w <= 50.0; w += 1.0) {
    samples.push_back(CommSample{w, k * w});
  }
  EXPECT_NEAR(fitBufferDelay(samples).model.k_ms_per_hundred, k,
              1e-10 * (1.0 + k));
}

INSTANTIATE_TEST_SUITE_P(Slopes, BufferSlopeScale,
                         ::testing::Values(0.01, 0.35, 0.7, 1.4, 10.0));

TEST(FitBufferDelayDeathTest, EmptyInputAsserts) {
  EXPECT_DEATH(fitBufferDelay({}), "assertion");
}

}  // namespace
}  // namespace rtdrm::regress
