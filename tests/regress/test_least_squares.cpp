#include "regress/least_squares.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace rtdrm::regress {
namespace {

TEST(FitPolynomial, RecoversExactQuadratic) {
  Vector x;
  Vector y;
  for (double v = 0.0; v <= 10.0; v += 1.0) {
    x.push_back(v);
    y.push_back(2.0 + 3.0 * v - 0.5 * v * v);
  }
  const FitResult fit = fitPolynomial(x, y, 2, true);
  ASSERT_EQ(fit.coefficients.size(), 3u);
  EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[1], 3.0, 1e-9);
  EXPECT_NEAR(fit.coefficients[2], -0.5, 1e-9);
  EXPECT_NEAR(fit.diagnostics.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.diagnostics.rmse, 0.0, 1e-9);
}

TEST(FitPolynomial, NoInterceptFormMatchesEq3Shape) {
  // y = 0.118 d^2 + 0.98 d (the paper's Filter at u -> 0).
  Vector x;
  Vector y;
  for (double d = 1.0; d <= 25.0; d += 1.0) {
    x.push_back(d);
    y.push_back(0.118 * d * d + 0.98 * d);
  }
  const FitResult fit = fitPolynomial(x, y, 2, false);
  ASSERT_EQ(fit.coefficients.size(), 2u);
  EXPECT_NEAR(fit.coefficients[0], 0.98, 1e-9);   // linear term
  EXPECT_NEAR(fit.coefficients[1], 0.118, 1e-9);  // quadratic term
}

TEST(FitPolynomial, NoisyDataStillCloseAndR2High) {
  Xoshiro256 rng(4);
  Vector x;
  Vector y;
  for (double v = 0.0; v <= 20.0; v += 0.25) {
    x.push_back(v);
    y.push_back(1.0 + 2.0 * v + rng.normal(0.0, 0.5));
  }
  const FitResult fit = fitPolynomial(x, y, 1, true);
  EXPECT_NEAR(fit.coefficients[0], 1.0, 0.3);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 0.05);
  EXPECT_GT(fit.diagnostics.r_squared, 0.98);
}

TEST(EvalPolynomial, MatchesFitLayout) {
  const Vector with_intercept{1.0, 2.0, 3.0};  // 1 + 2x + 3x^2
  EXPECT_DOUBLE_EQ(evalPolynomial(with_intercept, 2.0, true), 17.0);
  const Vector no_intercept{2.0, 3.0};  // 2x + 3x^2
  EXPECT_DOUBLE_EQ(evalPolynomial(no_intercept, 2.0, false), 16.0);
  EXPECT_DOUBLE_EQ(evalPolynomial(no_intercept, 0.0, false), 0.0);
}

TEST(FitProportional, ExactSlope) {
  const FitResult fit = fitProportional({1.0, 2.0, 3.0}, {0.7, 1.4, 2.1});
  EXPECT_NEAR(fit.coefficients[0], 0.7, 1e-12);
  EXPECT_NEAR(fit.diagnostics.r_squared, 1.0, 1e-12);
}

TEST(FitProportional, LeastSquaresSlopeFormula) {
  // k = sum(xy)/sum(x^2) = (1*1 + 2*3)/(1+4) = 1.4.
  const FitResult fit = fitProportional({1.0, 2.0}, {1.0, 3.0});
  EXPECT_NEAR(fit.coefficients[0], 1.4, 1e-12);
}

TEST(FitRidge, ZeroLambdaMatchesOls) {
  Xoshiro256 rng(8);
  Matrix design(30, 3);
  Vector y(30);
  for (std::size_t i = 0; i < 30; ++i) {
    design(i, 0) = 1.0;
    design(i, 1) = rng.uniform(0.0, 5.0);
    design(i, 2) = design(i, 1) * design(i, 1);
    y[i] = 0.5 + 1.5 * design(i, 1) - 0.2 * design(i, 2) +
           rng.normal(0.0, 0.1);
  }
  const FitResult ols = fitDesignMatrix(design, y);
  const FitResult ridge = fitRidge(design, y, 0.0);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(ols.coefficients[j], ridge.coefficients[j], 1e-6);
  }
}

TEST(FitRidge, ShrinksCoefficients) {
  Matrix design(4, 2);
  design(0, 0) = 1.0; design(0, 1) = 1.0;
  design(1, 0) = 1.0; design(1, 1) = 2.0;
  design(2, 0) = 1.0; design(2, 1) = 3.0;
  design(3, 0) = 1.0; design(3, 1) = 4.0;
  const Vector y{2.0, 4.0, 6.0, 8.0};
  const FitResult big = fitRidge(design, y, 100.0);
  const FitResult small = fitRidge(design, y, 0.001);
  EXPECT_LT(std::abs(big.coefficients[1]), std::abs(small.coefficients[1]));
}

TEST(Diagnose, PerfectFit) {
  const FitDiagnostics d = diagnose({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}, 1);
  EXPECT_DOUBLE_EQ(d.r_squared, 1.0);
  EXPECT_DOUBLE_EQ(d.rmse, 0.0);
  EXPECT_DOUBLE_EQ(d.max_abs_residual, 0.0);
  EXPECT_EQ(d.n_samples, 3u);
}

TEST(Diagnose, MeanPredictorHasZeroR2) {
  const FitDiagnostics d = diagnose({1.0, 2.0, 3.0}, {2.0, 2.0, 2.0}, 1);
  EXPECT_NEAR(d.r_squared, 0.0, 1e-12);
}

TEST(Diagnose, ConstantResponseConventions) {
  EXPECT_DOUBLE_EQ(diagnose({5.0, 5.0}, {5.0, 5.0}, 1).r_squared, 1.0);
  EXPECT_DOUBLE_EQ(diagnose({5.0, 5.0}, {4.0, 6.0}, 1).r_squared, 0.0);
}

TEST(Diagnose, RmseAndMaxResidual) {
  const FitDiagnostics d = diagnose({0.0, 0.0}, {3.0, -4.0}, 1);
  EXPECT_NEAR(d.rmse, std::sqrt(12.5), 1e-12);
  EXPECT_DOUBLE_EQ(d.max_abs_residual, 4.0);
}

TEST(FitDesignMatrixDeathTest, UnderdeterminedAsserts) {
  Matrix design(2, 3, 1.0);
  EXPECT_DEATH(fitDesignMatrix(design, {1.0, 2.0}), "assertion");
}

}  // namespace
}  // namespace rtdrm::regress
