// Extension — load shedding (imprecise computation, cf. [LL+91] in the
// paper's related work).
//
// Beyond the workload threshold the paper's algorithm can only miss
// deadlines ("the performance of the two algorithms fluctuates"). With the
// shedding extension the manager trades stream completeness for
// timeliness: when even full replication cannot hold a budget it processes
// a fraction of the tracks, restoring quality before releasing resources
// once the overload passes.
#include <iostream>

#include "bench_util.hpp"

using namespace rtdrm;

int main() {
  const auto& spec = bench::aawSpec();
  const auto& fitted = bench::fittedModels();

  printBanner(std::cout,
              "Load shedding under overload (triangular, 72 periods)");
  Table t({"max workload (x500)", "shedding", "missed %", "mean shed %",
           "peak shed %", "combined C"},
          2);
  double miss_off_heavy = 0.0;
  double miss_on_heavy = 0.0;
  for (const double units : {30.0, 40.0, 50.0}) {
    for (const bool shed : {false, true}) {
      workload::RampParams ramp;
      ramp.min_workload = DataSize::tracks(500.0);
      ramp.max_workload = DataSize::tracks(units * 500.0);
      ramp.ramp_periods = 30;
      const workload::Triangular pat(ramp);
      experiments::EpisodeConfig cfg;
      cfg.periods = 72;
      cfg.manager.allow_load_shedding = shed;
      const auto r = runEpisode(spec, pat, fitted.models,
                                experiments::AlgorithmKind::kPredictive,
                                cfg);
      t.addRow({units, std::string(shed ? "on" : "off (paper)"),
                r.missed_pct, r.metrics.shed_fraction.mean() * 100.0,
                r.metrics.shed_fraction.max() * 100.0, r.combined});
      if (units == 50.0) {
        (shed ? miss_on_heavy : miss_off_heavy) = r.missed_pct;
      }
    }
  }
  t.print(std::cout);
  if (t.writeCsv("ext_load_shedding.csv")) {
    std::cout << "(series written to ext_load_shedding.csv)\n";
  }

  const bool ok = miss_on_heavy < 0.5 * miss_off_heavy;
  std::cout << (ok ? "\nShape check PASSED: shedding converts misses into "
                     "bounded quality loss at heavy overload.\n"
                   : "\nShape check FAILED.\n");
  return ok ? 0 : 1;
}
