// Extension — statistical confidence for the Fig. 10 headline claim.
//
// The paper plots one run per point; here the triangular combined-metric
// comparison is replicated across 10 independent seeds at three workload
// levels, and the predictive-vs-non-predictive gap is tested against the
// overlap of the 95% confidence intervals.
#include <filesystem>
#include <iostream>

#include "bench_util.hpp"
#include "experiments/replication.hpp"

using namespace rtdrm;

int main() {
  const auto& spec = bench::aawSpec();
  const auto& fitted = bench::fittedModels();
  const std::size_t reps = 10;

  printBanner(std::cout,
              "Combined metric with 95% confidence intervals (triangular, "
              "10 seeds per point)");
  Table t({"max workload (x500)", "predictive", "non-predictive",
           "gap significant?"},
          3);
  int significant_wins = 0;
  int points = 0;
  for (double units : {10.0, 20.0, 30.0}) {
    workload::RampParams ramp;
    ramp.min_workload = DataSize::tracks(500.0);
    ramp.max_workload = DataSize::tracks(units * 500.0);
    ramp.ramp_periods = 30;
    const workload::Triangular pat(ramp);
    experiments::EpisodeConfig cfg;
    cfg.periods = 72;

    const auto pred = experiments::runReplicatedEpisode(
        spec, pat, fitted.models, experiments::AlgorithmKind::kPredictive,
        cfg, reps);
    const auto nonp = experiments::runReplicatedEpisode(
        spec, pat, fitted.models, experiments::AlgorithmKind::kNonPredictive,
        cfg, reps);

    const bool sig = experiments::significantlyDifferent(pred.combined,
                                                         nonp.combined);
    char pred_s[64];
    char nonp_s[64];
    std::snprintf(pred_s, sizeof pred_s, "%.3f +/- %.3f",
                  pred.combined.mean, pred.combined.ci95_half);
    std::snprintf(nonp_s, sizeof nonp_s, "%.3f +/- %.3f",
                  nonp.combined.mean, nonp.combined.ci95_half);
    t.addRow({units, std::string(pred_s), std::string(nonp_s),
              std::string(sig ? "yes" : "no")});
    ++points;
    if (sig && pred.combined.mean < nonp.combined.mean) {
      ++significant_wins;
    }
  }
  t.print(std::cout);
  std::filesystem::create_directories("bench_out");
  if (t.writeCsv("bench_out/ext_confidence.csv")) {
    std::cout << "(series written to bench_out/ext_confidence.csv)\n";
  }

  const bool ok = significant_wins >= 2;
  std::cout << "\npredictive wins with non-overlapping 95% CIs at "
            << significant_wins << "/" << points << " workload levels\n"
            << (ok ? "Shape check PASSED: the Fig. 10 result is "
                     "statistically solid on this substrate.\n"
                   : "Shape check FAILED.\n");
  return ok ? 0 : 1;
}
