// Figure 10 — Combined performance metric
// C = MD + U_cpu + U_net + Rbar/Max(R) for the triangular pattern
// (smaller is better).
#include <iostream>

#include "bench_util.hpp"

using namespace rtdrm;

int main() {
  const auto points = bench::runPaperSweep("triangular");
  bench::printSweepMetric(
      "Figure 10: Combined performance metric — triangular (smaller is "
      "better)",
      points, bench::combinedMetric, "fig10_combined_triangular");

  // Paper: equal at small workloads (no replication), predictive better at
  // larger ones.
  int pred_wins = 0;
  int comparisons = 0;
  bool small_equal = true;
  for (const auto& p : points) {
    if (p.max_workload_units <= 4.0) {
      small_equal = small_equal &&
                    std::abs(p.predictive.combined -
                             p.non_predictive.combined) < 0.08;
    } else {
      ++comparisons;
      pred_wins += p.predictive.combined <= p.non_predictive.combined ? 1 : 0;
    }
  }
  const bool ok = small_equal && pred_wins * 2 > comparisons;
  std::cout << "\npredictive wins " << pred_wins << "/" << comparisons
            << " of the replication-bound points; small-workload parity: "
            << (small_equal ? "yes" : "no") << "\n";
  std::cout << (ok ? "Shape check PASSED: predictive dominates the combined "
                     "metric under fluctuating workload.\n"
                   : "Shape check FAILED.\n");
  return ok ? 0 : 1;
}
