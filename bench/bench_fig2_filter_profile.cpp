// Figure 2 — Execution latencies of the Filter program at 80% CPU
// utilization and different data sizes: measured "y", second-order
// per-level regression "Y", and the combined eq.-3 surface "Y-".
#include "bench_util.hpp"

int main() {
  const bool ok = rtdrm::bench::runProfileFigure(
      rtdrm::apps::kFilterStage, 0.8,
      "Figure 2: Execution latencies of Filter at 80% CPU utilization",
      "fig2_filter_profile");
  return ok ? 0 : 1;
}
