// Extension — heterogeneous processor speeds.
//
// The paper assumes homogeneous processors (model item 12); real clusters
// drift apart. Here node speeds are spread ±30% around the reference the
// models were profiled on, which silently mis-calibrates every eq.-3
// forecast. We measure how much the paper's static-model algorithm loses
// and how much online refinement (which learns the *fleet-average*
// behaviour from run-time observations) buys back.
#include <iostream>

#include "bench_util.hpp"

using namespace rtdrm;

int main() {
  const auto& spec = bench::aawSpec();
  const auto& fitted = bench::fittedModels();

  workload::RampParams ramp;
  ramp.min_workload = DataSize::tracks(500.0);
  ramp.max_workload = DataSize::tracks(12000.0);
  ramp.ramp_periods = 30;
  const workload::Triangular pat(ramp);

  printBanner(std::cout,
              "Heterogeneous node speeds (triangular max 12000 tracks)");
  Table t({"fleet", "models", "missed %", "avg replicas", "combined C"}, 2);
  double homog_combined = 0.0;
  double hetero_static = 0.0;
  double hetero_refit = 0.0;
  struct Fleet {
    const char* name;
    std::vector<double> speeds;
  };
  const Fleet fleets[] = {
      {"homogeneous (paper)", {}},
      {"+/-30% spread", {0.7, 0.85, 1.0, 1.0, 1.15, 1.3}},
  };
  struct ModelMode {
    const char* name;
    bool refit;
    bool per_node;
  };
  const ModelMode modes[] = {{"static", false, false},
                             {"online-refit (fleet)", true, false},
                             {"online-refit (per-node)", true, true}};
  for (const Fleet& fleet : fleets) {
    for (const ModelMode& mode : modes) {
      experiments::EpisodeConfig cfg;
      cfg.periods = 72;
      cfg.scenario.node_speeds = fleet.speeds;
      cfg.manager.online_refit = mode.refit;
      cfg.manager.refit.forgetting = 0.97;
      cfg.manager.refit.per_node = mode.per_node;
      if (mode.per_node) {
        // Per-node estimators see ~1/nodes of the observations; lower the
        // activation bar so they engage within the episode.
        cfg.manager.refit.min_observations = 8;
      }
      const auto r = runEpisode(spec, pat, fitted.models,
                                experiments::AlgorithmKind::kPredictive,
                                cfg);
      t.addRow({std::string(fleet.name), std::string(mode.name),
                r.missed_pct, r.avg_replicas, r.combined});
      if (fleet.speeds.empty() && !mode.refit) {
        homog_combined = r.combined;
      }
      if (!fleet.speeds.empty() && !mode.per_node) {
        (mode.refit ? hetero_refit : hetero_static) = r.combined;
      }
    }
  }
  t.print(std::cout);
  if (t.writeCsv("ext_heterogeneous_nodes.csv")) {
    std::cout << "(series written to ext_heterogeneous_nodes.csv)\n";
  }

  // Heterogeneity must cost something relative to the calibrated fleet,
  // and refinement must not make it worse.
  const bool ok = hetero_static >= homog_combined - 0.05 &&
                  hetero_refit <= hetero_static + 0.05;
  std::cout << (ok ? "\nShape check PASSED: speed spread degrades the "
                     "statically-calibrated forecasts; online refinement "
                     "holds the line.\n"
                   : "\nShape check FAILED.\n");
  return ok ? 0 : 1;
}
