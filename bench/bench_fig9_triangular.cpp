// Figure 9 — Performance of the algorithms for the triangular workload
// pattern: (a) missed-deadline ratio, (b) average CPU utilization,
// (c) average network utilization, (d) average number of subtask replicas,
// each versus the pattern's maximum workload (scale unit = 500 tracks).
//
// Doubles as the in-binary observability-neutrality gate: one heavy
// triangular episode is re-run with a full obs bundle attached, and every
// episode metric must match the plain run bit for bit (the obs layer is a
// passive sink — attaching it must not perturb a single decision).
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "obs/obs.hpp"
#include "workload/patterns.hpp"

using namespace rtdrm;

namespace {

bool sameEpisode(const experiments::EpisodeResult& a,
                 const experiments::EpisodeResult& b, std::string* why) {
  const core::EpisodeMetrics& ma = a.metrics;
  const core::EpisodeMetrics& mb = b.metrics;
  const struct {
    const char* what;
    double lhs;
    double rhs;
  } exact[] = {
      {"missed ratio", ma.missedRatio(), mb.missedRatio()},
      {"cpu utilization", ma.cpu_utilization.mean(),
       mb.cpu_utilization.mean()},
      {"net utilization", ma.net_utilization.mean(),
       mb.net_utilization.mean()},
      {"replicas per subtask", ma.replicas_per_subtask.mean(),
       mb.replicas_per_subtask.mean()},
      {"end-to-end mean", ma.end_to_end_ms.mean(), mb.end_to_end_ms.mean()},
      {"shed fraction", ma.shed_fraction.mean(), mb.shed_fraction.mean()},
      {"replicate actions", static_cast<double>(ma.replicate_actions),
       static_cast<double>(mb.replicate_actions)},
      {"shutdown actions", static_cast<double>(ma.shutdown_actions),
       static_cast<double>(mb.shutdown_actions)},
      {"allocation failures", static_cast<double>(ma.allocation_failures),
       static_cast<double>(mb.allocation_failures)},
  };
  for (const auto& e : exact) {
    if (e.lhs != e.rhs) {  // bitwise: identical runs, not "close" runs
      *why = std::string(e.what) + " diverged (" + std::to_string(e.lhs) +
             " vs " + std::to_string(e.rhs) + ")";
      return false;
    }
  }
  return true;
}

/// Runs one heavy triangular episode with and without an attached obs
/// bundle; both runs must be bit-identical, and the attached run must have
/// actually recorded decisions (a vacuously-passing gate is a broken gate).
bool runNeutralityGate() {
  const auto& spec = bench::aawSpec();
  const auto& fitted = bench::fittedModels();
  workload::RampParams ramp;
  ramp.max_workload = DataSize::tracks(20.0 * 500.0);
  const auto pattern = workload::makeFig8Pattern("triangular", ramp);

  experiments::EpisodeConfig cfg;
  cfg.periods = 48;
  bool ok = true;
  for (const auto algorithm : {experiments::AlgorithmKind::kPredictive,
                               experiments::AlgorithmKind::kNonPredictive}) {
    experiments::EpisodeConfig plain = cfg;
    const auto baseline =
        runEpisode(spec, *pattern, fitted.models, algorithm, plain);

    obs::Observability bundle;
    experiments::EpisodeConfig observed = cfg;
    observed.obs = &bundle;
    const auto traced =
        runEpisode(spec, *pattern, fitted.models, algorithm, observed);

    std::string why;
    if (!sameEpisode(baseline, traced, &why)) {
      std::cout << "OBS NEUTRALITY VIOLATION ("
                << experiments::algorithmName(algorithm) << "): " << why
                << "\n";
      ok = false;
    }
    if (bundle.trace.recorded() == 0 || bundle.metrics.size() == 0) {
      std::cout << "OBS GATE VACUOUS ("
                << experiments::algorithmName(algorithm)
                << "): attached bundle recorded nothing\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace

int main() {
  const auto points = bench::runPaperSweep("triangular");

  bench::printSweepMetric("Figure 9(a): Missed deadline ratio (%) — triangular",
                          points, bench::missedPct, "fig9a_missed");
  bench::printSweepMetric(
      "Figure 9(b): Average CPU utilization (%) — triangular", points,
      bench::cpuPct, "fig9b_cpu");
  bench::printSweepMetric(
      "Figure 9(c): Average network utilization (%) — triangular", points,
      bench::netPct, "fig9c_net");
  bench::printSweepMetric(
      "Figure 9(d): Average number of subtask replicas — triangular", points,
      bench::avgReplicas, "fig9d_replicas");

  // Shape check (paper §5.2): the non-predictive algorithm uses more
  // replicas and network at the heavy end of the sweep.
  double pred_rep = 0.0;
  double nonp_rep = 0.0;
  double pred_net = 0.0;
  double nonp_net = 0.0;
  int heavy = 0;
  for (const auto& p : points) {
    if (p.max_workload_units >= 16.0) {
      pred_rep += p.predictive.avg_replicas;
      nonp_rep += p.non_predictive.avg_replicas;
      pred_net += p.predictive.net_pct;
      nonp_net += p.non_predictive.net_pct;
      ++heavy;
    }
  }
  const bool ok = heavy > 0 && nonp_rep >= pred_rep && nonp_net >= pred_net * 0.95;
  std::cout << (ok ? "\nShape check PASSED: non-predictive replicates more "
                     "aggressively on heavy triangular workloads.\n"
                   : "\nShape check FAILED.\n");

  const bool neutral = runNeutralityGate();
  std::cout << (neutral
                    ? "Observability neutrality PASSED: attached obs bundle "
                      "left the episode bit-identical.\n"
                    : "Observability neutrality FAILED.\n");
  return ok && neutral ? 0 : 1;
}
