// Figure 9 — Performance of the algorithms for the triangular workload
// pattern: (a) missed-deadline ratio, (b) average CPU utilization,
// (c) average network utilization, (d) average number of subtask replicas,
// each versus the pattern's maximum workload (scale unit = 500 tracks).
#include <iostream>

#include "bench_util.hpp"

using namespace rtdrm;

int main() {
  const auto points = bench::runPaperSweep("triangular");

  bench::printSweepMetric("Figure 9(a): Missed deadline ratio (%) — triangular",
                          points, bench::missedPct, "fig9a_missed");
  bench::printSweepMetric(
      "Figure 9(b): Average CPU utilization (%) — triangular", points,
      bench::cpuPct, "fig9b_cpu");
  bench::printSweepMetric(
      "Figure 9(c): Average network utilization (%) — triangular", points,
      bench::netPct, "fig9c_net");
  bench::printSweepMetric(
      "Figure 9(d): Average number of subtask replicas — triangular", points,
      bench::avgReplicas, "fig9d_replicas");

  // Shape check (paper §5.2): the non-predictive algorithm uses more
  // replicas and network at the heavy end of the sweep.
  double pred_rep = 0.0;
  double nonp_rep = 0.0;
  double pred_net = 0.0;
  double nonp_net = 0.0;
  int heavy = 0;
  for (const auto& p : points) {
    if (p.max_workload_units >= 16.0) {
      pred_rep += p.predictive.avg_replicas;
      nonp_rep += p.non_predictive.avg_replicas;
      pred_net += p.predictive.net_pct;
      nonp_net += p.non_predictive.net_pct;
      ++heavy;
    }
  }
  const bool ok = heavy > 0 && nonp_rep >= pred_rep && nonp_net >= pred_net * 0.95;
  std::cout << (ok ? "\nShape check PASSED: non-predictive replicates more "
                     "aggressively on heavy triangular workloads.\n"
                   : "\nShape check FAILED.\n");
  return ok ? 0 : 1;
}
