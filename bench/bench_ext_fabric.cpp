// Extension — network fabrics × workload families.
//
// The paper evaluates on a single shared 100 Mbps bus. This bench crosses
// the network substrate —
//
//   * bus:       the paper's shared Ethernet, one collision domain,
//   * line-2:    two switch segments in a chain, store-and-forward,
//   * star-3:    three segments behind a hub switch,
//
// with the workload families (paper triangular ramp / heavy-tailed Pareto
// arrivals / correlated multi-sensor surges / paper ramp plus co-hosted
// contender flows) for both allocators, reporting the combined metric C
// per cell — the C surface that says whether the predictive algorithm's
// advantage survives bounded switch buffers, multi-hop latency and bursty
// arrivals it was never tuned for.
//
// A neutrality run asserts in-binary that the explicit baseline flags
// (--net bus --workload paper) reproduce the default-config episode
// exactly — the NetworkModel seam must not perturb the paper runs. A shape
// check asserts the predictive allocator keeps a mean C no worse than the
// non-predictive one across the surface. Emits bench_out/ext_fabric.csv
// and BENCH_fabric.json.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/fabric.hpp"
#include "workload/generators.hpp"
#include "workload/patterns.hpp"

using namespace rtdrm;

namespace {

struct TopoCell {
  std::string name;
  net::NetKind kind = net::NetKind::kBus;
  std::size_t segments = 1;
  net::FabricTopology topology = net::FabricTopology::kLine;
};

experiments::EpisodeConfig makeEpisode(const TopoCell& topo,
                                       workload::WorkloadMix mix) {
  experiments::EpisodeConfig cfg;
  cfg.periods = 72;
  cfg.scenario.net_kind = topo.kind;
  if (topo.kind == net::NetKind::kSwitched) {
    cfg.scenario.fabric.segments = topo.segments;
    cfg.scenario.fabric.topology = topo.topology;
  }
  cfg.workload_mix = mix;
  if (mix == workload::WorkloadMix::kMulti) {
    cfg.contenders.flows = 3;
    cfg.contenders.period = SimDuration::millis(10.0);
  }
  return cfg;
}

experiments::EpisodeResult runCell(const task::TaskSpec& spec,
                                   const core::PredictiveModels& models,
                                   experiments::AlgorithmKind algorithm,
                                   const experiments::EpisodeConfig& cfg) {
  // The offered pattern only matters for kPaper/kMulti; kPareto/kSurge
  // replace it with their generator, seeded from the scenario seed.
  workload::RampParams ramp;
  ramp.min_workload = DataSize::tracks(500.0);
  ramp.max_workload = DataSize::tracks(20.0 * 500.0);
  ramp.ramp_periods = 30;
  const workload::Triangular pat(ramp);
  return runEpisode(spec, pat, models, algorithm, cfg);
}

bool sameEpisode(const experiments::EpisodeResult& a,
                 const experiments::EpisodeResult& b) {
  return a.missed_pct == b.missed_pct && a.cpu_pct == b.cpu_pct &&
         a.net_pct == b.net_pct && a.avg_replicas == b.avg_replicas &&
         a.combined == b.combined &&
         a.metrics.replicate_actions == b.metrics.replicate_actions &&
         a.metrics.shutdown_actions == b.metrics.shutdown_actions &&
         a.metrics.allocation_failures == b.metrics.allocation_failures;
}

}  // namespace

int main() {
  const auto& spec = bench::aawSpec();
  const auto& fitted = bench::fittedModels();

  printBanner(std::cout,
              "Network fabrics x workload families, both allocators "
              "(72 periods, triangular 20x where the pattern applies)");

  // In-binary neutrality: a default-constructed episode (net/workload
  // fields untouched) and the explicit baseline (--net bus --workload
  // paper) must be the same episode bit for bit.
  const TopoCell bus{"bus", net::NetKind::kBus, 1, net::FabricTopology::kLine};
  const experiments::EpisodeResult control =
      runCell(spec, fitted.models, experiments::AlgorithmKind::kPredictive,
              [] {
                experiments::EpisodeConfig cfg;
                cfg.periods = 72;
                return cfg;
              }());
  const bool neutrality_ok = sameEpisode(
      control,
      runCell(spec, fitted.models, experiments::AlgorithmKind::kPredictive,
              makeEpisode(bus, workload::WorkloadMix::kPaper)));
  if (!neutrality_ok) {
    std::cout << "NEUTRALITY VIOLATION: --net bus --workload paper diverged "
                 "from the default-config episode\n";
  }

  const std::vector<TopoCell> topologies = {
      bus,
      {"line-2", net::NetKind::kSwitched, 2, net::FabricTopology::kLine},
      {"star-3", net::NetKind::kSwitched, 3, net::FabricTopology::kStar},
  };
  const std::vector<workload::WorkloadMix> mixes = {
      workload::WorkloadMix::kPaper, workload::WorkloadMix::kPareto,
      workload::WorkloadMix::kSurge, workload::WorkloadMix::kMulti};
  const std::vector<experiments::AlgorithmKind> algorithms = {
      experiments::AlgorithmKind::kPredictive,
      experiments::AlgorithmKind::kNonPredictive};

  Table t({"net", "workload", "algorithm", "missed %", "net %",
           "avg replicas", "combined C"},
          3);
  std::ostringstream json_rows;
  double best_c = 1e18;
  std::string best_cell;
  double mean_c_predictive = 0.0;
  double mean_c_nonpredictive = 0.0;
  std::size_t cells = 0;
  for (const TopoCell& topo : topologies) {
    for (const workload::WorkloadMix mix : mixes) {
      for (const experiments::AlgorithmKind algorithm : algorithms) {
        const experiments::EpisodeResult r = runCell(
            spec, fitted.models, algorithm, makeEpisode(topo, mix));
        const std::string alg = experiments::algorithmName(algorithm);
        t.addRow({topo.name, std::string(workload::workloadMixName(mix)), alg,
                  r.missed_pct, r.net_pct, r.avg_replicas, r.combined});
        if (!json_rows.str().empty()) {
          json_rows << ",\n";
        }
        json_rows << "    { \"net\": \"" << topo.name << "\", \"workload\": \""
                  << workload::workloadMixName(mix) << "\", \"algorithm\": \""
                  << alg << "\", \"missed_pct\": " << std::fixed
                  << std::setprecision(3) << r.missed_pct
                  << ", \"net_pct\": " << r.net_pct
                  << ", \"avg_replicas\": " << r.avg_replicas
                  << ", \"combined\": " << std::setprecision(4) << r.combined
                  << " }";
        if (algorithm == experiments::AlgorithmKind::kPredictive) {
          mean_c_predictive += r.combined;
          ++cells;
          if (r.combined < best_c) {
            best_c = r.combined;
            best_cell = topo.name + "/" + workload::workloadMixName(mix);
          }
        } else {
          mean_c_nonpredictive += r.combined;
        }
      }
    }
  }
  t.print(std::cout);
  mean_c_predictive /= static_cast<double>(cells);
  mean_c_nonpredictive /= static_cast<double>(cells);

  bool ok = neutrality_ok;
  if (mean_c_predictive > mean_c_nonpredictive + 1e-9) {
    std::cout << "Shape check FAILED: the predictive allocator's mean C ("
              << mean_c_predictive << ") is worse than non-predictive ("
              << mean_c_nonpredictive << ") across the fabric surface.\n";
    ok = false;
  }

  std::filesystem::create_directories("bench_out");
  if (t.writeCsv("bench_out/ext_fabric.csv")) {
    std::cout << "(series written to bench_out/ext_fabric.csv)\n";
  }

  {
    const net::SwitchedFabricConfig defaults{};
    std::ofstream json("BENCH_fabric.json");
    json << "{\n"
         << "  \"benchmark\": \"bench_ext_fabric\",\n"
         << "  \"description\": \"Network substrates (shared bus / 2-segment "
            "switched line / 3-segment switched star) crossed with workload "
            "families (paper triangular ramp, heavy-tailed Pareto arrivals, "
            "correlated multi-sensor surges, ramp plus co-hosted contender "
            "flows) for both allocators on the Table-1 cluster, reporting "
            "the paper's combined metric C per cell (smaller is better). "
            "Simulation-deterministic (no wall-clock).\",\n"
         << "  \"config\": {\n"
         << "    \"periods\": 72,\n"
         << "    \"ramp_periods\": 30,\n"
         << "    \"paper_workload_units_x500\": 20,\n"
         << "    \"port_buffer_frames\": " << defaults.port_buffer_frames
         << ",\n"
         << "    \"switch_latency_us\": " << std::fixed << std::setprecision(1)
         << defaults.switch_latency.ms() * 1000.0 << ",\n"
         << "    \"contender_flows\": 3,\n"
         << "    " << bench::runContextJson() << "\n"
         << "  },\n"
         << "  \"headline\": {\n"
         << "    \"best_cell\": \"" << best_cell << "\",\n"
         << "    \"best_combined\": " << std::setprecision(4) << best_c
         << ",\n"
         << "    \"mean_combined_predictive\": " << mean_c_predictive << ",\n"
         << "    \"mean_combined_nonpredictive\": " << mean_c_nonpredictive
         << "\n"
         << "  },\n"
         << "  \"rows\": [\n"
         << json_rows.str() << "\n  ],\n"
         << "  \"neutrality\": \"" << (neutrality_ok ? "PASSED" : "FAILED")
         << ": --net bus --workload paper reproduces the default-config "
            "episode bit for bit\"\n"
         << "}\n";
    std::cout << "(headline written to BENCH_fabric.json)\n";
  }

  if (ok) {
    std::cout << "\nShape check PASSED: baseline flags are neutral and the "
                 "predictive allocator holds a mean C no worse than "
                 "non-predictive across every fabric and workload family.\n";
  }
  return ok ? 0 : 1;
}
