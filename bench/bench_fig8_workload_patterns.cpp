// Figure 8 — Workload patterns for evaluating the algorithms: increasing
// ramp, decreasing ramp, and triangular, between a minimum and a maximum
// workload.
#include <iostream>

#include "bench_util.hpp"
#include "workload/patterns.hpp"

using namespace rtdrm;

int main() {
  workload::RampParams p;
  p.min_workload = DataSize::tracks(500.0);
  p.max_workload = DataSize::tracks(10000.0);
  p.ramp_periods = 30;

  const auto inc = workload::makeFig8Pattern("increasing", p);
  const auto dec = workload::makeFig8Pattern("decreasing", p);
  const auto tri = workload::makeFig8Pattern("triangular", p);

  printBanner(std::cout, "Figure 8: Workload patterns (tracks per period)");
  Table t({"period", "increasing ramp", "decreasing ramp", "triangular"}, 0);
  bool ok = true;
  for (std::uint64_t c = 0; c < 72; ++c) {
    t.addRow({static_cast<long long>(c),
              static_cast<long long>(inc->at(c).count()),
              static_cast<long long>(dec->at(c).count()),
              static_cast<long long>(tri->at(c).count())});
    ok = ok && inc->at(c) >= p.min_workload && inc->at(c) <= p.max_workload &&
         dec->at(c) >= p.min_workload && dec->at(c) <= p.max_workload &&
         tri->at(c) >= p.min_workload && tri->at(c) <= p.max_workload;
  }
  t.print(std::cout);
  if (t.writeCsv("fig8_workload_patterns.csv")) {
    std::cout << "(series written to fig8_workload_patterns.csv)\n";
  }

  // Shape invariants of Fig. 8.
  ok = ok && inc->at(0) == p.min_workload && inc->at(30) == p.max_workload &&
       dec->at(0) == p.max_workload && dec->at(30) == p.min_workload &&
       tri->at(0) == p.min_workload && tri->at(30) == p.max_workload &&
       tri->at(60) == p.min_workload;
  std::cout << (ok ? "Shape check PASSED.\n" : "Shape check FAILED.\n");
  return ok ? 0 : 1;
}
