// Table 3 — Coefficient of the buffer-delay regression equation (eq. 5).
//
// Runs the pipeline at a sweep of constant periodic workloads, records the
// buffer delay every inter-subtask message experienced, and fits the
// through-origin slope k. The paper measured k = 0.7 for both replicable
// subtasks' messages.
#include <iostream>

#include "bench_util.hpp"
#include "profile/comm_profiler.hpp"

using namespace rtdrm;

int main() {
  const auto& spec = bench::aawSpec();
  profile::CommProfileConfig cfg;
  cfg.workload_levels = profile::defaultCommGrid();

  const auto samples = profile::profileBufferDelay(spec, cfg);
  const auto fit = regress::fitBufferDelay(samples);

  printBanner(std::cout,
              "Table 3: Coefficient of the buffer delay regression "
              "equation (eq. 5)");
  Table t({"message", "paper k", "measured k", "R^2", "samples"}, 4);
  t.addRow({std::string("inter-subtask messages (all stages)"), 0.7,
            fit.model.k_ms_per_hundred, fit.diagnostics.r_squared,
            static_cast<long long>(samples.size())});
  t.print(std::cout);

  std::cout << "\nMean measured buffer delay per workload level:\n";
  Table lv({"total workload (tracks)", "mean Dbuf (ms)",
            "eq. 5 prediction (ms)"},
           3);
  for (const DataSize level : cfg.workload_levels) {
    double sum = 0.0;
    int n = 0;
    for (const auto& s : samples) {
      if (s.total_workload_hundreds == level.hundreds()) {
        sum += s.buffer_delay_ms;
        ++n;
      }
    }
    if (n > 0) {
      lv.addRow({level.count(), sum / n,
                 fit.model.evalMs(level.hundreds())});
    }
  }
  lv.print(std::cout);

  const bool ok = fit.model.k_ms_per_hundred > 0.5 &&
                  fit.model.k_ms_per_hundred < 1.0 &&
                  fit.diagnostics.r_squared > 0.9;
  std::cout << (ok ? "\nShape check PASSED: linear Dbuf with slope near the "
                     "paper's 0.7 ms per hundred tracks.\n"
                   : "\nShape check FAILED.\n");
  return ok ? 0 : 1;
}
