// Figure 4 — Execution latencies of Filter at different CPU utilizations
// and data sizes: the full measured (u, d) -> latency surface next to the
// fitted eq.-3 surface.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "profile/exec_profiler.hpp"

using namespace rtdrm;

int main() {
  const task::TaskSpec& spec = bench::aawSpec();

  profile::ExecProfileConfig cfg;
  cfg.utilization_levels = {0.0, 0.2, 0.4, 0.6, 0.8};
  cfg.data_sizes = profile::paperDataGrid();
  cfg.samples_per_point = 6;
  const auto samples =
      profile::profileExecution(spec.subtasks[apps::kFilterStage], cfg);
  const regress::ExecLatencyModel& surface =
      bench::fittedModels().models.exec[apps::kFilterStage];

  printBanner(std::cout,
              "Figure 4: Execution latencies of Filter at different CPU "
              "utilizations and data sizes");
  Table t({"u", "data size (x300 tracks)", "measured (ms)", "fit Y- (ms)",
           "rel. error %"},
          2);
  double worst = 0.0;
  double mean_abs = 0.0;
  int cells = 0;
  for (double u : cfg.utilization_levels) {
    for (const DataSize d : cfg.data_sizes) {
      double sum = 0.0;
      int n = 0;
      for (const auto& s : samples) {
        if (s.u == u && s.d_hundreds == d.hundreds()) {
          sum += s.latency_ms;
          ++n;
        }
      }
      const double y = sum / n;
      const double fit = surface.evalMs(d.hundreds(), u);
      const double rel = std::abs(fit - y) / y * 100.0;
      worst = std::max(worst, rel);
      mean_abs += rel;
      ++cells;
      // Print a decimated grid (every 4th data size) to keep the console
      // readable; the CSV carries everything.
      if (static_cast<int>(d.count() / 300.0) % 4 == 1) {
        t.addRow({u, d.count() / 300.0, y, fit, rel});
      }
    }
  }
  t.print(std::cout);
  mean_abs /= cells;
  std::cout << "surface fit vs measurements over " << cells
            << " grid cells: mean |rel err| = " << mean_abs
            << "%, worst = " << worst << "%\n";

  // Full-resolution CSV.
  Table full({"u", "d_hundreds", "measured_ms", "fit_ms"}, 4);
  for (const auto& s : samples) {
    full.addRow({s.u, s.d_hundreds, s.latency_ms,
                 surface.evalMs(s.d_hundreds, s.u)});
  }
  if (full.writeCsv("fig4_filter_surface.csv")) {
    std::cout << "(full surface written to fig4_filter_surface.csv)\n";
  }
  const bool ok = mean_abs < 20.0;
  std::cout << (ok ? "Shape check PASSED: eq. 3 tracks the measured surface.\n"
                   : "Shape check FAILED.\n");
  return ok ? 0 : 1;
}
