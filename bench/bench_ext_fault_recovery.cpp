// Extension — crash-and-recover: missed deadlines through a node failure
// with and without heartbeat-driven failover.
//
// The paper's managers assume a fixed node set; this bench injects a
// fail-stop crash of one replica-hosting node at peak load (with a later
// restart) and measures the missed-deadline ratio for the predictive
// (Fig. 5) and non-predictive (Fig. 7) managers in three regimes:
//
//   none         — no fault (control),
//   no-failover  — the node crashes but nobody tells the manager: every
//                  period whose placement touches the dead node stalls to
//                  its cutoff until the restart,
//   failover     — a heartbeat FailureDetector declares the node dead and
//                  the manager re-places its replicas on survivors
//                  (ResourceManager::handleNodeFailure).
//
// A fourth run arms an *empty* fault plan and must reproduce the control
// bit for bit — the zero-fault neutrality the fault subsystem guarantees.
// Emits bench_out/fault_recovery.csv and BENCH_fault.json.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/scenario.hpp"
#include "bench_util.hpp"
#include "common/cli.hpp"
#include "core/manager.hpp"
#include "fault/detector.hpp"
#include "fault/injector.hpp"
#include "workload/patterns.hpp"

using namespace rtdrm;

namespace {

enum class FaultMode { kNone, kEmptyPlan, kNoFailover, kFailover };

const char* faultModeName(FaultMode mode) {
  switch (mode) {
    case FaultMode::kNone:
      return "none";
    case FaultMode::kEmptyPlan:
      return "empty plan";
    case FaultMode::kNoFailover:
      return "crash, no failover";
    case FaultMode::kFailover:
      return "crash + failover";
  }
  return "?";
}

struct EpisodeConfig {
  std::size_t nodes = 6;  // Table 1
  std::uint64_t periods = 48;
  std::uint64_t crash_period = 16;    // just past the first workload peak
  std::uint64_t restart_period = 32;  // one full cycle later
  double max_tracks = 9000.0;
  double min_tracks = 2000.0;
  std::uint64_t ramp_periods = 12;
  ProcessorId crash_node{1};  // hosts the stage-1 primary and replicas
};

struct ModeResult {
  double missed_pct = 0.0;
  double avg_replicas = 0.0;
  std::uint64_t replicate_actions = 0;
  std::uint64_t shutdown_actions = 0;
  std::uint64_t allocation_failures = 0;
  std::uint64_t failures_handled = 0;
  std::uint64_t failover_replacements = 0;
  std::uint64_t recovery_allocation_failures = 0;
  /// Crash-to-handleNodeFailure latency (0 when failover is off).
  double detect_ms = 0.0;
};

bool sameEpisode(const ModeResult& a, const ModeResult& b) {
  return a.missed_pct == b.missed_pct && a.avg_replicas == b.avg_replicas &&
         a.replicate_actions == b.replicate_actions &&
         a.shutdown_actions == b.shutdown_actions &&
         a.allocation_failures == b.allocation_failures;
}

ModeResult runFaultEpisode(const task::TaskSpec& spec,
                           const core::PredictiveModels& models,
                           experiments::AlgorithmKind algorithm,
                           FaultMode mode, const EpisodeConfig& cfg) {
  apps::ScenarioConfig scfg;
  scfg.node_count = cfg.nodes;
  apps::Scenario scenario(scfg);

  workload::RampParams ramp;
  ramp.min_workload = DataSize::tracks(cfg.min_tracks);
  ramp.max_workload = DataSize::tracks(cfg.max_tracks);
  ramp.ramp_periods = cfg.ramp_periods;
  const workload::Triangular pattern(ramp);

  std::vector<ProcessorId> homes;
  for (std::size_t s = 0; s < spec.stageCount(); ++s) {
    homes.push_back(ProcessorId{static_cast<std::uint32_t>(s % cfg.nodes)});
  }

  std::unique_ptr<core::Allocator> allocator;
  if (algorithm == experiments::AlgorithmKind::kPredictive) {
    allocator = std::make_unique<core::PredictiveAllocator>(models);
  } else {
    allocator = std::make_unique<core::NonPredictiveAllocator>();
  }
  core::ManagerConfig mgr_cfg;
  core::ResourceManager manager(
      scenario.runtime(), spec, task::Placement(homes),
      [&pattern](std::uint64_t c) { return pattern.at(c); },
      std::move(allocator), models, mgr_cfg,
      scenario.streams().get("exec-noise"));

  const SimTime crash_at =
      SimTime::zero() + spec.period * static_cast<double>(cfg.crash_period);
  fault::FaultPlan plan;
  if (mode == FaultMode::kNoFailover || mode == FaultMode::kFailover) {
    fault::CrashFault crash;
    crash.node = cfg.crash_node;
    crash.at = crash_at;
    crash.restart_at = SimTime::zero() +
                       spec.period * static_cast<double>(cfg.restart_period);
    plan.crashes.push_back(crash);
  }
  std::unique_ptr<fault::FaultInjector> injector;
  if (mode != FaultMode::kNone) {
    injector = std::make_unique<fault::FaultInjector>(
        scenario.sim(), scenario.cluster(), &scenario.ethernet(),
        &scenario.clocks(), plan);
    injector->arm();
  }

  ModeResult out;
  bool detected = false;
  std::unique_ptr<fault::FailureDetector> detector;
  if (mode == FaultMode::kFailover) {
    detector = std::make_unique<fault::FailureDetector>(
        scenario.sim(), scenario.cluster(), scenario.ethernet(),
        fault::DetectorConfig{},
        [&](ProcessorId p) {
          if (scenario.cluster().isUp(p)) {
            return;  // false suspicion; only real crashes fail over
          }
          if (!detected) {
            detected = true;
            out.detect_ms = (scenario.sim().now() - crash_at).ms();
          }
          manager.handleNodeFailure(p);
        },
        [&](ProcessorId p) {
          if (scenario.cluster().isUp(p)) {
            manager.handleNodeRestart(p);
          }
        });
  }

  manager.start(scenario.sim().now());
  if (detector != nullptr) {
    detector->start(scenario.sim().now());
  }
  scenario.runFor(spec.period * static_cast<double>(cfg.periods));
  manager.stop();
  if (detector != nullptr) {
    detector->stop();
  }
  scenario.runFor(spec.period * 3.0);

  const core::EpisodeMetrics& m = manager.metrics();
  out.missed_pct = m.missedRatio() * 100.0;
  out.avg_replicas = m.replicas_per_subtask.mean();
  out.replicate_actions = m.replicate_actions;
  out.shutdown_actions = m.shutdown_actions;
  out.allocation_failures = m.allocation_failures;
  out.failures_handled = m.node_failures_handled;
  out.failover_replacements = m.failover_replacements;
  out.recovery_allocation_failures = m.recovery_allocation_failures;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t periods = 48;
  ArgParser parser("bench_ext_fault_recovery",
                   "Missed deadlines through a node crash-and-restart, with "
                   "and without heartbeat-driven failover");
  parser.addInt("periods", "episode length in task periods", &periods);
  if (!parser.parse(argc, argv)) {
    return parser.helpRequested() ? 0 : 2;
  }

  const auto& spec = bench::aawSpec();
  const auto& fitted = bench::fittedModels();
  EpisodeConfig cfg;
  cfg.periods = static_cast<std::uint64_t>(periods);

  printBanner(std::cout,
              "Crash-and-recover: node " +
                  std::to_string(cfg.crash_node.value) + " fails at period " +
                  std::to_string(cfg.crash_period) + ", restarts at period " +
                  std::to_string(cfg.restart_period));
  Table t({"algorithm", "fault mode", "missed %", "avg replicas",
           "replicate acts", "failures handled", "replacements",
           "detect ms"},
          2);

  bool neutrality_ok = true;
  ModeResult headline_failover;
  ModeResult headline_no_failover;
  std::ostringstream json_rows;
  bool first_row = true;
  for (const auto algorithm : {experiments::AlgorithmKind::kPredictive,
                               experiments::AlgorithmKind::kNonPredictive}) {
    ModeResult control;
    for (const FaultMode mode :
         {FaultMode::kNone, FaultMode::kEmptyPlan, FaultMode::kNoFailover,
          FaultMode::kFailover}) {
      const ModeResult r =
          runFaultEpisode(spec, fitted.models, algorithm, mode, cfg);
      if (mode == FaultMode::kNone) {
        control = r;
      }
      if (mode == FaultMode::kEmptyPlan && !sameEpisode(control, r)) {
        neutrality_ok = false;
        std::cout << "NEUTRALITY VIOLATION: an armed empty fault plan "
                     "changed the episode ("
                  << experiments::algorithmName(algorithm) << ")\n";
      }
      if (algorithm == experiments::AlgorithmKind::kPredictive) {
        if (mode == FaultMode::kFailover) {
          headline_failover = r;
        } else if (mode == FaultMode::kNoFailover) {
          headline_no_failover = r;
        }
      }
      t.addRow({experiments::algorithmName(algorithm), faultModeName(mode),
                r.missed_pct, r.avg_replicas,
                static_cast<long long>(r.replicate_actions),
                static_cast<long long>(r.failures_handled),
                static_cast<long long>(r.failover_replacements),
                r.detect_ms});
      if (!first_row) {
        json_rows << ",\n";
      }
      first_row = false;
      json_rows << "    { \"algorithm\": \""
                << experiments::algorithmName(algorithm)
                << "\", \"mode\": \"" << faultModeName(mode)
                << "\", \"missed_pct\": " << std::fixed
                << std::setprecision(2) << r.missed_pct
                << ", \"avg_replicas\": " << r.avg_replicas
                << ", \"replicate_actions\": " << r.replicate_actions
                << ", \"failures_handled\": " << r.failures_handled
                << ", \"failover_replacements\": " << r.failover_replacements
                << ", \"recovery_allocation_failures\": "
                << r.recovery_allocation_failures
                << ", \"detect_ms\": " << r.detect_ms << " }";
    }
  }
  t.print(std::cout);

  std::filesystem::create_directories("bench_out");
  if (t.writeCsv("bench_out/fault_recovery.csv")) {
    std::cout << "(series written to bench_out/fault_recovery.csv)\n";
  }

  {
    std::ofstream json("BENCH_fault.json");
    json << "{\n"
         << "  \"benchmark\": \"bench_ext_fault_recovery\",\n"
         << "  \"description\": \"Fail-stop crash of one replica-hosting "
            "node at peak workload (triangular ramp, AAW task, Table-1 "
            "cluster) with a restart one cycle later. Compares the "
            "missed-deadline ratio with no fault, with the crash but no "
            "failure detection (stalled periods run to their cutoff until "
            "the restart), and with a heartbeat FailureDetector driving "
            "ResourceManager::handleNodeFailure. All numbers are "
            "simulation-deterministic (no wall-clock).\",\n"
         << "  \"config\": {\n"
         << "    \"nodes\": " << cfg.nodes << ",\n"
         << "    \"periods\": " << cfg.periods << ",\n"
         << "    \"crash_period\": " << cfg.crash_period << ",\n"
         << "    \"restart_period\": " << cfg.restart_period << ",\n"
         << "    \"crash_node\": " << cfg.crash_node.value << ",\n"
         << "    \"workload_tracks\": [" << std::fixed
         << std::setprecision(1) << cfg.min_tracks << ", " << cfg.max_tracks
         << "],\n"
         << "    \"ramp_periods\": " << cfg.ramp_periods << ",\n"
         << "    \"detector\": { \"interval_ms\": 100, \"timeout_ms\": 250, "
            "\"max_retries\": 2, \"retry_backoff_ms\": 25 },\n"
         << "    " << bench::runContextJson() << "\n"
         << "  },\n"
         << "  \"headline\": {\n"
         << "    \"cell\": \"predictive manager, crash at peak\",\n"
         << "    \"missed_pct_no_failover\": " << std::setprecision(2)
         << headline_no_failover.missed_pct << ",\n"
         << "    \"missed_pct_failover\": " << headline_failover.missed_pct
         << ",\n"
         << "    \"detect_ms\": " << headline_failover.detect_ms << ",\n"
         << "    \"failover_replacements\": "
         << headline_failover.failover_replacements << "\n"
         << "  },\n"
         << "  \"rows\": [\n"
         << json_rows.str() << "\n  ],\n"
         << "  \"neutrality\": \"" << (neutrality_ok ? "PASSED" : "FAILED")
         << ": an armed empty fault plan reproduces the no-fault episode "
            "bit for bit\"\n"
         << "}\n";
    std::cout << "(headline written to BENCH_fault.json)\n";
  }

  bool ok = neutrality_ok;
  if (headline_failover.failures_handled == 0) {
    std::cout << "\nShape check FAILED: failover never triggered.\n";
    ok = false;
  }
  if (headline_failover.detect_ms <= 0.0 ||
      headline_failover.detect_ms > 1500.0) {
    std::cout << "\nShape check FAILED: detection latency "
              << headline_failover.detect_ms << " ms out of range.\n";
    ok = false;
  }
  if (headline_failover.missed_pct >= headline_no_failover.missed_pct) {
    std::cout << "\nShape check FAILED: failover did not reduce missed "
                 "deadlines ("
              << headline_failover.missed_pct << "% vs "
              << headline_no_failover.missed_pct << "%).\n";
    ok = false;
  }
  if (ok) {
    std::cout << "\nShape check PASSED: failover re-places the dead node's "
                 "replicas and converts a sustained outage into a bounded "
                 "detection gap.\n";
  }
  return ok ? 0 : 1;
}
