// Table 1 — Baseline parameters.
//
// Prints the effective configuration of the reproduced testbed and checks
// every row against the paper's Table 1.
#include <cstdlib>
#include <iostream>

#include "apps/scenario.hpp"
#include "bench_util.hpp"

using namespace rtdrm;

namespace {
int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "MISMATCH vs Table 1: " << what << "\n";
    ++g_failures;
  }
}
}  // namespace

int main() {
  const apps::ScenarioConfig scenario{};
  const task::TaskSpec& spec = bench::aawSpec();

  printBanner(std::cout, "Table 1: Baseline parameters");
  Table t({"parameter", "paper", "this reproduction"});
  t.addRow({std::string("Number of nodes"), std::string("6"),
            std::string(std::to_string(scenario.node_count))});
  t.addRow({std::string("CPU scheduler at each node"),
            std::string("Round-Robin (slice = 1 ms)"),
            std::string(scenario.cpu.policy == node::SchedPolicy::kRoundRobin
                            ? "Round-Robin (slice = " +
                                  std::to_string(scenario.cpu.quantum.ms()) +
                                  " ms)"
                            : "FIFO")});
  t.addRow({std::string("Network"), std::string("Ethernet, 100 Mbps"),
            std::string("Ethernet, " +
                        std::to_string(scenario.ethernet.rate.bitsPerSecond() /
                                       1e6) +
                        " Mbps")});
  t.addRow({std::string("Data item (track) size"), std::string("80 bytes"),
            std::string(std::to_string(spec.messages[0].bytes_per_track) +
                        " bytes")});
  t.addRow({std::string("Data arrival period"), std::string("1 sec"),
            std::string(std::to_string(spec.period.sec()) + " sec")});
  t.addRow({std::string("Relative end-to-end deadline"),
            std::string("990 ms"),
            std::string(std::to_string(spec.deadline.ms()) + " ms")});
  t.addRow({std::string("Number of periodic tasks"), std::string("1"),
            std::string("1")});
  t.addRow({std::string("Number of subtasks per task"), std::string("5"),
            std::string(std::to_string(spec.stageCount()))});
  std::size_t replicable = 0;
  for (const auto& st : spec.subtasks) {
    replicable += st.replicable ? 1 : 0;
  }
  t.addRow({std::string("Replicable subtasks per task"), std::string("2"),
            std::string(std::to_string(replicable))});
  t.addRow({std::string("CPU utilization threshold UT (non-predictive)"),
            std::string("20%"), std::string("20%")});
  t.print(std::cout);

  check(scenario.node_count == 6, "node count");
  check(scenario.cpu.policy == node::SchedPolicy::kRoundRobin, "scheduler");
  check(scenario.cpu.quantum == SimDuration::millis(1.0), "time slice");
  check(scenario.ethernet.rate == BitRate::mbps(100.0), "link rate");
  check(spec.messages[0].bytes_per_track == 80.0, "track size");
  check(spec.period == SimDuration::seconds(1.0), "period");
  check(spec.deadline == SimDuration::millis(990.0), "deadline");
  check(spec.stageCount() == 5, "subtask count");
  check(replicable == 2, "replicable subtasks");
  check(experiments::EpisodeConfig{}.nonpredictive_threshold ==
            Utilization::percent(20.0),
        "UT threshold");

  if (g_failures == 0) {
    std::cout << "\nAll Table 1 parameters match the paper.\n";
    return EXIT_SUCCESS;
  }
  std::cout << "\n" << g_failures << " parameter(s) diverge from Table 1.\n";
  return EXIT_FAILURE;
}
