// Micro-benchmarks (google-benchmark): the run-time costs of the manager's
// building blocks. The paper's algorithm runs *online* inside a resource
// manager, so its decision latency must be negligible against the 1 s
// period — these benches quantify that.
#include <benchmark/benchmark.h>

#include "apps/dynbench.hpp"
#include "core/allocators.hpp"
#include "core/eqf.hpp"
#include "experiments/episode.hpp"
#include "regress/exec_model.hpp"
#include "sim/simulator.hpp"
#include "common/histogram.hpp"
#include "regress/rls.hpp"
#include "sim/trace.hpp"
#include "workload/patterns.hpp"

using namespace rtdrm;

namespace {

// ---- simulation kernel -----------------------------------------------

void BM_EventQueue_ScheduleAndFire(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sink = 0;
    for (std::size_t i = 0; i < n; ++i) {
      sim.scheduleAt(SimTime::millis(static_cast<double>((i * 7919) % n)),
                     [&sink] { ++sink; });
    }
    sim.runAll();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_EventQueue_ScheduleAndFire)->Arg(1000)->Arg(100000);

void BM_Processor_RoundRobin(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    node::Processor cpu(sim, ProcessorId{0});
    for (std::size_t i = 0; i < jobs; ++i) {
      cpu.submit(node::Job{SimDuration::millis(5.0), nullptr, "j"});
    }
    sim.runAll();
    benchmark::DoNotOptimize(cpu.jobsCompleted());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(jobs) *
                          state.iterations());
}
BENCHMARK(BM_Processor_RoundRobin)->Arg(16)->Arg(256);

void BM_Ethernet_MessageDelivery(benchmark::State& state) {
  const auto msgs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    net::Ethernet ether(sim, 6);
    for (std::size_t i = 0; i < msgs; ++i) {
      ether.send(net::Message{ProcessorId{static_cast<std::uint32_t>(i % 6)},
                              ProcessorId{static_cast<std::uint32_t>((i + 1) % 6)},
                              Bytes::kilo(40.0), "m", {}});
    }
    sim.runAll();
    benchmark::DoNotOptimize(ether.messagesDelivered());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(msgs) *
                          state.iterations());
}
BENCHMARK(BM_Ethernet_MessageDelivery)->Arg(64);

// ---- the manager's online decision path --------------------------------

void BM_EqfAssignment(benchmark::State& state) {
  const core::EqfInput in{{1.0, 1.5, 21.6, 1.0, 16.7},
                          {7.5, 7.5, 7.5, 7.5},
                          990.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::assignEqf(in));
  }
}
BENCHMARK(BM_EqfAssignment);

void BM_ExecModelEval(benchmark::State& state) {
  regress::ExecLatencyModel m;
  m.a1 = -0.0016;
  m.a3 = 0.118;
  m.b1 = 0.03;
  m.b3 = 0.98;
  double d = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.evalMs(d, 0.4));
    d += 0.001;
  }
}
BENCHMARK(BM_ExecModelEval);

void BM_TwoStageFit(benchmark::State& state) {
  // The full Table-2-sized profiling dataset: 5 levels x 25 sizes.
  std::vector<regress::ExecSample> samples;
  for (double u : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    for (double dd = 1.0; dd <= 25.0; dd += 1.0) {
      samples.push_back(regress::ExecSample{
          dd, u, (0.118 * dd * dd + 0.98 * dd) / (1.0 - 0.9 * u)});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(regress::fitExecModelTwoStage(samples));
  }
}
BENCHMARK(BM_TwoStageFit);

void BM_PredictiveDecision(benchmark::State& state) {
  // One full Fig.-5 allocation on a 6-node cluster under load.
  sim::Simulator sim;
  node::Cluster cluster(sim, 6);
  for (std::uint32_t i = 0; i < 6; ++i) {
    cluster.processor(ProcessorId{i})
        .submit(node::Job{SimDuration::millis(10.0 * (i + 1)), nullptr, "l"});
  }
  sim.runUntil(SimTime::millis(100.0));
  cluster.sampleUtilization();

  const task::TaskSpec spec = apps::makeAawTaskSpec();
  core::PredictiveModels models;
  for (std::size_t i = 0; i < spec.stageCount(); ++i) {
    regress::ExecLatencyModel m;
    m.a3 = spec.subtasks[i].cost.alpha_ms;
    m.b3 = spec.subtasks[i].cost.beta_ms;
    m.b1 = 1.0;
    models.exec.push_back(m);
  }
  const core::EqfBudgets budgets = core::assignEqf(
      {{1.0, 1.5, 21.6, 1.0, 16.7}, {7.5, 7.5, 7.5, 7.5}, 990.0});
  core::PredictiveAllocator alloc(models);
  const core::AllocationContext ctx{spec, cluster, DataSize::tracks(8000.0),
                                    budgets, 0.2};
  for (auto _ : state) {
    task::ReplicaSet rs(ProcessorId{2});
    benchmark::DoNotOptimize(alloc.replicate(ctx, apps::kFilterStage, rs));
  }
}
BENCHMARK(BM_PredictiveDecision);

void BM_RlsUpdate(benchmark::State& state) {
  regress::RecursiveLeastSquares rls(6, 0.99);
  double d = 1.0;
  for (auto _ : state) {
    const double d2 = d * d;
    rls.update({0.16 * d2, 0.4 * d2, d2, 0.16 * d, 0.4 * d, d}, 10.0 * d);
    d += 0.001;
    if (d > 30.0) {
      d = 1.0;
    }
  }
}
BENCHMARK(BM_RlsUpdate);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h(0.0, 3000.0, 60);
  double x = 0.0;
  for (auto _ : state) {
    h.add(x);
    x += 1.7;
    if (x > 3200.0) {
      x = 0.0;
    }
  }
  benchmark::DoNotOptimize(h.total());
}
BENCHMARK(BM_HistogramAdd);

void BM_TraceRecord(benchmark::State& state) {
  sim::TraceRecorder trace(1u << 20);
  for (auto _ : state) {
    trace.record(SimTime::millis(1.0), sim::TraceCategory::kReplicate,
                 "Filter", 3.0);
    if (trace.events().size() >= (1u << 20) - 2) {
      state.PauseTiming();
      trace.clear();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_TraceRecord);

void BM_JitteredPatternEval(benchmark::State& state) {
  workload::RampParams p;
  const workload::Triangular base(p);
  const workload::Jittered pat(base, 0.2, 7);
  std::uint64_t c = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pat.at(c++).count());
  }
}
BENCHMARK(BM_JitteredPatternEval);

void BM_FullEpisode(benchmark::State& state) {
  const task::TaskSpec spec = apps::makeAawTaskSpec();
  core::PredictiveModels models;
  for (std::size_t i = 0; i < spec.stageCount(); ++i) {
    regress::ExecLatencyModel m;
    m.a3 = spec.subtasks[i].cost.alpha_ms;
    m.b3 = spec.subtasks[i].cost.beta_ms;
    m.b1 = 1.0;
    models.exec.push_back(m);
  }
  workload::RampParams ramp;
  ramp.max_workload = DataSize::tracks(8000.0);
  const workload::Triangular pattern(ramp);
  experiments::EpisodeConfig cfg;
  cfg.periods = 24;
  for (auto _ : state) {
    benchmark::DoNotOptimize(experiments::runEpisode(
        spec, pattern, models, experiments::AlgorithmKind::kPredictive, cfg));
  }
}
BENCHMARK(BM_FullEpisode)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
