// Figure 12 — Performance of the algorithms for the decreasing-ramp
// workload pattern (starts at max workload, descends to min): the four
// evaluation metrics versus max workload.
#include <iostream>

#include "bench_util.hpp"

using namespace rtdrm;

int main() {
  const auto points = bench::runPaperSweep("decreasing");

  bench::printSweepMetric(
      "Figure 12(a): Missed deadline ratio (%) — decreasing ramp", points,
      bench::missedPct, "fig12a_missed");
  bench::printSweepMetric(
      "Figure 12(b): Average CPU utilization (%) — decreasing ramp", points,
      bench::cpuPct, "fig12b_cpu");
  bench::printSweepMetric(
      "Figure 12(c): Average network utilization (%) — decreasing ramp",
      points, bench::netPct, "fig12c_net");
  bench::printSweepMetric(
      "Figure 12(d): Average number of subtask replicas — decreasing ramp",
      points, bench::avgReplicas, "fig12d_replicas");

  // Shutdown must reclaim replicas as the workload descends: the average
  // replica count stays well below the peak the heavy start demands.
  bool ok = true;
  for (const auto& p : points) {
    if (p.max_workload_units >= 20.0) {
      ok = ok && p.predictive.metrics.shutdown_actions > 0;
    }
  }
  std::cout << (ok ? "\nShape check PASSED: replicas are shut down as the "
                     "ramp descends.\n"
                   : "\nShape check FAILED.\n");
  return ok ? 0 : 1;
}
