// Extension — a-posteriori model refinement under environmental drift.
//
// The paper's models are fitted once, offline; its related work ([BN+98,
// RSYJ97]) refines estimates from run-time observations. Here the AAW
// application's replicable-subtask cost doubles mid-episode (sensor
// environment change), invalidating the offline eq.-3 models, and we race
// the static-model predictive manager against one that refreshes its
// models online with recursive least squares.
#include <iostream>

#include "bench_util.hpp"

using namespace rtdrm;

int main() {
  const auto& spec = bench::aawSpec();
  const auto& fitted = bench::fittedModels();

  workload::RampParams ramp;
  ramp.min_workload = DataSize::tracks(500.0);
  ramp.max_workload = DataSize::tracks(9000.0);
  ramp.ramp_periods = 30;
  const workload::Triangular pat(ramp);

  printBanner(std::cout,
              "Online refinement under drift (replicable costs x2 at "
              "period 36 of 108)");
  Table t({"models", "drift", "missed %", "avg replicas", "combined C"}, 2);

  double static_missed = 0.0;
  double refit_missed = 0.0;
  for (const bool drift : {false, true}) {
    for (const bool refit : {false, true}) {
      experiments::EpisodeConfig cfg;
      cfg.periods = 108;
      cfg.manager.online_refit = refit;
      cfg.manager.refit.forgetting = 0.97;
      cfg.manager.refit.min_observations = 16;
      if (drift) {
        cfg.drift_at_period = 36;
        cfg.drift_cost_scale = 2.0;
      }
      const auto r = runEpisode(spec, pat, fitted.models,
                                experiments::AlgorithmKind::kPredictive,
                                cfg);
      t.addRow({std::string(refit ? "online-refit" : "static (paper)"),
                std::string(drift ? "yes" : "no"), r.missed_pct,
                r.avg_replicas, r.combined});
      if (drift && refit) {
        refit_missed = r.missed_pct;
      }
      if (drift && !refit) {
        static_missed = r.missed_pct;
      }
    }
  }
  t.print(std::cout);
  if (t.writeCsv("ext_online_refit.csv")) {
    std::cout << "(series written to ext_online_refit.csv)\n";
  }

  const bool ok = refit_missed <= static_missed + 2.0;
  std::cout << (ok ? "\nShape check PASSED: refreshed models are no worse "
                     "under drift (and the static models keep the paper's "
                     "behaviour when the environment is stationary).\n"
                   : "\nShape check FAILED.\n");
  return ok ? 0 : 1;
}
