#include "bench_util.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/parallel.hpp"
#include "profile/exec_profiler.hpp"

namespace rtdrm::bench {

const task::TaskSpec& aawSpec() {
  static const task::TaskSpec spec = apps::makeAawTaskSpec();
  return spec;
}

std::string runContextJson() {
  const parallel::Config& c = parallel::config();
  return "\"threads\": " + std::to_string(c.threads) + ", \"sim_mode\": \"" +
         parallel::simModeName(c.sim_mode) + "\", \"lookahead\": \"" +
         parallel::lookaheadPolicyName(c.lookahead) +
         "\", \"cpu_count\": " + std::to_string(c.cpu_count);
}

const experiments::FittedModelSet& fittedModels() {
  static const experiments::FittedModelSet fitted = [] {
    std::cout << "[fitting regression models on the simulated testbed...]\n";
    return experiments::fitAllModels(aawSpec(),
                                     experiments::defaultModelFitConfig());
  }();
  return fitted;
}

experiments::SweepConfig paperSweepConfig() {
  experiments::SweepConfig cfg;
  cfg.episode.periods = 72;
  cfg.ramp.min_workload = DataSize::tracks(500.0);
  cfg.ramp.ramp_periods = 30;
  return cfg;
}

std::vector<experiments::SweepPoint> runPaperSweep(
    const std::string& pattern) {
  return experiments::runWorkloadSweep(aawSpec(), fittedModels().models,
                                       pattern, paperSweepConfig());
}

void printSweepMetric(const std::string& title,
                      const std::vector<experiments::SweepPoint>& points,
                      double (*metric)(const experiments::EpisodeResult&),
                      const std::string& csv_stem) {
  printBanner(std::cout, title);
  Table t({"max workload (x500 tracks)", "PREDICTIVE", "NON-PREDICTIVE"}, 3);
  for (const auto& p : points) {
    t.addRow({p.max_workload_units, metric(p.predictive),
              metric(p.non_predictive)});
  }
  t.print(std::cout);
  const std::string csv = csv_stem + ".csv";
  if (t.writeCsv(csv)) {
    std::cout << "(series written to " << csv << ")\n";
  }
}

bool runProfileFigure(std::size_t stage, double utilization,
                      const std::string& title, const std::string& csv_stem) {
  const task::TaskSpec& spec = aawSpec();

  // Measure the "y" series at exactly this utilization level...
  profile::ExecProfileConfig cfg;
  cfg.utilization_levels = {utilization};
  cfg.data_sizes = profile::paperDataGrid();
  cfg.samples_per_point = 6;
  const auto samples = profile::profileExecution(spec.subtasks[stage], cfg);
  const regress::LevelFit level = regress::fitLevel(samples);

  // ... and take the full eq.-3 surface from the shared model fit.
  const regress::ExecLatencyModel& surface =
      fittedModels().models.exec[stage];

  printBanner(std::cout, title);
  Table t({"data size (x300 tracks)", "measured y (ms)", "level fit Y (ms)",
           "surface fit Y- (ms)"},
          2);
  std::vector<double> means;
  std::vector<double> surface_preds;
  for (const DataSize d : cfg.data_sizes) {
    double sum = 0.0;
    int n = 0;
    for (const auto& s : samples) {
      if (s.d_hundreds == d.hundreds()) {
        sum += s.latency_ms;
        ++n;
      }
    }
    const double y = sum / n;
    const double level_fit = level.evalMs(d.hundreds());
    const double surface_fit = surface.evalMs(d.hundreds(), utilization);
    means.push_back(y);
    surface_preds.push_back(surface_fit);
    t.addRow({d.count() / 300.0, y, level_fit, surface_fit});
  }
  t.print(std::cout);
  // Judge the surface against the per-point *means* (the scatter of single
  // executions under a stochastic background load is irreducible, exactly
  // like the wiggles in the paper's measured "y" lines).
  const regress::FitDiagnostics surf_diag =
      regress::diagnose(means, surface_preds, 6);
  std::cout << "level-fit R^2 = " << level.diagnostics.r_squared
            << ", surface R^2 vs per-size means = " << surf_diag.r_squared
            << "\n";
  const std::string csv = csv_stem + ".csv";
  if (t.writeCsv(csv)) {
    std::cout << "(series written to " << csv << ")\n";
  }
  return level.diagnostics.r_squared > 0.7 && surf_diag.r_squared > 0.9;
}

double missedPct(const experiments::EpisodeResult& r) { return r.missed_pct; }
double cpuPct(const experiments::EpisodeResult& r) { return r.cpu_pct; }
double netPct(const experiments::EpisodeResult& r) { return r.net_pct; }
double avgReplicas(const experiments::EpisodeResult& r) {
  return r.avg_replicas;
}
double combinedMetric(const experiments::EpisodeResult& r) {
  return r.combined;
}

}  // namespace rtdrm::bench
