// Extension — cluster-size scalability study.
//
// The paper fixes 6 nodes (Table 1). Sweeping the cluster from 2 to 16
// nodes at a fixed heavy workload exposes the system's Amdahl ceiling:
// replication parallelizes only the two replicable subtasks, while the
// serial stages and the workload-proportional buffer delay (eq. 5) set a
// floor no amount of processors can remove.
#include <iostream>

#include "bench_util.hpp"

using namespace rtdrm;

int main() {
  const auto& spec = bench::aawSpec();
  const auto& fitted = bench::fittedModels();

  workload::RampParams ramp;
  ramp.min_workload = DataSize::tracks(500.0);
  ramp.max_workload = DataSize::tracks(14000.0);
  ramp.ramp_periods = 30;
  const workload::Triangular pat(ramp);

  printBanner(std::cout,
              "Scalability: nodes 2..16, triangular max 14000 tracks, "
              "predictive allocator");
  Table t({"nodes", "missed %", "mean e2e (ms)", "avg replicas",
           "cpu %", "net %"},
          2);
  double missed_small = 0.0;
  double missed_mid = 0.0;
  double missed_large = 0.0;
  for (const std::size_t nodes : {2u, 4u, 6u, 8u, 12u, 16u}) {
    experiments::EpisodeConfig cfg;
    cfg.periods = 72;
    cfg.scenario.node_count = nodes;
    const auto r = runEpisode(spec, pat, fitted.models,
                              experiments::AlgorithmKind::kPredictive, cfg);
    t.addRow({static_cast<long long>(nodes), r.missed_pct,
              r.metrics.end_to_end_ms.mean(), r.avg_replicas, r.cpu_pct,
              r.net_pct});
    if (nodes == 2) {
      missed_small = r.missed_pct;
    }
    if (nodes == 6) {
      missed_mid = r.missed_pct;
    }
    if (nodes == 16) {
      missed_large = r.missed_pct;
    }
  }
  t.print(std::cout);
  if (t.writeCsv("ext_scalability.csv")) {
    std::cout << "(series written to ext_scalability.csv)\n";
  }

  // More nodes must help up to the serial floor, after which adding
  // processors buys (almost) nothing.
  const bool ok = missed_small > missed_mid + 5.0 &&
                  missed_large <= missed_mid + 2.0;
  std::cout << (ok ? "\nShape check PASSED: misses fall steeply up to the "
                     "baseline size, then flatten at the serial/Dbuf "
                     "floor (Amdahl).\n"
                   : "\nShape check FAILED.\n");
  return ok ? 0 : 1;
}
