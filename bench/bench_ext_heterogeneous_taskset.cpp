// Extension — heterogeneous task set.
//
// The paper's model is a set of periodic tasks with different structures
// and periods; its evaluation uses one. Here the three DynBench-style
// paths — AAW (1 s), Engage (500 ms), Surveillance (2 s) — run together on
// the 6-node cluster, each with its own fitted models and workload shape,
// all posting into the shared eq.-5 ledger.
#include <iostream>

#include "bench_util.hpp"
#include "experiments/multitask.hpp"

using namespace rtdrm;

int main() {
  const task::TaskSpec aaw = apps::makeAawTaskSpec();
  const task::TaskSpec engage = apps::makeEngagePathSpec();
  const task::TaskSpec surveil = apps::makeSurveillancePathSpec();

  std::cout << "[fitting models for the three task structures...]\n";
  experiments::ModelFitConfig fit_cfg = experiments::defaultModelFitConfig();
  fit_cfg.exec.samples_per_point = 4;
  const auto f_aaw = experiments::fitAllModels(aaw, fit_cfg);
  const auto f_engage = experiments::fitAllModels(engage, fit_cfg);
  const auto f_surveil = experiments::fitAllModels(surveil, fit_cfg);

  // Workloads: AAW rides a triangle, Engage bursts, Surveillance is flat.
  workload::RampParams ramp;
  ramp.min_workload = DataSize::tracks(500.0);
  ramp.max_workload = DataSize::tracks(7000.0);
  ramp.ramp_periods = 30;
  const workload::Triangular aaw_load(ramp);
  const workload::Burst engage_load(DataSize::tracks(300.0),
                                    DataSize::tracks(4000.0), 60, 20);
  const workload::Constant surveil_load(DataSize::tracks(2500.0));

  const std::vector<experiments::TaskSetMember> members{
      {&engage, &engage_load, &f_engage.models, 0},  // fastest first
      {&aaw, &aaw_load, &f_aaw.models, 0},
      {&surveil, &surveil_load, &f_surveil.models, 0},
  };

  printBanner(std::cout,
              "Heterogeneous task set: Engage (0.5 s) + AAW (1 s) + "
              "Surveillance (2 s), 90 s horizon");
  Table t({"task", "algorithm", "missed %", "avg replicas", "combined C"},
          2);
  double pred_combined = 0.0;
  double nonp_combined = 0.0;
  double worst_missed = 0.0;
  for (const auto kind : {experiments::AlgorithmKind::kPredictive,
                          experiments::AlgorithmKind::kNonPredictive}) {
    experiments::EpisodeConfig cfg;
    const auto r = experiments::runTaskSetEpisode(
        members, kind, cfg, SimDuration::seconds(90.0));
    const char* names[] = {"Engage", "AAW", "Surveil"};
    for (std::size_t i = 0; i < r.tasks.size(); ++i) {
      t.addRow({std::string(names[i]), experiments::algorithmName(kind),
                r.tasks[i].missed_pct, r.tasks[i].avg_replicas,
                r.tasks[i].combined});
      worst_missed = std::max(worst_missed, r.tasks[i].missed_pct);
    }
    t.addRow({std::string("(mean)"), experiments::algorithmName(kind),
              r.missed_pct, r.avg_replicas, r.combined});
    if (kind == experiments::AlgorithmKind::kPredictive) {
      pred_combined = r.combined;
    } else {
      nonp_combined = r.combined;
    }
  }
  t.print(std::cout);
  if (t.writeCsv("ext_heterogeneous_taskset.csv")) {
    std::cout << "(series written to ext_heterogeneous_taskset.csv)\n";
  }

  const bool ok = worst_missed < 40.0 && pred_combined <= nonp_combined + 0.05;
  std::cout << (ok ? "\nShape check PASSED: the set is schedulable and the "
                     "predictive allocator keeps its edge across "
                     "heterogeneous tasks.\n"
                   : "\nShape check FAILED.\n");
  return ok ? 0 : 1;
}
