// Table 2 — Coefficients of the execution-latency regression equation.
//
// Profiles the two replicable subtasks (Filter = subtask 3, EvalDecide =
// subtask 5) over the paper's (data size x CPU utilization) grid and fits
// eq. (3) with the two-stage procedure. The paper's measured coefficients
// are printed alongside for comparison.
//
// Interpretation note (DESIGN.md §2): u is a fraction in [0, 1]; the
// paper's coefficients are only dimensionally consistent in that reading.
// Absolute agreement in a1/a2/b1/b2 is not expected — those encode how the
// authors' testbed degraded under load, ours encode round-robin processor
// sharing — but a3/b3 (the u -> 0 column) must approximate the ground-truth
// cost that both systems share.
#include <iostream>

#include "bench_util.hpp"
#include "profile/exec_profiler.hpp"

using namespace rtdrm;

namespace {

struct PaperRow {
  const char* name;
  std::size_t stage;
  double a1, a2, a3, b1, b2, b3;
};

constexpr PaperRow kPaper[] = {
    {"Filter (subtask 3)", apps::kFilterStage, -0.00155, 1.535e-05,
     0.11816174, 0.0298276, -0.000285, 0.983699},
    {"EvalDecide (subtask 5)", apps::kEvalDecideStage, 0.002123, -1.596e-05,
     0.022324, -0.023927, 0.000108, 1.443762},
};

}  // namespace

int main() {
  const auto& fitted = bench::fittedModels();

  printBanner(std::cout,
              "Table 2: Coefficients of the execution latency regression "
              "equation (eq. 3)");
  Table t({"subtask", "source", "a1", "a2", "a3", "b1", "b2", "b3", "R^2"},
          5);
  bool ok = true;
  for (const PaperRow& row : kPaper) {
    const auto& fit = fitted.exec_fits[row.stage];
    const auto& m = fit.model;
    t.addRow({std::string(row.name), std::string("paper"), row.a1, row.a2,
              row.a3, row.b1, row.b2, row.b3, std::string("-")});
    t.addRow({std::string(row.name), std::string("measured"), m.a1, m.a2,
              m.a3, m.b1, m.b2, m.b3, fit.diagnostics.r_squared});
    // a3 (the u->0 quadratic term) must track the shared ground truth; R^2
    // is judged against the sample scatter, which is irreducible for the
    // lighter subtask at high utilization.
    ok = ok && std::abs(m.a3 - row.a3) < 0.08 &&
         fit.diagnostics.r_squared > 0.75;
  }
  t.print(std::cout);

  // Generalization check: 5-fold cross-validated held-out error of the
  // Filter model (the paper reports in-sample fits only).
  {
    profile::ExecProfileConfig pcfg;
    pcfg.data_sizes = profile::paperDataGrid();
    pcfg.samples_per_point = 4;
    const auto samples = profile::profileExecution(
        bench::aawSpec().subtasks[apps::kFilterStage], pcfg);
    const auto cv = regress::crossValidateExecModel(samples, 5, true);
    std::cout << "\nFilter 5-fold cross-validation: held-out RMSE = "
              << cv.mean_rmse << " ms, held-out R^2 = " << cv.mean_r_squared
              << "\n";
  }

  std::cout << "\nPer-utilization-level stage-1 fits (Filter):\n";
  Table lv({"u", "c2 (d^2 term)", "c1 (d term)", "R^2"}, 4);
  for (const auto& l : fitted.exec_fits[apps::kFilterStage].levels) {
    lv.addRow({l.u, l.c2, l.c1, l.diagnostics.r_squared});
  }
  lv.print(std::cout);

  std::cout << (ok ? "\nShape check PASSED: u->0 coefficients track ground "
                     "truth and fits are tight.\n"
                   : "\nShape check FAILED: fitted coefficients diverge.\n");
  return ok ? 0 : 1;
}
