// Event-kernel microbenchmark: the slab + indexed-4-ary-heap kernel
// (sim::Simulator) against the seed kernel (priority_queue + callback map +
// tombstone set + std::function), compiled side by side in this binary so
// before/after is one run. Three synthetic cases exercise the hot paths —
// schedule/fire churn, schedule/cancel churn, a periodic-activity storm —
// and one end-to-end case times a full Fig. 9 triangular episode pair on
// the production kernel. Prints ns/event & events/sec, cross-checks that
// both kernels fire in the identical order (checksum), and writes
// bench_out/sim_kernel.csv.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::bench {
namespace {

// ---- the seed kernel, verbatim ----------------------------------------
// Kept here (not in src/) purely as the benchmark baseline.
namespace legacy {

class Simulator {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  sim::EventId scheduleAt(SimTime at, Callback cb) {
    const std::uint64_t seq = next_seq_++;
    heap_.push(Entry{at.ms(), seq});
    callbacks_.emplace(seq, std::move(cb));
    return sim::EventId{seq};
  }
  sim::EventId scheduleAfter(SimDuration delay, Callback cb) {
    return scheduleAt(now_ + delay, std::move(cb));
  }

  bool cancel(sim::EventId id) {
    auto it = callbacks_.find(id.value);
    if (it == callbacks_.end()) {
      return false;
    }
    callbacks_.erase(it);
    cancelled_.insert(id.value);
    return true;
  }

  void runUntil(SimTime until) {
    while (!heap_.empty()) {
      if (heap_.top().time_ms > until.ms()) {
        break;
      }
      fireHead();
    }
    if (now_ < until) {
      now_ = until;
    }
  }

  void runAll() {
    while (!heap_.empty()) {
      fireHead();
    }
  }

  std::uint64_t eventsExecuted() const { return events_executed_; }

 private:
  struct Entry {
    double time_ms;
    std::uint64_t seq;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time_ms != b.time_ms) {
        return a.time_ms > b.time_ms;
      }
      return a.seq > b.seq;
    }
  };

  void fireHead() {
    const Entry e = heap_.top();
    heap_.pop();
    if (cancelled_.erase(e.seq) > 0) {
      return;
    }
    auto it = callbacks_.find(e.seq);
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    now_ = SimTime::millis(e.time_ms);
    ++events_executed_;
    cb();
  }

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace legacy

// ---- cases --------------------------------------------------------------
// Callbacks capture ~24 bytes (two words + a payload double), matching the
// repo's real call-site shapes ([this, nic], [this, job], [cb, receipt])
// that exceed std::function's 16-byte inline budget.

struct CaseResult {
  std::uint64_t events = 0;
  double best_sec = 0.0;
  std::uint64_t checksum = 0;

  double nsPerEvent() const {
    return best_sec * 1e9 / static_cast<double>(events);
  }
  double eventsPerSec() const {
    return static_cast<double>(events) / best_sec;
  }
};

/// Schedule/fire churn: `waves` rounds of scheduling a batch at scrambled
/// times and draining it — the steady-state pattern of every episode.
template <typename Sim>
CaseResult churnCase(std::uint64_t waves, std::uint64_t batch) {
  CaseResult r;
  r.events = waves * batch;
  for (int rep = 0; rep < 3; ++rep) {
    Sim sim;
    std::uint64_t sum = 0;
    double payload = 0.25;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t w = 0; w < waves; ++w) {
      for (std::uint64_t i = 0; i < batch; ++i) {
        const double at = static_cast<double>((i * 7919u) % batch);
        sim.scheduleAfter(SimDuration::millis(at),
                          [&sum, i, payload] {
                            sum = sum * 31 + i + static_cast<std::uint64_t>(payload);
                          });
      }
      sim.runAll();
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    if (rep == 0 || dt.count() < r.best_sec) {
      r.best_sec = dt.count();
    }
    r.checksum = sum;
  }
  return r;
}

/// Schedule/cancel churn: every wave schedules a batch then cancels half of
/// it before draining — the SlackMonitor / Ethernet-cutoff pattern.
template <typename Sim>
CaseResult cancelCase(std::uint64_t waves, std::uint64_t batch) {
  CaseResult r;
  r.events = waves * batch;  // scheduled events (half fire, half cancel)
  for (int rep = 0; rep < 3; ++rep) {
    Sim sim;
    std::uint64_t sum = 0;
    double payload = 0.5;
    std::vector<sim::EventId> ids(batch);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t w = 0; w < waves; ++w) {
      for (std::uint64_t i = 0; i < batch; ++i) {
        const double at = static_cast<double>((i * 104729u) % batch);
        ids[i] = sim.scheduleAfter(
            SimDuration::millis(at), [&sum, i, payload] {
              sum = sum * 31 + i + static_cast<std::uint64_t>(payload);
            });
      }
      for (std::uint64_t i = 0; i < batch; i += 2) {
        sim.cancel(ids[i]);
      }
      sim.runAll();
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    if (rep == 0 || dt.count() < r.best_sec) {
      r.best_sec = dt.count();
    }
    r.checksum = sum;
  }
  return r;
}

/// Timer churn: the watchdog pattern every pipeline run uses — arm a
/// cutoff far in the future, finish almost immediately, cancel the cutoff.
/// The seed kernel leaves a tombstone in the heap (and the cancelled set)
/// until the far-future time finally pops, so the calendar inflates with
/// dead entries; the slab kernel releases the closure in O(1) and prunes
/// the heap whenever it goes half-stale.
template <typename Sim>
CaseResult timerCase(std::uint64_t waves, std::uint64_t batch) {
  CaseResult r;
  r.events = waves * batch;  // armed-and-cancelled timers
  for (int rep = 0; rep < 3; ++rep) {
    Sim sim;
    std::uint64_t sum = 0;
    double payload = 0.75;
    std::vector<sim::EventId> ids(batch);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t w = 0; w < waves; ++w) {
      for (std::uint64_t i = 0; i < batch; ++i) {
        ids[i] = sim.scheduleAfter(
            SimDuration::millis(1000.0 + static_cast<double>(i)),
            [&sum, i, payload] {
              sum = sum * 31 + i + static_cast<std::uint64_t>(payload);
            });
      }
      for (std::uint64_t i = 0; i < batch; ++i) {
        sim.cancel(ids[i]);  // the run beat its cutoff, as usual
      }
      sim.scheduleAfter(SimDuration::millis(1.0),
                        [&sum] { sum = sum * 31 + 1; });
      sim.runUntil(sim.now() + SimDuration::millis(1.0));
    }
    sim.runAll();  // drain whatever the kernel left behind
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    if (rep == 0 || dt.count() < r.best_sec) {
      r.best_sec = dt.count();
    }
    r.checksum = sum;
  }
  return r;
}

/// Periodic-activity storm: `k` self-rescheduling activities with distinct
/// periods tick for a horizon — the TaskRunner/clock-sync/monitor pattern.
/// Hand-rolled recurrence (not PeriodicActivity) so both kernels run the
/// exact same code shape.
template <typename Sim>
CaseResult stormCase(std::uint64_t k, double horizon_ms) {
  CaseResult r;
  for (int rep = 0; rep < 3; ++rep) {
    Sim sim;
    std::uint64_t sum = 0;
    std::uint64_t fired = 0;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::function<void()>> tickers(k);
    for (std::uint64_t a = 0; a < k; ++a) {
      const double period = 1.0 + 0.01 * static_cast<double>(a);
      tickers[a] = [&sim, &sum, &fired, &tickers, a, period, horizon_ms] {
        sum = sum * 31 + a;
        ++fired;
        if (sim.now().ms() + period <= horizon_ms) {
          sim.scheduleAfter(SimDuration::millis(period), [&tickers, a] {
            tickers[a]();
          });
        }
      };
      sim.scheduleAfter(SimDuration::millis(period),
                        [&tickers, a] { tickers[a](); });
    }
    sim.runUntil(SimTime::millis(horizon_ms));
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    if (rep == 0 || dt.count() < r.best_sec) {
      r.best_sec = dt.count();
    }
    r.events = fired;
    r.checksum = sum;
  }
  return r;
}

/// End-to-end: one Fig. 9 triangular episode pair (both algorithms) at a
/// mid-sweep workload on the production kernel. No legacy counterpart —
/// the stack links only one kernel — so this row tracks wall clock across
/// PRs via BENCH_kernel.json.
double episodeCaseSec() {
  const auto& spec = aawSpec();
  const auto& models = fittedModels().models;
  auto cfg = paperSweepConfig();
  workload::RampParams ramp = cfg.ramp;
  ramp.max_workload = DataSize::tracks(18.0 * 500.0);
  const auto pattern = workload::makeFig8Pattern("triangular", ramp);
  experiments::EpisodeConfig ep = cfg.episode;
  ep.manager.d_init = ramp.min_workload;

  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    experiments::runEpisode(spec, *pattern, models,
                            experiments::AlgorithmKind::kPredictive, ep);
    experiments::runEpisode(spec, *pattern, models,
                            experiments::AlgorithmKind::kNonPredictive, ep);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    if (rep == 0 || dt.count() < best) {
      best = dt.count();
    }
  }
  return best;
}

struct Row {
  std::string case_name;
  std::string kernel;
  CaseResult res;
};

void printRow(const Row& row) {
  std::cout << "  " << std::left << std::setw(16) << row.case_name
            << std::setw(8) << row.kernel << std::right << std::setw(12)
            << row.res.events << std::setw(12) << std::fixed
            << std::setprecision(1) << row.res.nsPerEvent() << std::setw(14)
            << std::setprecision(2) << row.res.eventsPerSec() / 1e6 << "\n";
}

}  // namespace
}  // namespace rtdrm::bench

int main(int argc, char** argv) {
  using namespace rtdrm;
  using namespace rtdrm::bench;

  // Default scale: ~512 events pending at once, the order of what a Figs.
  // 9-13 testbed keeps in flight (processor quanta, NIC frames, activity
  // ticks across 6 nodes), with enough waves for 1M+ events total.
  // Override with: bench_sim_kernel [batch] [waves].
  std::uint64_t kBatch = 512;
  std::uint64_t kWaves = 2000;
  if (argc > 1) {
    kBatch = std::strtoull(argv[1], nullptr, 10);
  }
  if (argc > 2) {
    kWaves = std::strtoull(argv[2], nullptr, 10);
  }
  if (kBatch == 0 || kWaves == 0) {
    std::cerr << "usage: bench_sim_kernel [batch >= 1] [waves >= 1]\n";
    return 2;
  }

  std::vector<Row> rows;
  rows.push_back({"churn", "legacy", churnCase<legacy::Simulator>(kWaves, kBatch)});
  rows.push_back({"churn", "slab", churnCase<sim::Simulator>(kWaves, kBatch)});
  rows.push_back({"cancel", "legacy", cancelCase<legacy::Simulator>(kWaves, kBatch)});
  rows.push_back({"cancel", "slab", cancelCase<sim::Simulator>(kWaves, kBatch)});
  rows.push_back({"timer", "legacy", timerCase<legacy::Simulator>(kWaves, kBatch)});
  rows.push_back({"timer", "slab", timerCase<sim::Simulator>(kWaves, kBatch)});
  rows.push_back({"storm", "legacy", stormCase<legacy::Simulator>(256, 4000.0)});
  rows.push_back({"storm", "slab", stormCase<sim::Simulator>(256, 4000.0)});

  std::cout << "\nEvent kernel microbench (best of 3)\n";
  std::cout << "  " << std::left << std::setw(16) << "case" << std::setw(8)
            << "kernel" << std::right << std::setw(12) << "events"
            << std::setw(12) << "ns/event" << std::setw(14) << "Mevents/s"
            << "\n";
  for (const auto& r : rows) {
    printRow(r);
  }

  bool ok = true;
  std::cout << "\nSpeedups (legacy / slab) and fire-order cross-check:\n";
  for (std::size_t i = 0; i + 1 < rows.size(); i += 2) {
    const auto& legacy_row = rows[i];
    const auto& slab_row = rows[i + 1];
    const double speedup =
        legacy_row.res.best_sec / slab_row.res.best_sec;
    const bool same_order =
        legacy_row.res.checksum == slab_row.res.checksum &&
        legacy_row.res.events == slab_row.res.events;
    ok = ok && same_order;
    std::cout << "  " << std::left << std::setw(16) << legacy_row.case_name
              << std::right << std::fixed << std::setprecision(2)
              << speedup << "x   "
              << (same_order ? "order identical" : "ORDER MISMATCH") << "\n";
  }

  const double episode_sec = episodeCaseSec();
  std::cout << "\nEnd-to-end triangular episode pair (slab kernel): "
            << std::fixed << std::setprecision(1) << episode_sec * 1e3
            << " ms\n";

  std::filesystem::create_directories("bench_out");
  std::ofstream csv("bench_out/sim_kernel.csv");
  csv << "case,kernel,events,ns_per_event,events_per_sec\n";
  for (const auto& r : rows) {
    csv << r.case_name << ',' << r.kernel << ',' << r.res.events << ','
        << r.res.nsPerEvent() << ',' << r.res.eventsPerSec() << '\n';
  }
  csv << "episode_pair,slab," << 1 << ',' << episode_sec * 1e9 << ','
      << 1.0 / episode_sec << '\n';
  std::cout << "(written to bench_out/sim_kernel.csv)\n";

  std::cout << (ok ? "\nCross-check PASSED: both kernels fire in the "
                     "identical (time, insertion-order) order.\n"
                   : "\nCross-check FAILED.\n");
  return ok ? 0 : 1;
}
