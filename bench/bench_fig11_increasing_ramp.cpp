// Figure 11 — Performance of the algorithms for the increasing-ramp
// workload pattern: missed deadlines, CPU utilization, network utilization
// and replica counts versus max workload.
#include <iostream>

#include "bench_util.hpp"

using namespace rtdrm;

int main() {
  const auto points = bench::runPaperSweep("increasing");

  bench::printSweepMetric(
      "Figure 11(a): Missed deadline ratio (%) — increasing ramp", points,
      bench::missedPct, "fig11a_missed");
  bench::printSweepMetric(
      "Figure 11(b): Average CPU utilization (%) — increasing ramp", points,
      bench::cpuPct, "fig11b_cpu");
  bench::printSweepMetric(
      "Figure 11(c): Average network utilization (%) — increasing ramp",
      points, bench::netPct, "fig11c_net");
  bench::printSweepMetric(
      "Figure 11(d): Average number of subtask replicas — increasing ramp",
      points, bench::avgReplicas, "fig11d_replicas");

  // Both algorithms must actually adapt along the ramp.
  bool ok = true;
  for (const auto& p : points) {
    if (p.max_workload_units >= 20.0) {
      ok = ok && p.predictive.avg_replicas > 1.0 &&
           p.non_predictive.avg_replicas > 1.0;
    }
  }
  std::cout << (ok ? "\nShape check PASSED: both algorithms replicate under "
                     "heavy increasing ramps.\n"
                   : "\nShape check FAILED.\n");
  return ok ? 0 : 1;
}
