// Figure 3 — Execution latencies of the EvalDecide program at 60% CPU
// utilization and different data sizes ("y", "Y", "Y-" series).
#include "bench_util.hpp"

int main() {
  const bool ok = rtdrm::bench::runProfileFigure(
      rtdrm::apps::kEvalDecideStage, 0.6,
      "Figure 3: Execution latencies of EvalDecide at 60% CPU utilization",
      "fig3_evaldecide_profile");
  return ok ? 0 : 1;
}
