// Shared plumbing for the per-figure/table bench binaries.
//
// Every binary regenerates one table or figure of the paper: it fits the
// regression models on the simulated testbed (cached in-process), runs the
// relevant experiment, prints the series as an aligned table, and drops a
// CSV next to the binary for plotting.
#pragma once

#include <string>
#include <vector>

#include "apps/dynbench.hpp"
#include "common/table.hpp"
#include "experiments/episode.hpp"
#include "experiments/model_store.hpp"

namespace rtdrm::bench {

/// The AAW task at Table 1 baseline parameters.
const task::TaskSpec& aawSpec();

/// Execution-context JSON fragment every emitted BENCH_*.json `config`
/// block carries so recorded numbers stay interpretable on any machine:
///   "threads": 4, "sim_mode": "det", "lookahead": "adaptive", "cpu_count": 8
/// Reads the live parallel::config(), so call it after any --threads /
/// --sim-mode / --lookahead flags have been applied.
std::string runContextJson();

/// Models fitted with the full paper grids (computed once per process).
const experiments::FittedModelSet& fittedModels();

/// The Figs. 9-13 sweep configuration: max workload 2..34 scale units of
/// 500 tracks, 72-period episodes, ramp length 30.
experiments::SweepConfig paperSweepConfig();

/// Runs (and caches nothing — callers keep the result) a full two-algorithm
/// sweep of the given Fig. 8 pattern.
std::vector<experiments::SweepPoint> runPaperSweep(const std::string& pattern);

/// Prints one metric of a sweep as a table (both algorithms side by side)
/// and writes `<csv_stem>.csv`.
void printSweepMetric(const std::string& title,
                      const std::vector<experiments::SweepPoint>& points,
                      double (*metric)(const experiments::EpisodeResult&),
                      const std::string& csv_stem);

/// Figs. 2-3 helper: profiles `stage` of the AAW task at one utilization
/// level over the paper's data grid and prints, per data size, the measured
/// mean latency (the blue "y" series), the per-level quadratic fit (red
/// "Y") and the full eq.-3 surface (green "Y-"). Returns true if the fits
/// track the measurements.
bool runProfileFigure(std::size_t stage, double utilization,
                      const std::string& title, const std::string& csv_stem);

// Metric extractors for printSweepMetric.
double missedPct(const experiments::EpisodeResult& r);
double cpuPct(const experiments::EpisodeResult& r);
double netPct(const experiments::EpisodeResult& r);
double avgReplicas(const experiments::EpisodeResult& r);
double combinedMetric(const experiments::EpisodeResult& r);

}  // namespace rtdrm::bench
