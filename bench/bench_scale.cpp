// Management-plane scalability: nodes x tasks, indexed vs reference scans.
//
// The paper fixes 6 nodes and one AAW task; this bench grows the episode
// to 256 nodes x 32 tasks and measures what the management plane costs as
// it scales. Each cell runs the same multi-task episode twice on one
// build: once with the cluster's utilization min-index (the production
// path) and once routed through the seed's linear scans
// (Cluster::setUtilizationIndexEnabled(false)) — the bench_sim_kernel
// idiom, so before/after is one run. Both modes must make *identical*
// decisions; the bench cross-checks every per-task metric bit-for-bit and
// fails loudly on any divergence.
//
// Emits bench_out/scale.csv; the committed BENCH_scale.json records the
// headline 256x32 before/after. `--smoke` runs the 16-node short-horizon
// subset used by CI.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/scenario.hpp"
#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "core/ledger.hpp"
#include "core/manager.hpp"
#include "workload/patterns.hpp"

using namespace rtdrm;

namespace {

struct CellConfig {
  std::size_t nodes = 6;
  std::size_t tasks = 1;
  std::uint64_t periods = 12;
  double max_tracks = 14000.0;
  double min_frac = 0.5;
  std::uint64_t ramp_periods = 6;
  experiments::AlgorithmKind algorithm =
      experiments::AlgorithmKind::kPredictive;
  bool use_index = true;
  /// Event-kernel sharding for the episode (1 = legacy single queue).
  std::size_t sim_shards = 1;
  parallel::SimMode sim_mode = parallel::SimMode::kDeterministic;
  parallel::LookaheadPolicy lookahead = parallel::LookaheadPolicy::kAdaptive;
};

struct CellResult {
  double wall_ms = 0.0;
  // Barrier-path profile (zero for single-queue cells).
  std::uint64_t windows = 0;
  std::uint64_t shard_windows = 0;
  std::uint64_t shard_windows_skipped = 0;
  std::uint64_t posts_merged = 0;
  std::uint64_t events = 0;
  // Decision-dependent aggregates, compared bit-for-bit across modes.
  double missed_pct = 0.0;
  double avg_replicas = 0.0;
  std::uint64_t replicate_actions = 0;
  std::uint64_t shutdown_actions = 0;
  std::uint64_t allocation_failures = 0;
};

/// One multi-task episode (the runMultiTaskEpisode wiring, inlined so the
/// cluster's index toggle is reachable), timed end to end: release through
/// drain, managers included.
CellResult runCell(const task::TaskSpec& spec,
                   const core::PredictiveModels& models,
                   const CellConfig& cfg) {
  apps::ScenarioConfig scfg;
  scfg.node_count = cfg.nodes;
  scfg.sim_shards = cfg.sim_shards;
  scfg.sim_mode = cfg.sim_mode;
  scfg.sim_lookahead = cfg.lookahead;
  apps::Scenario scenario(scfg);
  scenario.cluster().setUtilizationIndexEnabled(cfg.use_index);

  // A fast triangular oscillation between min_frac*max and max: replica
  // sets stay large but keep growing and shedding every few periods, which
  // is the regime the management plane actually has to survive at scale —
  // a saturated cluster stops allocating and hides the per-decision cost.
  workload::RampParams ramp;
  ramp.min_workload = DataSize::tracks(cfg.max_tracks * cfg.min_frac);
  ramp.max_workload = DataSize::tracks(cfg.max_tracks);
  ramp.ramp_periods = cfg.ramp_periods;
  const workload::Triangular pattern(ramp);

  core::WorkloadLedger ledger;
  std::vector<task::TaskSpec> specs(cfg.tasks, spec);
  std::vector<std::unique_ptr<core::ResourceManager>> managers;
  managers.reserve(cfg.tasks);
  for (std::size_t t = 0; t < cfg.tasks; ++t) {
    specs[t].name = spec.name + "#" + std::to_string(t + 1);
    // Staggered primaries and phase-shifted peaks, as in multitask.cpp.
    std::vector<ProcessorId> homes;
    for (std::size_t s = 0; s < spec.stageCount(); ++s) {
      homes.push_back(ProcessorId{
          static_cast<std::uint32_t>((s + 2 * t) % cfg.nodes)});
    }
    std::unique_ptr<core::Allocator> allocator;
    if (cfg.algorithm == experiments::AlgorithmKind::kPredictive) {
      allocator = std::make_unique<core::PredictiveAllocator>(models);
    } else {
      allocator = std::make_unique<core::NonPredictiveAllocator>();
    }
    core::ManagerConfig mgr_cfg;
    mgr_cfg.sample_cluster = (t == 0);
    const std::uint64_t phase = t * 5;
    managers.push_back(std::make_unique<core::ResourceManager>(
        scenario.runtime(), specs[t], task::Placement(homes),
        [&pattern, phase](std::uint64_t c) { return pattern.at(c + phase); },
        std::move(allocator), models, mgr_cfg,
        scenario.streams().get("exec-noise", t)));
    managers.back()->attachLedger(ledger);
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (auto& m : managers) {
    m->start(scenario.sim().now());
  }
  scenario.runFor(spec.period * static_cast<double>(cfg.periods));
  for (auto& m : managers) {
    m->stop();
  }
  scenario.runFor(spec.period * 3.0);
  const auto t1 = std::chrono::steady_clock::now();

  CellResult out;
  out.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const sim::ShardedEngine::WindowStats& ws = scenario.engine().windowStats();
  out.windows = ws.rounds;
  out.shard_windows = ws.shard_windows;
  out.shard_windows_skipped = ws.shard_windows_skipped;
  out.posts_merged = ws.posts_merged;
  out.events = scenario.engine().eventsExecuted();
  double missed = 0.0;
  double replicas = 0.0;
  for (const auto& m : managers) {
    const core::EpisodeMetrics& em = m->metrics();
    missed += em.missedRatio() * 100.0;
    replicas += em.replicas_per_subtask.mean();
    out.replicate_actions += em.replicate_actions;
    out.shutdown_actions += em.shutdown_actions;
    out.allocation_failures += em.allocation_failures;
  }
  out.missed_pct = missed / static_cast<double>(cfg.tasks);
  out.avg_replicas = replicas / static_cast<double>(cfg.tasks);
  return out;
}

bool sameDecisions(const CellResult& a, const CellResult& b) {
  return a.missed_pct == b.missed_pct && a.avg_replicas == b.avg_replicas &&
         a.replicate_actions == b.replicate_actions &&
         a.shutdown_actions == b.shutdown_actions &&
         a.allocation_failures == b.allocation_failures;
}

/// The sharded-engine thread axis at one headline cell: the legacy single
/// queue, then det and fast window modes at a fixed shard count across
/// worker-thread counts. Sharded timing semantics differ from the single
/// queue (cross-shard handoffs slip by the lookahead), so the parity
/// cross-check runs *within* the sharded cells: every (mode, threads,
/// lookahead policy) combination at the same shard count must make
/// identical decisions — the engine's window-structure-independence
/// contract. The det rows additionally run under BOTH lookahead policies
/// at threads=1 to measure the window-overhead reduction, with an
/// in-binary gate that adaptive never executes more barrier rounds than
/// static. Returns false on a parity or window-gate violation.
bool runThreadAxis(const task::TaskSpec& spec,
                   const core::PredictiveModels& models, CellConfig cfg,
                   std::size_t shards,
                   const std::vector<unsigned>& thread_grid, Table* t) {
  cfg.use_index = true;
  cfg.sim_shards = 1;
  const CellResult single = runCell(spec, models, cfg);
  t->addRow({static_cast<long long>(cfg.nodes),
             static_cast<long long>(cfg.tasks), "single", "-", 1LL, 1LL,
             single.wall_ms, 1.0, 0LL, single.missed_pct,
             single.avg_replicas});

  bool parity_ok = true;
  bool have_ref = false;
  CellResult ref;
  CellResult by_policy[2];  // indexed by LookaheadPolicy, det threads=1
  cfg.sim_shards = shards;
  for (const parallel::SimMode mode :
       {parallel::SimMode::kDeterministic, parallel::SimMode::kFast}) {
    cfg.sim_mode = mode;
    const bool det = mode == parallel::SimMode::kDeterministic;
    for (const parallel::LookaheadPolicy policy :
         {parallel::LookaheadPolicy::kStatic,
          parallel::LookaheadPolicy::kAdaptive}) {
      // Fast mode only runs the adaptive (default) policy; the det rows
      // measure both so the static baseline stays on the record.
      if (!det && policy == parallel::LookaheadPolicy::kStatic) {
        continue;
      }
      cfg.lookahead = policy;
      for (const unsigned threads : thread_grid) {
        // The static det sweep only needs the threads=1 reference point.
        if (det && policy == parallel::LookaheadPolicy::kStatic &&
            threads != 1) {
          continue;
        }
        parallel::setThreads(threads);
        const CellResult r = runCell(spec, models, cfg);
        if (det && threads == 1) {
          by_policy[static_cast<int>(policy)] = r;
        }
        if (!have_ref) {
          ref = r;
          have_ref = true;
        } else if (!sameDecisions(ref, r)) {
          parity_ok = false;
          std::cout << "SHARDED PARITY MISMATCH at " << cfg.nodes << "x"
                    << cfg.tasks << " shards=" << shards << " mode="
                    << parallel::simModeName(mode) << " lookahead="
                    << parallel::lookaheadPolicyName(policy)
                    << " threads=" << threads << "\n";
        }
        t->addRow({static_cast<long long>(cfg.nodes),
                   static_cast<long long>(cfg.tasks),
                   parallel::simModeName(mode),
                   parallel::lookaheadPolicyName(policy),
                   static_cast<long long>(shards),
                   static_cast<long long>(threads), r.wall_ms,
                   single.wall_ms / r.wall_ms,
                   static_cast<long long>(r.windows), r.missed_pct,
                   r.avg_replicas});
      }
    }
  }
  parallel::setThreads(0);  // restore the env/hardware default

  // Window-overhead section (det, threads=1): the adaptive policy's whole
  // point is fewer, wider barrier rounds for the same executed events.
  const CellResult& st = by_policy[0];
  const CellResult& ad = by_policy[1];
  std::cout << "\nWindow overhead (det, threads=1, shards=" << shards
            << "):\n";
  const auto line = [](const char* name, const CellResult& r) {
    const double epw =
        r.windows == 0 ? 0.0
                       : static_cast<double>(r.events) /
                             static_cast<double>(r.windows);
    std::cout << "  " << name << ": rounds=" << r.windows
              << " shard_windows=" << r.shard_windows << " (skipped "
              << r.shard_windows_skipped << ") posts_merged="
              << r.posts_merged << " events=" << r.events
              << " events/round=" << std::fixed << std::setprecision(1)
              << epw << "\n";
  };
  line("static  ", st);
  line("adaptive", ad);
  if (ad.windows > st.windows) {
    std::cout << "WINDOW GATE FAILED: adaptive executed " << ad.windows
              << " barrier rounds vs " << st.windows << " static.\n";
    return false;
  }
  if (st.windows > 0) {
    std::cout << "  reduction: " << std::fixed << std::setprecision(2)
              << static_cast<double>(st.windows) /
                     static_cast<double>(std::max<std::uint64_t>(1,
                                                                 ad.windows))
              << "x fewer barrier rounds (gate: adaptive <= static) "
                 "PASSED\n";
  }
  return parity_ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::int64_t periods = 12;
  std::int64_t repeat = 1;
  double max_tracks = 14000.0;
  double min_frac = 0.5;
  std::int64_t ramp_periods = 6;
  std::int64_t only_nodes = 0;
  std::int64_t only_tasks = 0;
  std::int64_t threads = 0;
  std::int64_t shards = 8;
  std::string sim_mode = "det";
  std::string lookahead = "adaptive";
  bool xl = false;
  bool no_threads_axis = false;
  ArgParser parser("bench_scale",
                   "Management-plane scalability: indexed vs scan episode "
                   "wall-clock over nodes x tasks, plus the sharded-engine "
                   "thread axis at the headline cell");
  parser.addFlag("smoke", "CI subset: 16 nodes, {1, 8} tasks, 12 periods",
                 &smoke);
  parser.addInt("threads", "worker threads (0 = RTDRM_THREADS or cores)",
                &threads)
      .addInt("shards", "event-kernel shards for the thread axis", &shards)
      .addString("sim-mode", "det | fast for the index-vs-scan grid",
                 &sim_mode)
      .addString("lookahead",
                 "static | adaptive barrier-window sizing for the "
                 "index-vs-scan grid (the thread axis always measures both)",
                 &lookahead)
      .addFlag("xl", "add the 1024-node / 128-task extremes to the grids",
               &xl)
      .addFlag("no-threads-axis", "skip the sharded-engine thread axis",
               &no_threads_axis);
  parser.addInt("periods", "episode length in task periods", &periods);
  parser.addInt("repeat", "timing repetitions per cell (best-of)", &repeat);
  parser.addDouble("max-tracks", "triangular-ramp peak workload", &max_tracks);
  parser.addDouble("min-frac", "ramp floor as a fraction of the peak",
                   &min_frac);
  parser.addInt("ramp", "triangular ramp length in periods", &ramp_periods);
  parser.addInt("nodes", "run a single node count instead of the grid",
                &only_nodes);
  parser.addInt("tasks", "run a single task count instead of the grid",
                &only_tasks);
  if (!parser.parse(argc, argv)) {
    return parser.helpRequested() ? 0 : 2;
  }
  parallel::setThreads(threads < 0 ? 0u : static_cast<unsigned>(threads));
  parallel::SimMode grid_mode{};
  if (!parallel::parseSimMode(sim_mode, &grid_mode)) {
    std::cerr << "unknown sim mode '" << sim_mode << "' (det | fast)\n";
    return 2;
  }
  parallel::setSimMode(grid_mode);
  parallel::LookaheadPolicy grid_lookahead{};
  if (!parallel::parseLookaheadPolicy(lookahead, &grid_lookahead)) {
    std::cerr << "unknown lookahead policy '" << lookahead
              << "' (static | adaptive)\n";
    return 2;
  }
  parallel::setLookaheadPolicy(grid_lookahead);

  const auto& spec = bench::aawSpec();
  const auto& fitted = bench::fittedModels();

  std::vector<std::size_t> node_grid{16, 64, 256};
  std::vector<std::size_t> task_grid{1, 8, 32};
  if (xl) {
    node_grid.push_back(1024);
    task_grid.push_back(128);
  }
  if (smoke) {
    node_grid = {16};
    task_grid = {1, 8};
    periods = 12;
  }
  if (only_nodes > 0) {
    node_grid = {static_cast<std::size_t>(only_nodes)};
  }
  if (only_tasks > 0) {
    task_grid = {static_cast<std::size_t>(only_tasks)};
  }

  printBanner(std::cout,
              "Management-plane scale: episode wall-clock, utilization "
              "index vs reference scans (identical decisions)");
  Table t({"nodes", "tasks", "algorithm", "scan ms", "indexed ms",
           "speedup", "missed %", "avg replicas"},
          2);

  bool decisions_ok = true;
  double headline_speedup = 0.0;
  for (const std::size_t nodes : node_grid) {
    for (const std::size_t tasks : task_grid) {
      for (const auto algorithm :
           {experiments::AlgorithmKind::kPredictive,
            experiments::AlgorithmKind::kNonPredictive}) {
        CellConfig cfg;
        cfg.nodes = nodes;
        cfg.tasks = tasks;
        cfg.periods = static_cast<std::uint64_t>(periods);
        cfg.max_tracks = max_tracks;
        cfg.min_frac = min_frac;
        cfg.ramp_periods = static_cast<std::uint64_t>(ramp_periods);
        cfg.algorithm = algorithm;
        cfg.sim_mode = grid_mode;
        cfg.lookahead = grid_lookahead;

        CellResult scan;
        CellResult indexed;
        for (std::int64_t r = 0; r < repeat; ++r) {
          cfg.use_index = false;
          const CellResult s = runCell(spec, fitted.models, cfg);
          cfg.use_index = true;
          const CellResult i = runCell(spec, fitted.models, cfg);
          if (r == 0 || s.wall_ms < scan.wall_ms) {
            scan = s;
          }
          if (r == 0 || i.wall_ms < indexed.wall_ms) {
            indexed = i;
          }
        }
        if (!sameDecisions(scan, indexed)) {
          decisions_ok = false;
          std::cout << "DECISION MISMATCH at " << nodes << " nodes x "
                    << tasks << " tasks ("
                    << experiments::algorithmName(algorithm) << ")\n";
        }
        const double speedup = scan.wall_ms / indexed.wall_ms;
        if (nodes == 256 && tasks == 32 &&
            algorithm == experiments::AlgorithmKind::kPredictive) {
          headline_speedup = speedup;
        }
        t.addRow({static_cast<long long>(nodes),
                  static_cast<long long>(tasks),
                  experiments::algorithmName(algorithm), scan.wall_ms,
                  indexed.wall_ms, speedup, indexed.missed_pct,
                  indexed.avg_replicas});
      }
    }
  }
  t.print(std::cout);

  std::filesystem::create_directories("bench_out");
  if (t.writeCsv("bench_out/scale.csv")) {
    std::cout << "(series written to bench_out/scale.csv)\n";
  }

  bool parity_ok = true;
  if (!no_threads_axis) {
    printBanner(std::cout,
                "Sharded engine thread axis: single queue vs det/fast "
                "windows (" + std::string("cpu_count=") +
                    std::to_string(parallel::config().cpu_count) + ")");
    Table ta({"nodes", "tasks", "mode", "lookahead", "shards", "threads",
              "wall ms", "speedup", "windows", "missed %", "avg replicas"},
             2);
    CellConfig axis;
    axis.nodes = smoke ? 16 : node_grid.back();
    axis.tasks = smoke ? 8 : task_grid.back();
    axis.periods = static_cast<std::uint64_t>(periods);
    axis.max_tracks = max_tracks;
    axis.min_frac = min_frac;
    axis.ramp_periods = static_cast<std::uint64_t>(ramp_periods);
    const std::vector<unsigned> thread_grid =
        smoke ? std::vector<unsigned>{1, 2}
              : std::vector<unsigned>{1, 2, 4, 8};
    parity_ok = runThreadAxis(
        spec, fitted.models, axis,
        static_cast<std::size_t>(std::max<std::int64_t>(2, shards)),
        thread_grid, &ta);
    ta.print(std::cout);
    if (ta.writeCsv("bench_out/scale_threads.csv")) {
      std::cout << "(series written to bench_out/scale_threads.csv)\n";
    }
    if (parity_ok) {
      std::cout << "Sharded parity cross-check PASSED: identical decisions "
                   "across modes and thread counts.\n";
    }
  }

  if (!decisions_ok || !parity_ok) {
    std::cout << "\nFAILED: "
              << (!decisions_ok ? "indexed and scan modes diverged."
                                : "sharded runs diverged across threads.")
              << "\n";
    return 1;
  }
  std::cout << "\nDecision cross-check PASSED: indexed and scan modes "
               "produced identical episodes.\n";
  if (headline_speedup > 0.0) {
    std::cout << "Headline (256 nodes x 32 tasks, predictive): "
              << std::fixed << std::setprecision(2) << headline_speedup
              << "x\n";
  }
  return 0;
}
