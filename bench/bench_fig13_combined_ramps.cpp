// Figure 13 — Combined performance metric for (a) the increasing-ramp and
// (b) the decreasing-ramp patterns.
#include <iostream>

#include "bench_util.hpp"

using namespace rtdrm;

int main() {
  const auto inc = bench::runPaperSweep("increasing");
  const auto dec = bench::runPaperSweep("decreasing");

  bench::printSweepMetric(
      "Figure 13(a): Combined performance metric — increasing ramp", inc,
      bench::combinedMetric, "fig13a_combined_increasing");
  bench::printSweepMetric(
      "Figure 13(b): Combined performance metric — decreasing ramp", dec,
      bench::combinedMetric, "fig13b_combined_decreasing");

  // Paper §5.2: predictive wins up to a workload threshold (~28 units);
  // beyond it the two algorithms trade places. Check the pre-threshold
  // band on both ramps.
  auto preThresholdWins = [](const std::vector<experiments::SweepPoint>& pts) {
    int wins = 0;
    int total = 0;
    for (const auto& p : pts) {
      if (p.max_workload_units > 4.0 && p.max_workload_units <= 28.0) {
        ++total;
        wins += p.predictive.combined <= p.non_predictive.combined ? 1 : 0;
      }
    }
    return std::pair<int, int>{wins, total};
  };
  const auto [wi, ti] = preThresholdWins(inc);
  const auto [wd, td] = preThresholdWins(dec);
  std::cout << "\npre-threshold (<= 28 units) predictive wins: increasing "
            << wi << "/" << ti << ", decreasing " << wd << "/" << td << "\n";
  const bool ok = wi * 2 > ti && wd * 2 > td;
  std::cout << (ok ? "Shape check PASSED: predictive leads below the "
                     "workload threshold on both ramps.\n"
                   : "Shape check FAILED.\n");
  return ok ? 0 : 1;
}
