// Extension — sensitivity to workload stochasticity.
//
// The paper's asynchronous model assumes "event arrivals have
// nondeterministic distributions", yet its evaluation drives deterministic
// ramps. Here multiplicative lognormal jitter is layered over the
// triangular pattern and both algorithms are swept across jitter levels:
// prediction gets harder as the next period stops resembling the current
// one, so this probes how much of the predictive advantage survives noise.
#include <iostream>

#include "bench_util.hpp"

using namespace rtdrm;

int main() {
  const auto& spec = bench::aawSpec();
  const auto& fitted = bench::fittedModels();

  workload::RampParams ramp;
  ramp.min_workload = DataSize::tracks(500.0);
  ramp.max_workload = DataSize::tracks(10000.0);
  ramp.ramp_periods = 30;
  const workload::Triangular base(ramp);

  printBanner(std::cout,
              "Workload jitter sweep (triangular max 10000, lognormal "
              "multiplicative noise)");
  Table t({"jitter sigma", "algorithm", "missed %", "avg replicas",
           "combined C"},
          2);
  double pred_win_count = 0.0;
  int levels = 0;
  for (const double sigma : {0.0, 0.1, 0.2, 0.35, 0.5}) {
    const workload::Jittered pat(base, sigma, /*seed=*/1234);
    double pred_c = 0.0;
    double nonp_c = 0.0;
    for (const auto kind : {experiments::AlgorithmKind::kPredictive,
                            experiments::AlgorithmKind::kNonPredictive}) {
      experiments::EpisodeConfig cfg;
      cfg.periods = 72;
      const auto r = runEpisode(spec, pat, fitted.models, kind, cfg);
      t.addRow({sigma, experiments::algorithmName(kind), r.missed_pct,
                r.avg_replicas, r.combined});
      (kind == experiments::AlgorithmKind::kPredictive ? pred_c : nonp_c) =
          r.combined;
    }
    ++levels;
    pred_win_count += pred_c <= nonp_c ? 1.0 : 0.0;
  }
  t.print(std::cout);
  if (t.writeCsv("ext_workload_noise.csv")) {
    std::cout << "(series written to ext_workload_noise.csv)\n";
  }

  const bool ok = pred_win_count >= 0.8 * levels;
  std::cout << "\npredictive wins the combined metric at " << pred_win_count
            << "/" << levels << " jitter levels\n"
            << (ok ? "Shape check PASSED: the predictive advantage "
                     "survives workload stochasticity.\n"
                   : "Shape check FAILED.\n");
  return ok ? 0 : 1;
}
