// Extension — manager failover: decision-gap impact on missed deadlines
// as a function of the manager detector's timeout.
//
// The decentralized management plane keeps task execution running when the
// active manager endpoint dies, but every period between the crash and the
// standby's election runs without monitor/allocator decisions (the
// decision gate). This bench crashes the active at the triangular ramp's
// steepest point — where a gated allocator hurts most — and sweeps the
// heartbeat detector's staleness timeout, measuring:
//
//   * the decision gap (crash -> election, ms) against the detector's
//     worst-case budget timeout + (retries+1)*interval + retries*backoff,
//   * the missed-deadline ratio against the centralized control and the
//     2-manager no-crash control.
//
// A neutrality run asserts in-binary that --managers 1 with plane config
// fields populated (but no plane built) reproduces the plain centralized
// episode exactly. Emits bench_out/manager_failover.csv and
// BENCH_fault_failover.json (BENCH_fault.json belongs to the node-crash
// bench and is not touched).
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "experiments/episode.hpp"
#include "workload/patterns.hpp"

using namespace rtdrm;

namespace {

struct BenchConfig {
  std::size_t nodes = 6;  // Table 1
  std::size_t managers = 2;
  std::uint64_t periods = 48;
  std::uint64_t crash_period = 16;           // steepest ramp-up point
  double restart_after_periods = 16.0;       // back one cycle later
  double max_tracks = 9000.0;
  double min_tracks = 2000.0;
  std::uint64_t ramp_periods = 12;
};

experiments::EpisodeConfig makeEpisode(const BenchConfig& cfg,
                                       const task::TaskSpec& spec,
                                       bool plane, bool crash,
                                       double timeout_ms) {
  experiments::EpisodeConfig ep;
  ep.scenario.node_count = cfg.nodes;
  ep.periods = cfg.periods;
  if (plane) {
    ep.plane.managers = cfg.managers;
    ep.plane.gossip_interval = spec.period * 0.2;
    ep.plane.staleness_bound = spec.period * 0.8;
    ep.manager_detector.timeout = SimDuration::millis(timeout_ms);
    if (crash) {
      ep.manager_crash_at_period = cfg.crash_period;
      ep.manager_fault_target = 0;  // the initial active
      ep.manager_restart_after_periods = cfg.restart_after_periods;
    }
  }
  return ep;
}

experiments::EpisodeResult runOne(const BenchConfig& cfg,
                                  const task::TaskSpec& spec,
                                  const core::PredictiveModels& models,
                                  const experiments::EpisodeConfig& ep) {
  workload::RampParams ramp;
  ramp.min_workload = DataSize::tracks(cfg.min_tracks);
  ramp.max_workload = DataSize::tracks(cfg.max_tracks);
  ramp.ramp_periods = cfg.ramp_periods;
  const workload::Triangular pattern(ramp);
  return runEpisode(spec, pattern, models,
                    experiments::AlgorithmKind::kPredictive, ep);
}

bool sameEpisode(const experiments::EpisodeResult& a,
                 const experiments::EpisodeResult& b) {
  return a.missed_pct == b.missed_pct && a.cpu_pct == b.cpu_pct &&
         a.net_pct == b.net_pct && a.avg_replicas == b.avg_replicas &&
         a.metrics.replicate_actions == b.metrics.replicate_actions &&
         a.metrics.shutdown_actions == b.metrics.shutdown_actions &&
         a.metrics.allocation_failures == b.metrics.allocation_failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t periods = 48;
  ArgParser parser("bench_ext_manager_failover",
                   "Missed deadlines and decision gap through an active-"
                   "manager crash, swept over the detector timeout");
  parser.addInt("periods", "episode length in task periods", &periods);
  if (!parser.parse(argc, argv)) {
    return parser.helpRequested() ? 0 : 2;
  }

  const auto& spec = bench::aawSpec();
  const auto& fitted = bench::fittedModels();
  BenchConfig cfg;
  cfg.periods = static_cast<std::uint64_t>(periods);

  printBanner(std::cout,
              "Manager failover: active endpoint crashes at period " +
                  std::to_string(cfg.crash_period) +
                  ", detector timeout swept");

  // In-binary neutrality: managers == 1 with plane fields populated builds
  // no plane and must reproduce the plain centralized episode exactly.
  const experiments::EpisodeResult control =
      runOne(cfg, spec, fitted.models,
             makeEpisode(cfg, spec, /*plane=*/false, false, 0.0));
  experiments::EpisodeConfig neutral =
      makeEpisode(cfg, spec, /*plane=*/true, false, 250.0);
  neutral.plane.managers = 1;
  const bool neutrality_ok =
      sameEpisode(control, runOne(cfg, spec, fitted.models, neutral));
  if (!neutrality_ok) {
    std::cout << "NEUTRALITY VIOLATION: --managers 1 with plane config set "
                 "diverged from the centralized episode\n";
  }

  Table t({"scenario", "timeout ms", "missed %", "gap ms", "budget ms",
           "elections", "suppressed periods", "gossip rounds"},
          2);
  t.addRow({"centralized control", 0.0, control.missed_pct, 0.0, 0.0,
            0LL, 0LL, 0LL});

  const experiments::EpisodeResult no_crash =
      runOne(cfg, spec, fitted.models,
             makeEpisode(cfg, spec, true, /*crash=*/false, 250.0));
  t.addRow({"2 managers, no crash", 250.0, no_crash.missed_pct, 0.0, 0.0,
            static_cast<long long>(no_crash.elections),
            static_cast<long long>(no_crash.suppressed_periods),
            static_cast<long long>(no_crash.gossip_rounds)});

  bool ok = neutrality_ok;
  if (no_crash.elections != 0 || no_crash.decision_gap_ms != 0.0) {
    std::cout << "Shape check FAILED: the crash-free plane elected ("
              << no_crash.elections << ") or opened a gap ("
              << no_crash.decision_gap_ms << " ms).\n";
    ok = false;
  }

  // The sweep: the gap must track the detector budget, and a slower
  // detector must never miss fewer deadlines than a faster one (within
  // episode noise, checked end-to-end against the extremes).
  const fault::DetectorConfig dc;  // interval/retry/backoff defaults
  std::ostringstream json_rows;
  std::vector<double> gaps;
  std::vector<double> missed;
  const std::vector<double> timeouts = {100.0, 250.0, 500.0, 1000.0};
  for (const double timeout_ms : timeouts) {
    const experiments::EpisodeResult r =
        runOne(cfg, spec, fitted.models,
               makeEpisode(cfg, spec, true, true, timeout_ms));
    const double budget_ms =
        timeout_ms +
        static_cast<double>(dc.max_retries + 1) * dc.interval.ms() +
        static_cast<double>(dc.max_retries) * dc.retry_backoff.ms();
    t.addRow({"2 managers, crash", timeout_ms, r.missed_pct,
              r.decision_gap_ms, budget_ms,
              static_cast<long long>(r.elections),
              static_cast<long long>(r.suppressed_periods),
              static_cast<long long>(r.gossip_rounds)});
    if (!json_rows.str().empty()) {
      json_rows << ",\n";
    }
    json_rows << "    { \"timeout_ms\": " << std::fixed
              << std::setprecision(2) << timeout_ms
              << ", \"missed_pct\": " << r.missed_pct
              << ", \"decision_gap_ms\": " << r.decision_gap_ms
              << ", \"budget_ms\": " << budget_ms
              << ", \"elections\": " << r.elections
              << ", \"suppressed_periods\": " << r.suppressed_periods
              << ", \"gossip_rounds\": " << r.gossip_rounds << " }";
    gaps.push_back(r.decision_gap_ms);
    missed.push_back(r.missed_pct);
    if (r.elections < 1) {
      std::cout << "Shape check FAILED: no election after the crash "
                   "(timeout "
                << timeout_ms << " ms).\n";
      ok = false;
    }
    if (r.decision_gap_ms <= 0.0 || r.decision_gap_ms > budget_ms + 50.0) {
      std::cout << "Shape check FAILED: decision gap " << r.decision_gap_ms
                << " ms outside (0, budget " << budget_ms
                << " + 50] at timeout " << timeout_ms << " ms.\n";
      ok = false;
    }
  }
  // Longer detection must mean a no-shorter gap, and the slowest detector
  // must not beat the fastest on missed deadlines.
  for (std::size_t i = 1; i < gaps.size(); ++i) {
    if (gaps[i] < gaps[i - 1]) {
      std::cout << "Shape check FAILED: gap shrank as the timeout grew ("
                << gaps[i - 1] << " -> " << gaps[i] << " ms).\n";
      ok = false;
    }
  }
  if (missed.back() < missed.front()) {
    std::cout << "Shape check FAILED: the slowest detector missed fewer "
                 "deadlines than the fastest ("
              << missed.back() << "% vs " << missed.front() << "%).\n";
    ok = false;
  }
  t.print(std::cout);

  std::filesystem::create_directories("bench_out");
  if (t.writeCsv("bench_out/manager_failover.csv")) {
    std::cout << "(series written to bench_out/manager_failover.csv)\n";
  }

  {
    std::ofstream json("BENCH_fault_failover.json");
    json << "{\n"
         << "  \"benchmark\": \"bench_ext_manager_failover\",\n"
         << "  \"description\": \"Active-manager crash on the 2-manager "
            "decentralized plane at the triangular ramp's steepest point "
            "(AAW task, Table-1 cluster), with the endpoint restarting one "
            "cycle later. Sweeps the manager heartbeat detector's staleness "
            "timeout and reports the decision gap (crash to standby "
            "election) against the detector's worst-case budget, plus the "
            "missed-deadline ratio against centralized and crash-free "
            "controls. Simulation-deterministic (no wall-clock).\",\n"
         << "  \"config\": {\n"
         << "    \"nodes\": " << cfg.nodes << ",\n"
         << "    \"managers\": " << cfg.managers << ",\n"
         << "    \"periods\": " << cfg.periods << ",\n"
         << "    \"crash_period\": " << cfg.crash_period << ",\n"
         << "    \"restart_after_periods\": " << std::fixed
         << std::setprecision(1) << cfg.restart_after_periods << ",\n"
         << "    \"workload_tracks\": [" << cfg.min_tracks << ", "
         << cfg.max_tracks << "],\n"
         << "    \"detector\": { \"interval_ms\": " << std::setprecision(0)
         << dc.interval.ms() << ", \"max_retries\": " << dc.max_retries
         << ", \"retry_backoff_ms\": " << dc.retry_backoff.ms() << " },\n"
         << "    " << bench::runContextJson() << "\n"
         << "  },\n"
         << "  \"headline\": {\n"
         << "    \"cell\": \"2-manager plane, crash at ramp peak\",\n"
         << "    \"missed_pct_centralized\": " << std::setprecision(2)
         << control.missed_pct << ",\n"
         << "    \"missed_pct_no_crash\": " << no_crash.missed_pct << ",\n"
         << "    \"missed_pct_fastest_detector\": " << missed.front()
         << ",\n"
         << "    \"missed_pct_slowest_detector\": " << missed.back() << ",\n"
         << "    \"decision_gap_ms_fastest\": " << gaps.front() << ",\n"
         << "    \"decision_gap_ms_slowest\": " << gaps.back() << "\n"
         << "  },\n"
         << "  \"rows\": [\n"
         << json_rows.str() << "\n  ],\n"
         << "  \"neutrality\": \"" << (neutrality_ok ? "PASSED" : "FAILED")
         << ": --managers 1 with plane config populated reproduces the "
            "centralized episode bit for bit\"\n"
         << "}\n";
    std::cout << "(headline written to BENCH_fault_failover.json)\n";
  }

  if (ok) {
    std::cout << "\nShape check PASSED: the decision gap stays inside the "
                 "detector budget at every timeout, and failover converts "
                 "the manager crash into a bounded no-decision window.\n";
  }
  return ok ? 0 : 1;
}
