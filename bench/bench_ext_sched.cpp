// Extension — node scheduler policies × elastic-period adaptation.
//
// The paper's Fig.-5 loop has one lever when a budget cannot hold:
// replicate. This bench crosses the pluggable node schedulers
// (RR / EDF / RMS / LLF) with the manager's adaptation modes —
//
//   * replicate-only: the paper's algorithm, no extra levers,
//   * period-adjust:  bounded elastic dilation of the release period
//                     before any shedding (elastic headroom 2x),
//   * hybrid:         period-adjust plus load shedding as the last resort,
//
// over triangular overload ramps (30/40/50 scale units against the
// Table-1 threshold), reporting the combined metric C per cell. Dilation
// trades sampling rate for timeliness without dropping tracks, so on
// overload cells hybrid must score a C no worse than replicate-only.
//
// A neutrality run asserts in-binary that the explicit baseline flags
// (--sched rr --period-adjust off) reproduce the default-config episode
// exactly — the new dispatch seam and the dormant lever must not perturb
// the paper runs. Emits bench_out/ext_sched.csv and BENCH_sched.json.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "node/sched_policy.hpp"
#include "workload/patterns.hpp"

using namespace rtdrm;

namespace {

enum class Mode { kReplicateOnly, kPeriodAdjust, kHybrid };

const char* modeName(Mode m) {
  switch (m) {
    case Mode::kReplicateOnly:
      return "replicate-only";
    case Mode::kPeriodAdjust:
      return "period-adjust";
    case Mode::kHybrid:
      return "hybrid";
  }
  return "?";
}

experiments::EpisodeConfig makeEpisode(node::SchedPolicy policy, Mode mode) {
  experiments::EpisodeConfig cfg;
  cfg.periods = 72;
  cfg.scenario.cpu.policy = policy;
  cfg.manager.allow_period_adjust = mode != Mode::kReplicateOnly;
  cfg.manager.allow_load_shedding = mode == Mode::kHybrid;
  return cfg;
}

experiments::EpisodeResult runCell(const task::TaskSpec& spec,
                                   const core::PredictiveModels& models,
                                   double units,
                                   const experiments::EpisodeConfig& cfg) {
  workload::RampParams ramp;
  ramp.min_workload = DataSize::tracks(500.0);
  ramp.max_workload = DataSize::tracks(units * 500.0);
  ramp.ramp_periods = 30;
  const workload::Triangular pat(ramp);
  return runEpisode(spec, pat, models,
                    experiments::AlgorithmKind::kPredictive, cfg);
}

bool sameEpisode(const experiments::EpisodeResult& a,
                 const experiments::EpisodeResult& b) {
  return a.missed_pct == b.missed_pct && a.cpu_pct == b.cpu_pct &&
         a.net_pct == b.net_pct && a.avg_replicas == b.avg_replicas &&
         a.combined == b.combined &&
         a.metrics.replicate_actions == b.metrics.replicate_actions &&
         a.metrics.shutdown_actions == b.metrics.shutdown_actions &&
         a.metrics.allocation_failures == b.metrics.allocation_failures &&
         a.metrics.period_dilations == b.metrics.period_dilations &&
         a.metrics.period_contractions == b.metrics.period_contractions;
}

}  // namespace

int main() {
  const auto& spec = bench::aawSpec();
  const auto& fitted = bench::fittedModels();

  printBanner(std::cout,
              "Scheduler policies x adaptation modes under overload "
              "(triangular, 72 periods)");

  // In-binary neutrality: a default-constructed episode (no policy, no
  // lever fields touched) and the explicit baseline (--sched rr
  // --period-adjust off) must be the same episode bit for bit.
  const experiments::EpisodeResult control =
      runCell(spec, fitted.models, 40.0, [] {
        experiments::EpisodeConfig cfg;
        cfg.periods = 72;
        return cfg;
      }());
  const bool neutrality_ok = sameEpisode(
      control, runCell(spec, fitted.models, 40.0,
                       makeEpisode(node::SchedPolicy::kRoundRobin,
                                   Mode::kReplicateOnly)));
  if (!neutrality_ok) {
    std::cout << "NEUTRALITY VIOLATION: --sched rr --period-adjust off "
                 "diverged from the default-config episode\n";
  }

  const std::vector<node::SchedPolicy> policies = {
      node::SchedPolicy::kRoundRobin, node::SchedPolicy::kEdf,
      node::SchedPolicy::kRms, node::SchedPolicy::kLlf};
  const std::vector<Mode> modes = {Mode::kReplicateOnly, Mode::kPeriodAdjust,
                                   Mode::kHybrid};

  Table t({"max workload (x500)", "sched", "mode", "missed %",
           "period scale", "dilations", "shed mean %", "combined C"},
          3);
  bool ok = neutrality_ok;
  std::ostringstream json_rows;
  double best_c = 1e18;
  std::string best_cell;
  for (const double units : {30.0, 40.0, 50.0}) {
    for (const node::SchedPolicy policy : policies) {
      double c_replicate_only = 0.0;
      for (const Mode mode : modes) {
        const experiments::EpisodeResult r =
            runCell(spec, fitted.models, units, makeEpisode(policy, mode));
        const double scale = r.metrics.period_scale.count() > 0
                                 ? r.metrics.period_scale.mean()
                                 : 1.0;
        t.addRow({units, std::string(node::schedPolicyName(policy)),
                  std::string(modeName(mode)), r.missed_pct, scale,
                  static_cast<long long>(r.metrics.period_dilations),
                  r.metrics.shed_fraction.mean() * 100.0, r.combined});
        if (!json_rows.str().empty()) {
          json_rows << ",\n";
        }
        json_rows << "    { \"units\": " << std::fixed << std::setprecision(0)
                  << units << ", \"sched\": \""
                  << node::schedPolicyName(policy) << "\", \"mode\": \""
                  << modeName(mode) << "\", \"missed_pct\": "
                  << std::setprecision(3) << r.missed_pct
                  << ", \"period_scale\": " << scale
                  << ", \"period_dilations\": " << r.metrics.period_dilations
                  << ", \"shed_mean_pct\": "
                  << r.metrics.shed_fraction.mean() * 100.0
                  << ", \"combined\": " << std::setprecision(4) << r.combined
                  << " }";
        if (mode == Mode::kReplicateOnly) {
          c_replicate_only = r.combined;
        } else if (mode == Mode::kPeriodAdjust &&
                   r.metrics.period_dilations == 0) {
          std::cout << "Shape check FAILED: the elastic lever never fired "
                       "under overload ("
                    << node::schedPolicyName(policy) << ", " << units
                    << " units).\n";
          ok = false;
        }
        if (mode == Mode::kHybrid && r.combined > c_replicate_only + 1e-9) {
          std::cout << "Shape check FAILED: hybrid scored a worse C than "
                       "replicate-only ("
                    << r.combined << " vs " << c_replicate_only << ") at "
                    << node::schedPolicyName(policy) << ", " << units
                    << " units.\n";
          ok = false;
        }
        if (r.combined < best_c) {
          best_c = r.combined;
          best_cell = std::string(node::schedPolicyName(policy)) + "/" +
                      modeName(mode) + " @ " +
                      std::to_string(static_cast<int>(units));
        }
      }
    }
  }
  t.print(std::cout);

  std::filesystem::create_directories("bench_out");
  if (t.writeCsv("bench_out/ext_sched.csv")) {
    std::cout << "(series written to bench_out/ext_sched.csv)\n";
  }

  {
    std::ofstream json("BENCH_sched.json");
    json << "{\n"
         << "  \"benchmark\": \"bench_ext_sched\",\n"
         << "  \"description\": \"Node scheduler policies (RR/EDF/RMS/LLF) "
            "crossed with the manager's adaptation modes (replicate-only / "
            "period-adjust / hybrid with shedding) over triangular overload "
            "ramps of the AAW task on the Table-1 cluster, reporting the "
            "paper's combined metric C per cell (smaller is better). "
            "Elastic headroom max_period = 2x period. "
            "Simulation-deterministic (no wall-clock).\",\n"
         << "  \"config\": {\n"
         << "    \"periods\": 72,\n"
         << "    \"ramp_periods\": 30,\n"
         << "    \"workload_units_x500\": [30, 40, 50],\n"
         << "    \"period_adjust_step\": " << std::fixed
         << std::setprecision(2) << core::ManagerConfig{}.period_adjust_step
         << ",\n"
         << "    \"max_period_scale\": "
         << spec.effectiveMaxPeriod() / spec.period << ",\n"
         << "    " << bench::runContextJson() << "\n"
         << "  },\n"
         << "  \"headline\": {\n"
         << "    \"best_cell\": \"" << best_cell << "\",\n"
         << "    \"best_combined\": " << std::setprecision(4) << best_c
         << "\n"
         << "  },\n"
         << "  \"rows\": [\n"
         << json_rows.str() << "\n  ],\n"
         << "  \"neutrality\": \"" << (neutrality_ok ? "PASSED" : "FAILED")
         << ": --sched rr --period-adjust off reproduces the default-config "
            "episode bit for bit\"\n"
         << "}\n";
    std::cout << "(headline written to BENCH_sched.json)\n";
  }

  if (ok) {
    std::cout << "\nShape check PASSED: the elastic lever engages under "
                 "overload and hybrid holds a combined C no worse than "
                 "replicate-only on every cell.\n";
  }
  return ok ? 0 : 1;
}
