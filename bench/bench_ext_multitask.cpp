// Extension — multi-task interference study.
//
// The paper's model is a task set T = {T1, T2, ...} and eq. (5) sums over
// every task's workload, but its evaluation runs one task (Table 1). Here
// 1..3 copies of the AAW task share the 6-node cluster and Ethernet
// segment with phase-shifted triangular workloads, each under its own
// manager posting to the shared WorkloadLedger.
#include <iostream>

#include "bench_util.hpp"
#include "experiments/multitask.hpp"

using namespace rtdrm;

int main() {
  const auto& spec = bench::aawSpec();
  const auto& fitted = bench::fittedModels();

  workload::RampParams ramp;
  ramp.min_workload = DataSize::tracks(500.0);
  ramp.max_workload = DataSize::tracks(7000.0);
  ramp.ramp_periods = 30;
  const workload::Triangular pat(ramp);

  printBanner(std::cout,
              "Multi-task interference (triangular, max 7000 tracks/task, "
              "15-period phase shift)");
  Table t({"tasks", "algorithm", "missed %", "cpu %", "net %",
           "avg replicas", "combined C"},
          2);
  double pred_combined_2 = 0.0;
  double nonp_combined_2 = 0.0;
  double cpu_1 = 0.0;
  double cpu_2 = 0.0;
  for (std::size_t tasks = 1; tasks <= 3; ++tasks) {
    for (const auto kind : {experiments::AlgorithmKind::kPredictive,
                            experiments::AlgorithmKind::kNonPredictive}) {
      experiments::MultiTaskConfig cfg;
      cfg.episode.periods = 72;
      cfg.task_count = tasks;
      const auto r = experiments::runMultiTaskEpisode(spec, pat,
                                                      fitted.models, kind,
                                                      cfg);
      t.addRow({static_cast<long long>(tasks),
                experiments::algorithmName(kind), r.missed_pct, r.cpu_pct,
                r.net_pct, r.avg_replicas, r.combined});
      if (kind == experiments::AlgorithmKind::kPredictive) {
        if (tasks == 1) {
          cpu_1 = r.cpu_pct;
        }
        if (tasks == 2) {
          cpu_2 = r.cpu_pct;
          pred_combined_2 = r.combined;
        }
      } else if (tasks == 2) {
        nonp_combined_2 = r.combined;
      }
    }
  }
  t.print(std::cout);
  if (t.writeCsv("ext_multitask.csv")) {
    std::cout << "(series written to ext_multitask.csv)\n";
  }

  const bool ok = cpu_2 > cpu_1 * 1.3 &&
                  pred_combined_2 <= nonp_combined_2 + 0.05;
  std::cout << (ok ? "\nShape check PASSED: co-resident tasks raise load, "
                     "and the predictive allocator keeps its edge under "
                     "interference.\n"
                   : "\nShape check FAILED.\n");
  return ok ? 0 : 1;
}
