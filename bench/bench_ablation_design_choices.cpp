// Ablations over the design choices DESIGN.md §6 calls out:
//   1. slack reserve sl (paper: 20% of the subtask deadline),
//   2. shutdown threshold + hysteresis (paper: unspecified "very high"),
//   3. two-stage vs joint regression fit,
//   4. clock-sync quality and measured- vs true-latency monitoring,
//   5. the non-predictive utilization threshold UT.
// All runs use the triangular pattern at max workload 10,000 tracks.
#include <iostream>

#include "bench_util.hpp"

using namespace rtdrm;

namespace {

workload::RampParams ramp() {
  workload::RampParams p;
  p.min_workload = DataSize::tracks(500.0);
  p.max_workload = DataSize::tracks(10000.0);
  p.ramp_periods = 30;
  return p;
}

experiments::EpisodeConfig baseConfig() {
  experiments::EpisodeConfig cfg;
  cfg.periods = 72;
  return cfg;
}

void addRow(Table& t, const std::string& label,
            const experiments::EpisodeResult& r) {
  t.addRow({label, r.missed_pct, r.cpu_pct, r.net_pct, r.avg_replicas,
            r.combined});
}

}  // namespace

int main() {
  const auto& spec = bench::aawSpec();
  const auto& fitted = bench::fittedModels();
  const workload::Triangular pat(ramp());

  // 1. Slack reserve.
  {
    printBanner(std::cout,
                "Ablation 1: slack reserve sl (fraction of stage budget)");
    Table t({"sl", "missed %", "cpu %", "net %", "replicas", "combined"}, 2);
    for (double sl : {0.05, 0.1, 0.2, 0.3, 0.4}) {
      experiments::EpisodeConfig cfg = baseConfig();
      cfg.manager.monitor.slack_fraction = sl;
      addRow(t, std::to_string(sl),
             runEpisode(spec, pat, fitted.models,
                        experiments::AlgorithmKind::kPredictive, cfg));
    }
    t.print(std::cout);
  }

  // 2. Shutdown policy.
  {
    printBanner(std::cout,
                "Ablation 2: shutdown threshold x hysteresis (predictive)");
    Table t({"threshold", "hysteresis", "missed %", "replicas", "combined"},
            2);
    for (double th : {0.4, 0.6, 0.8}) {
      for (int h : {1, 3, 6}) {
        experiments::EpisodeConfig cfg = baseConfig();
        cfg.manager.monitor.shutdown_slack_fraction = th;
        cfg.manager.monitor.shutdown_hysteresis = h;
        const auto r = runEpisode(spec, pat, fitted.models,
                                  experiments::AlgorithmKind::kPredictive,
                                  cfg);
        t.addRow({th, static_cast<long long>(h), r.missed_pct,
                  r.avg_replicas, r.combined});
      }
    }
    t.print(std::cout);
  }

  // 3. Regression strategy: two-stage (paper) vs joint 6-term fit.
  {
    printBanner(std::cout, "Ablation 3: two-stage vs joint eq.-3 fit");
    Table t({"fit", "Filter R^2", "missed %", "replicas", "combined"}, 3);
    experiments::ModelFitConfig mc = experiments::defaultModelFitConfig();
    for (bool two_stage : {true, false}) {
      mc.two_stage = two_stage;
      const auto models = experiments::fitAllModels(spec, mc);
      const auto r = runEpisode(spec, pat, models.models,
                                experiments::AlgorithmKind::kPredictive,
                                baseConfig());
      t.addRow({std::string(two_stage ? "two-stage (paper)" : "joint"),
                models.exec_fits[apps::kFilterStage].diagnostics.r_squared,
                r.missed_pct, r.avg_replicas, r.combined});
    }
    t.print(std::cout);
  }

  // 4. Clock-sync quality and latency-measurement mode.
  {
    printBanner(std::cout,
                "Ablation 4: clock sync error vs monitor behaviour");
    Table t({"sync noise (ms)", "latency source", "missed %", "replicate "
             "actions", "combined"},
            3);
    for (double noise_ms : {0.05, 2.0, 20.0}) {
      for (bool measured : {true, false}) {
        experiments::EpisodeConfig cfg = baseConfig();
        cfg.scenario.clock_sync.estimate_noise =
            SimDuration::millis(noise_ms);
        cfg.manager.monitor.use_measured_latency = measured;
        const auto r = runEpisode(spec, pat, fitted.models,
                                  experiments::AlgorithmKind::kPredictive,
                                  cfg);
        t.addRow({noise_ms,
                  std::string(measured ? "local clocks" : "omniscient"),
                  r.missed_pct,
                  static_cast<long long>(r.metrics.replicate_actions),
                  r.combined});
      }
    }
    t.print(std::cout);
  }

  // 5. Non-predictive UT.
  {
    printBanner(std::cout, "Ablation 5: non-predictive threshold UT");
    Table t({"UT %", "missed %", "net %", "replicas", "combined"}, 2);
    for (double ut : {10.0, 20.0, 40.0, 60.0}) {
      experiments::EpisodeConfig cfg = baseConfig();
      cfg.nonpredictive_threshold = Utilization::percent(ut);
      const auto r = runEpisode(spec, pat, fitted.models,
                                experiments::AlgorithmKind::kNonPredictive,
                                cfg);
      t.addRow({ut, r.missed_pct, r.net_pct, r.avg_replicas, r.combined});
    }
    t.print(std::cout);
  }

  // 6. CPU scheduling policy of the nodes (Table 1 fixes RR @ 1 ms).
  {
    printBanner(std::cout, "Ablation 6: node CPU scheduling policy");
    Table t({"policy", "missed %", "replicas", "combined"}, 2);
    struct Row {
      const char* name;
      node::SchedPolicy policy;
      double quantum_ms;
    };
    for (const Row& row : {Row{"RR 1 ms (paper)",
                               node::SchedPolicy::kRoundRobin, 1.0},
                           Row{"RR 10 ms", node::SchedPolicy::kRoundRobin,
                               10.0},
                           Row{"FIFO", node::SchedPolicy::kFifo, 1.0}}) {
      experiments::EpisodeConfig cfg = baseConfig();
      cfg.scenario.cpu.policy = row.policy;
      cfg.scenario.cpu.quantum = SimDuration::millis(row.quantum_ms);
      const auto r = runEpisode(spec, pat, fitted.models,
                                experiments::AlgorithmKind::kPredictive,
                                cfg);
      t.addRow({std::string(row.name), r.missed_pct, r.avg_replicas,
                r.combined});
    }
    t.print(std::cout);
  }

  // 7. Predictive workload headroom (forecast at d * (1 + h)).
  {
    printBanner(std::cout, "Ablation 7: predictive forecast headroom");
    Table t({"headroom", "missed %", "replicas", "combined"}, 2);
    for (double h : {0.0, 0.1, 0.25, 0.5}) {
      workload::RampParams r2 = ramp();
      const workload::Triangular pattern(r2);
      experiments::EpisodeConfig cfg = baseConfig();
      // Build the episode by hand so we can configure the allocator.
      apps::Scenario scenario(cfg.scenario);
      std::vector<ProcessorId> homes;
      for (std::size_t s = 0; s < spec.stageCount(); ++s) {
        homes.push_back(ProcessorId{static_cast<std::uint32_t>(s % 6)});
      }
      core::ResourceManager manager(
          scenario.runtime(), spec, task::Placement(homes),
          [&pattern](std::uint64_t c) { return pattern.at(c); },
          std::make_unique<core::PredictiveAllocator>(
              fitted.models, core::PredictiveConfig{h}),
          fitted.models, cfg.manager, scenario.streams().get("exec-noise"));
      manager.start(scenario.sim().now());
      scenario.runFor(spec.period * 72.0);
      manager.stop();
      scenario.runFor(spec.period * 3.0);
      const auto& m = manager.metrics();
      t.addRow({h, m.missedRatio() * 100.0, m.replicas_per_subtask.mean(),
                m.combined(6)});
    }
    t.print(std::cout);
  }

  // 8. Shutdown victim selection under a mid-mission node hog: Fig. 6's
  // LIFO rule cannot evict a replica trapped on the hogged node; the
  // most-utilized selection can (whenever slack lets a shutdown fire).
  {
    printBanner(std::cout,
                "Ablation 8: shutdown selection with a node hogged at 90% "
                "from t=5s (triangular, max 13000 tracks)");
    Table t({"selection", "missed %", "avg replicas", "combined"}, 2);
    for (const auto sel : {core::ShutdownSelection::kLastAdded,
                           core::ShutdownSelection::kMostUtilized}) {
      workload::RampParams r2 = ramp();
      r2.max_workload = DataSize::tracks(13000.0);
      const workload::Triangular pattern(r2);
      experiments::EpisodeConfig cfg = baseConfig();
      cfg.manager.shutdown_selection = sel;
      apps::Scenario scenario(cfg.scenario);
      std::vector<ProcessorId> homes;
      for (std::size_t s = 0; s < spec.stageCount(); ++s) {
        homes.push_back(ProcessorId{static_cast<std::uint32_t>(s % 6)});
      }
      core::ResourceManager manager(
          scenario.runtime(), spec, task::Placement(homes),
          [&pattern](std::uint64_t c) { return pattern.at(c); },
          std::make_unique<core::PredictiveAllocator>(fitted.models),
          fitted.models, cfg.manager, scenario.streams().get("exec-noise"));
      manager.start(scenario.sim().now());
      scenario.sim().scheduleAt(SimTime::seconds(5.0), [&scenario] {
        scenario.cluster().backgroundLoad(ProcessorId{5})
            .setTarget(Utilization::fraction(0.9));
      });
      scenario.runFor(spec.period * 72.0);
      manager.stop();
      scenario.runFor(spec.period * 3.0);
      const auto& m = manager.metrics();
      t.addRow({std::string(sel == core::ShutdownSelection::kLastAdded
                                ? "last-added (paper Fig. 6)"
                                : "most-utilized (extension)"),
                m.missedRatio() * 100.0, m.replicas_per_subtask.mean(),
                m.combined(6)});
    }
    t.print(std::cout);
    std::cout
        << "Note: under sustained pressure the two selections coincide — a\n"
           "replica trapped on the hogged node keeps slack low, so Fig. 6's\n"
           "shutdown trigger (very high slack) never fires and no victim is\n"
           "selected at all. Evicting a hostile node needs a trigger the\n"
           "published monitor does not have (a migrate-on-persistent-miss\n"
           "rule plus a blocklist, since Fig. 5 re-adds from the complement).\n"
           "The selections do differ transiently on patterns with deep\n"
           "valleys, where partial scale-ins pick different victims.\n";
  }

  // 9. Deadline-assignment strategy: the paper's EQF variant vs EQS
  // (equal absolute slack; Kao & Garcia-Molina's other rule).
  {
    printBanner(std::cout, "Ablation 9: EQF vs EQS deadline assignment");
    Table t({"strategy", "missed %", "replicas", "combined"}, 2);
    for (const auto strat :
         {core::DeadlineStrategy::kEqf, core::DeadlineStrategy::kEqs}) {
      experiments::EpisodeConfig cfg = baseConfig();
      cfg.manager.deadline_strategy = strat;
      const auto r = runEpisode(spec, pat, fitted.models,
                                experiments::AlgorithmKind::kPredictive,
                                cfg);
      t.addRow({std::string(strat == core::DeadlineStrategy::kEqf
                                ? "EQF (paper)"
                                : "EQS"),
                r.missed_pct, r.avg_replicas, r.combined});
    }
    t.print(std::cout);
  }

  // 10. Control-plane latency: the paper applies decisions instantly; real
  // managers pay distribution + replica-spawn time.
  {
    printBanner(std::cout,
                "Ablation 10: control-plane action latency (periods)");
    Table t({"latency (periods)", "missed %", "replicas", "combined"}, 2);
    for (double lat : {0.0, 0.5, 1.0, 2.0, 4.0}) {
      experiments::EpisodeConfig cfg = baseConfig();
      cfg.manager.action_latency = spec.period * lat;
      const auto r = runEpisode(spec, pat, fitted.models,
                                experiments::AlgorithmKind::kPredictive,
                                cfg);
      t.addRow({lat, r.missed_pct, r.avg_replicas, r.combined});
    }
    t.print(std::cout);
  }

  // 11. Priority isolation: run the task's jobs above the ambient load on
  // preemptive-priority nodes vs sharing under round-robin, at a heavy
  // 40% ambient.
  {
    printBanner(std::cout,
                "Ablation 11: scheduling isolation at 40% ambient load");
    Table t({"configuration", "missed %", "replicas", "combined"}, 2);
    struct Row {
      const char* name;
      node::SchedPolicy policy;
      int bg_priority;
    };
    for (const Row& row :
         {Row{"RR sharing (paper)", node::SchedPolicy::kRoundRobin, 0},
          Row{"priority-isolated task", node::SchedPolicy::kPriority, 5}}) {
      experiments::EpisodeConfig cfg = baseConfig();
      cfg.scenario.ambient_load = Utilization::fraction(0.4);
      cfg.scenario.cpu.policy = row.policy;
      cfg.scenario.background.priority = row.bg_priority;
      const auto r = runEpisode(spec, pat, fitted.models,
                                experiments::AlgorithmKind::kPredictive,
                                cfg);
      t.addRow({std::string(row.name), r.missed_pct, r.avg_replicas,
                r.combined});
    }
    t.print(std::cout);
    std::cout << "(isolation removes the 1/(1-u) inflation the regression "
                 "models were fitted on, so the static forecasts become "
                 "conservative — fewer replicas needed in practice)\n";
  }

  std::cout << "\n(ablation tables are descriptive; no pass/fail gate)\n";
  return 0;
}
