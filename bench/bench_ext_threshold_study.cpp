// §5.2 extension — the beyond-threshold study.
//
// "We continued the experiment for larger workload ranges for both the
// increasing and decreasing ramp patterns... as the workload increases
// further, the performance of the two algorithms fluctuates." The paper
// does not show this data; we regenerate it: ramps up to 48 scale units and
// a per-point report of who wins the combined metric.
#include <iostream>

#include "bench_util.hpp"

using namespace rtdrm;

int main() {
  experiments::SweepConfig cfg = bench::paperSweepConfig();
  cfg.max_workload_units = {24, 28, 32, 36, 40, 44, 48};

  for (const char* pattern : {"increasing", "decreasing"}) {
    const auto points = experiments::runWorkloadSweep(
        bench::aawSpec(), bench::fittedModels().models, pattern, cfg);

    printBanner(std::cout, std::string("Extended threshold study — ") +
                               pattern + " ramp (combined metric)");
    Table t({"max workload (x500 tracks)", "PREDICTIVE", "NON-PREDICTIVE",
             "winner"},
            3);
    int lead_changes = 0;
    int prev = 0;  // -1 pred, +1 nonpred
    for (const auto& p : points) {
      const int winner =
          p.predictive.combined <= p.non_predictive.combined ? -1 : 1;
      if (prev != 0 && winner != prev) {
        ++lead_changes;
      }
      prev = winner;
      t.addRow({p.max_workload_units, p.predictive.combined,
                p.non_predictive.combined,
                std::string(winner < 0 ? "predictive" : "non-predictive")});
    }
    t.print(std::cout);
    std::cout << "lead changes across the extended range: " << lead_changes
              << "\n";
  }
  std::cout << "\n(The paper reports that beyond a threshold (~28 units) the "
               "two algorithms' performance fluctuates — lead changes above "
               "zero, or near-equal values, reproduce that observation.)\n";
  return 0;
}
