// Capacity planning with the fitted regression models — an *offline* use of
// the paper's predictive machinery.
//
// Given the AAW task and a target workload range, this example answers:
//   * how many replicas does each replicable subtask need at workload W
//     to keep the forecast within its EQF budget (Fig. 5 run offline)?
//   * what end-to-end latency does eq. (3)/(4) forecast at that allocation?
//   * at what workload does the 6-node cluster saturate (forecast exceeds
//     the deadline even at full replication)?
//
// Run:  ./capacity_planning [deadline_ms]   (default 990)
#include <cstdlib>
#include <iostream>

#include "apps/dynbench.hpp"
#include "common/table.hpp"
#include "core/eqf.hpp"
#include "core/models.hpp"
#include "experiments/model_store.hpp"

using namespace rtdrm;

namespace {

// Forecast the end-to-end latency of the whole chain at workload d with
// the given replica counts, all replicas assumed on nodes at utilization u.
double forecastChainMs(const task::TaskSpec& spec,
                       const core::PredictiveModels& models, DataSize d,
                       const std::vector<std::size_t>& replicas, double u) {
  double total = 0.0;
  for (std::size_t s = 0; s < spec.stageCount(); ++s) {
    const DataSize share = d / static_cast<double>(replicas[s]);
    total +=
        models.execLatency(s, share, Utilization::fraction(u)).ms();
    if (s > 0) {
      total += models
                   .commDelay(share, spec.messages[s - 1].bytes_per_track, d)
                   .ms();
    }
  }
  return total;
}

// Offline Fig. 5: the minimum replica count (<= nodes) whose forecast fits
// the stage budget minus the 20% reserve; 0 if none fits.
std::size_t minReplicas(const task::TaskSpec& spec,
                        const core::PredictiveModels& models, DataSize d,
                        std::size_t stage, double budget_ms, double u,
                        std::size_t nodes) {
  const double limit = 0.8 * budget_ms;
  for (std::size_t k = 1; k <= nodes; ++k) {
    const DataSize share = d / static_cast<double>(k);
    double t = models.execLatency(stage, share, Utilization::fraction(u)).ms();
    if (stage > 0) {
      t += models
               .commDelay(share, spec.messages[stage - 1].bytes_per_track, d)
               .ms();
    }
    if (t <= limit) {
      return k;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const double deadline_ms = argc > 1 ? std::atof(argv[1]) : 990.0;
  const std::size_t nodes = 6;
  const double u = 0.10;  // planning assumption: lightly loaded nodes

  task::TaskSpec spec = apps::makeAawTaskSpec();
  spec.deadline = SimDuration::millis(deadline_ms);

  std::cout << "Fitting regression models (offline, once)...\n";
  experiments::ModelFitConfig cfg = experiments::defaultModelFitConfig();
  cfg.exec.samples_per_point = 4;
  const auto fitted = experiments::fitAllModels(spec, cfg);
  const core::PredictiveModels& models = fitted.models;

  printBanner(std::cout, "Capacity plan (deadline " +
                             std::to_string(deadline_ms) + " ms, " +
                             std::to_string(nodes) + " nodes, planning u = " +
                             std::to_string(u) + ")");
  Table t({"workload (tracks)", "Filter replicas", "EvalDecide replicas",
           "forecast e2e (ms)", "deadline met"},
          1);

  double saturation_tracks = -1.0;
  for (double tracks = 1000.0; tracks <= 24000.0; tracks += 1000.0) {
    const DataSize d = DataSize::tracks(tracks);

    // EQF budgets at this workload with single replicas (planning input).
    core::EqfInput eqf_in;
    eqf_in.deadline_ms = deadline_ms;
    for (std::size_t s = 0; s < spec.stageCount(); ++s) {
      eqf_in.eex_ms.push_back(
          models.execLatency(s, d, Utilization::fraction(u)).ms());
      if (s + 1 < spec.stageCount()) {
        eqf_in.ecd_ms.push_back(
            models.commDelay(d, spec.messages[s].bytes_per_track, d).ms());
      }
    }
    const core::EqfBudgets budgets = core::assignEqf(eqf_in);

    std::vector<std::size_t> replicas(spec.stageCount(), 1);
    bool feasible = true;
    for (const std::size_t stage :
         {apps::kFilterStage, apps::kEvalDecideStage}) {
      const std::size_t k =
          minReplicas(spec, models, d, stage,
                      budgets.stageBudgetMs(stage), u, nodes);
      if (k == 0) {
        feasible = false;
        replicas[stage] = nodes;
      } else {
        replicas[stage] = k;
      }
    }
    const double e2e = forecastChainMs(spec, models, d, replicas, u);
    const bool met = feasible && e2e <= deadline_ms;
    if (!met && saturation_tracks < 0.0) {
      saturation_tracks = tracks;
    }
    t.addRow({tracks, static_cast<long long>(replicas[apps::kFilterStage]),
              static_cast<long long>(replicas[apps::kEvalDecideStage]), e2e,
              std::string(met ? "yes" : "NO")});
  }
  t.print(std::cout);

  std::cout << "\nNote: forecasts beyond the profiled data range (7,500 "
               "tracks per subtask) are extrapolations of eq. (3); like any "
               "regression model, accuracy degrades out of range — the "
               "simulator's measured behaviour at those workloads (see "
               "bench_fig9_triangular) is milder than this plan assumes.\n";
  if (saturation_tracks < 0.0) {
    std::cout << "\nThe cluster sustains the entire planned range.\n";
  } else {
    std::cout << "\nForecast saturation point: ~" << saturation_tracks
              << " tracks/period — beyond this, even full replication "
                 "cannot hold the deadline (the un-replicable subtasks and "
                 "the workload-proportional buffer delay Dbuf dominate).\n";
  }
  return 0;
}
