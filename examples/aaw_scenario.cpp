// AAW engagement scenario: the kind of mission the paper's introduction
// motivates. A surface combatant tracks a quiet surveillance picture that
// is punctuated by bursty raids (sudden track-count spikes). The resource
// manager must replicate the Filter/EvalDecide subtasks during each raid
// and release the processors afterwards.
//
// Prints a per-period timeline — workload, replica counts, end-to-end
// latency vs deadline, manager actions — followed by a raid-by-raid
// summary.
//
// Run:  ./aaw_scenario [--periods N]
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <vector>

#include "apps/dynbench.hpp"
#include "apps/scenario.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/manager.hpp"
#include "experiments/model_store.hpp"
#include "workload/patterns.hpp"

using namespace rtdrm;

int main(int argc, char** argv) {
  std::int64_t periods_arg = 120;
  ArgParser args("aaw_scenario",
                 "AAW engagement storyline with bursty raids");
  args.addInt("periods", "episode length in periods", &periods_arg);
  if (!args.parse(argc, argv)) {
    return args.helpRequested() ? EXIT_SUCCESS : EXIT_FAILURE;
  }
  const auto periods = static_cast<std::uint64_t>(periods_arg);

  const task::TaskSpec spec = apps::makeAawTaskSpec();
  std::cout << "Fitting regression models (one-time, offline)...\n";
  experiments::ModelFitConfig fit_cfg = experiments::defaultModelFitConfig();
  fit_cfg.exec.samples_per_point = 4;
  const auto fitted = experiments::fitAllModels(spec, fit_cfg);

  // Quiet picture of ~800 tracks; every 40 periods a 12-period raid pushes
  // the picture to 9,000 tracks.
  const workload::Burst raids(DataSize::tracks(800.0),
                              DataSize::tracks(9000.0),
                              /*burst_every=*/40, /*burst_len=*/12);

  apps::ScenarioConfig scenario_cfg;
  apps::Scenario scenario(scenario_cfg);

  std::vector<ProcessorId> homes;
  for (std::size_t s = 0; s < spec.stageCount(); ++s) {
    homes.push_back(ProcessorId{static_cast<std::uint32_t>(s % 6)});
  }

  // Collect the timeline through the manager's record stream.
  struct Row {
    double workload = 0.0;
    double e2e_ms = 0.0;
    bool missed = false;
    std::size_t filter_replicas = 1;
    std::size_t eval_replicas = 1;
  };
  std::map<std::uint64_t, Row> timeline;

  core::ManagerConfig mgr_cfg;
  mgr_cfg.d_init = DataSize::tracks(800.0);
  core::ResourceManager manager(
      scenario.runtime(), spec, task::Placement(homes),
      [&raids](std::uint64_t c) { return raids.at(c); },
      std::make_unique<core::PredictiveAllocator>(fitted.models),
      fitted.models, mgr_cfg, scenario.streams().get("exec-noise"));

  sim::TraceRecorder trace;
  manager.attachTrace(trace);

  // Snapshot replica counts right after each release.
  sim::PeriodicActivity snapshot(
      scenario.sim(), spec.period, [&](std::uint64_t c) {
        Row& row = timeline[c];
        row.workload = raids.at(c).count();
        const task::Placement& p = manager.runner().placement();
        row.filter_replicas = p.stage(apps::kFilterStage).size();
        row.eval_replicas = p.stage(apps::kEvalDecideStage).size();
      });

  // And record latencies as instances complete (monitor-independent tap).
  // The manager owns the runner, so we read completed records via a second
  // periodic probe of its metrics instead of intercepting callbacks; the
  // end-to-end series below comes from the timeline snapshots.
  manager.start(scenario.sim().now());
  snapshot.start(scenario.sim().now() + SimDuration::millis(1.0));
  scenario.runFor(spec.period * static_cast<double>(periods));
  manager.stop();
  snapshot.stop();
  scenario.runFor(spec.period * 3.0);

  printBanner(std::cout, "Engagement timeline (every 4th period)");
  Table t({"period", "tracks", "Filter replicas", "EvalDecide replicas"}, 0);
  for (const auto& [c, row] : timeline) {
    if (c % 4 == 0) {
      t.addRow({static_cast<long long>(c),
                static_cast<long long>(row.workload),
                static_cast<long long>(row.filter_replicas),
                static_cast<long long>(row.eval_replicas)});
    }
  }
  t.print(std::cout);

  const auto& m = manager.metrics();
  printBanner(std::cout, "Engagement summary");
  std::cout << "periods observed:        " << m.missed_deadlines.total()
            << "\n"
            << "missed deadlines:        " << m.missed_deadlines.hits()
            << " (" << m.missedRatio() * 100.0 << "%)\n"
            << "mean end-to-end latency: " << m.end_to_end_ms.mean()
            << " ms (p-max " << m.end_to_end_ms.max() << " ms, deadline "
            << spec.deadline.ms() << " ms)\n"
            << "replication actions:     " << m.replicate_actions << "\n"
            << "shutdown actions:        " << m.shutdown_actions << "\n"
            << "mean CPU utilization:    " << m.cpu_utilization.mean() * 100.0
            << "%\n"
            << "mean net utilization:    " << m.net_utilization.mean() * 100.0
            << "%\n";

  printBanner(std::cout, "Per-subtask attribution");
  Table stages({"subtask", "mean latency (ms)", "max (ms)",
                "replicate actions", "shutdown actions"},
               1);
  for (std::size_t s = 0; s < spec.stageCount(); ++s) {
    const auto& sm = manager.metrics().stages[s];
    stages.addRow({spec.subtasks[s].name, sm.latency_ms.mean(),
                   sm.latency_ms.max(),
                   static_cast<long long>(sm.replicate_actions),
                   static_cast<long long>(sm.shutdown_actions)});
  }
  stages.print(std::cout);

  printBanner(std::cout, "End-to-end latency distribution (ms)");
  std::cout << manager.metrics().end_to_end_hist.render(44)
            << "p50 = " << manager.metrics().end_to_end_hist.quantile(0.5)
            << " ms, p99 = "
            << manager.metrics().end_to_end_hist.quantile(0.99) << " ms\n";

  printBanner(std::cout, "Manager action trace (first 12 events)");
  std::size_t shown = 0;
  for (const auto& e : trace.events()) {
    if (shown++ >= 12) {
      break;
    }
    std::cout << "  t=" << e.at.sec() << "s  "
              << sim::traceCategoryName(e.category) << "  " << e.label
              << "  -> " << e.value << "\n";
  }
  std::filesystem::create_directories("bench_out");
  if (trace.writeCsv("bench_out/aaw_trace.csv")) {
    std::cout << "(full trace written to bench_out/aaw_trace.csv)\n";
  }

  // Raids must have provoked scale-out and the quiet phases scale-in.
  bool scaled_out = false;
  bool scaled_in_after_raid = false;
  for (const auto& [c, row] : timeline) {
    if (row.workload > 5000.0 && row.filter_replicas > 1) {
      scaled_out = true;
    }
    if (scaled_out && row.workload < 1000.0 && row.filter_replicas == 1) {
      scaled_in_after_raid = true;
    }
  }
  std::cout << "\nadaptive behaviour: scale-out during raids "
            << (scaled_out ? "YES" : "NO") << ", scale-in after raids "
            << (scaled_in_after_raid ? "YES" : "NO") << "\n";
  return scaled_out && scaled_in_after_raid ? 0 : 1;
}
