// Everything-on demo: a mission whose environment turns hostile mid-run.
//
//   * periods 0-39:   calm triangular workload, correct offline models;
//   * period 40:      environmental drift — the replicable subtasks' cost
//                     doubles (the offline eq.-3 models are now stale);
//   * periods 70-90:  a raid spikes the workload beyond what even full
//                     replication can serve.
//
// The manager runs with the online-refinement and load-shedding extensions
// enabled, so it (a) re-learns the cost surface after the drift and
// (b) degrades stream quality instead of missing during the raid. The
// timeline below shows replicas, shed fraction, and misses per phase.
//
// Run:  ./online_adaptation
#include <iostream>
#include <map>

#include "apps/dynbench.hpp"
#include "apps/scenario.hpp"
#include "common/table.hpp"
#include "core/manager.hpp"
#include "experiments/model_store.hpp"
#include "workload/patterns.hpp"

using namespace rtdrm;

int main() {
  task::TaskSpec spec = apps::makeAawTaskSpec();
  std::cout << "Fitting offline models (pre-drift environment)...\n";
  experiments::ModelFitConfig fit_cfg = experiments::defaultModelFitConfig();
  fit_cfg.exec.samples_per_point = 4;
  const auto fitted = experiments::fitAllModels(spec, fit_cfg);

  // Calm triangle 500..6000; raid pushes to 22000 for 20 periods.
  workload::RampParams ramp;
  ramp.min_workload = DataSize::tracks(500.0);
  ramp.max_workload = DataSize::tracks(6000.0);
  ramp.ramp_periods = 20;
  const workload::Triangular calm(ramp);
  const workload::Constant raid_level(DataSize::tracks(22000.0));
  const workload::Sequence mission(
      {{&calm, 70}, {&raid_level, 20}, {&calm, 0}});
  auto offered = [&mission](std::uint64_t c) { return mission.at(c); };

  apps::Scenario scenario(apps::ScenarioConfig{});
  std::vector<ProcessorId> homes;
  for (std::size_t s = 0; s < spec.stageCount(); ++s) {
    homes.push_back(ProcessorId{static_cast<std::uint32_t>(s % 6)});
  }
  core::ManagerConfig cfg;
  cfg.d_init = DataSize::tracks(500.0);
  cfg.online_refit = true;
  cfg.refit.forgetting = 0.96;
  cfg.allow_load_shedding = true;
  core::ResourceManager manager(
      scenario.runtime(), spec, task::Placement(homes), offered,
      std::make_unique<core::PredictiveAllocator>(fitted.models),
      fitted.models, cfg, scenario.streams().get("exec-noise"));

  // Drift at period 40: replicable costs double.
  scenario.sim().scheduleAt(SimTime::seconds(40.0), [&spec] {
    for (auto& st : spec.subtasks) {
      if (st.replicable) {
        st.cost.alpha_ms *= 2.0;
        st.cost.beta_ms *= 2.0;
      }
    }
    std::cout << "[t=40s] environment drift: replicable costs x2\n";
  });

  struct Row {
    double workload = 0.0;
    std::size_t replicas = 0;
    double shed = 0.0;
  };
  std::map<std::uint64_t, Row> timeline;
  sim::PeriodicActivity snapshot(
      scenario.sim(), spec.period, [&](std::uint64_t c) {
        Row& row = timeline[c];
        row.workload = offered(c).count();
        row.replicas = manager.runner().placement()
                           .stage(apps::kFilterStage).size();
        row.shed = manager.shedFraction();
      });

  manager.start(scenario.sim().now());
  snapshot.start(scenario.sim().now() + SimDuration::millis(1.0));
  scenario.runFor(SimDuration::seconds(110.0));
  manager.stop();
  snapshot.stop();
  scenario.runFor(SimDuration::seconds(3.0));

  printBanner(std::cout, "Mission timeline (every 5th period)");
  Table t({"period", "offered tracks", "Filter replicas", "shed %"}, 1);
  for (const auto& [c, row] : timeline) {
    if (c % 5 == 0) {
      t.addRow({static_cast<long long>(c),
                static_cast<long long>(row.workload),
                static_cast<long long>(row.replicas), row.shed * 100.0});
    }
  }
  t.print(std::cout);

  const auto& m = manager.metrics();
  printBanner(std::cout, "Mission summary");
  std::cout << "missed deadlines:      " << m.missed_deadlines.hits() << "/"
            << m.missed_deadlines.total() << " ("
            << m.missedRatio() * 100.0 << "%)\n"
            << "peak shed fraction:    " << m.shed_fraction.max() * 100.0
            << "%\n"
            << "refreshed Filter b3:   "
            << manager.models().exec[apps::kFilterStage].b3
            << " (offline seed "
            << fitted.models.exec[apps::kFilterStage].b3
            << "; post-drift ground truth ~2x)\n"
            << "replicate / shutdown:  " << m.replicate_actions << " / "
            << m.shutdown_actions << "\n";

  const bool adapted =
      manager.models().exec[apps::kFilterStage].b3 >
          fitted.models.exec[apps::kFilterStage].b3 * 1.3 &&
      m.shed_fraction.max() > 0.0 && m.missedRatio() < 0.25;
  std::cout << "\nadaptation verdict: "
            << (adapted ? "drift learned, raid absorbed by shedding, "
                          "misses bounded — PASS"
                        : "did not adapt as expected — FAIL")
            << "\n";
  return adapted ? 0 : 1;
}
