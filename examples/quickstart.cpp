// Quickstart: profile, fit, and race the two allocators on one pattern.
//
//   1. Build the AAW benchmark task (Table 1 baseline).
//   2. Profile its subtasks on the simulated testbed and fit the paper's
//      regression models (eq. 3 per subtask, eq. 5 slope).
//   3. Run one triangular-workload episode per algorithm and compare the
//      four evaluation metrics plus the combined metric.
//
// Run:  ./quickstart [--max-tracks N] [--periods N] [--seed N]
#include <cstdlib>
#include <iostream>

#include "apps/dynbench.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"
#include "experiments/episode.hpp"
#include "experiments/model_store.hpp"

using namespace rtdrm;

int main(int argc, char** argv) {
  double max_tracks = 8000.0;
  std::int64_t periods = 72;
  std::int64_t seed = 42;
  ArgParser args("quickstart",
                 "profile, fit, and race the two allocators on a "
                 "triangular workload");
  args.addDouble("max-tracks", "triangular pattern peak (tracks)",
                 &max_tracks)
      .addInt("periods", "episode length in periods", &periods)
      .addInt("seed", "master RNG seed", &seed);
  if (!args.parse(argc, argv)) {
    return args.helpRequested() ? EXIT_SUCCESS : EXIT_FAILURE;
  }

  const task::TaskSpec spec = apps::makeAawTaskSpec();
  std::cout << "Task: " << spec.name << " — " << spec.stageCount()
            << " subtasks, period " << spec.period.ms() << " ms, deadline "
            << spec.deadline.ms() << " ms\n";

  std::cout << "\nProfiling subtasks and fitting regression models "
               "(eq. 3 / eq. 5)...\n";
  const auto fitted =
      experiments::fitAllModels(spec, experiments::defaultModelFitConfig());

  Table coeffs({"subtask", "a1", "a2", "a3", "b1", "b2", "b3", "R^2"}, 4);
  for (std::size_t i = 0; i < spec.stageCount(); ++i) {
    const auto& m = fitted.models.exec[i];
    coeffs.addRow({spec.subtasks[i].name, m.a1, m.a2, m.a3, m.b1, m.b2, m.b3,
                   fitted.exec_fits[i].diagnostics.r_squared});
  }
  coeffs.print(std::cout);
  std::cout << "Buffer-delay slope k = "
            << fitted.comm_fit.model.k_ms_per_hundred
            << " ms per hundred tracks (paper Table 3: 0.7)\n";

  workload::RampParams ramp;
  ramp.min_workload = DataSize::tracks(500);
  ramp.max_workload = DataSize::tracks(max_tracks);
  ramp.ramp_periods = 30;
  const workload::Triangular pattern(ramp);

  experiments::EpisodeConfig cfg;
  cfg.periods = static_cast<std::uint64_t>(periods);
  cfg.scenario.seed = static_cast<std::uint64_t>(seed);
  std::cout << "\nRunning " << cfg.periods
            << "-period triangular episodes (max workload " << max_tracks
            << " tracks)...\n";

  Table results({"algorithm", "missed %", "cpu %", "net %", "avg replicas",
                 "combined C"},
                2);
  for (const auto kind : {experiments::AlgorithmKind::kPredictive,
                          experiments::AlgorithmKind::kNonPredictive}) {
    const auto r =
        experiments::runEpisode(spec, pattern, fitted.models, kind, cfg);
    results.addRow({experiments::algorithmName(kind), r.missed_pct, r.cpu_pct,
                    r.net_pct, r.avg_replicas, r.combined});
  }
  results.print(std::cout);
  std::cout << "(smaller combined metric is better)\n";
  return 0;
}
