// Building your own pipeline on the public API — a video-analytics task
// instead of the AAW benchmark, showing that nothing in the resource
// manager is specific to the paper's application:
//
//   Ingest -> Decode* -> Detect* -> Track -> Publish      (* replicable)
//
// on an 8-node cluster with a gigabit segment and a sine-shaped diurnal
// workload. The example profiles the custom subtasks, fits models, runs
// both allocators and prints the comparison.
//
// Run:  ./custom_pipeline
#include <iostream>

#include "apps/scenario.hpp"
#include "common/table.hpp"
#include "core/manager.hpp"
#include "experiments/episode.hpp"
#include "experiments/model_store.hpp"
#include "workload/patterns.hpp"

using namespace rtdrm;

namespace {

task::TaskSpec makeVideoTask() {
  task::TaskSpec spec;
  spec.name = "VideoAnalytics";
  spec.period = SimDuration::millis(500.0);   // 2 Hz batch cadence
  spec.deadline = SimDuration::millis(450.0);
  // Costs in ms per hundred "frames"; Decode and Detect are the heavy,
  // data-parallel stages.
  spec.subtasks = {
      task::SubtaskSpec{"Ingest", task::SubtaskCost{0.0, 0.2}, false, 0.05},
      task::SubtaskSpec{"Decode", task::SubtaskCost{0.05, 2.5}, true, 0.05},
      task::SubtaskSpec{"Detect", task::SubtaskCost{0.08, 4.0}, true, 0.05},
      task::SubtaskSpec{"Track", task::SubtaskCost{0.01, 0.6}, false, 0.05},
      task::SubtaskSpec{"Publish", task::SubtaskCost{0.0, 0.1}, false, 0.05},
  };
  // Stages exchange compact 64 B frame descriptors, not pixel data.
  spec.messages.assign(4, task::MessageSpec{64.0});
  spec.validate();
  return spec;
}

}  // namespace

int main() {
  const task::TaskSpec spec = makeVideoTask();
  std::cout << "Custom task: " << spec.name << " — period " << spec.period.ms()
            << " ms, deadline " << spec.deadline.ms() << " ms\n";

  // Profile + fit exactly as for the AAW task; the profiler only needs the
  // SubtaskSpec cost interface.
  std::cout << "Profiling custom subtasks...\n";
  experiments::ModelFitConfig fit_cfg;
  for (double tracks = 200.0; tracks <= 5000.0; tracks += 400.0) {
    fit_cfg.exec.data_sizes.push_back(DataSize::tracks(tracks));
  }
  fit_cfg.exec.samples_per_point = 4;
  for (double w = 500.0; w <= 8000.0; w += 750.0) {
    fit_cfg.comm.workload_levels.push_back(DataSize::tracks(w));
  }
  // Profile the buffer delay on the same stack the deployment will use.
  fit_cfg.comm.ethernet.host_ns_per_byte = 20.0;
  fit_cfg.comm.ethernet.rate = BitRate::mbps(1000.0);
  fit_cfg.link_rate = BitRate::mbps(1000.0);
  const auto fitted = experiments::fitAllModels(spec, fit_cfg);

  Table coeffs({"stage", "a3 (d^2, u->0)", "b3 (d, u->0)", "R^2"}, 4);
  for (std::size_t i = 0; i < spec.stageCount(); ++i) {
    coeffs.addRow({spec.subtasks[i].name, fitted.models.exec[i].a3,
                   fitted.models.exec[i].b3,
                   fitted.exec_fits[i].diagnostics.r_squared});
  }
  coeffs.print(std::cout);

  // Diurnal load: sine between 400 and 6,000 frames, 48-period cycle, on
  // a larger cluster than the paper's baseline.
  workload::RampParams ramp;
  ramp.min_workload = DataSize::tracks(400.0);
  ramp.max_workload = DataSize::tracks(6000.0);
  const workload::Sine diurnal(ramp, 48);

  experiments::EpisodeConfig cfg;
  cfg.periods = 96;  // two diurnal cycles
  cfg.scenario.node_count = 8;
  cfg.scenario.ethernet.rate = BitRate::mbps(1000.0);
  // A modern zero-copy stack: far less host-side marshalling per byte than
  // the paper's late-90s middleware.
  cfg.scenario.ethernet.host_ns_per_byte = 20.0;
  cfg.manager.d_init = ramp.min_workload;

  printBanner(std::cout, "Two diurnal cycles, 8 nodes, 1 Gbps segment");
  Table results({"algorithm", "missed %", "cpu %", "net %", "avg replicas",
                 "combined C"},
                2);
  for (const auto kind : {experiments::AlgorithmKind::kPredictive,
                          experiments::AlgorithmKind::kNonPredictive}) {
    const auto r = runEpisode(spec, diurnal, fitted.models, kind, cfg);
    results.addRow({experiments::algorithmName(kind), r.missed_pct, r.cpu_pct,
                    r.net_pct, r.avg_replicas, r.combined});
  }
  results.print(std::cout);
  std::cout << "(the manager, monitor, EQF assigner and allocators were "
               "reused unchanged — only the TaskSpec differs)\n";
  return 0;
}
