#!/usr/bin/env python3
"""Plot the CSV series the bench binaries emit.

Usage:  python3 scripts/plot_results.py [csv_dir] [out_dir]

Looks for the fig*/ext* CSVs written by the bench binaries (by default in
./bench_out) and renders one PNG per figure into out_dir (default
./bench_out/plots). Requires matplotlib; degrades to a clear message if it
is unavailable (the benches' aligned-table output stands on its own).
"""
import csv
import os
import sys


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    if not rows:
        return [], []
    return rows[0], rows[1:]


def plot_sweep(plt, path, out_dir):
    """Two-series sweep CSVs: x = max workload, PREDICTIVE/NON-PREDICTIVE."""
    header, rows = read_csv(path)
    if len(header) < 3 or not rows:
        return False
    x = [float(r[0]) for r in rows]
    pred = [float(r[1]) for r in rows]
    nonp = [float(r[2]) for r in rows]
    fig, ax = plt.subplots(figsize=(6, 4))
    ax.plot(x, pred, marker="o", label="predictive")
    ax.plot(x, nonp, marker="s", label="non-predictive")
    ax.set_xlabel(header[0])
    ax.set_ylabel(os.path.basename(path).replace(".csv", ""))
    ax.legend()
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    out = os.path.join(out_dir,
                       os.path.basename(path).replace(".csv", ".png"))
    fig.savefig(out, dpi=120)
    plt.close(fig)
    print(f"wrote {out}")
    return True


def main():
    csv_dir = sys.argv[1] if len(sys.argv) > 1 else "bench_out"
    out_dir = sys.argv[2] if len(sys.argv) > 2 else os.path.join(
        csv_dir, "plots")
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; the bench tables/logs already "
              "contain every series")
        return 0
    os.makedirs(out_dir, exist_ok=True)
    count = 0
    for name in sorted(os.listdir(csv_dir)):
        if not name.endswith(".csv"):
            continue
        path = os.path.join(csv_dir, name)
        try:
            if plot_sweep(plt, path, out_dir):
                count += 1
        except (ValueError, IndexError):
            print(f"skipped {name} (not a two-series sweep)")
    print(f"{count} plots written to {out_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
