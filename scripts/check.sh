#!/usr/bin/env bash
# Full verification sweep: release build + tests + benches, then an
# AddressSanitizer/UBSan test pass. Run from the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== release build =="
cmake -B build -G Ninja
cmake --build build

echo "== unit/integration tests =="
ctest --test-dir build --output-on-failure

echo "== benches (each checks its figure's shape) =="
mkdir -p bench_out
(cd bench_out && for b in ../build/bench/bench_*; do
  echo "--- $(basename "$b")"
  "$b" > "$(basename "$b").log" 2>&1 || { echo "FAILED: $b"; exit 1; }
done)

echo "== sanitizer pass (ASan + UBSan) =="
cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
  -DRTDRM_BUILD_BENCH=OFF -DRTDRM_BUILD_EXAMPLES=OFF
cmake --build build-asan
ctest --test-dir build-asan --output-on-failure

echo "ALL CHECKS PASSED"
