#!/usr/bin/env bash
# Regenerates tests/obs/golden/decision_trace.txt from the current build.
#
# Run after an *intentional* change to the predictive growth loop, the
# threshold heuristic, or the monitor's decision sequence — then review the
# golden diff like any other code change before committing it.
#
# Usage: scripts/regen_golden_trace.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -d "$BUILD_DIR" ]; then
  echo "error: build directory '$BUILD_DIR' not found" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

cmake --build "$BUILD_DIR" --target test_obs -j

GOLDEN=tests/obs/golden/decision_trace.txt
RTDRM_REGEN_GOLDEN=1 "$BUILD_DIR/tests/test_obs" \
  --gtest_filter='GoldenTrace.DecisionAuditMatchesGoldenFile'

echo
echo "regenerated $GOLDEN ($(wc -l < "$GOLDEN") lines); review with:"
echo "  git diff -- $GOLDEN"
