#!/usr/bin/env bash
# Regenerates the checked-in golden decision traces from the current build:
#   tests/obs/golden/decision_trace.txt          (centralized episode)
#   tests/obs/golden/decision_trace_sharded.txt  (2-manager failover episode)
#
# Run after an *intentional* change to the predictive growth loop, the
# threshold heuristic, the monitor's decision sequence, or the management
# plane's failover lifecycle — then review the golden diff like any other
# code change before committing it.
#
# Usage: scripts/regen_golden_trace.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -d "$BUILD_DIR" ]; then
  echo "error: build directory '$BUILD_DIR' not found" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

cmake --build "$BUILD_DIR" --target test_obs -j

GOLDEN=tests/obs/golden/decision_trace.txt
GOLDEN_SHARDED=tests/obs/golden/decision_trace_sharded.txt
RTDRM_REGEN_GOLDEN=1 "$BUILD_DIR/tests/test_obs" \
  --gtest_filter='GoldenTrace.DecisionAuditMatchesGoldenFile'
RTDRM_REGEN_GOLDEN=1 "$BUILD_DIR/tests/test_obs" \
  --gtest_filter='GoldenTrace.ShardedPlaneDecisionAuditMatchesGoldenFile'

echo
echo "regenerated $GOLDEN ($(wc -l < "$GOLDEN") lines) and"
echo "  $GOLDEN_SHARDED ($(wc -l < "$GOLDEN_SHARDED") lines); review with:"
echo "  git diff -- $GOLDEN $GOLDEN_SHARDED"
