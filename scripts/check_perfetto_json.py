#!/usr/bin/env python3
"""Schema check for exported Perfetto/Chrome trace-event JSON.

Validates the subset of the trace-event format that obs::writePerfettoJson
emits, so CI catches exporter regressions without needing the Perfetto UI:

  * top level is an object with "displayTimeUnit" and a "traceEvents" list
  * every event has name/ph/ts/pid, ph is "i" (instant) or "C" (counter)
  * instant events are thread-scoped ("s": "t") with an integer tid
  * ts is a non-negative number (microseconds), args (if present) is an object

Usage: check_perfetto_json.py TRACE.json [TRACE2.json ...]
Exits nonzero on the first malformed file, with a per-file event summary
on success.
"""

import json
import sys


def fail(path, msg):
    print(f"{path}: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"not readable JSON: {e}")

    if not isinstance(doc, dict):
        fail(path, f"top level must be an object, got {type(doc).__name__}")
    if doc.get("displayTimeUnit") != "ms":
        fail(path, f"displayTimeUnit must be 'ms', got {doc.get('displayTimeUnit')!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(path, "traceEvents must be a list")

    phase_counts = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(path, f"{where}: event must be an object")
        for key in ("name", "ph", "ts", "pid"):
            if key not in ev:
                fail(path, f"{where}: missing required key {key!r}")
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail(path, f"{where}: name must be a non-empty string")
        ph = ev["ph"]
        if ph not in ("i", "C"):
            fail(path, f"{where}: unexpected phase {ph!r} (exporter emits 'i'/'C')")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            fail(path, f"{where}: ts must be a non-negative number, got {ev['ts']!r}")
        if not isinstance(ev["pid"], int):
            fail(path, f"{where}: pid must be an integer, got {ev['pid']!r}")
        if ph == "i":
            if ev.get("s") != "t":
                fail(path, f"{where}: instant event must be thread-scoped ('s': 't')")
            if not isinstance(ev.get("tid"), int):
                fail(path, f"{where}: instant event needs an integer tid")
        if "args" in ev and not isinstance(ev["args"], dict):
            fail(path, f"{where}: args must be an object")
        phase_counts[ph] = phase_counts.get(ph, 0) + 1

    summary = ", ".join(f"{n} '{ph}'" for ph, n in sorted(phase_counts.items()))
    print(f"{path}: OK ({len(events)} events: {summary or 'empty'})")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        check_file(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
