// The two resource-allocation strategies compared by the paper (§4.2).
//
//  * PredictiveAllocator — Fig. 5: add replicas one at a time on the least
//    utilized processor, forecasting every replica's stage latency with the
//    regression models, until all forecasts fit the subtask's budget minus
//    the slack reserve (or processors run out).
//  * NonPredictiveAllocator — Fig. 7: replicate onto every processor whose
//    observed utilization is below a fixed threshold UT (Table 1: 20%).
//
// Both mutate a ReplicaSet in place; shutdown (Fig. 6) is ReplicaSet::
// removeLast and lives in the ResourceManager.
#pragma once

#include <memory>
#include <string>

#include "core/eqf.hpp"
#include "core/models.hpp"
#include "node/cluster.hpp"
#include "task/spec.hpp"

namespace rtdrm::obs {
class TraceBuffer;
}  // namespace rtdrm::obs

namespace rtdrm::core {

/// Everything an allocator may look at when deciding (observed state only —
/// no ground truth).
struct AllocationContext {
  const task::TaskSpec& spec;
  const node::Cluster& cluster;
  /// ds(T_i, c): this task's current periodic workload (determines each
  /// replica's share).
  DataSize workload;
  const EqfBudgets& budgets;
  /// sl as a fraction of the stage budget (paper: 0.2).
  double slack_fraction = 0.2;
  /// sum_i ds(T_i, c) over *all* tasks (eq. 5's Dbuf input). Equals
  /// `workload` in single-task deployments.
  DataSize total_workload = DataSize::zero();

  /// Decision-audit sink: when set, allocators post one structured record
  /// per growth-loop step (candidate taken, forecast check with both eq.-3
  /// and eq.-5/6 terms, accept/exhaust). Null = no auditing, no cost.
  obs::TraceBuffer* audit = nullptr;

  DataSize effectiveTotal() const {
    return total_workload > DataSize::zero() ? total_workload : workload;
  }
};

/// Which replica the shutdown action (paper Fig. 6) removes.
enum class ShutdownSelection {
  kLastAdded,     ///< the paper's rule: pop the most recently added
  kMostUtilized,  ///< extension: evict the replica on the busiest node
};

/// Picks the replica `rs` should shed under `selection`; requires
/// rs.size() > 1. kMostUtilized never evicts the primary.
ProcessorId selectShutdownVictim(const task::ReplicaSet& rs,
                                 const node::Cluster& cluster,
                                 ShutdownSelection selection);

enum class AllocStatus {
  kSuccess,   ///< forecast (or heuristic) satisfied the budget
  kFailure,   ///< ran out of processors before the forecast fit
  kNoChange,  ///< nothing to do / no eligible processor
};

class Allocator {
 public:
  virtual ~Allocator() = default;
  /// Grow `rs` (the replica set of `stage`) per the strategy.
  virtual AllocStatus replicate(const AllocationContext& ctx,
                                std::size_t stage, task::ReplicaSet& rs) = 0;
  virtual std::string name() const = 0;
  /// Invoked by the manager when online model refinement produced updated
  /// regression models. Heuristic allocators ignore it.
  virtual void onModelsRefreshed(const PredictiveModels& models) {
    (void)models;
  }
};

struct PredictiveConfig {
  /// Forecast at d * (1 + headroom) instead of the observed workload —
  /// provisioning margin against rising ramps (0 reproduces Fig. 5
  /// exactly; an ablation knob, DESIGN.md §6).
  double workload_headroom = 0.0;
};

/// Fig. 5. Holds the fitted regression models it forecasts with.
class PredictiveAllocator final : public Allocator {
 public:
  explicit PredictiveAllocator(PredictiveModels models,
                               PredictiveConfig config = {})
      : models_(std::move(models)), config_(config) {}

  AllocStatus replicate(const AllocationContext& ctx, std::size_t stage,
                        task::ReplicaSet& rs) override;
  std::string name() const override { return "predictive"; }
  void onModelsRefreshed(const PredictiveModels& models) override {
    models_ = models;
  }

  /// Forecast of one replica's stage latency (eex + ecd) if `stage` ran
  /// with `replica_count` replicas, on a processor at utilization `u`.
  /// Exposed for tests and the capacity-planning example.
  SimDuration forecastReplicaLatency(const AllocationContext& ctx,
                                     std::size_t stage,
                                     std::size_t replica_count,
                                     Utilization u) const;
  /// As above, but for a specific node — uses that node's learned model
  /// override when per-node refinement has produced one.
  SimDuration forecastReplicaLatencyOn(const AllocationContext& ctx,
                                       std::size_t stage,
                                       std::size_t replica_count,
                                       ProcessorId node,
                                       Utilization u) const;

  /// The two terms of one replica's forecast: eq.-3 execution latency and
  /// eq.-5/6 communication delay. The audited growth loop records both;
  /// the decision itself compares their sum.
  struct ForecastParts {
    SimDuration eex;
    SimDuration ecd;
    SimDuration total() const { return eex + ecd; }
  };
  /// As forecastReplicaLatencyOn, but returning the terms separately (and
  /// with the eq.-5 total precomputed by the caller).
  ForecastParts forecastParts(const AllocationContext& ctx, std::size_t stage,
                              std::size_t replica_count, ProcessorId node,
                              Utilization u, DataSize eq5_total) const;

 private:
  /// The forecast body with the eq.-5 total workload precomputed: the
  /// total is invariant across the candidates of one replicate() call, so
  /// the Fig.-5 step-6 loop hoists it instead of re-deriving it per
  /// replica.
  SimDuration forecastWithTotal(const AllocationContext& ctx,
                                std::size_t stage, std::size_t replica_count,
                                ProcessorId node, Utilization u,
                                DataSize eq5_total) const;

  PredictiveModels models_;
  PredictiveConfig config_;
};

/// Fig. 7.
class NonPredictiveAllocator final : public Allocator {
 public:
  explicit NonPredictiveAllocator(
      Utilization threshold = Utilization::percent(20.0))
      : threshold_(threshold) {}

  AllocStatus replicate(const AllocationContext& ctx, std::size_t stage,
                        task::ReplicaSet& rs) override;
  std::string name() const override { return "non-predictive"; }

 private:
  Utilization threshold_;
};

}  // namespace rtdrm::core
