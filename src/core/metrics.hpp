// Episode metrics (paper §5.2, Figs. 9-13).
//
// Per-period samples of: deadline misses, mean CPU utilization across
// nodes, network utilization, and replica counts — plus the paper's
// combined performance metric
//
//   C = MD + U_cpu + U_net + Rbar / Max(R)
//
// (all terms fractions in [0, 1]; smaller is better). Max(R) is bounded by
// the processor count: replicas of one subtask must sit on distinct nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.hpp"
#include "common/stats.hpp"

namespace rtdrm::core {

/// Per-subtask attribution: which stage drove the adaptation and where the
/// latency lives.
struct StageMetrics {
  RunningStats latency_ms;  ///< measured stage latency per completed period
  std::uint64_t replicate_actions = 0;
  std::uint64_t shutdown_actions = 0;
};

struct EpisodeMetrics {
  HitRatio missed_deadlines;          ///< per completed/aborted period
  RunningStats cpu_utilization;       ///< mean-over-nodes, sampled per period
  RunningStats net_utilization;       ///< sampled per period
  RunningStats replicas_per_subtask;  ///< mean over replicable stages
  RunningStats end_to_end_ms;         ///< completed periods only
  /// Latency distribution (0..3 s, 60 buckets; out-of-range counted in
  /// the overflow bin).
  Histogram end_to_end_hist{0.0, 3000.0, 60};
  std::uint64_t replicate_actions = 0;
  std::uint64_t shutdown_actions = 0;
  std::uint64_t allocation_failures = 0;
  /// Node-death notifications that touched this task's placement.
  std::uint64_t node_failures_handled = 0;
  /// Stages scrubbed of a dead node during failover.
  std::uint64_t failover_replacements = 0;
  /// Recovery replications that could not meet the forecast on the
  /// surviving nodes (each also counts in allocation_failures).
  std::uint64_t recovery_allocation_failures = 0;
  /// Periods whose monitor evaluation was skipped because no live manager
  /// owned the decision (the failover gap of the decentralized plane);
  /// always zero in the centralized configuration.
  std::uint64_t suppressed_decision_periods = 0;
  /// Fraction of the stream dropped per period (all zeros unless the
  /// load-shedding extension is enabled and engaged).
  RunningStats shed_fraction;
  /// Live period as a multiple of the spec period, sampled per period
  /// (all 1.0 unless the period-adjustment extension is enabled and
  /// engaged).
  RunningStats period_scale;
  /// Period-adjustment actions taken (dilations toward max_period on
  /// forecast rejection, contractions back on sustained high slack).
  std::uint64_t period_dilations = 0;
  std::uint64_t period_contractions = 0;
  /// Sized to the task's stage count by the ResourceManager.
  std::vector<StageMetrics> stages;

  double missedRatio() const { return missed_deadlines.ratio(); }

  /// The paper's combined performance metric; `max_replicas` is the maximum
  /// exploitable concurrency (the processor count).
  double combined(std::size_t max_replicas) const {
    const double r_frac =
        replicas_per_subtask.mean() / static_cast<double>(max_replicas);
    return missedRatio() + cpu_utilization.mean() + net_utilization.mean() +
           r_frac;
  }
};

}  // namespace rtdrm::core
