// The decentralized management plane: per-partition manager endpoints,
// gossip, election, failover.
//
// The paper's supervisory ResourceManager makes every Fig.-5/Fig.-7
// decision from one place — a single point of failure. This plane splits
// the management *state* over M manager endpoints, each owning a
// contiguous node-block partition (the same floor(i*M/N) block mapping as
// the PR-6 shard layout):
//
//   * every live endpoint samples its own partition's utilization
//     privately each gossip interval and broadcasts a
//     net::PartitionSummary to the other endpoints over the shared
//     network substrate (real wire traffic; the payload rides in the closure like
//     every other message in src/net);
//   * exactly one endpoint is the *active* manager: only it publishes
//     received summaries into the cluster view the allocators read, and
//     only it may apply decisions — a decision gate installed on the
//     adopted ResourceManager suppresses the monitor/allocator half of
//     every period while no live active exists;
//   * the active is a first-class fault target: fault::FaultPlan's
//     ManagerCrashFault kills it through setManagerUp(), a heartbeat
//     fault::FailureDetector (target mode) monitoring the endpoints
//     declares it dead after its timeout/retry/backoff, and the plane
//     then elects the lowest-indexed live standby, which rebuilds the
//     cluster view from its stored gossip summaries (+ the gossiped
//     ledger record), resets stale slack streaks, re-derives budgets and
//     drains node failures queued during the gap.
//
// Staleness is bounded: the invariant oracle asserts (via
// worstViewAgeMs()) that no summary the active decides on is older than
// config.staleness_bound, with a one-bound grace window whenever an
// origin endpoint (or its host node) comes back up.
//
// With managers == 1 the plane constructs nothing, schedules nothing and
// sends nothing: adopt() installs no gate and leaves the manager sampling
// the cluster itself, so the run is bit-for-bit identical to the legacy
// centralized path.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "net/network_model.hpp"
#include "net/gossip.hpp"
#include "node/cluster.hpp"
#include "obs/record.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::obs {
struct Observability;
class MetricsRegistry;
}  // namespace rtdrm::obs

namespace rtdrm::core {

class ResourceManager;

struct PlaneConfig {
  /// Manager endpoints; 1 = the legacy centralized plane (no gossip, no
  /// gate, bit-for-bit identical behavior).
  std::size_t managers = 1;
  /// Gossip broadcast cadence per endpoint.
  SimDuration gossip_interval = SimDuration::millis(50.0);
  /// Maximum age any summary in the active's view may reach (enforced by
  /// the invariant oracle). Must comfortably exceed gossip_interval plus
  /// wire time; the default is 4 intervals.
  SimDuration staleness_bound = SimDuration::millis(200.0);
  /// Simulated wire footprint of one summary: base + per_node * partition
  /// size (the data itself travels in the message closure).
  Bytes gossip_base_bytes = Bytes::of(96.0);
  Bytes gossip_per_node_bytes = Bytes::of(12.0);
};

class ManagementPlane {
 public:
  enum class Role : std::uint8_t { kActive, kStandby, kDown };

  /// `manager` index meaning "no live active exists" (headless gap).
  static constexpr std::uint32_t kNoManager = 0xffffffffu;

  ManagementPlane(sim::Simulator& simulator, net::NetworkModel& network,
                  node::Cluster& cluster, PlaneConfig config);
  ManagementPlane(const ManagementPlane&) = delete;
  ManagementPlane& operator=(const ManagementPlane&) = delete;

  /// Hands the (single, shared) ResourceManager to the plane: installs the
  /// decision gate, switches the manager to external (gossip-published)
  /// sampling, and stamps decision provenance into the audit trace. No-op
  /// with managers == 1. Call before start(); the manager must outlive
  /// the plane.
  void adopt(ResourceManager& manager);

  /// First gossip round at `at`, then every interval. No-op with
  /// managers == 1.
  void start(SimTime at);
  /// Stops gossip and closes any open decision-gap window.
  void stop();

  // ---- fault wiring ------------------------------------------------------
  /// Ground-truth crash/restart edge (FaultInjector::setManagerFaultTarget
  /// binds here). A crashed endpoint stops gossiping and acking instantly;
  /// if it was the active, decisions stop with it and the gap opens.
  void setManagerUp(std::uint32_t manager, bool up);
  /// Detector belief: `manager` was declared dead. Deposes it; if it was
  /// the active, elects the lowest-indexed live standby (or goes headless
  /// when none is left).
  void onManagerSuspected(std::uint32_t manager);
  /// Detector belief: `manager` acked again. Rejoins it as a standby and
  /// triggers an election if the plane was headless.
  void onManagerRecovered(std::uint32_t manager);

  // ---- node-failure routing (episode wiring sends the node detector's
  // callbacks through here when managers > 1) -----------------------------
  /// Forwarded to the active manager when one exists; queued during the
  /// gap and drained (still-down nodes only) by the next election.
  void handleNodeFailure(ProcessorId dead);
  void handleNodeRestart(ProcessorId node);

  // ---- introspection (oracle + tests) ------------------------------------
  std::size_t managerCount() const { return config_.managers; }
  const PlaneConfig& config() const { return config_; }
  bool enabled() const { return config_.managers > 1; }
  /// True while a live active manager owns decisions.
  bool decisionsAllowed() const {
    return !enabled() || (active_ != kNoManager && up_[active_]);
  }
  std::uint32_t activeManager() const { return active_; }
  Role roleOf(std::uint32_t manager) const { return roles_[manager]; }
  bool managerUp(std::uint32_t manager) const { return up_[manager]; }
  std::size_t activeCount() const;
  /// Node block [first, last) owned by `manager`, and the node hosting
  /// its endpoint (the block's first node).
  std::pair<std::size_t, std::size_t> partitionOf(
      std::uint32_t manager) const;
  ProcessorId hostOf(std::uint32_t manager) const;
  /// True when `manager`'s endpoint is able to gossip right now (endpoint
  /// up and host node up).
  bool endpointReachable(std::uint32_t manager) const;

  /// Worst age (ms) across the summaries the active currently decides on;
  /// 0 during the gap or with managers == 1. Origins whose endpoint or
  /// host is down — or that came back up less than one staleness bound
  /// ago — are excused (their absence is the failure detector's problem,
  /// not a staleness violation). Also folds the result into
  /// maxStalenessObservedMs().
  double worstViewAgeMs() const;

  std::uint64_t gossipRounds() const { return gossip_rounds_; }
  std::uint64_t gossipMessagesSent() const { return gossip_messages_sent_; }
  std::uint64_t summariesApplied() const { return summaries_applied_; }
  std::uint64_t elections() const { return elections_; }
  std::uint64_t epoch() const { return epoch_; }
  /// Total time (ms) decisions were suppressed because no live active
  /// existed (crash -> election, plus any headless tail).
  double decisionGapMs() const { return decision_gap_ms_; }
  double maxStalenessObservedMs() const { return max_staleness_observed_ms_; }
  /// Ledger record (tracks) the most recent election rebuilt from gossip.
  double rebuiltLedgerTracks() const { return rebuilt_ledger_tracks_; }
  std::size_t pendingNodeFailures() const { return pending_failures_.size(); }

  /// Optional audit-trace sink (must outlive the plane).
  void attachObs(obs::Observability& o);
  /// Publishes plane counters into `reg` under "plane." names.
  void exportMetrics(obs::MetricsRegistry& reg) const;

 private:
  /// One endpoint's knowledge of one origin's latest summary.
  struct ViewRow {
    std::uint64_t seq = 0;  ///< 0 = nothing received yet
    SimTime sampled_at = SimTime::zero();
    std::vector<double> utilization;
    double ledger_tracks = 0.0;
  };

  void gossipTick();
  void broadcast(std::uint32_t origin);
  void receive(std::uint32_t receiver, const net::PartitionSummary& summary);
  /// Publishes `row`'s utilizations into the cluster view (active only).
  void publishRow(std::uint32_t origin, const ViewRow& row);
  void elect();
  void openGap();
  void closeGap();
  void drainPendingFailures();
  void obsRecord(obs::RecordKind kind, std::uint32_t node, double a,
                 double b = 0.0, double c = 0.0) const;
  double currentLedgerTracks() const;

  sim::Simulator& sim_;
  net::NetworkModel& net_;
  node::Cluster& cluster_;
  PlaneConfig config_;
  ResourceManager* manager_ = nullptr;
  obs::Observability* obs_ = nullptr;

  std::vector<std::uint8_t> up_;  ///< ground-truth endpoint liveness
  std::vector<Role> roles_;
  std::uint32_t active_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> send_seq_;  ///< per-origin broadcast counter
  /// views_[receiver * M + origin]: newest summary `receiver` holds from
  /// `origin`.
  std::vector<ViewRow> views_;
  sim::PeriodicActivity ticker_;
  bool running_ = false;

  // Gap accounting.
  bool gap_open_ = false;
  SimTime gap_since_ = SimTime::zero();
  double decision_gap_ms_ = 0.0;
  std::vector<ProcessorId> pending_failures_;

  // Staleness bookkeeping (mutable: worstViewAgeMs() is a const oracle
  // query that performs lazy up-edge detection in event order).
  mutable std::vector<std::uint8_t> eligible_was_;
  mutable std::vector<SimTime> enforce_after_;
  mutable bool active_was_reachable_ = true;
  mutable double max_staleness_observed_ms_ = 0.0;

  std::vector<Utilization> sample_scratch_;
  std::uint64_t gossip_rounds_ = 0;
  std::uint64_t gossip_messages_sent_ = 0;
  std::uint64_t summaries_applied_ = 0;
  std::uint64_t elections_ = 0;
  double rebuilt_ledger_tracks_ = 0.0;
};

}  // namespace rtdrm::core
