// Run-time monitoring and candidate selection (paper §4.1).
//
// Each completed period is checked against the current EQF budgets:
//  * a replicable stage whose slack falls below the reserve `sl`
//    (default 20% of its budget) — or that missed its budget outright, or
//    never completed before the instance was aborted — becomes a
//    *replication* candidate;
//  * a replicable stage with more than one replica that shows "very high
//    slack" for several consecutive periods becomes a *shutdown*
//    candidate (hysteresis prevents oscillation: the paper leaves "very
//    high" unspecified; both knobs are ablation parameters).
#pragma once

#include <cstdint>
#include <vector>

#include "core/eqf.hpp"
#include "task/pipeline.hpp"
#include "task/spec.hpp"

namespace rtdrm::core {

enum class ActionKind { kReplicate, kShutdown };

struct Action {
  std::size_t stage = 0;
  ActionKind kind = ActionKind::kReplicate;
};

struct MonitorConfig {
  /// sl: minimum slack each subtask must maintain, as a fraction of its
  /// budget (paper: 0.2).
  double slack_fraction = 0.2;
  /// Slack above this fraction of the budget counts as "very high".
  double shutdown_slack_fraction = 0.6;
  /// Consecutive very-high-slack periods required before shutting a
  /// replica down.
  int shutdown_hysteresis = 3;
  /// Judge stages by the latency the monitor *measures* with per-node
  /// clocks (true) or by omniscient simulation time (false; for ablation).
  bool use_measured_latency = true;
};

class SlackMonitor {
 public:
  SlackMonitor(const task::TaskSpec& spec, MonitorConfig config);

  /// Evaluates one period record; returns at most one action per
  /// replicable stage.
  std::vector<Action> evaluate(const task::PeriodRecord& record,
                               const EqfBudgets& budgets,
                               const task::Placement& placement);

  /// Clears hysteresis state (call after external placement changes).
  void resetStreaks();

  std::uint64_t periodsEvaluated() const { return evaluated_; }

 private:
  const task::TaskSpec& spec_;
  MonitorConfig config_;
  std::vector<int> high_slack_streak_;
  std::uint64_t evaluated_ = 0;
};

}  // namespace rtdrm::core
