#include "core/monitor.hpp"

#include "common/assert.hpp"

namespace rtdrm::core {

SlackMonitor::SlackMonitor(const task::TaskSpec& spec, MonitorConfig config)
    : spec_(spec), config_(config),
      high_slack_streak_(spec.stageCount(), 0) {
  RTDRM_ASSERT(config_.slack_fraction >= 0.0 &&
               config_.slack_fraction < 1.0);
  RTDRM_ASSERT(config_.shutdown_slack_fraction > config_.slack_fraction);
  RTDRM_ASSERT(config_.shutdown_hysteresis >= 1);
}

std::vector<Action> SlackMonitor::evaluate(const task::PeriodRecord& record,
                                           const EqfBudgets& budgets,
                                           const task::Placement& placement) {
  RTDRM_ASSERT(record.stages.size() == spec_.stageCount());
  ++evaluated_;
  std::vector<Action> actions;

  for (std::size_t i = 0; i < spec_.stageCount(); ++i) {
    if (!spec_.subtasks[i].replicable) {
      continue;
    }
    const task::StageRecord& st = record.stages[i];
    const double budget = budgets.stageBudgetMs(i);

    if (!st.completed) {
      // The instance was aborted before this stage finished — the most
      // severe form of deadline violation.
      high_slack_streak_[i] = 0;
      actions.push_back(Action{i, ActionKind::kReplicate});
      continue;
    }

    const double latency = config_.use_measured_latency
                               ? st.measured_latency.ms()
                               : st.trueLatency().ms();
    const double slack = budget - latency;

    if (slack < config_.slack_fraction * budget) {
      // Below the reserve (or an outright miss): replicate.
      high_slack_streak_[i] = 0;
      actions.push_back(Action{i, ActionKind::kReplicate});
    } else if (slack > config_.shutdown_slack_fraction * budget &&
               placement.stage(i).size() > 1) {
      if (++high_slack_streak_[i] >= config_.shutdown_hysteresis) {
        high_slack_streak_[i] = 0;
        actions.push_back(Action{i, ActionKind::kShutdown});
      }
    } else {
      high_slack_streak_[i] = 0;
    }
  }
  return actions;
}

void SlackMonitor::resetStreaks() {
  high_slack_streak_.assign(spec_.stageCount(), 0);
}

}  // namespace rtdrm::core
