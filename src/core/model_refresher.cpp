#include "core/model_refresher.hpp"

#include "common/assert.hpp"

namespace rtdrm::core {

ModelRefresher::ModelRefresher(const task::TaskSpec& spec,
                               const PredictiveModels& seed,
                               ModelRefresherConfig config)
    : config_(config) {
  RTDRM_ASSERT(seed.exec.size() == spec.stageCount());
  RTDRM_ASSERT(!config_.per_node || config_.node_count > 0);
  seeds_ = seed.exec;
  rls_.reserve(spec.stageCount());
  for (std::size_t s = 0; s < spec.stageCount(); ++s) {
    rls_.emplace_back(6, config_.forgetting, config_.initial_p);
    rls_.back().seed(toTheta(seeds_[s]));
  }
  if (config_.per_node) {
    node_rls_.reserve(spec.stageCount() * config_.node_count);
    for (std::size_t s = 0; s < spec.stageCount(); ++s) {
      for (std::size_t n = 0; n < config_.node_count; ++n) {
        node_rls_.emplace_back(6, config_.forgetting, config_.initial_p);
        node_rls_.back().seed(toTheta(seeds_[s]));
      }
    }
  }
}

std::size_t ModelRefresher::nodeIndex(std::size_t stage,
                                      ProcessorId node) const {
  RTDRM_ASSERT(node.value < config_.node_count);
  return stage * config_.node_count + node.value;
}

regress::Vector ModelRefresher::features(double d_hundreds, double u) {
  const double d2 = d_hundreds * d_hundreds;
  return regress::Vector{u * u * d2, u * d2,          d2,
                         u * u * d_hundreds, u * d_hundreds, d_hundreds};
}

regress::Vector ModelRefresher::toTheta(const regress::ExecLatencyModel& m) {
  return regress::Vector{m.a1, m.a2, m.a3, m.b1, m.b2, m.b3};
}

regress::ExecLatencyModel ModelRefresher::toModel(
    const regress::Vector& theta) {
  regress::ExecLatencyModel m;
  m.a1 = theta[0];
  m.a2 = theta[1];
  m.a3 = theta[2];
  m.b1 = theta[3];
  m.b2 = theta[4];
  m.b3 = theta[5];
  return m;
}

bool ModelRefresher::observe(std::size_t stage, ProcessorId node,
                             double d_hundreds, double u, double exec_ms) {
  RTDRM_ASSERT(stage < rls_.size());
  if (d_hundreds <= 0.0) {
    return active(stage);  // a zero-data observation carries no signal
  }
  const regress::Vector x = features(d_hundreds, u);
  rls_[stage].update(x, exec_ms);
  if (config_.per_node) {
    node_rls_[nodeIndex(stage, node)].update(x, exec_ms);
  }
  return active(stage);
}

std::optional<regress::ExecLatencyModel> ModelRefresher::currentForNode(
    std::size_t stage, ProcessorId node) const {
  if (!config_.per_node) {
    return std::nullopt;
  }
  const auto& rls = node_rls_[nodeIndex(stage, node)];
  if (rls.observations() < config_.min_observations) {
    return std::nullopt;
  }
  return toModel(rls.coefficients());
}

bool ModelRefresher::active(std::size_t stage) const {
  RTDRM_ASSERT(stage < rls_.size());
  return rls_[stage].observations() >= config_.min_observations;
}

std::uint64_t ModelRefresher::observations(std::size_t stage) const {
  RTDRM_ASSERT(stage < rls_.size());
  return rls_[stage].observations();
}

regress::ExecLatencyModel ModelRefresher::current(std::size_t stage) const {
  RTDRM_ASSERT(stage < rls_.size());
  return active(stage) ? toModel(rls_[stage].coefficients()) : seeds_[stage];
}

}  // namespace rtdrm::core
