// The adaptive resource manager (paper Fig. 1).
//
// Orchestrates the full loop:
//   1. releases the periodic task (owns a TaskRunner),
//   2. samples processor/network utilization each period on a global time
//      scale,
//   3. feeds every completed period record to the SlackMonitor,
//   4. applies the configured allocator to replication candidates and
//      Fig. 6's shutdown to de-allocation candidates,
//   5. re-assigns EQF budgets after every action (§4.1 last paragraph),
//   6. accumulates the evaluation metrics.
#pragma once

#include <functional>
#include <memory>

#include "core/allocators.hpp"
#include "core/eqf.hpp"
#include "core/ledger.hpp"
#include "core/metrics.hpp"
#include "core/models.hpp"
#include "core/model_refresher.hpp"
#include "core/monitor.hpp"
#include "net/ethernet.hpp"
#include "obs/record.hpp"
#include "sim/trace.hpp"
#include "task/task_runner.hpp"

namespace rtdrm::obs {
struct Observability;
class MetricsRegistry;
}  // namespace rtdrm::obs

namespace rtdrm::core {

struct ManagerConfig {
  MonitorConfig monitor{};
  /// Initial operating conditions used for the first EQF assignment
  /// (paper §4.1: d_init, u_init).
  DataSize d_init = DataSize::tracks(500);
  Utilization u_init = Utilization::fraction(0.05);
  task::PipelineConfig pipeline{};
  /// Whether this manager drives the cluster's utilization sampling window.
  /// Exactly one manager per cluster must do so; in multi-task deployments
  /// the first manager samples and the others read the shared snapshot.
  bool sample_cluster = true;
  /// Online refinement of the eq.-3 models from run-time observations
  /// (extension; off = the paper's static offline models).
  bool online_refit = false;
  ModelRefresherConfig refit{};
  /// Shutdown victim selection (paper Fig. 6 = kLastAdded).
  ShutdownSelection shutdown_selection = ShutdownSelection::kLastAdded;
  /// Subtask-deadline assignment strategy (the paper uses an EQF variant).
  DeadlineStrategy deadline_strategy = DeadlineStrategy::kEqf;
  /// Control-plane latency (extension): decisions take effect only after
  /// this delay — covering decision distribution and replica process
  /// startup, which the paper treats as instantaneous. Zero reproduces the
  /// paper. Overlapping delayed updates apply last-write-wins.
  SimDuration action_latency = SimDuration::zero();
  /// Load shedding (extension, imprecise-computation style [LL+91]): when
  /// even full replication cannot satisfy a subtask budget (allocation
  /// failure), process only a fraction of the stream instead of missing
  /// deadlines outright. Shedding backs off before replicas are shut down
  /// once slack returns. Off by default (the paper misses instead).
  bool allow_load_shedding = false;
  /// Shed increment per allocation failure and decrement per high-slack
  /// period.
  double shed_step = 0.1;
  /// Upper bound on the shed fraction (never drop more than this).
  double max_shed = 0.7;
  /// Elastic period adjustment (extension, Dwivedi arXiv:1212.3502): when
  /// the eq.-5/eq.-6 forecast rejects replication (allocation failure),
  /// dilate the task's release period toward TaskSpec::max_period — the
  /// same stream, delivered at a sustainable rate — before falling back
  /// to shedding tracks. Sustained high slack contracts the period back
  /// toward nominal before any resource is released. Off by default (the
  /// paper's task set is inelastic). Requires spec.max_period > period to
  /// have any headroom.
  bool allow_period_adjust = false;
  /// Dilation/contraction step as a fraction of the nominal period: each
  /// engagement moves the live period by this much of spec.period,
  /// clamped to [period, max_period].
  double period_adjust_step = 0.25;
};

class ResourceManager;

/// Observation points the manager exposes to correctness oracles and
/// loggers (src/check's InvariantOracle is the canonical implementation).
/// Every hook fires synchronously at the decision point, with the manager's
/// state already updated, so observers see exactly what the next period
/// will run with. Default implementations ignore everything.
class ManagerObserver {
 public:
  virtual ~ManagerObserver() = default;
  /// EQF budgets were (re)assigned — at construction and after actions.
  virtual void onBudgetsAssigned(const ResourceManager& manager,
                                 const EqfBudgets& budgets) {
    (void)manager;
    (void)budgets;
  }
  /// The monitor flagged candidates for this period (possibly empty).
  virtual void onMonitorActions(const ResourceManager& manager,
                                const std::vector<Action>& actions) {
    (void)manager;
    (void)actions;
  }
  /// An allocator finished a replicate call for `stage` on `rs`.
  virtual void onAllocation(const ResourceManager& manager, std::size_t stage,
                            AllocStatus status, const AllocationContext& ctx,
                            const task::ReplicaSet& rs) {
    (void)manager;
    (void)stage;
    (void)status;
    (void)ctx;
    (void)rs;
  }
  /// A new placement became effective (immediately or after action_latency).
  virtual void onPlacementChanged(const ResourceManager& manager,
                                  const task::Placement& placement) {
    (void)manager;
    (void)placement;
  }
  /// A period completed (or aborted) and was evaluated.
  virtual void onPeriodRecord(const ResourceManager& manager,
                              const task::PeriodRecord& record) {
    (void)manager;
    (void)record;
  }
  /// The elastic period lever moved the live release period (already
  /// applied to the runner when this fires). `dilated` distinguishes a
  /// dilation (forecast rejected replication) from a contraction
  /// (sustained high slack).
  virtual void onPeriodAdjust(const ResourceManager& manager,
                              SimDuration old_period, SimDuration new_period,
                              bool dilated) {
    (void)manager;
    (void)old_period;
    (void)new_period;
    (void)dilated;
  }
};

class ResourceManager {
 public:
  /// `models` drive the EQF estimates (both algorithms); `allocator` is the
  /// strategy under test. The manager owns the task runner; call start().
  ResourceManager(task::Runtime rt, const task::TaskSpec& spec,
                  task::Placement initial, task::TaskRunner::WorkloadFn workload,
                  std::unique_ptr<Allocator> allocator,
                  PredictiveModels models, ManagerConfig config,
                  Xoshiro256 noise_rng);
  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  void start(SimTime first_release);
  void stop();

  /// Failure-detector notification: `dead` has crashed. Scrubs it from
  /// every stage (the next-oldest replica is promoted when the primary
  /// died; a sole replica is re-homed to the least-utilized survivor),
  /// re-runs the allocator's growth loop for affected replicable stages —
  /// dead nodes are masked out of the cluster's utilization index, so
  /// Fig. 5/Fig. 7 only consider survivors — and falls back to load
  /// shedding when the surviving capacity cannot meet the forecast (if
  /// enabled). The repaired placement takes effect immediately, bypassing
  /// action_latency: detection latency is already modelled by the
  /// detector's timeout, and routing new periods to a dead node for
  /// another action_latency would only manufacture misses. No-op if the
  /// node appears in no stage.
  void handleNodeFailure(ProcessorId dead);

  /// Failure-detector notification: a previously-dead node acked again.
  /// The cluster has already unmasked it; the manager only notes the
  /// event — the node re-enters placements through the ordinary
  /// allocation path once its (idle, low) utilization makes it attractive.
  void handleNodeRestart(ProcessorId node);

  /// Joins a shared workload ledger (multi-task deployments): the manager
  /// posts its per-period workload and uses the ledger total in eq.-5
  /// estimates. Must be called before start(); the ledger must outlive the
  /// manager.
  void attachLedger(WorkloadLedger& ledger);
  /// Posts action/miss events to the recorder (optional; must outlive the
  /// manager).
  void attachTrace(sim::TraceRecorder& trace) { trace_ = &trace; }
  /// Attaches an observer (optional, at most one; must outlive the
  /// manager). The observer immediately sees the current budgets.
  void attachObserver(ManagerObserver& observer);
  /// Attaches the structured observability bundle (optional, at most one;
  /// must outlive the manager): every decision — growth-loop step,
  /// monitor action, shed, failover scrub — is posted to its trace ring,
  /// and exportMetrics() publishes into its registry. Also wires the
  /// bundle's trace clock to this manager's simulator. Detached (the
  /// default), every instrumentation site is one null-pointer branch.
  void attachObs(obs::Observability& o);

  /// Decentralized-plane hooks (core::ManagementPlane is the only caller;
  /// all of them default to the centralized behavior when unset).
  ///
  /// Gate consulted before each period's monitor evaluation: when it
  /// returns false the decision half of onRecord is skipped entirely (no
  /// refit, no monitor verdicts, no actions) and the period is counted in
  /// metrics().suppressed_decision_periods — modelling the headless gap
  /// between a manager crash and the standby's takeover.
  void setDecisionGate(std::function<bool()> gate) { gate_ = std::move(gate); }
  /// When true, the per-period tick no longer calls
  /// Cluster::sampleUtilization(): the plane samples partitions privately
  /// and publishes views via gossip instead.
  void setExternalSampling(bool external) { external_sampling_ = external; }
  /// Invoked whenever this manager is about to apply decisions (monitor
  /// actions or a failover repair); the plane stamps decision provenance
  /// (active manager index + election epoch) into the audit trace.
  void setDecisionOwnerFn(std::function<void()> fn) {
    decision_owner_ = std::move(fn);
  }
  /// Called by the plane when a newly elected manager takes over: slack
  /// streaks predate the gap and must not fire immediately, and budgets
  /// are re-derived from the freshly rebuilt view.
  void resumeControl();

  /// Publishes the episode metrics into `reg` under "core." names.
  void exportMetrics(obs::MetricsRegistry& reg) const;

  const EpisodeMetrics& metrics() const { return metrics_; }
  const EqfBudgets& budgets() const { return budgets_; }
  task::TaskRunner& runner() { return *runner_; }
  const task::TaskRunner& runner() const { return *runner_; }
  const task::TaskSpec& spec() const { return spec_; }
  /// The shared ledger, when one is attached (else nullptr).
  const WorkloadLedger* ledger() const { return ledger_; }
  const Allocator& allocator() const { return *allocator_; }
  /// Non-null when online_refit is enabled.
  const ModelRefresher* refresher() const { return refresher_.get(); }
  /// Current load-shed fraction (0 unless allow_load_shedding engaged).
  double shedFraction() const { return shed_fraction_; }
  /// Live release period (== spec().period unless the period-adjustment
  /// lever engaged).
  SimDuration currentPeriod() const { return runner_->currentPeriod(); }
  /// The models currently driving EQF and (for predictive) allocation —
  /// refreshed in place when online_refit is on.
  const PredictiveModels& models() const { return models_; }

 private:
  void onRecord(const task::PeriodRecord& record);
  void onPeriodTick(std::uint64_t tick);
  /// True when the elastic lever has dilation headroom left.
  bool canDilatePeriod() const;
  /// Fig.-5 second lever: dilate the release period one step toward
  /// max_period (forecast rejected replication). Returns true when the
  /// period actually moved (then counts as a placement-relevant change:
  /// budgets are reassigned by the caller).
  bool dilatePeriod(std::size_t stage);
  /// Inverse lever on sustained high slack: contract one step back toward
  /// the nominal period. Returns true when the period moved.
  bool contractPeriod(std::size_t stage);
  /// Applies `new_period` to runner + sampler, records audit/trace/
  /// observer, updates metrics.
  void applyPeriod(SimDuration new_period, std::size_t stage, bool dilated);
  /// Recomputes the EQF budgets from the models at workload `d`, the
  /// current replica counts, and the observed utilizations.
  void reassignBudgets(DataSize d);
  AllocationContext makeContext(DataSize workload) const;
  /// Ledger total when attached, else this task's own workload.
  DataSize totalWorkload(DataSize own) const;
  void trace(sim::TraceCategory cat, const std::string& label, double value);
  /// Posts to the obs trace ring when a bundle is attached; no-op branch
  /// otherwise. (Defined in the .cpp: the header only sees a forward
  /// declaration of Observability.)
  void obsRecord(obs::RecordKind kind, std::uint8_t flags = 0,
                 std::uint16_t stage = 0,
                 std::uint32_t node = obs::kRecordNoNode, double a = 0.0,
                 double b = 0.0, double c = 0.0);

  task::Runtime rt_;
  const task::TaskSpec& spec_;
  std::unique_ptr<Allocator> allocator_;
  PredictiveModels models_;
  ManagerConfig config_;
  SlackMonitor monitor_;
  EqfBudgets budgets_;
  net::NetworkProbe net_probe_;
  std::unique_ptr<task::TaskRunner> runner_;
  std::unique_ptr<sim::PeriodicActivity> sampler_;
  EpisodeMetrics metrics_;
  WorkloadLedger* ledger_ = nullptr;
  WorkloadLedger::TaskId ledger_id_{};
  sim::TraceRecorder* trace_ = nullptr;
  ManagerObserver* observer_ = nullptr;
  obs::Observability* obs_ = nullptr;
  std::unique_ptr<ModelRefresher> refresher_;
  double shed_fraction_ = 0.0;
  std::function<bool()> gate_;
  std::function<void()> decision_owner_;
  bool external_sampling_ = false;
};

}  // namespace rtdrm::core
