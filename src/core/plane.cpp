#include "core/plane.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "core/manager.hpp"
#include "obs/obs.hpp"

namespace rtdrm::core {

ManagementPlane::ManagementPlane(sim::Simulator& simulator,
                                 net::NetworkModel& network,
                                 node::Cluster& cluster, PlaneConfig config)
    : sim_(simulator),
      net_(network),
      cluster_(cluster),
      config_(config),
      ticker_(simulator, config.gossip_interval,
              [this](std::uint64_t) { gossipTick(); }) {
  RTDRM_ASSERT(config_.managers >= 1);
  RTDRM_ASSERT_MSG(config_.managers <= cluster.size(),
                   "more managers than nodes");
  RTDRM_ASSERT(config_.gossip_interval > SimDuration::zero());
  RTDRM_ASSERT_MSG(config_.staleness_bound > config_.gossip_interval,
                   "staleness bound must exceed the gossip interval");
  const std::size_t m = config_.managers;
  up_.assign(m, 1);
  roles_.assign(m, Role::kStandby);
  roles_[0] = Role::kActive;
  active_ = 0;
  send_seq_.assign(m, 0);
  views_.resize(m * m);
  eligible_was_.assign(m, 0);
  enforce_after_.assign(m, SimTime::zero());
}

std::pair<std::size_t, std::size_t> ManagementPlane::partitionOf(
    std::uint32_t manager) const {
  // Balanced node blocks via the same floor(i*M/N) mapping the sharded
  // engine uses for its node shards: node i belongs to manager i*M/N.
  const std::size_t n = cluster_.size();
  const std::size_t m = config_.managers;
  const std::size_t lo = (manager * n + m - 1) / m;
  const std::size_t hi = ((manager + 1) * n + m - 1) / m;
  return {lo, hi};
}

ProcessorId ManagementPlane::hostOf(std::uint32_t manager) const {
  return ProcessorId{static_cast<std::uint32_t>(partitionOf(manager).first)};
}

bool ManagementPlane::endpointReachable(std::uint32_t manager) const {
  return up_[manager] != 0 && cluster_.isUp(hostOf(manager));
}

std::size_t ManagementPlane::activeCount() const {
  std::size_t n = 0;
  for (const Role r : roles_) {
    n += r == Role::kActive ? 1 : 0;
  }
  return n;
}

void ManagementPlane::adopt(ResourceManager& manager) {
  RTDRM_ASSERT_MSG(manager_ == nullptr, "plane already adopted a manager");
  manager_ = &manager;
  if (!enabled()) {
    // Centralized: install nothing at all — the manager keeps sampling the
    // cluster itself and no gate/provenance hook ever runs, so the episode
    // is bit-for-bit identical to a build without the plane.
    return;
  }
  manager.setExternalSampling(true);
  manager.setDecisionGate([this] {
    if (decisionsAllowed()) {
      return true;
    }
    obsRecord(obs::RecordKind::kDecisionSuppressed, obs::kRecordNoNode,
              active_ == kNoManager ? -1.0 : static_cast<double>(active_));
    return false;
  });
  manager.setDecisionOwnerFn([this] {
    obsRecord(obs::RecordKind::kDecisionOwner, obs::kRecordNoNode,
              static_cast<double>(active_), static_cast<double>(epoch_));
  });
}

void ManagementPlane::start(SimTime at) {
  if (!enabled()) {
    return;
  }
  RTDRM_ASSERT_MSG(manager_ != nullptr, "adopt() a manager before start()");
  running_ = true;
  std::fill(eligible_was_.begin(), eligible_was_.end(), 0);
  active_was_reachable_ = true;
  ticker_.start(at);
}

void ManagementPlane::stop() {
  if (!enabled() || !running_) {
    return;
  }
  running_ = false;
  closeGap();
  ticker_.stop();
}

void ManagementPlane::setManagerUp(std::uint32_t manager, bool up) {
  RTDRM_ASSERT(manager < config_.managers);
  if ((up_[manager] != 0) == up) {
    return;
  }
  up_[manager] = up ? 1 : 0;
  if (!up && manager == active_) {
    // Decisions stop the instant the active dies; the gap runs until a
    // standby is elected (detection latency included, by construction).
    openGap();
  }
  // A restarted endpoint resumes gossiping on the next round; it rejoins
  // the election candidate pool only once the detector sees its acks
  // (onManagerRecovered) — belief, not ground truth, drives elections.
}

void ManagementPlane::onManagerSuspected(std::uint32_t manager) {
  RTDRM_ASSERT(manager < config_.managers);
  obsRecord(obs::RecordKind::kManagerDown, hostOf(manager).value,
            static_cast<double>(manager));
  roles_[manager] = Role::kDown;
  if (manager == active_) {
    elect();
  }
}

void ManagementPlane::onManagerRecovered(std::uint32_t manager) {
  RTDRM_ASSERT(manager < config_.managers);
  obsRecord(obs::RecordKind::kManagerRestart, hostOf(manager).value,
            static_cast<double>(manager));
  if (roles_[manager] == Role::kDown) {
    roles_[manager] = Role::kStandby;
  }
  if (active_ == kNoManager) {
    // The plane was headless; the rejoined standby can take over.
    elect();
  }
}

void ManagementPlane::elect() {
  std::uint32_t candidate = kNoManager;
  for (std::uint32_t m = 0; m < config_.managers; ++m) {
    if (roles_[m] != Role::kDown && up_[m] != 0 &&
        cluster_.isUp(hostOf(m)) && m != active_) {
      candidate = m;
      break;
    }
  }
  const std::uint32_t old = active_;
  if (candidate == kNoManager) {
    // Headless: nobody may decide until an endpoint rejoins.
    if (old != kNoManager) {
      openGap();
    }
    active_ = kNoManager;
    RTDRM_LOG(kDebug) << "plane: headless (no electable standby)";
    return;
  }
  ++epoch_;
  ++elections_;
  active_ = candidate;
  roles_[candidate] = Role::kActive;
  RTDRM_LOG(kDebug) << "plane: manager " << candidate
                    << " elected active (epoch " << epoch_ << ")";
  obsRecord(obs::RecordKind::kElection, hostOf(candidate).value,
            static_cast<double>(epoch_), static_cast<double>(candidate));

  // The new active rebuilds the published cluster view from the summaries
  // it accumulated as a standby (gossip replay) and takes over the ledger
  // record carried by the freshest one.
  SimTime freshest = SimTime::zero();
  for (std::uint32_t origin = 0; origin < config_.managers; ++origin) {
    const ViewRow& row = views_[candidate * config_.managers + origin];
    if (row.seq == 0) {
      continue;
    }
    publishRow(origin, row);
    if (row.sampled_at >= freshest) {
      freshest = row.sampled_at;
      rebuilt_ledger_tracks_ = row.ledger_tracks;
    }
  }
  // The takeover gets one staleness bound to converge its view before the
  // oracle enforces the bound again.
  const SimTime grace = sim_.now() + config_.staleness_bound;
  std::fill(enforce_after_.begin(), enforce_after_.end(), grace);
  std::fill(eligible_was_.begin(), eligible_was_.end(), 1);
  active_was_reachable_ = true;

  closeGap();
  if (manager_ != nullptr) {
    manager_->resumeControl();
  }
  drainPendingFailures();
}

void ManagementPlane::openGap() {
  if (!gap_open_) {
    gap_open_ = true;
    gap_since_ = sim_.now();
  }
}

void ManagementPlane::closeGap() {
  if (gap_open_) {
    decision_gap_ms_ += (sim_.now() - gap_since_).ms();
    gap_open_ = false;
  }
}

void ManagementPlane::handleNodeFailure(ProcessorId dead) {
  if (decisionsAllowed() && manager_ != nullptr) {
    manager_->handleNodeFailure(dead);
    return;
  }
  // Nobody owns decisions right now: remember the death; the next elected
  // manager repairs placements for nodes still down at takeover.
  if (std::find(pending_failures_.begin(), pending_failures_.end(), dead) ==
      pending_failures_.end()) {
    pending_failures_.push_back(dead);
  }
}

void ManagementPlane::handleNodeRestart(ProcessorId node) {
  if (decisionsAllowed() && manager_ != nullptr) {
    manager_->handleNodeRestart(node);
  }
}

void ManagementPlane::drainPendingFailures() {
  if (manager_ == nullptr) {
    pending_failures_.clear();
    return;
  }
  for (const ProcessorId p : pending_failures_) {
    // A node that restarted during the gap needs no repair (and the
    // manager asserts the node is masked when handling a failure).
    if (!cluster_.isUp(p)) {
      manager_->handleNodeFailure(p);
    }
  }
  pending_failures_.clear();
}

void ManagementPlane::gossipTick() {
  ++gossip_rounds_;
  for (std::uint32_t m = 0; m < config_.managers; ++m) {
    if (endpointReachable(m)) {
      broadcast(m);
    }
  }
}

void ManagementPlane::broadcast(std::uint32_t origin) {
  const auto [lo, hi] = partitionOf(origin);
  cluster_.samplePartitionInto(lo, hi, sample_scratch_);

  net::PartitionSummary summary;
  summary.manager = origin;
  summary.epoch = epoch_;
  summary.seq = ++send_seq_[origin];
  summary.sampled_at = sim_.now();
  summary.first_node = static_cast<std::uint32_t>(lo);
  summary.utilization.resize(hi - lo);
  for (std::size_t i = 0; i < hi - lo; ++i) {
    summary.utilization[i] = sample_scratch_[i].value();
  }
  summary.ledger_tracks = currentLedgerTracks();
  obsRecord(obs::RecordKind::kGossipRound, hostOf(origin).value,
            static_cast<double>(origin), static_cast<double>(summary.seq));

  // The origin's own view never crosses the wire.
  receive(origin, summary);

  const Bytes wire = net::gossipWireBytes(config_.gossip_base_bytes,
                                          config_.gossip_per_node_bytes,
                                          hi - lo);
  for (std::uint32_t r = 0; r < config_.managers; ++r) {
    if (r == origin) {
      continue;
    }
    net::Message msg;
    msg.src = hostOf(origin);
    msg.dst = hostOf(r);
    msg.payload = wire;
    msg.tag = "gossip";
    // Liveness at *delivery*: a receiver that died (or whose host node
    // died) while the summary was on the wire never sees it.
    msg.on_delivered = [this, r, summary](const net::MessageReceipt&) {
      if (endpointReachable(r)) {
        receive(r, summary);
      }
    };
    net_.send(std::move(msg));
    ++gossip_messages_sent_;
  }
}

void ManagementPlane::receive(std::uint32_t receiver,
                              const net::PartitionSummary& summary) {
  ViewRow& row = views_[receiver * config_.managers + summary.manager];
  if (summary.seq <= row.seq) {
    return;  // reordered or duplicated: the newer summary already landed
  }
  row.seq = summary.seq;
  row.sampled_at = summary.sampled_at;
  row.utilization = summary.utilization;
  row.ledger_tracks = summary.ledger_tracks;
  ++summaries_applied_;
  if (receiver == active_ && decisionsAllowed()) {
    publishRow(summary.manager, row);
    obsRecord(obs::RecordKind::kGossipApply, obs::kRecordNoNode,
              static_cast<double>(summary.manager),
              static_cast<double>(summary.seq),
              (sim_.now() - summary.sampled_at).ms());
  }
}

void ManagementPlane::publishRow(std::uint32_t origin, const ViewRow& row) {
  const auto [lo, hi] = partitionOf(origin);
  RTDRM_ASSERT(row.utilization.size() == hi - lo);
  for (std::size_t i = 0; i < row.utilization.size(); ++i) {
    cluster_.applyGossipSample(
        ProcessorId{static_cast<std::uint32_t>(lo + i)},
        Utilization::fraction(row.utilization[i]));
  }
}

double ManagementPlane::worstViewAgeMs() const {
  if (!enabled() || !running_) {
    return 0.0;
  }
  if (!decisionsAllowed()) {
    // The gap: nobody decides, so nothing to bound — but the view also
    // cannot refresh (a downed active neither broadcasts nor receives), so
    // whoever owns decisions next gets a fresh grace window. This covers
    // the active endpoint crashing and restarting *without* an election in
    // between: the rows it left behind are one outage old.
    active_was_reachable_ = false;
    return 0.0;
  }
  const SimTime now = sim_.now();
  if (!cluster_.isUp(hostOf(active_))) {
    // The active's host is off the wire: its view cannot refresh, and the
    // manager detector is what will resolve this (declare + elect). The
    // window until then is excused, with a fresh grace once reachable.
    active_was_reachable_ = false;
    return 0.0;
  }
  if (!active_was_reachable_) {
    active_was_reachable_ = true;
    const SimTime grace = now + config_.staleness_bound;
    std::fill(enforce_after_.begin(), enforce_after_.end(), grace);
  }
  double worst = 0.0;
  for (std::uint32_t m = 0; m < config_.managers; ++m) {
    if (!endpointReachable(m)) {
      // A dead origin stops gossiping by design; its partition's decay is
      // the failure detector's problem, not a staleness violation.
      eligible_was_[m] = 0;
      continue;
    }
    if (eligible_was_[m] == 0) {
      // Up-edge (start, endpoint restart, or host-node restart): one
      // bound of grace to get a summary onto the wire and delivered.
      eligible_was_[m] = 1;
      enforce_after_[m] = now + config_.staleness_bound;
    }
    if (now < enforce_after_[m]) {
      continue;
    }
    const ViewRow& row = views_[active_ * config_.managers + m];
    worst = std::max(worst, (now - row.sampled_at).ms());
  }
  max_staleness_observed_ms_ = std::max(max_staleness_observed_ms_, worst);
  return worst;
}

double ManagementPlane::currentLedgerTracks() const {
  if (manager_ == nullptr) {
    return 0.0;
  }
  return manager_->runner().currentWorkload().count();
}

void ManagementPlane::attachObs(obs::Observability& o) {
  RTDRM_ASSERT_MSG(obs_ == nullptr, "observability already attached");
  obs_ = &o;
}

void ManagementPlane::obsRecord(obs::RecordKind kind, std::uint32_t node,
                                double a, double b, double c) const {
  if (obs_ != nullptr) {
    obs_->trace.record(kind, 0, 0, node, a, b, c);
  }
}

void ManagementPlane::exportMetrics(obs::MetricsRegistry& reg) const {
  reg.counter("plane.gossip_rounds").set(gossip_rounds_);
  reg.counter("plane.gossip_messages_sent").set(gossip_messages_sent_);
  reg.counter("plane.summaries_applied").set(summaries_applied_);
  reg.counter("plane.elections").set(elections_);
  reg.counter("plane.epoch").set(epoch_);
  reg.gauge("plane.decision_gap_ms").set(decision_gap_ms_);
  reg.gauge("plane.max_staleness_observed_ms")
      .set(max_staleness_observed_ms_);
  reg.gauge("plane.managers").set(static_cast<double>(config_.managers));
}

}  // namespace rtdrm::core
