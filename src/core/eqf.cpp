#include "core/eqf.hpp"

#include "common/assert.hpp"

namespace rtdrm::core {

namespace {

double validatedTotal(const EqfInput& input) {
  const std::size_t n = input.eex_ms.size();
  RTDRM_ASSERT_MSG(n >= 1, "EQF needs at least one subtask");
  RTDRM_ASSERT_MSG(input.ecd_ms.size() == n - 1,
                   "EQF needs exactly n-1 message estimates");
  RTDRM_ASSERT(input.deadline_ms > 0.0);
  double total = 0.0;
  for (double e : input.eex_ms) {
    RTDRM_ASSERT(e >= 0.0);
    total += e;
  }
  for (double c : input.ecd_ms) {
    RTDRM_ASSERT(c >= 0.0);
    total += c;
  }
  RTDRM_ASSERT_MSG(total > 0.0, "EQF: all estimates are zero");
  return total;
}

/// Lays out budgets from a per-element function of the raw estimate.
template <typename BudgetFn>
EqfBudgets layout(const EqfInput& input, double flexibility, BudgetFn fn) {
  const std::size_t n = input.eex_ms.size();
  EqfBudgets out;
  out.flexibility = flexibility;
  out.subtask_ms.resize(n);
  out.message_ms.resize(n - 1);
  out.subtask_abs_ms.resize(n);
  double cursor = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.subtask_ms[i] = fn(input.eex_ms[i]);
    cursor += out.subtask_ms[i];
    out.subtask_abs_ms[i] = cursor;
    if (i + 1 < n) {
      out.message_ms[i] = fn(input.ecd_ms[i]);
      cursor += out.message_ms[i];
    }
  }
  return out;
}

}  // namespace

EqfBudgets assignEqf(const EqfInput& input) {
  const double total = validatedTotal(input);
  const double ratio = input.deadline_ms / total;
  return layout(input, ratio, [ratio](double est) { return est * ratio; });
}

EqfBudgets assignBudgets(const EqfInput& input, DeadlineStrategy strategy) {
  if (strategy == DeadlineStrategy::kEqf) {
    return assignEqf(input);
  }
  // EQS: equal absolute slack per element. Elements with zero estimate are
  // excluded from the split (they represent nonexistent work, e.g. a free
  // message) so real elements keep the whole surplus.
  const double total = validatedTotal(input);
  const double slack = input.deadline_ms - total;
  if (slack < 0.0) {
    return assignEqf(input);  // proportional compression fallback
  }
  std::size_t elements = 0;
  for (double e : input.eex_ms) {
    elements += e > 0.0 ? 1 : 0;
  }
  for (double c : input.ecd_ms) {
    elements += c > 0.0 ? 1 : 0;
  }
  RTDRM_ASSERT(elements > 0);
  const double share = slack / static_cast<double>(elements);
  EqfBudgets out = layout(input, input.deadline_ms / total,
                          [share](double est) {
                            return est > 0.0 ? est + share : 0.0;
                          });
  return out;
}

}  // namespace rtdrm::core
