#include "core/manager.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/obs.hpp"

namespace rtdrm::core {

ResourceManager::ResourceManager(task::Runtime rt, const task::TaskSpec& spec,
                                 task::Placement initial,
                                 task::TaskRunner::WorkloadFn workload,
                                 std::unique_ptr<Allocator> allocator,
                                 PredictiveModels models, ManagerConfig config,
                                 Xoshiro256 noise_rng)
    : rt_(rt),
      spec_(spec),
      allocator_(std::move(allocator)),
      models_(std::move(models)),
      config_(config),
      monitor_(spec_, config.monitor),
      net_probe_(rt.sim, rt.net) {
  RTDRM_ASSERT(allocator_ != nullptr);
  RTDRM_ASSERT_MSG(models_.exec.size() == spec_.stageCount(),
                   "need one execution model per subtask for EQF");

  // Wrap the workload source so each release is also posted to the shared
  // ledger (when attached) — eq. 5 needs every task's current workload.
  task::TaskRunner::WorkloadFn wrapped =
      [this, fn = std::move(workload)](std::uint64_t c) {
        // Load shedding (when engaged) drops a fraction of the offered
        // stream before it enters the pipeline.
        const DataSize d = fn(c) * (1.0 - shed_fraction_);
        if (ledger_ != nullptr) {
          ledger_->post(ledger_id_, d);
        }
        return d;
      };
  runner_ = std::make_unique<task::TaskRunner>(
      rt_, spec_, std::move(initial), std::move(wrapped), noise_rng,
      config_.pipeline,
      [this](const task::PeriodRecord& rec) { onRecord(rec); });

  metrics_.stages.resize(spec_.stageCount());

  if (config_.online_refit) {
    if (config_.refit.per_node) {
      config_.refit.node_count = rt_.cluster.size();
      models_.exec_overrides.assign(
          spec_.stageCount(),
          std::vector<std::optional<regress::ExecLatencyModel>>(
              rt_.cluster.size()));
    }
    refresher_ =
        std::make_unique<ModelRefresher>(spec_, models_, config_.refit);
  }

  // Initial EQF assignment from the assumed initial operating conditions.
  reassignBudgets(config_.d_init);

  sampler_ = std::make_unique<sim::PeriodicActivity>(
      rt_.sim, spec_.period, [this](std::uint64_t t) { onPeriodTick(t); });
}

void ResourceManager::start(SimTime first_release) {
  // Sample just before each release so allocation decisions in period c see
  // utilizations measured over period c-1.
  runner_->start(first_release);
  sampler_->start(first_release + spec_.period - SimDuration::micros(1.0));
}

void ResourceManager::stop() {
  runner_->stop();
  sampler_->stop();
}

void ResourceManager::attachObserver(ManagerObserver& observer) {
  RTDRM_ASSERT_MSG(observer_ == nullptr, "observer already attached");
  observer_ = &observer;
  observer_->onBudgetsAssigned(*this, budgets_);
}

void ResourceManager::attachObs(obs::Observability& o) {
  RTDRM_ASSERT_MSG(obs_ == nullptr, "observability already attached");
  obs_ = &o;
  obs_->trace.setClock([this] { return rt_.sim.now().ms(); });
}

void ResourceManager::obsRecord(obs::RecordKind kind, std::uint8_t flags,
                                std::uint16_t stage, std::uint32_t node,
                                double a, double b, double c) {
  if (obs_ != nullptr) {
    obs_->trace.record(kind, flags, stage, node, a, b, c);
  }
}

void ResourceManager::exportMetrics(obs::MetricsRegistry& reg) const {
  reg.counter("core.periods_observed").set(metrics_.missed_deadlines.total());
  reg.counter("core.missed_deadlines").set(metrics_.missed_deadlines.hits());
  reg.counter("core.replicate_actions").set(metrics_.replicate_actions);
  reg.counter("core.shutdown_actions").set(metrics_.shutdown_actions);
  reg.counter("core.allocation_failures").set(metrics_.allocation_failures);
  reg.counter("core.node_failures_handled")
      .set(metrics_.node_failures_handled);
  reg.counter("core.failover_replacements")
      .set(metrics_.failover_replacements);
  reg.counter("core.recovery_allocation_failures")
      .set(metrics_.recovery_allocation_failures);
  reg.counter("core.suppressed_decision_periods")
      .set(metrics_.suppressed_decision_periods);
  reg.gauge("core.shed_fraction").set(shed_fraction_);
  if (config_.allow_period_adjust) {
    // Gated: the export set (and any digest over it) is unchanged unless
    // the period-adjustment extension is switched on.
    reg.counter("core.period_dilations").set(metrics_.period_dilations);
    reg.counter("core.period_contractions").set(metrics_.period_contractions);
    reg.gauge("core.period_scale")
        .set(runner_->currentPeriod() / spec_.period);
  }
  reg.gauge("core.mean_cpu_utilization").set(metrics_.cpu_utilization.mean());
  reg.gauge("core.mean_net_utilization").set(metrics_.net_utilization.mean());
  reg.gauge("core.mean_replicas_per_subtask")
      .set(metrics_.replicas_per_subtask.mean());
}

void ResourceManager::attachLedger(WorkloadLedger& ledger) {
  RTDRM_ASSERT_MSG(ledger_ == nullptr, "ledger already attached");
  ledger_ = &ledger;
  ledger_id_ = ledger.registerTask(spec_.name);
}

DataSize ResourceManager::totalWorkload(DataSize own) const {
  if (ledger_ == nullptr) {
    return own;
  }
  // The ledger carries this task's own posting too; use whichever is
  // fresher for our component.
  DataSize total = DataSize::zero();
  for (std::size_t t = 0; t < ledger_->taskCount(); ++t) {
    total += t == ledger_id_.value
                 ? own
                 : ledger_->posted(WorkloadLedger::TaskId{t});
  }
  return total;
}

void ResourceManager::trace(sim::TraceCategory cat, const std::string& label,
                            double value) {
  if (trace_ != nullptr) {
    trace_->record(rt_.sim.now(), cat, spec_.name + "/" + label, value);
  }
}

void ResourceManager::onPeriodTick(std::uint64_t) {
  if (config_.sample_cluster && !external_sampling_) {
    rt_.cluster.sampleUtilization();
  }
  metrics_.cpu_utilization.add(rt_.cluster.meanUtilization().value());
  metrics_.net_utilization.add(net_probe_.sample().value());

  metrics_.shed_fraction.add(shed_fraction_);
  metrics_.period_scale.add(runner_->currentPeriod() / spec_.period);

  // Mean replica count across the replicable stages.
  double replicas = 0.0;
  double replicable = 0.0;
  const task::Placement& placement = runner_->placement();
  for (std::size_t i = 0; i < spec_.stageCount(); ++i) {
    if (spec_.subtasks[i].replicable) {
      replicas += static_cast<double>(placement.stage(i).size());
      replicable += 1.0;
    }
  }
  if (replicable > 0.0) {
    metrics_.replicas_per_subtask.add(replicas / replicable);
  }
}

void ResourceManager::onRecord(const task::PeriodRecord& record) {
  if (observer_ != nullptr) {
    observer_->onPeriodRecord(*this, record);
  }
  const bool missed = record.missed(spec_.deadline);
  metrics_.missed_deadlines.add(missed);
  if (missed) {
    trace(sim::TraceCategory::kMiss,
          "period " + std::to_string(record.period_index),
          record.endToEnd().ms());
    obsRecord(obs::RecordKind::kMiss, 0, 0, obs::kRecordNoNode,
              record.endToEnd().ms(),
              static_cast<double>(record.period_index));
  }
  if (record.completed) {
    metrics_.end_to_end_ms.add(record.endToEnd().ms());
    metrics_.end_to_end_hist.add(record.endToEnd().ms());
    if (obs_ != nullptr) {
      obs_->metrics.histogram("core.end_to_end_ms")
          .observe(record.endToEnd().ms());
    }
    for (std::size_t i = 0; i < record.stages.size(); ++i) {
      if (record.stages[i].completed) {
        metrics_.stages[i].latency_ms.add(
            record.stages[i].measured_latency.ms());
      }
    }
  }

  // Decentralized-plane gate: with no live decision owner, this period's
  // adaptive half never happens — a dead manager neither refits models nor
  // evaluates the monitor. Accounting above still ran: the workload keeps
  // flowing (and missing) through the gap; only decisions stop.
  if (gate_ != nullptr && !gate_()) {
    ++metrics_.suppressed_decision_periods;
    return;
  }

  if (refresher_ != nullptr) {
    // A-posteriori model refinement: every completed stage is one
    // (share, utilization, latency) observation of eq. 3.
    bool any_refreshed = false;
    for (std::size_t i = 0; i < record.stages.size(); ++i) {
      const task::StageRecord& st = record.stages[i];
      if (!st.completed || st.replicas == 0) {
        continue;
      }
      const double share =
          record.workload.hundreds() / static_cast<double>(st.replicas);
      const double u =
          rt_.cluster.lastUtilization(st.worst_exec_node).value();
      if (refresher_->observe(i, st.worst_exec_node, share, u,
                              st.worst_exec.ms())) {
        models_.exec[i] = refresher_->current(i);
        any_refreshed = true;
      }
      if (config_.refit.per_node) {
        auto node_model = refresher_->currentForNode(i, st.worst_exec_node);
        if (node_model.has_value()) {
          models_.exec_overrides[i][st.worst_exec_node.value] =
              std::move(node_model);
          any_refreshed = true;
        }
      }
    }
    if (any_refreshed) {
      allocator_->onModelsRefreshed(models_);
    }
  }

  task::Placement placement = runner_->placement();
  const std::vector<Action> actions =
      monitor_.evaluate(record, budgets_, placement);
  if (observer_ != nullptr) {
    observer_->onMonitorActions(*this, actions);
  }
  if (actions.empty()) {
    return;
  }
  if (decision_owner_ != nullptr) {
    decision_owner_();
  }

  const DataSize workload = runner_->currentWorkload();
  bool changed = false;
  for (const Action& a : actions) {
    task::ReplicaSet& rs = placement.stage(a.stage);
    obsRecord(obs::RecordKind::kMonitorAction,
              a.kind == ActionKind::kReplicate ? obs::kFlagAccept
                                               : std::uint8_t{0},
              static_cast<std::uint16_t>(a.stage));
    if (a.kind == ActionKind::kReplicate) {
      if (rs.size() >= rt_.cluster.size()) {
        ++metrics_.allocation_failures;  // already at max concurrency
        obsRecord(obs::RecordKind::kAllocFailure, 0,
                  static_cast<std::uint16_t>(a.stage));
        // Replication is off the table; slow the release rate within the
        // task's elastic bounds before degrading quality by shedding.
        if (dilatePeriod(a.stage)) {
          changed = true;
        } else if (config_.allow_load_shedding &&
                   shed_fraction_ < config_.max_shed) {
          shed_fraction_ = std::min(config_.max_shed,
                                    shed_fraction_ + config_.shed_step);
          trace(sim::TraceCategory::kCustom, "shed", shed_fraction_);
          obsRecord(obs::RecordKind::kShed, 0,
                    static_cast<std::uint16_t>(a.stage), obs::kRecordNoNode,
                    shed_fraction_);
          changed = true;
        }
        continue;
      }
      const AllocationContext ctx = makeContext(workload);
      const AllocStatus status = allocator_->replicate(ctx, a.stage, rs);
      if (observer_ != nullptr) {
        observer_->onAllocation(*this, a.stage, status, ctx, rs);
      }
      if (status == AllocStatus::kFailure) {
        ++metrics_.allocation_failures;
        obsRecord(obs::RecordKind::kAllocFailure, 0,
                  static_cast<std::uint16_t>(a.stage));
        // The eq.-5/eq.-6 forecast rejected replication: dilate the period
        // toward max_period first — trading rate costs nothing dropped —
        // and only shed once the elastic bound is exhausted.
        if (dilatePeriod(a.stage)) {
          changed = true;
        } else if (config_.allow_load_shedding &&
                   shed_fraction_ < config_.max_shed) {
          // Even full replication cannot hold the budget: degrade quality
          // instead of missing outright (imprecise computation).
          shed_fraction_ = std::min(config_.max_shed,
                                    shed_fraction_ + config_.shed_step);
          trace(sim::TraceCategory::kCustom, "shed", shed_fraction_);
          obsRecord(obs::RecordKind::kShed, 0,
                    static_cast<std::uint16_t>(a.stage), obs::kRecordNoNode,
                    shed_fraction_);
          changed = true;
        }
      }
      if (status != AllocStatus::kNoChange) {
        ++metrics_.replicate_actions;
        ++metrics_.stages[a.stage].replicate_actions;
        changed = true;
        trace(sim::TraceCategory::kReplicate,
              spec_.subtasks[a.stage].name,
              static_cast<double>(rs.size()));
        obsRecord(obs::RecordKind::kReplicate, 0,
                  static_cast<std::uint16_t>(a.stage), obs::kRecordNoNode,
                  static_cast<double>(rs.size()));
      }
      RTDRM_LOG(kDebug) << allocator_->name() << ": stage " << a.stage
                        << " -> " << rs.size() << " replicas";
    } else if (config_.allow_load_shedding && shed_fraction_ > 0.0) {
      // Quality comes back before resources go: high slack first unwinds
      // the shed fraction, and only then releases replicas.
      shed_fraction_ = std::max(0.0, shed_fraction_ - config_.shed_step);
      trace(sim::TraceCategory::kCustom, "shed", shed_fraction_);
      obsRecord(obs::RecordKind::kShed, 0,
                static_cast<std::uint16_t>(a.stage), obs::kRecordNoNode,
                shed_fraction_);
      changed = true;
    } else if (contractPeriod(a.stage)) {
      // Levers unwind in reverse engagement order: shedding was the last
      // resort, so it clears first; then the rate recovers toward the
      // spec period; only then are replicas released.
      changed = true;
    } else {
      // Fig. 6 (or the selective-eviction extension): drop one replica.
      if (rs.size() > 1) {
        const ProcessorId victim = selectShutdownVictim(
            rs, rt_.cluster, config_.shutdown_selection);
        rs.remove(victim);
        ++metrics_.shutdown_actions;
        ++metrics_.stages[a.stage].shutdown_actions;
        changed = true;
        trace(sim::TraceCategory::kShutdown, spec_.subtasks[a.stage].name,
              static_cast<double>(rs.size()));
        obsRecord(obs::RecordKind::kShutdown, 0,
                  static_cast<std::uint16_t>(a.stage), victim.value,
                  static_cast<double>(rs.size()));
        RTDRM_LOG(kDebug) << "shutdown: stage " << a.stage << " -> "
                          << rs.size() << " replicas";
      }
    }
  }

  if (changed) {
    if (config_.action_latency > SimDuration::zero()) {
      // Decisions propagate and replicas spawn; the new placement only
      // becomes effective after the control-plane latency.
      rt_.sim.scheduleAfter(
          config_.action_latency, [this, placement, workload] {
            runner_->setPlacement(placement);
            obsRecord(obs::RecordKind::kPlacementChanged);
            if (observer_ != nullptr) {
              observer_->onPlacementChanged(*this, runner_->placement());
            }
            reassignBudgets(workload);
          });
      return;
    }
    runner_->setPlacement(placement);
    obsRecord(obs::RecordKind::kPlacementChanged);
    if (observer_ != nullptr) {
      observer_->onPlacementChanged(*this, runner_->placement());
    }
    // §4.1: subtask deadlines are re-assigned after every resource
    // management action, now at the *current* operating conditions.
    reassignBudgets(workload);
  }
}

void ResourceManager::handleNodeFailure(ProcessorId dead) {
  RTDRM_ASSERT(dead.value < rt_.cluster.size());
  RTDRM_ASSERT_MSG(!rt_.cluster.isUp(dead),
                   "failure handling requires the node already masked");
  obsRecord(obs::RecordKind::kNodeDown, 0, 0, dead.value);
  task::Placement placement = runner_->placement();
  const DataSize workload = runner_->currentWorkload();
  bool touched = false;

  for (std::size_t i = 0; i < spec_.stageCount(); ++i) {
    task::ReplicaSet& rs = placement.stage(i);
    if (!rs.contains(dead)) {
      continue;
    }
    touched = true;
    ++metrics_.failover_replacements;
    obsRecord(obs::RecordKind::kFailoverScrub, 0,
              static_cast<std::uint16_t>(i), dead.value,
              static_cast<double>(rs.size()));
    if (rs.size() == 1) {
      // Sole replica died: re-home to the least-utilized survivor before
      // dropping the dead node (the set may never go empty). The survivor
      // becomes the new primary.
      const auto substitute = rt_.cluster.leastUtilized(rs.nodes());
      if (!substitute) {
        // No surviving capacity at all; leave the stage stranded — every
        // period aborts at cutoff until a node restarts.
        ++metrics_.allocation_failures;
        ++metrics_.recovery_allocation_failures;
        obsRecord(obs::RecordKind::kAllocFailure, 0,
                  static_cast<std::uint16_t>(i));
        continue;
      }
      rs.add(*substitute);
    }
    rs.remove(dead);  // promotes the next-oldest replica if dead led

    if (!spec_.subtasks[i].replicable) {
      continue;
    }
    // Re-run the growth loop so the surviving set again meets the
    // forecast. The dead node is masked out of the utilization index, so
    // the allocator only ever sees survivors.
    if (rs.size() >= rt_.cluster.upCount()) {
      ++metrics_.allocation_failures;  // already on every survivor
      ++metrics_.recovery_allocation_failures;
      obsRecord(obs::RecordKind::kAllocFailure, 0,
                static_cast<std::uint16_t>(i));
      // Survivor capacity is exhausted: slow the release rate before
      // dropping data (same lever order as the steady-state loop).
      if (!dilatePeriod(i) && config_.allow_load_shedding &&
          shed_fraction_ < config_.max_shed) {
        shed_fraction_ =
            std::min(config_.max_shed, shed_fraction_ + config_.shed_step);
        trace(sim::TraceCategory::kCustom, "shed", shed_fraction_);
        obsRecord(obs::RecordKind::kShed, 0, static_cast<std::uint16_t>(i),
                  obs::kRecordNoNode, shed_fraction_);
      }
      continue;
    }
    const AllocationContext ctx = makeContext(workload);
    const AllocStatus status = allocator_->replicate(ctx, i, rs);
    if (observer_ != nullptr) {
      observer_->onAllocation(*this, i, status, ctx, rs);
    }
    if (status == AllocStatus::kFailure) {
      ++metrics_.allocation_failures;
      ++metrics_.recovery_allocation_failures;
      obsRecord(obs::RecordKind::kAllocFailure, 0,
                static_cast<std::uint16_t>(i));
      if (!dilatePeriod(i) && config_.allow_load_shedding &&
          shed_fraction_ < config_.max_shed) {
        // Survivors cannot absorb the lost capacity: degrade quality
        // instead of missing outright (graceful degradation).
        shed_fraction_ =
            std::min(config_.max_shed, shed_fraction_ + config_.shed_step);
        trace(sim::TraceCategory::kCustom, "shed", shed_fraction_);
        obsRecord(obs::RecordKind::kShed, 0, static_cast<std::uint16_t>(i),
                  obs::kRecordNoNode, shed_fraction_);
      }
    }
    if (status != AllocStatus::kNoChange) {
      ++metrics_.replicate_actions;
      ++metrics_.stages[i].replicate_actions;
      trace(sim::TraceCategory::kReplicate, spec_.subtasks[i].name,
            static_cast<double>(rs.size()));
      obsRecord(obs::RecordKind::kReplicate, 0,
                static_cast<std::uint16_t>(i), obs::kRecordNoNode,
                static_cast<double>(rs.size()));
    }
  }

  if (!touched) {
    return;
  }
  if (decision_owner_ != nullptr) {
    decision_owner_();
  }
  ++metrics_.node_failures_handled;
  trace(sim::TraceCategory::kCustom, "failover",
        static_cast<double>(dead.value));
  runner_->setPlacement(placement);
  obsRecord(obs::RecordKind::kPlacementChanged, 0, 0, dead.value);
  if (observer_ != nullptr) {
    observer_->onPlacementChanged(*this, runner_->placement());
  }
  // Slack history predates the failure; stale streaks must not trigger a
  // shutdown right after capacity was lost.
  monitor_.resetStreaks();
  reassignBudgets(workload);
}

void ResourceManager::resumeControl() {
  // Slack history predates the gap; stale streaks must not fire a
  // shutdown/replicate on the new owner's first period. Budgets are
  // re-derived from the view the standby just rebuilt from gossip.
  monitor_.resetStreaks();
  reassignBudgets(runner_->currentWorkload());
}

void ResourceManager::handleNodeRestart(ProcessorId node) {
  trace(sim::TraceCategory::kCustom, "restart",
        static_cast<double>(node.value));
  obsRecord(obs::RecordKind::kNodeRestart, 0, 0, node.value);
}

bool ResourceManager::canDilatePeriod() const {
  return config_.allow_period_adjust &&
         runner_->currentPeriod() < spec_.effectiveMaxPeriod();
}

bool ResourceManager::dilatePeriod(std::size_t stage) {
  if (!canDilatePeriod()) {
    return false;
  }
  const SimDuration step = spec_.period * config_.period_adjust_step;
  const SimDuration next =
      std::min(spec_.effectiveMaxPeriod(), runner_->currentPeriod() + step);
  if (next <= runner_->currentPeriod()) {
    return false;
  }
  applyPeriod(next, stage, /*dilated=*/true);
  return true;
}

bool ResourceManager::contractPeriod(std::size_t stage) {
  if (!config_.allow_period_adjust ||
      runner_->currentPeriod() <= spec_.period) {
    return false;
  }
  const SimDuration step = spec_.period * config_.period_adjust_step;
  const SimDuration next =
      std::max(spec_.period, runner_->currentPeriod() - step);
  applyPeriod(next, stage, /*dilated=*/false);
  return true;
}

void ResourceManager::applyPeriod(SimDuration new_period, std::size_t stage,
                                  bool dilated) {
  const SimDuration old_period = runner_->currentPeriod();
  RTDRM_ASSERT(new_period != old_period);
  runner_->setPeriod(new_period);
  // Keep the measurement cadence phase-locked to the release cadence: one
  // utilization sample just before each release, whatever the live period.
  sampler_->setPeriod(new_period);
  if (dilated) {
    ++metrics_.period_dilations;
  } else {
    ++metrics_.period_contractions;
  }
  trace(sim::TraceCategory::kCustom, "period", new_period.ms());
  obsRecord(obs::RecordKind::kPeriodAdjust,
            dilated ? obs::kFlagAccept : std::uint8_t{0},
            static_cast<std::uint16_t>(stage), obs::kRecordNoNode,
            new_period.ms(), old_period.ms());
  RTDRM_LOG(kDebug) << "period " << (dilated ? "dilated" : "contracted")
                    << ": " << old_period.ms() << " -> " << new_period.ms()
                    << " ms";
  if (observer_ != nullptr) {
    observer_->onPeriodAdjust(*this, old_period, new_period, dilated);
  }
}

AllocationContext ResourceManager::makeContext(DataSize workload) const {
  AllocationContext ctx{spec_,    rt_.cluster,
                        workload, budgets_,
                        config_.monitor.slack_fraction,
                        totalWorkload(workload)};
  ctx.audit = obs_ != nullptr ? &obs_->trace : nullptr;
  return ctx;
}

void ResourceManager::reassignBudgets(DataSize d) {
  const task::Placement& placement = runner_->placement();
  EqfInput in;
  in.deadline_ms = spec_.deadline.ms();
  in.eex_ms.resize(spec_.stageCount());
  in.ecd_ms.resize(spec_.stageCount() - 1);

  for (std::size_t i = 0; i < spec_.stageCount(); ++i) {
    const task::ReplicaSet& rs = placement.stage(i);
    const DataSize share = d / static_cast<double>(rs.size());
    // Estimate at the primary's observed utilization; before the first
    // sample this falls back to the configured u_init.
    Utilization u = rt_.cluster.lastUtilization(rs.primary());
    if (u.value() <= 0.0) {
      u = config_.u_init;
    }
    in.eex_ms[i] = models_.execLatency(i, share, u).ms();
    if (i + 1 < spec_.stageCount()) {
      const std::size_t succ_replicas = placement.stage(i + 1).size();
      const DataSize succ_share = d / static_cast<double>(succ_replicas);
      in.ecd_ms[i] = models_
                         .commDelay(succ_share,
                                    spec_.messages[i].bytes_per_track,
                                    totalWorkload(d))
                         .ms();
    }
  }
  budgets_ = assignBudgets(in, config_.deadline_strategy);
  obsRecord(obs::RecordKind::kBudgetsAssigned, 0, 0, obs::kRecordNoNode,
            d.count());
  if (observer_ != nullptr) {
    observer_->onBudgetsAssigned(*this, budgets_);
  }
}

}  // namespace rtdrm::core
