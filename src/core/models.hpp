// The fitted regression models the resource manager plans with.
//
// Both algorithms consume these for the EQF deadline assignment (§4.1 uses
// "estimates of the initial operating conditions"); the predictive
// allocator additionally uses them to forecast candidate allocations
// (§4.2.1). The models are the *only* channel through which the manager
// knows application costs — ground truth stays hidden in the simulator.
#pragma once

#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "regress/comm_model.hpp"
#include "regress/exec_model.hpp"
#include "task/spec.hpp"

namespace rtdrm::core {

struct PredictiveModels {
  /// One execution-latency model per subtask (index = stage).
  std::vector<regress::ExecLatencyModel> exec;
  /// Shared communication-delay model (eqs. 4-6).
  regress::CommDelayModel comm;
  /// Optional per-(stage, node) overrides learned online (per-node
  /// refinement extension); empty = exec[stage] applies to every node, the
  /// paper's homogeneous assumption. When non-empty: [stage][node].
  std::vector<std::vector<std::optional<regress::ExecLatencyModel>>>
      exec_overrides;

  /// eex(st, d, u) — eq. (3).
  SimDuration execLatency(std::size_t stage, DataSize d,
                          Utilization u) const {
    return exec.at(stage).eval(d, u);
  }

  /// eex on a specific node: the per-node override when one has been
  /// learned, else the stage model. Passing `kNoNode` requests the stage
  /// model explicitly.
  SimDuration execLatencyOn(std::size_t stage, ProcessorId node, DataSize d,
                            Utilization u) const {
    // Fallback contract: kNoNode sits above every real id, so it can never
    // alias an override slot — it (and any node without a learned
    // override) lands on the shared stage model below.
    RTDRM_ASSERT(node == kNoNode || node.value < kNoNode.value);
    if (stage < exec_overrides.size() &&
        node.value < exec_overrides[stage].size() &&
        exec_overrides[stage][node.value].has_value()) {
      return exec_overrides[stage][node.value]->eval(d, u);
    }
    return execLatency(stage, d, u);
  }

  /// ecd(m, d, c) — eq. (4): message carrying `share` tracks at
  /// `bytes_per_track`, during a period whose total workload is
  /// `total_workload` (the sum in eq. 5).
  SimDuration commDelay(DataSize share, double bytes_per_track,
                        DataSize total_workload) const {
    return comm.eval(Bytes::of(share.count() * bytes_per_track),
                     total_workload);
  }
};

}  // namespace rtdrm::core
