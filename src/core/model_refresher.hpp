// Online refinement of the eq.-3 execution-latency models.
//
// The paper fits its regression models once, from an offline profiling
// campaign; its related work ([BN+98, RSYJ97]) observes resource usage
// a-posteriori to refine such estimates. This extension does exactly that:
// every completed stage contributes one (data share, utilization, observed
// execution latency) observation to a per-stage recursive-least-squares
// estimator seeded with the offline coefficients. With a forgetting factor
// below one, the models track environmental drift — e.g. per-track
// processing cost changing mid-mission — which the static models cannot.
//
// Enabled via ManagerConfig::online_refit (off by default: the paper's
// algorithm is the default behaviour).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/models.hpp"
#include "regress/rls.hpp"
#include "task/spec.hpp"

namespace rtdrm::core {

struct ModelRefresherConfig {
  /// RLS forgetting factor; 1 = never forget, smaller adapts faster.
  double forgetting = 0.99;
  /// Observations a stage needs before its refreshed model is trusted.
  std::size_t min_observations = 16;
  /// Prior covariance scale; smaller trusts the offline seed longer.
  double initial_p = 50.0;
  /// Additionally learn a model per (stage, node) — worth it on
  /// heterogeneous fleets where one fleet-average surface cannot be right
  /// for every node. Requires node_count > 0.
  bool per_node = false;
  std::size_t node_count = 0;
};

class ModelRefresher {
 public:
  ModelRefresher(const task::TaskSpec& spec, const PredictiveModels& seed,
                 ModelRefresherConfig config = {});

  /// One run-time observation of stage `stage`: a replica processed
  /// `d_hundreds` (hundreds of tracks) on `node` at utilization `u` in
  /// `exec_ms`. Returns true once the stage's aggregate refreshed model is
  /// active (enough observations accumulated).
  bool observe(std::size_t stage, ProcessorId node, double d_hundreds,
               double u, double exec_ms);

  /// The stage's current best aggregate model: the refreshed one when
  /// active, else the offline seed.
  regress::ExecLatencyModel current(std::size_t stage) const;
  bool active(std::size_t stage) const;
  std::uint64_t observations(std::size_t stage) const;

  /// Per-node model, when per_node is on and that (stage, node) pair has
  /// accumulated enough observations.
  std::optional<regress::ExecLatencyModel> currentForNode(
      std::size_t stage, ProcessorId node) const;

 private:
  static regress::Vector features(double d_hundreds, double u);
  static regress::Vector toTheta(const regress::ExecLatencyModel& m);
  static regress::ExecLatencyModel toModel(const regress::Vector& theta);
  std::size_t nodeIndex(std::size_t stage, ProcessorId node) const;

  ModelRefresherConfig config_;
  std::vector<regress::ExecLatencyModel> seeds_;
  std::vector<regress::RecursiveLeastSquares> rls_;
  /// Per-(stage, node) estimators, [stage * node_count + node]; empty
  /// unless per_node.
  std::vector<regress::RecursiveLeastSquares> node_rls_;
};

}  // namespace rtdrm::core
