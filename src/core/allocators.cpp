#include "core/allocators.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/trace_buffer.hpp"

namespace rtdrm::core {

namespace {
std::uint16_t stage16(std::size_t stage) {
  return static_cast<std::uint16_t>(stage);
}
}  // namespace

ProcessorId selectShutdownVictim(const task::ReplicaSet& rs,
                                 const node::Cluster& cluster,
                                 ShutdownSelection selection) {
  RTDRM_ASSERT(rs.size() > 1);
  if (selection == ShutdownSelection::kLastAdded) {
    return rs.nodes().back();
  }
  // kMostUtilized: the busiest non-primary node (FIFO among ties: the
  // earliest added wins so the set keeps shrinking deterministically).
  ProcessorId victim = rs.nodes()[1];
  double worst = -1.0;
  for (std::size_t i = 1; i < rs.nodes().size(); ++i) {
    const double u = cluster.lastUtilization(rs.nodes()[i]).value();
    if (u > worst) {
      worst = u;
      victim = rs.nodes()[i];
    }
  }
  return victim;
}

SimDuration PredictiveAllocator::forecastReplicaLatency(
    const AllocationContext& ctx, std::size_t stage,
    std::size_t replica_count, Utilization u) const {
  // No specific node: kNoNode misses the override table and falls back to
  // the stage model (PredictiveModels::execLatencyOn contract).
  return forecastReplicaLatencyOn(ctx, stage, replica_count, kNoNode, u);
}

SimDuration PredictiveAllocator::forecastReplicaLatencyOn(
    const AllocationContext& ctx, std::size_t stage,
    std::size_t replica_count, ProcessorId node, Utilization u) const {
  // Dbuf depends on the cluster-wide periodic workload (eq. 5), plus the
  // planning margin on this task's own contribution.
  const DataSize eq5_total =
      ctx.effectiveTotal() + ctx.workload * config_.workload_headroom;
  return forecastWithTotal(ctx, stage, replica_count, node, u, eq5_total);
}

PredictiveAllocator::ForecastParts PredictiveAllocator::forecastParts(
    const AllocationContext& ctx, std::size_t stage,
    std::size_t replica_count, ProcessorId node, Utilization u,
    DataSize eq5_total) const {
  RTDRM_ASSERT(replica_count >= 1);
  // Optional provisioning margin on the observed workload.
  const DataSize planned =
      ctx.workload * (1.0 + config_.workload_headroom);
  // Each replica processes 1/k of the data stream (Fig. 5 step 6.2)...
  const DataSize share = planned / static_cast<double>(replica_count);
  const SimDuration eex = models_.execLatencyOn(stage, node, share, u);
  // ... and its incoming message now carries 1/k of the data (step 6.4).
  // The first stage has no predecessor message.
  SimDuration ecd = SimDuration::zero();
  if (stage > 0) {
    ecd = models_.commDelay(share, ctx.spec.messages[stage - 1].bytes_per_track,
                            eq5_total);
  }
  return {eex, ecd};
}

SimDuration PredictiveAllocator::forecastWithTotal(
    const AllocationContext& ctx, std::size_t stage,
    std::size_t replica_count, ProcessorId node, Utilization u,
    DataSize eq5_total) const {
  return forecastParts(ctx, stage, replica_count, node, u, eq5_total).total();
}

AllocStatus PredictiveAllocator::replicate(const AllocationContext& ctx,
                                           std::size_t stage,
                                           task::ReplicaSet& rs) {
  RTDRM_ASSERT(stage < ctx.spec.stageCount());
  const double budget = ctx.budgets.stageBudgetMs(stage);
  const double limit = budget - ctx.slack_fraction * budget;  // dl - sl

  // The eq.-5 total workload is a property of the period, not of the
  // candidate replica set — hoist it out of the step-6 re-check loop.
  const DataSize eq5_total =
      ctx.effectiveTotal() + ctx.workload * config_.workload_headroom;

  // Fig. 5, steps 2-7: the monitor calls us because the observed slack is
  // low, so at least one replica is always added. After each addition the
  // forecast is re-checked for *every* replica (each now processes a
  // smaller 1/k share); on any violation another processor is taken — the
  // least utilized one not yet hosting the subtask — until the forecast
  // fits or processors run out. The cursor yields processors in exactly
  // the order repeated leastUtilized(rs.nodes()) queries would (the sample
  // is fixed for the whole decision), at amortized O(log P) per addition.
  obs::TraceBuffer* audit = ctx.audit;
  if (audit != nullptr) {
    audit->record(obs::RecordKind::kGrowthStart, 0, stage16(stage),
                  obs::kRecordNoNode, budget, limit);
  }
  auto cursor = ctx.cluster.utilizationCursor(rs.nodes());
  while (true) {
    const auto pmin = cursor.next();
    if (!pmin) {
      RTDRM_LOG(kDebug) << "predictive: out of processors for stage "
                        << stage << " (|PS|=" << rs.size() << ")";
      if (audit != nullptr) {
        audit->record(obs::RecordKind::kGrowthExhausted, 0, stage16(stage),
                      obs::kRecordNoNode, static_cast<double>(rs.size()));
      }
      return AllocStatus::kFailure;  // Fig. 5 step 2.1
    }
    rs.add(*pmin);  // steps 3-5
    if (audit != nullptr) {
      audit->record(obs::RecordKind::kGrowthTake, 0, stage16(stage),
                    pmin->value,
                    ctx.cluster.lastUtilization(*pmin).value());
    }

    bool all_fit = true;  // step 6
    for (ProcessorId q : rs.nodes()) {
      const Utilization u = ctx.cluster.lastUtilization(q);
      const ForecastParts parts =
          forecastParts(ctx, stage, rs.size(), q, u, eq5_total);
      const bool fits = parts.total().ms() <= limit;
      if (audit != nullptr) {
        audit->record(obs::RecordKind::kGrowthCheck,
                      fits ? obs::kFlagAccept : std::uint8_t{0},
                      stage16(stage), q.value, parts.eex.ms(), parts.ecd.ms(),
                      limit);
      }
      if (!fits) {
        all_fit = false;  // step 6.6: need another replica
        break;
      }
    }
    if (all_fit) {
      if (audit != nullptr) {
        audit->record(obs::RecordKind::kGrowthAccept, 0, stage16(stage),
                      obs::kRecordNoNode, static_cast<double>(rs.size()));
      }
      return AllocStatus::kSuccess;  // step 7
    }
  }
}

AllocStatus NonPredictiveAllocator::replicate(const AllocationContext& ctx,
                                              std::size_t stage,
                                              task::ReplicaSet& rs) {
  RTDRM_ASSERT(stage < ctx.spec.stageCount());
  // Fig. 7: add every processor whose utilization is below UT. The
  // candidate set comes from the cluster's utilization index (ascending id
  // order, same as the seed's full scan), so the work is proportional to
  // the below-threshold nodes rather than the cluster size.
  obs::TraceBuffer* audit = ctx.audit;
  std::size_t added = 0;
  for (const ProcessorId p : ctx.cluster.belowUtilization(threshold_)) {
    if (rs.contains(p)) {
      continue;
    }
    rs.add(p);
    ++added;
    if (audit != nullptr) {
      audit->record(obs::RecordKind::kThresholdTake, obs::kFlagAccept,
                    stage16(stage), p.value,
                    ctx.cluster.lastUtilization(p).value(),
                    threshold_.value());
    }
  }
  if (audit != nullptr) {
    audit->record(obs::RecordKind::kThresholdDone, 0, stage16(stage),
                  obs::kRecordNoNode, static_cast<double>(added),
                  static_cast<double>(rs.size()));
  }
  return added > 0 ? AllocStatus::kSuccess : AllocStatus::kNoChange;
}

}  // namespace rtdrm::core
