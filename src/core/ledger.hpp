// Shared workload ledger for multi-task deployments.
//
// Eq. (5) computes the buffer delay from the *sum of every task's* periodic
// workload: Dbuf = k * sum_i ds(T_i, c). With a single task (the paper's
// baseline, Table 1) the sum is just that task's workload; when several
// periodic tasks share the cluster, each task's resource manager posts its
// current workload here and reads the total for its communication-delay
// forecasts.
//
// Single-threaded by design: all managers live on one simulator.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace rtdrm::core {

class WorkloadLedger {
 public:
  struct TaskId {
    std::size_t value = 0;
  };

  /// Registers a task; its posted workload starts at zero.
  TaskId registerTask(std::string name) {
    names_.push_back(std::move(name));
    current_.push_back(DataSize::zero());
    total_dirty_ = true;
    return TaskId{names_.size() - 1};
  }

  std::size_t taskCount() const { return names_.size(); }
  const std::string& taskName(TaskId id) const {
    RTDRM_ASSERT(id.value < names_.size());
    return names_[id.value];
  }

  /// Posts the workload the task released this period.
  void post(TaskId id, DataSize workload) {
    RTDRM_ASSERT(id.value < current_.size());
    current_[id.value] = workload;
    total_dirty_ = true;
  }

  DataSize posted(TaskId id) const {
    RTDRM_ASSERT(id.value < current_.size());
    return current_[id.value];
  }

  /// The eq.-5 sum over all registered tasks. Posts happen once per task
  /// per period while forecasts read the total once per candidate, so the
  /// sum is cached behind a dirty flag. The recomputation always walks the
  /// tasks in registration order — the same order a fresh re-sum would —
  /// so the cached float total is bit-exact with an uncached one (the
  /// invariant oracle's checkLedger compares exactly that).
  DataSize total() const {
    if (total_dirty_) {
      DataSize sum = DataSize::zero();
      for (const DataSize d : current_) {
        sum += d;
      }
      cached_total_ = sum;
      total_dirty_ = false;
    }
    return cached_total_;
  }

 private:
  std::vector<std::string> names_;
  std::vector<DataSize> current_;
  mutable DataSize cached_total_ = DataSize::zero();
  mutable bool total_dirty_ = false;
};

}  // namespace rtdrm::core
