// Subtask/message deadline assignment from end-to-end deadlines —
// the paper's "variant of the equal flexibility (EQF) strategy" of
// Kao & Garcia-Molina (paper §4.1, eqs. 1-2).
//
// EQF gives every element of the chain the same flexibility ratio: each
// subtask and message receives a budget of
//
//   budget_i = est_i + slack * est_i / total = est_i * (D / total)
//
// where est_i is its estimated latency, total = sum of all estimates and
// slack = D - total. Budgets therefore sum exactly to the end-to-end
// deadline D (the paper's printed eq. 1/2 reduce to this form at the chain
// ends; we apply the uniform ratio throughout, which keeps the invariant
// sum(budgets) == D that the printed recursion loses mid-chain).
//
// If total > D (estimates alone already exceed the deadline) the same
// formula compresses budgets proportionally — every element then has
// flexibility ratio < 1 and the monitor will flag the bottleneck stages.
#pragma once

#include <vector>

#include "common/units.hpp"

namespace rtdrm::core {

/// Latency estimates for one task chain under assumed operating conditions
/// (initial conditions at startup; current observed conditions on
/// re-assignment after an allocation action).
struct EqfInput {
  /// Estimated execution latency per subtask (n entries).
  std::vector<double> eex_ms;
  /// Estimated communication delay per inter-subtask message (n-1 entries;
  /// ecd_ms[i] is the message from subtask i to i+1, 0-based).
  std::vector<double> ecd_ms;
  double deadline_ms = 0.0;
};

struct EqfBudgets {
  /// Relative latency budget per subtask (n entries).
  std::vector<double> subtask_ms;
  /// Relative budget per message (n-1 entries).
  std::vector<double> message_ms;
  /// Absolute offset (from task release) by which each subtask must finish.
  std::vector<double> subtask_abs_ms;
  /// D / total; > 1 means slack exists, < 1 means the chain is infeasible
  /// at the assumed conditions.
  double flexibility = 0.0;

  /// Budget for "stage i" as the run-time monitor sees it: incoming message
  /// (i > 0) plus subtask execution. This is the dl(st) that Fig. 5's
  /// TotalDelay = eex + ecd is compared against.
  double stageBudgetMs(std::size_t i) const {
    return (i > 0 ? message_ms[i - 1] : 0.0) + subtask_ms[i];
  }
};

/// Computes EQF budgets. Requires deadline > 0, all estimates >= 0, and a
/// strictly positive total estimate.
EqfBudgets assignEqf(const EqfInput& input);

/// Deadline-assignment strategy. Kao & Garcia-Molina propose both:
/// EQF divides the slack proportionally to each element's estimate (the
/// paper's choice); EQS gives every element an *equal absolute* share of
/// the slack. When the chain is infeasible (total estimate > deadline),
/// EQS also falls back to proportional compression — equal negative slack
/// would drive short elements' budgets below zero.
enum class DeadlineStrategy { kEqf, kEqs };

/// Computes budgets under the chosen strategy. assignBudgets(in, kEqf) is
/// identical to assignEqf(in).
EqfBudgets assignBudgets(const EqfInput& input, DeadlineStrategy strategy);

}  // namespace rtdrm::core
