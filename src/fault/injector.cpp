#include "fault/injector.hpp"

#include <memory>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace rtdrm::fault {

FaultInjector::FaultInjector(sim::Simulator& simulator,
                             node::Cluster& cluster,
                             net::NetworkModel* network,
                             net::ClockFabric* clocks, FaultPlan plan)
    : sim_(simulator),
      cluster_(cluster),
      network_(network),
      clocks_(clocks),
      plan_(std::move(plan)),
      rng_(plan_.seed) {}

FaultInjector::~FaultInjector() {
  if (hook_installed_) {
    network_->setFrameFateHook(nullptr);
  }
}

void FaultInjector::setManagerFaultTarget(
    std::size_t manager_count, std::function<void(std::uint32_t, bool)> fn) {
  RTDRM_ASSERT_MSG(!armed_, "manager fault target must precede arm()");
  RTDRM_ASSERT(manager_count > 0);
  RTDRM_ASSERT(fn != nullptr);
  manager_count_ = manager_count;
  manager_fault_fn_ = std::move(fn);
}

void FaultInjector::arm() {
  RTDRM_ASSERT_MSG(!armed_, "fault plan already armed");
  armed_ = true;
  plan_.validate(cluster_.size(), manager_count_);

  for (const CrashFault& c : plan_.crashes) {
    sim_.scheduleAt(c.at, [this, c] {
      cluster_.setNodeUp(c.node, false);
      ++crashes_injected_;
      RTDRM_LOG(kDebug) << "fault: node " << c.node.value << " crashed";
      if (observer_ != nullptr) {
        observer_->onCrash(c.node, sim_.now());
      }
    });
    if (c.restart_at.has_value()) {
      sim_.scheduleAt(*c.restart_at, [this, c] {
        cluster_.setNodeUp(c.node, true);
        ++restarts_injected_;
        RTDRM_LOG(kDebug) << "fault: node " << c.node.value << " restarted";
        if (observer_ != nullptr) {
          observer_->onRestart(c.node, sim_.now());
        }
      });
    }
  }

  for (const ThrottleFault& t : plan_.throttles) {
    // Overlapping windows on one node apply last-write-wins per edge; the
    // fuzzer generates at most one window per node.
    sim_.scheduleAt(t.from, [this, t] {
      cluster_.applySpeedFactor(t.node, t.factor);
      ++throttle_edges_;
    });
    sim_.scheduleAt(t.until, [this, t] {
      cluster_.applySpeedFactor(t.node, 1.0);
      ++throttle_edges_;
    });
  }

  if (!plan_.clock_outages.empty()) {
    RTDRM_ASSERT_MSG(clocks_ != nullptr,
                     "clock outages need a clock fabric");
    // Overlap-safe: the service is down while any window is open. The
    // counter lives on the heap so the lambdas stay copyable.
    auto active = std::make_shared<int>(0);
    for (const ClockOutage& o : plan_.clock_outages) {
      sim_.scheduleAt(o.from, [this, active] {
        if (++*active == 1) {
          clocks_->setSyncEnabled(false);
        }
      });
      sim_.scheduleAt(o.until, [this, active] {
        if (--*active == 0) {
          clocks_->setSyncEnabled(true);
        }
      });
    }
  }

  for (const ManagerCrashFault& m : plan_.manager_crashes) {
    sim_.scheduleAt(m.at, [this, m] {
      manager_fault_fn_(m.manager, false);
      ++manager_crashes_injected_;
      RTDRM_LOG(kDebug) << "fault: manager " << m.manager << " crashed";
      if (observer_ != nullptr) {
        observer_->onManagerCrash(m.manager, sim_.now());
      }
    });
    if (m.restart_at.has_value()) {
      sim_.scheduleAt(*m.restart_at, [this, m] {
        manager_fault_fn_(m.manager, true);
        ++manager_restarts_injected_;
        RTDRM_LOG(kDebug) << "fault: manager " << m.manager << " restarted";
        if (observer_ != nullptr) {
          observer_->onManagerRestart(m.manager, sim_.now());
        }
      });
    }
  }

  if (!plan_.links.empty()) {
    RTDRM_ASSERT_MSG(network_ != nullptr, "link faults need a network");
    hook_installed_ = true;
    network_->setFrameFateHook(
        [this](const net::FrameHop& hop) { return decideFrameFate(hop); });
  }
}

net::FrameFate FaultInjector::decideFrameFate(const net::FrameHop& hop) {
  const SimTime now = sim_.now();
  for (const LinkFault& l : plan_.links) {
    const bool src_match = l.src == kAnyNode || l.src == hop.src;
    const bool dst_match = l.dst == kAnyNode || l.dst == hop.dst;
    const bool seg_match =
        l.segment == net::kAnySegment || l.segment == hop.segment;
    const bool port_match = l.port == net::kAnyPort || l.port == hop.port;
    if (!src_match || !dst_match || !seg_match || !port_match ||
        now < l.from || now >= l.until) {
      continue;
    }
    // First matching open window decides; RNG advances only here, in
    // simulator event order, so replay is exact.
    if (l.loss > 0.0 && rng_.uniform01() < l.loss) {
      return net::FrameFate::kLose;
    }
    if (l.dup > 0.0 && rng_.uniform01() < l.dup) {
      return net::FrameFate::kDuplicate;
    }
    return net::FrameFate::kDeliver;
  }
  return net::FrameFate::kDeliver;
}

}  // namespace rtdrm::fault
