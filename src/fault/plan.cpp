#include "fault/plan.hpp"

#include "common/assert.hpp"

namespace rtdrm::fault {

void FaultPlan::validate(std::size_t node_count,
                         std::size_t manager_count) const {
  for (const CrashFault& c : crashes) {
    RTDRM_ASSERT_MSG(c.node.value < node_count, "crash node out of range");
    if (c.restart_at.has_value()) {
      RTDRM_ASSERT_MSG(*c.restart_at > c.at,
                       "restart must come after the crash");
    }
  }
  for (const ThrottleFault& t : throttles) {
    RTDRM_ASSERT_MSG(t.node.value < node_count,
                     "throttle node out of range");
    RTDRM_ASSERT_MSG(t.until > t.from, "empty throttle window");
    RTDRM_ASSERT_MSG(t.factor > 0.0, "throttle factor must be positive");
  }
  for (const LinkFault& l : links) {
    RTDRM_ASSERT_MSG(l.src == kAnyNode || l.src.value < node_count,
                     "link src out of range");
    RTDRM_ASSERT_MSG(l.dst == kAnyNode || l.dst.value < node_count,
                     "link dst out of range");
    RTDRM_ASSERT_MSG(l.until > l.from, "empty link-fault window");
    RTDRM_ASSERT_MSG(l.loss >= 0.0 && l.loss <= kMaxLossProbability,
                     "loss probability out of [0, 0.9]");
    RTDRM_ASSERT_MSG(l.dup >= 0.0 && l.dup <= 1.0,
                     "duplication probability out of [0, 1]");
    // A port constraint without a segment is ambiguous: port indices are
    // only meaningful within one segment's numbering.
    RTDRM_ASSERT_MSG(l.port == net::kAnyPort || l.segment != net::kAnySegment,
                     "link-fault port targeting needs a segment");
  }
  for (const ClockOutage& o : clock_outages) {
    RTDRM_ASSERT_MSG(o.until > o.from, "empty clock outage window");
  }
  if (manager_count == 0) {
    RTDRM_ASSERT_MSG(manager_crashes.empty(),
                     "manager crashes need a decentralized plane");
    return;
  }
  for (const ManagerCrashFault& m : manager_crashes) {
    RTDRM_ASSERT_MSG(m.manager < manager_count,
                     "manager crash id out of range");
    if (m.restart_at.has_value()) {
      RTDRM_ASSERT_MSG(*m.restart_at > m.at,
                       "manager restart must come after the crash");
    }
  }
}

}  // namespace rtdrm::fault
