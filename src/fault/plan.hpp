// Deterministic fault schedules (the disturbance half of "adaptive
// resource management in asynchronous distributed systems").
//
// A FaultPlan is pure data: crash/restart times, CPU throttling windows,
// per-link frame loss/duplication probabilities, and clock-sync outage
// windows. The FaultInjector compiles it into simulator events before the
// run; the plan plus its seed fully determine every injected fault, so a
// run with a given (scenario seed, fault plan) pair replays byte-identical
// — the property the fuzzer's shrinker and CI reproducers rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hpp"
#include "net/network_model.hpp"

namespace rtdrm::fault {

/// Wildcard endpoint for link faults: matches every node.
inline constexpr ProcessorId kAnyNode = kNoNode;

/// Fail-stop crash at `at`; the node loses all resident work and its
/// private memory. With `restart_at` set the node later rejoins, empty.
struct CrashFault {
  ProcessorId node{0};
  SimTime at = SimTime::zero();
  std::optional<SimTime> restart_at;
};

/// Transient CPU degradation: effective speed is multiplied by `factor`
/// (0 < factor, usually < 1) from `from` until `until`.
struct ThrottleFault {
  ProcessorId node{0};
  SimTime from = SimTime::zero();
  SimTime until = SimTime::zero();
  double factor = 0.5;
};

/// Per-frame loss/duplication probabilities on frames src->dst while the
/// window is open. kAnyNode on either endpoint matches every node. A lost
/// frame costs its wire time and is retransmitted by the link layer; a
/// duplicated frame costs an extra wire slot and is discarded by the
/// receiver — delivery accounting never sees either (see net::Ethernet).
///
/// Faults target physical links, not just message endpoints: `segment` and
/// `port` narrow the fault to one egress port of one segment (the shared
/// bus is segment 0, port 0; switched fabrics report the transmitting
/// port's coordinates per hop — see net::SwitchedFabric for the numbering).
/// The wildcard defaults match every link, which on the bus reproduces the
/// pre-(segment, port) behaviour draw for draw.
struct LinkFault {
  ProcessorId src = kAnyNode;
  ProcessorId dst = kAnyNode;
  SimTime from = SimTime::zero();
  SimTime until = SimTime::zero();
  double loss = 0.0;
  double dup = 0.0;
  std::uint32_t segment = net::kAnySegment;
  std::uint32_t port = net::kAnyPort;
};

/// Clock-sync service outage: sync rounds inside the window are skipped
/// and every clock free-runs (drifts) until the window closes.
struct ClockOutage {
  SimTime from = SimTime::zero();
  SimTime until = SimTime::zero();
};

/// Fail-stop crash of a management-plane endpoint (not a node): the
/// manager process stops gossiping, acking heartbeats and making
/// decisions at `at`; with `restart_at` set it later rejoins as a
/// standby with an empty view. Only meaningful when the run hosts a
/// decentralized plane (manager_count > 0 at validate()).
struct ManagerCrashFault {
  std::uint32_t manager = 0;
  SimTime at = SimTime::zero();
  std::optional<SimTime> restart_at;
};

/// Loss probabilities above this are rejected: retransmission of every
/// frame must terminate, and a loss rate of ~1 would livelock the wire.
inline constexpr double kMaxLossProbability = 0.9;

struct FaultPlan {
  std::vector<CrashFault> crashes;
  std::vector<ThrottleFault> throttles;
  std::vector<LinkFault> links;
  std::vector<ClockOutage> clock_outages;
  std::vector<ManagerCrashFault> manager_crashes;
  /// Seed for the per-frame loss/duplication draws (the only randomness a
  /// plan introduces; everything else above is scheduled exactly).
  std::uint64_t seed = 0;

  bool empty() const {
    return crashes.empty() && throttles.empty() && links.empty() &&
           clock_outages.empty() && manager_crashes.empty();
  }
  /// Total scheduled entries (shrinker progress measure).
  std::size_t entryCount() const {
    return crashes.size() + throttles.size() + links.size() +
           clock_outages.size() + manager_crashes.size();
  }
  /// Asserts structural sanity against a cluster of `node_count` nodes
  /// and a management plane of `manager_count` managers: ids in range (or
  /// kAnyNode), windows ordered, probabilities bounded, throttle factors
  /// positive. Manager crashes are rejected outright when the run hosts
  /// no decentralized plane (manager_count == 0).
  void validate(std::size_t node_count, std::size_t manager_count = 0) const;
};

}  // namespace rtdrm::fault
