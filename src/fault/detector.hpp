// Heartbeat-based failure detection over the shared network substrate.
//
// A management ("home") node probes every monitored endpoint each interval
// with a small heartbeat message; an endpoint that is alive when the probe
// arrives replies with an ack. The detector's belief about an endpoint
// goes stale when no ack has arrived within `timeout`; it then re-probes
// up to `max_retries` times with linear backoff before declaring the
// endpoint dead and firing the down callback. Probing continues after the
// declaration, so a restarted endpoint is noticed by its next ack and the
// up callback fires.
//
// Endpoints are generalized targets, not just nodes: a target is an
// opaque id plus the processor its heartbeat traffic terminates on and a
// liveness predicate evaluated at probe-delivery time. The classic
// node-monitoring constructor (home probes every other cluster node,
// liveness = Cluster::isUp) builds its targets from the cluster and keeps
// the exact legacy message schedule; the target-list constructor lets the
// same timeout/retry/backoff machinery monitor manager endpoints hosted
// on nodes without duplicating any of it.
//
// Everything is message-driven and draw-free: detection latency emerges
// from real heartbeat traffic on the shared wire (and is itself perturbed
// by frame loss), and a run with no faults produces the same heartbeat
// schedule every time. Worst-case detection latency with a quiet wire is
// about timeout + max_retries * backoff + one interval.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/network_model.hpp"
#include "node/cluster.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::fault {

struct DetectorConfig {
  /// The node issuing heartbeats (the management node; never itself a
  /// probe target in node mode).
  ProcessorId home{0};
  /// Probe cadence.
  SimDuration interval = SimDuration::millis(100.0);
  /// Ack staleness after which a target becomes suspect.
  SimDuration timeout = SimDuration::millis(250.0);
  /// Extra probes sent to a suspect before declaring it dead.
  std::size_t max_retries = 2;
  /// Backoff between retry probes: retry k waits k * retry_backoff.
  SimDuration retry_backoff = SimDuration::millis(25.0);
  /// Heartbeat/ack payload (real traffic on the shared wire).
  Bytes heartbeat_bytes = Bytes::of(64.0);
};

/// A monitorable endpoint: `id` is the caller's identity (node index,
/// manager index, ...), `host` is where its heartbeat traffic terminates
/// on the wire, and `alive` is ground truth sampled when a probe arrives.
struct DetectorTarget {
  std::uint32_t id = 0;
  ProcessorId host{0};
  std::function<bool()> alive;
};

class FailureDetector {
 public:
  using DownFn = std::function<void(ProcessorId)>;
  using UpFn = std::function<void(ProcessorId)>;
  /// Target-mode callbacks receive the caller-assigned target id.
  using TargetDownFn = std::function<void(std::uint32_t)>;
  using TargetUpFn = std::function<void(std::uint32_t)>;

  /// Node mode: probe every cluster node except `config.home`, liveness
  /// from Cluster::isUp. Byte-identical to the pre-generalization wire
  /// schedule.
  FailureDetector(sim::Simulator& simulator, node::Cluster& cluster,
                  net::NetworkModel& network, DetectorConfig config,
                  DownFn on_down, UpFn on_up = {});

  /// Target mode: probe an explicit endpoint list with the same
  /// timeout/retry/backoff machinery.
  FailureDetector(sim::Simulator& simulator, net::NetworkModel& network,
                  DetectorConfig config, std::vector<DetectorTarget> targets,
                  TargetDownFn on_down, TargetUpFn on_up = {});

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  /// First probe round at `at`, then every interval.
  void start(SimTime at);
  void stop();

  /// The detector's current belief about the node-mode target hosted on
  /// `node` (not ground truth: it lags a real crash by the detection
  /// latency). Node mode only.
  bool believesUp(ProcessorId node) const;

  /// Belief about target `id` (target mode; also works in node mode where
  /// ids are node indices).
  bool believesTargetUp(std::uint32_t id) const;

  std::size_t targetCount() const { return targets_.size(); }
  const DetectorConfig& config() const { return config_; }
  std::uint64_t heartbeatsSent() const { return heartbeats_sent_; }
  std::uint64_t acksReceived() const { return acks_received_; }
  std::uint64_t retriesSent() const { return retries_sent_; }
  std::uint64_t declaredDead() const { return declared_dead_; }
  std::uint64_t declaredRecovered() const { return declared_recovered_; }

  /// Publishes detector counters into `reg` under "fault." names.
  void exportMetrics(obs::MetricsRegistry& reg) const;

 private:
  struct Target {
    std::uint32_t id = 0;
    ProcessorId host{0};
    std::function<bool()> alive;
    /// Node mode keeps the home node in the list (so believesUp stays an
    /// index lookup) but never probes it.
    bool probe = true;
    SimTime last_ack = SimTime::zero();
    std::size_t retries = 0;
    bool believed_up = true;
  };

  void tick();
  void probe(std::size_t slot);
  void onAck(std::size_t slot);
  std::size_t slotOf(std::uint32_t id) const;

  sim::Simulator& sim_;
  net::NetworkModel& net_;
  DetectorConfig config_;
  TargetDownFn on_down_;
  TargetUpFn on_up_;
  std::vector<Target> targets_;
  bool node_mode_ = false;
  sim::PeriodicActivity ticker_;
  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t acks_received_ = 0;
  std::uint64_t retries_sent_ = 0;
  std::uint64_t declared_dead_ = 0;
  std::uint64_t declared_recovered_ = 0;
};

}  // namespace rtdrm::fault
