// Heartbeat-based failure detection over the shared Ethernet segment.
//
// A management ("home") node probes every other node each interval with a
// small heartbeat message; a node that is up when the probe arrives
// replies with an ack. The detector's belief about a node goes stale when
// no ack has arrived within `timeout`; it then re-probes up to
// `max_retries` times with linear backoff before declaring the node dead
// and firing the down callback (which the scenario wiring binds to
// ResourceManager::handleNodeFailure). Probing continues after the
// declaration, so a restarted node is noticed by its next ack and the up
// callback fires.
//
// Everything is message-driven and draw-free: detection latency emerges
// from real heartbeat traffic on the shared wire (and is itself perturbed
// by frame loss), and a run with no faults produces the same heartbeat
// schedule every time. Worst-case detection latency with a quiet wire is
// about timeout + max_retries * backoff + one interval.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/ethernet.hpp"
#include "node/cluster.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::fault {

struct DetectorConfig {
  /// The node issuing heartbeats (the management node; never declared
  /// dead — crashing it means losing the manager, out of scope here).
  ProcessorId home{0};
  /// Probe cadence.
  SimDuration interval = SimDuration::millis(100.0);
  /// Ack staleness after which a node becomes suspect.
  SimDuration timeout = SimDuration::millis(250.0);
  /// Extra probes sent to a suspect before declaring it dead.
  std::size_t max_retries = 2;
  /// Backoff between retry probes: retry k waits k * retry_backoff.
  SimDuration retry_backoff = SimDuration::millis(25.0);
  /// Heartbeat/ack payload (real traffic on the shared wire).
  Bytes heartbeat_bytes = Bytes::of(64.0);
};

class FailureDetector {
 public:
  using DownFn = std::function<void(ProcessorId)>;
  using UpFn = std::function<void(ProcessorId)>;

  FailureDetector(sim::Simulator& simulator, node::Cluster& cluster,
                  net::Ethernet& ethernet, DetectorConfig config,
                  DownFn on_down, UpFn on_up = {});
  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  /// First probe round at `at`, then every interval.
  void start(SimTime at);
  void stop();

  /// The detector's current belief (not ground truth: it lags a real
  /// crash by the detection latency).
  bool believesUp(ProcessorId node) const;

  const DetectorConfig& config() const { return config_; }
  std::uint64_t heartbeatsSent() const { return heartbeats_sent_; }
  std::uint64_t acksReceived() const { return acks_received_; }
  std::uint64_t retriesSent() const { return retries_sent_; }
  std::uint64_t declaredDead() const { return declared_dead_; }
  std::uint64_t declaredRecovered() const { return declared_recovered_; }

  /// Publishes detector counters into `reg` under "fault." names.
  void exportMetrics(obs::MetricsRegistry& reg) const;

 private:
  struct NodeState {
    SimTime last_ack = SimTime::zero();
    std::size_t retries = 0;
    bool believed_up = true;
  };

  void tick();
  void probe(ProcessorId target);
  void onAck(ProcessorId from);

  sim::Simulator& sim_;
  node::Cluster& cluster_;
  net::Ethernet& net_;
  DetectorConfig config_;
  DownFn on_down_;
  UpFn on_up_;
  std::vector<NodeState> nodes_;
  sim::PeriodicActivity ticker_;
  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t acks_received_ = 0;
  std::uint64_t retries_sent_ = 0;
  std::uint64_t declared_dead_ = 0;
  std::uint64_t declared_recovered_ = 0;
};

}  // namespace rtdrm::fault
