// Compiles a FaultPlan into simulator events against the live substrate.
//
// arm() schedules every crash/restart/throttle/outage edge as an ordinary
// simulator event and — only when the plan carries link faults — installs
// the network frame-fate hook. With an empty plan arm() schedules nothing
// and installs nothing, so a faultless run is bit-for-bit identical to one
// with no injector at all.
//
// Determinism: the per-frame loss/dup draws come from the injector's own
// RNG (seeded from the plan), advanced only for frames matched by an open
// link-fault window, in simulator event order. Same scenario seed + same
// plan => same faults, byte-identical replay.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "fault/plan.hpp"
#include "net/clock_sync.hpp"
#include "net/network_model.hpp"
#include "node/cluster.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::fault {

/// Observation points for correctness oracles (src/check's InvariantOracle
/// uses them to time recovery deadlines). Fired synchronously after the
/// substrate state changed.
class FaultObserver {
 public:
  virtual ~FaultObserver() = default;
  virtual void onCrash(ProcessorId node, SimTime at) {
    (void)node;
    (void)at;
  }
  virtual void onRestart(ProcessorId node, SimTime at) {
    (void)node;
    (void)at;
  }
  virtual void onManagerCrash(std::uint32_t manager, SimTime at) {
    (void)manager;
    (void)at;
  }
  virtual void onManagerRestart(std::uint32_t manager, SimTime at) {
    (void)manager;
    (void)at;
  }
};

class FaultInjector {
 public:
  /// `network` and `clocks` may be null when the plan carries no faults
  /// of the corresponding kind (validated at arm()).
  FaultInjector(sim::Simulator& simulator, node::Cluster& cluster,
                net::NetworkModel* network, net::ClockFabric* clocks,
                FaultPlan plan);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector();

  /// Schedule every plan entry; call exactly once, before running the
  /// episode. Validates the plan against the cluster size (and the
  /// manager count when a manager-fault target is set).
  void arm();

  /// At most one observer (must outlive the injector).
  void setObserver(FaultObserver* observer) { observer_ = observer; }

  /// Registers the management plane as a fault target: `fn(manager, up)`
  /// is invoked at each scheduled manager crash (up = false) / restart
  /// (up = true) edge. Must be called before arm() when the plan carries
  /// manager crashes; plans without them never need it.
  void setManagerFaultTarget(std::size_t manager_count,
                             std::function<void(std::uint32_t, bool)> fn);

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t crashesInjected() const { return crashes_injected_; }
  std::uint64_t restartsInjected() const { return restarts_injected_; }
  std::uint64_t throttleEdges() const { return throttle_edges_; }
  std::uint64_t managerCrashesInjected() const {
    return manager_crashes_injected_;
  }
  std::uint64_t managerRestartsInjected() const {
    return manager_restarts_injected_;
  }

 private:
  net::FrameFate decideFrameFate(const net::FrameHop& hop);

  sim::Simulator& sim_;
  node::Cluster& cluster_;
  net::NetworkModel* network_;
  net::ClockFabric* clocks_;
  FaultPlan plan_;
  Xoshiro256 rng_;
  FaultObserver* observer_ = nullptr;
  std::size_t manager_count_ = 0;
  std::function<void(std::uint32_t, bool)> manager_fault_fn_;
  bool armed_ = false;
  bool hook_installed_ = false;
  std::uint64_t crashes_injected_ = 0;
  std::uint64_t restarts_injected_ = 0;
  std::uint64_t throttle_edges_ = 0;
  std::uint64_t manager_crashes_injected_ = 0;
  std::uint64_t manager_restarts_injected_ = 0;
};

}  // namespace rtdrm::fault
