#include "fault/detector.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace rtdrm::fault {

namespace {

/// Node mode: one target per cluster node, id == node index, liveness is
/// the cluster's up mask. The home node stays in the list (belief lookups
/// by node index) but is never probed.
std::vector<DetectorTarget> nodeTargets(node::Cluster& cluster) {
  std::vector<DetectorTarget> targets;
  targets.reserve(cluster.size());
  for (std::uint32_t i = 0; i < cluster.size(); ++i) {
    DetectorTarget t;
    t.id = i;
    t.host = ProcessorId{i};
    t.alive = [&cluster, i] { return cluster.isUp(ProcessorId{i}); };
    targets.push_back(std::move(t));
  }
  return targets;
}

}  // namespace

FailureDetector::FailureDetector(sim::Simulator& simulator,
                                 node::Cluster& cluster,
                                 net::NetworkModel& network,
                                 DetectorConfig config, DownFn on_down,
                                 UpFn on_up)
    : FailureDetector(
          simulator, network, config, nodeTargets(cluster),
          [down = std::move(on_down)](std::uint32_t id) {
            down(ProcessorId{id});
          },
          on_up == nullptr
              ? TargetUpFn{}
              : TargetUpFn([up = std::move(on_up)](std::uint32_t id) {
                  up(ProcessorId{id});
                })) {
  RTDRM_ASSERT(config_.home.value < cluster.size());
  node_mode_ = true;
  targets_[config_.home.value].probe = false;
}

FailureDetector::FailureDetector(sim::Simulator& simulator,
                                 net::NetworkModel& network,
                                 DetectorConfig config,
                                 std::vector<DetectorTarget> targets,
                                 TargetDownFn on_down, TargetUpFn on_up)
    : sim_(simulator),
      net_(network),
      config_(config),
      on_down_(std::move(on_down)),
      on_up_(std::move(on_up)),
      ticker_(simulator, config.interval, [this](std::uint64_t) { tick(); }) {
  RTDRM_ASSERT(config_.interval > SimDuration::zero());
  RTDRM_ASSERT(config_.timeout > SimDuration::zero());
  RTDRM_ASSERT(on_down_ != nullptr);
  targets_.reserve(targets.size());
  for (DetectorTarget& t : targets) {
    RTDRM_ASSERT_MSG(t.alive != nullptr,
                     "detector target needs a liveness predicate");
    Target internal;
    internal.id = t.id;
    internal.host = t.host;
    internal.alive = std::move(t.alive);
    targets_.push_back(std::move(internal));
  }
}

void FailureDetector::start(SimTime at) {
  // Every target starts with a fresh grace window; the first staleness
  // check can only trip a full timeout after `at`.
  for (Target& t : targets_) {
    t.last_ack = at;
  }
  ticker_.start(at);
}

void FailureDetector::stop() { ticker_.stop(); }

bool FailureDetector::believesUp(ProcessorId node) const {
  RTDRM_ASSERT_MSG(node_mode_, "believesUp(node) is node-mode only");
  RTDRM_ASSERT(node.value < targets_.size());
  return targets_[node.value].believed_up;
}

std::size_t FailureDetector::slotOf(std::uint32_t id) const {
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (targets_[i].id == id) {
      return i;
    }
  }
  RTDRM_ASSERT_MSG(false, "unknown detector target id");
  return 0;
}

bool FailureDetector::believesTargetUp(std::uint32_t id) const {
  return targets_[slotOf(id)].believed_up;
}

void FailureDetector::tick() {
  const SimTime now = sim_.now();
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    Target& st = targets_[i];
    if (!st.probe) {
      continue;
    }
    if (st.believed_up && now - st.last_ack > config_.timeout) {
      if (st.retries >= config_.max_retries) {
        st.believed_up = false;
        ++declared_dead_;
        RTDRM_LOG(kDebug) << "detector: target " << st.id
                          << " declared dead (" << st.retries << " retries)";
        on_down_(st.id);
      } else {
        // Suspect: one extra probe, linearly backed off, beyond the
        // regular cadence below.
        ++st.retries;
        ++retries_sent_;
        const SimDuration delay =
            config_.retry_backoff * static_cast<double>(st.retries);
        sim_.scheduleAfter(delay, [this, i] { probe(i); });
      }
    }
    probe(i);
  }
}

void FailureDetector::probe(std::size_t slot) {
  ++heartbeats_sent_;
  const Target& target = targets_[slot];
  net::Message hb;
  hb.src = config_.home;
  hb.dst = target.host;
  hb.payload = config_.heartbeat_bytes;
  hb.tag = "hb";
  // The probe arrives at the target; only a live endpoint acks. Liveness
  // is evaluated at *delivery* time — an endpoint that died while the
  // probe was in flight stays silent, exactly like real hardware.
  hb.on_delivered = [this, slot](const net::MessageReceipt&) {
    const Target& t = targets_[slot];
    if (!t.alive()) {
      return;
    }
    net::Message ack;
    ack.src = t.host;
    ack.dst = config_.home;
    ack.payload = config_.heartbeat_bytes;
    ack.tag = "hb-ack";
    ack.on_delivered = [this, slot](const net::MessageReceipt&) {
      onAck(slot);
    };
    net_.send(std::move(ack));
  };
  net_.send(std::move(hb));
}

void FailureDetector::onAck(std::size_t slot) {
  ++acks_received_;
  Target& st = targets_[slot];
  st.last_ack = sim_.now();
  st.retries = 0;
  if (!st.believed_up) {
    st.believed_up = true;
    ++declared_recovered_;
    RTDRM_LOG(kDebug) << "detector: target " << st.id << " recovered";
    if (on_up_ != nullptr) {
      on_up_(st.id);
    }
  }
}

void FailureDetector::exportMetrics(obs::MetricsRegistry& reg) const {
  reg.counter("fault.heartbeats_sent").set(heartbeats_sent_);
  reg.counter("fault.acks_received").set(acks_received_);
  reg.counter("fault.retries_sent").set(retries_sent_);
  reg.counter("fault.declared_dead").set(declared_dead_);
  reg.counter("fault.declared_recovered").set(declared_recovered_);
}

}  // namespace rtdrm::fault
