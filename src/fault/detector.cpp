#include "fault/detector.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace rtdrm::fault {

FailureDetector::FailureDetector(sim::Simulator& simulator,
                                 node::Cluster& cluster,
                                 net::Ethernet& ethernet,
                                 DetectorConfig config, DownFn on_down,
                                 UpFn on_up)
    : sim_(simulator),
      cluster_(cluster),
      net_(ethernet),
      config_(config),
      on_down_(std::move(on_down)),
      on_up_(std::move(on_up)),
      nodes_(cluster.size()),
      ticker_(simulator, config.interval, [this](std::uint64_t) { tick(); }) {
  RTDRM_ASSERT(config_.home.value < cluster.size());
  RTDRM_ASSERT(config_.interval > SimDuration::zero());
  RTDRM_ASSERT(config_.timeout > SimDuration::zero());
  RTDRM_ASSERT(on_down_ != nullptr);
}

void FailureDetector::start(SimTime at) {
  // Every node starts with a fresh grace window; the first staleness check
  // can only trip a full timeout after `at`.
  for (NodeState& n : nodes_) {
    n.last_ack = at;
  }
  ticker_.start(at);
}

void FailureDetector::stop() { ticker_.stop(); }

bool FailureDetector::believesUp(ProcessorId node) const {
  RTDRM_ASSERT(node.value < nodes_.size());
  return nodes_[node.value].believed_up;
}

void FailureDetector::tick() {
  const SimTime now = sim_.now();
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const ProcessorId target{i};
    if (target == config_.home) {
      continue;
    }
    NodeState& st = nodes_[i];
    if (st.believed_up && now - st.last_ack > config_.timeout) {
      if (st.retries >= config_.max_retries) {
        st.believed_up = false;
        ++declared_dead_;
        RTDRM_LOG(kDebug) << "detector: node " << i << " declared dead ("
                          << st.retries << " retries)";
        on_down_(target);
      } else {
        // Suspect: one extra probe, linearly backed off, beyond the
        // regular cadence below.
        ++st.retries;
        ++retries_sent_;
        const SimDuration delay =
            config_.retry_backoff * static_cast<double>(st.retries);
        sim_.scheduleAfter(delay, [this, target] { probe(target); });
      }
    }
    probe(target);
  }
}

void FailureDetector::probe(ProcessorId target) {
  ++heartbeats_sent_;
  net::Message hb;
  hb.src = config_.home;
  hb.dst = target;
  hb.payload = config_.heartbeat_bytes;
  hb.tag = "hb";
  // The probe arrives at the target; only a live node acks. Liveness is
  // evaluated at *delivery* time — a node that died while the probe was in
  // flight stays silent, exactly like real hardware.
  hb.on_delivered = [this, target](const net::MessageReceipt&) {
    if (!cluster_.isUp(target)) {
      return;
    }
    net::Message ack;
    ack.src = target;
    ack.dst = config_.home;
    ack.payload = config_.heartbeat_bytes;
    ack.tag = "hb-ack";
    ack.on_delivered = [this, target](const net::MessageReceipt&) {
      onAck(target);
    };
    net_.send(std::move(ack));
  };
  net_.send(std::move(hb));
}

void FailureDetector::onAck(ProcessorId from) {
  ++acks_received_;
  NodeState& st = nodes_[from.value];
  st.last_ack = sim_.now();
  st.retries = 0;
  if (!st.believed_up) {
    st.believed_up = true;
    ++declared_recovered_;
    RTDRM_LOG(kDebug) << "detector: node " << from.value << " recovered";
    if (on_up_ != nullptr) {
      on_up_(from);
    }
  }
}

void FailureDetector::exportMetrics(obs::MetricsRegistry& reg) const {
  reg.counter("fault.heartbeats_sent").set(heartbeats_sent_);
  reg.counter("fault.acks_received").set(acks_received_);
  reg.counter("fault.retries_sent").set(retries_sent_);
  reg.counter("fault.declared_dead").set(declared_dead_);
  reg.counter("fault.declared_recovered").set(declared_recovered_);
}

}  // namespace rtdrm::fault
