#include "sim/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace rtdrm::sim {

ShardedEngine::ShardedEngine(ShardedConfig config) : config_(config) {
  RTDRM_ASSERT_MSG(config_.shards >= 1, "engine needs at least one shard");
  RTDRM_ASSERT_MSG(
      config_.shards == 1 || config_.lookahead > SimDuration::zero(),
      "sharded execution needs a positive lookahead");
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  mailboxes_.resize(config_.shards * config_.shards);
}

Simulator& ShardedEngine::shard(std::size_t i) {
  RTDRM_ASSERT(i < shards_.size());
  return *shards_[i];
}

const Simulator& ShardedEngine::shard(std::size_t i) const {
  RTDRM_ASSERT(i < shards_.size());
  return *shards_[i];
}

void ShardedEngine::addBarrierHook(std::function<void()> hook) {
  RTDRM_ASSERT(hook != nullptr);
  barrier_hooks_.push_back(std::move(hook));
}

ShardedEngine::PostStatus ShardedEngine::post(std::size_t from,
                                              std::size_t to, SimTime at,
                                              Simulator::Callback cb) {
  RTDRM_ASSERT(from < shards_.size() && to < shards_.size());
  RTDRM_ASSERT(cb != nullptr);
  if (from == to) {
    // Ordinary same-calendar scheduling; the lookahead rule only guards
    // *cross*-shard causality.
    shards_[to]->scheduleAt(at, std::move(cb));
    return PostStatus::kScheduled;
  }
  if (!in_window_) {
    // Pre-run wiring or a barrier hook: every shard is quiescent, the
    // coordinator owns all calendars — schedule directly.
    ++cross_posts_;
    shards_[to]->scheduleAt(at, std::move(cb));
    return PostStatus::kScheduled;
  }
  PostStatus status = PostStatus::kQueued;
  if (at < window_end_) {
    if (config_.mode == parallel::SimMode::kDeterministic) {
      // Deterministic windows run with fixed shard order; delivering this
      // post would mean shard `to` observing an event inside a window it
      // may already have executed past — a silent reorder. Refuse loudly.
      ++rejected_posts_;
      last_rejection_ =
          "cross-shard post from shard " + std::to_string(from) +
          " to shard " + std::to_string(to) + " at t=" +
          std::to_string(at.ms()) + " ms lands inside the open window [" +
          std::to_string(now_.ms()) + ", " + std::to_string(window_end_.ms()) +
          ") ms; deterministic mode requires t >= crossHorizon()";
      return PostStatus::kRejected;
    }
    // Lax relaxation: bounded skew. The event slips to the barrier, at
    // most `lookahead` late — the documented kFast accuracy trade.
    at = window_end_;
    status = PostStatus::kClamped;
  }
  Mailbox& mb = mailbox(from, to);
  mb.posts.push_back(Post{at.ms(), mb.next_seq++, from, to, std::move(cb)});
  if (status == PostStatus::kClamped) {
    ++mb.clamped;
  }
  return status;
}

void ShardedEngine::drainMailboxes() {
  merge_scratch_.clear();
  for (Mailbox& mb : mailboxes_) {
    cross_posts_ += mb.posts.size();
    clamped_posts_ += mb.clamped;
    mb.clamped = 0;
    for (Post& p : mb.posts) {
      merge_scratch_.push_back(std::move(p));
    }
    mb.posts.clear();
  }
  // Canonical merge order: (time, src shard, per-src sequence). None of
  // the keys depend on thread interleaving, so the destination calendars'
  // tie-break sequence numbers are identical for every worker count.
  std::sort(merge_scratch_.begin(), merge_scratch_.end(),
            [](const Post& a, const Post& b) {
              if (a.at_ms != b.at_ms) {
                return a.at_ms < b.at_ms;
              }
              if (a.src != b.src) {
                return a.src < b.src;
              }
              return a.seq < b.seq;
            });
  for (Post& p : merge_scratch_) {
    shards_[p.dst]->scheduleAt(SimTime::millis(p.at_ms), std::move(p.cb));
  }
  merge_scratch_.clear();
  for (const auto& hook : barrier_hooks_) {
    hook();
  }
}

bool ShardedEngine::earliestEvent(SimTime* out) {
  bool any = false;
  SimTime best = SimTime::zero();
  for (const auto& shard : shards_) {
    SimTime t;
    if (shard->peekNextEvent(&t)) {
      if (!any || t < best) {
        best = t;
      }
      any = true;
    }
  }
  if (any) {
    *out = best;
  }
  return any;
}

void ShardedEngine::runUntil(SimTime until) {
  if (shards_.size() == 1) {
    // Degenerate single-queue engine: exactly the legacy code path.
    shards_[0]->runUntil(until);
    now_ = shards_[0]->now();
    return;
  }
  if (stop_requested_.exchange(false, std::memory_order_acq_rel)) {
    return;  // stop requested between runs: honor it, fire nothing
  }
  for (;;) {
    SimTime earliest;
    if (!earliestEvent(&earliest) || earliest > until) {
      for (auto& shard : shards_) {
        shard->runUntil(until);  // idle-forward every clock to the horizon
      }
      now_ = until;
      return;
    }
    const SimTime wend =
        std::min(until, earliest + config_.lookahead);
    window_end_ = wend;
    in_window_ = true;
    std::atomic<bool> stopped{false};
    if (config_.mode == parallel::SimMode::kDeterministic) {
      for (auto& shard : shards_) {
        if (!shard->runUntil(wend)) {
          stopped.store(true, std::memory_order_relaxed);
        }
      }
    } else {
      parallelFor(
          shards_.size(),
          [&](std::size_t i) {
            if (!shards_[i]->runUntil(wend)) {
              stopped.store(true, std::memory_order_relaxed);
            }
          },
          config_.threads);
    }
    in_window_ = false;
    ++windows_;
    drainMailboxes();
    ++barriers_;
    now_ = wend;
    if (stopped.load(std::memory_order_relaxed) ||
        stop_requested_.exchange(false, std::memory_order_acq_rel)) {
      return;
    }
  }
}

void ShardedEngine::exportMetrics(obs::MetricsRegistry& reg) const {
  reg.counter("sim.sharded.windows").set(windows_);
  reg.counter("sim.sharded.barriers").set(barriers_);
  reg.counter("sim.sharded.cross_posts").set(cross_posts_);
  reg.counter("sim.sharded.clamped_posts").set(clamped_posts_);
  reg.counter("sim.sharded.rejected_posts").set(rejected_posts_);
  reg.gauge("sim.sharded.shards").set(static_cast<double>(shards_.size()));
  std::uint64_t executed = 0;
  for (const auto& shard : shards_) {
    executed += shard->eventsExecuted();
  }
  reg.counter("sim.sharded.events_executed").set(executed);
}

}  // namespace rtdrm::sim
