#include "sim/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <utility>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace rtdrm::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ShardedEngine::ShardedEngine(ShardedConfig config) : config_(config) {
  RTDRM_ASSERT_MSG(config_.shards >= 1, "engine needs at least one shard");
  RTDRM_ASSERT_MSG(
      config_.shards == 1 || config_.lookahead > SimDuration::zero(),
      "sharded execution needs a positive lookahead");
  RTDRM_ASSERT_MSG(
      config_.shards == 1 || config_.sync_interval > SimDuration::zero(),
      "sharded execution needs a positive sync interval");
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  mailboxes_.resize(config_.shards * config_.shards);
  bit_words_ = (config_.shards + 63) / 64;
  mail_bits_.assign(config_.shards * bit_words_, 0);
  next_scratch_.resize(config_.shards);
  horizon_scratch_.resize(config_.shards);
  ran_scratch_.resize(config_.shards);
}

Simulator& ShardedEngine::shard(std::size_t i) {
  RTDRM_ASSERT(i < shards_.size());
  return *shards_[i];
}

const Simulator& ShardedEngine::shard(std::size_t i) const {
  RTDRM_ASSERT(i < shards_.size());
  return *shards_[i];
}

void ShardedEngine::addBarrierHook(std::function<void()> hook) {
  RTDRM_ASSERT(hook != nullptr);
  barrier_hooks_.push_back(std::move(hook));
}

SimTime ShardedEngine::postHorizon(std::size_t from) const {
  RTDRM_ASSERT(from < shards_.size());
  if (!in_window_) {
    return now_;
  }
  return shards_[from]->now() + config_.lookahead;
}

ShardedEngine::PostStatus ShardedEngine::post(std::size_t from,
                                              std::size_t to, SimTime at,
                                              Simulator::Callback cb) {
  RTDRM_ASSERT(from < shards_.size() && to < shards_.size());
  RTDRM_ASSERT(cb != nullptr);
  if (from == to) {
    // Ordinary same-calendar scheduling; the lookahead rule only guards
    // *cross*-shard causality.
    shards_[to]->scheduleAt(at, std::move(cb));
    return PostStatus::kScheduled;
  }
  if (!in_window_) {
    // Pre-run wiring or a sync-point hook: every shard is quiescent, the
    // coordinator owns all calendars — schedule directly.
    ++cross_posts_;
    shards_[to]->scheduleAt(at, std::move(cb));
    return PostStatus::kScheduled;
  }
  PostStatus status = PostStatus::kQueued;
  const SimTime horizon = shards_[from]->now() + config_.lookahead;
  if (at < horizon) {
    if (config_.mode == parallel::SimMode::kDeterministic) {
      // The modelled system cannot move anything across shards faster
      // than the lookahead; a destination may already have run past any
      // earlier instant. Refuse loudly rather than silently reorder.
      ++rejected_posts_;
      last_rejection_ =
          "cross-shard post from shard " + std::to_string(from) +
          " to shard " + std::to_string(to) + " at t=" +
          std::to_string(at.ms()) +
          " ms lands before the emitter's horizon " +
          std::to_string(horizon.ms()) +
          " ms; deterministic mode requires t >= postHorizon(from)";
      return PostStatus::kRejected;
    }
    // Lax relaxation: bounded skew. The event slips to the horizon, at
    // most `lookahead` late — the documented kFast accuracy trade.
    at = horizon;
    status = PostStatus::kClamped;
  }
  Mailbox& mb = mailbox(from, to);
  mb.posts.push_back(Post{at.ms(), mb.next_seq++, std::move(cb)});
  markActive(from, to);
  if (status == PostStatus::kClamped) {
    ++mb.clamped;
  }
  return status;
}

void ShardedEngine::drainMailboxes() {
  const std::size_t shard_count = shards_.size();
  for (std::size_t src = 0; src < shard_count; ++src) {
    for (std::size_t w = 0; w < bit_words_; ++w) {
      std::uint64_t bits = mail_bits_[src * bit_words_ + w];
      if (bits == 0) {
        continue;  // quiescent word: 64 (src,dst) pairs cost one load
      }
      mail_bits_[src * bit_words_ + w] = 0;
      while (bits != 0) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::size_t dst = w * 64 + b;
        Mailbox& mb = mailbox(src, dst);
        // The canonical (time, src, seq) order is intrinsic to the merged
        // calendar keys (Simulator::scheduleAtMerged), so this is a plain
        // pass — no sort, no scratch buffer.
        for (Post& p : mb.posts) {
          shards_[dst]->scheduleAtMerged(SimTime::millis(p.at_ms),
                                         static_cast<std::uint32_t>(src),
                                         p.seq, std::move(p.cb));
        }
        const std::uint64_t n = mb.posts.size();
        cross_posts_ += n;
        stats_.posts_merged += n;
        ++stats_.merge_batches;
        stats_.max_batch = std::max(stats_.max_batch, n);
        clamped_posts_ += mb.clamped;
        mb.clamped = 0;
        mb.posts.clear();  // slab retained: zero steady-state allocation
      }
    }
  }
}

void ShardedEngine::runBarrierHooks() {
  for (const auto& hook : barrier_hooks_) {
    hook();
  }
}

bool ShardedEngine::sweepShardStops() {
  bool any = false;
  for (auto& shard : shards_) {
    if (shard->consumeStopRequest()) {
      any = true;
    }
  }
  return any;
}

void ShardedEngine::recordWidth(double width_ms) {
  stats_.width_ms_sum += width_ms;
  stats_.max_width_ms = std::max(stats_.max_width_ms, width_ms);
  double threshold = 0.016;  // 16 us, ~= the Ethernet minimum lookahead
  std::size_t bucket = 0;
  while (bucket + 1 < WindowStats::kWidthBuckets &&
         width_ms >= threshold * 2.0) {
    threshold *= 2.0;
    ++bucket;
  }
  ++stats_.width_hist[bucket];
}

void ShardedEngine::runUntil(SimTime until) {
  if (shards_.size() == 1) {
    // Degenerate single-queue engine: exactly the legacy code path.
    shards_[0]->runUntil(until);
    now_ = shards_[0]->now();
    return;
  }
  if (stop_requested_.exchange(false, std::memory_order_acq_rel)) {
    return;  // stop requested between runs: honor it, fire nothing
  }
  const std::size_t shard_count = shards_.size();
  const double la = config_.lookahead.ms();
  const double sync = config_.sync_interval.ms();
  const double until_ms = until.ms();
  const bool adaptive =
      config_.policy == parallel::LookaheadPolicy::kAdaptive;
  // Sync points live on the absolute grid k * sync_interval, so the hook
  // schedule is identical no matter how a run is chopped into runUntil
  // calls or how windows are sized.
  double next_sync = (std::floor(now_.ms() / sync) + 1.0) * sync;
  for (;;) {
    // A stop pending on any shard halts the engine at this barrier even
    // if that shard's window would be skipped this round (the PR-6 loop
    // only noticed stops on shards it actually ran, and the idle path
    // swallowed them entirely).
    if (sweepShardStops() ||
        stop_requested_.exchange(false, std::memory_order_acq_rel)) {
      return;
    }
    // Earliest pending event per shard; the global min/second-min give
    // every shard its "earliest possible cross-shard emission by others".
    double e1 = kInf;
    double e2 = kInf;
    for (std::size_t k = 0; k < shard_count; ++k) {
      SimTime t;
      const double next = shards_[k]->peekNextEvent(&t) ? t.ms() : kInf;
      next_scratch_[k] = next;
      if (next < e1) {
        e2 = e1;
        e1 = next;
      } else if (next < e2) {
        e2 = next;
      }
    }
    if (e1 > until_ms) {
      break;  // nothing left to fire in this run: idle-forward and return
    }
    if (e1 >= next_sync) {
      // All events before the sync point have executed, on every shard —
      // the coherent instant where cross-shard snapshots refresh. Align
      // every shard clock to the sync instant first: hooks may probe
      // in-progress state that pro-rates by the shard's clock (e.g.
      // Processor::busyTime mid-stretch), and how far each clock lags
      // behind the sync point is an artifact of window sizing and skip
      // history — exactly what the lookahead policy must not leak through.
      // No shard has an event before next_sync, so this fires nothing.
      const SimTime sync_at = SimTime::millis(next_sync);
      for (auto& shard : shards_) {
        shard->runUntilBefore(sync_at);
      }
      now_ = sync_at;
      ++stats_.sync_points;
      ++barriers_;
      runBarrierHooks();
      next_sync += sync;
      continue;
    }
    // Horizons. A shard i can emit into j no earlier than R_i + lookahead,
    // where R_i is the earliest instant i could execute ANY event — its
    // own next event, or a wake-up merged from the round's earliest shard
    // (which lands no earlier than e1 + lookahead). So the conservative
    // per-shard bound is
    //   H_j = min_{i != j}( min(next_i, e1 + la) ) + la
    //       = min(others_j, e1 + la) + la.
    // For every shard except the round's earliest this collapses to the
    // static barrier e1 + la; the earliest shard itself — the only one the
    // static window actually constrains — widens to min(e2, e1 + la) + la,
    // up to double the static width on a dense calendar. Static: the PR-6
    // global window e1 + la for everyone. Both are capped at the sync
    // point so no window straddles a snapshot.
    for (std::size_t j = 0; j < shard_count; ++j) {
      const double others = next_scratch_[j] == e1 ? e2 : e1;
      const double raw =
          (adaptive ? std::min(others, e1 + la) : e1) + la;
      horizon_scratch_[j] = std::min(raw, next_sync);
    }
    in_window_ = true;
    const auto run_shard = [&](std::size_t j) {
      const double next_j = next_scratch_[j];
      const double h_j = horizon_scratch_[j];
      if (h_j <= until_ms) {
        // Half-open window [.., h_j): events exactly on the horizon wait
        // for the merge that may still land there.
        if (next_j < h_j) {
          ran_scratch_[j] =
              shards_[j]->runUntilBefore(SimTime::millis(h_j)) ? 1 : 2;
        } else {
          ran_scratch_[j] = 0;  // quiescent before its horizon: skip
        }
      } else {
        // Closed tail: the horizon cleared `until`, so no future post can
        // land at or before it — fire events exactly at `until` too,
        // matching Simulator::runUntil.
        if (next_j <= until_ms) {
          ran_scratch_[j] = shards_[j]->runUntil(until) ? 1 : 2;
        } else {
          ran_scratch_[j] = 0;
        }
      }
    };
    if (config_.mode == parallel::SimMode::kDeterministic) {
      for (std::size_t j = 0; j < shard_count; ++j) {
        run_shard(j);
      }
    } else {
      parallelFor(shard_count, run_shard, config_.threads);
    }
    in_window_ = false;
    ++stats_.rounds;
    bool stopped = false;
    double min_h = kInf;
    for (std::size_t j = 0; j < shard_count; ++j) {
      min_h = std::min(min_h, horizon_scratch_[j]);
      if (ran_scratch_[j] == 0) {
        ++stats_.shard_windows_skipped;
        continue;
      }
      ++stats_.shard_windows;
      recordWidth(std::min(horizon_scratch_[j], until_ms) -
                  next_scratch_[j]);
      if (ran_scratch_[j] == 2) {
        stopped = true;
      }
    }
    drainMailboxes();
    ++barriers_;
    now_ = SimTime::millis(std::min(min_h, until_ms));
    if (stopped ||
        stop_requested_.exchange(false, std::memory_order_acq_rel)) {
      return;
    }
  }
  for (auto& shard : shards_) {
    if (!shard->runUntil(until)) {
      // A stop raced in while idle-forwarding: halt here; the remaining
      // clocks stay put and the engine clock reflects the stopped shard.
      now_ = shard->now();
      return;
    }
  }
  now_ = until;
}

std::uint64_t ShardedEngine::eventsExecuted() const {
  std::uint64_t executed = 0;
  for (const auto& shard : shards_) {
    executed += shard->eventsExecuted();
  }
  return executed;
}

void ShardedEngine::exportMetrics(obs::MetricsRegistry& reg) const {
  reg.counter("sim.sharded.windows").set(stats_.rounds);
  reg.counter("sim.sharded.barriers").set(barriers_);
  reg.counter("sim.sharded.sync_points").set(stats_.sync_points);
  reg.counter("sim.sharded.shard_windows").set(stats_.shard_windows);
  reg.counter("sim.sharded.shard_windows_skipped")
      .set(stats_.shard_windows_skipped);
  reg.counter("sim.sharded.cross_posts").set(cross_posts_);
  reg.counter("sim.sharded.posts_merged").set(stats_.posts_merged);
  reg.counter("sim.sharded.merge_batches").set(stats_.merge_batches);
  reg.counter("sim.sharded.max_merge_batch").set(stats_.max_batch);
  reg.counter("sim.sharded.clamped_posts").set(clamped_posts_);
  reg.counter("sim.sharded.rejected_posts").set(rejected_posts_);
  reg.gauge("sim.sharded.shards").set(static_cast<double>(shards_.size()));
  reg.gauge("sim.sharded.window_width_ms_sum").set(stats_.width_ms_sum);
  reg.gauge("sim.sharded.window_width_ms_max").set(stats_.max_width_ms);
  for (std::size_t b = 0; b < WindowStats::kWidthBuckets; ++b) {
    reg.counter("sim.sharded.window_width_bucket_" + std::to_string(b))
        .set(stats_.width_hist[b]);
  }
  reg.counter("sim.sharded.events_executed").set(eventsExecuted());
}

}  // namespace rtdrm::sim
