// Event tracing: a timestamped record of what happened during a run.
//
// The resource manager (and anything else) can post events; examples and
// debugging sessions dump them as CSV timelines. Recording is bounded — on
// overflow the recorder counts drops instead of growing without limit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace rtdrm::sim {

enum class TraceCategory : std::uint8_t {
  kRelease,    ///< a periodic instance was released
  kStage,      ///< a pipeline stage completed
  kMiss,       ///< an end-to-end deadline was missed
  kReplicate,  ///< a replica was added
  kShutdown,   ///< a replica was shut down
  kCustom,
};

const char* traceCategoryName(TraceCategory cat);

struct TraceEvent {
  SimTime at;
  TraceCategory category = TraceCategory::kCustom;
  std::string label;
  double value = 0.0;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 100000)
      : capacity_(capacity) {}

  void record(SimTime at, TraceCategory category, std::string label,
              double value = 0.0);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t count(TraceCategory category) const;
  void clear();

  /// "time_ms,category,label,value" rows. Returns false on I/O failure.
  bool writeCsv(const std::string& path) const;

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace rtdrm::sim
