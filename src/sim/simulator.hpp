// Discrete-event simulation kernel.
//
// A single-threaded event calendar: callbacks are scheduled at absolute
// simulation times and executed in (time, insertion-order) order. Insertion
// order as the tie-break makes runs bit-reproducible — two events at the
// same timestamp always fire in the order they were scheduled, regardless
// of heap internals.
//
// Hot-path design (see docs/architecture.md, "Simulation kernel"):
//   * Closures live in a free-list slab of slots (closure + generation).
//     Scheduling reuses a freed slot or grows the slab; steady-state churn
//     performs zero allocations and zero map/set traffic.
//   * A 4-ary min-heap of 24-byte entries {time, seq, slot, generation}
//     orders the calendar. The sort key is stored *in* the entry, so sift
//     comparisons stay inside the contiguous heap array instead of chasing
//     slot pointers.
//   * cancel() is O(1): it bumps the slot's generation and releases the
//     closure immediately. The heap entry stays behind and is recognised
//     as stale (generation mismatch) when it reaches the head, at the cost
//     of one integer compare. If more than half the heap goes stale the
//     heap is pruned and rebuilt in one O(n) pass, so memory stays
//     proportional to the live event count.
//   * EventIds carry (generation << 32 | slot): a stale id — already fired
//     or cancelled, slot since reused — fails the generation check.
//   * Closures are stored as sim::EventFn (event_fn.hpp): move-only, with
//     inline storage for the common small captures.
//
// This is the substrate every other module runs on: processors, the
// Ethernet bus, clock sync, the workload source, and the resource manager
// are all just event producers/consumers on one Simulator.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "sim/event_fn.hpp"

namespace rtdrm::obs {
class MetricsRegistry;
}  // namespace rtdrm::obs

namespace rtdrm::sim {

/// Opaque handle to a scheduled event; used for cancellation.
struct EventId {
  std::uint64_t value = 0;
  constexpr auto operator<=>(const EventId&) const = default;
};

class Simulator {
 public:
  using Callback = EventFn<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `at` (must not be in the past).
  EventId scheduleAt(SimTime at, Callback cb);
  /// Schedule `cb` after a delay relative to now (delay >= 0).
  EventId scheduleAfter(SimDuration delay, Callback cb);

  /// Schedule a cross-shard post merged in by a sharded engine. The
  /// tie-break against same-time events is *intrinsic* — (source shard,
  /// per-source sequence), with every merged post ordered after every
  /// locally scheduled event at the same timestamp — instead of insertion
  /// order. That makes the execution order independent of *when* the
  /// engine merges the post (which barrier, which window-sizing policy),
  /// which is what keeps static- and adaptive-lookahead runs byte
  /// identical. Local scheduling order is untouched: merged posts do not
  /// consume local sequence numbers.
  EventId scheduleAtMerged(SimTime at, std::uint32_t src_shard,
                           std::uint64_t src_seq, Callback cb);

  /// Cancel a pending event. Returns false if it already fired, was already
  /// cancelled, or never existed. O(1): the closure is released here.
  bool cancel(EventId id);

  /// Run until the event queue drains or `until` is reached, whichever is
  /// first. The clock is left at min(until, time of last event). Events
  /// scheduled exactly at `until` do fire. Returns false when the run was
  /// cut short by requestStop() (consumed), true when it ran to the
  /// horizon / drained the queue.
  bool runUntil(SimTime until);
  /// Run for a duration from the current time.
  bool runFor(SimDuration d) { return runUntil(now_ + d); }
  /// Half-open variant: fires events strictly *before* `before` and leaves
  /// the clock at `before` (events exactly at `before` stay pending). The
  /// sharded engine executes barrier windows [now, horizon) with this, so
  /// a cross-shard post landing exactly on a shard's horizon still orders
  /// against that shard's same-time local events by the merged-post rule
  /// rather than by which side ran first. Stop handling as in runUntil.
  /// A `before` at or behind the clock fires nothing and keeps the clock.
  bool runUntilBefore(SimTime before);
  /// Run until the queue is completely empty. Returns false when stopped.
  bool runAll();
  /// Execute the single next event, if any. Returns false when queue empty.
  /// Unaffected by requestStop(): step() is already a single-event run.
  bool step();

  /// Time of the next live event without executing it; false when the
  /// calendar is empty. Prunes stale (cancelled) heads as a side effect,
  /// so the answer is exact, not an upper bound. The sharded engine sizes
  /// its barrier windows with this.
  bool peekNextEvent(SimTime* out);

  /// Installs a hook invoked after every executed event's callback returns
  /// (correctness oracles sweep system invariants here). Pass nullptr to
  /// clear. At most one hook; the previous one is replaced.
  void setPostEventHook(Callback hook) { post_hook_ = std::move(hook); }
  bool hasPostEventHook() const { return post_hook_ != nullptr; }

  /// Request that the run loop stop after the current event returns.
  ///
  /// Semantics: the flag is *consumed* by the run loop, not reset on entry.
  /// If requestStop() is called while no run loop is active, the next
  /// runUntil/runFor/runAll returns immediately — firing no events and
  /// leaving the clock untouched — and clears the flag, so the run after
  /// that proceeds normally. A stop requested mid-run halts the loop after
  /// the current callback returns, leaving the clock at that event's time.
  ///
  /// The flag is an atomic handshake: requestStop()/stopPending() are safe
  /// from any thread (e.g. asking a shard to wind down from the sharded
  /// engine's coordinator), though the run loops themselves stay
  /// single-threaded per simulator.
  void requestStop() {
    stop_requested_.store(true, std::memory_order_release);
  }
  /// True when a stop has been requested but no run loop has consumed it.
  bool stopPending() const {
    return stop_requested_.load(std::memory_order_acquire);
  }
  /// Consumes a pending stop request without running anything; returns
  /// true if one was pending. The sharded engine uses this to honor a
  /// shard-level stop on a shard whose window was *skipped* (adaptive
  /// lookahead) — the request must still halt the engine exactly once, not
  /// linger to spuriously cut a later run short.
  bool consumeStopRequest() { return consumeStop(); }

  std::uint64_t eventsExecuted() const { return events_executed_; }
  std::size_t pendingEvents() const { return live_; }
  std::uint64_t eventsScheduled() const { return events_scheduled_; }
  std::uint64_t eventsCancelled() const { return events_cancelled_; }
  /// High-water mark of the calendar heap (live + stale entries).
  std::size_t peakHeapDepth() const { return peak_heap_depth_; }

  /// Publishes kernel counters into `reg` under "sim." names.
  void exportMetrics(obs::MetricsRegistry& reg) const;

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Slot {
    Callback cb;
    std::uint32_t generation = 1;  // bumped on release; 0 is never valid
    std::uint32_t next_free = kNoSlot;
  };

  struct HeapEntry {
    double time_ms;
    /// Same-time tie-break key. Local events: plain insertion order (top
    /// bit clear), FIFO as always. Merged cross-shard posts: top bit set,
    /// then (source shard, per-source sequence) — a canonical order that
    /// does not depend on when the post was merged in. All locals at a
    /// timestamp fire before all merged posts at that timestamp.
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation; // stale when != slots_[slot].generation
  };

  static constexpr std::uint64_t kMergedBand = 1ull << 63;

  static bool firesBefore(const HeapEntry& a, const HeapEntry& b) {
    if (a.time_ms != b.time_ms) {
      return a.time_ms < b.time_ms;
    }
    return a.seq < b.seq;
  }

  EventId scheduleKeyed(SimTime at, std::uint64_t seq_key, Callback cb);
  std::uint32_t acquireSlot();
  void releaseSlot(std::uint32_t idx);
  void heapPush(const HeapEntry& e);
  void heapPopHead();
  /// Drops stale entries and rebuilds the heap in place, O(n).
  void pruneStale();

  /// Pops the head entry; executes it unless stale. Returns true when a
  /// live event ran. Pre: heap non-empty.
  bool fireHead();
  /// Consumes a pending stop request; returns true if one was pending.
  bool consumeStop() {
    // Cheap fast path: loads dodge the RMW until a stop is actually seen.
    if (!stop_requested_.load(std::memory_order_acquire)) {
      return false;
    }
    return stop_requested_.exchange(false, std::memory_order_acq_rel);
  }

  SimTime now_ = SimTime::zero();
  Callback post_hook_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  std::uint64_t events_scheduled_ = 0;
  std::uint64_t events_cancelled_ = 0;
  std::size_t peak_heap_depth_ = 0;
  std::atomic<bool> stop_requested_{false};

  std::vector<Slot> slots_;           // slab; index == slot id
  std::uint32_t free_head_ = kNoSlot; // head of the freed-slot list
  std::vector<HeapEntry> heap_;       // 4-ary min-heap by (time, seq)
  std::size_t live_ = 0;              // scheduled and not cancelled
  std::size_t stale_ = 0;             // cancelled entries still in heap_
};

/// A recurring activity: reschedules itself every `period` until stopped.
/// The callback receives the activity's tick index (0-based).
class PeriodicActivity {
 public:
  using TickFn = EventFn<void(std::uint64_t)>;

  PeriodicActivity(Simulator& simulator, SimDuration period, TickFn fn);
  ~PeriodicActivity() { stop(); }
  PeriodicActivity(const PeriodicActivity&) = delete;
  PeriodicActivity& operator=(const PeriodicActivity&) = delete;

  /// Arm the activity: first tick at `first`, then every period.
  void start(SimTime first);
  /// Cancel future ticks. Safe to call repeatedly or from within the tick.
  void stop();
  /// Change the inter-tick period (elastic period adjustment). Takes
  /// effect when the *next* tick re-arms: the already-pending occurrence
  /// keeps its scheduled time, so a mid-cycle change never moves or
  /// duplicates a tick. Deterministic: the new cadence depends only on
  /// when this is called relative to the tick sequence.
  void setPeriod(SimDuration period);
  SimDuration period() const { return period_; }
  bool running() const { return running_; }
  std::uint64_t ticks() const { return tick_; }

 private:
  void arm(SimTime at);

  Simulator& sim_;
  SimDuration period_;
  TickFn fn_;
  EventId pending_{};
  std::uint64_t tick_ = 0;
  bool running_ = false;
};

}  // namespace rtdrm::sim
