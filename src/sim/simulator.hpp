// Discrete-event simulation kernel.
//
// A single-threaded event calendar: callbacks are scheduled at absolute
// simulation times and executed in (time, insertion-order) order. Insertion
// order as the tie-break makes runs bit-reproducible — two events at the
// same timestamp always fire in the order they were scheduled, regardless
// of heap internals.
//
// This is the substrate every other module runs on: processors, the
// Ethernet bus, clock sync, the workload source, and the resource manager
// are all just event producers/consumers on one Simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/units.hpp"

namespace rtdrm::sim {

/// Opaque handle to a scheduled event; used for cancellation.
struct EventId {
  std::uint64_t value = 0;
  constexpr auto operator<=>(const EventId&) const = default;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  SimTime now() const { return now_; }

  /// Schedule `cb` at absolute time `at` (must not be in the past).
  EventId scheduleAt(SimTime at, Callback cb);
  /// Schedule `cb` after a delay relative to now (delay >= 0).
  EventId scheduleAfter(SimDuration delay, Callback cb);

  /// Cancel a pending event. Returns false if it already fired, was already
  /// cancelled, or never existed.
  bool cancel(EventId id);

  /// Run until the event queue drains or `until` is reached, whichever is
  /// first. The clock is left at min(until, time of last event). Events
  /// scheduled exactly at `until` do fire.
  void runUntil(SimTime until);
  /// Run for a duration from the current time.
  void runFor(SimDuration d) { runUntil(now_ + d); }
  /// Run until the queue is completely empty.
  void runAll();
  /// Execute the single next event, if any. Returns false when queue empty.
  bool step();

  /// Request that the run loop stop after the current event returns.
  void requestStop() { stop_requested_ = true; }

  std::uint64_t eventsExecuted() const { return events_executed_; }
  std::size_t pendingEvents() const {
    return heap_.size() - cancelled_.size();
  }

 private:
  struct Entry {
    double time_ms;
    std::uint64_t seq;
    // Index into callbacks storage (== seq; callbacks keyed by seq).
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time_ms != b.time_ms) {
        return a.time_ms > b.time_ms;
      }
      return a.seq > b.seq;
    }
  };

  /// Pops and executes the head entry. Pre: heap non-empty.
  void fireHead();

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  bool stop_requested_ = false;

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Callbacks are stored out-of-band keyed by seq so cancelled entries can
  // release their closures immediately.
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::unordered_set<std::uint64_t> cancelled_;
};

/// A recurring activity: reschedules itself every `period` until stopped.
/// The callback receives the activity's tick index (0-based).
class PeriodicActivity {
 public:
  using TickFn = std::function<void(std::uint64_t tick)>;

  PeriodicActivity(Simulator& simulator, SimDuration period, TickFn fn);
  ~PeriodicActivity() { stop(); }
  PeriodicActivity(const PeriodicActivity&) = delete;
  PeriodicActivity& operator=(const PeriodicActivity&) = delete;

  /// Arm the activity: first tick at `first`, then every period.
  void start(SimTime first);
  /// Cancel future ticks. Safe to call repeatedly or from within the tick.
  void stop();
  bool running() const { return running_; }
  std::uint64_t ticks() const { return tick_; }

 private:
  void arm(SimTime at);

  Simulator& sim_;
  SimDuration period_;
  TickFn fn_;
  EventId pending_{};
  std::uint64_t tick_ = 0;
  bool running_ = false;
};

}  // namespace rtdrm::sim
