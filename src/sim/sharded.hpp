// Sharded parallel event kernel with conservative time barriers.
//
// A ShardedEngine drives K independent sim::Simulator instances ("shards")
// in lock-step windows. Shard 0 is the control shard (Ethernet segment,
// clock fabric, managers, pipelines); shards 1..K-1 own disjoint groups of
// node-local state (processors, background load). Within a window shards
// never touch each other's state; everything crossing a shard boundary
// travels as a timestamped *post* through a per-(src,dst) mailbox and is
// merged into the destination calendar at the next barrier.
//
// Causality (conservative, Graphite/YAWNS-style barrier sync): each window
// spans [E, min(horizon, E + lookahead)) where E is the earliest pending
// event across all shards and `lookahead` is the minimum cross-shard
// latency of the modelled system (Ethernet propagation + minimum frame
// wire time — see net::EthernetConfig::minCrossShardLatency()). A post
// made during a window must therefore target a time at or after the
// window barrier; it can never land in a co-shard's past.
//
// Two modes (parallel::SimMode):
//   * kDeterministic — shards execute each window sequentially in fixed
//     shard order. Global-state observers (the invariant oracle's
//     post-event sweeps) remain safe, and results are byte-identical for
//     every worker-thread count. A post into the open window is REJECTED
//     with a diagnostic (recorded in lastRejection()) — never silently
//     reordered.
//   * kFast — shards execute each window concurrently on the persistent
//     worker pool (common/parallel.hpp). An in-window post is CLAMPED to
//     the barrier (bounded timestamp skew <= lookahead, the lax-sync
//     relaxation) and counted. Mailbox merging stays canonical — sorted
//     by (time, src shard, per-src sequence) — so the merge order never
//     depends on thread interleaving.
//
// Degeneration: a 1-shard engine routes runUntil/runAll straight to the
// single Simulator and posts become plain scheduleAt calls — exactly the
// single-queue code path the rest of the repo has always run.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::obs {
class MetricsRegistry;
}  // namespace rtdrm::obs

namespace rtdrm::sim {

struct ShardedConfig {
  /// Total shard count, including the control shard 0. 1 = degenerate
  /// single-queue engine.
  std::size_t shards = 1;
  /// Window execution mode; defaults to the process-wide setting.
  parallel::SimMode mode = parallel::SimMode::kDeterministic;
  /// Conservative lookahead: minimum latency of any cross-shard
  /// interaction in the modelled system. Must be > 0 when shards > 1.
  SimDuration lookahead = SimDuration::micros(10.0);
  /// Worker budget for kFast window execution (0 = parallel::config()).
  unsigned threads = 0;
};

class ShardedEngine {
 public:
  /// Outcome of a cross-shard post.
  enum class PostStatus {
    kScheduled,  ///< same-shard or pre-run: entered the calendar directly
    kQueued,     ///< mailboxed; merges into the target at the next barrier
    kClamped,    ///< kFast only: time was inside the window, moved to the
                 ///< barrier (bounded skew)
    kRejected,   ///< kDeterministic: time was inside the window; dropped
                 ///< loudly (see lastRejection())
  };

  explicit ShardedEngine(ShardedConfig config);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  const ShardedConfig& config() const { return config_; }
  std::size_t shardCount() const { return shards_.size(); }
  Simulator& shard(std::size_t i);
  const Simulator& shard(std::size_t i) const;
  /// The control shard (Ethernet, clocks, managers live here).
  Simulator& control() { return shard(0); }

  /// Engine clock: the last completed barrier (== every shard's minimum
  /// guaranteed progress). Individual shards may sit up to one window
  /// ahead of this between barriers.
  SimTime now() const { return now_; }

  /// Earliest time a cross-shard post made *now* may legally target:
  /// the current window barrier while a window is open, else the engine
  /// clock. Callers posting zero-latency work use this as the timestamp.
  SimTime crossHorizon() const { return in_window_ ? window_end_ : now_; }
  /// True while shards are executing a window (posts must respect
  /// crossHorizon()).
  bool inWindow() const { return in_window_; }

  /// Schedules `cb` on shard `to` at absolute time `at`. `from` is the
  /// shard of the calling context and fixes the canonical merge order.
  /// Same-shard posts (from == to) enter the calendar directly and are
  /// exempt from the lookahead rule — they are ordinary scheduling.
  PostStatus post(std::size_t from, std::size_t to, SimTime at,
                  Simulator::Callback cb);

  /// Runs every shard to `until` in barrier-synchronized windows (events
  /// exactly at `until` fire, matching Simulator::runUntil). Honors
  /// requestStop() — both the engine's and any shard's — at window
  /// granularity.
  void runUntil(SimTime until);
  void runFor(SimDuration d) { runUntil(now_ + d); }

  /// Asks the window loop to stop at the next barrier. Safe to call from
  /// any thread (atomic handshake, mirroring Simulator::requestStop).
  void requestStop() { stop_requested_.store(true, std::memory_order_release); }
  bool stopPending() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  /// Registers a hook that runs at every barrier with all shards
  /// quiescent — the one place cross-shard state may be read coherently
  /// (the cluster refreshes its busy-time snapshot here). Hooks run in
  /// registration order, on the coordinating thread.
  void addBarrierHook(std::function<void()> hook);

  // --- engine counters (stable once the engine is quiescent) ---
  std::uint64_t windowsRun() const { return windows_; }
  std::uint64_t barriersRun() const { return barriers_; }
  std::uint64_t crossPosts() const { return cross_posts_; }
  std::uint64_t clampedPosts() const { return clamped_posts_; }
  std::uint64_t rejectedPosts() const { return rejected_posts_; }
  /// Diagnostic for the most recent kRejected post (empty when none).
  const std::string& lastRejection() const { return last_rejection_; }

  /// Publishes engine counters into `reg` under "sim.sharded." names.
  void exportMetrics(obs::MetricsRegistry& reg) const;

 private:
  struct Post {
    double at_ms = 0.0;
    std::uint64_t seq = 0;  ///< per-source order; canonical tie-break
    std::size_t src = 0;
    std::size_t dst = 0;
    Simulator::Callback cb;
  };

  /// One single-producer mailbox per (src, dst) shard pair. The producer
  /// is whichever thread executes shard `src`'s window; the coordinator
  /// drains at barriers, after the pool join (so no locking is needed).
  struct Mailbox {
    std::vector<Post> posts;
    std::uint64_t next_seq = 1;
    /// kFast in-window posts moved to the barrier since the last drain.
    /// Per-mailbox so concurrent shard threads never share a counter; the
    /// coordinator aggregates into clamped_posts_ at the barrier.
    std::uint64_t clamped = 0;
  };

  Mailbox& mailbox(std::size_t src, std::size_t dst) {
    return mailboxes_[src * shards_.size() + dst];
  }

  /// Merges all mailboxed posts into their target calendars in canonical
  /// (time, src, seq) order, then runs barrier hooks.
  void drainMailboxes();
  /// Earliest pending event time across shards; false when all idle.
  bool earliestEvent(SimTime* out);

  ShardedConfig config_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<Mailbox> mailboxes_;
  std::vector<Post> merge_scratch_;
  std::vector<std::function<void()>> barrier_hooks_;

  SimTime now_ = SimTime::zero();
  SimTime window_end_ = SimTime::zero();
  bool in_window_ = false;
  std::atomic<bool> stop_requested_{false};

  std::uint64_t windows_ = 0;
  std::uint64_t barriers_ = 0;
  std::uint64_t cross_posts_ = 0;
  std::uint64_t clamped_posts_ = 0;
  std::uint64_t rejected_posts_ = 0;
  std::string last_rejection_;
};

}  // namespace rtdrm::sim
