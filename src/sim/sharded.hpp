// Sharded parallel event kernel with conservative time barriers.
//
// A ShardedEngine drives K independent sim::Simulator instances ("shards")
// in barrier-synchronized rounds. Shard 0 is the control shard (Ethernet
// segment, clock fabric, managers, pipelines); shards 1..K-1 own disjoint
// groups of node-local state (processors, background load). Within a round
// shards never touch each other's state; everything crossing a shard
// boundary travels as a timestamped *post* through a per-(src,dst)
// single-producer mailbox and is merged into the destination calendar at
// the round's barrier.
//
// Causality (conservative, Graphite/YAWNS-style): `lookahead` is the
// minimum cross-shard latency of the modelled system (Ethernet propagation
// plus minimum frame wire time — net::EthernetConfig::minCrossShardLatency).
// An event executing at time t on shard i may only post work at t +
// lookahead or later (postHorizon()). Window sizing is a policy
// (parallel::LookaheadPolicy):
//
//   * kStatic — every shard runs the same global window [E, E + lookahead)
//     where E is the earliest pending event anywhere. The PR-6 baseline.
//   * kAdaptive — shard j runs to H_j = min_{i != j}(R_i) + lookahead,
//     where R_i = min(next_i, E + lookahead) is the earliest instant
//     shard i could execute anything: its own next event, or a wake-up
//     merged from the round's earliest shard (which cannot land before
//     E + lookahead — posts themselves are bounded by the lookahead, so
//     chains of wake-ups are too). For every shard but the round's
//     earliest this collapses to the static barrier; the earliest shard —
//     the only one the static window actually constrains — widens to
//     min(second-earliest event, E + lookahead) + lookahead, clearing up
//     to twice the static window's events per round on a dense calendar.
//     A shard with no events before its horizon skips the round entirely.
//     H_j never crosses a possible cross-shard emission, so the executed
//     event order — and therefore every digest — is byte-identical to
//     kStatic.
//
// Three mechanisms make the executed order independent of the window
// structure (the adaptive-window determinism invariant; the formal
// argument lives in docs/architecture.md):
//   1. Windows are half-open: shards execute events strictly before their
//      horizon (Simulator::runUntilBefore), so a post landing exactly on a
//      horizon still orders against same-time local events by rule 3.
//   2. Post timestamps come from the *emitting event* (postHorizon() =
//      emitter time + lookahead), not from the window barrier.
//   3. Merged posts carry an intrinsic tie-break key — after all local
//      events at the same timestamp, then by (source shard, per-source
//      sequence) (Simulator::scheduleAtMerged) — so *when* a post is
//      merged cannot affect where it sorts.
//
// Barrier hooks run at fixed *sync points* — multiples of sync_interval
// reached while events are still pending — where every shard has executed
// exactly the events before the sync time. That schedule depends only on
// the event calendar, never on the window structure, keeping hook
// side-effects (the cluster's busy-time snapshot) policy-invariant.
//
// Two execution modes (parallel::SimMode): kDeterministic runs each
// round's windows sequentially in fixed shard order (byte-identical for
// every worker-thread count); kFast runs them concurrently on the
// persistent worker pool and CLAMPS an early post to its horizon (bounded
// skew <= lookahead) instead of rejecting it.
//
// Degeneration: a 1-shard engine routes runUntil/runAll straight to the
// single Simulator and posts become plain scheduleAt calls — exactly the
// single-queue code path the rest of the repo has always run.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::obs {
class MetricsRegistry;
}  // namespace rtdrm::obs

namespace rtdrm::sim {

struct ShardedConfig {
  /// Total shard count, including the control shard 0. 1 = degenerate
  /// single-queue engine.
  std::size_t shards = 1;
  /// Window execution mode; defaults to the process-wide setting.
  parallel::SimMode mode = parallel::SimMode::kDeterministic;
  /// Barrier-window sizing policy (static baseline vs adaptive widening).
  parallel::LookaheadPolicy policy = parallel::LookaheadPolicy::kAdaptive;
  /// Conservative lookahead: minimum latency of any cross-shard
  /// interaction in the modelled system. Must be > 0 when shards > 1.
  SimDuration lookahead = SimDuration::micros(10.0);
  /// Barrier hooks run at multiples of this interval (sync points), where
  /// every shard has executed exactly the events before the sync time.
  /// Bounds the staleness of cross-shard snapshots. Must be > 0.
  SimDuration sync_interval = SimDuration::millis(1.0);
  /// Worker budget for kFast window execution (0 = parallel::config()).
  unsigned threads = 0;
};

class ShardedEngine {
 public:
  /// Outcome of a cross-shard post.
  enum class PostStatus {
    kScheduled,  ///< same-shard or between-rounds: entered the calendar
                 ///< directly
    kQueued,     ///< mailboxed; merges into the target at the next barrier
    kClamped,    ///< kFast only: time was before the emitter's horizon,
                 ///< moved to it (bounded skew)
    kRejected,   ///< kDeterministic: time was before the emitter's
                 ///< horizon; dropped loudly (see lastRejection())
  };

  /// Barrier-path profile: how much synchronization work a run performed.
  struct WindowStats {
    std::uint64_t rounds = 0;          ///< barrier rounds executed
    std::uint64_t shard_windows = 0;   ///< per-shard windows actually run
    std::uint64_t shard_windows_skipped = 0;  ///< horizon held no events
    std::uint64_t sync_points = 0;     ///< barrier-hook sync points reached
    std::uint64_t posts_merged = 0;    ///< mailbox posts merged at barriers
    std::uint64_t merge_batches = 0;   ///< non-empty (src,dst) drains
    std::uint64_t max_batch = 0;       ///< largest single (src,dst) batch
    double width_ms_sum = 0.0;  ///< sum of executed window widths (H - next)
    double max_width_ms = 0.0;  ///< widest executed window
    /// Power-of-two width histogram: bucket b counts executed windows with
    /// width in [16us * 2^b, 16us * 2^(b+1)) (last bucket unbounded).
    static constexpr std::size_t kWidthBuckets = 8;
    std::uint64_t width_hist[kWidthBuckets] = {};
  };

  explicit ShardedEngine(ShardedConfig config);
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  const ShardedConfig& config() const { return config_; }
  std::size_t shardCount() const { return shards_.size(); }
  Simulator& shard(std::size_t i);
  const Simulator& shard(std::size_t i) const;
  /// The control shard (Ethernet, clocks, managers live here).
  Simulator& control() { return shard(0); }

  /// Engine clock: the last completed barrier (== every shard's minimum
  /// guaranteed progress). Individual shards may sit ahead of this
  /// between barriers, up to their last window horizon.
  SimTime now() const { return now_; }

  /// Earliest time a cross-shard post from shard `from` may legally
  /// target right now: the calling shard's current time plus the
  /// lookahead while a round is executing (the modelled minimum
  /// cross-shard latency), else the engine clock. Callers posting
  /// "zero-latency" control work use this as the timestamp. The value
  /// depends only on the emitting event's time, never on the window
  /// structure — the keystone of static/adaptive digest parity.
  SimTime postHorizon(std::size_t from) const;
  /// True while shards are executing a round (posts must respect
  /// postHorizon()).
  bool inWindow() const { return in_window_; }

  /// Schedules `cb` on shard `to` at absolute time `at`. `from` is the
  /// shard of the calling context and fixes the canonical merge order.
  /// Same-shard posts (from == to) enter the calendar directly and are
  /// exempt from the lookahead rule — they are ordinary scheduling.
  PostStatus post(std::size_t from, std::size_t to, SimTime at,
                  Simulator::Callback cb);

  /// Runs every shard to `until` in barrier-synchronized rounds (events
  /// exactly at `until` fire, matching Simulator::runUntil). Honors
  /// requestStop() — both the engine's and any shard's — at barrier
  /// granularity; a shard-level stop halts the engine even when that
  /// shard's window was skipped or the engine was idle-forwarding.
  void runUntil(SimTime until);
  void runFor(SimDuration d) { runUntil(now_ + d); }

  /// Asks the window loop to stop at the next barrier. Safe to call from
  /// any thread (atomic handshake, mirroring Simulator::requestStop).
  void requestStop() { stop_requested_.store(true, std::memory_order_release); }
  bool stopPending() const {
    return stop_requested_.load(std::memory_order_acquire);
  }

  /// Registers a hook that runs at every sync point with all shards
  /// quiescent and every event before the sync time executed — the one
  /// place cross-shard state may be read coherently (the cluster
  /// refreshes its busy-time snapshot here). Hooks run in registration
  /// order, on the coordinating thread.
  void addBarrierHook(std::function<void()> hook);

  // --- engine counters (stable once the engine is quiescent) ---
  std::uint64_t windowsRun() const { return stats_.rounds; }
  std::uint64_t barriersRun() const { return barriers_; }
  std::uint64_t syncPointsRun() const { return stats_.sync_points; }
  std::uint64_t crossPosts() const { return cross_posts_; }
  std::uint64_t clampedPosts() const { return clamped_posts_; }
  std::uint64_t rejectedPosts() const { return rejected_posts_; }
  const WindowStats& windowStats() const { return stats_; }
  /// Total events executed across all shards.
  std::uint64_t eventsExecuted() const;
  /// Diagnostic for the most recent kRejected post (empty when none).
  const std::string& lastRejection() const { return last_rejection_; }

  /// Publishes engine counters into `reg` under "sim.sharded." names.
  void exportMetrics(obs::MetricsRegistry& reg) const;

 private:
  struct Post {
    double at_ms = 0.0;
    std::uint64_t seq = 0;  ///< per-(src,dst) order; canonical tie-break
    Simulator::Callback cb;
  };

  /// One single-producer mailbox per (src, dst) shard pair. The producer
  /// is whichever thread executes shard `src`'s window; the coordinator
  /// drains at barriers, after the pool join (so no locking is needed).
  /// `posts` is a retained slab: cleared at every drain, never shrunk, so
  /// steady-state traffic performs zero allocations.
  struct Mailbox {
    std::vector<Post> posts;
    std::uint64_t next_seq = 1;
    /// kFast posts moved to the emitter's horizon since the last drain.
    /// Per-mailbox so concurrent shard threads never share a counter; the
    /// coordinator aggregates into clamped_posts_ at the barrier.
    std::uint64_t clamped = 0;
  };

  Mailbox& mailbox(std::size_t src, std::size_t dst) {
    return mailboxes_[src * shards_.size() + dst];
  }
  /// Marks (src,dst) active in the quiescence bitmap. Only shard `src`'s
  /// executor writes src's row, so no atomics are needed.
  void markActive(std::size_t src, std::size_t dst) {
    mail_bits_[src * bit_words_ + dst / 64] |= 1ull << (dst % 64);
  }

  /// Merges every active mailbox's posts into their target calendars.
  /// The canonical (time, src, seq) order is intrinsic to the merged-post
  /// calendar keys, so the drain is a single pass — no sort — and the
  /// quiescence bitmap limits it to (src,dst) pairs that actually posted.
  void drainMailboxes();
  void runBarrierHooks();
  /// Consumes pending shard-level stop requests; true if any was pending.
  bool sweepShardStops();
  void recordWidth(double width_ms);

  ShardedConfig config_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<Mailbox> mailboxes_;
  /// Quiescence bitmap: bit (src,dst) set when mailbox(src,dst) is
  /// non-empty. Row src is written only by src's executor thread.
  std::vector<std::uint64_t> mail_bits_;
  std::size_t bit_words_ = 1;  ///< 64-bit words per bitmap row
  std::vector<double> next_scratch_;   ///< per-round next-event times (ms)
  std::vector<double> horizon_scratch_;  ///< per-round shard horizons (ms)
  /// Per-round shard outcome: 0 skipped, 1 ran, 2 ran and consumed a stop.
  /// Each worker writes only its own slot; the coordinator aggregates.
  std::vector<unsigned char> ran_scratch_;
  std::vector<std::function<void()>> barrier_hooks_;

  SimTime now_ = SimTime::zero();
  bool in_window_ = false;
  std::atomic<bool> stop_requested_{false};

  WindowStats stats_;
  std::uint64_t barriers_ = 0;
  std::uint64_t cross_posts_ = 0;
  std::uint64_t clamped_posts_ = 0;
  std::uint64_t rejected_posts_ = 0;
  std::string last_rejection_;
};

}  // namespace rtdrm::sim
