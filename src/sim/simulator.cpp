#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace rtdrm::sim {

namespace {
// 4-ary heap: shallower than binary for the same size, so push/pop walk
// fewer levels; the 4-way child scan stays within two cache lines.
constexpr std::size_t kArity = 4;
}  // namespace

std::uint32_t Simulator::acquireSlot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t idx = free_head_;
    free_head_ = slots_[idx].next_free;
    return idx;
  }
  RTDRM_ASSERT_MSG(slots_.size() < kNoSlot, "event slab exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::releaseSlot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.cb = nullptr;  // release the closure immediately
  ++s.generation;  // invalidates the outstanding EventId and heap entry
  s.next_free = free_head_;
  free_head_ = idx;
}

void Simulator::heapPush(const HeapEntry& e) {
  std::size_t pos = heap_.size();
  heap_.push_back(e);
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kArity;
    if (!firesBefore(e, heap_[parent])) {
      break;
    }
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = e;
}

void Simulator::heapPopHead() {
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  const std::size_t size = heap_.size();
  if (size == 0) {
    return;
  }
  std::size_t pos = 0;
  for (;;) {
    const std::size_t first_child = pos * kArity + 1;
    if (first_child >= size) {
      break;
    }
    const std::size_t last_child = std::min(first_child + kArity, size);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (firesBefore(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!firesBefore(heap_[best], moved)) {
      break;
    }
    heap_[pos] = heap_[best];
    pos = best;
  }
  heap_[pos] = moved;
}

void Simulator::pruneStale() {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const HeapEntry& e) {
                               return slots_[e.slot].generation !=
                                      e.generation;
                             }),
              heap_.end());
  stale_ = 0;
  // Heapify bottom-up (Floyd): O(n).
  if (heap_.size() < 2) {
    return;
  }
  for (std::size_t pos = (heap_.size() - 2) / kArity + 1; pos-- > 0;) {
    const HeapEntry e = heap_[pos];
    std::size_t hole = pos;
    const std::size_t size = heap_.size();
    for (;;) {
      const std::size_t first_child = hole * kArity + 1;
      if (first_child >= size) {
        break;
      }
      const std::size_t last_child = std::min(first_child + kArity, size);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (firesBefore(heap_[c], heap_[best])) {
          best = c;
        }
      }
      if (!firesBefore(heap_[best], e)) {
        break;
      }
      heap_[hole] = heap_[best];
      hole = best;
    }
    heap_[hole] = e;
  }
}

EventId Simulator::scheduleKeyed(SimTime at, std::uint64_t seq_key,
                                 Callback cb) {
  RTDRM_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  RTDRM_ASSERT(cb != nullptr);
  const std::uint32_t idx = acquireSlot();
  Slot& s = slots_[idx];
  s.cb = std::move(cb);
  heapPush(HeapEntry{at.ms(), seq_key, idx, s.generation});
  ++live_;
  ++events_scheduled_;
  if (heap_.size() > peak_heap_depth_) {
    peak_heap_depth_ = heap_.size();
  }
  return EventId{(static_cast<std::uint64_t>(s.generation) << 32) | idx};
}

EventId Simulator::scheduleAt(SimTime at, Callback cb) {
  return scheduleKeyed(at, next_seq_++, std::move(cb));
}

EventId Simulator::scheduleAtMerged(SimTime at, std::uint32_t src_shard,
                                    std::uint64_t src_seq, Callback cb) {
  RTDRM_ASSERT_MSG(src_shard < (1u << 15), "shard id overflows the key");
  RTDRM_ASSERT_MSG(src_seq < (1ull << 48), "post sequence overflows the key");
  const std::uint64_t key =
      kMergedBand | (static_cast<std::uint64_t>(src_shard) << 48) | src_seq;
  return scheduleKeyed(at, key, std::move(cb));
}

EventId Simulator::scheduleAfter(SimDuration delay, Callback cb) {
  RTDRM_ASSERT_MSG(delay >= SimDuration::zero(), "negative delay");
  return scheduleAt(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventId id) {
  const std::uint32_t idx = static_cast<std::uint32_t>(id.value & 0xffffffffu);
  const std::uint32_t gen = static_cast<std::uint32_t>(id.value >> 32);
  if (gen == 0 || idx >= slots_.size() || slots_[idx].generation != gen) {
    return false;  // never existed, already fired, or already cancelled
  }
  releaseSlot(idx);
  --live_;
  ++stale_;
  ++events_cancelled_;
  // Keep the heap at most half dead so memory tracks the live count.
  if (stale_ > heap_.size() / 2 && heap_.size() > 64) {
    pruneStale();
  }
  return true;
}

bool Simulator::fireHead() {
  const HeapEntry e = heap_[0];
  heapPopHead();
  Slot& s = slots_[e.slot];
  if (s.generation != e.generation) {
    --stale_;  // cancelled earlier; its closure is long gone
    return false;
  }
  now_ = SimTime::millis(e.time_ms);
  Callback cb = std::move(s.cb);
  releaseSlot(e.slot);  // before invoking: the id is dead once it fires
  --live_;
  ++events_executed_;
  cb();
  if (post_hook_ != nullptr) {
    post_hook_();
  }
  return true;
}

bool Simulator::runUntil(SimTime until) {
  if (consumeStop()) {
    return false;  // stop requested between runs: honor it, fire nothing
  }
  while (!heap_.empty() && heap_[0].time_ms <= until.ms()) {
    if (fireHead() && consumeStop()) {
      return false;  // clock stays at the event that requested the stop
    }
  }
  if (now_ < until) {
    now_ = until;  // idle forward to the horizon
  }
  return true;
}

bool Simulator::runUntilBefore(SimTime before) {
  if (consumeStop()) {
    return false;  // stop requested between runs: honor it, fire nothing
  }
  while (!heap_.empty() && heap_[0].time_ms < before.ms()) {
    if (fireHead() && consumeStop()) {
      return false;  // clock stays at the event that requested the stop
    }
  }
  if (now_ < before) {
    now_ = before;  // idle forward to the (exclusive) horizon
  }
  return true;
}

bool Simulator::runAll() {
  if (consumeStop()) {
    return false;
  }
  while (!heap_.empty()) {
    if (fireHead() && consumeStop()) {
      return false;
    }
  }
  return true;
}

bool Simulator::peekNextEvent(SimTime* out) {
  // Drop stale (cancelled) heads so the reported time is the next event
  // that would actually fire — a stale upper bound would make the sharded
  // engine open windows around events that no longer exist.
  while (!heap_.empty()) {
    const HeapEntry& e = heap_[0];
    if (slots_[e.slot].generation == e.generation) {
      *out = SimTime::millis(e.time_ms);
      return true;
    }
    heapPopHead();
    --stale_;
  }
  return false;
}

void Simulator::exportMetrics(obs::MetricsRegistry& reg) const {
  reg.counter("sim.events_scheduled").set(events_scheduled_);
  reg.counter("sim.events_executed").set(events_executed_);
  reg.counter("sim.events_cancelled").set(events_cancelled_);
  reg.gauge("sim.pending_events").set(static_cast<double>(live_));
  reg.gauge("sim.peak_heap_depth").set(static_cast<double>(peak_heap_depth_));
  reg.gauge("sim.now_ms").set(now_.ms());
}

bool Simulator::step() {
  // Skip over stale entries so "step" always means "execute one live event".
  while (!heap_.empty()) {
    if (fireHead()) {
      return true;
    }
  }
  return false;
}

PeriodicActivity::PeriodicActivity(Simulator& simulator, SimDuration period,
                                   TickFn fn)
    : sim_(simulator), period_(period), fn_(std::move(fn)) {
  RTDRM_ASSERT(period_ > SimDuration::zero());
  RTDRM_ASSERT(fn_ != nullptr);
}

void PeriodicActivity::start(SimTime first) {
  RTDRM_ASSERT_MSG(!running_, "activity already started");
  running_ = true;
  arm(first);
}

void PeriodicActivity::arm(SimTime at) {
  pending_ = sim_.scheduleAt(at, [this] {
    const std::uint64_t this_tick = tick_++;
    // Re-arm before invoking so the callback may call stop() to cancel the
    // next occurrence.
    arm(sim_.now() + period_);
    fn_(this_tick);
  });
}

void PeriodicActivity::setPeriod(SimDuration period) {
  RTDRM_ASSERT(period > SimDuration::zero());
  period_ = period;
}

void PeriodicActivity::stop() {
  if (running_) {
    sim_.cancel(pending_);
    running_ = false;
  }
}

}  // namespace rtdrm::sim
