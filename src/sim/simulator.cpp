#include "sim/simulator.hpp"

#include <utility>

#include "common/assert.hpp"

namespace rtdrm::sim {

EventId Simulator::scheduleAt(SimTime at, Callback cb) {
  RTDRM_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  RTDRM_ASSERT(cb != nullptr);
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at.ms(), seq});
  callbacks_.emplace(seq, std::move(cb));
  return EventId{seq};
}

EventId Simulator::scheduleAfter(SimDuration delay, Callback cb) {
  RTDRM_ASSERT_MSG(delay >= SimDuration::zero(), "negative delay");
  return scheduleAt(now_ + delay, std::move(cb));
}

bool Simulator::cancel(EventId id) {
  auto it = callbacks_.find(id.value);
  if (it == callbacks_.end()) {
    return false;
  }
  callbacks_.erase(it);
  cancelled_.insert(id.value);
  return true;
}

void Simulator::fireHead() {
  const Entry e = heap_.top();
  heap_.pop();
  if (cancelled_.erase(e.seq) > 0) {
    return;  // tombstone
  }
  auto it = callbacks_.find(e.seq);
  RTDRM_ASSERT(it != callbacks_.end());
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  now_ = SimTime::millis(e.time_ms);
  ++events_executed_;
  cb();
}

void Simulator::runUntil(SimTime until) {
  stop_requested_ = false;
  while (!heap_.empty() && !stop_requested_) {
    if (heap_.top().time_ms > until.ms()) {
      break;
    }
    fireHead();
  }
  if (!stop_requested_ && now_ < until) {
    now_ = until;
  }
}

void Simulator::runAll() {
  stop_requested_ = false;
  while (!heap_.empty() && !stop_requested_) {
    fireHead();
  }
}

bool Simulator::step() {
  // Skip over tombstones so "step" always means "execute one live event".
  while (!heap_.empty()) {
    const bool was_cancelled = cancelled_.contains(heap_.top().seq);
    fireHead();
    if (!was_cancelled) {
      return true;
    }
  }
  return false;
}

PeriodicActivity::PeriodicActivity(Simulator& simulator, SimDuration period,
                                   TickFn fn)
    : sim_(simulator), period_(period), fn_(std::move(fn)) {
  RTDRM_ASSERT(period_ > SimDuration::zero());
  RTDRM_ASSERT(fn_ != nullptr);
}

void PeriodicActivity::start(SimTime first) {
  RTDRM_ASSERT_MSG(!running_, "activity already started");
  running_ = true;
  arm(first);
}

void PeriodicActivity::arm(SimTime at) {
  pending_ = sim_.scheduleAt(at, [this] {
    const std::uint64_t this_tick = tick_++;
    // Re-arm before invoking so the callback may call stop() to cancel the
    // next occurrence.
    arm(sim_.now() + period_);
    fn_(this_tick);
  });
}

void PeriodicActivity::stop() {
  if (running_) {
    sim_.cancel(pending_);
    running_ = false;
  }
}

}  // namespace rtdrm::sim
