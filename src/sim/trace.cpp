#include "sim/trace.hpp"

#include <fstream>

namespace rtdrm::sim {

const char* traceCategoryName(TraceCategory cat) {
  switch (cat) {
    case TraceCategory::kRelease:
      return "release";
    case TraceCategory::kStage:
      return "stage";
    case TraceCategory::kMiss:
      return "miss";
    case TraceCategory::kReplicate:
      return "replicate";
    case TraceCategory::kShutdown:
      return "shutdown";
    case TraceCategory::kCustom:
      return "custom";
  }
  return "?";
}

void TraceRecorder::record(SimTime at, TraceCategory category,
                           std::string label, double value) {
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(TraceEvent{at, category, std::move(label), value});
}

std::size_t TraceRecorder::count(TraceCategory category) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.category == category) {
      ++n;
    }
  }
  return n;
}

void TraceRecorder::clear() {
  events_.clear();
  dropped_ = 0;
}

bool TraceRecorder::writeCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  f << "time_ms,category,label,value\n";
  for (const auto& e : events_) {
    f << e.at.ms() << ',' << traceCategoryName(e.category) << ',';
    // Labels are free-form; quote them defensively.
    f << '"';
    for (char c : e.label) {
      if (c == '"') {
        f << '"';
      }
      f << c;
    }
    f << '"' << ',' << e.value << '\n';
  }
  return static_cast<bool>(f);
}

}  // namespace rtdrm::sim
