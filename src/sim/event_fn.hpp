// Small-buffer callable wrapper for the event kernel's hot path.
//
// Every scheduled event owns a closure. std::function would heap-allocate
// most of them (libstdc++ inlines only 16 bytes) and drags in copyability
// the kernel never uses. EventFn is move-only and stores captures up to
// kInlineSize bytes directly inside the event slot, which covers the
// kernel's common shapes ([this], [this, job], small std::function
// re-wraps); larger captures fall back to a single heap allocation.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/assert.hpp"

namespace rtdrm::sim {

template <typename Signature>
class EventFn;

/// Move-only callable of signature R(Args...) with inline small-buffer
/// storage. Invoking an empty EventFn is a programming error (asserts).
template <typename R, typename... Args>
class EventFn<R(Args...)> {
 public:
  /// Inline capture budget. Sized so the frequent capture shapes — a couple
  /// of pointers/references plus a value payload, or a whole std::function
  /// being re-wrapped — stay allocation-free.
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  EventFn() noexcept : ops_(nullptr) {}
  EventFn(std::nullptr_t) noexcept : ops_(nullptr) {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<R, D&, Args...>>>
  EventFn(F&& f) {  // NOLINT(runtime/explicit) — mirrors std::function
    if constexpr (fitsInline<D>()) {
      ::new (static_cast<void*>(inline_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      heap_ = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { moveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  EventFn& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  R operator()(Args... args) {
    RTDRM_ASSERT_MSG(ops_ != nullptr, "invoking empty EventFn");
    return ops_->invoke(object(), std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }
  /// True when the wrapped callable lives in the inline buffer (or the
  /// EventFn is empty); false only for oversized heap-allocated captures.
  bool isInline() const noexcept { return ops_ == nullptr || !ops_->on_heap; }

  friend bool operator==(const EventFn& f, std::nullptr_t) noexcept {
    return f.ops_ == nullptr;
  }
  friend bool operator!=(const EventFn& f, std::nullptr_t) noexcept {
    return f.ops_ != nullptr;
  }

 private:
  struct Ops {
    R (*invoke)(void* obj, Args&&... args);
    // Move the callable from `src` storage into `dst` storage and destroy
    // the source (inline targets only; heap targets move the pointer).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* obj) noexcept;
    bool on_heap;
  };

  template <typename D>
  static constexpr bool fitsInline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static R invokeImpl(void* obj, Args&&... args) {
    return (*static_cast<D*>(obj))(std::forward<Args>(args)...);
  }

  template <typename D>
  static void relocateInline(void* dst, void* src) noexcept {
    D* from = static_cast<D*>(src);
    ::new (dst) D(std::move(*from));
    from->~D();
  }

  template <typename D>
  static void destroyInline(void* obj) noexcept {
    static_cast<D*>(obj)->~D();
  }

  template <typename D>
  static void destroyHeap(void* obj) noexcept {
    delete static_cast<D*>(obj);
  }

  template <typename D>
  static constexpr Ops kInlineOps{&invokeImpl<D>, &relocateInline<D>,
                                  &destroyInline<D>, /*on_heap=*/false};
  template <typename D>
  static constexpr Ops kHeapOps{&invokeImpl<D>, nullptr, &destroyHeap<D>,
                                /*on_heap=*/true};

  void* object() noexcept {
    return ops_->on_heap ? heap_ : static_cast<void*>(inline_);
  }

  void moveFrom(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->on_heap) {
        heap_ = other.heap_;
      } else {
        ops_->relocate(inline_, other.inline_);
      }
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(object());
      ops_ = nullptr;
    }
  }

  union {
    alignas(kInlineAlign) unsigned char inline_[kInlineSize];
    void* heap_;
  };
  const Ops* ops_;
};

}  // namespace rtdrm::sim
