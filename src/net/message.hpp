// Inter-subtask message types for the shared-medium network.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/units.hpp"

namespace rtdrm::net {

/// Delivery receipt passed to the sender's completion callback; the
/// decomposition mirrors eq. (4): buffer delay (enqueue -> first bit) plus
/// transmission time (first bit -> delivered).
struct MessageReceipt {
  SimTime enqueued;
  SimTime first_bit;
  SimTime delivered;
  Bytes payload;

  SimDuration bufferDelay() const { return first_bit - enqueued; }
  SimDuration transferDelay() const { return delivered - first_bit; }
  SimDuration totalDelay() const { return delivered - enqueued; }
};

struct Message {
  ProcessorId src;
  ProcessorId dst;
  Bytes payload;
  /// Diagnostic label, e.g. "m3 T1". Not interpreted.
  std::string tag;
  /// Invoked when the last frame of the message has been received.
  std::function<void(const MessageReceipt&)> on_delivered;
};

}  // namespace rtdrm::net
