#include "net/clock_sync.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace rtdrm::net {

ClockFabric::ClockFabric(sim::Simulator& simulator, std::size_t node_count,
                         Xoshiro256 rng, ClockSyncConfig config)
    : sim_(simulator),
      rng_(rng),
      config_(config),
      sync_(simulator, config.sync_period,
            [this](std::uint64_t) { syncRound(); }) {
  RTDRM_ASSERT(node_count > 0);
  clocks_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    const double off =
        rng_.uniform(-config_.initial_offset_max.ms(),
                     config_.initial_offset_max.ms());
    const double ppm =
        rng_.uniform(-config_.drift_ppm_max, config_.drift_ppm_max);
    clocks_.emplace_back(SimDuration::millis(off), ppm);
  }
}

const DriftingClock& ClockFabric::clock(ProcessorId id) const {
  RTDRM_ASSERT(id.value < clocks_.size());
  return clocks_[id.value];
}

SimTime ClockFabric::localNow(ProcessorId id) const {
  return clock(id).local(sim_.now());
}

SimDuration ClockFabric::measure(ProcessorId start_node, SimTime true_start,
                                 ProcessorId end_node,
                                 SimTime true_end) const {
  const SimTime a = clock(start_node).local(true_start);
  const SimTime b = clock(end_node).local(true_end);
  return b - a;
}

void ClockFabric::startSync() { sync_.start(sim_.now()); }

void ClockFabric::syncRound() {
  if (!sync_enabled_) {
    ++rounds_skipped_;
    return;
  }
  pre_sync_stats_.add(worstOffsetNow().ms());
  const SimTime t = sim_.now();
  for (auto& c : clocks_) {
    // Estimated offset = true offset + estimation noise; stepping by the
    // estimate leaves the noise as the residual error.
    const SimDuration estimate =
        c.offsetAt(t) +
        SimDuration::millis(rng_.normal(0.0, config_.estimate_noise.ms()));
    c.correct(estimate);
  }
}

SimDuration ClockFabric::worstOffsetNow() const {
  double worst = 0.0;
  for (const auto& c : clocks_) {
    worst = std::max(worst, std::abs(c.offsetAt(sim_.now()).ms()));
  }
  return SimDuration::millis(worst);
}

}  // namespace rtdrm::net
