// Switched network fabric: multiple Ethernet segments joined by
// store-and-forward switches.
//
// Model: every host owns a dedicated full-duplex uplink to its segment's
// switch (no shared-medium arbitration); each switch forwards frames
// through per-output-port FIFO queues — one per local host (downlinks)
// and one per adjacent switch (trunks). A frame pays serialization on
// every hop plus per-link propagation and a fixed switch processing
// latency, so multi-segment paths are strictly slower than the shared
// bus's single hop. Port buffers are bounded: a frame arriving at a full
// egress port is tail-dropped, counted, and NACKed back to the upstream
// transmitter, which requeues it at its queue tail after one propagation
// delay. The NACK path is deterministic and conserving — frames are never
// destroyed, so at any instant
//
//     framesOriginated() == framesArrived() + framesInFabric()
//
// which the property suite checks against a live recount of every queue
// and in-flight transit.
//
// Routing is static: shortest path over the switch graph (BFS, lowest
// segment index breaks ties), fixed at construction. Topologies: a line
// of switches (segment i trunks to i+1) or a star (every segment trunks
// to segment 0). Hosts map onto segments in the same contiguous ceil
// blocks the management plane uses for its partitions, so a partition's
// chatter stays on its own segment by default.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/ethernet.hpp"
#include "net/message.hpp"
#include "net/network_model.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::net {

enum class FabricTopology { kLine, kStar };

const char* fabricTopologyName(FabricTopology t);
/// Returns false (leaving `out` untouched) on an unknown name.
bool parseFabricTopology(const std::string& s, FabricTopology* out);

struct SwitchedFabricConfig {
  /// Per-link wire parameters (rate, MTU, padding, frame overhead,
  /// propagation) and the host marshalling stage — identical meaning to
  /// the shared bus so the two models are comparable point for point.
  EthernetConfig link;
  /// Number of switch segments (each with its own contiguous host block).
  std::size_t segments = 2;
  FabricTopology topology = FabricTopology::kLine;
  /// Bounded per-egress-port buffer, in frames. Arrivals beyond this are
  /// tail-dropped and NACKed back upstream. NACK returns themselves are
  /// always admitted (the bound applies to forward progress admission),
  /// so the protocol cannot deadlock.
  std::size_t port_buffer_frames = 32;
  /// Store-and-forward processing latency charged per switch traversal.
  SimDuration switch_latency = SimDuration::micros(2.0);
  /// Optional explicit host->segment map (size == node_count, values <
  /// segments). Empty selects the default contiguous ceil blocks.
  std::vector<std::uint32_t> node_segment;

  /// Conservative lower bound on any cross-node interaction: the shortest
  /// path is uplink + downlink (two serializations, two propagations) plus
  /// one switch traversal. Every multi-segment path is longer, so barrier
  /// windows of this width can never reorder cross-node causality — and it
  /// strictly dominates the bus's single-hop bound.
  SimDuration minCrossShardLatency() const {
    return SimDuration::millis(2.0 * (link.minFrameWireTime().ms() +
                                      link.propagation.ms()) +
                               switch_latency.ms());
  }
};

class SwitchedFabric final : public NetworkModel {
 public:
  SwitchedFabric(sim::Simulator& simulator, std::size_t node_count,
                 SwitchedFabricConfig config = {});
  SwitchedFabric(const SwitchedFabric&) = delete;
  SwitchedFabric& operator=(const SwitchedFabric&) = delete;

  const SwitchedFabricConfig& config() const { return config_; }

  void send(Message msg) override;
  void setDeliveryObserver(DeliveryObserver observer) override {
    delivery_observer_ = std::move(observer);
  }
  /// Fires once per hop at each serialization end with the transmitting
  /// port's (segment, port) coordinates — see the port numbering
  /// accessors below. Same-node hand-offs bypass the fabric and are
  /// exempt, as on the bus.
  void setFrameFateHook(FrameFateHook hook) override {
    frame_fate_hook_ = std::move(hook);
  }

  SimDuration minCrossShardLatency() const override {
    return config_.minCrossShardLatency();
  }

  /// Cumulative busy time summed over every link (uplinks, downlinks,
  /// trunks); normalize by utilizationCapacity() for a fabric-wide
  /// utilization fraction.
  SimDuration busyTime() const override;
  double utilizationCapacity() const override {
    return static_cast<double>(links_.size());
  }
  std::uint64_t messagesDelivered() const override { return delivered_; }
  /// Hop transmissions started (retransmissions and duplicate copies
  /// included) — the fabric analogue of the bus's frame count.
  std::uint64_t framesOnWire() const override { return frames_; }
  std::uint64_t framesLost() const override { return frames_lost_; }
  std::uint64_t framesDuplicated() const override {
    return frames_duplicated_;
  }
  /// Tail-drop events at full egress ports (each NACKed and retried; a
  /// drop delays a frame, it never destroys one).
  std::uint64_t framesDropped() const override { return frames_dropped_; }
  double payloadBytesCarried() const override { return payload_bytes_; }
  double payloadBytesFrom(ProcessorId nic) const override;
  /// Messages marshalled into the fabric and not yet fully delivered.
  std::size_t backloggedMessages() const override { return msgs_in_fabric_; }

  void exportMetrics(obs::MetricsRegistry& reg) const override;

  // --- conservation accounting (property-test surface) ---
  /// Payload frames chunked into the fabric so far.
  std::uint64_t framesOriginated() const { return frames_originated_; }
  /// Payload frames that reached their destination host.
  std::uint64_t framesArrived() const { return frames_arrived_; }
  /// Live recount of every payload frame currently inside the fabric:
  /// queued at any port plus in transit (propagation, switch processing,
  /// or NACK return). Conservation demands this equal
  /// framesOriginated() - framesArrived() at every instant.
  std::size_t framesInFabric() const;

  // --- topology introspection (tests, fault targeting, CLIs) ---
  std::size_t segmentCount() const { return config_.segments; }
  std::size_t linkCount() const { return links_.size(); }
  std::uint32_t segmentOf(ProcessorId node) const;
  /// Port numbering within segment `s` with L local hosts and T trunk
  /// neighbours: downlinks are ports 0..L-1 (one per local host, in host
  /// order), trunks L..L+T-1 (adjacent segments in ascending order), and
  /// host uplinks report nominal ports L+T..L+T+L-1 so link faults can
  /// target a single host's transmit path.
  std::uint32_t downlinkPort(ProcessorId host) const;
  std::uint32_t trunkPort(std::uint32_t segment,
                          std::uint32_t to_segment) const;
  std::uint32_t uplinkPort(ProcessorId host) const;
  /// Next segment on the static route from `from` towards `to`.
  std::uint32_t nextHop(std::uint32_t from, std::uint32_t to) const;

 private:
  /// Shared per-message state; frames hold a reference so the last
  /// arrival can assemble the receipt.
  struct MessageState {
    Message msg;
    SimTime enqueued;
    SimTime first_bit;
    std::size_t frames_total = 0;
    std::size_t frames_arrived = 0;
    bool started = false;
  };
  struct Frame {
    std::shared_ptr<MessageState> state;
    Bytes chunk;
    /// Payload accounted on the first successful uplink traversal only
    /// (NACK retries must not double-count).
    bool counted = false;
  };
  enum class LinkKind { kUplink, kDownlink, kTrunk };
  struct Link {
    LinkKind kind;
    /// Coordinates reported to the frame-fate hook.
    std::uint32_t segment = 0;
    std::uint32_t port = 0;
    /// Destination: host id (uplink => its switch; downlink => the host)
    /// or segment id (trunk).
    std::uint32_t to = 0;
    std::size_t capacity = 0;  // 0 = unbounded (host uplinks)
    std::deque<Frame> q;
    bool busy = false;
    SimTime busy_since = SimTime::zero();
  };

  void pump(std::size_t li);
  void onTxEnd(std::size_t li);
  void onDuplicateEnd(std::size_t li);
  /// Frame handed to the switch of segment `seg` (after propagation and
  /// switch latency); routes it to the next egress port or tail-drops.
  void onSwitchIngress(std::size_t from_link, std::uint32_t seg, Frame f);
  void onHostArrival(Frame f);
  SimDuration frameTime(const Frame& f) const;
  std::size_t routeEgress(std::uint32_t seg, ProcessorId dst) const;

  sim::Simulator& sim_;
  SwitchedFabricConfig config_;
  std::vector<std::uint32_t> seg_of_host_;
  std::vector<std::vector<ProcessorId>> hosts_of_seg_;
  std::vector<Link> links_;
  std::vector<std::size_t> uplink_of_host_;
  std::vector<std::size_t> downlink_of_host_;
  /// [segment] -> adjacent segments, ascending (trunk port order).
  std::vector<std::vector<std::uint32_t>> neighbors_;
  /// [from][to] -> next segment on the static shortest path.
  std::vector<std::vector<std::uint32_t>> next_hop_;
  /// [from][neighbor order] -> trunk link index.
  std::vector<std::vector<std::size_t>> trunk_link_;
  std::vector<SimTime> marshal_busy_until_;
  /// Frames in transit between queues (propagation / switch processing /
  /// NACK return) — part of the framesInFabric() recount.
  std::size_t transit_frames_ = 0;
  SimDuration busy_accum_ = SimDuration::zero();
  std::uint64_t delivered_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t frames_lost_ = 0;
  std::uint64_t frames_duplicated_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_originated_ = 0;
  std::uint64_t frames_arrived_ = 0;
  std::size_t msgs_in_fabric_ = 0;
  double payload_bytes_ = 0.0;
  std::vector<double> payload_bytes_from_;
  DeliveryObserver delivery_observer_;
  FrameFateHook frame_fate_hook_;
};

}  // namespace rtdrm::net
