#include "net/ethernet.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace rtdrm::net {

Ethernet::Ethernet(sim::Simulator& simulator, std::size_t node_count,
                   EthernetConfig config)
    : sim_(simulator),
      config_(config),
      nics_(node_count),
      marshal_busy_until_(node_count, SimTime::zero()),
      payload_bytes_from_(node_count, 0.0) {
  RTDRM_ASSERT(node_count > 0);
  RTDRM_ASSERT(config_.mtu > Bytes::zero());
  RTDRM_ASSERT(config_.rate.bitsPerSecond() > 0.0);
  RTDRM_ASSERT(config_.host_ns_per_byte >= 0.0);
}

void Ethernet::send(Message msg) {
  RTDRM_ASSERT(msg.src.value < nics_.size());
  RTDRM_ASSERT(msg.dst.value < nics_.size());
  RTDRM_ASSERT(msg.payload >= Bytes::zero());

  if (msg.src == msg.dst) {
    // Same-node delivery: shared memory hand-off, no wire involvement and
    // no marshalling stage (the payload never crosses the protocol stack).
    // Faults never touch this path either — it has no frames to lose.
    const MessageReceipt receipt{sim_.now(), sim_.now(),
                                 sim_.now() + config_.propagation,
                                 msg.payload};
    auto cb = std::move(msg.on_delivered);
    sim_.scheduleAfter(config_.propagation,
                       [this, cb = std::move(cb), receipt] {
      ++delivered_;
      if (delivery_observer_) {
        delivery_observer_(receipt);
      }
      if (cb) {
        cb(receipt);
      }
    });
    return;
  }

  Pending p{std::move(msg), sim_.now(), sim_.now(), Bytes::zero(), false};
  p.remaining = p.msg.payload;
  const std::size_t nic = p.msg.src.value;

  // Host marshalling stage (sequential per NIC): the message becomes
  // wire-eligible only after the protocol stack has processed its bytes.
  const SimDuration marshal = SimDuration::millis(
      config_.host_ns_per_byte * p.msg.payload.count() * 1e-6);
  const SimTime start =
      std::max(sim_.now(), marshal_busy_until_[nic]);
  const SimTime done = start + marshal;
  marshal_busy_until_[nic] = done;
  if (done <= sim_.now()) {
    onMarshalled(nic, std::move(p));
  } else {
    sim_.scheduleAt(done, [this, nic, p = std::move(p)]() mutable {
      onMarshalled(nic, std::move(p));
    });
  }
}

void Ethernet::onMarshalled(std::size_t nic, Pending p) {
  nics_[nic].push_back(std::move(p));
  arbitrate();
}

Bytes Ethernet::frameChunk(const Pending& p) const {
  return std::min(config_.mtu, std::max(p.remaining, Bytes::zero()));
}

SimDuration Ethernet::frameTime(const Pending& p) const {
  // Short payloads are padded to the Ethernet minimum on the wire.
  const Bytes chunk = std::max(frameChunk(p), config_.min_payload);
  return config_.rate.transmissionTime(chunk + config_.frame_overhead);
}

void Ethernet::arbitrate() {
  if (bus_busy_) {
    return;
  }
  // Round-robin scan for a backlogged NIC, starting after the last served.
  const std::size_t n = nics_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t nic = (rr_next_ + k) % n;
    if (nics_[nic].empty()) {
      continue;
    }
    Pending& p = nics_[nic].front();
    if (!p.started) {
      p.started = true;
      p.first_bit = sim_.now();
    }
    bus_busy_ = true;
    busy_since_ = sim_.now();
    rr_next_ = (nic + 1) % n;
    ++frames_;
    sim_.scheduleAfter(frameTime(p), [this, nic] { onFrameEnd(nic); });
    return;
  }
}

void Ethernet::onFrameEnd(std::size_t nic) {
  RTDRM_ASSERT(bus_busy_ && !nics_[nic].empty());
  busy_accum_ += sim_.now() - busy_since_;
  bus_busy_ = false;

  Pending& p = nics_[nic].front();
  // The bus is one link: every frame is one hop on (segment 0, port 0).
  const FrameFate fate =
      frame_fate_hook_
          ? frame_fate_hook_(FrameHop{p.msg.src, p.msg.dst, 0, 0})
          : FrameFate::kDeliver;
  if (fate == FrameFate::kLose) {
    // The wire time is spent but the receiver rejects the frame (bad FCS).
    // The chunk was never applied and the message stays at the head of its
    // NIC queue, so the link layer retransmits on the next bus grant.
    ++frames_lost_;
    arbitrate();
    return;
  }
  // A duplicate re-sends the frame just serialized; its wire time must be
  // computed before the chunk below shrinks the remaining payload.
  const SimDuration dup_time = fate == FrameFate::kDuplicate
                                   ? frameTime(p)
                                   : SimDuration::zero();
  const Bytes chunk = frameChunk(p);
  p.remaining = p.remaining - chunk;
  payload_bytes_ += chunk.count();
  payload_bytes_from_[nic] += chunk.count();

  if (p.remaining <= Bytes::zero()) {
    const MessageReceipt receipt{p.enqueued, p.first_bit,
                                 sim_.now() + config_.propagation,
                                 p.msg.payload};
    auto cb = std::move(p.msg.on_delivered);
    nics_[nic].pop_front();
    sim_.scheduleAfter(config_.propagation,
                       [this, cb = std::move(cb), receipt] {
      ++delivered_;
      if (delivery_observer_) {
        delivery_observer_(receipt);
      }
      if (cb) {
        cb(receipt);
      }
    });
  }

  if (fate == FrameFate::kDuplicate) {
    // The spurious copy occupies the wire for the same frame time. The
    // receiver already accepted the original, so the copy is discarded on
    // arrival: no second receipt, chunk, or payload attribution.
    ++frames_;
    ++frames_duplicated_;
    bus_busy_ = true;
    busy_since_ = sim_.now();
    sim_.scheduleAfter(dup_time, [this] { onDuplicateEnd(); });
    return;
  }
  arbitrate();
}

void Ethernet::onDuplicateEnd() {
  RTDRM_ASSERT(bus_busy_);
  busy_accum_ += sim_.now() - busy_since_;
  bus_busy_ = false;
  arbitrate();
}

SimDuration Ethernet::busyTime() const {
  if (!bus_busy_) {
    return busy_accum_;
  }
  return busy_accum_ + (sim_.now() - busy_since_);
}

double Ethernet::payloadBytesFrom(ProcessorId nic) const {
  RTDRM_ASSERT(nic.value < payload_bytes_from_.size());
  return payload_bytes_from_[nic.value];
}

std::size_t Ethernet::backloggedMessages() const {
  std::size_t total = 0;
  for (const auto& q : nics_) {
    total += q.size();
  }
  return total;
}

void Ethernet::exportMetrics(obs::MetricsRegistry& reg) const {
  reg.counter("net.messages_delivered").set(delivered_);
  reg.counter("net.frames_on_wire").set(frames_);
  reg.counter("net.frames_lost").set(frames_lost_);
  reg.counter("net.frames_duplicated").set(frames_duplicated_);
  reg.counter("net.payload_bytes")
      .set(static_cast<std::uint64_t>(payload_bytes_));
  reg.gauge("net.backlogged_messages")
      .set(static_cast<double>(backloggedMessages()));
  const double now_ms = sim_.now().ms();
  reg.gauge("net.wire_utilization")
      .set(now_ms > 0.0 ? busyTime().ms() / now_ms : 0.0);
}

Utilization NetworkProbe::peek() const {
  const SimDuration window = sim_.now() - last_t_;
  if (window <= SimDuration::zero()) {
    return Utilization::zero();
  }
  // Capacity 1.0 (the bus) divides exactly, so the legacy path is
  // bit-identical; multi-link fabrics normalize by their link count.
  return Utilization::fraction((net_.busyTime() - last_busy_) / window /
                               net_.utilizationCapacity());
}

Utilization NetworkProbe::sample() {
  const Utilization u = peek();
  last_t_ = sim_.now();
  last_busy_ = net_.busyTime();
  return u;
}

}  // namespace rtdrm::net
