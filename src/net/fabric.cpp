#include "net/fabric.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "obs/metrics.hpp"

namespace rtdrm::net {

const char* fabricTopologyName(FabricTopology t) {
  switch (t) {
    case FabricTopology::kLine:
      return "line";
    case FabricTopology::kStar:
      return "star";
  }
  return "?";
}

bool parseFabricTopology(const std::string& s, FabricTopology* out) {
  if (s == "line") {
    *out = FabricTopology::kLine;
    return true;
  }
  if (s == "star") {
    *out = FabricTopology::kStar;
    return true;
  }
  return false;
}

SwitchedFabric::SwitchedFabric(sim::Simulator& simulator,
                               std::size_t node_count,
                               SwitchedFabricConfig config)
    : sim_(simulator),
      config_(std::move(config)),
      marshal_busy_until_(node_count, SimTime::zero()),
      payload_bytes_from_(node_count, 0.0) {
  RTDRM_ASSERT(node_count > 0);
  RTDRM_ASSERT(config_.segments >= 1);
  RTDRM_ASSERT_MSG(config_.segments <= node_count,
                   "more segments than hosts");
  RTDRM_ASSERT(config_.port_buffer_frames >= 1);
  RTDRM_ASSERT(config_.switch_latency >= SimDuration::zero());
  RTDRM_ASSERT(config_.link.mtu > Bytes::zero());
  RTDRM_ASSERT(config_.link.rate.bitsPerSecond() > 0.0);
  RTDRM_ASSERT(config_.link.host_ns_per_byte >= 0.0);

  const std::size_t n = node_count;
  const std::size_t s_count = config_.segments;

  // Host -> segment: explicit map, or the management plane's contiguous
  // ceil blocks (segment s owns [ceil(s*n/S), ceil((s+1)*n/S))).
  seg_of_host_.resize(n);
  if (!config_.node_segment.empty()) {
    RTDRM_ASSERT_MSG(config_.node_segment.size() == n,
                     "node_segment map size mismatch");
    for (std::size_t h = 0; h < n; ++h) {
      RTDRM_ASSERT_MSG(config_.node_segment[h] < s_count,
                       "node_segment value out of range");
      seg_of_host_[h] = config_.node_segment[h];
    }
  } else {
    for (std::size_t s = 0; s < s_count; ++s) {
      const std::size_t lo = (s * n + s_count - 1) / s_count;
      const std::size_t hi = ((s + 1) * n + s_count - 1) / s_count;
      for (std::size_t h = lo; h < hi; ++h) {
        seg_of_host_[h] = static_cast<std::uint32_t>(s);
      }
    }
  }
  hosts_of_seg_.resize(s_count);
  for (std::size_t h = 0; h < n; ++h) {
    hosts_of_seg_[seg_of_host_[h]].push_back(ProcessorId{h});
  }

  // Switch graph adjacency (ascending => deterministic trunk port order).
  neighbors_.resize(s_count);
  if (s_count > 1) {
    switch (config_.topology) {
      case FabricTopology::kLine:
        for (std::size_t s = 0; s < s_count; ++s) {
          if (s > 0) {
            neighbors_[s].push_back(static_cast<std::uint32_t>(s - 1));
          }
          if (s + 1 < s_count) {
            neighbors_[s].push_back(static_cast<std::uint32_t>(s + 1));
          }
        }
        break;
      case FabricTopology::kStar:
        for (std::size_t s = 1; s < s_count; ++s) {
          neighbors_[0].push_back(static_cast<std::uint32_t>(s));
          neighbors_[s].push_back(0);
        }
        break;
    }
  }

  // Static shortest-path routing: BFS from every segment, expanding
  // neighbours in ascending order so ties break towards the lowest index.
  next_hop_.assign(s_count, std::vector<std::uint32_t>(s_count, 0));
  for (std::size_t src = 0; src < s_count; ++src) {
    std::vector<std::uint32_t> parent(s_count, kAnySegment);
    std::vector<std::uint32_t> order;
    parent[src] = static_cast<std::uint32_t>(src);
    order.push_back(static_cast<std::uint32_t>(src));
    for (std::size_t head = 0; head < order.size(); ++head) {
      for (std::uint32_t nb : neighbors_[order[head]]) {
        if (parent[nb] == kAnySegment) {
          parent[nb] = order[head];
          order.push_back(nb);
        }
      }
    }
    for (std::size_t dst = 0; dst < s_count; ++dst) {
      if (dst == src) {
        continue;
      }
      RTDRM_ASSERT_MSG(parent[dst] != kAnySegment,
                       "fabric topology is disconnected");
      std::uint32_t step = static_cast<std::uint32_t>(dst);
      while (parent[step] != static_cast<std::uint32_t>(src)) {
        step = parent[step];
      }
      next_hop_[src][dst] = step;
    }
  }

  // Link construction. Per segment: downlinks (ports 0..L-1), trunks
  // (ports L..L+T-1); then per host: its uplink (nominal port L+T+local).
  uplink_of_host_.resize(n);
  downlink_of_host_.resize(n);
  trunk_link_.resize(s_count);
  for (std::size_t s = 0; s < s_count; ++s) {
    const std::uint32_t l_count =
        static_cast<std::uint32_t>(hosts_of_seg_[s].size());
    for (std::uint32_t j = 0; j < l_count; ++j) {
      const ProcessorId host = hosts_of_seg_[s][j];
      downlink_of_host_[host.value] = links_.size();
      links_.push_back(Link{LinkKind::kDownlink,
                            static_cast<std::uint32_t>(s), j,
                            static_cast<std::uint32_t>(host.value),
                            config_.port_buffer_frames,
                            {}, false, SimTime::zero()});
    }
    for (std::size_t k = 0; k < neighbors_[s].size(); ++k) {
      trunk_link_[s].push_back(links_.size());
      links_.push_back(Link{LinkKind::kTrunk, static_cast<std::uint32_t>(s),
                            l_count + static_cast<std::uint32_t>(k),
                            neighbors_[s][k], config_.port_buffer_frames,
                            {}, false, SimTime::zero()});
    }
  }
  for (std::size_t h = 0; h < n; ++h) {
    const std::uint32_t s = seg_of_host_[h];
    const std::uint32_t l_count =
        static_cast<std::uint32_t>(hosts_of_seg_[s].size());
    const std::uint32_t t_count =
        static_cast<std::uint32_t>(neighbors_[s].size());
    const auto& local = hosts_of_seg_[s];
    const std::uint32_t j = static_cast<std::uint32_t>(
        std::find(local.begin(), local.end(), ProcessorId{h}) -
        local.begin());
    uplink_of_host_[h] = links_.size();
    // Host uplinks are never tail-dropped: the bound models switch
    // memory, and the host NIC backpressures naturally.
    links_.push_back(Link{LinkKind::kUplink, s, l_count + t_count + j, s, 0,
                          {}, false, SimTime::zero()});
  }
}

void SwitchedFabric::send(Message msg) {
  RTDRM_ASSERT(msg.src.value < marshal_busy_until_.size());
  RTDRM_ASSERT(msg.dst.value < marshal_busy_until_.size());
  RTDRM_ASSERT(msg.payload >= Bytes::zero());

  if (msg.src == msg.dst) {
    // Same-node delivery: shared memory hand-off, identical to the bus —
    // no marshalling, no frames, fault-exempt.
    const MessageReceipt receipt{sim_.now(), sim_.now(),
                                 sim_.now() + config_.link.propagation,
                                 msg.payload};
    auto cb = std::move(msg.on_delivered);
    sim_.scheduleAfter(config_.link.propagation,
                       [this, cb = std::move(cb), receipt] {
      ++delivered_;
      if (delivery_observer_) {
        delivery_observer_(receipt);
      }
      if (cb) {
        cb(receipt);
      }
    });
    return;
  }

  const std::size_t host = msg.src.value;
  auto state = std::make_shared<MessageState>();
  state->msg = std::move(msg);
  state->enqueued = sim_.now();
  state->first_bit = sim_.now();

  // Host marshalling stage: same sequential per-NIC watermark as the bus.
  const SimDuration marshal = SimDuration::millis(
      config_.link.host_ns_per_byte * state->msg.payload.count() * 1e-6);
  const SimTime start = std::max(sim_.now(), marshal_busy_until_[host]);
  const SimTime done = start + marshal;
  marshal_busy_until_[host] = done;
  auto inject = [this, host, state]() mutable {
    // Chunk the message into MTU frames at the NIC; frames then travel
    // the fabric independently (store-and-forward per hop).
    const std::size_t li = uplink_of_host_[host];
    Bytes remaining = state->msg.payload;
    do {
      const Bytes chunk =
          std::min(config_.link.mtu, std::max(remaining, Bytes::zero()));
      remaining = remaining - chunk;
      ++state->frames_total;
      ++frames_originated_;
      links_[li].q.push_back(Frame{state, chunk, false});
    } while (remaining > Bytes::zero());
    ++msgs_in_fabric_;
    pump(li);
  };
  if (done <= sim_.now()) {
    inject();
  } else {
    sim_.scheduleAt(done, std::move(inject));
  }
}

SimDuration SwitchedFabric::frameTime(const Frame& f) const {
  const Bytes padded = std::max(f.chunk, config_.link.min_payload);
  return config_.link.rate.transmissionTime(padded +
                                            config_.link.frame_overhead);
}

void SwitchedFabric::pump(std::size_t li) {
  Link& l = links_[li];
  if (l.busy || l.q.empty()) {
    return;
  }
  Frame& f = l.q.front();
  if (!f.state->started) {
    f.state->started = true;
    f.state->first_bit = sim_.now();
  }
  l.busy = true;
  l.busy_since = sim_.now();
  ++frames_;
  sim_.scheduleAfter(frameTime(f), [this, li] { onTxEnd(li); });
}

void SwitchedFabric::onTxEnd(std::size_t li) {
  Link& l = links_[li];
  RTDRM_ASSERT(l.busy && !l.q.empty());
  busy_accum_ += sim_.now() - l.busy_since;
  l.busy = false;

  const FrameFate fate =
      frame_fate_hook_
          ? frame_fate_hook_(FrameHop{l.q.front().state->msg.src,
                                      l.q.front().state->msg.dst,
                                      l.segment, l.port})
          : FrameFate::kDeliver;
  if (fate == FrameFate::kLose) {
    // Wire time spent, receiver end of the link rejects the frame; it
    // stays at the head of this port for link-layer retransmission.
    ++frames_lost_;
    pump(li);
    return;
  }

  const SimDuration dup_time = frameTime(l.q.front());
  Frame f = std::move(l.q.front());
  l.q.pop_front();
  if (l.kind == LinkKind::kUplink && !f.counted) {
    // Sender attribution happens once, when the NIC first puts the bytes
    // on the wire; NACK retries of the same frame don't recount.
    f.counted = true;
    payload_bytes_ += f.chunk.count();
    payload_bytes_from_[f.state->msg.src.value] += f.chunk.count();
  }

  ++transit_frames_;
  if (l.kind == LinkKind::kDownlink) {
    sim_.scheduleAfter(config_.link.propagation,
                       [this, f = std::move(f)]() mutable {
      onHostArrival(std::move(f));
    });
  } else {
    // Store-and-forward: the whole frame propagates, then the switch
    // spends its processing latency before the next egress queue.
    const std::uint32_t seg = l.to;
    sim_.scheduleAfter(config_.link.propagation + config_.switch_latency,
                       [this, li, seg, f = std::move(f)]() mutable {
      onSwitchIngress(li, seg, std::move(f));
    });
  }

  if (fate == FrameFate::kDuplicate) {
    // The spurious copy occupies this link for another frame time and is
    // discarded at the far end — no queueing, no second receipt.
    ++frames_;
    ++frames_duplicated_;
    l.busy = true;
    l.busy_since = sim_.now();
    sim_.scheduleAfter(dup_time, [this, li] { onDuplicateEnd(li); });
    return;
  }
  pump(li);
}

void SwitchedFabric::onDuplicateEnd(std::size_t li) {
  Link& l = links_[li];
  RTDRM_ASSERT(l.busy);
  busy_accum_ += sim_.now() - l.busy_since;
  l.busy = false;
  pump(li);
}

std::size_t SwitchedFabric::routeEgress(std::uint32_t seg,
                                        ProcessorId dst) const {
  const std::uint32_t dst_seg = seg_of_host_[dst.value];
  if (dst_seg == seg) {
    return downlink_of_host_[dst.value];
  }
  const std::uint32_t next = next_hop_[seg][dst_seg];
  for (std::size_t k = 0; k < neighbors_[seg].size(); ++k) {
    if (neighbors_[seg][k] == next) {
      return trunk_link_[seg][k];
    }
  }
  RTDRM_ASSERT_MSG(false, "route points at a non-adjacent segment");
  return 0;
}

void SwitchedFabric::onSwitchIngress(std::size_t from_link,
                                     std::uint32_t seg, Frame f) {
  --transit_frames_;
  const std::size_t target = routeEgress(seg, f.state->msg.dst);
  Link& t = links_[target];
  if (t.capacity > 0 && t.q.size() >= t.capacity) {
    // Bounded port buffer is full: tail-drop. The link layer NACKs the
    // frame back to the transmitter that just sent it, which requeues it
    // at its tail after one propagation delay. Deterministic, and the
    // frame is delayed — never destroyed — so conservation holds.
    ++frames_dropped_;
    ++transit_frames_;
    sim_.scheduleAfter(config_.link.propagation,
                       [this, from_link, f = std::move(f)]() mutable {
      --transit_frames_;
      links_[from_link].q.push_back(std::move(f));
      pump(from_link);
    });
    return;
  }
  t.q.push_back(std::move(f));
  pump(target);
}

void SwitchedFabric::onHostArrival(Frame f) {
  --transit_frames_;
  ++frames_arrived_;
  MessageState& st = *f.state;
  ++st.frames_arrived;
  RTDRM_ASSERT(st.frames_arrived <= st.frames_total);
  if (st.frames_arrived < st.frames_total) {
    return;
  }
  // Last frame in: the message is delivered now (propagation already
  // elapsed on the final hop).
  const MessageReceipt receipt{st.enqueued, st.first_bit, sim_.now(),
                               st.msg.payload};
  ++delivered_;
  RTDRM_ASSERT(msgs_in_fabric_ > 0);
  --msgs_in_fabric_;
  if (delivery_observer_) {
    delivery_observer_(receipt);
  }
  if (st.msg.on_delivered) {
    st.msg.on_delivered(receipt);
  }
}

SimDuration SwitchedFabric::busyTime() const {
  SimDuration total = busy_accum_;
  for (const Link& l : links_) {
    if (l.busy) {
      total += sim_.now() - l.busy_since;
    }
  }
  return total;
}

double SwitchedFabric::payloadBytesFrom(ProcessorId nic) const {
  RTDRM_ASSERT(nic.value < payload_bytes_from_.size());
  return payload_bytes_from_[nic.value];
}

std::size_t SwitchedFabric::framesInFabric() const {
  std::size_t total = transit_frames_;
  for (const Link& l : links_) {
    total += l.q.size();
  }
  return total;
}

std::uint32_t SwitchedFabric::segmentOf(ProcessorId node) const {
  RTDRM_ASSERT(node.value < seg_of_host_.size());
  return seg_of_host_[node.value];
}

std::uint32_t SwitchedFabric::downlinkPort(ProcessorId host) const {
  return links_[downlink_of_host_[host.value]].port;
}

std::uint32_t SwitchedFabric::uplinkPort(ProcessorId host) const {
  return links_[uplink_of_host_[host.value]].port;
}

std::uint32_t SwitchedFabric::trunkPort(std::uint32_t segment,
                                        std::uint32_t to_segment) const {
  RTDRM_ASSERT(segment < neighbors_.size());
  for (std::size_t k = 0; k < neighbors_[segment].size(); ++k) {
    if (neighbors_[segment][k] == to_segment) {
      return links_[trunk_link_[segment][k]].port;
    }
  }
  RTDRM_ASSERT_MSG(false, "segments are not adjacent");
  return 0;
}

std::uint32_t SwitchedFabric::nextHop(std::uint32_t from,
                                      std::uint32_t to) const {
  RTDRM_ASSERT(from < next_hop_.size() && to < next_hop_.size());
  RTDRM_ASSERT(from != to);
  return next_hop_[from][to];
}

void SwitchedFabric::exportMetrics(obs::MetricsRegistry& reg) const {
  reg.counter("net.messages_delivered").set(delivered_);
  reg.counter("net.frames_on_wire").set(frames_);
  reg.counter("net.frames_lost").set(frames_lost_);
  reg.counter("net.frames_duplicated").set(frames_duplicated_);
  reg.counter("net.frames_dropped").set(frames_dropped_);
  reg.counter("net.payload_bytes")
      .set(static_cast<std::uint64_t>(payload_bytes_));
  reg.gauge("net.backlogged_messages")
      .set(static_cast<double>(backloggedMessages()));
  reg.gauge("net.fabric_segments")
      .set(static_cast<double>(config_.segments));
  const double now_ms = sim_.now().ms();
  reg.gauge("net.wire_utilization")
      .set(now_ms > 0.0
               ? busyTime().ms() / now_ms / utilizationCapacity()
               : 0.0);
}

}  // namespace rtdrm::net
