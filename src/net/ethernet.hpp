// Shared-medium Ethernet segment (IEEE 802.3 style, Table 1: 100 Mbps).
//
// Model: each node owns a FIFO NIC queue; a single bus serializes one frame
// at a time, picking among backlogged NICs round-robin at frame granularity
// (an idealization of CSMA/CD fairness on an unsaturated segment — no
// collisions are simulated, but frame overheads and inter-frame gaps are
// charged, so wire time per payload byte is realistic).
//
// Messages larger than one MTU are fragmented; a message is delivered when
// its last frame arrives. The paper's buffer delay Dbuf (eq. 5) *emerges*
// here as the head-of-line wait behind other periods' traffic, and its
// transmission delay Dtrans (eq. 6) as the serialization time.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/message.hpp"
#include "net/network_model.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::net {

struct EthernetConfig {
  BitRate rate = BitRate::mbps(100.0);
  /// Maximum payload per frame.
  Bytes mtu = Bytes::of(1500.0);
  /// Minimum payload per frame (Ethernet pads short frames to 46 B).
  Bytes min_payload = Bytes::of(46.0);
  /// Per-frame non-payload wire bytes: preamble+SFD (8) + MAC header (14) +
  /// FCS (4) + inter-frame gap (12).
  Bytes frame_overhead = Bytes::of(38.0);
  /// One-way propagation delay applied after the last bit.
  SimDuration propagation = SimDuration::micros(5.0);
  /// Host-side protocol/marshalling cost per payload byte, charged in a
  /// per-NIC sequential stage *before* the frame becomes wire-eligible.
  /// This is the physical origin of the paper's buffer delay Dbuf (eq. 5):
  /// "how long data stays in host and network buffers before getting
  /// transmitted". 87.5 ns/B over 80 B tracks gives ~0.7 ms per hundred
  /// tracks — the slope the paper measured (Table 3).
  double host_ns_per_byte = 87.5;

  /// Wire time of the shortest legal frame (min payload padded + overhead
  /// bytes at the configured rate): no frame finishes faster.
  SimDuration minFrameWireTime() const {
    return rate.transmissionTime(min_payload + frame_overhead);
  }

  /// Minimum latency of any node-to-node interaction through this segment:
  /// shortest frame's serialization plus propagation. This is the sharded
  /// engine's conservative lookahead — a cause on one node cannot have an
  /// effect on another sooner than this, so barrier windows of this width
  /// can never reorder cross-node causality. (Local same-node hand-offs
  /// bypass the wire but also never cross a shard.)
  SimDuration minCrossShardLatency() const {
    return minFrameWireTime() + propagation;
  }
};

class Ethernet final : public NetworkModel {
 public:
  Ethernet(sim::Simulator& simulator, std::size_t node_count,
           EthernetConfig config = {});
  Ethernet(const Ethernet&) = delete;
  Ethernet& operator=(const Ethernet&) = delete;

  const EthernetConfig& config() const { return config_; }

  /// Enqueue a message at its source NIC. Local delivery (src == dst)
  /// bypasses the wire and completes after `propagation` only.
  void send(Message msg) override;

  /// Observer invoked with every delivery receipt, at the receipt's
  /// `delivered` time — after the propagation delay, never before
  /// (correctness oracles verify causality here: enqueued <= first_bit <=
  /// delivered == now). Pass nullptr to clear.
  void setDeliveryObserver(DeliveryObserver observer) override {
    delivery_observer_ = std::move(observer);
  }

  /// Frame fates (see net::FrameFate). Kept as a member alias so
  /// pre-interface spellings (`Ethernet::FrameFate::kLose`) stay valid.
  using FrameFate = net::FrameFate;

  /// Per-frame fate decision for wire frames. The bus is a single link, so
  /// every frame is exactly one hop: the hook fires once per frame with
  /// segment 0, port 0. Same-node hand-offs never touch the wire and are
  /// exempt. With no hook installed every frame delivers, at zero added
  /// cost. Pass nullptr to clear.
  void setFrameFateHook(FrameFateHook hook) override {
    frame_fate_hook_ = std::move(hook);
  }

  /// The sharded engine's conservative barrier lookahead (see
  /// EthernetConfig::minCrossShardLatency()).
  SimDuration minCrossShardLatency() const override {
    return config_.minCrossShardLatency();
  }

  /// Cumulative wire-busy time (for utilization accounting).
  SimDuration busyTime() const override;
  std::uint64_t messagesDelivered() const override { return delivered_; }
  std::uint64_t framesOnWire() const override { return frames_; }
  /// Frames whose wire time was spent but whose payload the receiver
  /// rejected (each forced a retransmission).
  std::uint64_t framesLost() const override { return frames_lost_; }
  /// Spurious extra copies that occupied the wire and were discarded.
  std::uint64_t framesDuplicated() const override {
    return frames_duplicated_;
  }
  double payloadBytesCarried() const override { return payload_bytes_; }
  /// Payload bytes this NIC has put on the wire so far (per-sender
  /// attribution for hot-talker diagnosis).
  double payloadBytesFrom(ProcessorId nic) const override;
  std::size_t backloggedMessages() const override;

  /// Publishes bus counters (frames, losses, dups, delivered messages,
  /// payload bytes, wire utilization since t=0) into `reg` under "net.".
  void exportMetrics(obs::MetricsRegistry& reg) const override;

 private:
  struct Pending {
    Message msg;
    SimTime enqueued;
    SimTime first_bit;
    Bytes remaining;
    bool started = false;
  };

  /// Begin serializing the next frame if the bus is idle and work exists.
  void arbitrate();
  void onFrameEnd(std::size_t nic);
  /// A duplicated frame's copy finished its (pure-accounting) wire time.
  void onDuplicateEnd();
  /// Wire time of the next frame of `p` (overhead + clamped payload chunk).
  SimDuration frameTime(const Pending& p) const;
  Bytes frameChunk(const Pending& p) const;

  /// Marshalling completed: move the message into the NIC wire queue.
  void onMarshalled(std::size_t nic, Pending p);

  sim::Simulator& sim_;
  EthernetConfig config_;
  std::vector<std::deque<Pending>> nics_;
  /// Per-NIC watermark: host marshalling stage is busy until this time.
  std::vector<SimTime> marshal_busy_until_;
  std::size_t rr_next_ = 0;   // round-robin arbitration pointer
  bool bus_busy_ = false;
  SimTime busy_since_ = SimTime::zero();
  SimDuration busy_accum_ = SimDuration::zero();
  std::uint64_t delivered_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t frames_lost_ = 0;
  std::uint64_t frames_duplicated_ = 0;
  double payload_bytes_ = 0.0;
  std::vector<double> payload_bytes_from_;
  DeliveryObserver delivery_observer_;
  FrameFateHook frame_fate_hook_;
};

/// Windowed utilization sampling for any network model, mirroring
/// node::UtilizationProbe. Busy time is normalized by the model's
/// utilizationCapacity() — 1.0 for the bus (bit-identical to the
/// pre-interface probe), the link count for multi-link fabrics.
class NetworkProbe {
 public:
  NetworkProbe(const sim::Simulator& simulator, const NetworkModel& net)
      : sim_(simulator), net_(net), last_t_(simulator.now()),
        last_busy_(net.busyTime()) {}

  Utilization sample();
  Utilization peek() const;

 private:
  const sim::Simulator& sim_;
  const NetworkModel& net_;
  SimTime last_t_;
  SimDuration last_busy_;
};

}  // namespace rtdrm::net
