// Gossip message schema for the decentralized management plane.
//
// Each manager owns a contiguous node-block partition and periodically
// broadcasts a PartitionSummary — its partition's freshly sampled
// utilizations plus the ledger workload it currently hosts — to every
// other manager endpoint over the shared Ethernet. Summaries are plain
// data carried in the message closure (only the wire size is simulated,
// like every other message in src/net); receivers keep the newest
// summary per origin and judge staleness by the summary's sample time
// against the plane's configured bound.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace rtdrm::net {

struct PartitionSummary {
  /// Originating manager index and its election epoch at send time.
  std::uint32_t manager = 0;
  std::uint64_t epoch = 0;
  /// Per-origin monotonically increasing round number; receivers discard
  /// reordered stale rounds.
  std::uint64_t seq = 0;
  /// When the utilizations below were sampled (the staleness clock).
  SimTime sampled_at = SimTime::zero();
  /// First node of the partition; utilization[i] belongs to node
  /// first_node + i.
  std::uint32_t first_node = 0;
  std::vector<double> utilization;
  /// Total ledger workload (tracks) hosted on the partition.
  double ledger_tracks = 0.0;
};

/// Simulated wire footprint of a summary: a fixed header plus a fixed
/// per-node cost. The real payload rides in the closure.
inline Bytes gossipWireBytes(Bytes base, Bytes per_node,
                             std::size_t node_count) {
  return base + per_node * static_cast<double>(node_count);
}

}  // namespace rtdrm::net
