// Per-node drifting clocks and a periodic synchronization service.
//
// The paper's system model (item 12) assumes processor clocks synchronized
// with an algorithm such as Mills' NTP [Mills95]. We model each node's clock
// as true time plus an offset that drifts at a constant ppm rate, and a sync
// service that periodically estimates and corrects each offset against a
// reference node, with estimation noise standing in for RTT asymmetry.
//
// The run-time monitor timestamps subtask start/end on (possibly different)
// nodes with *local* clocks; the residual sync error therefore perturbs its
// latency measurements exactly as it would on real hardware — and its
// magnitude is an ablation knob (DESIGN.md §6.6).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::net {

/// One node's clock: local(t) = t + offset0 + drift_ppm * 1e-6 * t,
/// with step corrections applied by the sync service.
class DriftingClock {
 public:
  DriftingClock(SimDuration initial_offset, double drift_ppm)
      : offset_(initial_offset), drift_ppm_(drift_ppm) {}

  /// Local reading at true simulation time `t`.
  SimTime local(SimTime t) const {
    return SimTime::millis(t.ms() + offset_.ms() + drift_ppm_ * 1e-6 * t.ms());
  }

  /// True offset (local - true) at true time `t`.
  SimDuration offsetAt(SimTime t) const {
    return SimDuration::millis(offset_.ms() + drift_ppm_ * 1e-6 * t.ms());
  }

  /// Step the clock by `-correction` (applied by the sync service).
  void correct(SimDuration correction) { offset_ -= correction; }

  double driftPpm() const { return drift_ppm_; }

 private:
  SimDuration offset_;
  double drift_ppm_;
};

struct ClockSyncConfig {
  /// Re-synchronization interval.
  SimDuration sync_period = SimDuration::seconds(10.0);
  /// Std-dev of the offset estimation error per sync round (models RTT
  /// asymmetry); typical LAN NTP achieves well under a millisecond.
  SimDuration estimate_noise = SimDuration::micros(50.0);
  /// Initial offsets drawn uniform in [-max, +max].
  SimDuration initial_offset_max = SimDuration::millis(5.0);
  /// Drift rates drawn uniform in [-max, +max] ppm.
  double drift_ppm_max = 50.0;
};

/// Owns every node's clock plus the periodic sync activity.
class ClockFabric {
 public:
  ClockFabric(sim::Simulator& simulator, std::size_t node_count,
              Xoshiro256 rng, ClockSyncConfig config = {});

  std::size_t size() const { return clocks_.size(); }
  const DriftingClock& clock(ProcessorId id) const;

  /// Local clock reading on node `id` at the current true time.
  SimTime localNow(ProcessorId id) const;

  /// An interval measured with local timestamps: end read on `end_node`,
  /// start read on `start_node`. Residual sync error appears here.
  SimDuration measure(ProcessorId start_node, SimTime true_start,
                      ProcessorId end_node, SimTime true_end) const;

  /// Start the periodic synchronization (first round immediately).
  void startSync();
  void stopSync() { sync_.stop(); }

  /// Fault-injection gate: while disabled, sync rounds still fire on
  /// schedule (so the round count and cadence are unchanged) but neither
  /// estimate nor correct — clocks free-run and drift apart, as during an
  /// NTP service outage. Rounds skipped this way draw no RNG, so replay
  /// with the same outage windows is byte-identical.
  void setSyncEnabled(bool enabled) { sync_enabled_ = enabled; }
  bool syncEnabled() const { return sync_enabled_; }
  /// Sync rounds skipped by an outage window so far.
  std::uint64_t syncRoundsSkipped() const { return rounds_skipped_; }

  /// |local - true| of the worst node at the current time.
  SimDuration worstOffsetNow() const;
  /// Statistics of worst offsets observed at each sync round (pre-correction).
  const RunningStats& preSyncOffsetStats() const { return pre_sync_stats_; }

 private:
  void syncRound();

  sim::Simulator& sim_;
  Xoshiro256 rng_;
  ClockSyncConfig config_;
  std::vector<DriftingClock> clocks_;
  sim::PeriodicActivity sync_;
  RunningStats pre_sync_stats_;
  bool sync_enabled_ = true;
  std::uint64_t rounds_skipped_ = 0;
};

}  // namespace rtdrm::net
