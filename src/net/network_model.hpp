// Pluggable network substrate: the interface every network model serves.
//
// Extracted from net::Ethernet so the testbed can swap the paper's shared
// 100 Mbps bus for other fabrics (net::SwitchedFabric) without touching the
// consumers: the task runtime, the failure detector, the management plane,
// the fault injector and the invariant oracle all program against this
// interface. Three seams matter to the rest of the system:
//
//   * send()/broadcast()      — message transport with delivery receipts;
//   * the frame-fate hook     — the fault injector's per-link loss/dup
//                               decision point, generalized to a FrameHop
//                               so faults can target (segment, port) on
//                               multi-hop fabrics (the bus is one hop);
//   * minCrossShardLatency()  — the sharded engine's conservative barrier
//                               lookahead: no cause on one node may have an
//                               effect on another sooner than this.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "net/message.hpp"

namespace rtdrm::obs {
class MetricsRegistry;
}  // namespace rtdrm::obs

namespace rtdrm::net {

/// Fate of a wire frame, decided by the fault-injection hook the instant
/// its last bit is serialized on a link. kLose spends the wire time but the
/// receiver rejects the frame (bad FCS): the payload chunk is not applied
/// and the frame is retransmitted by the link layer. kDuplicate delivers
/// the chunk normally, then a spurious copy occupies the link for a second
/// frame time; the receiver discards it, so delivery accounting sees
/// exactly one receipt either way.
enum class FrameFate { kDeliver, kLose, kDuplicate };

/// Wildcard for FrameHop segment/port matching (fault targeting).
inline constexpr std::uint32_t kAnySegment = 0xffffffffu;
inline constexpr std::uint32_t kAnyPort = 0xffffffffu;

/// The link a frame is traversing when its fate is decided: the message
/// endpoints plus the (segment, port) identity of the transmitting port.
/// The shared bus is a single link — every frame reports segment 0, port 0
/// — so hooks written against the bus see exactly the draws they always
/// did. Switched fabrics fire the hook once per hop with the egress port's
/// coordinates (see net::SwitchedFabric for the numbering scheme).
struct FrameHop {
  ProcessorId src{0};        ///< message source node
  ProcessorId dst{0};        ///< message destination node
  std::uint32_t segment = 0; ///< segment owning the transmitting port
  std::uint32_t port = 0;    ///< egress-port index within the segment
};

/// Abstract network substrate. Implementations must be fully deterministic
/// (a pure function of the event schedule) and must deliver every accepted
/// message exactly once, in causal order per receipt: enqueued <= first_bit
/// <= delivered == observer-invocation time.
class NetworkModel {
 public:
  virtual ~NetworkModel() = default;

  /// Enqueue a message at its source. Local delivery (src == dst) bypasses
  /// the wire entirely (and is exempt from frame fates).
  virtual void send(Message msg) = 0;

  /// Clone-send `proto` to every destination in `dsts` (the per-message
  /// completion callback is shared). Point-to-point under the hood on both
  /// the bus and the fabric; a true L2 broadcast would bypass the per-port
  /// queueing this repo exists to model.
  virtual void broadcast(const Message& proto,
                         const std::vector<ProcessorId>& dsts) {
    for (const ProcessorId dst : dsts) {
      Message m;
      m.src = proto.src;
      m.dst = dst;
      m.payload = proto.payload;
      m.tag = proto.tag;
      m.on_delivered = proto.on_delivered;
      send(std::move(m));
    }
  }

  /// Observer invoked with every delivery receipt, at the receipt's
  /// `delivered` time. Pass nullptr to clear. Single slot.
  using DeliveryObserver = std::function<void(const MessageReceipt&)>;
  virtual void setDeliveryObserver(DeliveryObserver observer) = 0;

  /// Per-frame fate decision for wire frames, fired once per link hop.
  /// Same-node hand-offs never touch a wire and are exempt. With no hook
  /// installed every frame delivers, at zero added cost. Pass nullptr to
  /// clear.
  using FrameFateHook = std::function<FrameFate(const FrameHop&)>;
  virtual void setFrameFateHook(FrameFateHook hook) = 0;

  /// Minimum latency of any node-to-node interaction through this network:
  /// the sharded engine's conservative barrier lookahead.
  virtual SimDuration minCrossShardLatency() const = 0;

  // ---- counters (uniform across models; a model without a concept
  // reports 0 for it) ------------------------------------------------------
  /// Cumulative link-busy time, summed over every link the model owns (the
  /// bus is one link). Divide by utilizationCapacity() for a [0, 1] rate.
  virtual SimDuration busyTime() const = 0;
  /// Unidirectional links contributing to busyTime() (1 for the bus).
  virtual double utilizationCapacity() const { return 1.0; }
  virtual std::uint64_t messagesDelivered() const = 0;
  virtual std::uint64_t framesOnWire() const = 0;
  virtual std::uint64_t framesLost() const = 0;
  virtual std::uint64_t framesDuplicated() const = 0;
  /// Frames tail-dropped at a full port buffer (switched fabrics only).
  virtual std::uint64_t framesDropped() const { return 0; }
  virtual double payloadBytesCarried() const = 0;
  /// Payload bytes node `nic` has put on the wire so far.
  virtual double payloadBytesFrom(ProcessorId nic) const = 0;
  virtual std::size_t backloggedMessages() const = 0;

  /// Publishes the model's counters into `reg` under "net.".
  virtual void exportMetrics(obs::MetricsRegistry& reg) const = 0;
};

/// Which network model a scenario builds.
enum class NetKind { kBus, kSwitched };

inline const char* netKindName(NetKind kind) {
  return kind == NetKind::kBus ? "bus" : "switched";
}

/// Parses "bus" | "switched". Returns false on anything else.
inline bool parseNetKind(const std::string& s, NetKind* out) {
  if (s == "bus") {
    *out = NetKind::kBus;
    return true;
  }
  if (s == "switched") {
    *out = NetKind::kSwitched;
    return true;
  }
  return false;
}

}  // namespace rtdrm::net
