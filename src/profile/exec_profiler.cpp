#include "profile/exec_profiler.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace rtdrm::profile {

std::vector<DataSize> paperDataGrid() {
  // Figs. 2-4: data size axis in scale units of 300 tracks, 1..25.
  std::vector<DataSize> grid;
  grid.reserve(25);
  for (int unit = 1; unit <= 25; ++unit) {
    grid.push_back(DataSize::tracks(300.0 * unit));
  }
  return grid;
}

std::vector<regress::ExecSample> profileExecution(
    const task::SubtaskSpec& subtask, const ExecProfileConfig& config) {
  RTDRM_ASSERT(!config.utilization_levels.empty());
  RTDRM_ASSERT(!config.data_sizes.empty());
  RTDRM_ASSERT(config.samples_per_point > 0);

  const RngStreams streams(config.seed);
  std::vector<regress::ExecSample> samples;
  samples.reserve(config.utilization_levels.size() *
                  config.data_sizes.size() *
                  static_cast<std::size_t>(config.samples_per_point));

  for (std::size_t ui = 0; ui < config.utilization_levels.size(); ++ui) {
    const double u = config.utilization_levels[ui];
    RTDRM_ASSERT_MSG(u >= 0.0 && u < 0.95,
                     "open-loop background load saturates at >= 0.95");

    // A dedicated mini-testbed per utilization level: the measured node is
    // otherwise idle except for the pinned background load.
    sim::Simulator sim;
    node::Processor cpu(sim, ProcessorId{0}, config.cpu);
    node::BackgroundLoad bg(sim, cpu, streams.get("profile-bg", ui),
                            config.background);
    Xoshiro256 noise = streams.get("profile-noise", ui);
    bg.setTarget(Utilization::fraction(u));
    sim.runFor(config.warmup);

    for (const DataSize d : config.data_sizes) {
      for (int s = 0; s < config.samples_per_point; ++s) {
        const SimDuration demand =
            subtask.cost.demand(d) *
            noise.lognormalUnitMean(subtask.noise_sigma);
        bool done = false;
        SimTime finish;
        const SimTime t0 = sim.now();
        cpu.submit(node::Job{demand,
                             [&] {
                               done = true;
                               finish = sim.now();
                             },
                             "probe"});
        std::uint64_t guard = 0;
        while (!done) {
          const bool progressed = sim.step();
          RTDRM_ASSERT_MSG(progressed, "profiler job lost");
          RTDRM_ASSERT_MSG(++guard < 100'000'000ULL,
                           "profiler run did not converge");
        }
        samples.push_back(regress::ExecSample{
            d.hundreds(), u, (finish - t0).ms()});
        sim.runFor(config.gap);
      }
    }
  }
  return samples;
}

regress::ExecModelFit profileAndFit(const task::SubtaskSpec& subtask,
                                    const ExecProfileConfig& config) {
  return regress::fitExecModelTwoStage(profileExecution(subtask, config));
}

}  // namespace rtdrm::profile
