// Buffer-delay profiling (paper §4.2.1.2).
//
// "By simulating the execution of the benchmark application on a
// distributed system under a number of different periodic workload
// situations, we noticed that Dbuf increases with the increase in the
// workload" — we do literally that: run the task pipeline at a set of
// constant workload levels on a fully wired testbed and record the buffer
// delay each inter-subtask message experienced. fitBufferDelay() then
// extracts the linear slope k of eq. (5).
#pragma once

#include <vector>

#include "common/units.hpp"
#include "net/clock_sync.hpp"
#include "net/ethernet.hpp"
#include "node/cluster.hpp"
#include "regress/comm_model.hpp"
#include "task/spec.hpp"

namespace rtdrm::profile {

struct CommProfileConfig {
  /// Constant total periodic workloads to hold the system at (tracks).
  std::vector<DataSize> workload_levels;
  int periods_per_level = 16;
  int warmup_periods = 2;
  std::size_t node_count = 6;
  node::ProcessorConfig cpu{};
  net::EthernetConfig ethernet{};
  net::ClockSyncConfig clock_sync{};
  node::BackgroundLoadConfig background{};
  Utilization ambient_load = Utilization::fraction(0.05);
  std::uint64_t seed = 11;
};

/// Default workload grid for the buffer-delay campaign: 500..12000 tracks.
std::vector<DataSize> defaultCommGrid();

/// One sample per (post-warmup period, message stage): the worst buffer
/// delay any replica's message saw, against the period's total workload.
std::vector<regress::CommSample> profileBufferDelay(
    const task::TaskSpec& spec, const CommProfileConfig& config);

/// Convenience: profile and fit the eq. (5) slope in one call.
regress::BufferDelayFit profileAndFitBufferDelay(
    const task::TaskSpec& spec, const CommProfileConfig& config);

}  // namespace rtdrm::profile
