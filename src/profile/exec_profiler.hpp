// Execution-latency profiling (paper §4.2.1.1).
//
// "The execution latencies of the application subtasks are profiled for a
// number of resource utilization conditions and workloads." On the real
// testbed that means running the benchmark under controlled load; here we
// run a dedicated mini-simulation per (data size, utilization) grid point:
// one processor, a background-load generator pinned at the target
// utilization, and repeated timed executions of the subtask.
//
// The profiler observes only response times — never the ground-truth cost
// coefficients — so the regression stage sees data of exactly the kind the
// paper's measurement campaign produced.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "node/background_load.hpp"
#include "node/processor.hpp"
#include "regress/exec_model.hpp"
#include "task/spec.hpp"

namespace rtdrm::profile {

struct ExecProfileConfig {
  /// Utilization levels to pin the background load at (fractions).
  std::vector<double> utilization_levels{0.0, 0.2, 0.4, 0.6, 0.8};
  /// Data sizes to profile, in tracks.
  std::vector<DataSize> data_sizes;
  /// Timed executions per grid point (averaged samples are not taken — each
  /// execution yields one ExecSample, so the regression sees the scatter).
  int samples_per_point = 6;
  /// Settling time after load changes before measuring.
  SimDuration warmup = SimDuration::millis(500.0);
  /// Idle gap between consecutive timed executions.
  SimDuration gap = SimDuration::millis(25.0);
  std::uint64_t seed = 7;
  node::ProcessorConfig cpu{};
  node::BackgroundLoadConfig background{};
};

/// Grid of data sizes matching the paper's Figs. 2-4 x-axis: 1..25 scale
/// units of 300 tracks each.
std::vector<DataSize> paperDataGrid();

/// Profile one subtask's execution latency over the (d, u) grid.
std::vector<regress::ExecSample> profileExecution(
    const task::SubtaskSpec& subtask, const ExecProfileConfig& config);

/// Convenience: profile and fit in one go with the paper's two-stage
/// procedure.
regress::ExecModelFit profileAndFit(const task::SubtaskSpec& subtask,
                                    const ExecProfileConfig& config);

}  // namespace rtdrm::profile
