#include "profile/comm_profiler.hpp"

#include <memory>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "sim/simulator.hpp"
#include "task/task_runner.hpp"

namespace rtdrm::profile {

std::vector<DataSize> defaultCommGrid() {
  std::vector<DataSize> grid;
  for (double tracks = 500.0; tracks <= 12000.0; tracks += 500.0) {
    grid.push_back(DataSize::tracks(tracks));
  }
  return grid;
}

std::vector<regress::CommSample> profileBufferDelay(
    const task::TaskSpec& spec, const CommProfileConfig& config) {
  RTDRM_ASSERT(!config.workload_levels.empty());
  RTDRM_ASSERT(config.periods_per_level > config.warmup_periods);

  std::vector<regress::CommSample> samples;
  for (std::size_t li = 0; li < config.workload_levels.size(); ++li) {
    const DataSize level = config.workload_levels[li];

    // Fresh testbed per level so levels are statistically independent.
    RngStreams streams(config.seed + li);
    sim::Simulator sim;
    node::Cluster cluster(sim, config.node_count, config.cpu);
    net::Ethernet ethernet(sim, config.node_count, config.ethernet);
    net::ClockFabric clocks(sim, config.node_count,
                            streams.get("clock-fabric"), config.clock_sync);
    clocks.startSync();
    cluster.attachBackgroundLoad(streams, config.background);
    for (ProcessorId id : cluster.ids()) {
      cluster.backgroundLoad(id).setTarget(config.ambient_load);
    }

    // Spread the chain across nodes so every message crosses the wire.
    std::vector<ProcessorId> homes;
    for (std::size_t s = 0; s < spec.stageCount(); ++s) {
      homes.push_back(
          ProcessorId{static_cast<std::uint32_t>(s % config.node_count)});
    }

    task::Runtime rt{sim, cluster, ethernet, clocks};
    const int warmup = config.warmup_periods;
    task::TaskRunner runner(
        rt, spec, task::Placement(homes),
        [level](std::uint64_t) { return level; },
        streams.get("exec-noise"), task::PipelineConfig{},
        [&samples, level, warmup](const task::PeriodRecord& rec) {
          if (!rec.completed ||
              rec.period_index < static_cast<std::uint64_t>(warmup)) {
            return;
          }
          for (std::size_t s = 1; s < rec.stages.size(); ++s) {
            samples.push_back(regress::CommSample{
                level.hundreds(), rec.stages[s].worst_msg_buffer.ms()});
          }
        });
    runner.start(sim.now());
    sim.runFor(spec.period * static_cast<double>(config.periods_per_level));
    runner.stop();
    // Drain in-flight instances so their records are captured too.
    sim.runFor(spec.period * 3.0);
  }
  return samples;
}

regress::BufferDelayFit profileAndFitBufferDelay(
    const task::TaskSpec& spec, const CommProfileConfig& config) {
  return regress::fitBufferDelay(profileBufferDelay(spec, config));
}

}  // namespace rtdrm::profile
