// Profile-dataset persistence: CSV round-trip for profiling campaigns.
//
// The paper's workflow separates the (expensive) measurement campaign from
// model fitting; persisting datasets lets users re-fit without re-profiling
// and inspect the raw scatter that figures 2-4 plot.
#pragma once

#include <string>
#include <vector>

#include "regress/comm_model.hpp"
#include "regress/exec_model.hpp"

namespace rtdrm::profile {

/// Writes "d_hundreds,u,latency_ms" rows. Returns false on I/O failure.
bool writeExecSamplesCsv(const std::string& path,
                         const std::vector<regress::ExecSample>& samples);

/// Parses a CSV produced by writeExecSamplesCsv (header required).
/// Returns false on I/O or parse failure; `out` is cleared first.
bool readExecSamplesCsv(const std::string& path,
                        std::vector<regress::ExecSample>& out);

/// Writes "total_workload_hundreds,buffer_delay_ms" rows.
bool writeCommSamplesCsv(const std::string& path,
                         const std::vector<regress::CommSample>& samples);

bool readCommSamplesCsv(const std::string& path,
                        std::vector<regress::CommSample>& out);

}  // namespace rtdrm::profile
