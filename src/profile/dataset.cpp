#include "profile/dataset.hpp"

#include <fstream>
#include <sstream>

namespace rtdrm::profile {

namespace {

bool parseThreeDoubles(const std::string& line, double& a, double& b,
                       double& c, bool three) {
  std::istringstream ss(line);
  std::string cell;
  if (!std::getline(ss, cell, ',')) {
    return false;
  }
  try {
    a = std::stod(cell);
    if (!std::getline(ss, cell, ',')) {
      return false;
    }
    b = std::stod(cell);
    if (three) {
      if (!std::getline(ss, cell, ',')) {
        return false;
      }
      c = std::stod(cell);
    }
  } catch (...) {
    return false;
  }
  return true;
}

}  // namespace

bool writeExecSamplesCsv(const std::string& path,
                         const std::vector<regress::ExecSample>& samples) {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  f << "d_hundreds,u,latency_ms\n";
  for (const auto& s : samples) {
    f << s.d_hundreds << ',' << s.u << ',' << s.latency_ms << '\n';
  }
  return static_cast<bool>(f);
}

bool readExecSamplesCsv(const std::string& path,
                        std::vector<regress::ExecSample>& out) {
  out.clear();
  std::ifstream f(path);
  if (!f) {
    return false;
  }
  std::string line;
  if (!std::getline(f, line)) {  // header
    return false;
  }
  while (std::getline(f, line)) {
    if (line.empty()) {
      continue;
    }
    double d = 0.0, u = 0.0, y = 0.0;
    if (!parseThreeDoubles(line, d, u, y, /*three=*/true)) {
      return false;
    }
    out.push_back(regress::ExecSample{d, u, y});
  }
  return true;
}

bool writeCommSamplesCsv(const std::string& path,
                         const std::vector<regress::CommSample>& samples) {
  std::ofstream f(path);
  if (!f) {
    return false;
  }
  f << "total_workload_hundreds,buffer_delay_ms\n";
  for (const auto& s : samples) {
    f << s.total_workload_hundreds << ',' << s.buffer_delay_ms << '\n';
  }
  return static_cast<bool>(f);
}

bool readCommSamplesCsv(const std::string& path,
                        std::vector<regress::CommSample>& out) {
  out.clear();
  std::ifstream f(path);
  if (!f) {
    return false;
  }
  std::string line;
  if (!std::getline(f, line)) {
    return false;
  }
  while (std::getline(f, line)) {
    if (line.empty()) {
      continue;
    }
    double w = 0.0, y = 0.0, unused = 0.0;
    if (!parseThreeDoubles(line, w, y, unused, /*three=*/false)) {
      return false;
    }
    out.push_back(regress::CommSample{w, y});
  }
  return true;
}

}  // namespace rtdrm::profile
